// Package octgb approximates the Generalized-Born polarization energy of
// protein molecules with the hybrid distributed/shared-memory octree
// treecode of Tithi & Chowdhury, "Polarization Energy on a Cluster of
// Multicores" (SC 2012).
//
// This file is the public facade: it re-exports the library's primary
// types from the internal packages (via type aliases, so the full APIs
// documented there are available through this package) and provides the
// one-call entry points most users need.
//
// Quick use:
//
//	mol := octgb.GenerateProtein("demo", 5000, 1)
//	res, err := octgb.Compute(mol, octgb.DefaultOptions())
//	fmt.Println(res.Energy) // kcal/mol
//
// For full control (engines, ranks, threads, virtual-time projections,
// TCP deployment) see the aliased types below and the examples/ directory.
package octgb

import (
	"fmt"

	"octgb/internal/core"
	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/obs"
	"octgb/internal/serve"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

// Re-exported core types. Their methods and fields are documented in the
// implementing packages.
type (
	// Molecule is a set of atoms (position, vdW radius, partial charge).
	Molecule = molecule.Molecule
	// Atom is one atom of a Molecule.
	Atom = molecule.Atom
	// Vec3 is a 3-vector (Å).
	Vec3 = geom.Vec3
	// Rigid is a rigid-body transform for docking-pose sweeps.
	Rigid = geom.Rigid
	// QPoint is one molecular-surface quadrature point.
	QPoint = surface.QPoint
	// SurfaceOptions controls surface sampling resolution.
	SurfaceOptions = surface.Options
	// Problem bundles a molecule with its sampled surface.
	Problem = engine.Problem
	// EngineOptions configures an engine run (ranks, threads, ε, math).
	EngineOptions = engine.Options
	// Kind selects an engine (OctCilk, OctMPI, OctMPICilk, Naive).
	Kind = engine.Kind
	// Report is the result of a real (executed) run.
	Report = engine.RealReport
	// SimModel is a virtual-time work profile for cluster projections.
	SimModel = engine.SimModel
	// Machine describes the modeled cluster for virtual-time runs.
	Machine = simtime.Machine
	// Precision selects the flat kernels' storage tier (Float64/Float32).
	Precision = core.Precision
)

// Kernel storage tiers. Float64 is the default (oracle-parity); Float32
// stores the streamed arrays in float32 and accumulates in float64 —
// ~1e-6 relative error for half the hot-path memory traffic.
const (
	Float64 = core.Float64
	Float32 = core.Float32
)

// ParsePrecision parses a storage-tier label ("f64", "f32", "").
func ParsePrecision(s string) (Precision, bool) { return core.ParsePrecision(s) }

// Engine kinds (paper Table II).
const (
	OctCilk    = engine.OctCilk
	OctMPI     = engine.OctMPI
	OctMPICilk = engine.OctMPICilk
	NaiveExact = engine.Naive
)

// Options configures the high-level Compute entry point.
type Options struct {
	// Engine selects the parallel algorithm (default OctMPICilk).
	Engine Kind
	// Ranks and Threads set the process/thread decomposition
	// (defaults 2 × number of available threads handled by the engine).
	Ranks, Threads int
	// BornEps and EpolEps are the approximation parameters (default 0.9,
	// the paper's operating point). Smaller is more accurate and slower.
	BornEps, EpolEps float64
	// ApproximateMath enables the fast inverse-sqrt/exp kernels
	// (~1.4× faster, few-percent energy shift).
	ApproximateMath bool
	// DisableFlatKernels forces the recursive fused traversals instead of
	// the default two-phase interaction-list path (identical results to
	// ~1e-12; the flat path is faster — see DESIGN.md).
	DisableFlatKernels bool
	// Precision selects the flat kernels' storage tier (default Float64;
	// Float32 trades ~1e-6 relative error for half the kernel memory —
	// note the f64 tier keeps the AVX2 vector kernels, so on amd64 it is
	// usually also the faster tier).
	Precision Precision
	// Surface controls surface sampling (zero value = defaults).
	Surface SurfaceOptions
}

// DefaultOptions returns the paper's operating point on the hybrid engine.
func DefaultOptions() Options {
	return Options{Engine: OctMPICilk, Ranks: 2, Threads: 2, BornEps: 0.9, EpolEps: 0.9}
}

// Result is the outcome of Compute.
type Result struct {
	// Energy is the GB polarization energy in kcal/mol (negative).
	Energy float64
	// BornRadii are the per-atom effective Born radii (Å, original atom
	// order).
	BornRadii []float64
	// Report carries execution details (wall time, work counters,
	// scheduler statistics, per-phase timings).
	Report Report
}

// Compute evaluates the GB polarization energy of mol.
func Compute(mol *Molecule, o Options) (*Result, error) {
	if mol == nil || mol.N() == 0 {
		return nil, fmt.Errorf("octgb: empty molecule")
	}
	if err := mol.Validate(); err != nil {
		return nil, fmt.Errorf("octgb: %w", err)
	}
	if o.Engine == 0 && o.Ranks == 0 && o.Threads == 0 && o.BornEps == 0 {
		o = DefaultOptions()
	}
	pr := engine.NewProblem(mol, o.Surface)
	eo := engine.Options{
		Ranks:     o.Ranks,
		Threads:   o.Threads,
		BornEps:   o.BornEps,
		EpolEps:   o.EpolEps,
		Precision: o.Precision,
	}
	if o.ApproximateMath {
		eo.Math = gb.Approximate
	}
	if o.DisableFlatKernels {
		eo.UseFlatKernels = engine.Off
	}
	rep, err := engine.RunReal(pr, o.Engine, eo)
	if err != nil {
		return nil, err
	}
	return &Result{Energy: rep.Energy, BornRadii: rep.BornRadii, Report: rep}, nil
}

// NewProblem samples the molecular surface once so multiple engines or
// parameter settings can be run against identical inputs.
func NewProblem(mol *Molecule, so SurfaceOptions) *Problem {
	return engine.NewProblem(mol, so)
}

// BuildSimModel executes an engine once and returns its virtual-time work
// profile for cluster-scale projections (see SimModel.Time).
func BuildSimModel(pr *Problem, k Kind, o EngineOptions) *SimModel {
	return engine.BuildSimModel(pr, k, o, simtime.DefaultOpCosts())
}

// Lonestar4 returns the paper's modeled Table I machine.
func Lonestar4() Machine { return simtime.Lonestar4() }

// GenerateProtein builds a deterministic synthetic globular protein with n
// atoms (a stand-in for benchmark inputs; use ReadPQR for real molecules).
func GenerateProtein(name string, n int, seed int64) *Molecule {
	return molecule.GenerateProtein(name, n, seed)
}

// GenerateCapsid builds a hollow virus-shell-like molecule.
func GenerateCapsid(name string, n int, thickness float64, seed int64) *Molecule {
	return molecule.GenerateCapsid(name, n, thickness, seed)
}

// SampleSurface generates the molecular-surface quadrature points of mol.
func SampleSurface(mol *Molecule, so SurfaceOptions) []QPoint {
	return surface.Sample(mol, so)
}

// Serving layer: a resident HTTP/JSON evaluation service with a
// prepared-problem cache, pose-sweep batching, stateful /v1/stream
// sessions for incremental evaluation, and admission control
// (cmd/epolserve is the command-line wrapper). See the serve package docs
// for endpoints and configuration.
type (
	// ServeConfig configures a Server.
	ServeConfig = serve.Config
	// Server is the resident evaluation service.
	Server = serve.Server
	// Prepared is a reusable preprocessed problem: surface + octrees +
	// Born radii, ready for repeated E_pol evaluation.
	Prepared = engine.Prepared
)

// NewServer builds an evaluation service and starts its worker pool; call
// Start (or mount Handler) to serve, Shutdown to drain.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Observability: a zero-dependency instrumentation layer — lock-free
// latency histograms rendered in Prometheus text format, span tracing
// dumpable as Chrome trace_event JSON. An Observer attaches to
// EngineOptions.Observe and ServeConfig.Observe; nil (the default) keeps
// every instrumented path allocation-free and numerically bitwise
// identical. See the obs package docs and DESIGN.md §10.
type (
	// Observer bundles a metric registry and a span tracer.
	Observer = obs.Observer
	// HistogramSnapshot is a point-in-time histogram copy (Quantile/Mean).
	HistogramSnapshot = obs.HistSnapshot
)

// NewObserver returns an Observer with a fresh registry and tracer.
func NewObserver() *Observer { return obs.New() }

// Prepare runs the preprocessing half of an evaluation once (octree
// construction + Born radii, the paper's steps 1-4) so EvalEpol can be
// called repeatedly — with different ε_E settings if desired — without
// repeating it.
func Prepare(pr *Problem, o EngineOptions) (*Prepared, error) {
	return engine.Prepare(pr, o)
}

// Incremental evaluation: a Session holds a molecule's surface, octrees
// and cached interaction values resident so a stream of small coordinate
// updates (a flexible loop, a refining docking pose) re-evaluates only the
// dirty region instead of rebuilding from scratch. Served over HTTP as the
// stateful /v1/stream endpoint (see ServeConfig.MaxSessions). See the
// engine package docs and DESIGN.md §12.
type (
	// Session is a resident incremental evaluation state for one molecule.
	Session = engine.Session
	// SessionOptions configures a Session (resweep cadence, slack margins,
	// radius staleness tolerance).
	SessionOptions = engine.SessionOptions
	// AtomMove is one atom's new absolute position within a FrameDelta.
	AtomMove = engine.AtomMove
	// FrameDelta is one frame of a coordinate stream: the atoms that moved.
	FrameDelta = engine.FrameDelta
	// FrameReport describes what one Session.Step did (energy, dirty-set
	// counters, resweep/refresh markers).
	FrameReport = engine.FrameReport
)

// NewSession builds an incremental evaluation session: it samples the
// surface, builds both treecode solvers with slack margins and evaluates
// the initial energy. Step then applies per-frame deltas.
func NewSession(mol *Molecule, o SessionOptions) (*Session, error) {
	return engine.NewSession(mol, o)
}
