// Package octgb's root benchmark harness: one testing.B target per table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index), plus the ablation benches. Each benchmark regenerates its
// table/figure end to end at a reduced default scale so `go test -bench=.`
// completes in minutes; cmd/benchsuite exposes the full-scale knobs.
package octgb

import (
	"sync"
	"testing"

	"octgb/internal/bench"
)

// benchRunner is shared across benchmarks so the expensive suite
// preparation (molecule generation, surfaces, naive references) is paid
// once per `go test -bench` invocation.
var (
	benchOnce   sync.Once
	benchShared *bench.Runner
)

func runner() *bench.Runner {
	benchOnce.Do(func() {
		benchShared = bench.NewRunner(bench.Config{
			Scale:     0.01, // 60k-atom BTV stand-in, 5k-atom CMV stand-in
			SuiteSize: 8,
			Runs:      20,
		})
	})
	return benchShared
}

func BenchmarkTableEnv(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if len(r.TableEnv().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTablePackages(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if len(r.TablePackages().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5Scalability(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Fig5Scalability().Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig6MinMax(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Fig6MinMax().Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig7Engines(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Fig7Engines().Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig8Baselines(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ta, tb := r.Fig8Baselines()
		if len(ta.Rows) == 0 || len(tb.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig9Energy(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Fig9Energy().Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig10Epsilon(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Fig10Epsilon().Rows) != 9 {
			b.Fatal("figure 10 should have 9 ε rows")
		}
	}
}

func BenchmarkFig11CMV(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Fig11CMV().Rows) != 4 {
			b.Fatal("figure 11 should have 4 program rows")
		}
	}
}

func BenchmarkAblationWorkDivision(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationWorkDivision().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkAblationOctreeVsNblist(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationOctreeVsNblist().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkAblationEnergyBinning(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationEnergyBinning().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkAblationStealing(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationStealing().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkAblationApproxMath(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationApproxMath().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkAblationStaticBalance(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationStaticBalance().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkAblationDataDistribution(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationDataDistribution().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkAblationCriterion(b *testing.B) {
	r := runner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.AblationCriterion().Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}
