package octree

import (
	"math/rand"
	"testing"

	"octgb/internal/geom"
)

func randPoints(n int, seed int64) []geom.Vec3 {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(r.Float64()*40-20, r.Float64()*40-20, r.Float64()*40-20)
	}
	return pts
}

func TestSoAMirrorsMatchPoints(t *testing.T) {
	for _, n := range []int{0, 1, 17, 500} {
		tr := Build(randPoints(n, int64(n)+1), 0)
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(tr.X) != n || len(tr.Y) != n || len(tr.Z) != n {
			t.Fatalf("n=%d: SoA lengths %d/%d/%d", n, len(tr.X), len(tr.Y), len(tr.Z))
		}
	}
}

func TestSoAMirrorsFollowTransform(t *testing.T) {
	tr := Build(randPoints(300, 7), 0)
	m := geom.RotationAxisAngle(geom.V(0, 0, 1), 0.7).Compose(geom.Translation(geom.V(3, -2, 1)))
	tt := tr.Transform(m)
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mirrors must be fresh slices, not aliases of the source tree's.
	if len(tr.X) > 0 && &tt.X[0] == &tr.X[0] {
		t.Error("Transform aliased the source tree's SoA mirrors")
	}
}

func TestFillSoAReallocates(t *testing.T) {
	tr := Build(randPoints(64, 11), 0)
	oldX := tr.X
	tr.FillSoA()
	if len(oldX) > 0 && &tr.X[0] == &oldX[0] {
		t.Error("FillSoA reused the previous backing array")
	}
}
