package octree

import (
	"math/rand"
	"testing"

	"octgb/internal/geom"
)

func randomPoints(n int, seed int64) []geom.Vec3 {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(r.NormFloat64()*20, r.NormFloat64()*20, r.NormFloat64()*20)
	}
	return pts
}

func TestBuildEmpty(t *testing.T) {
	tr := Build(nil, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 0 {
		t.Error("empty tree has leaves")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	tr := Build([]geom.Vec3{geom.V(1, 2, 3)}, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || !tr.Nodes[0].Leaf {
		t.Fatalf("single point tree: %d nodes", len(tr.Nodes))
	}
	if tr.Nodes[0].Radius != 0 {
		t.Errorf("radius = %v", tr.Nodes[0].Radius)
	}
}

func TestBuildCoincidentPoints(t *testing.T) {
	pts := make([]geom.Vec3, 100)
	for i := range pts {
		pts[i] = geom.V(1, 1, 1)
	}
	tr := Build(pts, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Must terminate (maxDepth or degenerate-box guard) with all points in leaves.
	var total int32
	for _, l := range tr.Leaves() {
		total += tr.Nodes[l].Count
	}
	if total != 100 {
		t.Errorf("leaves cover %d points", total)
	}
}

func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 16, 17, 100, 5000} {
		pts := randomPoints(n, int64(n))
		tr := Build(pts, 16)
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Root covers everything.
		if tr.Nodes[0].Count != int32(n) {
			t.Fatalf("n=%d: root count %d", n, tr.Nodes[0].Count)
		}
		// Leaf sizes bounded.
		for _, l := range tr.Leaves() {
			if c := tr.Nodes[l].Count; c > 16 || c == 0 {
				t.Fatalf("n=%d: leaf size %d", n, c)
			}
		}
		// Perm reorders correctly: Points[i] == original[Perm[i]].
		for i, p := range tr.Points {
			if pts[tr.Perm[i]] != p {
				t.Fatalf("n=%d: perm broken at %d", n, i)
			}
		}
	}
}

func TestLeavesPartitionPoints(t *testing.T) {
	pts := randomPoints(3000, 8)
	tr := Build(pts, 12)
	covered := make([]bool, len(pts))
	for _, l := range tr.Leaves() {
		lo, hi := tr.PointRange(l)
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("point %d in two leaves", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("point %d not in any leaf", i)
		}
	}
}

func TestLinearMemoryIndependentOfParameter(t *testing.T) {
	// The paper's key claim versus nblists: tree size is linear in N and
	// does not depend on any approximation parameter/cutoff.
	pts := randomPoints(4000, 4)
	tr := Build(pts, 16)
	perPoint := float64(tr.MemoryBytes()) / 4000
	if perPoint > 400 {
		t.Errorf("memory per point %v bytes too high", perPoint)
	}
	// Doubling N roughly doubles memory (within 3x slack for node granularity).
	tr2 := Build(randomPoints(8000, 5), 16)
	ratio := float64(tr2.MemoryBytes()) / float64(tr.MemoryBytes())
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("memory ratio %v for 2x points", ratio)
	}
}

func TestDepthAndHeight(t *testing.T) {
	pts := randomPoints(2000, 6)
	tr := Build(pts, 8)
	h := tr.Height()
	if h < 3 || h > 20 {
		t.Errorf("height %d implausible for 2000 points", h)
	}
	if tr.Depth(tr.Root()) != 0 {
		t.Error("root depth nonzero")
	}
}

func TestTransformPreservesStructure(t *testing.T) {
	pts := randomPoints(500, 10)
	tr := Build(pts, 16)
	m := geom.RotationAxisAngle(geom.V(1, 1, 0), 0.7)
	m.T = geom.V(5, -3, 2)
	tt := tr.Transform(m)
	// Radii unchanged, centers moved, enclosing-ball still valid.
	for i := range tr.Nodes {
		if tt.Nodes[i].Radius != tr.Nodes[i].Radius {
			t.Fatalf("node %d radius changed", i)
		}
		nd := &tt.Nodes[i]
		for j := nd.Start; j < nd.Start+nd.Count; j++ {
			if d := tt.Points[j].Dist(nd.Center); d > nd.Radius+1e-9 {
				t.Fatalf("node %d: transformed point escapes ball (%g > %g)", i, d, nd.Radius)
			}
		}
	}
}

func TestChildrenOrderingGivesContiguousRanges(t *testing.T) {
	pts := randomPoints(1000, 12)
	tr := Build(pts, 16)
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.Leaf {
			continue
		}
		prevEnd := nd.Start
		for _, ch := range nd.Children {
			if ch == NoChild {
				continue
			}
			c := tr.Nodes[ch]
			if c.Start != prevEnd {
				t.Fatalf("node %d children not contiguous", i)
			}
			prevEnd = c.Start + c.Count
		}
		if prevEnd != nd.Start+nd.Count {
			t.Fatalf("node %d children don't end at parent end", i)
		}
	}
}

func BenchmarkBuild10k(b *testing.B) {
	pts := randomPoints(10000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(pts, 16)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	pts := randomPoints(100000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(pts, 16)
	}
}
