package octree

import "octgb/internal/geom"

// ForEachInBall calls fn(i) for the tree-order index i of every point whose
// distance to center is at most r. Traversal prunes nodes whose enclosing
// ball (Center, Radius) cannot intersect the query ball. fn may return
// false to stop early; ForEachInBall reports whether the scan ran to
// completion.
func (t *Tree) ForEachInBall(center geom.Vec3, r float64, fn func(i int32) bool) bool {
	if len(t.Nodes) == 0 {
		return true
	}
	return t.ballVisit(0, center, r, r*r, fn)
}

func (t *Tree) ballVisit(n int32, c geom.Vec3, r, r2 float64, fn func(i int32) bool) bool {
	nd := &t.Nodes[n]
	d := nd.Center.Dist(c)
	if d > nd.Radius+r {
		return true // disjoint
	}
	if nd.Leaf || d+nd.Radius <= r {
		// Leaf, or node fully inside the query ball: still test points
		// individually in the leaf case; in the fully-inside case all match.
		if d+nd.Radius <= r {
			for i := nd.Start; i < nd.Start+nd.Count; i++ {
				if !fn(i) {
					return false
				}
			}
			return true
		}
		for i := nd.Start; i < nd.Start+nd.Count; i++ {
			if t.Points[i].Dist2(c) <= r2 {
				if !fn(i) {
					return false
				}
			}
		}
		return true
	}
	for _, ch := range nd.Children {
		if ch == NoChild {
			continue
		}
		if !t.ballVisit(ch, c, r, r2, fn) {
			return false
		}
	}
	return true
}

// CountInBall returns the number of points within distance r of center.
func (t *Tree) CountInBall(center geom.Vec3, r float64) int {
	n := 0
	t.ForEachInBall(center, r, func(int32) bool { n++; return true })
	return n
}
