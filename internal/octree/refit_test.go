package octree

import (
	"math/rand"
	"testing"

	"octgb/internal/geom"
)

// Jittered points break the enclosing-ball invariant; RefitAll must restore
// it (Validate checks balls, boxes-by-convention and the center mirrors).
func TestRefitAllRestoresInvariants(t *testing.T) {
	tr := Build(randomPoints(500, 1), 8)
	rng := rand.New(rand.NewSource(2))
	for i := range tr.Points {
		if rng.Float64() < 0.3 {
			d := geom.V(rng.Float64()-0.5, rng.Float64()-0.5, rng.Float64()-0.5).Scale(3)
			tr.SetPoint(int32(i), tr.Points[i].Add(d))
		}
	}
	tr.RefitAll()
	if err := tr.Validate(); err != nil {
		t.Fatalf("refit tree invalid: %v", err)
	}
}

// A refit with unmoved points must reproduce the build-time geometry
// exactly: computeGeometry and RefitAll run the same arithmetic.
func TestRefitAllIdempotentOnUnmovedPoints(t *testing.T) {
	tr := Build(randomPoints(300, 3), 0)
	centers := make([]geom.Vec3, len(tr.Nodes))
	radii := make([]float64, len(tr.Nodes))
	for i := range tr.Nodes {
		centers[i], radii[i] = tr.Nodes[i].Center, tr.Nodes[i].Radius
	}
	tr.RefitAll()
	for i := range tr.Nodes {
		if tr.Nodes[i].Center != centers[i] || tr.Nodes[i].Radius != radii[i] {
			t.Fatalf("node %d geometry changed under no-op refit: %v/%g -> %v/%g",
				i, centers[i], radii[i], tr.Nodes[i].Center, tr.Nodes[i].Radius)
		}
	}
}

func TestPointLeavesCoversEveryPointOnce(t *testing.T) {
	tr := Build(randomPoints(257, 5), 7)
	leaves := tr.PointLeaves()
	if len(leaves) != len(tr.Points) {
		t.Fatalf("PointLeaves length %d, want %d", len(leaves), len(tr.Points))
	}
	for i, l := range leaves {
		nd := &tr.Nodes[l]
		if !nd.Leaf {
			t.Fatalf("point %d mapped to non-leaf node %d", i, l)
		}
		if int32(i) < nd.Start || int32(i) >= nd.Start+nd.Count {
			t.Fatalf("point %d outside its leaf range [%d,%d)", i, nd.Start, nd.Start+nd.Count)
		}
	}
	inv := tr.InvPerm()
	for orig, ti := range inv {
		if tr.Perm[ti] != int32(orig) {
			t.Fatalf("InvPerm broken at %d", orig)
		}
	}
}
