// Package octree implements the linearized, cache-friendly octree the paper
// uses in place of nonbonded lists. A tree is built once over a point set
// (atom centers or surface quadrature points) and then reused for any
// approximation parameter — unlike nblists, its size is independent of any
// cutoff (paper §II, "Octrees vs. Nblists").
//
// The build reorders the points so every node owns a contiguous range of a
// single flat array (Morton-style depth-first order). Treecode traversals
// therefore stream leaves sequentially, which is what makes the structure
// cache-friendly.
package octree

import (
	"fmt"
	"math"

	"octgb/internal/geom"
)

// NoChild marks an absent child slot.
const NoChild = int32(-1)

// DefaultLeafSize is the default maximum number of points per leaf. The
// paper's shared-memory predecessor ([6]) uses small constant-size leaves;
// 16 balances traversal depth against exact-interaction cost.
const DefaultLeafSize = 16

// maxDepth bounds subdivision for degenerate inputs (coincident points).
const maxDepth = 48

// Node is one octree node. Points under the node occupy the contiguous
// range [Start, Start+Count) of the tree's reordered point array.
type Node struct {
	Box      geom.AABB // the node's cube
	Center   geom.Vec3 // geometric centroid of the points under the node
	Radius   float64   // radius of the ball centered at Center enclosing all points
	Start    int32     // first point index (tree order)
	Count    int32     // number of points under the node
	Children [8]int32  // child node indices, NoChild where absent
	Parent   int32     // parent node index, NoChild for the root
	Leaf     bool
}

// Tree is a linearized octree over a point set.
type Tree struct {
	Nodes    []Node
	Points   []geom.Vec3 // points in tree (depth-first) order
	Perm     []int32     // Perm[i] = original index of Points[i]
	LeafIdx  []int32     // node indices of leaves, in tree order
	LeafSize int

	// X, Y, Z are structure-of-arrays mirrors of Points, maintained by
	// Build, Transform and FillSoA. The flat evaluation kernels
	// (internal/core's interaction lists) stream these instead of the
	// AoS Points so each inner loop touches three contiguous float64
	// streams.
	X, Y, Z []float64

	// CX, CY, CZ mirror the node centers the same way. Far-field list
	// evaluation reads only a node's center; streaming these avoids
	// striding through the ~120-byte Node structs once per far entry.
	CX, CY, CZ []float64
}

// FillSoA (re)derives the X/Y/Z coordinate mirrors from Points and the
// CX/CY/CZ mirrors from the node centers. Fresh slices are always
// allocated so that shallow Tree copies which replace Points (e.g.
// NaN-poisoned restricted solvers) never alias the source tree's mirrors.
func (t *Tree) FillSoA() {
	n := len(t.Points)
	t.X, t.Y, t.Z = make([]float64, n), make([]float64, n), make([]float64, n)
	for i, p := range t.Points {
		t.X[i], t.Y[i], t.Z[i] = p.X, p.Y, p.Z
	}
	m := len(t.Nodes)
	t.CX, t.CY, t.CZ = make([]float64, m), make([]float64, m), make([]float64, m)
	for i := range t.Nodes {
		c := t.Nodes[i].Center
		t.CX[i], t.CY[i], t.CZ[i] = c.X, c.Y, c.Z
	}
}

// Build constructs an octree over pts with the given maximum leaf size
// (≤0 selects DefaultLeafSize). The input slice is not modified.
func Build(pts []geom.Vec3, leafSize int) *Tree {
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	t := &Tree{
		Points:   make([]geom.Vec3, len(pts)),
		Perm:     make([]int32, len(pts)),
		LeafSize: leafSize,
	}
	copy(t.Points, pts)
	for i := range t.Perm {
		t.Perm[i] = int32(i)
	}
	if len(pts) == 0 {
		t.FillSoA()
		return t
	}
	root := geom.NewAABB(pts...).Cube()
	// Inflate degenerate root boxes so OctantIndex is well-defined.
	if root.Size().MaxComponent() == 0 {
		root = geom.AABB{
			Min: root.Min.Sub(geom.V(0.5, 0.5, 0.5)),
			Max: root.Max.Add(geom.V(0.5, 0.5, 0.5)),
		}
	}
	t.Nodes = make([]Node, 0, 2*len(pts)/leafSize+8)
	t.build(root, 0, int32(len(pts)), 0, NoChild)
	t.computeGeometry(0)
	for i := range t.Nodes {
		if t.Nodes[i].Leaf {
			t.LeafIdx = append(t.LeafIdx, int32(i))
		}
	}
	t.FillSoA()
	return t
}

// build recursively subdivides [start, start+count) and returns the node
// index. Points are partitioned in place into octant buckets.
func (t *Tree) build(box geom.AABB, start, count int32, depth int, parent int32) int32 {
	idx := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{
		Box:      box,
		Start:    start,
		Count:    count,
		Parent:   parent,
		Children: [8]int32{NoChild, NoChild, NoChild, NoChild, NoChild, NoChild, NoChild, NoChild},
	})
	if count <= int32(t.LeafSize) || depth >= maxDepth {
		t.Nodes[idx].Leaf = true
		return idx
	}

	// Count points per octant.
	var cnt [8]int32
	for i := start; i < start+count; i++ {
		cnt[box.OctantIndex(t.Points[i])]++
	}
	// If all points land in one octant of a tiny box, give up (coincident).
	if box.Size().MaxComponent() < 1e-9 {
		t.Nodes[idx].Leaf = true
		return idx
	}

	// Prefix sums → bucket offsets.
	var off, next [8]int32
	off[0] = start
	for o := 1; o < 8; o++ {
		off[o] = off[o-1] + cnt[o-1]
	}
	next = off

	// In-place cycle sort into buckets.
	for o := 0; o < 8; o++ {
		end := off[o] + cnt[o]
		for i := next[o]; i < end; {
			p := t.Points[i]
			dst := box.OctantIndex(p)
			if dst == o {
				i++
				next[o] = i
				continue
			}
			j := next[dst]
			t.Points[i], t.Points[j] = t.Points[j], t.Points[i]
			t.Perm[i], t.Perm[j] = t.Perm[j], t.Perm[i]
			next[dst]++
		}
	}

	// Recurse into non-empty octants in order (gives Morton layout).
	for o := 0; o < 8; o++ {
		if cnt[o] == 0 {
			continue
		}
		child := t.build(box.Octant(o), off[o], cnt[o], depth+1, idx)
		t.Nodes[idx].Children[o] = child
	}
	return idx
}

// computeGeometry fills Center (centroid) and Radius (enclosing ball about
// the centroid) bottom-up for the subtree rooted at n.
func (t *Tree) computeGeometry(n int32) {
	nd := &t.Nodes[n]
	var c geom.Vec3
	for i := nd.Start; i < nd.Start+nd.Count; i++ {
		c = c.Add(t.Points[i])
	}
	if nd.Count > 0 {
		c = c.Scale(1 / float64(nd.Count))
	}
	nd.Center = c
	var r2 float64
	for i := nd.Start; i < nd.Start+nd.Count; i++ {
		if d := t.Points[i].Dist2(c); d > r2 {
			r2 = d
		}
	}
	nd.Radius = math.Sqrt(r2)
	for _, ch := range nd.Children {
		if ch != NoChild {
			t.computeGeometry(ch)
		}
	}
}

// Root returns the root node index (0) — valid only for non-empty trees.
func (t *Tree) Root() int32 { return 0 }

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int { return len(t.LeafIdx) }

// Leaves returns the leaf node indices in tree order.
func (t *Tree) Leaves() []int32 { return t.LeafIdx }

// PointRange returns the tree-order point index range [lo, hi) of node n.
func (t *Tree) PointRange(n int32) (lo, hi int32) {
	nd := &t.Nodes[n]
	return nd.Start, nd.Start + nd.Count
}

// Depth returns the depth of node n (root = 0).
func (t *Tree) Depth(n int32) int {
	d := 0
	for t.Nodes[n].Parent != NoChild {
		n = t.Nodes[n].Parent
		d++
	}
	return d
}

// Height returns the height of the tree (leaf depth maximum).
func (t *Tree) Height() int {
	h := 0
	for _, l := range t.LeafIdx {
		if d := t.Depth(l); d > h {
			h = d
		}
	}
	return h
}

// MemoryBytes estimates the memory footprint of the tree structure in
// bytes; used by the replication-cost model (pure-MPI ranks each hold a
// full copy, the paper's §IV-B memory argument).
func (t *Tree) MemoryBytes() int64 {
	const nodeBytes = int64(8*6+8*4+8*4+4+4+4+8) + 8 // struct estimate incl. padding
	// Points (AoS) plus the X/Y/Z SoA mirrors: 24 + 24 bytes per point;
	// nodes additionally carry the 24-byte CX/CY/CZ center mirrors.
	return int64(len(t.Nodes))*(nodeBytes+24) + int64(len(t.Points))*48 + int64(len(t.Perm))*4
}

// Transform returns a copy of the tree with the rigid transform applied to
// every point, node center and node box. Radii are invariant under rigid
// motion, so the expensive build is not repeated — the paper's §IV-C
// docking-reuse observation.
func (t *Tree) Transform(m geom.Rigid) *Tree {
	out := &Tree{
		Nodes:    make([]Node, len(t.Nodes)),
		Points:   make([]geom.Vec3, len(t.Points)),
		Perm:     t.Perm, // shared: the permutation is pose-independent
		LeafIdx:  t.LeafIdx,
		LeafSize: t.LeafSize,
	}
	for i, p := range t.Points {
		out.Points[i] = m.Apply(p)
	}
	copy(out.Nodes, t.Nodes)
	for i := range out.Nodes {
		nd := &out.Nodes[i]
		nd.Center = m.Apply(nd.Center)
		// The transformed box is the AABB of the transformed cube corners;
		// cheaper and sufficient: recompute from center ± radius. Treecode
		// only uses Center and Radius, Box is advisory after transform.
		r := geom.V(nd.Radius, nd.Radius, nd.Radius)
		nd.Box = geom.AABB{Min: nd.Center.Sub(r), Max: nd.Center.Add(r)}
	}
	// After the nodes: FillSoA mirrors both points and node centers.
	out.FillSoA()
	return out
}

// Validate checks the structural invariants of the tree and returns the
// first violation: contiguous child ranges covering the parent, points
// inside node boxes (pre-transform), enclosing-ball property, and a
// permutation that is a bijection.
func (t *Tree) Validate() error {
	if len(t.Points) == 0 {
		if len(t.Nodes) != 0 {
			return fmt.Errorf("empty tree has %d nodes", len(t.Nodes))
		}
		return nil
	}
	if len(t.X) != len(t.Points) || len(t.Y) != len(t.Points) || len(t.Z) != len(t.Points) {
		return fmt.Errorf("SoA mirror lengths (%d,%d,%d) != %d points", len(t.X), len(t.Y), len(t.Z), len(t.Points))
	}
	for i, p := range t.Points {
		if t.X[i] != p.X || t.Y[i] != p.Y || t.Z[i] != p.Z {
			return fmt.Errorf("SoA mirror diverges from Points at %d", i)
		}
	}
	if len(t.CX) != len(t.Nodes) || len(t.CY) != len(t.Nodes) || len(t.CZ) != len(t.Nodes) {
		return fmt.Errorf("node-center mirror lengths (%d,%d,%d) != %d nodes", len(t.CX), len(t.CY), len(t.CZ), len(t.Nodes))
	}
	for i := range t.Nodes {
		c := t.Nodes[i].Center
		if t.CX[i] != c.X || t.CY[i] != c.Y || t.CZ[i] != c.Z {
			return fmt.Errorf("node-center mirror diverges at node %d", i)
		}
	}
	seen := make([]bool, len(t.Perm))
	for _, p := range t.Perm {
		if p < 0 || int(p) >= len(t.Perm) || seen[p] {
			return fmt.Errorf("perm is not a bijection at %d", p)
		}
		seen[p] = true
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Start < 0 || nd.Start+nd.Count > int32(len(t.Points)) {
			return fmt.Errorf("node %d range [%d,%d) out of bounds", i, nd.Start, nd.Start+nd.Count)
		}
		for j := nd.Start; j < nd.Start+nd.Count; j++ {
			if d := t.Points[j].Dist(nd.Center); d > nd.Radius*(1+1e-12)+1e-12 {
				return fmt.Errorf("node %d: point %d outside enclosing ball (%g > %g)", i, j, d, nd.Radius)
			}
		}
		if nd.Leaf {
			continue
		}
		// Children must tile the parent's range in order.
		at := nd.Start
		total := int32(0)
		for _, ch := range nd.Children {
			if ch == NoChild {
				continue
			}
			c := &t.Nodes[ch]
			if c.Start != at {
				return fmt.Errorf("node %d: child %d starts at %d, want %d", i, ch, c.Start, at)
			}
			if c.Parent != int32(i) {
				return fmt.Errorf("node %d: child %d has parent %d", i, ch, c.Parent)
			}
			at += c.Count
			total += c.Count
		}
		if total != nd.Count {
			return fmt.Errorf("node %d: children cover %d of %d points", i, total, nd.Count)
		}
	}
	return nil
}
