package octree

import (
	"math"

	"octgb/internal/geom"
)

// This file holds the in-place maintenance operations behind incremental
// (streaming) evaluation: points move a little each frame, so instead of
// rebuilding the tree the caller patches the moved points (SetPoint) and,
// when accumulated drift warrants it, refits every node's bounding geometry
// to the current points (RefitAll). The tree TOPOLOGY — node ranges,
// children, Perm, leaf set — is frozen: a refit changes only Center, Radius,
// Box and the CX/CY/CZ mirrors. Leaf membership therefore reflects the
// build-time positions; for bounded drift that only loosens the enclosing
// balls slightly (the session layer bounds it with slack margins and builds
// a fresh tree — a new Session — when a trajectory walks far from home).

// SetPoint overwrites point i (tree order) in place, keeping the X/Y/Z SoA
// mirrors coherent. Node geometry is NOT updated — the enclosing-ball
// invariant is restored by the next RefitAll; until then callers must
// account for the displacement themselves (the slack margins of
// engine.Session).
func (t *Tree) SetPoint(i int32, p geom.Vec3) {
	t.Points[i] = p
	t.X[i], t.Y[i], t.Z[i] = p.X, p.Y, p.Z
}

// RefitAll recomputes every node's Center (centroid of the points under it)
// and Radius (enclosing ball about that centroid) from the CURRENT points,
// in place, and refreshes the CX/CY/CZ center mirrors. Box is reset to
// center ± radius, the same advisory form Transform leaves behind. The
// result is geometrically identical to what computeGeometry produces at
// build time for these positions — only the topology (ranges, Perm) still
// reflects the original build — so Validate passes on a refit tree.
func (t *Tree) RefitAll() {
	for n := range t.Nodes {
		nd := &t.Nodes[n]
		var c geom.Vec3
		for i := nd.Start; i < nd.Start+nd.Count; i++ {
			c = c.Add(t.Points[i])
		}
		if nd.Count > 0 {
			c = c.Scale(1 / float64(nd.Count))
		}
		nd.Center = c
		var r2 float64
		for i := nd.Start; i < nd.Start+nd.Count; i++ {
			if d := t.Points[i].Dist2(c); d > r2 {
				r2 = d
			}
		}
		nd.Radius = math.Sqrt(r2)
		r := geom.V(nd.Radius, nd.Radius, nd.Radius)
		nd.Box = geom.AABB{Min: nd.Center.Sub(r), Max: nd.Center.Add(r)}
		t.CX[n], t.CY[n], t.CZ[n] = c.X, c.Y, c.Z
	}
}

// TransformInto is Transform writing into dst, reusing dst's backing
// storage when it is large enough — the per-pose fast path of a docking
// sweep, where the same base tree is placed at thousands of poses and a
// fresh allocation per pose would dominate. dst may be nil (a new tree is
// allocated) or a tree previously produced by TransformInto from any base;
// the result is identical to Transform(m). Perm and LeafIdx are shared
// with the receiver, like Transform.
func (t *Tree) TransformInto(dst *Tree, m geom.Rigid) *Tree {
	if dst == nil {
		dst = new(Tree)
	}
	dst.Perm = t.Perm
	dst.LeafIdx = t.LeafIdx
	dst.LeafSize = t.LeafSize
	dst.Nodes = append(dst.Nodes[:0], t.Nodes...)
	np := len(t.Points)
	dst.Points = grow(dst.Points, np)
	dst.X, dst.Y, dst.Z = grow(dst.X, np), grow(dst.Y, np), grow(dst.Z, np)
	for i, p := range t.Points {
		q := m.Apply(p)
		dst.Points[i] = q
		dst.X[i], dst.Y[i], dst.Z[i] = q.X, q.Y, q.Z
	}
	nn := len(t.Nodes)
	dst.CX, dst.CY, dst.CZ = grow(dst.CX, nn), grow(dst.CY, nn), grow(dst.CZ, nn)
	for i := range dst.Nodes {
		nd := &dst.Nodes[i]
		nd.Center = m.Apply(nd.Center)
		r := geom.V(nd.Radius, nd.Radius, nd.Radius)
		nd.Box = geom.AABB{Min: nd.Center.Sub(r), Max: nd.Center.Add(r)}
		dst.CX[i], dst.CY[i], dst.CZ[i] = nd.Center.X, nd.Center.Y, nd.Center.Z
	}
	return dst
}

// grow returns s resized to n elements, reusing its backing array when the
// capacity allows.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// PointLeaves returns, for every point (tree order), the node index of the
// leaf that owns it — the lookup incremental callers need to map a moved
// point to its dirty leaf. O(points); call once and keep the slice (the
// topology, and therefore the mapping, never changes).
func (t *Tree) PointLeaves() []int32 {
	out := make([]int32, len(t.Points))
	for _, l := range t.LeafIdx {
		nd := &t.Nodes[l]
		for i := nd.Start; i < nd.Start+nd.Count; i++ {
			out[i] = l
		}
	}
	return out
}

// InvPerm returns the inverse of Perm: InvPerm()[orig] = tree-order index.
// Incremental callers use it to route original-order updates (a moved atom)
// to tree-order storage.
func (t *Tree) InvPerm() []int32 {
	out := make([]int32, len(t.Perm))
	for i, orig := range t.Perm {
		out[orig] = int32(i)
	}
	return out
}
