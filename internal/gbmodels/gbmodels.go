// Package gbmodels implements the pairwise-descreening Born-radius models
// used by the comparison packages in the paper's Table II: HCT
// (Hawkins–Cramer–Truhlar, used by Amber and Gromacs), OBC (Onufriev–
// Bashford–Case, used by NAMD), a STILL-style variant (used by Tinker and
// GBr⁶), and the volume-based r⁶ model of GBr⁶. Together with
// internal/nblist these are the substrates from which internal/baselines
// assembles the Amber/Gromacs/NAMD/Tinker/GBr⁶ stand-ins.
package gbmodels

import (
	"math"

	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/nblist"
)

// Model selects the Born-radius formulation.
type Model int

const (
	// HCT is pairwise descreening with scaled neighbour radii.
	HCT Model = iota
	// OBC applies the Onufriev–Bashford–Case tanh rescaling on top of the
	// HCT descreening sum (the "OBC2" parameterization).
	OBC
	// STILL is the empirical Still/Tinker-style variant; this library
	// models it as descreening with a much smaller neighbour scale, which
	// reproduces the systematically smaller |E_pol| (≈70 % of the exact
	// value) the paper observes for Tinker in Figure 9.
	STILL
	// VolR6 is the volume-based r⁶ model of GBr⁶:
	// 1/R³ = 1/ρ³ − Σ_j ρ_j³/r_ij⁶.
	VolR6
)

func (m Model) String() string {
	switch m {
	case HCT:
		return "HCT"
	case OBC:
		return "OBC"
	case STILL:
		return "STILL"
	case VolR6:
		return "VolR6"
	}
	return "unknown"
}

// Params tunes a model evaluation.
type Params struct {
	// Offset is subtracted from vdW radii to get intrinsic radii
	// (the conventional 0.09 Å). Zero selects the default.
	Offset float64
	// Scale is the neighbour descreening scale factor S_j (HCT uses ≈0.8;
	// the STILL stand-in uses a smaller value). Zero selects the model
	// default.
	Scale float64
	// Cutoff truncates the descreening sum (0 = no cutoff, all pairs) —
	// the rgbmax-style parameter of the MD packages.
	Cutoff float64
}

func (p Params) withDefaults(m Model) Params {
	switch {
	case p.Offset < 0:
		p.Offset = 0 // explicit "no offset"
	case p.Offset == 0 && m == VolR6:
		// The volume model integrates over full atom spheres; no
		// intrinsic-radius offset (calibrated against the surface-r⁶
		// reference).
	case p.Offset == 0:
		p.Offset = 0.09
	}
	if p.Scale == 0 {
		switch m {
		case OBC:
			// OBC's tanh rescaling compensates part of the descreening;
			// a smaller neighbour scale (calibrated: energy ratio ≈1.09
			// vs the surface-r⁶ reference, comparable to HCT) keeps the
			// NAMD stand-in in Figure 9's "matches closely" band.
			p.Scale = 0.7
		case STILL:
			// Calibrated so STILL-radii energies land near 70 % of the
			// surface-r⁶ reference, as the paper observes for Tinker.
			p.Scale = 0.87
		case VolR6:
			// Effective neighbour-volume scale compensating the
			// non-overlap assumption (calibrated: energy ratio ≈1.05).
			p.Scale = 1.3
		default:
			p.Scale = 0.8
		}
	}
	return p
}

// Result carries the radii and the deterministic work counters the
// virtual-time model consumes.
type Result struct {
	R              []float64
	PairsEvaluated int64 // descreening pair terms computed
	NblistTests    int64 // candidate distance tests during neighbour search
}

// Radii computes Born radii for all atoms under the given model.
func Radii(model Model, mol *molecule.Molecule, p Params) Result {
	p = p.withDefaults(model)
	n := mol.N()
	res := Result{R: make([]float64, n)}
	if n == 0 {
		return res
	}

	pts := make([]geom.Vec3, n)
	for i := range mol.Atoms {
		pts[i] = mol.Atoms[i].Pos
	}
	var cl *nblist.CellList
	cutoff := p.Cutoff
	if cutoff > 0 {
		cl = nblist.NewCellList(pts, cutoff)
	}

	rcap := 2 * mol.Bounds().HalfDiagonal()
	if rcap < 10 {
		rcap = 10
	}

	forEachNeighbor := func(i int, fn func(j int)) {
		if cl != nil {
			res.NblistTests += cl.ForEachNeighbor(i, cutoff, func(j int32) { fn(int(j)) })
			return
		}
		for j := 0; j < n; j++ {
			if j != i {
				fn(j)
			}
		}
	}

	for i := 0; i < n; i++ {
		ai := &mol.Atoms[i]
		rhoI := ai.Radius - p.Offset
		if rhoI < 0.3 {
			rhoI = 0.3
		}
		switch model {
		case VolR6:
			inv3 := 1 / (rhoI * rhoI * rhoI)
			forEachNeighbor(i, func(j int) {
				aj := &mol.Atoms[j]
				r := ai.Pos.Dist(aj.Pos)
				// Clamp heavily overlapping pairs to contact distance to
				// avoid over-subtraction.
				if min := ai.Radius + aj.Radius; r < min {
					r = min
				}
				r2 := r * r
				rhoJ := (aj.Radius - p.Offset) * p.Scale
				inv3 -= (rhoJ * rhoJ * rhoJ) / (r2 * r2 * r2)
				res.PairsEvaluated++
			})
			minInv3 := 1 / (rcap * rcap * rcap)
			if inv3 < minInv3 {
				inv3 = minInv3
			}
			res.R[i] = math.Cbrt(1 / inv3)
		default:
			var sum float64
			forEachNeighbor(i, func(j int) {
				aj := &mol.Atoms[j]
				sj := (aj.Radius - p.Offset) * p.Scale
				sum += hctPairIntegral(ai.Pos.Dist(aj.Pos), rhoI, sj)
				res.PairsEvaluated++
			})
			switch model {
			case OBC:
				// Ψ = ρ̃·I with ρ̃ = ρ (already offset); OBC2 constants.
				psi := rhoI * 0.5 * sum
				const alpha, beta, gamma = 1.0, 0.8, 4.85
				invR := 1/rhoI - math.Tanh(alpha*psi-beta*psi*psi+gamma*psi*psi*psi)/ai.Radius
				res.R[i] = clampRadius(1/invR, rhoI, rcap)
			default: // HCT, STILL
				invR := 1/rhoI - 0.5*sum
				res.R[i] = clampRadius(1/invR, rhoI, rcap)
			}
		}
	}
	return res
}

// hctPairIntegral is the standard HCT descreening integral I(r, ρ_i, s_j)
// for neighbour descreening radius s_j at distance r.
func hctPairIntegral(r, rhoI, sj float64) float64 {
	if sj <= 0 {
		return 0
	}
	if r+sj <= rhoI {
		return 0 // neighbour's descreening sphere entirely inside atom i
	}
	u := r + sj
	l := rhoI
	if r-sj > rhoI {
		l = r - sj
	}
	inv := func(x float64) float64 { return 1 / x }
	term := inv(l) - inv(u) +
		(r/4)*(inv(u)*inv(u)-inv(l)*inv(l)) +
		(1/(2*r))*math.Log(l/u) +
		(sj*sj/(4*r))*(inv(l)*inv(l)-inv(u)*inv(u))
	if rhoI < sj-r {
		// Atom i engulfed by j's descreening sphere.
		term += 2 * (inv(rhoI) - inv(l))
	}
	return term
}

func clampRadius(r, lo, hi float64) float64 {
	if r != r || r <= 0 || r > hi { // NaN, non-positive or above cap
		return hi
	}
	if r < lo {
		return lo
	}
	return r
}

// EpolCutoff computes the pairwise GB energy with a distance cutoff, the
// way the nblist-based packages do (pairs beyond the cutoff are truncated,
// which is their source of error for large molecules). cutoff ≤ 0 means no
// truncation. It returns the energy (kcal/mol) and the number of pair
// terms evaluated.
func EpolCutoff(mol *molecule.Molecule, R []float64, cutoff float64, mode gb.MathMode) (float64, int64) {
	n := mol.N()
	tau := gb.Tau(gb.SolventDielectric)
	var sum float64
	var pairs int64
	if cutoff <= 0 {
		return gb.EpolNaive(mol, R, mode), int64(n) * int64(n-1) / 2
	}
	pts := make([]geom.Vec3, n)
	for i := range mol.Atoms {
		pts[i] = mol.Atoms[i].Pos
	}
	cl := nblist.NewCellList(pts, cutoff)
	for i := 0; i < n; i++ {
		ai := &mol.Atoms[i]
		sum += ai.Charge * ai.Charge / R[i]
		cl.ForEachNeighbor(i, cutoff, func(j int32) {
			if int(j) < i {
				return // each unordered pair once
			}
			aj := &mol.Atoms[j]
			sum += 2 * gb.PairTerm(ai.Charge, aj.Charge, ai.Pos.Dist2(aj.Pos), R[i], R[j], mode)
			pairs++
		})
	}
	return -0.5 * tau * gb.CoulombConstant * sum, pairs
}
