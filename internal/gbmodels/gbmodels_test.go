package gbmodels

import (
	"math"
	"testing"

	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

func isolated(r float64) *molecule.Molecule {
	return &molecule.Molecule{Name: "iso", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: r, Charge: -1},
	}}
}

func TestIsolatedAtomRadii(t *testing.T) {
	m := isolated(1.7)
	for _, model := range []Model{HCT, STILL} {
		res := Radii(model, m, Params{})
		want := 1.7 - 0.09 // intrinsic radius
		if math.Abs(res.R[0]-want) > 1e-12 {
			t.Errorf("%v isolated R = %v, want %v", model, res.R[0], want)
		}
	}
	// VolR6 uses no offset by default: isolated R = vdW radius.
	if res := Radii(VolR6, m, Params{}); math.Abs(res.R[0]-1.7) > 1e-12 {
		t.Errorf("VolR6 isolated R = %v, want 1.7", res.R[0])
	}
	// OBC with zero descreening: tanh(0)=0 ⇒ R = ρ̃.
	res := Radii(OBC, m, Params{})
	if math.Abs(res.R[0]-(1.7-0.09)) > 1e-12 {
		t.Errorf("OBC isolated R = %v", res.R[0])
	}
}

func TestNeighborIncreasesBornRadius(t *testing.T) {
	// Descreening by a neighbour displaces solvent ⇒ R grows.
	single := isolated(1.7)
	pair := &molecule.Molecule{Name: "pair", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.7, Charge: -1},
		{Pos: geom.V(3.5, 0, 0), Radius: 1.7, Charge: 1},
	}}
	for _, model := range []Model{HCT, OBC, STILL, VolR6} {
		r1 := Radii(model, single, Params{}).R[0]
		r2 := Radii(model, pair, Params{}).R[0]
		if r2 <= r1 {
			t.Errorf("%v: neighbour did not increase R: %v -> %v", model, r1, r2)
		}
	}
}

func TestBuriedLargerThanSurface(t *testing.T) {
	m := molecule.GenerateProtein("b", 1200, 5)
	for _, model := range []Model{HCT, OBC, VolR6} {
		res := Radii(model, m, Params{})
		c := m.Centroid()
		rOut := m.Bounds().Size().MaxComponent() / 2
		var inner, outer, ni, no float64
		for i, a := range m.Atoms {
			d := a.Pos.Dist(c)
			if d < 0.3*rOut {
				inner += res.R[i]
				ni++
			} else if d > 0.85*rOut {
				outer += res.R[i]
				no++
			}
		}
		if ni == 0 || no == 0 {
			t.Skip("no inner/outer atoms")
		}
		if inner/ni <= outer/no {
			t.Errorf("%v: buried R̄ %v ≤ surface R̄ %v", model, inner/ni, outer/no)
		}
	}
}

func TestCutoffApproachesNoCutoff(t *testing.T) {
	m := molecule.GenerateProtein("c", 800, 6)
	full := Radii(HCT, m, Params{})
	big := Radii(HCT, m, Params{Cutoff: 1000})
	for i := range full.R {
		if math.Abs(full.R[i]-big.R[i]) > 1e-9 {
			t.Fatalf("atom %d: cutoff-1000 radius %v != full %v", i, big.R[i], full.R[i])
		}
	}
	// A small cutoff under-descreens: radii shrink toward intrinsic.
	small := Radii(HCT, m, Params{Cutoff: 6})
	var meanFull, meanSmall float64
	for i := range full.R {
		meanFull += full.R[i]
		meanSmall += small.R[i]
	}
	if meanSmall >= meanFull {
		t.Errorf("small cutoff did not reduce radii: %v vs %v", meanSmall, meanFull)
	}
}

func TestPairCountersWithCutoff(t *testing.T) {
	m := molecule.GenerateProtein("p", 600, 7)
	full := Radii(HCT, m, Params{})
	cut := Radii(HCT, m, Params{Cutoff: 8})
	if full.PairsEvaluated != int64(600)*599 {
		t.Errorf("full pairs = %d", full.PairsEvaluated)
	}
	if cut.PairsEvaluated >= full.PairsEvaluated {
		t.Errorf("cutoff did not reduce pairs: %d", cut.PairsEvaluated)
	}
	if cut.NblistTests == 0 {
		t.Error("nblist tests not counted")
	}
}

func TestSTILLGivesSmallerEnergyMagnitude(t *testing.T) {
	// The paper's Figure 9: Tinker (STILL) reports ≈70 % of the naive
	// energy. Our STILL stand-in must reproduce systematically smaller
	// |E_pol| than the surface-r⁶ reference.
	m := molecule.GenerateProtein("s", 800, 8)
	q := surface.Sample(m, surface.Default())
	Rref := gb.BornRadiiR6(m, q)
	eRef := gb.EpolNaive(m, Rref, gb.Exact)

	Rstill := Radii(STILL, m, Params{}).R
	eStill := gb.EpolNaive(m, Rstill, gb.Exact)

	ratio := eStill / eRef
	if ratio < 0.45 || ratio > 0.92 {
		t.Errorf("STILL/naive energy ratio %v outside the Tinker-like band", ratio)
	}
}

func TestHCTEnergyCloseToReference(t *testing.T) {
	// Figure 9: Amber/Gromacs (HCT) energies track the naive energy
	// closely. Different Born-radius models legitimately differ by some
	// percent; assert the ratio is near 1.
	m := molecule.GenerateProtein("h", 800, 9)
	q := surface.Sample(m, surface.Default())
	Rref := gb.BornRadiiR6(m, q)
	eRef := gb.EpolNaive(m, Rref, gb.Exact)

	Rhct := Radii(HCT, m, Params{}).R
	eHct := gb.EpolNaive(m, Rhct, gb.Exact)
	if ratio := eHct / eRef; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("HCT/naive energy ratio %v too far from 1", ratio)
	}
}

func TestEpolCutoffConvergesToNaive(t *testing.T) {
	m := molecule.GenerateProtein("e", 500, 10)
	q := surface.Sample(m, surface.Default())
	R := gb.BornRadiiR6(m, q)
	exact := gb.EpolNaive(m, R, gb.Exact)

	prevErr := math.Inf(1)
	for _, cutoff := range []float64{8, 16, 32, 64} {
		e, _ := EpolCutoff(m, R, cutoff, gb.Exact)
		err := math.Abs(e - exact)
		if err > prevErr+1e-9 {
			t.Errorf("cutoff %v: error %v did not shrink (prev %v)", cutoff, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-6*math.Abs(exact) {
		t.Errorf("cutoff-64 error %v still large", prevErr)
	}
	// cutoff ≤ 0 = exact.
	e0, _ := EpolCutoff(m, R, 0, gb.Exact)
	if e0 != exact {
		t.Errorf("no-cutoff path %v != naive %v", e0, exact)
	}
}

func TestModelString(t *testing.T) {
	if HCT.String() != "HCT" || OBC.String() != "OBC" || STILL.String() != "STILL" || VolR6.String() != "VolR6" {
		t.Error("model names wrong")
	}
	if Model(99).String() != "unknown" {
		t.Error("unknown model name")
	}
}

func BenchmarkHCTRadii2000(b *testing.B) {
	m := molecule.GenerateProtein("b", 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Radii(HCT, m, Params{Cutoff: 25})
	}
}
