package molecule

import (
	"math"
	"testing"

	"octgb/internal/geom"
)

func TestGenerateProteinBasics(t *testing.T) {
	m := GenerateProtein("test", 1000, 1)
	if m.N() != 1000 {
		t.Fatalf("N = %d, want 1000", m.N())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Near-neutral: |total charge| should be a small integer.
	q := m.TotalCharge()
	if math.Abs(q) > 5 {
		t.Errorf("total charge %v too large", q)
	}
	if math.Abs(q-math.Round(q)) > 1e-9 {
		t.Errorf("total charge %v not near-integer", q)
	}
}

func TestGenerateProteinDeterministic(t *testing.T) {
	a := GenerateProtein("a", 500, 42)
	b := GenerateProtein("b", 500, 42)
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatalf("atom %d differs between same-seed molecules", i)
		}
	}
	c := GenerateProtein("c", 500, 43)
	same := true
	for i := range a.Atoms {
		if a.Atoms[i] != c.Atoms[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical molecules")
	}
}

func TestGenerateProteinDensity(t *testing.T) {
	// The realized density should be near the protein density constant.
	m := GenerateProtein("dens", 20000, 7)
	b := m.Bounds()
	// Estimate occupied volume via the bounding sphere of the blob — the
	// blob fills most of it; just check the radius scale is right within 2x.
	wantR := math.Cbrt(3 * 20000 / (4 * math.Pi * AtomDensity))
	gotR := b.Size().MaxComponent() / 2
	if gotR < wantR*0.7 || gotR > wantR*1.6 {
		t.Errorf("blob radius %v out of range (expect ≈%v)", gotR, wantR)
	}
}

func TestGenerateCapsidIsShell(t *testing.T) {
	m := GenerateCapsid("shell", 20000, 20, 3)
	if m.N() != 20000 {
		t.Fatalf("N = %d", m.N())
	}
	c := m.Centroid()
	if c.Norm() > 3 {
		t.Errorf("shell centroid %v not near origin", c)
	}
	// All atoms should be within a thin radial band; measure spread.
	minR, maxR := math.Inf(1), 0.0
	for _, a := range m.Atoms {
		r := a.Pos.Norm()
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR-minR > 25 {
		t.Errorf("shell thickness %v exceeds requested 20 (+slack)", maxR-minR)
	}
	if minR < 10 {
		t.Errorf("shell not hollow: minR=%v", minR)
	}
}

func TestGenerateComplexContainsBoth(t *testing.T) {
	m := GenerateComplex("cx", 2000, 300, 5)
	if m.N() != 2300 {
		t.Fatalf("N = %d, want 2300", m.N())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZDockLikeSuite(t *testing.T) {
	s := ZDockLikeSuite(84)
	if len(s) != 84 {
		t.Fatalf("suite size %d", len(s))
	}
	if s[0].Atoms != 400 {
		t.Errorf("first entry %d atoms, want 400", s[0].Atoms)
	}
	if s[83].Atoms != 16301 {
		t.Errorf("last entry %d atoms, want 16301", s[83].Atoms)
	}
	for i := 1; i < len(s); i++ {
		if s[i].Atoms < s[i-1].Atoms {
			t.Errorf("suite not monotone at %d", i)
		}
	}
	m := s[0].Build()
	if m.N() != 400 {
		t.Errorf("built %d atoms", m.N())
	}
}

func TestTransformPreservesInternalGeometry(t *testing.T) {
	m := GenerateProtein("t", 100, 9)
	tr := geom.RotationAxisAngle(geom.V(1, 2, 3), 1.1)
	tr.T = geom.V(10, -5, 2)
	mt := m.Transform(tr)
	// Pairwise distances are invariant under rigid transforms.
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			d0 := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
			d1 := mt.Atoms[i].Pos.Dist(mt.Atoms[j].Pos)
			if math.Abs(d0-d1) > 1e-9 {
				t.Fatalf("distance %d-%d changed: %v -> %v", i, j, d0, d1)
			}
		}
	}
	// Original untouched.
	if m.Atoms[0].Pos == mt.Atoms[0].Pos {
		t.Error("transform did not move atoms (or mutated input)")
	}
}

func TestMerge(t *testing.T) {
	a := GenerateProtein("a", 50, 1)
	b := GenerateProtein("b", 70, 2)
	m := Merge("ab", a, b)
	if m.N() != 120 {
		t.Fatalf("merged N = %d", m.N())
	}
	if m.Atoms[0] != a.Atoms[0] || m.Atoms[50] != b.Atoms[0] {
		t.Error("merge order wrong")
	}
}

func TestValidateCatchesBadAtoms(t *testing.T) {
	m := &Molecule{Name: "bad", Atoms: []Atom{{Pos: geom.V(0, 0, 0), Radius: 0, Charge: 0}}}
	if err := m.Validate(); err == nil {
		t.Error("zero radius not caught")
	}
	m = &Molecule{Name: "bad", Atoms: []Atom{{Pos: geom.V(math.NaN(), 0, 0), Radius: 1, Charge: 0}}}
	if err := m.Validate(); err == nil {
		t.Error("NaN position not caught")
	}
}

func TestCentroidOfEmpty(t *testing.T) {
	m := &Molecule{}
	if m.Centroid() != (geom.Vec3{}) {
		t.Error("empty centroid not zero")
	}
}
