package molecule

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// HashSize is the size of a molecule content hash in bytes.
const HashSize = sha256.Size

// Hash returns a deterministic content hash of the molecule: the atoms are
// encoded in order as five little-endian IEEE-754 float64 words each
// (x, y, z, radius, charge — 40 bytes per atom) and the byte stream is
// digested with SHA-256. The name is deliberately excluded: two molecules
// with identical atoms are the same problem regardless of label, which is
// exactly the identity the serving layer's prepared-problem cache needs.
//
// The hash is order-sensitive by design. Atom order determines octree
// construction and floating-point summation order, so a permuted molecule
// is a different cacheable problem even though its physics is the same;
// canonicalizing the order here would let a cache hit return bitwise
// different energies than a cold run of the caller's molecule.
//
// The encoding is over raw float bits, so +0/-0 and NaN payloads are
// distinguished; Validate rejects NaN charges and non-finite positions, so
// validated molecules never collide on such artifacts.
//
// Hash performs a constant number of heap allocations regardless of atom
// count (see TestHashAllocationBounded).
func (m *Molecule) Hash() [HashSize]byte {
	h := sha256.New()
	var buf [40]byte
	for i := range m.Atoms {
		a := &m.Atoms[i]
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(a.Pos.X))
		binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(a.Pos.Y))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(a.Pos.Z))
		binary.LittleEndian.PutUint64(buf[24:32], math.Float64bits(a.Radius))
		binary.LittleEndian.PutUint64(buf[32:40], math.Float64bits(a.Charge))
		h.Write(buf[:])
	}
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// HashString returns Hash as lowercase hex — the form used in cache keys
// and request logs.
func (m *Molecule) HashString() string {
	sum := m.Hash()
	return hex.EncodeToString(sum[:])
}
