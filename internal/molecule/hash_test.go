package molecule

import (
	"strings"
	"testing"

	"octgb/internal/geom"
)

// TestHashDeterministic proves the hash is a pure function of the atom
// sequence: regenerating the same molecule (fresh allocations, same seed)
// and round-tripping it through the PQR text format both preserve it.
func TestHashDeterministic(t *testing.T) {
	a := GenerateProtein("a", 500, 7)
	b := GenerateProtein("completely-different-name", 500, 7)
	if a.Hash() != b.Hash() {
		t.Fatalf("hash differs across regeneration / name change")
	}
	if a.HashString() != b.HashString() {
		t.Fatalf("HashString differs across regeneration")
	}
	if len(a.HashString()) != 2*HashSize {
		t.Fatalf("HashString length = %d, want %d", len(a.HashString()), 2*HashSize)
	}
}

// TestHashOrderStable proves hashing is stable under repeated calls on the
// same value and sensitive to atom order and to every atom field: the hash
// is a canonical encoding of the sequence, not of the multiset.
func TestHashOrderStable(t *testing.T) {
	m := GenerateProtein("m", 64, 3)
	h0 := m.Hash()
	for i := 0; i < 10; i++ {
		if m.Hash() != h0 {
			t.Fatalf("hash changed on repeated call %d", i)
		}
	}

	// Swapping two atoms changes the hash (order-sensitive identity).
	sw := &Molecule{Name: m.Name, Atoms: append([]Atom(nil), m.Atoms...)}
	sw.Atoms[0], sw.Atoms[1] = sw.Atoms[1], sw.Atoms[0]
	if sw.Hash() == h0 {
		t.Fatalf("hash unchanged after atom swap")
	}

	// Every field participates.
	for name, mutate := range map[string]func(*Atom){
		"x":      func(a *Atom) { a.Pos.X += 1e-9 },
		"y":      func(a *Atom) { a.Pos.Y += 1e-9 },
		"z":      func(a *Atom) { a.Pos.Z += 1e-9 },
		"radius": func(a *Atom) { a.Radius += 1e-9 },
		"charge": func(a *Atom) { a.Charge += 1e-9 },
	} {
		mut := &Molecule{Name: m.Name, Atoms: append([]Atom(nil), m.Atoms...)}
		mutate(&mut.Atoms[17])
		if mut.Hash() == h0 {
			t.Fatalf("hash unchanged after %s perturbation", name)
		}
	}

	// Appending an atom changes it (length is encoded by the stream).
	grown := &Molecule{Atoms: append(append([]Atom(nil), m.Atoms...), Atom{Pos: geom.V(1, 2, 3), Radius: 1})}
	if grown.Hash() == h0 {
		t.Fatalf("hash unchanged after append")
	}
}

// TestHashPQRRoundTrip: the PQR text format quantizes coordinates
// (%8.3f), so one round trip may change the hash — but a quantized
// molecule must re-serialize bit-stably, i.e. the hash is a fixed point
// from the first round trip on. This is the property the serving layer
// relies on when clients persist and re-upload molecules: re-uploading the
// same file always lands on the same cache entry.
func TestHashPQRRoundTrip(t *testing.T) {
	m := GenerateProtein("rt", 200, 11)
	roundTrip := func(in *Molecule) *Molecule {
		var buf strings.Builder
		if err := WritePQR(&buf, in); err != nil {
			t.Fatalf("WritePQR: %v", err)
		}
		out, err := ReadPQR(strings.NewReader(buf.String()), in.Name)
		if err != nil {
			t.Fatalf("ReadPQR: %v", err)
		}
		return out
	}
	once := roundTrip(m)
	twice := roundTrip(once)
	if once.Hash() != twice.Hash() {
		t.Fatalf("hash not a fixed point of the PQR round trip")
	}
}

// TestHashAllocationBounded proves Hash allocates a constant independent of
// molecule size: the per-atom encoding reuses one stack buffer and the
// digest is written into a stack output array.
func TestHashAllocationBounded(t *testing.T) {
	small := GenerateProtein("s", 50, 1)
	large := GenerateProtein("l", 5000, 1)
	allocsSmall := testing.AllocsPerRun(20, func() { small.Hash() })
	allocsLarge := testing.AllocsPerRun(20, func() { large.Hash() })
	if allocsLarge > allocsSmall {
		t.Fatalf("Hash allocations grow with molecule size: %v (50 atoms) vs %v (5000 atoms)", allocsSmall, allocsLarge)
	}
	if allocsLarge > 4 {
		t.Fatalf("Hash allocates %v times per call, want a small constant", allocsLarge)
	}
}
