package molecule

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPQRRoundTrip(t *testing.T) {
	m := GenerateProtein("rt", 200, 11)
	var buf bytes.Buffer
	if err := WritePQR(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPQR(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != m.N() {
		t.Fatalf("N = %d, want %d", got.N(), m.N())
	}
	for i := range m.Atoms {
		a, b := m.Atoms[i], got.Atoms[i]
		if a.Pos.Dist(b.Pos) > 2e-3 { // PQR keeps 3 decimals
			t.Fatalf("atom %d position drift %v", i, a.Pos.Dist(b.Pos))
		}
		if math.Abs(a.Charge-b.Charge) > 1e-4 || math.Abs(a.Radius-b.Radius) > 1e-3 {
			t.Fatalf("atom %d charge/radius drift", i)
		}
	}
}

func TestReadPQRToleratesComments(t *testing.T) {
	src := `REMARK test
ATOM 1 N ALA 1 1.0 2.0 3.0 -0.3 1.55
HETATM 2 O HOH 2 4.0 5.0 6.0 -0.8 1.52
TER
END
`
	m, err := ReadPQR(strings.NewReader(src), "x")
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 2 {
		t.Fatalf("N = %d, want 2", m.N())
	}
	if m.Atoms[1].Radius != 1.52 || m.Atoms[1].Charge != -0.8 {
		t.Errorf("atom fields wrong: %+v", m.Atoms[1])
	}
}

func TestReadPQRErrors(t *testing.T) {
	if _, err := ReadPQR(strings.NewReader("ATOM 1 2 3\n"), "x"); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadPQR(strings.NewReader("ATOM a b c d e f\n"), "x"); err == nil {
		t.Error("non-numeric line accepted")
	}
}
