// Package molecule defines the molecular inputs of the library — atoms with
// positions, van-der-Waals radii and partial charges — together with
// deterministic synthetic generators that stand in for the paper's
// benchmark data (ZDock Benchmark 2.0 proteins, the Cucumber Mosaic Virus
// shell and the Blue Tongue Virus), and a PQR-style text format for
// persisting molecules.
package molecule

import (
	"fmt"

	"octgb/internal/geom"
)

// Atom is a single atom: position, van-der-Waals radius (Å) and partial
// charge (elementary charges).
type Atom struct {
	Pos    geom.Vec3
	Radius float64
	Charge float64
}

// Molecule is a collection of atoms plus a name used in reports.
type Molecule struct {
	Name  string
	Atoms []Atom
}

// N returns the number of atoms.
func (m *Molecule) N() int { return len(m.Atoms) }

// Bounds returns the axis-aligned bounding box of the atom centers (not
// inflated by radii).
func (m *Molecule) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for i := range m.Atoms {
		b = b.ExpandPoint(m.Atoms[i].Pos)
	}
	return b
}

// TotalCharge returns the sum of partial charges.
func (m *Molecule) TotalCharge() float64 {
	var q float64
	for i := range m.Atoms {
		q += m.Atoms[i].Charge
	}
	return q
}

// Centroid returns the unweighted geometric center of the atom positions.
func (m *Molecule) Centroid() geom.Vec3 {
	if len(m.Atoms) == 0 {
		return geom.Vec3{}
	}
	var c geom.Vec3
	for i := range m.Atoms {
		c = c.Add(m.Atoms[i].Pos)
	}
	return c.Scale(1 / float64(len(m.Atoms)))
}

// Transform returns a copy of m with the rigid transform applied to every
// atom position. Radii and charges are unchanged. This is the docking-reuse
// path from the paper (§IV-C): move/rotate the molecule, recompute energy.
func (m *Molecule) Transform(t geom.Rigid) *Molecule {
	out := &Molecule{Name: m.Name, Atoms: make([]Atom, len(m.Atoms))}
	for i, a := range m.Atoms {
		a.Pos = t.Apply(a.Pos)
		out.Atoms[i] = a
	}
	return out
}

// Merge returns a new molecule containing the atoms of both inputs; used to
// form ligand–receptor complexes.
func Merge(name string, ms ...*Molecule) *Molecule {
	out := &Molecule{Name: name}
	for _, m := range ms {
		out.Atoms = append(out.Atoms, m.Atoms...)
	}
	return out
}

// Validate checks structural invariants: positive radii, finite positions
// and charges. It returns the first violation found.
func (m *Molecule) Validate() error {
	for i, a := range m.Atoms {
		if !a.Pos.IsFinite() {
			return fmt.Errorf("molecule %q: atom %d has non-finite position", m.Name, i)
		}
		if a.Radius <= 0 {
			return fmt.Errorf("molecule %q: atom %d has non-positive radius %g", m.Name, i, a.Radius)
		}
		if a.Charge != a.Charge || a.Charge > 1e3 || a.Charge < -1e3 {
			return fmt.Errorf("molecule %q: atom %d has bad charge %g", m.Name, i, a.Charge)
		}
	}
	return nil
}
