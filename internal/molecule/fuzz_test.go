package molecule

import (
	"bytes"
	"testing"
)

// FuzzParsePQR drives ReadPQR with arbitrary bytes. The contract under
// test: the parser returns errors on malformed input — it never panics —
// and anything it accepts is a valid molecule (Validate already ran) that
// WritePQR can serialize back.
func FuzzParsePQR(f *testing.F) {
	f.Add([]byte("REMARK  octgb molecule demo (1 atoms)\nATOM      1  X   MOL     1       1.000    2.000    3.000   0.5000  1.500\nEND\n"))
	f.Add([]byte("HETATM    1  O   HOH     2       0.000    0.000    0.000  -0.8000  1.400\n"))
	f.Add([]byte("ATOM 1 N ALA A 1 11.104 6.134 -6.504 0.5 1.85\n"))
	f.Add([]byte("ATOM too few fields\n"))
	f.Add([]byte("ATOM 1 X MOL 1 1 2 3 4 0\n"))       // zero radius: Validate must reject
	f.Add([]byte("ATOM 1 X MOL 1 NaN 2 3 0.5 1.5\n")) // non-finite position
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadPQR(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadPQR accepted a molecule Validate rejects: %v", err)
		}
		var out bytes.Buffer
		if err := WritePQR(&out, m); err != nil {
			t.Fatalf("WritePQR failed on a parsed molecule: %v", err)
		}
	})
}
