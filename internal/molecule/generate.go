package molecule

import (
	"fmt"
	"math"
	"math/rand"

	"octgb/internal/geom"
)

// Protein composition statistics used by the synthetic generators. The
// element mix approximates heavy+hydrogen atom frequencies in proteins; the
// radii are standard van-der-Waals radii (Å); charges are drawn so the whole
// molecule stays near-neutral with realistic per-atom partial charges.
var elements = []struct {
	frac   float64 // fraction of atoms
	radius float64 // vdW radius, Å
	qSigma float64 // partial-charge spread
}{
	{0.50, 1.20, 0.15}, // H
	{0.32, 1.70, 0.25}, // C
	{0.09, 1.55, 0.35}, // N
	{0.08, 1.52, 0.40}, // O
	{0.01, 1.80, 0.20}, // S
}

// AtomDensity is the packing density of protein interiors: roughly one atom
// per 9.9 Å³ (≈0.101 atoms/Å³), a standard figure for globular proteins.
const AtomDensity = 1.0 / 9.9

// sampleElement picks an element bucket from the composition table.
func sampleElement(r *rand.Rand) int {
	x := r.Float64()
	for i, e := range elements {
		if x < e.frac {
			return i
		}
		x -= e.frac
	}
	return len(elements) - 1
}

// randomAtom draws radius and charge for one atom.
func randomAtom(r *rand.Rand, pos geom.Vec3) Atom {
	e := elements[sampleElement(r)]
	return Atom{
		Pos:    pos,
		Radius: e.radius,
		Charge: r.NormFloat64() * e.qSigma,
	}
}

// neutralize shifts charges uniformly so the molecule's total charge equals
// target (synthetic proteins are kept near-neutral like real ones).
func neutralize(atoms []Atom, target float64) {
	if len(atoms) == 0 {
		return
	}
	var q float64
	for i := range atoms {
		q += atoms[i].Charge
	}
	d := (target - q) / float64(len(atoms))
	for i := range atoms {
		atoms[i].Charge += d
	}
}

// GenerateProtein builds a deterministic synthetic globular protein with n
// atoms. Atoms are packed at protein density inside a randomized blob
// envelope (a sphere perturbed by low-order lobes) so the surface has
// realistic ruggedness, which controls the near/far mix the treecode sees.
func GenerateProtein(name string, n int, seed int64) *Molecule {
	r := rand.New(rand.NewSource(seed))
	// Blob envelope: radius R(θ,φ) = R0 · (1 + Σ a_k cos(k·θ+φ_k)).
	R0 := math.Cbrt(3 * float64(n) / (4 * math.Pi * AtomDensity))
	type lobe struct {
		dir geom.Vec3
		amp float64
	}
	lobes := make([]lobe, 4)
	for i := range lobes {
		lobes[i] = lobe{
			dir: randomUnit(r),
			amp: 0.05 + 0.10*r.Float64(),
		}
	}
	envelope := func(u geom.Vec3) float64 {
		f := 1.0
		for _, l := range lobes {
			f += l.amp * u.Dot(l.dir)
		}
		return R0 * f
	}

	atoms := make([]Atom, 0, n)
	// Rejection-sample positions uniformly in the blob: sample within the
	// bounding sphere of radius 1.2·R0 and keep points inside the envelope.
	bound := 1.25 * R0
	for len(atoms) < n {
		p := geom.V(
			(2*r.Float64()-1)*bound,
			(2*r.Float64()-1)*bound,
			(2*r.Float64()-1)*bound,
		)
		d := p.Norm()
		if d == 0 {
			continue
		}
		if d <= envelope(p.Scale(1/d)) {
			atoms = append(atoms, randomAtom(r, p))
		}
	}
	neutralize(atoms, float64(r.Intn(9)-4)) // small integer net charge
	return &Molecule{Name: name, Atoms: atoms}
}

// GenerateCapsid builds a hollow spherical shell of atoms at protein
// density — the synthetic stand-in for virus capsids such as the Cucumber
// Mosaic Virus shell (509,640 atoms) and the Blue Tongue Virus used in the
// paper's large-molecule experiments. thicknessFrac is the shell thickness
// as a fraction of the outer radius (capsids are ~15–25 Å thick).
func GenerateCapsid(name string, n int, thickness float64, seed int64) *Molecule {
	r := rand.New(rand.NewSource(seed))
	if thickness <= 0 {
		thickness = 20 // Å, typical capsid wall
	}
	// Solve for outer radius: volume of shell = n / density.
	vol := float64(n) / AtomDensity
	// 4π/3 (R³ - (R-t)³) = vol; iterate from sphere estimate.
	R := math.Cbrt(3*vol/(4*math.Pi)) + thickness
	for i := 0; i < 60; i++ {
		inner := R - thickness
		f := 4 * math.Pi / 3 * (R*R*R - inner*inner*inner)
		df := 4 * math.Pi * (R*R - inner*inner)
		R -= (f - vol) / df
	}
	inner := R - thickness

	atoms := make([]Atom, 0, n)
	for len(atoms) < n {
		u := randomUnit(r)
		// Sample radius with r² weighting within [inner, R].
		rr := math.Cbrt(inner*inner*inner + r.Float64()*(R*R*R-inner*inner*inner))
		atoms = append(atoms, randomAtom(r, u.Scale(rr)))
	}
	neutralize(atoms, 0)
	return &Molecule{Name: name, Atoms: atoms}
}

// GenerateComplex builds a bound ligand–receptor pair: a large receptor
// protein and a small ligand placed in contact with its surface, merged
// into one molecule (the ZDock suite contains bound complexes).
func GenerateComplex(name string, receptorAtoms, ligandAtoms int, seed int64) *Molecule {
	rec := GenerateProtein(name+"_r", receptorAtoms, seed)
	lig := GenerateProtein(name+"_l", ligandAtoms, seed+1)
	// Place ligand just outside the receptor along +x.
	rb, lb := rec.Bounds(), lig.Bounds()
	gap := 1.5 // Å contact gap
	shift := geom.V(rb.Max.X-lb.Min.X+gap, 0, 0)
	lig = lig.Transform(geom.Translation(shift))
	return Merge(name, rec, lig)
}

// SuiteEntry describes one molecule of the synthetic ZDock-like suite.
type SuiteEntry struct {
	Name  string
	Atoms int
	Seed  int64
}

// ZDockLikeSuite returns the specification of an n-entry benchmark suite
// whose sizes are log-spaced over the paper's ZDock range (≈400 to 16,000
// atoms per protein). The real suite has 84 complexes; pass count=84 for the
// full analogue, or fewer for quick runs. Entries are deterministic.
func ZDockLikeSuite(count int) []SuiteEntry {
	if count <= 0 {
		count = 84
	}
	const minAtoms, maxAtoms = 400, 16301 // paper quotes a 16,301-atom max
	out := make([]SuiteEntry, count)
	for i := 0; i < count; i++ {
		t := float64(i) / float64(count-1)
		if count == 1 {
			t = 1
		}
		n := int(math.Round(minAtoms * math.Pow(float64(maxAtoms)/minAtoms, t)))
		out[i] = SuiteEntry{
			Name:  fmt.Sprintf("zd%02d_%d", i, n),
			Atoms: n,
			Seed:  int64(1000 + i),
		}
	}
	return out
}

// Build generates the molecule for a suite entry.
func (e SuiteEntry) Build() *Molecule {
	return GenerateProtein(e.Name, e.Atoms, e.Seed)
}

// CMVAtoms is the atom count of the Cucumber Mosaic Virus shell used in the
// paper's Figure 11 experiment.
const CMVAtoms = 509640

// BTVAtoms is the atom count of the Blue Tongue Virus used in the paper's
// scalability experiments (Figures 5 and 6).
const BTVAtoms = 6000000

// GenerateCMV builds the CMV-shell stand-in, optionally scaled down by
// scale ∈ (0,1] (e.g. 0.1 builds a 50,964-atom shell with the same
// geometry class).
func GenerateCMV(scale float64) *Molecule {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(float64(CMVAtoms) * scale)
	return GenerateCapsid(fmt.Sprintf("CMV_shell_%d", n), n, 20, 424242)
}

// GenerateBTV builds the BTV stand-in, optionally scaled.
func GenerateBTV(scale float64) *Molecule {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(float64(BTVAtoms) * scale)
	return GenerateCapsid(fmt.Sprintf("BTV_%d", n), n, 60, 676767)
}

func randomUnit(r *rand.Rand) geom.Vec3 {
	for {
		v := geom.V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		if n := v.Norm(); n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}
