package molecule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"octgb/internal/geom"
)

// WritePQR writes the molecule in a PQR-style text format:
//
//	ATOM  serial  name  res  resSeq  x y z  charge radius
//
// The fields the library does not track (atom/residue names) are emitted as
// placeholders so standard tools can still parse the file.
func WritePQR(w io.Writer, m *Molecule) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "REMARK  octgb molecule %s (%d atoms)\n", m.Name, m.N()); err != nil {
		return err
	}
	for i, a := range m.Atoms {
		_, err := fmt.Fprintf(bw, "ATOM %6d  X   MOL %5d    %8.3f %8.3f %8.3f %8.4f %6.3f\n",
			i+1, i+1, a.Pos.X, a.Pos.Y, a.Pos.Z, a.Charge, a.Radius)
		if err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "END"); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPQR parses a PQR-style file written by WritePQR (and tolerates the
// common whitespace-separated PQR variant: the final two floats on each ATOM
// line are charge and radius; x,y,z are the three floats before them).
func ReadPQR(r io.Reader, name string) (*Molecule, error) {
	m := &Molecule{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(text, "ATOM") && !strings.HasPrefix(text, "HETATM") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 6 {
			return nil, fmt.Errorf("pqr line %d: too few fields", line)
		}
		// The last 5 numeric fields are x y z charge radius.
		nums := make([]float64, 0, len(fields))
		for _, f := range fields[1:] {
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				nums = append(nums, v)
			}
		}
		if len(nums) < 5 {
			return nil, fmt.Errorf("pqr line %d: expected ≥5 numeric fields, got %d", line, len(nums))
		}
		tail := nums[len(nums)-5:]
		m.Atoms = append(m.Atoms, Atom{
			Pos:    geom.V(tail[0], tail[1], tail[2]),
			Charge: tail[3],
			Radius: tail[4],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
