package molecule

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"octgb/internal/geom"
)

// Property: every generated protein validates, has the requested size, and
// near-integer total charge, for arbitrary sizes and seeds.
func TestPropertyGeneratedProteinsValid(t *testing.T) {
	f := func(n int, seed int64) bool {
		n = 1 + abs(n)%800
		m := GenerateProtein("p", n, seed)
		if m.N() != n || m.Validate() != nil {
			return false
		}
		q := m.TotalCharge()
		return math.Abs(q-math.Round(q)) < 1e-9 && math.Abs(q) <= 5
	}
	if err := quick.Check(f, quickCfg(51)); err != nil {
		t.Error(err)
	}
}

// Property: capsids are hollow — no atom sits near the centroid.
func TestPropertyCapsidsHollow(t *testing.T) {
	f := func(seed int64) bool {
		// Thickness chosen so the shell radius (≈22 Å) clearly exceeds
		// the wall thickness — thicker walls at this size degenerate into
		// a solid ball.
		m := GenerateCapsid("c", 3000, 5, seed)
		if m.Validate() != nil {
			return false
		}
		c := m.Centroid()
		minR := math.Inf(1)
		for _, a := range m.Atoms {
			if d := a.Pos.Dist(c); d < minR {
				minR = d
			}
		}
		return minR > 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(52))}); err != nil {
		t.Error(err)
	}
}

// Property: merging preserves atom counts and total charge exactly.
func TestPropertyMergeConserves(t *testing.T) {
	f := func(n1, n2 int, s1, s2 int64) bool {
		n1, n2 = 1+abs(n1)%200, 1+abs(n2)%200
		a := GenerateProtein("a", n1, s1)
		b := GenerateProtein("b", n2, s2)
		m := Merge("ab", a, b)
		return m.N() == n1+n2 &&
			math.Abs(m.TotalCharge()-(a.TotalCharge()+b.TotalCharge())) < 1e-9
	}
	if err := quick.Check(f, quickCfg(53)); err != nil {
		t.Error(err)
	}
}

// Property: rigid transforms preserve the bounding-box diagonal.
func TestPropertyTransformPreservesExtent(t *testing.T) {
	f := func(seed int64, angle, tx, ty, tz float64) bool {
		m := GenerateProtein("t", 100, seed)
		tr := rotTranslate(angle, tx, ty, tz)
		d0 := 2 * m.Bounds().HalfDiagonal()
		d1 := 2 * m.Transform(tr).Bounds().HalfDiagonal()
		// The box is axis-aligned so its diagonal can change under
		// rotation, but the max pairwise distance cannot; check a robust
		// proxy: diagonal within sqrt(3) of the original.
		return d1 < d0*1.8 && d1 > d0/1.8
	}
	cfg := &quick.Config{
		MaxCount: 30,
		Rand:     rand.New(rand.NewSource(54)),
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
			for i := 1; i < len(v); i++ {
				v[i] = reflect.ValueOf(r.NormFloat64() * 3)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func rotTranslate(angle, tx, ty, tz float64) geom.Rigid {
	tr := geom.RotationAxisAngle(geom.V(1, 2, 3), angle)
	tr.T = geom.V(tx, ty, tz)
	return tr
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(seed))}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
