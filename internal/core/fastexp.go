package core

import "math"

// This file provides the inline-friendly exponentials the flat near-field
// kernels use in place of math.Exp. The GB pair term needs exp(-d²/(4RᵢRⱼ)),
// an always-non-positive argument, and on amd64 math.Exp is an opaque
// assembly call — it cannot inline into the unrolled kernel loops, and
// because Go's ABI makes every register caller-saved, the call boundary
// forces the accumulator lanes and streamed operands to spill around every
// term. expNeg trades the last couple of bits for a short sequence that
// fits the compiler's inlining budget (kept there deliberately — check
// `go build -gcflags=-m` when touching this file):
//
//	e^x = 2^k · 2^(j/128) · e^r,  x·(128/ln2) ≈ 128k + j,  |r| ≤ ln2/256
//
// with a degree-4 Taylor tail. The 2^k·2^(j/128) factor is assembled
// directly in the bit pattern: table entries lie in [1, 2), so their
// exponent field is exactly the bias and adding k<<52 (as (ki&^127)<<45)
// yields the bits of the product with no multiply.
//
// The argument reduction uses a single full-precision constant rather than
// the two-constant Cody–Waite split, so r carries the rounding of kf·expL —
// about 0.5 ulp of |x| — giving relative error ≈ 1.1e-15 + |x|·1.2e-16
// (measured in TestExpNegAccuracy). That grows toward 2.5e-14 at the flush
// cut, but exp only influences the GB pair term through rr·e^x against
// d² ≥ -4·x·rr... i.e. the term's sensitivity to exp error decays like
// rr·e^x/d², orders of magnitude faster than the error grows, so the
// energy-relevant range (|x| ≲ 30) sees ≤ 5e-15 — three orders under the
// 1e-12 flat-vs-recursive golden pins (the float64 recursive oracle keeps
// calling math.Exp).
//
// expNeg32 is the float32-tier variant: 32-entry table, degree-3 tail,
// ≈1e-7 + |x|·6e-8 relative — below the tier's own storage quantization.

// expNegCut is where expNeg flushes to zero. exp(-200) ≈ 1.4e-87; the GB
// pair term adds rr·e^x to d² ≥ 800·rr at that argument, so the flushed
// tail is ~1e-90 of the surviving term — far below float64 resolution.
// (The bit-assembled exponent would stay in the normal range down to
// x ≈ -709; the cut just keeps a safety margin and matches the f32 tier's
// shape.)
const expNegCut = -200.0

const (
	expL    = 0.0054152123481245727 // ln2/128, correctly rounded
	expInvL = 184.66496523378731    // 128/ln2

	exp32L    = 0.0216608495 // ln2/32, correctly rounded (float32)
	exp32InvL = 46.1662407   // 32/ln2 (float32)
)

// expNeg returns e^x for x ≤ 0, flushing to 0 below expNegCut. It must
// stay call-free and under the inlining budget: Float64frombits is a
// compiler intrinsic, so the whole body inlines into the kernel loops.
func expNeg(x float64) float64 {
	if x < expNegCut {
		return 0
	}
	// Round-to-nearest for non-positive arguments via truncation of z−0.5
	// (int64 conversion truncates toward zero, i.e. up, for negatives).
	ki := int64(x*expInvL - 0.5)
	r := x - float64(ki)*expL
	// 2^k·2^(j/128) assembled in the exponent/mantissa bits: ki&^127 is
	// 128k ≤ 0, so (ki&^127)<<45 adds k to the table entry's exponent
	// field (biased exponent stays positive for x ≥ expNegCut).
	sc := math.Float64frombits(uint64(ki&^127)<<45 + exp2Bits[ki&127])
	r2 := r * r
	p := r + r2*(0.5+r*(1.0/6+r*(1.0/24)))
	return sc + sc*p
}

// exp32Cut is expNegCut's float32 analog: below it 2^k would leave the
// normal float32 range (k < -126).
const exp32Cut = -87.0

// expNeg32 returns e^x for x ≤ 0 in float32; same construction as expNeg
// with a 32-entry table and a degree-3 tail.
func expNeg32(x float32) float32 {
	if x < exp32Cut {
		return 0
	}
	ki := int32(x*exp32InvL - 0.5)
	r := x - float32(ki)*exp32L
	sc := math.Float32frombits(uint32(ki&^31)<<18 + exp2Bits32[ki&31])
	r2 := r * r
	p := r + r2*(0.5+r*(1.0/6))
	return sc + sc*p
}

// exp2Bits[j] = bits of 2^(j/128), correctly rounded.
var exp2Bits = [128]uint64{
	0x3ff0000000000000, 0x3ff0163da9fb3335, 0x3ff02c9a3e778061, 0x3ff04315e86e7f85,
	0x3ff059b0d3158574, 0x3ff0706b29ddf6de, 0x3ff0874518759bc8, 0x3ff09e3ecac6f383,
	0x3ff0b5586cf9890f, 0x3ff0cc922b7247f7, 0x3ff0e3ec32d3d1a2, 0x3ff0fb66affed31b,
	0x3ff11301d0125b51, 0x3ff12abdc06c31cc, 0x3ff1429aaea92de0, 0x3ff15a98c8a58e51,
	0x3ff172b83c7d517b, 0x3ff18af9388c8dea, 0x3ff1a35beb6fcb75, 0x3ff1bbe084045cd4,
	0x3ff1d4873168b9aa, 0x3ff1ed5022fcd91d, 0x3ff2063b88628cd6, 0x3ff21f49917ddc96,
	0x3ff2387a6e756238, 0x3ff251ce4fb2a63f, 0x3ff26b4565e27cdd, 0x3ff284dfe1f56381,
	0x3ff29e9df51fdee1, 0x3ff2b87fd0dad990, 0x3ff2d285a6e4030b, 0x3ff2ecafa93e2f56,
	0x3ff306fe0a31b715, 0x3ff32170fc4cd831, 0x3ff33c08b26416ff, 0x3ff356c55f929ff1,
	0x3ff371a7373aa9cb, 0x3ff38cae6d05d866, 0x3ff3a7db34e59ff7, 0x3ff3c32dc313a8e4,
	0x3ff3dea64c123422, 0x3ff3fa4504ac801c, 0x3ff4160a21f72e2a, 0x3ff431f5d950a897,
	0x3ff44e086061892d, 0x3ff46a41ed1d0058, 0x3ff486a2b5c13cd0, 0x3ff4a32af0d7d3de,
	0x3ff4bfdad5362a27, 0x3ff4dcb299fddd0d, 0x3ff4f9b2769d2ca7, 0x3ff516daa2cf6642,
	0x3ff5342b569d4f82, 0x3ff551a4ca5d920f, 0x3ff56f4736b527da, 0x3ff58d12d497c7fd,
	0x3ff5ab07dd485429, 0x3ff5c9268a5946b7, 0x3ff5e76f15ad2148, 0x3ff605e1b976dc09,
	0x3ff6247eb03a5584, 0x3ff6434634ccc320, 0x3ff6623882552224, 0x3ff68155d44ca973,
	0x3ff6a09e667f3bcc, 0x3ff6c012750bdabf, 0x3ff6dfb23c651a2f, 0x3ff6ff7df9519484,
	0x3ff71f75e8ec5f74, 0x3ff73f9a48a58174, 0x3ff75feb564267c9, 0x3ff780694fde5d40,
	0x3ff7a11473eb0187, 0x3ff7c1ed0130c132, 0x3ff7e2f336cf4e62, 0x3ff80427543e1a12,
	0x3ff82589994cce12, 0x3ff8471a4623c7ad, 0x3ff868d99b4492ec, 0x3ff88ac7d98a669a,
	0x3ff8ace5422aa0dc, 0x3ff8cf3216b5448c, 0x3ff8f1ae99157736, 0x3ff9145b0b91ffc6,
	0x3ff93737b0cdc5e5, 0x3ff95a44cbc8520f, 0x3ff97d829fde4e50, 0x3ff9a0f170ca07ba,
	0x3ff9c49182a3f090, 0x3ff9e86319e32323, 0x3ffa0c667b5de565, 0x3ffa309bec4a2d34,
	0x3ffa5503b23e255c, 0x3ffa799e1330b358, 0x3ffa9e6b5579fdbf, 0x3ffac36bbfd3f37a,
	0x3ffae89f995ad3ae, 0x3ffb0e07298db666, 0x3ffb33a2b84f15fb, 0x3ffb59728de5593a,
	0x3ffb7f76f2fb5e47, 0x3ffba5b030a1064a, 0x3ffbcc1e904bc1d2, 0x3ffbf2c25bd71e08,
	0x3ffc199bdd85529c, 0x3ffc40ab5fffd07a, 0x3ffc67f12e57d14b, 0x3ffc8f6d9406e7b5,
	0x3ffcb720dcef9069, 0x3ffcdf0b555dc3fa, 0x3ffd072d4a07897c, 0x3ffd2f87080d89f2,
	0x3ffd5818dcfba487, 0x3ffd80e316c98398, 0x3ffda9e603db3286, 0x3ffdd321f301b460,
	0x3ffdfc97337b9b5f, 0x3ffe264614f5a129, 0x3ffe502ee78b3ff6, 0x3ffe7a51fbc74c83,
	0x3ffea4afa2a490da, 0x3ffecf482d8e67f1, 0x3ffefa1bee615a27, 0x3fff252b376bba97,
	0x3fff50765b6e4540, 0x3fff7bfdad9cbe14, 0x3fffa7c1819e90d8, 0x3fffd3c22b8f71f1,
}

// exp2Bits32[j] = bits of 2^(j/32), correctly rounded (float32).
var exp2Bits32 = [32]uint32{
	0x3f800000, 0x3f82cd87, 0x3f85aac3, 0x3f88980f,
	0x3f8b95c2, 0x3f8ea43a, 0x3f91c3d3, 0x3f94f4f0,
	0x3f9837f0, 0x3f9b8d3a, 0x3f9ef532, 0x3fa27043,
	0x3fa5fed7, 0x3fa9a15b, 0x3fad583f, 0x3fb123f6,
	0x3fb504f3, 0x3fb8fbaf, 0x3fbd08a4, 0x3fc12c4d,
	0x3fc5672a, 0x3fc9b9be, 0x3fce248c, 0x3fd2a81e,
	0x3fd744fd, 0x3fdbfbb8, 0x3fe0ccdf, 0x3fe5b907,
	0x3feac0c7, 0x3fefe4ba, 0x3ff5257d, 0x3ffa83b3,
}
