package core

import "octgb/internal/octree"

// This file provides frontier decompositions of the dual-tree traversals:
// a breadth-first expansion of the recursion into independent (node, node)
// pairs that a work-stealing pool can execute in parallel — the nested
// parallelism the paper gets from cilk++'s spawn on the recursive calls.

// DualFrontier expands the Born dual-tree recursion breadth-first until at
// least minPairs independent pairs exist (or the recursion bottoms out).
// Completing AccumulateDualPair on every returned pair is equivalent to
// AccumulateDual.
func (s *BornSolver) DualFrontier(minPairs int) [][2]int32 {
	if len(s.TA.Nodes) == 0 || len(s.TQ.Nodes) == 0 {
		return nil
	}
	queue := [][2]int32{{0, 0}}
	for len(queue) < minPairs {
		// Find the first expandable pair.
		expanded := false
		for i, pr := range queue {
			a, q := pr[0], pr[1]
			an, qn := &s.TA.Nodes[a], &s.TQ.Nodes[q]
			d2 := an.Center.Dist2(qn.Center)
			if wellSeparated2(d2, an.Radius, qn.Radius, s.sepK2) || (an.Leaf && qn.Leaf) {
				continue // terminal; cannot expand
			}
			queue = append(queue[:i], queue[i+1:]...)
			if qn.Leaf || (!an.Leaf && an.Radius >= qn.Radius) {
				for _, ch := range an.Children {
					if ch != octree.NoChild {
						queue = append(queue, [2]int32{ch, q})
					}
				}
			} else {
				for _, ch := range qn.Children {
					if ch != octree.NoChild {
						queue = append(queue, [2]int32{a, ch})
					}
				}
			}
			expanded = true
			break
		}
		if !expanded {
			break
		}
	}
	return queue
}

// AccumulateDualPair runs the dual-tree Born recursion from the given
// (atoms-node, q-node) pair.
func (s *BornSolver) AccumulateDualPair(a, q int32, sNode, sAtom []float64) Stats {
	var st Stats
	s.approxIntegralsDual(a, q, sNode, sAtom, &st)
	return st
}

// EpolDualFrontier expands the energy dual-tree recursion breadth-first
// into at least minPairs independent ordered pairs.
func (s *EpolSolver) EpolDualFrontier(minPairs int) [][2]int32 {
	if len(s.T.Nodes) == 0 {
		return nil
	}
	queue := [][2]int32{{0, 0}}
	for len(queue) < minPairs {
		expanded := false
		for i, pr := range queue {
			u, v := pr[0], pr[1]
			un, vn := &s.T.Nodes[u], &s.T.Nodes[v]
			d2 := un.Center.Dist2(vn.Center)
			if (u != v && epolFar2(d2, un.Radius, vn.Radius, s.sep2)) || (un.Leaf && vn.Leaf) {
				continue
			}
			queue = append(queue[:i], queue[i+1:]...)
			if vn.Leaf || (!un.Leaf && un.Radius >= vn.Radius) {
				for _, ch := range un.Children {
					if ch != octree.NoChild {
						queue = append(queue, [2]int32{ch, v})
					}
				}
			} else {
				for _, ch := range vn.Children {
					if ch != octree.NoChild {
						queue = append(queue, [2]int32{u, ch})
					}
				}
			}
			expanded = true
			break
		}
		if !expanded {
			break
		}
	}
	return queue
}

// EnergyDualPair runs the energy dual-tree recursion from one ordered
// node pair and returns the raw sum (scale by EnergyScale).
func (s *EpolSolver) EnergyDualPair(u, v int32) (float64, Stats) {
	var st Stats
	e := s.epolDual(u, v, &st)
	return e, st
}
