package core

import (
	"fmt"
	"testing"

	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// The golden-equivalence suite: the flat interaction-list path must
// reproduce the recursive oracle exactly — identical Stats counters, and
// accumulators/energies equal to 1e-12 relative — on seeded synthetic
// molecules, for both integrand exponents and both traversal variants.

func goldenSizes(t testing.TB) []int {
	if testing.Short() {
		return []int{256, 2000}
	}
	return []int{256, 2000, 10000}
}

func assertClose(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if e := relErr(got[i], want[i]); e > 1e-12 {
			t.Fatalf("%s[%d]: flat %v vs recursive %v (rel %v)", label, i, got[i], want[i], e)
		}
	}
}

func TestBornFlatListMatchesRecursive(t *testing.T) {
	for _, n := range goldenSizes(t) {
		for _, exp := range []int{6, 4} {
			t.Run(fmt.Sprintf("n=%d/r%d", n, exp), func(t *testing.T) {
				m, q := testMol(n, int64(41+n+exp))
				bs := NewBornSolver(m, q, BornConfig{Eps: 0.9, Exponent: exp})

				// Single-tree variant.
				rn, ra := bs.NewAccumulators()
				var rst Stats
				for l := 0; l < bs.NumQLeaves(); l++ {
					rst.Add(bs.AccumulateQLeaf(l, rn, ra))
				}
				list := bs.BuildBornList(0, bs.NumQLeaves())
				fn, fa := bs.NewAccumulators()
				fst := bs.EvalBornList(list, fn, fa)
				if fst != rst {
					t.Fatalf("single-tree stats: flat %+v vs recursive %+v", fst, rst)
				}
				assertClose(t, "sNode", fn, rn)
				assertClose(t, "sAtom", fa, ra)

				rRec := make([]float64, m.N())
				bs.PushIntegrals(rn, ra, 0, int32(m.N()), rRec)
				rFlat := make([]float64, m.N())
				bs.PushIntegrals(fn, fa, 0, int32(m.N()), rFlat)
				assertClose(t, "BornRadii", rFlat, rRec)

				// Dual-tree variant.
				dn, da := bs.NewAccumulators()
				dst := bs.AccumulateDual(dn, da)
				dual := bs.BuildBornDualList()
				gn, ga := bs.NewAccumulators()
				gst := bs.EvalBornList(dual, gn, ga)
				if gst != dst {
					t.Fatalf("dual stats: flat %+v vs recursive %+v", gst, dst)
				}
				assertClose(t, "dual sNode", gn, dn)
				assertClose(t, "dual sAtom", ga, da)
			})
		}
	}
}

func TestEpolFlatListMatchesRecursive(t *testing.T) {
	for _, n := range goldenSizes(t) {
		for _, mode := range []gb.MathMode{gb.Exact, gb.Approximate} {
			t.Run(fmt.Sprintf("n=%d/math=%d", n, mode), func(t *testing.T) {
				m, q := testMol(n, int64(61+n)+int64(mode))
				R := treecodeRadii(m, q)
				es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9, Math: mode})

				// Leaf-driven variant.
				var rRaw float64
				var rst Stats
				for l := 0; l < es.NumLeaves(); l++ {
					e, st := es.LeafEnergy(l)
					rRaw += e
					rst.Add(st)
				}
				list := es.BuildEpolList(0, es.NumLeaves())
				fRaw, fst := es.EvalEpolList(list)
				if fst != rst {
					t.Fatalf("leaf-driven stats: flat %+v vs recursive %+v", fst, rst)
				}
				if e := relErr(fRaw, rRaw); e > 1e-12 {
					t.Fatalf("leaf-driven energy: flat %v vs recursive %v (rel %v)", fRaw, rRaw, e)
				}

				// Dual-tree variant.
				dRaw, dst := es.EnergyDual()
				dual := es.BuildEpolDualList()
				gRaw, gst := es.EvalEpolList(dual)
				if gst != dst {
					t.Fatalf("dual stats: flat %+v vs recursive %+v", gst, dst)
				}
				if e := relErr(gRaw, dRaw); e > 1e-12 {
					t.Fatalf("dual energy: flat %v vs recursive %v (rel %v)", gRaw, dRaw, e)
				}
			})
		}
	}
}

// TestEpolSkeletonMatchesFullBuilder: the geometry-only skeleton builder
// must produce entry-for-entry the same list as the full builder, and
// CompleteFarStats must recover identical Stats.
func TestEpolSkeletonMatchesFullBuilder(t *testing.T) {
	for _, n := range goldenSizes(t) {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			m, q := testMol(n, int64(77+n))
			R := treecodeRadii(m, q)
			cfg := EpolConfig{Eps: 0.9}
			es := NewEpolSolverFromMolecule(m, R, cfg)

			full := es.BuildEpolList(0, es.NumLeaves())
			var skel InteractionList
			BuildEpolSkeletonInto(&skel, es.T, EpolSeparation(cfg), 0, es.NumLeaves())

			if len(skel.Near) != len(full.Near) || len(skel.Far) != len(full.Far) {
				t.Fatalf("skeleton entries: near %d/far %d vs full near %d/far %d",
					len(skel.Near), len(skel.Far), len(full.Near), len(full.Far))
			}
			for i := range full.Near {
				if skel.Near[i] != full.Near[i] {
					t.Fatalf("near[%d]: %v vs %v", i, skel.Near[i], full.Near[i])
				}
			}
			for i := range full.Far {
				if skel.Far[i] != full.Far[i] {
					t.Fatalf("far[%d]: %v vs %v", i, skel.Far[i], full.Far[i])
				}
			}
			es.CompleteFarStats(&skel)
			if skel.Stats() != full.Stats() {
				t.Fatalf("stats: skeleton %+v vs full %+v", skel.Stats(), full.Stats())
			}
			eFull, _ := es.EvalEpolList(full)
			eSkel, _ := es.EvalEpolList(&skel)
			if eFull != eSkel {
				t.Fatalf("energy: skeleton %v vs full %v", eSkel, eFull)
			}
		})
	}
}

// treecodeRadii computes Born radii through the treecode (cheaper than
// the exact reference for the 10k golden case).
func treecodeRadii(m *molecule.Molecule, q []surface.QPoint) []float64 {
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})
	sN, sA := bs.NewAccumulators()
	for l := 0; l < bs.NumQLeaves(); l++ {
		bs.AccumulateQLeaf(l, sN, sA)
	}
	rT := make([]float64, m.N())
	bs.PushIntegrals(sN, sA, 0, int32(m.N()), rT)
	return bs.RadiiToOriginal(rT)
}

// TestFlatListSegmentsCompose: building lists per q-leaf segment and
// evaluating them separately composes to the full result — the property
// the per-rank engines rely on.
func TestFlatListSegmentsCompose(t *testing.T) {
	m, q := testMol(600, 77)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})
	full := bs.BuildBornList(0, bs.NumQLeaves())
	fn, fa := bs.NewAccumulators()
	fullStats := bs.EvalBornList(full, fn, fa)

	sn, sa := bs.NewAccumulators()
	var segStats Stats
	third := bs.NumQLeaves() / 3
	for _, seg := range [][2]int{{0, third}, {third, 2 * third}, {2 * third, bs.NumQLeaves()}} {
		l := bs.BuildBornList(seg[0], seg[1])
		segStats.Add(bs.EvalBornList(l, sn, sa))
	}
	if segStats != fullStats {
		t.Fatalf("segmented stats %+v != full %+v", segStats, fullStats)
	}
	assertClose(t, "sNode", sn, fn)
	assertClose(t, "sAtom", sa, fa)
}

var benchSolver struct {
	bs   *BornSolver
	es   *EpolSolver
	born *InteractionList
	epol *InteractionList
}

func benchSetup(b *testing.B) {
	if benchSolver.bs == nil {
		m, q := testMol(10000, 5)
		benchSolver.bs = NewBornSolver(m, q, BornConfig{Eps: 0.9})
		benchSolver.born = benchSolver.bs.BuildBornList(0, benchSolver.bs.NumQLeaves())
		R := treecodeRadii(m, q)
		benchSolver.es = NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})
		benchSolver.epol = benchSolver.es.BuildEpolList(0, benchSolver.es.NumLeaves())
	}
	b.ResetTimer()
}

// BenchmarkBornEval10k compares the recursive traversal (traverse +
// evaluate fused) against list construction and flat evaluation at
// N ≈ 10k atoms — the headline near-field kernel numbers.
func BenchmarkBornEval10k(b *testing.B) {
	b.Run("recursive", func(b *testing.B) {
		benchSetup(b)
		bs := benchSolver.bs
		sN, sA := bs.NewAccumulators()
		for i := 0; i < b.N; i++ {
			for l := 0; l < bs.NumQLeaves(); l++ {
				bs.AccumulateQLeaf(l, sN, sA)
			}
		}
	})
	b.Run("flat-build", func(b *testing.B) {
		benchSetup(b)
		bs := benchSolver.bs
		// Rebuild into a reused list — the ε-sweep / per-pose steady state.
		scratch := new(InteractionList)
		for i := 0; i < b.N; i++ {
			bs.BuildBornListInto(scratch, 0, bs.NumQLeaves())
		}
	})
	b.Run("flat-eval", func(b *testing.B) {
		benchSetup(b)
		bs := benchSolver.bs
		sN, sA := bs.NewAccumulators()
		for i := 0; i < b.N; i++ {
			bs.EvalBornList(benchSolver.born, sN, sA)
		}
	})
}

func BenchmarkEpolEval10k(b *testing.B) {
	b.Run("recursive", func(b *testing.B) {
		benchSetup(b)
		es := benchSolver.es
		for i := 0; i < b.N; i++ {
			var raw float64
			for l := 0; l < es.NumLeaves(); l++ {
				e, _ := es.LeafEnergy(l)
				raw += e
			}
			_ = raw
		}
	})
	b.Run("flat-build", func(b *testing.B) {
		benchSetup(b)
		es := benchSolver.es
		scratch := new(InteractionList)
		for i := 0; i < b.N; i++ {
			es.BuildEpolListInto(scratch, 0, es.NumLeaves())
		}
	})
	b.Run("flat-eval", func(b *testing.B) {
		benchSetup(b)
		es := benchSolver.es
		for i := 0; i < b.N; i++ {
			raw, _ := es.EvalEpolList(benchSolver.epol)
			_ = raw
		}
	})
}

// TestFlatListReuse: one list evaluated twice gives bitwise-identical
// results — the reuse property ε-sweeps and docking loops depend on.
func TestFlatListReuse(t *testing.T) {
	m, q := testMol(400, 88)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})
	list := bs.BuildBornList(0, bs.NumQLeaves())
	an, aa := bs.NewAccumulators()
	bs.EvalBornList(list, an, aa)
	bn, ba := bs.NewAccumulators()
	bs.EvalBornList(list, bn, ba)
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("sNode[%d] differs across evaluations", i)
		}
	}
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatalf("sAtom[%d] differs across evaluations", i)
		}
	}
}
