// Package core implements the paper's primary contribution: the
// octree-based Greengard–Rokhlin-type near–far treecode for the surface r⁶
// approximation of Born radii (APPROX-INTEGRALS and
// PUSH-INTEGRALS-TO-ATOMS, Fig. 2 of the paper) and for the GB polarization
// energy with Born-radius charge binning (APPROX-EPOL, Fig. 3).
//
// Two traversal variants are provided, matching the paper's §IV: the
// single-tree form used by the distributed engines (only the atoms octree
// is traversed; q-point leaves drive the traversal) and the dual-tree form
// of the earlier shared-memory algorithm [6] used by OCT_CILK.
//
// All entry points are reentrant: accumulators are supplied by the caller,
// so parallel engines give each worker private accumulators and reduce —
// which is exactly the structure MPI_Allreduce imposes in the paper.
package core

import (
	"math"

	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/octree"
	"octgb/internal/surface"
)

// Stats counts the work a traversal performed; the deterministic counters
// feed the virtual-time machine model and the complexity tests.
type Stats struct {
	FarEval      int64 // far-field (approximated) cell interactions
	NearPairs    int64 // exact point-point interactions
	NodesVisited int64 // recursion steps
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.FarEval += other.FarEval
	s.NearPairs += other.NearPairs
	s.NodesVisited += other.NodesVisited
}

// BornConfig controls the Born-radius treecode.
type BornConfig struct {
	// Eps is the approximation parameter ε (>0). Larger ε approximates
	// more aggressively: faster, less accurate. The paper's experiments
	// use 0.9.
	Eps float64
	// Exponent selects the Born-radius integrand: 6 (default) is the
	// surface r⁶ approximation of Eq. 4 (more accurate for globular
	// solutes, the paper's choice); 4 is the classical Coulomb-field r⁴
	// approximation of Eq. 3.
	Exponent int
	// CriterionPower selects the well-separatedness criterion. The
	// acceptance test is (r_AQ + r_A + r_Q)/(r_AQ − r_A − r_Q) ≤
	// (1+ε)^(1/CriterionPower).
	//
	// Power 1 (default) bounds the distance ratio by (1+ε) — the same
	// geometry as the paper's APPROX-EPOL criterion r_UV > (r_U+r_V)(1+2/ε)
	// — and reproduces the paper's reported speed/error operating points.
	// Power 6 is the criterion as printed in the poster's prose, which
	// bounds the worst-case ratio of the d⁻⁶ integrand itself; it is so
	// conservative that at ZDock scales it accepts well under 1 % of the
	// cell pairs (making the "treecode" essentially the naïve algorithm),
	// contradicting the poster's own reported speedups — see DESIGN.md.
	CriterionPower int
	// LeafSize is the octree leaf capacity (≤0 → octree.DefaultLeafSize).
	LeafSize int
	// Precision selects the flat-kernel storage tier (soa32.go). Float64
	// (zero value) is exact; Float32 stores coordinates and weights in
	// float32 with float64 accumulation. The recursive oracle and the
	// list builders always run in float64, so lists and Stats are
	// tier-independent.
	Precision Precision
}

func (c BornConfig) withDefaults() BornConfig {
	if c.Eps <= 0 {
		c.Eps = 0.9
	}
	if c.CriterionPower <= 0 {
		c.CriterionPower = 1
	}
	if c.Exponent != 4 {
		c.Exponent = 6
	}
	return c
}

// sepRatio returns the minimum allowed (r_AQ + r)/(r_AQ − r) threshold
// c = (1+ε)^(1/p); cells are well separated when the actual ratio is ≤ c.
func sepRatio(eps float64, power int) float64 {
	return math.Pow(1+eps, 1/float64(power))
}

// sepFactor2 converts the acceptance threshold c into the squared-form
// constant k² = ((c+1)/(c−1))². The historical test
//
//	d−r > 0 && d+r ≤ c·(d−r)
//
// is algebraically d ≥ r·(c+1)/(c−1) (with d > 0 when r = 0), so on
// squared distances it becomes d² ≥ r²·k² — no square root per visited
// node pair, and k² is computed once per solver instead of the ratio
// arithmetic running per pair. Every traversal (recursive oracles, list
// builders, frontier expansion) uses the same squared test, so Stats
// stay in lockstep across paths.
func sepFactor2(c float64) float64 {
	k := (c + 1) / (c - 1)
	return k * k
}

// wellSeparated2 is the strength-reduced near–far test on SQUARED center
// distance d2 for enclosing balls with radii ra, rq; k2 = sepFactor2(c).
// The d2 > 0 guard keeps coincident single-point cells (r = 0) in the
// near field, matching the d−r > 0 branch of the original form.
func wellSeparated2(d2, ra, rq, k2 float64) bool {
	r := ra + rq
	return d2 >= r*r*k2 && d2 > 0
}

// BornSolver holds the immutable state of the Born-radius treecode: the
// atoms octree T_A, the q-points octree T_Q, per-point payloads in tree
// order, and per-node aggregates.
type BornSolver struct {
	TA *octree.Tree // atoms octree
	TQ *octree.Tree // quadrature-points octree

	cfg    BornConfig
	sepK2  float64     // squared-form separation constant, sepFactor2((1+ε)^(1/p))
	r4     bool        // Coulomb-field r⁴ integrand instead of r⁶
	atomR  []float64   // vdW radii, T_A tree order
	wn     []geom.Vec3 // w_q·n_q per q-point, T_Q tree order
	nodeWN []geom.Vec3 // Σ w_q·n_q per T_Q node (the paper's ñ_Q)
	rcap   float64     // Born-radius cap (molecule diameter)

	// SoA mirrors of wn for the flat near-field kernels, and of nodeWN
	// for the flat far-field kernels (lists.go).
	wnX, wnY, wnZ    []float64
	wnNX, wnNY, wnNZ []float64

	// aRange packs each T_A node's point range as start|end<<32 —
	// computed once at construction so the vector near-field kernel
	// (bornnear_amd64.s) can walk run entries without touching the wide
	// octree.Node records.
	aRange []int64
	// aCent packs each T_A node center as 4 contiguous float64
	// (x, y, z, pad) so the vector far-field kernel loads a center with
	// one 32-byte read instead of three strided ones.
	aCent []float64

	// f32 holds the reduced-precision storage tier (nil unless the config
	// selects Float32); kernels32.go dispatches on it.
	f32 *bornSoA32
}

// kernel evaluates the configured integrand's denominator given the
// squared distance: 1/d⁶ for the r⁶ form, 1/d⁴ for the Coulomb-field form.
func (s *BornSolver) kernel(d2 float64) float64 {
	if s.r4 {
		return 1 / (d2 * d2)
	}
	return 1 / (d2 * d2 * d2)
}

// NewBornSolver builds both octrees and all aggregates. The molecule and
// q-point slices are not retained.
func NewBornSolver(mol *molecule.Molecule, qpts []surface.QPoint, cfg BornConfig) *BornSolver {
	cfg = cfg.withDefaults()
	s := &BornSolver{cfg: cfg, sepK2: sepFactor2(sepRatio(cfg.Eps, cfg.CriterionPower)), r4: cfg.Exponent == 4}

	apos := make([]geom.Vec3, mol.N())
	for i := range mol.Atoms {
		apos[i] = mol.Atoms[i].Pos
	}
	s.TA = octree.Build(apos, cfg.LeafSize)
	s.atomR = make([]float64, mol.N())
	for i, orig := range s.TA.Perm {
		s.atomR[i] = mol.Atoms[orig].Radius
	}

	s.TQ = octree.Build(surface.Positions(qpts), cfg.LeafSize)
	s.wn = make([]geom.Vec3, len(qpts))
	s.wnX = make([]float64, len(qpts))
	s.wnY = make([]float64, len(qpts))
	s.wnZ = make([]float64, len(qpts))
	for i, orig := range s.TQ.Perm {
		q := qpts[orig]
		w := q.Normal.Scale(q.Weight)
		s.wn[i] = w
		s.wnX[i], s.wnY[i], s.wnZ[i] = w.X, w.Y, w.Z
	}
	// Per-node ñ_Q aggregated bottom-up: leaves sum their own point range,
	// internal nodes sum their children. In the linearized layout children
	// always have larger indices than their parent, so one reverse sweep is
	// O(nodes + points) instead of the O(points · depth) of summing every
	// point under every ancestor.
	s.nodeWN = make([]geom.Vec3, len(s.TQ.Nodes))
	s.wnNX = make([]float64, len(s.TQ.Nodes))
	s.wnNY = make([]float64, len(s.TQ.Nodes))
	s.wnNZ = make([]float64, len(s.TQ.Nodes))
	for n := len(s.TQ.Nodes) - 1; n >= 0; n-- {
		nd := &s.TQ.Nodes[n]
		var sum geom.Vec3
		if nd.Leaf {
			for i := nd.Start; i < nd.Start+nd.Count; i++ {
				sum = sum.Add(s.wn[i])
			}
		} else {
			for _, ch := range nd.Children {
				if ch != octree.NoChild {
					sum = sum.Add(s.nodeWN[ch])
				}
			}
		}
		s.nodeWN[n] = sum
		s.wnNX[n], s.wnNY[n], s.wnNZ[n] = sum.X, sum.Y, sum.Z
	}

	b := mol.Bounds()
	if b.IsEmpty() {
		s.rcap = 10
	} else {
		s.rcap = math.Max(10, 2*b.HalfDiagonal())
	}
	s.aRange = make([]int64, len(s.TA.Nodes))
	s.aCent = make([]float64, 4*len(s.TA.Nodes))
	for n := range s.TA.Nodes {
		lo, hi := s.TA.PointRange(int32(n))
		s.aRange[n] = int64(lo) | int64(hi)<<32
		c := s.TA.Nodes[n].Center
		s.aCent[4*n], s.aCent[4*n+1], s.aCent[4*n+2] = c.X, c.Y, c.Z
	}
	if cfg.Precision == Float32 {
		s.f32 = newBornSoA32(s)
	}
	return s
}

// Eps returns the configured approximation parameter.
func (s *BornSolver) Eps() float64 { return s.cfg.Eps }

// NumAtoms returns the number of atoms.
func (s *BornSolver) NumAtoms() int { return len(s.atomR) }

// NumQLeaves returns the number of leaves of the q-point octree — the unit
// of node-based work division for the Born phase (paper Fig. 4, step 2).
func (s *BornSolver) NumQLeaves() int { return s.TQ.NumLeaves() }

// NewAccumulators allocates a zeroed (s_A per T_A node, s_a per atom) pair.
func (s *BornSolver) NewAccumulators() (sNode, sAtom []float64) {
	return make([]float64, len(s.TA.Nodes)), make([]float64, len(s.atomR))
}

// AccumulateQLeaf runs APPROX-INTEGRALS(root(T_A), Q) for the q-leaf with
// index qLeaf (0..NumQLeaves-1), adding approximated sums into sNode
// (indexed by T_A node) and exact sums into sAtom (T_A tree order). It
// returns the work counters. This is the single-tree variant used by the
// distributed engines: only the atoms octree is traversed.
func (s *BornSolver) AccumulateQLeaf(qLeaf int, sNode, sAtom []float64) Stats {
	var st Stats
	qn := s.TQ.LeafIdx[qLeaf]
	s.approxIntegrals(0, qn, sNode, sAtom, &st)
	return st
}

// approxIntegrals is the recursion of Fig. 2: a from T_A, q a leaf of T_Q.
func (s *BornSolver) approxIntegrals(a, q int32, sNode, sAtom []float64, st *Stats) {
	st.NodesVisited++
	an := &s.TA.Nodes[a]
	qn := &s.TQ.Nodes[q]
	d2 := an.Center.Dist2(qn.Center)
	if wellSeparated2(d2, an.Radius, qn.Radius, s.sepK2) {
		// Far enough: one pseudo q-point at Q's center against one pseudo
		// atom at A's center. s_A += ñ_Q·(c_Q − c_A) / r_AQ⁶.
		diff := qn.Center.Sub(an.Center)
		sNode[a] += s.nodeWN[q].Dot(diff) * s.kernel(d2)
		st.FarEval++
		return
	}
	if an.Leaf {
		// Too close to approximate: exact contributions of every q-point
		// under Q to every atom under A.
		qlo, qhi := s.TQ.PointRange(q)
		alo, ahi := s.TA.PointRange(a)
		for i := alo; i < ahi; i++ {
			p := s.TA.Points[i]
			var acc float64
			for j := qlo; j < qhi; j++ {
				dv := s.TQ.Points[j].Sub(p)
				d2 := dv.Norm2()
				if d2 < 1e-12 {
					continue // q-point coincides with the atom center
				}
				acc += s.wn[j].Dot(dv) * s.kernel(d2)
			}
			sAtom[i] += acc
		}
		st.NearPairs += int64(ahi-alo) * int64(qhi-qlo)
		return
	}
	for _, ch := range an.Children {
		if ch != octree.NoChild {
			s.approxIntegrals(ch, q, sNode, sAtom, st)
		}
	}
}

// AccumulateDual runs the dual-tree variant of APPROX-INTEGRALS from [6]
// (used by OCT_CILK): both octrees are traversed simultaneously starting at
// their roots. Accumulators have the same meaning as in AccumulateQLeaf.
func (s *BornSolver) AccumulateDual(sNode, sAtom []float64) Stats {
	var st Stats
	if len(s.TA.Nodes) == 0 || len(s.TQ.Nodes) == 0 {
		return st
	}
	s.approxIntegralsDual(0, 0, sNode, sAtom, &st)
	return st
}

func (s *BornSolver) approxIntegralsDual(a, q int32, sNode, sAtom []float64, st *Stats) {
	st.NodesVisited++
	an := &s.TA.Nodes[a]
	qn := &s.TQ.Nodes[q]
	d2 := an.Center.Dist2(qn.Center)
	if wellSeparated2(d2, an.Radius, qn.Radius, s.sepK2) {
		diff := qn.Center.Sub(an.Center)
		sNode[a] += s.nodeWN[q].Dot(diff) * s.kernel(d2)
		st.FarEval++
		return
	}
	switch {
	case an.Leaf && qn.Leaf:
		qlo, qhi := s.TQ.PointRange(q)
		alo, ahi := s.TA.PointRange(a)
		for i := alo; i < ahi; i++ {
			p := s.TA.Points[i]
			var acc float64
			for j := qlo; j < qhi; j++ {
				dv := s.TQ.Points[j].Sub(p)
				d2 := dv.Norm2()
				if d2 < 1e-12 {
					continue
				}
				acc += s.wn[j].Dot(dv) * s.kernel(d2)
			}
			sAtom[i] += acc
		}
		st.NearPairs += int64(ahi-alo) * int64(qhi-qlo)
	case qn.Leaf || (!an.Leaf && an.Radius >= qn.Radius):
		// Split the atoms node.
		for _, ch := range an.Children {
			if ch != octree.NoChild {
				s.approxIntegralsDual(ch, q, sNode, sAtom, st)
			}
		}
	default:
		// Split the q node.
		for _, ch := range qn.Children {
			if ch != octree.NoChild {
				s.approxIntegralsDual(a, ch, sNode, sAtom, st)
			}
		}
	}
}

// PushIntegrals implements PUSH-INTEGRALS-TO-ATOMS: it pushes ancestor
// sums down T_A and converts accumulated integrals into Born radii for the
// atoms whose tree-order index lies in [lo, hi) — the per-process atom
// segment of Fig. 4 step 4. R is written in tree order (callers use
// RadiiToOriginal for the original order). Subtrees disjoint from [lo, hi)
// are pruned, which is how each process traverses only its part of the
// tree; the number of nodes actually visited is returned for the time
// model.
func (s *BornSolver) PushIntegrals(sNode, sAtom []float64, lo, hi int32, R []float64) int64 {
	if len(s.TA.Nodes) == 0 {
		return 0
	}
	return s.pushDown(0, 0, sNode, sAtom, lo, hi, R)
}

func (s *BornSolver) pushDown(n int32, anc float64, sNode, sAtom []float64, lo, hi int32, R []float64) int64 {
	nd := &s.TA.Nodes[n]
	if nd.Start+nd.Count <= lo || nd.Start >= hi {
		return 0
	}
	visited := int64(1)
	total := anc + sNode[n]
	if nd.Leaf {
		from, to := nd.Start, nd.Start+nd.Count
		if from < lo {
			from = lo
		}
		if to > hi {
			to = hi
		}
		for i := from; i < to; i++ {
			if s.r4 {
				R[i] = gb.BornFromIntegralR4(sAtom[i]+total, s.atomR[i], s.rcap)
			} else {
				R[i] = gb.BornFromIntegral(sAtom[i]+total, s.atomR[i], s.rcap)
			}
		}
		return visited
	}
	for _, ch := range nd.Children {
		if ch != octree.NoChild {
			visited += s.pushDown(ch, total, sNode, sAtom, lo, hi, R)
		}
	}
	return visited
}

// RadiiToOriginal converts tree-order Born radii to original atom order.
func (s *BornSolver) RadiiToOriginal(treeOrder []float64) []float64 {
	out := make([]float64, len(treeOrder))
	for i, orig := range s.TA.Perm {
		out[orig] = treeOrder[i]
	}
	return out
}

// RadiiToTreeOrder converts original-order Born radii into tree order.
func (s *BornSolver) RadiiToTreeOrder(orig []float64) []float64 {
	out := make([]float64, len(orig))
	for i, o := range s.TA.Perm {
		out[i] = orig[o]
	}
	return out
}
