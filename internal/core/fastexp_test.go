package core

import (
	"math"
	"testing"
)

// TestExpNegAccuracy bounds the table-driven exponential against
// math.Exp over the kernel's operating range. The near-field argument is
// −d²/(4RᵢRⱼ) ∈ (−∞, 0], but terms beyond x ≈ −30 are already below
// energy noise; the bounds are tight where it matters and merely sane in
// the deep tail.
func TestExpNegAccuracy(t *testing.T) {
	const samples = 400000
	var worstNear, worstFar, worst32 float64
	for i := 0; i <= samples; i++ {
		x := -200.0 * float64(i) / samples
		want := math.Exp(x)
		e := math.Abs(expNeg(x)-want) / want
		if x >= -30 {
			if e > worstNear {
				worstNear = e
			}
		} else if e > worstFar {
			worstFar = e
		}
		if x32 := float32(x); x32 >= -87 {
			w := math.Exp(float64(x32))
			if e32 := math.Abs(float64(expNeg32(x32))-w) / w; e32 > worst32 {
				worst32 = e32
			}
		}
	}
	t.Logf("expNeg worst rel err: %.3g (|x|≤30), %.3g (tail); expNeg32: %.3g", worstNear, worstFar, worst32)
	if worstNear > 5e-15 {
		t.Errorf("expNeg |x|≤30: worst rel err %v > 5e-15", worstNear)
	}
	if worstFar > 3e-14 {
		t.Errorf("expNeg tail: worst rel err %v > 3e-14", worstFar)
	}
	if worst32 > 5e-6 {
		t.Errorf("expNeg32: worst rel err %v > 5e-6", worst32)
	}
}

// TestExpNegEdgeValues pins the exact values the kernels rely on: e⁰ = 1
// (the self-pair lane evaluates exp(−0) and the diagonal correction
// assumes the result is exactly 1.0) and NaN propagation (the Restrict
// poison proof flows NaN coordinates through the exponential).
func TestExpNegEdgeValues(t *testing.T) {
	if got := expNeg(0); got != 1.0 {
		t.Errorf("expNeg(0) = %v, want exactly 1.0", got)
	}
	if got := expNeg(math.Copysign(0, -1)); got != 1.0 {
		t.Errorf("expNeg(-0) = %v, want exactly 1.0", got)
	}
	if got := expNeg(math.NaN()); !math.IsNaN(got) {
		t.Errorf("expNeg(NaN) = %v, want NaN", got)
	}
}
