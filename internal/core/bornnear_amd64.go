package core

// amd64 dispatch for the vectorized Born near-field kernel. The Go
// reference loop (evalBornNearRun) stays the oracle-parity fallback —
// this path repacks each run's q-tile into a zero-padded stack block and
// hands whole runs to the AVX2+FMA kernel in bornnear_amd64.s.

// bornTileCap is the per-row capacity of the packed q-tile, in elements.
// Leaves normally hold ≤ LeafSize (16) points; depth-capped degenerate
// leaves (or large configured LeafSize) can exceed it, and those runs
// fall back to the scalar kernel.
const bornTileCap = 64

// bornNearArgs is the argument block for bornNearRunAVX2. Field offsets
// are hard-coded in bornnear_amd64.s — keep the layouts in sync.
type bornNearArgs struct {
	tile   *float64  //  0: packed q-tile, 6 rows × bornTileCap (qx qy qz wx wy wz)
	ents   *NodePair //  8: run entries (all sharing one q-leaf)
	nents  int64     // 16
	ranges *int64    // 24: aRange — T_A point ranges packed start|end<<32
	ax     *float64  // 32: T_A SoA positions
	ay     *float64  // 40
	az     *float64  // 48
	sAtom  *float64  // 56: near-field accumulator, indexed by atom row
	nv     int64     // 64: padded tile length in elements (multiple of 4)
	r4     int64     // 72: nonzero → 1/d⁴ integrand, else 1/d⁶
}

// bornNearRunAVX2 evaluates every (atom row × tile point) pair of the
// runs' entries with 4-wide AVX2+FMA lanes, accumulating into sAtom.
// Padding lanes carry w = 0 so they contribute exactly 0; coincident
// pairs (d² < 1e-12) are masked off bitwise, matching the scalar guard.
//
//go:noescape
func bornNearRunAVX2(a *bornNearArgs)

// evalBornNearRangeVec is EvalBornNearRange's amd64 vector path. Row
// sums reassociate across the 4 lanes, so per-element results differ
// from the scalar kernel only by summation rounding — well inside the
// 1e-12 golden pins (the near integrand has no catastrophic
// cancellation: see TestBornNearVecMatchesScalar).
func (s *BornSolver) evalBornNearRangeVec(near []NodePair, sAtom []float64) {
	var tile [6 * bornTileCap]float64
	args := bornNearArgs{
		tile:   &tile[0],
		ranges: &s.aRange[0],
		ax:     &s.TA.X[0],
		ay:     &s.TA.Y[0],
		az:     &s.TA.Z[0],
		sAtom:  &sAtom[0],
	}
	if s.r4 {
		args.r4 = 1
	}
	for len(near) > 0 {
		q := near[0].B
		run := 1
		for run < len(near) && near[run].B == q {
			run++
		}
		qlo, qhi := s.TQ.PointRange(q)
		n := int(qhi - qlo)
		if n > bornTileCap {
			s.evalBornNearRun(near[:run], q, sAtom)
			near = near[run:]
			continue
		}
		qx := s.TQ.X[qlo:qhi]
		qy := s.TQ.Y[qlo:qhi][:n]
		qz := s.TQ.Z[qlo:qhi][:n]
		wx := s.wnX[qlo:qhi][:n]
		wy := s.wnY[qlo:qhi][:n]
		wz := s.wnZ[qlo:qhi][:n]
		for k := 0; k < n; k++ {
			tile[0*bornTileCap+k] = qx[k]
			tile[1*bornTileCap+k] = qy[k]
			tile[2*bornTileCap+k] = qz[k]
			tile[3*bornTileCap+k] = wx[k]
			tile[4*bornTileCap+k] = wy[k]
			tile[5*bornTileCap+k] = wz[k]
		}
		nv := (n + 3) &^ 3
		for k := n; k < nv; k++ {
			tile[0*bornTileCap+k] = 0
			tile[1*bornTileCap+k] = 0
			tile[2*bornTileCap+k] = 0
			tile[3*bornTileCap+k] = 0
			tile[4*bornTileCap+k] = 0
			tile[5*bornTileCap+k] = 0
		}
		args.ents = &near[0]
		args.nents = int64(run)
		args.nv = int64(nv)
		bornNearRunAVX2(&args)
		near = near[run:]
	}
}
