package core

import (
	"math"
	"testing"

	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// testMol builds a small deterministic molecule + surface pair.
func testMol(n int, seed int64) (*molecule.Molecule, []surface.QPoint) {
	m := molecule.GenerateProtein("core", n, seed)
	q := surface.Sample(m, surface.Default())
	return m, q
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1e-30, math.Abs(b))
}

func TestWellSeparated(t *testing.T) {
	c := sepRatio(0.9, 1) // 1.9
	k2 := sepFactor2(c)   // ((c+1)/(c-1))²
	// d=10, r=1+1: ratio (10+2)/(10-2) = 1.5 ≤ 1.9 → separated.
	if !wellSeparated2(100, 1, 1, k2) {
		t.Error("clearly separated pair rejected")
	}
	// Overlapping balls are never separated.
	if wellSeparated2(1.5*1.5, 1, 1, k2) {
		t.Error("overlapping pair accepted")
	}
	// d=3, r=2: ratio 5/1 = 5 > 1.9 → not separated.
	if wellSeparated2(9, 1, 1, k2) {
		t.Error("close pair accepted")
	}
	// Coincident point nodes (r=0, d=0) must not be "separated": the
	// squared form's d² > 0 guard replaces the linear form's d−r > 0.
	if wellSeparated2(0, 0, 0, k2) {
		t.Error("coincident degenerate pair accepted")
	}
	// The squared form must agree with the (d+r) ≤ c·(d−r) definition
	// across the acceptance boundary.
	for _, d := range []float64{2.0, 4.0, 6.0, 6.55, 6.56, 6.6, 8.0, 50.0} {
		ra, rq := 1.25, 0.8
		r := ra + rq
		lin := d-r > 0 && d+r <= c*(d-r)
		if got := wellSeparated2(d*d, ra, rq, k2); got != lin {
			t.Errorf("d=%v: squared form %v, linear form %v", d, got, lin)
		}
	}
}

func TestSepRatioPowers(t *testing.T) {
	if got := sepRatio(0.9, 1); math.Abs(got-1.9) > 1e-12 {
		t.Errorf("power 1: %v", got)
	}
	if got := sepRatio(0.9, 6); math.Abs(got-math.Pow(1.9, 1.0/6)) > 1e-12 {
		t.Errorf("power 6: %v", got)
	}
}

func TestBornTreecodeMatchesNaiveSmallEps(t *testing.T) {
	m, q := testMol(600, 21)
	exact := gb.BornRadiiR6(m, q)

	bs := NewBornSolver(m, q, BornConfig{Eps: 0.05})
	sNode, sAtom := bs.NewAccumulators()
	for l := 0; l < bs.NumQLeaves(); l++ {
		bs.AccumulateQLeaf(l, sNode, sAtom)
	}
	rTree := make([]float64, m.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(m.N()), rTree)
	R := bs.RadiiToOriginal(rTree)

	maxRel := 0.0
	for i := range R {
		if e := relErr(R[i], exact[i]); e > maxRel {
			maxRel = e
		}
	}
	if maxRel > 0.02 {
		t.Errorf("max Born-radius error %v at ε=0.05", maxRel)
	}
}

func TestBornErrorGrowsWithEps(t *testing.T) {
	m, q := testMol(500, 22)
	exact := gb.BornRadiiR6(m, q)
	var prev float64 = -1
	for _, eps := range []float64{0.1, 0.9, 3.0} {
		bs := NewBornSolver(m, q, BornConfig{Eps: eps})
		sNode, sAtom := bs.NewAccumulators()
		for l := 0; l < bs.NumQLeaves(); l++ {
			bs.AccumulateQLeaf(l, sNode, sAtom)
		}
		rTree := make([]float64, m.N())
		bs.PushIntegrals(sNode, sAtom, 0, int32(m.N()), rTree)
		R := bs.RadiiToOriginal(rTree)
		var rms float64
		for i := range R {
			d := relErr(R[i], exact[i])
			rms += d * d
		}
		rms = math.Sqrt(rms / float64(len(R)))
		if prev >= 0 && rms+1e-12 < prev*0.5 {
			t.Errorf("error did not grow with ε: %v after %v", rms, prev)
		}
		prev = rms
	}
}

func TestBornDualMatchesSingleTree(t *testing.T) {
	m, q := testMol(400, 23)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.5})

	s1n, s1a := bs.NewAccumulators()
	for l := 0; l < bs.NumQLeaves(); l++ {
		bs.AccumulateQLeaf(l, s1n, s1a)
	}
	r1 := make([]float64, m.N())
	bs.PushIntegrals(s1n, s1a, 0, int32(m.N()), r1)

	s2n, s2a := bs.NewAccumulators()
	bs.AccumulateDual(s2n, s2a)
	r2 := make([]float64, m.N())
	bs.PushIntegrals(s2n, s2a, 0, int32(m.N()), r2)

	// Dual-tree approximates MORE (it can accept at internal q-nodes), so
	// results differ slightly but must stay close.
	for i := range r1 {
		if e := relErr(r2[i], r1[i]); e > 0.1 {
			t.Fatalf("atom %d: dual %v vs single %v", i, r2[i], r1[i])
		}
	}
}

func TestPushIntegralsSegmentsCompose(t *testing.T) {
	// Computing Born radii in 3 disjoint segments must equal one full pass
	// (the distributed engines rely on this).
	m, q := testMol(300, 24)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})
	sNode, sAtom := bs.NewAccumulators()
	for l := 0; l < bs.NumQLeaves(); l++ {
		bs.AccumulateQLeaf(l, sNode, sAtom)
	}
	full := make([]float64, m.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(m.N()), full)

	seg := make([]float64, m.N())
	n3 := int32(m.N() / 3)
	bs.PushIntegrals(sNode, sAtom, 0, n3, seg)
	bs.PushIntegrals(sNode, sAtom, n3, 2*n3, seg)
	bs.PushIntegrals(sNode, sAtom, 2*n3, int32(m.N()), seg)
	for i := range full {
		if full[i] != seg[i] {
			t.Fatalf("atom %d: segmented %v != full %v", i, seg[i], full[i])
		}
	}
}

func TestEpolTreecodeMatchesNaiveSmallEps(t *testing.T) {
	m, q := testMol(500, 25)
	R := gb.BornRadiiR6(m, q)
	naive := gb.EpolNaive(m, R, gb.Exact)

	res := ComputeSerial(m, q, BornConfig{Eps: 0.05}, EpolConfig{Eps: 0.05})
	if e := relErr(res.Epol, naive); e > 0.01 {
		t.Errorf("E_pol treecode %v vs naive %v (rel %v)", res.Epol, naive, e)
	}
}

func TestEpolPaperOperatingPoint(t *testing.T) {
	// ε = 0.9 / 0.9 — the paper's operating point — must stay within ~1%
	// of naive (the paper reports <1% for CMV and low single digits across
	// ZDock).
	m, q := testMol(800, 26)
	R := gb.BornRadiiR6(m, q)
	naive := gb.EpolNaive(m, R, gb.Exact)
	res := ComputeSerial(m, q, BornConfig{Eps: 0.9}, EpolConfig{Eps: 0.9})
	if e := relErr(res.Epol, naive); e > 0.05 {
		t.Errorf("ε=0.9 error %v too large (%v vs %v)", e, res.Epol, naive)
	}
	// And it must actually approximate (some far-field evaluations).
	if res.EpolStats.FarEval == 0 {
		t.Error("no far-field approximation at ε=0.9")
	}
	if res.BornStats.FarEval == 0 {
		t.Error("no Born far-field approximation at ε=0.9")
	}
}

func TestEpolDualMatchesLeafDriven(t *testing.T) {
	m, q := testMol(400, 27)
	R := gb.BornRadiiR6(m, q)
	charges := make([]float64, m.N())
	for i := range m.Atoms {
		charges[i] = m.Atoms[i].Charge
	}
	es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.5})
	var raw1 float64
	for l := 0; l < es.NumLeaves(); l++ {
		e, _ := es.LeafEnergy(l)
		raw1 += e
	}
	raw2, _ := es.EnergyDual()
	// The dual tree can approximate at coarser granularity; they agree to
	// within the approximation scale.
	if e := relErr(raw2, raw1); e > 0.05 {
		t.Errorf("dual %v vs leaf-driven %v (rel %v)", raw2, raw1, e)
	}
}

func TestEpolLeafPartitionSumsInvariant(t *testing.T) {
	// Summing leaf energies in any grouping equals the serial total —
	// the property node-based MPI division depends on.
	m, q := testMol(350, 28)
	R := gb.BornRadiiR6(m, q)
	es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})
	var total float64
	partial := make([]float64, 4)
	for l := 0; l < es.NumLeaves(); l++ {
		e, _ := es.LeafEnergy(l)
		total += e
		partial[l%4] += e
	}
	var re float64
	for _, p := range partial {
		re += p
	}
	if relErr(re, total) > 1e-12 {
		t.Errorf("regrouped %v != total %v", re, total)
	}
}

func TestBinsConserveCharge(t *testing.T) {
	m, q := testMol(300, 29)
	R := gb.BornRadiiR6(m, q)
	es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})
	// Root bins sum to total charge.
	if e := math.Abs(es.BinChargeSum(0) - m.TotalCharge()); e > 1e-9 {
		t.Errorf("root bin charge off by %v", e)
	}
	// Every internal node's bins equal the sum of its children's.
	for ni := range es.T.Nodes {
		nd := &es.T.Nodes[ni]
		if nd.Leaf {
			continue
		}
		var cs float64
		for _, ch := range nd.Children {
			if ch >= 0 {
				cs += es.BinChargeSum(ch)
			}
		}
		if math.Abs(cs-es.BinChargeSum(int32(ni))) > 1e-9 {
			t.Fatalf("node %d bin charge mismatch", ni)
		}
	}
}

func TestNumBinsGrowsAsEpsShrinks(t *testing.T) {
	m, q := testMol(300, 30)
	R := gb.BornRadiiR6(m, q)
	mFine := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.1})
	mCoarse := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})
	if mFine.NumBins() <= mCoarse.NumBins() {
		t.Errorf("bins: ε=0.1 %d ≤ ε=0.9 %d", mFine.NumBins(), mCoarse.NumBins())
	}
}

func TestTreecodeCheaperThanNaive(t *testing.T) {
	// Exact-pair work must be well below N·m and N². At ε=0.9 the energy
	// acceptance radius (3.2× cell radii) is comparable to a small
	// protein's size, so sizeable energy savings only appear for larger ε
	// or larger molecules; we check Born at the paper's ε and energy at a
	// coarser ε on this 4k-atom molecule (the asymptotic test below covers
	// the scaling trend).
	m, q := testMol(4000, 31)
	res := ComputeSerial(m, q, BornConfig{Eps: 0.9}, EpolConfig{Eps: 2.0})
	nm := int64(m.N()) * int64(len(q))
	nn := int64(m.N()) * int64(m.N())
	if res.BornStats.NearPairs*2 > nm {
		t.Errorf("Born near pairs %d not ≪ N·m = %d", res.BornStats.NearPairs, nm)
	}
	if res.EpolStats.NearPairs*2 > nn {
		t.Errorf("Epol near pairs %d not ≪ N² = %d", res.EpolStats.NearPairs, nn)
	}
}

func TestTreecodeNearFractionShrinksWithSize(t *testing.T) {
	// The fraction of exact pair work relative to N² must decrease as the
	// molecule grows — the sub-quadratic scaling claim.
	frac := func(n int) float64 {
		m, q := testMol(n, 55)
		res := ComputeSerial(m, q, BornConfig{Eps: 0.9}, EpolConfig{Eps: 0.9})
		return float64(res.EpolStats.NearPairs) / (float64(n) * float64(n))
	}
	small, large := frac(1500), frac(6000)
	if large >= small {
		t.Errorf("near-pair fraction grew with size: %v -> %v", small, large)
	}
}

func TestApproximateMathCloseToExact(t *testing.T) {
	m, q := testMol(400, 32)
	exact := ComputeSerial(m, q, BornConfig{Eps: 0.9}, EpolConfig{Eps: 0.9, Math: gb.Exact})
	approx := ComputeSerial(m, q, BornConfig{Eps: 0.9}, EpolConfig{Eps: 0.9, Math: gb.Approximate})
	if e := relErr(approx.Epol, exact.Epol); e > 0.08 {
		t.Errorf("approximate math shifted energy by %v", e)
	}
}

func TestComputeSerialDualAgrees(t *testing.T) {
	m, q := testMol(400, 33)
	a := ComputeSerial(m, q, BornConfig{Eps: 0.5}, EpolConfig{Eps: 0.5})
	b := ComputeSerialDual(m, q, BornConfig{Eps: 0.5}, EpolConfig{Eps: 0.5})
	if e := relErr(b.Epol, a.Epol); e > 0.05 {
		t.Errorf("dual pipeline %v vs single %v", b.Epol, a.Epol)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{FarEval: 1, NearPairs: 2, NodesVisited: 3}
	a.Add(Stats{FarEval: 10, NearPairs: 20, NodesVisited: 30})
	if a != (Stats{11, 22, 33}) {
		t.Errorf("Stats.Add = %+v", a)
	}
}

func BenchmarkBornTreecode2000(b *testing.B) {
	m, q := testMol(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})
		sNode, sAtom := bs.NewAccumulators()
		for l := 0; l < bs.NumQLeaves(); l++ {
			bs.AccumulateQLeaf(l, sNode, sAtom)
		}
		rT := make([]float64, m.N())
		bs.PushIntegrals(sNode, sAtom, 0, int32(m.N()), rT)
	}
}

func BenchmarkEpolTreecode2000(b *testing.B) {
	m, q := testMol(2000, 1)
	R := gb.BornRadiiR6(m, q)
	es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var raw float64
		for l := 0; l < es.NumLeaves(); l++ {
			e, _ := es.LeafEnergy(l)
			raw += e
		}
		_ = raw
	}
}
