package core

import (
	"fmt"
	"math"
	"testing"
)

// Property suite for the hand-vectorized flat kernels: tile-boundary leaf
// sizes against the recursive oracle, vector-vs-scalar dispatch parity,
// the float32 tier's error budget, and allocation-freedom pins.

// f32Budget bounds the reduced-precision tier against the f64 recursive
// oracle. The tier stores inputs in float32 (~1.2e-7 ulp) and accumulates
// in float64; the observed worst case is ~3e-7, so 5e-6 leaves headroom
// without letting a broken kernel through.
const f32Budget = 5e-6

// TestFlatKernelsTileBoundarySizes sweeps octree leaf capacities that sit
// on the vector kernels' tile and unroll boundaries (tile cap 64, lane
// width 4): leaves of size 1, unroll−1/unroll/unroll+1, a non-multiple of
// the unroll, and cap−1/cap/cap+1 (the latter falling back to the scalar
// run path). Every combination must reproduce the recursive oracle to
// 1e-12 (f64) and stay inside the tier budget (f32).
func TestFlatKernelsTileBoundarySizes(t *testing.T) {
	leafSizes := []int{1, 3, 4, 5, 7, 63, 64, 65}
	if testing.Short() {
		leafSizes = []int{1, 5, 64, 65}
	}
	for _, n := range []int{1, 6, 300} {
		m, q := testMol(n, int64(301+n))
		for _, leaf := range leafSizes {
			t.Run(fmt.Sprintf("n=%d/leaf=%d", n, leaf), func(t *testing.T) {
				for _, exp := range []int{6, 4} {
					cfg := BornConfig{Eps: 0.9, Exponent: exp, LeafSize: leaf}
					bs := NewBornSolver(m, q, cfg)

					rn, ra := bs.NewAccumulators()
					for l := 0; l < bs.NumQLeaves(); l++ {
						bs.AccumulateQLeaf(l, rn, ra)
					}
					rRad := make([]float64, m.N())
					bs.PushIntegrals(rn, ra, 0, int32(m.N()), rRad)

					list := bs.BuildBornList(0, bs.NumQLeaves())
					fn, fa := bs.NewAccumulators()
					bs.EvalBornList(list, fn, fa)
					assertClose(t, fmt.Sprintf("r%d sNode", exp), fn, rn)
					assertClose(t, fmt.Sprintf("r%d sAtom", exp), fa, ra)

					cfg.Precision = Float32
					bs32 := NewBornSolver(m, q, cfg)
					list32 := bs32.BuildBornList(0, bs32.NumQLeaves())
					gn, ga := bs32.NewAccumulators()
					bs32.EvalBornList(list32, gn, ga)
					gRad := make([]float64, m.N())
					bs32.PushIntegrals(gn, ga, 0, int32(m.N()), gRad)
					for i := range gRad {
						if e := relErr(gRad[i], rRad[i]); e > f32Budget {
							t.Fatalf("r%d f32 radius[%d]: %v vs %v (rel %v)", exp, i, gRad[i], rRad[i], e)
						}
					}
				}

				R := treecodeRadii(m, q)
				es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9, LeafSize: leaf})
				var rRaw float64
				for l := 0; l < es.NumLeaves(); l++ {
					e, _ := es.LeafEnergy(l)
					rRaw += e
				}
				list := es.BuildEpolList(0, es.NumLeaves())
				fRaw, _ := es.EvalEpolList(list)
				if e := relErr(fRaw, rRaw); e > 1e-12 {
					t.Fatalf("epol energy: flat %v vs recursive %v (rel %v)", fRaw, rRaw, e)
				}

				es32 := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9, LeafSize: leaf, Precision: Float32})
				list32 := es32.BuildEpolList(0, es32.NumLeaves())
				gRaw, _ := es32.EvalEpolList(list32)
				if e := relErr(gRaw, rRaw); e > f32Budget {
					t.Fatalf("epol f32 energy: %v vs %v (rel %v)", gRaw, rRaw, e)
				}
			})
		}
	}
}

// forceScalar disables the vector dispatch for the duration of fn.
// Package tests run sequentially, so flipping the cached feature flag is
// race-free.
func forceScalar(fn func()) {
	saved := hasAVX2FMA
	hasAVX2FMA = false
	defer func() { hasAVX2FMA = saved }()
	fn()
}

// TestBornNearVecMatchesScalar pins the AVX2 Born near kernel against the
// pure-Go scalar kernel on the same list: per-element agreement to 1e-12.
// The near integrand subtracts two nearby reciprocals, so this is the
// test that catches re-association breaking cancellation.
func TestBornNearVecMatchesScalar(t *testing.T) {
	if !hasAVX2FMA {
		t.Skip("no AVX2+FMA; vector path unreachable")
	}
	for _, exp := range []int{6, 4} {
		m, q := testMol(2000, int64(77+exp))
		bs := NewBornSolver(m, q, BornConfig{Eps: 0.9, Exponent: exp})
		list := bs.BuildBornList(0, bs.NumQLeaves())

		_, va := bs.NewAccumulators()
		bs.EvalBornNearRange(list, 0, len(list.Near), va)

		_, sa := bs.NewAccumulators()
		forceScalar(func() { bs.EvalBornNearRange(list, 0, len(list.Near), sa) })

		for i := range va {
			if e := relErr(va[i], sa[i]); e > 1e-12 {
				t.Fatalf("r%d sAtom[%d]: vec %v vs scalar %v (rel %v)", exp, i, va[i], sa[i], e)
			}
		}
	}
}

// TestEpolNearVecMatchesScalar pins the AVX2 energy near kernel (vector
// exp, gathered 2^j table, Go-side self-pair correction) against the
// scalar kernel on the same list.
func TestEpolNearVecMatchesScalar(t *testing.T) {
	if !hasAVX2FMA {
		t.Skip("no AVX2+FMA; vector path unreachable")
	}
	m, q := testMol(2000, 79)
	R := treecodeRadii(m, q)
	es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})
	list := es.BuildEpolList(0, es.NumLeaves())

	vec := es.EvalEpolNearRange(list, 0, len(list.Near))
	var scalar float64
	forceScalar(func() { scalar = es.EvalEpolNearRange(list, 0, len(list.Near)) })
	if e := relErr(vec, scalar); e > 1e-12 {
		t.Fatalf("near sum: vec %v vs scalar %v (rel %v)", vec, scalar, e)
	}
}

// TestKernelEvalZeroAllocs pins the flat evaluation hot paths at exactly
// zero allocations per pass once the lists and accumulators exist, in
// both storage tiers.
func TestKernelEvalZeroAllocs(t *testing.T) {
	m, q := testMol(2000, 83)
	R := treecodeRadii(m, q)
	for _, prec := range []Precision{Float64, Float32} {
		bs := NewBornSolver(m, q, BornConfig{Eps: 0.9, Precision: prec})
		bList := bs.BuildBornList(0, bs.NumQLeaves())
		sN, sA := bs.NewAccumulators()
		if allocs := testing.AllocsPerRun(3, func() {
			bs.EvalBornList(bList, sN, sA)
		}); allocs != 0 {
			t.Errorf("%v EvalBornList: %v allocs/op, want 0", prec, allocs)
		}

		es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9, Precision: prec})
		eList := es.BuildEpolList(0, es.NumLeaves())
		if allocs := testing.AllocsPerRun(3, func() {
			raw, _ := es.EvalEpolList(eList)
			_ = raw
		}); allocs != 0 {
			t.Errorf("%v EvalEpolList: %v allocs/op, want 0", prec, allocs)
		}
	}
}

// TestF32TierWithinBudget checks the reduced-precision tier end to end at
// a realistic size: per-atom Born radii and the total energy against the
// f64 solvers.
func TestF32TierWithinBudget(t *testing.T) {
	m, q := testMol(2000, 89)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})
	sN, sA := bs.NewAccumulators()
	bs.EvalBornList(bs.BuildBornList(0, bs.NumQLeaves()), sN, sA)
	rad := make([]float64, m.N())
	bs.PushIntegrals(sN, sA, 0, int32(m.N()), rad)

	bs32 := NewBornSolver(m, q, BornConfig{Eps: 0.9, Precision: Float32})
	gN, gA := bs32.NewAccumulators()
	bs32.EvalBornList(bs32.BuildBornList(0, bs32.NumQLeaves()), gN, gA)
	rad32 := make([]float64, m.N())
	bs32.PushIntegrals(gN, gA, 0, int32(m.N()), rad32)
	worst := 0.0
	for i := range rad {
		if e := relErr(rad32[i], rad[i]); e > worst {
			worst = e
		}
	}
	if worst > f32Budget {
		t.Errorf("f32 Born radii: worst rel err %v > %v", worst, f32Budget)
	}

	es := NewEpolSolverFromMolecule(m, rad, EpolConfig{Eps: 0.9})
	raw, _ := es.EvalEpolList(es.BuildEpolList(0, es.NumLeaves()))
	es32 := NewEpolSolverFromMolecule(m, rad, EpolConfig{Eps: 0.9, Precision: Float32})
	raw32, _ := es32.EvalEpolList(es32.BuildEpolList(0, es32.NumLeaves()))
	if e := relErr(raw32, raw); e > f32Budget {
		t.Errorf("f32 energy: rel err %v > %v (raw %v vs %v)", e, f32Budget, raw32, raw)
	}
	if math.IsNaN(raw32) {
		t.Error("f32 energy is NaN")
	}
}
