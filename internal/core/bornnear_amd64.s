#include "textflag.h"

// Vectorized Born near-field kernel. See bornNearArgs in
// bornnear_amd64.go for the argument block layout and evalBornNearRangeVec
// for the q-tile packing contract: six rows of bornTileCap (64) float64
// at byte offsets 0/512/1024/1536/2048/2560 (qx qy qz wx wy wz), padded
// with zero weights to a multiple of 4 elements.
//
// Per run entry the kernel walks the entry's atom rows (point range
// loaded from the packed aRange table) and sweeps the tile 4 pairs at a
// time: d = q − p, d² by FMA, the surface dot w·d by FMA against the
// tile's weight rows, then t = (w·d)/d²ᵏ and a bitwise AND with the
// d² ≥ 1e-12 compare mask — coincident pairs and zero-padding lanes both
// land on ±0 contributions exactly like the scalar guard. Row sums
// horizontally reduce into sAtom[row].
//
// Register plan (both exponent variants):
//   DX tile · BX/R15 entry cursor/end · R14 aRange · R8..R10 atom SoA
//   R11 sAtom · R12 tile bytes · CX/R13 row cursor/end · SI tile offset
//   Y0..Y2 row position splats · Y3 row accumulator · Y4..Y8 pipeline
//   Y15 1e-12 splat

DATA bornEps<>+0(SB)/8, $0x3D719799812DEA11 // 1e-12
GLOBL bornEps<>(SB), RODATA, $8

// func bornNearRunAVX2(a *bornNearArgs)
TEXT ·bornNearRunAVX2(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), DX             // tile base
	MOVQ 8(AX), BX             // entries cursor
	MOVQ 16(AX), R15
	SHLQ $3, R15
	ADDQ BX, R15               // entries end
	MOVQ 24(AX), R14           // packed point ranges
	MOVQ 32(AX), R8            // atom x
	MOVQ 40(AX), R9            // atom y
	MOVQ 48(AX), R10           // atom z
	MOVQ 56(AX), R11           // sAtom
	MOVQ 64(AX), R12
	SHLQ $3, R12               // tile length in bytes
	MOVQ 72(AX), AX            // exponent selector
	VBROADCASTSD bornEps<>+0(SB), Y15
	CMPQ AX, $0
	JNE  r4entries

	// 1/d⁶ variant.
r6entries:
	CMPQ BX, R15
	JGE  vdone
	MOVLQSX 0(BX), AX          // entry's T_A node
	ADDQ $8, BX
	MOVQ (R14)(AX*8), CX
	MOVQ CX, R13
	SHRQ $32, R13              // row end
	MOVL CX, CX                // row cursor (zero-extends)

r6rows:
	CMPQ CX, R13
	JGE  r6entries
	VBROADCASTSD (R8)(CX*8), Y0
	VBROADCASTSD (R9)(CX*8), Y1
	VBROADCASTSD (R10)(CX*8), Y2
	VXORPD Y3, Y3, Y3
	XORQ SI, SI

r6j:
	VMOVUPD (DX)(SI*1), Y4
	VMOVUPD 512(DX)(SI*1), Y5
	VMOVUPD 1024(DX)(SI*1), Y6
	VSUBPD Y0, Y4, Y4          // dx = qx − px
	VSUBPD Y1, Y5, Y5
	VSUBPD Y2, Y6, Y6
	VMULPD Y4, Y4, Y7
	VFMADD231PD Y5, Y5, Y7
	VFMADD231PD Y6, Y6, Y7     // d²
	VMULPD 1536(DX)(SI*1), Y4, Y4
	VFMADD231PD 2048(DX)(SI*1), Y5, Y4
	VFMADD231PD 2560(DX)(SI*1), Y6, Y4 // w·d
	VMULPD Y7, Y7, Y8
	VMULPD Y7, Y8, Y8          // d⁶
	VDIVPD Y8, Y4, Y4          // t = (w·d)/d⁶
	VCMPPD $13, Y15, Y7, Y7    // d² ≥ 1e-12 (GE_OS)
	VANDPD Y7, Y4, Y4
	VADDPD Y4, Y3, Y3
	ADDQ $32, SI
	CMPQ SI, R12
	JL   r6j

	VEXTRACTF128 $1, Y3, X4
	VADDPD X4, X3, X3
	VSHUFPD $1, X3, X3, X4
	VADDSD X4, X3, X3
	VADDSD (R11)(CX*8), X3, X3
	VMOVSD X3, (R11)(CX*8)
	INCQ CX
	JMP  r6rows

	// 1/d⁴ (Coulomb-field) variant: identical but for the denominator.
r4entries:
	CMPQ BX, R15
	JGE  vdone
	MOVLQSX 0(BX), AX
	ADDQ $8, BX
	MOVQ (R14)(AX*8), CX
	MOVQ CX, R13
	SHRQ $32, R13
	MOVL CX, CX

r4rows:
	CMPQ CX, R13
	JGE  r4entries
	VBROADCASTSD (R8)(CX*8), Y0
	VBROADCASTSD (R9)(CX*8), Y1
	VBROADCASTSD (R10)(CX*8), Y2
	VXORPD Y3, Y3, Y3
	XORQ SI, SI

r4j:
	VMOVUPD (DX)(SI*1), Y4
	VMOVUPD 512(DX)(SI*1), Y5
	VMOVUPD 1024(DX)(SI*1), Y6
	VSUBPD Y0, Y4, Y4
	VSUBPD Y1, Y5, Y5
	VSUBPD Y2, Y6, Y6
	VMULPD Y4, Y4, Y7
	VFMADD231PD Y5, Y5, Y7
	VFMADD231PD Y6, Y6, Y7
	VMULPD 1536(DX)(SI*1), Y4, Y4
	VFMADD231PD 2048(DX)(SI*1), Y5, Y4
	VFMADD231PD 2560(DX)(SI*1), Y6, Y4
	VMULPD Y7, Y7, Y8          // d⁴
	VDIVPD Y8, Y4, Y4
	VCMPPD $13, Y15, Y7, Y7
	VANDPD Y7, Y4, Y4
	VADDPD Y4, Y3, Y3
	ADDQ $32, SI
	CMPQ SI, R12
	JL   r4j

	VEXTRACTF128 $1, Y3, X4
	VADDPD X4, X3, X3
	VSHUFPD $1, X3, X3, X4
	VADDSD X4, X3, X3
	VADDSD (R11)(CX*8), X3, X3
	VMOVSD X3, (R11)(CX*8)
	INCQ CX
	JMP  r4rows

vdone:
	VZEROUPPER
	RET
