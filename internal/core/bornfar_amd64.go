package core

// amd64 dispatch for the vectorized Born far-field kernel. Far entries
// arrive in runs sharing a q-leaf; within a run every entry names a
// distinct T_A node, so four entries can be evaluated in SIMD lanes and
// scattered into sNode without accumulation conflicts.

// bornFarArgs is the argument block for bornFarRunAVX2. Field offsets
// are hard-coded in bornfar_amd64.s — keep the layouts in sync.
type bornFarArgs struct {
	ents          *NodePair //  0: run entries, count a multiple of 4
	nents         int64     //  8
	cent          *float64  // 16: aCent — packed (x,y,z,pad) T_A node centers
	sNode         *float64  // 24: far-field accumulator, indexed by T_A node
	cqx, cqy, cqz float64   // 32,40,48: the run's q-leaf center
	nx, ny, nz    float64   // 56,64,72: the run's aggregate ñ_Q
	r4            int64     // 80: nonzero → 1/d⁴ integrand, else 1/d⁶
}

// bornFarRunAVX2 evaluates 4 far entries per iteration: transposed
// 32-byte center loads, FMA distance/dot pipeline, one packed divide,
// and scalar scatter-adds into sNode.
//
//go:noescape
func bornFarRunAVX2(a *bornFarArgs)

// evalBornFarRangeVec is EvalBornFarRange's amd64 vector path. The
// q-side values are hoisted per run exactly like the scalar loop; the
// sub-multiple-of-4 run tail stays scalar.
func (s *BornSolver) evalBornFarRangeVec(far []NodePair, sNode []float64) {
	args := bornFarArgs{cent: &s.aCent[0], sNode: &sNode[0]}
	if s.r4 {
		args.r4 = 1
	}
	acx, acy, acz := s.TA.CX, s.TA.CY, s.TA.CZ
	for len(far) > 0 {
		q := far[0].B
		run := 1
		for run < len(far) && far[run].B == q {
			run++
		}
		args.cqx, args.cqy, args.cqz = s.TQ.CX[q], s.TQ.CY[q], s.TQ.CZ[q]
		args.nx, args.ny, args.nz = s.wnNX[q], s.wnNY[q], s.wnNZ[q]
		if n4 := run &^ 3; n4 > 0 {
			args.ents = &far[0]
			args.nents = int64(n4)
			bornFarRunAVX2(&args)
		}
		for _, p := range far[run&^3 : run] {
			dx, dy, dz := args.cqx-acx[p.A], args.cqy-acy[p.A], args.cqz-acz[p.A]
			d2 := dx*dx + dy*dy + dz*dz
			if s.r4 {
				sNode[p.A] += (args.nx*dx + args.ny*dy + args.nz*dz) * (1 / (d2 * d2))
			} else {
				sNode[p.A] += (args.nx*dx + args.ny*dy + args.nz*dz) * (1 / (d2 * d2 * d2))
			}
		}
		far = far[run:]
	}
}
