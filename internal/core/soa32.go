package core

// This file holds the reduced-precision storage tier: float32 mirrors of
// every array the flat evaluation kernels stream. Positions, radii,
// charges and per-node aggregates are stored (and their arithmetic done)
// in float32; accumulation stays float64 (kernels32.go), so the tier's
// error is storage quantization, not summation drift. The mirrors are
// built once at solver construction when the config selects
// Precision == Float32 — the octrees, interaction lists and Stats are
// always built from the float64 geometry, so a float32 solver makes
// exactly the same near/far decisions as its float64 twin and the two
// tiers stay list-compatible (the serve cache can hold either).

// Precision selects the storage/arithmetic tier of the flat evaluation
// kernels. Float64 is the default (and the recursive oracle's tier);
// Float32 stores coordinates, radii and charges in float32 and runs the
// kernel arithmetic in float32 with float64 accumulation, trading ~1e-6
// relative error (see DESIGN.md §11) for half the hot-path memory
// footprint. Note that only the float64 tier has the hand-written AVX2
// kernels, so on amd64 it is usually also the faster one; the tier's win
// is resident-set size (e.g. more cache entries in the serving layer).
type Precision uint8

const (
	Float64 Precision = iota
	Float32
)

// String returns the tier label used by flags, /stats and metric labels.
func (p Precision) String() string {
	if p == Float32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision parses a tier label ("f64", "f32", ""). Empty means
// Float64. ok is false for anything else.
func ParsePrecision(s string) (Precision, bool) {
	switch s {
	case "", "f64", "float64":
		return Float64, true
	case "f32", "float32":
		return Float32, true
	}
	return Float64, false
}

func f32of(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

func recipOf(src []float64) []float64 {
	out := make([]float64, len(src))
	for i, v := range src {
		out[i] = 1 / v
	}
	return out
}

// bornSoA32 mirrors every array the flat Born kernels touch.
type bornSoA32 struct {
	ax, ay, az    []float32 // T_A point positions, tree order
	qx, qy, qz    []float32 // T_Q point positions, tree order
	wx, wy, wz    []float32 // w_q·n_q per q-point
	acx, acy, acz []float32 // T_A node centers
	qcx, qcy, qcz []float32 // T_Q node centers
	wnx, wny, wnz []float32 // ñ_Q per T_Q node
}

func newBornSoA32(s *BornSolver) *bornSoA32 {
	return &bornSoA32{
		ax: f32of(s.TA.X), ay: f32of(s.TA.Y), az: f32of(s.TA.Z),
		qx: f32of(s.TQ.X), qy: f32of(s.TQ.Y), qz: f32of(s.TQ.Z),
		wx: f32of(s.wnX), wy: f32of(s.wnY), wz: f32of(s.wnZ),
		acx: f32of(s.TA.CX), acy: f32of(s.TA.CY), acz: f32of(s.TA.CZ),
		qcx: f32of(s.TQ.CX), qcy: f32of(s.TQ.CY), qcz: f32of(s.TQ.CZ),
		wnx: f32of(s.wnNX), wny: f32of(s.wnNY), wnz: f32of(s.wnNZ),
	}
}

func (m *bornSoA32) memoryBytes() int64 {
	n := len(m.ax)*3 + len(m.qx)*3 + len(m.wx)*3 +
		len(m.acx)*3 + len(m.qcx)*3 + len(m.wnx)*3
	return int64(n) * 4
}

// epolSoA32 mirrors every array the flat energy kernels touch.
type epolSoA32 struct {
	x, y, z    []float32 // atom positions, tree order
	q, r, ir   []float32 // charges, Born radii and reciprocal radii
	cx, cy, cz []float32 // node centers
	nzQ        []float32 // compressed nonzero-bin charge sums
	binRR      []float32 // R_min²(1+ε)^s bin-pair products
}

func newEpolSoA32(s *EpolSolver) *epolSoA32 {
	return &epolSoA32{
		x: f32of(s.T.X), y: f32of(s.T.Y), z: f32of(s.T.Z),
		q: f32of(s.q), r: f32of(s.R), ir: f32of(s.invR),
		cx: f32of(s.T.CX), cy: f32of(s.T.CY), cz: f32of(s.T.CZ),
		nzQ:   f32of(s.nzQ),
		binRR: f32of(s.binRR),
	}
}

func (m *epolSoA32) memoryBytes() int64 {
	n := len(m.x)*3 + len(m.q)*3 + len(m.cx)*3 + len(m.nzQ) + len(m.binRR)
	return int64(n) * 4
}

// TierBytes returns the extra resident bytes the reduced-precision storage
// tier holds (0 on the Float64 tier) — engine.Prepared.MemoryBytes adds it
// to the serve cache's byte charge.
func (s *BornSolver) TierBytes() int64 {
	if s.f32 == nil {
		return 0
	}
	return s.f32.memoryBytes()
}

// TierBytes returns the extra resident bytes the reduced-precision storage
// tier holds (0 on the Float64 tier).
func (s *EpolSolver) TierBytes() int64 {
	if s.f32 == nil {
		return 0
	}
	return s.f32.memoryBytes()
}

// Precision returns the solver's storage tier.
func (s *BornSolver) Precision() Precision {
	if s.f32 != nil {
		return Float32
	}
	return Float64
}

// Precision returns the solver's storage tier.
func (s *EpolSolver) Precision() Precision {
	if s.f32 != nil {
		return Float32
	}
	return Float64
}
