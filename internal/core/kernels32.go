package core

import "math"

// This file holds the Float32-tier bodies of the flat evaluation kernels:
// the same run-blocked, four-row-jammed loops as lists.go, but streaming
// the float32 SoA mirrors (soa32.go) and doing the per-pair arithmetic in
// float32 — float32 subtract/multiply, SQRTSS square roots, the 32-bit
// expNeg32 polynomial — while every accumulator stays float64, so the
// tier's error is bounded by input quantization and per-term rounding,
// not by summation drift over tens of millions of terms. Which tier runs
// is decided once per solver (s.f32 != nil), never per pair.

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// evalBornNearRunF32 is evalBornNearRun on the float32 mirrors.
func (s *BornSolver) evalBornNearRunF32(entries []NodePair, q int32, sAtom []float64) {
	m := s.f32
	qlo, qhi := s.TQ.PointRange(q)
	ax, ay, az := m.ax, m.ay, m.az
	qx := m.qx[qlo:qhi]
	n := len(qx)
	qy := m.qy[qlo:qhi][:n]
	qz := m.qz[qlo:qhi][:n]
	wx := m.wx[qlo:qhi][:n]
	wy := m.wy[qlo:qhi][:n]
	wz := m.wz[qlo:qhi][:n]
	r4 := s.r4
	for _, p := range entries {
		alo, ahi := s.TA.PointRange(p.A)
		i := alo
		for ; i+4 <= ahi; i += 4 {
			px0, py0, pz0 := ax[i], ay[i], az[i]
			px1, py1, pz1 := ax[i+1], ay[i+1], az[i+1]
			px2, py2, pz2 := ax[i+2], ay[i+2], az[i+2]
			px3, py3, pz3 := ax[i+3], ay[i+3], az[i+3]
			var c0, c1, c2, c3 float64
			if r4 {
				for j := 0; j < n; j++ {
					xj, yj, zj := qx[j], qy[j], qz[j]
					wxj, wyj, wzj := wx[j], wy[j], wz[j]
					dx, dy, dz := xj-px0, yj-py0, zj-pz0
					d2 := dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c0 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2)))
					}
					dx, dy, dz = xj-px1, yj-py1, zj-pz1
					d2 = dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c1 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2)))
					}
					dx, dy, dz = xj-px2, yj-py2, zj-pz2
					d2 = dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c2 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2)))
					}
					dx, dy, dz = xj-px3, yj-py3, zj-pz3
					d2 = dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c3 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2)))
					}
				}
			} else {
				for j := 0; j < n; j++ {
					xj, yj, zj := qx[j], qy[j], qz[j]
					wxj, wyj, wzj := wx[j], wy[j], wz[j]
					dx, dy, dz := xj-px0, yj-py0, zj-pz0
					d2 := dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c0 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2 * d2)))
					}
					dx, dy, dz = xj-px1, yj-py1, zj-pz1
					d2 = dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c1 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2 * d2)))
					}
					dx, dy, dz = xj-px2, yj-py2, zj-pz2
					d2 = dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c2 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2 * d2)))
					}
					dx, dy, dz = xj-px3, yj-py3, zj-pz3
					d2 = dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						c3 += float64((wxj*dx + wyj*dy + wzj*dz) * (1 / (d2 * d2 * d2)))
					}
				}
			}
			sAtom[i] += c0
			sAtom[i+1] += c1
			sAtom[i+2] += c2
			sAtom[i+3] += c3
		}
		for ; i < ahi; i++ {
			px, py, pz := ax[i], ay[i], az[i]
			var acc float64
			if r4 {
				for j := 0; j < n; j++ {
					dx, dy, dz := qx[j]-px, qy[j]-py, qz[j]-pz
					d2 := dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						acc += float64((wx[j]*dx + wy[j]*dy + wz[j]*dz) * (1 / (d2 * d2)))
					}
				}
			} else {
				for j := 0; j < n; j++ {
					dx, dy, dz := qx[j]-px, qy[j]-py, qz[j]-pz
					d2 := dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						acc += float64((wx[j]*dx + wy[j]*dy + wz[j]*dz) * (1 / (d2 * d2 * d2)))
					}
				}
			}
			sAtom[i] += acc
		}
	}
}

// evalBornFarRangeF32 is the far-field kernel on the float32 mirrors.
func (s *BornSolver) evalBornFarRangeF32(l *InteractionList, lo, hi int, sNode []float64) {
	m := s.f32
	far := l.Far[lo:hi]
	acx, acy, acz := m.acx, m.acy, m.acz
	qcx, qcy, qcz := m.qcx, m.qcy, m.qcz
	wqx, wqy, wqz := m.wnx, m.wny, m.wnz
	lastQ := int32(-1)
	var cqx, cqy, cqz, nx, ny, nz float32
	if s.r4 {
		for _, p := range far {
			if p.B != lastQ {
				lastQ = p.B
				cqx, cqy, cqz = qcx[p.B], qcy[p.B], qcz[p.B]
				nx, ny, nz = wqx[p.B], wqy[p.B], wqz[p.B]
			}
			dx, dy, dz := cqx-acx[p.A], cqy-acy[p.A], cqz-acz[p.A]
			d2 := dx*dx + dy*dy + dz*dz
			sNode[p.A] += float64((nx*dx + ny*dy + nz*dz) * (1 / (d2 * d2)))
		}
		return
	}
	for _, p := range far {
		if p.B != lastQ {
			lastQ = p.B
			cqx, cqy, cqz = qcx[p.B], qcy[p.B], qcz[p.B]
			nx, ny, nz = wqx[p.B], wqy[p.B], wqz[p.B]
		}
		dx, dy, dz := cqx-acx[p.A], cqy-acy[p.A], cqz-acz[p.A]
		d2 := dx*dx + dy*dy + dz*dz
		sNode[p.A] += float64((nx*dx + ny*dy + nz*dz) * (1 / (d2 * d2 * d2)))
	}
}

// evalEpolNearRunF32 is evalEpolNearRun on the float32 mirrors. The GB
// pair term runs entirely in float32 (expNeg32 for the Still exponential,
// SQRTSS for the root); the self-pair conditional overwrite is the same
// trick as the float64 lanes.
func (s *EpolSolver) evalEpolNearRunF32(entries []NodePair, v int32) float64 {
	m := s.f32
	vlo, vhi := s.T.PointRange(v)
	x, y, z, qa, ra := m.x, m.y, m.z, m.q, m.r
	xv := x[vlo:vhi]
	n := len(xv)
	yv := y[vlo:vhi][:n]
	zv := z[vlo:vhi][:n]
	qv := qa[vlo:vhi][:n]
	Rv := ra[vlo:vhi][:n]
	iv := m.ir[vlo:vhi][:n]
	var sum float64
	for _, p := range entries {
		ulo, uhi := s.T.PointRange(p.A)
		i := ulo
		for ; i+2 <= uhi; i += 2 {
			px0, py0, pz0, q0, r0 := x[i], y[i], z[i], qa[i], ra[i]
			px1, py1, pz1, q1, r1 := x[i+1], y[i+1], z[i+1], qa[i+1], ra[i+1]
			g0 := -0.25 * m.ir[i]
			g1 := -0.25 * m.ir[i+1]
			d0 := int(i - vlo)
			var c0, c1 float64
			for j := 0; j < n; j++ {
				xj, yj, zj := xv[j], yv[j], zv[j]
				qj, rj, irj := qv[j], Rv[j], iv[j]
				dx, dy, dz := px0-xj, py0-yj, pz0-zj
				d2 := dx*dx + dy*dy + dz*dz
				t := q0 * qj / sqrt32(d2+r0*rj*expNeg32(d2*g0*irj))
				if j == d0 {
					t = q0 * q0 / r0
				}
				c0 += float64(t)
				dx, dy, dz = px1-xj, py1-yj, pz1-zj
				d2 = dx*dx + dy*dy + dz*dz
				t = q1 * qj / sqrt32(d2+r1*rj*expNeg32(d2*g1*irj))
				if j == d0+1 {
					t = q1 * q1 / r1
				}
				c1 += float64(t)
			}
			sum += c0 + c1
		}
		for ; i < uhi; i++ {
			px, py, pz, qi, ri := x[i], y[i], z[i], qa[i], ra[i]
			gi := -0.25 * m.ir[i]
			diag := int(i - vlo)
			var acc float64
			for j := 0; j < n; j++ {
				dx, dy, dz := px-xv[j], py-yv[j], pz-zv[j]
				d2 := dx*dx + dy*dy + dz*dz
				t := qi * qv[j] / sqrt32(d2+ri*Rv[j]*expNeg32(d2*gi*iv[j]))
				if j == diag {
					t = qi * qi / ri
				}
				acc += float64(t)
			}
			sum += acc
		}
	}
	return sum
}

// evalEpolFarPairF32 is the bin-pair far-field kernel on the float32
// mirrors.
func (s *EpolSolver) evalEpolFarPairF32(u, v int32) float64 {
	m := s.f32
	cx, cy, cz := m.cx, m.cy, m.cz
	ddx, ddy, ddz := cx[u]-cx[v], cy[u]-cy[v], cz[u]-cz[v]
	d2 := ddx*ddx + ddy*ddy + ddz*ddz
	uLo, uHi := s.nzStart[u], s.nzStart[u+1]
	vLo, vHi := s.nzStart[v], s.nzStart[v+1]
	nzBin, nzQ, binRR := s.nzBin, m.nzQ, m.binRR
	var sum float64
	for a := uLo; a < uHi; a++ {
		qi, bi := nzQ[a], nzBin[a]
		for b := vLo; b < vHi; b++ {
			rr := binRR[bi+nzBin[b]]
			sum += float64(qi * nzQ[b] / sqrt32(d2+rr*expNeg32(-d2/(4*rr))))
		}
	}
	return sum
}
