package core

import (
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// Result bundles the output of a full serial treecode run.
type Result struct {
	BornRadii []float64 // original atom order
	Epol      float64   // kcal/mol
	BornStats Stats
	EpolStats Stats
}

// ComputeSerial runs the whole pipeline — Born-radius treecode then energy
// treecode — serially on one "rank". It is the reference implementation the
// parallel engines are tested against, and the simplest entry point for
// library users who just want an energy.
func ComputeSerial(mol *molecule.Molecule, qpts []surface.QPoint, bc BornConfig, ec EpolConfig) Result {
	var res Result
	bs := NewBornSolver(mol, qpts, bc)
	sNode, sAtom := bs.NewAccumulators()
	for l := 0; l < bs.NumQLeaves(); l++ {
		res.BornStats.Add(bs.AccumulateQLeaf(l, sNode, sAtom))
	}
	rTree := make([]float64, mol.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(mol.N()), rTree)
	res.BornRadii = bs.RadiiToOriginal(rTree)

	charges := make([]float64, mol.N())
	for i := range mol.Atoms {
		charges[i] = mol.Atoms[i].Charge
	}
	es := NewEpolSolver(bs.TA, charges, res.BornRadii, ec)
	var raw float64
	for l := 0; l < es.NumLeaves(); l++ {
		e, st := es.LeafEnergy(l)
		raw += e
		res.EpolStats.Add(st)
	}
	res.Epol = raw * EnergyScale()
	return res
}

// ComputeSerialDual is ComputeSerial using the dual-tree traversals (the
// OCT_CILK algorithm of [6]).
func ComputeSerialDual(mol *molecule.Molecule, qpts []surface.QPoint, bc BornConfig, ec EpolConfig) Result {
	var res Result
	bs := NewBornSolver(mol, qpts, bc)
	sNode, sAtom := bs.NewAccumulators()
	res.BornStats = bs.AccumulateDual(sNode, sAtom)
	rTree := make([]float64, mol.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(mol.N()), rTree)
	res.BornRadii = bs.RadiiToOriginal(rTree)

	charges := make([]float64, mol.N())
	for i := range mol.Atoms {
		charges[i] = mol.Atoms[i].Charge
	}
	es := NewEpolSolver(bs.TA, charges, res.BornRadii, ec)
	raw, st := es.EnergyDual()
	res.EpolStats = st
	res.Epol = raw * EnergyScale()
	return res
}
