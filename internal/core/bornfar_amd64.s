#include "textflag.h"

// Vectorized Born far-field kernel. See bornFarArgs in bornfar_amd64.go
// for the argument block layout. Four entries per iteration: each T_A
// node center is one 32-byte load from the packed aCent array, a 4×3
// unpack/permute transpose turns them into X/Y/Z lane vectors, and the
// pair term (ñ_Q·(c_Q−c_A))/d²ᵏ is formed with FMA and a single packed
// divide. The four results scatter into sNode with scalar adds — within
// a run all A nodes are distinct, so lanes never collide.
//
// Register plan:
//   BX/R15 entry cursor/end · R14 aCent · R11 sNode · CX,SI,DI,R13 lane
//   node offsets · Y12..Y14 q-center splats · Y9..Y11 ñ_Q splats ·
//   Y0..Y8 transpose/pipeline temps

DATA bornOne<>+0(SB)/8, $0x3FF0000000000000 // 1.0
GLOBL bornOne<>(SB), RODATA, $8

// func bornFarRunAVX2(a *bornFarArgs)
TEXT ·bornFarRunAVX2(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), BX             // entries cursor
	MOVQ 8(AX), R15
	SHLQ $3, R15
	ADDQ BX, R15               // entries end
	MOVQ 16(AX), R14           // packed centers
	MOVQ 24(AX), R11           // sNode
	VBROADCASTSD 32(AX), Y12
	VBROADCASTSD 40(AX), Y13
	VBROADCASTSD 48(AX), Y14
	VBROADCASTSD 56(AX), Y9
	VBROADCASTSD 64(AX), Y10
	VBROADCASTSD 72(AX), Y11
	MOVQ 80(AX), AX            // exponent selector
	VBROADCASTSD bornOne<>+0(SB), Y15
	CMPQ AX, $0
	JNE  f4loop

	// 1/d⁶ variant.
f6loop:
	CMPQ BX, R15
	JGE  fdone
	MOVLQSX 0(BX), CX          // lane node ids → byte offsets into aCent
	MOVLQSX 8(BX), SI
	MOVLQSX 16(BX), DI
	MOVLQSX 24(BX), R13
	SHLQ $5, CX
	SHLQ $5, SI
	SHLQ $5, DI
	SHLQ $5, R13
	VMOVUPD (R14)(CX*1), Y0    // (x0 y0 z0 _)
	VMOVUPD (R14)(SI*1), Y1
	VMOVUPD (R14)(DI*1), Y2
	VMOVUPD (R14)(R13*1), Y3
	VUNPCKLPD Y1, Y0, Y4       // (x0 x1 z0 z1)
	VUNPCKHPD Y1, Y0, Y5       // (y0 y1 _ _)
	VUNPCKLPD Y3, Y2, Y6       // (x2 x3 z2 z3)
	VUNPCKHPD Y3, Y2, Y7       // (y2 y3 _ _)
	VPERM2F128 $0x20, Y6, Y4, Y0 // X lanes
	VPERM2F128 $0x31, Y6, Y4, Y2 // Z lanes
	VPERM2F128 $0x20, Y7, Y5, Y1 // Y lanes
	VSUBPD Y0, Y12, Y0         // d = c_Q − c_A
	VSUBPD Y1, Y13, Y1
	VSUBPD Y2, Y14, Y2
	// Plain mul/add in the scalar kernel's evaluation order — no FMA
	// contraction — so every lane is bitwise identical to the Go loop
	// (the far dot products cancel; reassociation would breach the
	// 1e-12 oracle pins).
	VMULPD Y0, Y0, Y4
	VMULPD Y1, Y1, Y5
	VADDPD Y5, Y4, Y4
	VMULPD Y2, Y2, Y5
	VADDPD Y5, Y4, Y4          // d²
	VMULPD Y9, Y0, Y0
	VMULPD Y10, Y1, Y1
	VADDPD Y1, Y0, Y0
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y0, Y0          // ñ_Q·d
	VMULPD Y4, Y4, Y5
	VMULPD Y4, Y5, Y5          // d⁶
	VDIVPD Y5, Y15, Y5         // 1/d⁶
	VMULPD Y5, Y0, Y0          // t
	SHRQ $2, CX                // byte offsets into sNode (node id × 8)
	SHRQ $2, SI
	SHRQ $2, DI
	SHRQ $2, R13
	VEXTRACTF128 $1, Y0, X1
	VADDSD (R11)(CX*1), X0, X2
	VMOVSD X2, (R11)(CX*1)
	VSHUFPD $1, X0, X0, X3
	VADDSD (R11)(SI*1), X3, X2
	VMOVSD X2, (R11)(SI*1)
	VADDSD (R11)(DI*1), X1, X2
	VMOVSD X2, (R11)(DI*1)
	VSHUFPD $1, X1, X1, X3
	VADDSD (R11)(R13*1), X3, X2
	VMOVSD X2, (R11)(R13*1)
	ADDQ $32, BX
	JMP  f6loop

	// 1/d⁴ (Coulomb-field) variant.
f4loop:
	CMPQ BX, R15
	JGE  fdone
	MOVLQSX 0(BX), CX
	MOVLQSX 8(BX), SI
	MOVLQSX 16(BX), DI
	MOVLQSX 24(BX), R13
	SHLQ $5, CX
	SHLQ $5, SI
	SHLQ $5, DI
	SHLQ $5, R13
	VMOVUPD (R14)(CX*1), Y0
	VMOVUPD (R14)(SI*1), Y1
	VMOVUPD (R14)(DI*1), Y2
	VMOVUPD (R14)(R13*1), Y3
	VUNPCKLPD Y1, Y0, Y4
	VUNPCKHPD Y1, Y0, Y5
	VUNPCKLPD Y3, Y2, Y6
	VUNPCKHPD Y3, Y2, Y7
	VPERM2F128 $0x20, Y6, Y4, Y0
	VPERM2F128 $0x31, Y6, Y4, Y2
	VPERM2F128 $0x20, Y7, Y5, Y1
	VSUBPD Y0, Y12, Y0
	VSUBPD Y1, Y13, Y1
	VSUBPD Y2, Y14, Y2
	VMULPD Y0, Y0, Y4
	VMULPD Y1, Y1, Y5
	VADDPD Y5, Y4, Y4
	VMULPD Y2, Y2, Y5
	VADDPD Y5, Y4, Y4
	VMULPD Y9, Y0, Y0
	VMULPD Y10, Y1, Y1
	VADDPD Y1, Y0, Y0
	VMULPD Y11, Y2, Y2
	VADDPD Y2, Y0, Y0
	VMULPD Y4, Y4, Y5          // d⁴
	VDIVPD Y5, Y15, Y5         // 1/d⁴
	VMULPD Y5, Y0, Y0
	SHRQ $2, CX
	SHRQ $2, SI
	SHRQ $2, DI
	SHRQ $2, R13
	VEXTRACTF128 $1, Y0, X1
	VADDSD (R11)(CX*1), X0, X2
	VMOVSD X2, (R11)(CX*1)
	VSHUFPD $1, X0, X0, X3
	VADDSD (R11)(SI*1), X3, X2
	VMOVSD X2, (R11)(SI*1)
	VADDSD (R11)(DI*1), X1, X2
	VMOVSD X2, (R11)(DI*1)
	VSHUFPD $1, X1, X1, X3
	VADDSD (R11)(R13*1), X3, X2
	VMOVSD X2, (R11)(R13*1)
	ADDQ $32, BX
	JMP  f4loop

fdone:
	VZEROUPPER
	RET
