package core

import (
	"math"

	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/octree"
)

// EpolConfig controls the APPROX-EPOL treecode.
type EpolConfig struct {
	// Eps is the energy approximation parameter ε (>0); paper uses 0.9.
	// It controls both the well-separatedness test
	// r_UV > (r_U + r_V)(1 + 2/ε) and the Born-radius bin width (bins are
	// geometric with ratio 1+ε).
	Eps float64
	// Math selects exact or approximate sqrt/exp.
	Math gb.MathMode
	// LeafSize is the octree leaf capacity (≤0 → default). Ignored when
	// the solver is built from an existing tree.
	LeafSize int
	// Precision selects the flat-kernel storage tier (soa32.go). Float64
	// (zero value) is exact; Float32 stores positions, charges and Born
	// radii in float32 with float64 accumulation. Math is ignored by the
	// Float32 kernels, which carry their own fast float32 exp/sqrt.
	Precision Precision
}

func (c EpolConfig) withDefaults() EpolConfig {
	if c.Eps <= 0 {
		c.Eps = 0.9
	}
	return c
}

// EpolSolver holds the immutable state of the energy treecode: the atoms
// octree with charges and Born radii in tree order, and the per-node
// charge-by-Born-radius-bin aggregates q_U[k] of Fig. 3.
type EpolSolver struct {
	T   *octree.Tree
	cfg EpolConfig

	q    []float64 // charges, tree order
	R    []float64 // Born radii, tree order
	invR []float64 // 1/R, tree order — lets the flat kernels form the
	// exp argument −d²/(4RᵢRⱼ) as (−d²·0.25·invRᵢ)·invRⱼ with two
	// multiplies instead of a divide (the divider unit is the near-field
	// kernel's scarcest resource; see DESIGN.md §11)
	Rmin  float64
	M     int       // number of Born-radius bins (the paper's M_ε)
	bins  []float64 // node-major [node*M + k] charge sums
	binOf []int32   // per-atom bin index, tree order
	binRR []float64 // R_min²·(1+ε)^s for s = i+j, len 2M-1 (precomputed)
	sep   float64   // separation factor 1 + 2/ε
	sep2  float64   // sep², for the squared-distance acceptance test

	// Compressed nonzero-bin layout for the flat far-field kernel
	// (lists.go): per node, only the occupied bins. nzStart[n]..nzStart[n+1]
	// index into nzBin (bin index, ascending) and nzQ (charge sum). Most of
	// a node's M_ε bins are empty — this is the charge layout the flat
	// kernels iterate so the inner loops carry no zero-skip branches.
	nzStart []int32
	nzBin   []int32
	nzQ     []float64

	// f32 holds the reduced-precision storage tier (nil unless the config
	// selects Float32); kernels32.go dispatches on it.
	f32 *epolSoA32

	// AoS row tables for the amd64 near-field vector kernel
	// (epolnear_amd64.go). uRange packs each node's [start, end) atom
	// range into one int64 so the assembly loads a row's bounds with a
	// single instruction; uPos holds (x, y, z, pad) and uQRG
	// (q, R, −0.25/R, pad) per atom at a 32-byte stride so one cursor
	// register addresses all six per-row broadcast invariants.
	uRange []int64
	uPos   []float64
	uQRG   []float64
}

// buildVecTables (re)packs the broadcast row tables from the solver's
// current q/R/invR and tree SoA mirrors. Called at construction, and again
// by Restrict so the NaN poison propagates into the vector path; SetResident
// patches the tables in place instead.
func (s *EpolSolver) buildVecTables() {
	s.uRange = make([]int64, len(s.T.Nodes))
	for n := range s.T.Nodes {
		lo, hi := s.T.PointRange(int32(n))
		s.uRange[n] = int64(lo) | int64(hi)<<32
	}
	s.uPos = make([]float64, 4*len(s.q))
	s.uQRG = make([]float64, 4*len(s.q))
	for i := range s.q {
		s.uPos[4*i], s.uPos[4*i+1], s.uPos[4*i+2] = s.T.X[i], s.T.Y[i], s.T.Z[i]
		s.uQRG[4*i], s.uQRG[4*i+1], s.uQRG[4*i+2] = s.q[i], s.R[i], -0.25*s.invR[i]
	}
}

// epolFar2 is the squared form of the paper's well-separatedness test
// r_UV > (r_U + r_V)·(1 + 2/ε): d2 > (ru+rv)²·sep². Both sides are
// non-negative, so the strict inequality carries over exactly; no square
// root is taken per visited node pair.
func epolFar2(d2, ru, rv, sep2 float64) bool {
	r := ru + rv
	return d2 > r*r*sep2
}

// NewEpolSolver builds the energy treecode state over an existing atoms
// octree. charges and bornR are in ORIGINAL atom order; tree.Perm maps them.
func NewEpolSolver(tree *octree.Tree, charges, bornR []float64, cfg EpolConfig) *EpolSolver {
	cfg = cfg.withDefaults()
	n := len(tree.Points)
	s := &EpolSolver{
		T:   tree,
		cfg: cfg,
		q:   make([]float64, n),
		R:   make([]float64, n),
		sep: 1 + 2/cfg.Eps,
	}
	s.sep2 = s.sep * s.sep
	for i, orig := range tree.Perm {
		s.q[i] = charges[orig]
		s.R[i] = bornR[orig]
	}
	s.invR = recipOf(s.R)

	// Born-radius bins: geometric with ratio (1+ε) from R_min.
	s.Rmin = math.Inf(1)
	rmax := 0.0
	for _, r := range s.R {
		if r < s.Rmin {
			s.Rmin = r
		}
		if r > rmax {
			rmax = r
		}
	}
	if n == 0 {
		s.Rmin, rmax = 1, 1
	}
	logRatio := math.Log(1 + cfg.Eps)
	s.M = 1
	if rmax > s.Rmin {
		s.M = int(math.Floor(math.Log(rmax/s.Rmin)/logRatio)) + 1
	}

	// Per-atom bin index.
	s.binOf = make([]int32, n)
	for i, r := range s.R {
		k := 0
		if r > s.Rmin {
			k = int(math.Floor(math.Log(r/s.Rmin) / logRatio))
		}
		if k >= s.M {
			k = s.M - 1
		}
		s.binOf[i] = int32(k)
	}
	binOf := s.binOf

	// Per-node aggregates q_U[k]. Leaves fill from their atom ranges;
	// internal nodes sum their children (bottom-up by reverse index: in
	// this layout children always have larger indices than parents).
	s.bins = make([]float64, len(tree.Nodes)*s.M)
	for ni := len(tree.Nodes) - 1; ni >= 0; ni-- {
		nd := &tree.Nodes[ni]
		row := s.bins[ni*s.M : (ni+1)*s.M]
		if nd.Leaf {
			for i := nd.Start; i < nd.Start+nd.Count; i++ {
				row[binOf[i]] += s.q[i]
			}
			continue
		}
		for _, ch := range nd.Children {
			if ch == octree.NoChild {
				continue
			}
			crow := s.bins[int(ch)*s.M : (int(ch)+1)*s.M]
			for k := 0; k < s.M; k++ {
				row[k] += crow[k]
			}
		}
	}

	// Precompute R_min²(1+ε)^(i+j) for all bin-pair sums.
	s.binRR = make([]float64, 2*s.M-1)
	for t := range s.binRR {
		s.binRR[t] = s.Rmin * s.Rmin * math.Pow(1+cfg.Eps, float64(t))
	}

	// Compress the node-major bins into the nonzero-only layout.
	s.nzStart = make([]int32, len(tree.Nodes)+1)
	for ni := 0; ni < len(tree.Nodes); ni++ {
		s.nzStart[ni] = int32(len(s.nzBin))
		row := s.bins[ni*s.M : (ni+1)*s.M]
		for k, qk := range row {
			if qk != 0 {
				s.nzBin = append(s.nzBin, int32(k))
				s.nzQ = append(s.nzQ, qk)
			}
		}
	}
	s.nzStart[len(tree.Nodes)] = int32(len(s.nzBin))
	s.buildVecTables()
	if cfg.Precision == Float32 {
		s.f32 = newEpolSoA32(s)
	}
	return s
}

// NewEpolSolverFromMolecule builds the octree internally from the molecule
// (charges from the atoms, Born radii supplied in original order).
func NewEpolSolverFromMolecule(mol *molecule.Molecule, bornR []float64, cfg EpolConfig) *EpolSolver {
	cfg = cfg.withDefaults()
	positions := make([]geom.Vec3, mol.N())
	charges := make([]float64, mol.N())
	for i := range mol.Atoms {
		positions[i] = mol.Atoms[i].Pos
		charges[i] = mol.Atoms[i].Charge
	}
	tree := octree.Build(positions, cfg.LeafSize)
	return NewEpolSolver(tree, charges, bornR, cfg)
}

// NumLeaves returns the number of leaves of the atoms octree — the unit of
// node-based work division for the energy phase (Fig. 4 step 6).
func (s *EpolSolver) NumLeaves() int { return s.T.NumLeaves() }

// LeafEnergy runs APPROX-EPOL(root, V) for the atoms-octree leaf with index
// vLeaf: the raw sum Σ q_u·q_v/f_GB over all ordered pairs (u ∈ tree,
// v ∈ V). Multiply the total over all leaves by EnergyScale to obtain
// E_pol. Stats report the work performed.
func (s *EpolSolver) LeafEnergy(vLeaf int) (float64, Stats) {
	var st Stats
	v := s.T.LeafIdx[vLeaf]
	e := s.epolVisit(0, v, &st)
	return e, st
}

// EnergyScale is the constant −τ·k_e/2 that converts the raw ordered-pair
// sum into kcal/mol.
func EnergyScale() float64 {
	return -0.5 * gb.Tau(gb.SolventDielectric) * gb.CoulombConstant
}

// epolVisit is the recursion of Fig. 3; v is always a leaf.
func (s *EpolSolver) epolVisit(u, v int32, st *Stats) float64 {
	st.NodesVisited++
	un := &s.T.Nodes[u]
	vn := &s.T.Nodes[v]
	if un.Leaf {
		// Exact ordered pairs between atoms under u and v (including the
		// self pairs when u == v: f_GB(i,i) = R_i).
		ulo, uhi := s.T.PointRange(u)
		vlo, vhi := s.T.PointRange(v)
		var sum float64
		for i := ulo; i < uhi; i++ {
			pi, qi, ri := s.T.Points[i], s.q[i], s.R[i]
			for j := vlo; j < vhi; j++ {
				if i == j {
					sum += qi * qi / ri
					continue
				}
				sum += gb.PairTerm(qi, s.q[j], pi.Dist2(s.T.Points[j]), ri, s.R[j], s.cfg.Math)
			}
		}
		st.NearPairs += int64(uhi-ulo) * int64(vhi-vlo)
		return sum
	}
	d2 := un.Center.Dist2(vn.Center)
	if epolFar2(d2, un.Radius, vn.Radius, s.sep2) {
		return s.binApprox(u, v, d2, st)
	}
	var sum float64
	for _, ch := range un.Children {
		if ch != octree.NoChild {
			sum += s.epolVisit(ch, v, st)
		}
	}
	return sum
}

// binApprox evaluates the far-field bin-pair approximation of Fig. 3 step 2
// for nodes u, v at squared center distance d2.
func (s *EpolSolver) binApprox(u, v int32, d2 float64, st *Stats) float64 {
	ub := s.bins[int(u)*s.M : (int(u)+1)*s.M]
	vb := s.bins[int(v)*s.M : (int(v)+1)*s.M]
	var sum float64
	for i := 0; i < s.M; i++ {
		qi := ub[i]
		if qi == 0 {
			continue
		}
		for j := 0; j < s.M; j++ {
			qj := vb[j]
			if qj == 0 {
				continue
			}
			sum += s.binPairTerm(d2, i+j, qi, qj)
			st.FarEval++
		}
	}
	return sum
}

// binPairTerm evaluates one bin-pair far-field term:
// q_U[i]·q_V[j] / f_GB with R_u·R_v ≈ R_min²(1+ε)^(i+j).
func (s *EpolSolver) binPairTerm(d2 float64, binSum int, qi, qj float64) float64 {
	rr := s.binRR[binSum]
	if s.cfg.Math == gb.Approximate {
		return qi * qj * gb.FastInvSqrt(d2+rr*gb.FastExp(-d2/(4*rr)))
	}
	return qi * qj / math.Sqrt(d2+rr*math.Exp(-d2/(4*rr)))
}

// binIndex returns the Born-radius bin of atom i (tree order).
func (s *EpolSolver) binIndex(i int32) int { return int(s.binOf[i]) }

// EnergyDual runs the dual-tree variant over ordered node pairs starting at
// (root, root) — the OCT_CILK algorithm. It returns the raw ordered-pair
// sum (scale by EnergyScale) and the work counters.
func (s *EpolSolver) EnergyDual() (float64, Stats) {
	var st Stats
	if len(s.T.Nodes) == 0 {
		return 0, st
	}
	e := s.epolDual(0, 0, &st)
	return e, st
}

func (s *EpolSolver) epolDual(u, v int32, st *Stats) float64 {
	st.NodesVisited++
	un := &s.T.Nodes[u]
	vn := &s.T.Nodes[v]
	d2 := un.Center.Dist2(vn.Center)
	if u != v && epolFar2(d2, un.Radius, vn.Radius, s.sep2) {
		return s.binApprox(u, v, d2, st)
	}
	if un.Leaf && vn.Leaf {
		ulo, uhi := s.T.PointRange(u)
		vlo, vhi := s.T.PointRange(v)
		var sum float64
		for i := ulo; i < uhi; i++ {
			pi, qi, ri := s.T.Points[i], s.q[i], s.R[i]
			for j := vlo; j < vhi; j++ {
				if i == j {
					sum += qi * qi / ri
					continue
				}
				sum += gb.PairTerm(qi, s.q[j], pi.Dist2(s.T.Points[j]), ri, s.R[j], s.cfg.Math)
			}
		}
		st.NearPairs += int64(uhi-ulo) * int64(vhi-vlo)
		return sum
	}
	var sum float64
	if vn.Leaf || (!un.Leaf && un.Radius >= vn.Radius) {
		for _, ch := range un.Children {
			if ch != octree.NoChild {
				sum += s.epolDual(ch, v, st)
			}
		}
	} else {
		for _, ch := range vn.Children {
			if ch != octree.NoChild {
				sum += s.epolDual(u, ch, st)
			}
		}
	}
	return sum
}

// Restrict returns a copy of the solver in which every atom NOT under one
// of the resident leaf nodes has its charge, Born radius and position
// poisoned with NaN. The tree skeleton (node geometry and charge bins) is
// retained — it is the part a distributed-data rank replicates. Any
// traversal that touches a non-resident atom's data then yields NaN, so a
// finite result PROVES the resident set (owned + ghosts from NeededLeaves)
// was sufficient. This is the verification device behind the
// distributed-data engine (paper §VI future work).
func (s *EpolSolver) Restrict(residentLeaves []int32) *EpolSolver {
	out := *s
	nan := math.NaN()
	out.q = make([]float64, len(s.q))
	out.R = make([]float64, len(s.R))
	out.invR = make([]float64, len(s.R))
	ptsCopy := make([]geom.Vec3, len(s.T.Points))
	for i := range out.q {
		out.q[i], out.R[i], out.invR[i] = nan, nan, nan
		ptsCopy[i] = geom.V(nan, nan, nan)
	}
	for _, node := range residentLeaves {
		nd := &s.T.Nodes[node]
		for i := nd.Start; i < nd.Start+nd.Count; i++ {
			out.q[i], out.R[i], out.invR[i] = s.q[i], s.R[i], s.invR[i]
			ptsCopy[i] = s.T.Points[i]
		}
	}
	// Shallow-copy the tree with the poisoned point payload; node geometry
	// (centers/radii) is skeleton data and stays. The charge bins (and
	// their compressed form) are skeleton data too and remain shared. The
	// SoA mirrors must be refilled so the flat kernels see the poison.
	tree := *s.T
	tree.Points = ptsCopy
	tree.FillSoA()
	out.T = &tree
	// Repack the vector-kernel row tables from the poisoned data — sharing
	// them would let the amd64 near kernel read real values past the poison.
	out.buildVecTables()
	if s.f32 != nil {
		// Rebuild the float32 mirrors from the poisoned data — a shared
		// mirror would let the flat kernels read real coordinates and
		// defeat the NaN-poison proof.
		out.f32 = newEpolSoA32(&out)
	}
	return &out
}

// SetResident re-installs real data for the atoms under the given leaf
// into a Restricted solver (used when ghost data arrives from its owner).
func (s *EpolSolver) SetResident(leaf int32, q, R []float64, pts []geom.Vec3) {
	nd := &s.T.Nodes[leaf]
	for k := int32(0); k < nd.Count; k++ {
		i := nd.Start + k
		s.q[i], s.R[i], s.invR[i] = q[k], R[k], 1/R[k]
		s.T.Points[i] = pts[k]
		s.T.X[i], s.T.Y[i], s.T.Z[i] = pts[k].X, pts[k].Y, pts[k].Z
		s.uPos[4*i], s.uPos[4*i+1], s.uPos[4*i+2] = pts[k].X, pts[k].Y, pts[k].Z
		s.uQRG[4*i], s.uQRG[4*i+1], s.uQRG[4*i+2] = q[k], R[k], -0.25*s.invR[i]
		if s.f32 != nil {
			s.f32.q[i], s.f32.r[i] = float32(q[k]), float32(R[k])
			s.f32.ir[i] = float32(1 / R[k])
			s.f32.x[i], s.f32.y[i], s.f32.z[i] = float32(pts[k].X), float32(pts[k].Y), float32(pts[k].Z)
		}
	}
}

// ResidentData extracts the atom payload under a leaf (for ghost sends).
func (s *EpolSolver) ResidentData(leaf int32) (q, R []float64, pts []geom.Vec3) {
	nd := &s.T.Nodes[leaf]
	q = append(q, s.q[nd.Start:nd.Start+nd.Count]...)
	R = append(R, s.R[nd.Start:nd.Start+nd.Count]...)
	pts = append(pts, s.T.Points[nd.Start:nd.Start+nd.Count]...)
	return q, R, pts
}

// NeededLeaves runs a skeleton-only mirror of the APPROX-EPOL(root, V)
// traversal for the given leaf and returns the node indices of every leaf
// whose ATOM DATA the exact near-field part would touch (V's own leaf
// included). Far-field cells need only the per-node charge bins, which are
// part of the small tree skeleton. This is the analysis primitive behind
// the data-distribution variant of the paper's §VI future work: a rank
// owning a set of leaves needs only those leaves' atoms, the skeleton, and
// the "ghost" leaves returned here.
func (s *EpolSolver) NeededLeaves(vLeaf int) []int32 {
	var out []int32
	v := s.T.LeafIdx[vLeaf]
	s.neededVisit(0, v, &out)
	return out
}

func (s *EpolSolver) neededVisit(u, v int32, out *[]int32) {
	un := &s.T.Nodes[u]
	vn := &s.T.Nodes[v]
	if un.Leaf {
		*out = append(*out, u)
		return
	}
	if epolFar2(un.Center.Dist2(vn.Center), un.Radius, vn.Radius, s.sep2) {
		return // far field: bins only, no atom data needed
	}
	for _, ch := range un.Children {
		if ch != octree.NoChild {
			s.neededVisit(ch, v, out)
		}
	}
}

// BinChargeSum returns Σ_k q_U[k] for a node — used by invariant tests
// (must equal the total charge under the node).
func (s *EpolSolver) BinChargeSum(node int32) float64 {
	var sum float64
	for _, q := range s.bins[int(node)*s.M : (int(node)+1)*s.M] {
		sum += q
	}
	return sum
}

// NumBins returns M_ε.
func (s *EpolSolver) NumBins() int { return s.M }
