package core

import (
	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/octree"
)

// This file holds the solver-side primitives of incremental (streaming)
// evaluation — engine.Session drives them. A session freezes the octree
// TOPOLOGY and, between structural refreshes, the node GEOMETRY (centers,
// radii, far-field aggregates) of both trees, then lets point positions
// drift under per-leaf slack margins. The primitives fall into three
// groups:
//
//   - in-place mutators that keep every storage mirror (SoA, vector row
//     tables, float32 tier) coherent with a moved point or a changed Born
//     radius: SetAtomPoint, SetQPoint, SetPointMirrors, SetRadius,
//     RefreshGeometry;
//   - per-entry scalar evaluators with the exact arithmetic of the flat
//     Range kernels, so a value recomputed alone is bitwise the value a
//     full sweep produces: BornFarTerm, EpolFarTerm, BornRadiusFromSums
//     (EvalBornNearPair / EvalEpolNearPair in lists.go already qualify —
//     they always take the scalar run path, never the vectorized one);
//   - slack-aware single-driver list builders that classify against a
//     caller-supplied driver ball with BOTH sides' radii inflated by the
//     slack margin, so every far decision stays valid while geometry
//     drifts within slack: BuildBornDriverSlack, BuildEpolDriverSlack.

// SlackMargin is the drift budget granted to an enclosing ball of radius r:
// slackFactor·r + minSlack. Both the session's re-derivation triggers and
// the inflated classification radii of the driver builders use it, which
// is what makes "points moved less than the margin" imply "every recorded
// far decision still satisfies the plain separation criterion".
func SlackMargin(r, slackFactor, minSlack float64) float64 {
	return slackFactor*r + minSlack
}

// SetAtomPoint overwrites atom i's position (T_A tree order) in place,
// updating the octree point storage, its SoA mirrors, and the float32 tier.
// Node geometry is intentionally NOT touched — it stays frozen until
// RefreshGeometry — so far-field classifications and cached far values
// remain exactly reproducible between refreshes.
func (s *BornSolver) SetAtomPoint(i int32, p geom.Vec3) {
	s.TA.SetPoint(i, p)
	if s.f32 != nil {
		s.f32.ax[i], s.f32.ay[i], s.f32.az[i] = float32(p.X), float32(p.Y), float32(p.Z)
	}
}

// SetQPoint overwrites q-point i's position (T_Q tree order) in place,
// mirrors included. The point's quadrature weight and normal (wn) are
// translation invariant and untouched — the session only transports
// q-points rigidly with their owning atom.
func (s *BornSolver) SetQPoint(i int32, p geom.Vec3) {
	s.TQ.SetPoint(i, p)
	if s.f32 != nil {
		s.f32.qx[i], s.f32.qy[i], s.f32.qz[i] = float32(p.X), float32(p.Y), float32(p.Z)
	}
}

// RefreshGeometry refits both octrees' node bounds to the current point
// positions and repacks every mirror derived from node geometry (the
// far-kernel center table and the float32 tier). Per-node ñ_Q aggregates
// are position independent and stay. This is the structural-refresh step of
// a session epoch: after it, far-field classifications and cached far
// values must be rebuilt by the caller.
func (s *BornSolver) RefreshGeometry() {
	s.TA.RefitAll()
	s.TQ.RefitAll()
	for n := range s.TA.Nodes {
		c := s.TA.Nodes[n].Center
		s.aCent[4*n], s.aCent[4*n+1], s.aCent[4*n+2] = c.X, c.Y, c.Z
	}
	if s.f32 != nil {
		s.f32 = newBornSoA32(s)
	}
}

// BornFarTerm evaluates one far-field list entry — the pseudo q-point ñ_Q
// at Q's frozen center against the pseudo atom at A's frozen center — with
// exactly the arithmetic of EvalBornFarRange (including the float32 tier's
// mirror arithmetic), so a term recomputed in isolation is bitwise the term
// a full far sweep contributes.
func (s *BornSolver) BornFarTerm(a, q int32) float64 {
	if s.f32 != nil {
		m := s.f32
		dx, dy, dz := m.qcx[q]-m.acx[a], m.qcy[q]-m.acy[a], m.qcz[q]-m.acz[a]
		d2 := dx*dx + dy*dy + dz*dz
		if s.r4 {
			return float64((m.wnx[q]*dx + m.wny[q]*dy + m.wnz[q]*dz) * (1 / (d2 * d2)))
		}
		return float64((m.wnx[q]*dx + m.wny[q]*dy + m.wnz[q]*dz) * (1 / (d2 * d2 * d2)))
	}
	dx := s.TQ.CX[q] - s.TA.CX[a]
	dy := s.TQ.CY[q] - s.TA.CY[a]
	dz := s.TQ.CZ[q] - s.TA.CZ[a]
	d2 := dx*dx + dy*dy + dz*dz
	if s.r4 {
		return (s.wnNX[q]*dx + s.wnNY[q]*dy + s.wnNZ[q]*dz) * (1 / (d2 * d2))
	}
	return (s.wnNX[q]*dx + s.wnNY[q]*dy + s.wnNZ[q]*dz) * (1 / (d2 * d2 * d2))
}

// BornRadiusFromSums converts atom i's accumulated integral (near row +
// pushed-down far total) into its Born radius — the per-atom arithmetic of
// PushIntegrals, exposed so the session can recompute radii from cached
// partial sums.
func (s *BornSolver) BornRadiusFromSums(i int32, sum float64) float64 {
	if s.r4 {
		return gb.BornFromIntegralR4(sum, s.atomR[i], s.rcap)
	}
	return gb.BornFromIntegral(sum, s.atomR[i], s.rcap)
}

// FarTotals pushes per-node far sums down T_A: out[n] = out[parent] +
// sNode[n], the cumulative ancestor total pushDown carries, computed for
// every node in one forward sweep (parents precede children in the
// linearized layout). Atom i's Born integral is then sAtom[i] +
// out[leaf(i)], exactly as PushIntegrals forms it.
func (s *BornSolver) FarTotals(sNode, out []float64) {
	for n := range s.TA.Nodes {
		t := sNode[n]
		if p := s.TA.Nodes[n].Parent; p != octree.NoChild {
			t += out[p]
		}
		out[n] = t
	}
}

// BuildBornDriverSlack runs the single-driver APPROX-INTEGRALS traversal
// for the q-leaf node qLeaf, classifying against the caller's driver ball
// (ballC, ballR) — typically the refit ball of the leaf's CURRENT points —
// with both sides' radii inflated by SlackMargin. Inflation only moves
// pairs from far to near (near is exact), so accuracy is never worse than
// the plain criterion's, and any drift within the margins keeps every far
// decision valid. Visit order matches BuildBornListInto, so near entries
// come out in the canonical (ascending) order the session's row resums
// rely on.
func (s *BornSolver) BuildBornDriverSlack(l *InteractionList, qLeaf int32, ballC geom.Vec3, ballR, slackFactor, minSlack float64) *InteractionList {
	l.reset()
	if len(s.TA.Nodes) == 0 {
		return l
	}
	qlo, qhi := s.TQ.PointRange(qLeaf)
	qCount := int64(qhi - qlo)
	rq := ballR + SlackMargin(ballR, slackFactor, minSlack)
	var stack pairStack
	stack.push(0, qLeaf)
	for len(stack) > 0 {
		p := stack.pop()
		a := p.A
		l.stats.NodesVisited++
		an := &s.TA.Nodes[a]
		d2 := an.Center.Dist2(ballC)
		ra := an.Radius + SlackMargin(an.Radius, slackFactor, minSlack)
		if wellSeparated2(d2, ra, rq, s.sepK2) {
			l.Far = append(l.Far, NodePair{a, qLeaf})
			l.stats.FarEval++
			continue
		}
		if an.Leaf {
			l.Near = append(l.Near, NodePair{a, qLeaf})
			l.stats.NearPairs += int64(an.Count) * qCount
			continue
		}
		for c := 7; c >= 0; c-- {
			if ch := an.Children[c]; ch != octree.NoChild {
				stack.push(ch, qLeaf)
			}
		}
	}
	return l
}

// SetPointMirrors overwrites atom i's position in the energy solver's OWN
// storage mirrors (the vector row table and the float32 tier). The shared
// octree itself is patched once via BornSolver.SetAtomPoint — the two
// solvers share the atoms tree — so this covers exactly the mirrors that
// tree patch cannot reach.
func (s *EpolSolver) SetPointMirrors(i int32, p geom.Vec3) {
	s.uPos[4*i], s.uPos[4*i+1], s.uPos[4*i+2] = p.X, p.Y, p.Z
	if s.f32 != nil {
		s.f32.x[i], s.f32.y[i], s.f32.z[i] = float32(p.X), float32(p.Y), float32(p.Z)
	}
}

// SetRadius overwrites atom i's Born radius (tree order), keeping invR, the
// vector row table and the float32 tier coherent. The charge-by-radius
// BINS are deliberately left at their epoch values: bins are a coarse
// geometric aggregation (ratio 1+ε) and rebinning mid-epoch would make
// far-field values depend on update history; the session rebuilds the
// solver — fresh binning included — at every structural refresh instead.
func (s *EpolSolver) SetRadius(i int32, r float64) {
	s.R[i] = r
	s.invR[i] = 1 / r
	s.uQRG[4*i+1], s.uQRG[4*i+2] = r, -0.25*s.invR[i]
	if s.f32 != nil {
		s.f32.r[i], s.f32.ir[i] = float32(r), float32(1/r)
	}
}

// EpolFarTerm evaluates one far-field bin-pair entry with the same
// dispatch the range evaluator uses (float32 mirrors on the reduced tier,
// Approximate or Exact math otherwise), so a cached far value equals what
// a full far sweep would contribute, bit for bit.
func (s *EpolSolver) EpolFarTerm(u, v int32) float64 {
	if s.f32 != nil {
		return s.evalEpolFarPairF32(u, v)
	}
	return s.EvalEpolFarPair(u, v)
}

// BuildEpolDriverSlack runs the single-driver APPROX-EPOL traversal for
// the atoms-octree leaf node vLeaf against the caller's driver ball, with
// slack-inflated radii on both sides — the energy-phase counterpart of
// BuildBornDriverSlack. Leaf u-nodes go to the near list unconditionally
// (matching buildEpolLeafList), so inflation again only trades far entries
// for exact near ones.
func (s *EpolSolver) BuildEpolDriverSlack(l *InteractionList, vLeaf int32, ballC geom.Vec3, ballR, slackFactor, minSlack float64) *InteractionList {
	l.reset()
	if len(s.T.Nodes) == 0 {
		return l
	}
	vCount := int64(s.T.Nodes[vLeaf].Count)
	rv := ballR + SlackMargin(ballR, slackFactor, minSlack)
	var stack pairStack
	stack.push(0, vLeaf)
	for len(stack) > 0 {
		p := stack.pop()
		u := p.A
		l.stats.NodesVisited++
		un := &s.T.Nodes[u]
		if un.Leaf {
			l.Near = append(l.Near, NodePair{u, vLeaf})
			l.stats.NearPairs += int64(un.Count) * vCount
			continue
		}
		d2 := un.Center.Dist2(ballC)
		ru := un.Radius + SlackMargin(un.Radius, slackFactor, minSlack)
		if epolFar2(d2, ru, rv, s.sep2) {
			l.Far = append(l.Far, NodePair{u, vLeaf})
			l.stats.FarEval += s.nnz(u) * s.nnz(vLeaf)
			continue
		}
		for c := 7; c >= 0; c-- {
			if ch := un.Children[c]; ch != octree.NoChild {
				stack.push(ch, vLeaf)
			}
		}
	}
	return l
}
