//go:build !amd64

package core

// Stub for the amd64-only vector path; unreachable because hasAVX2FMA is
// constant false on other architectures (the compiler drops the branch).
func (s *BornSolver) evalBornNearRangeVec(near []NodePair, sAtom []float64) {
	panic("core: vector kernel dispatched without AVX2 support")
}

// Stub for the amd64-only far-field vector path; likewise unreachable.
func (s *BornSolver) evalBornFarRangeVec(far []NodePair, sNode []float64) {
	panic("core: vector kernel dispatched without AVX2 support")
}

// Stub for the amd64-only energy near-field vector path; likewise
// unreachable.
func (s *EpolSolver) evalEpolNearRangeVec(near []NodePair) float64 {
	panic("core: vector kernel dispatched without AVX2 support")
}

// Stub for the amd64-only batched entry-value vector path; likewise
// unreachable.
func (s *EpolSolver) evalEpolNearEntryValuesVec(near []NodePair, idxs []int32, out []float64) {
	panic("core: vector kernel dispatched without AVX2 support")
}
