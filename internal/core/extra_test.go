package core

import (
	"math"
	"testing"

	"octgb/internal/gb"
)

func TestPrintedCriterionDegeneratesToNaive(t *testing.T) {
	// DESIGN.md's criterion note: with the poster-printed (1+ε)^{1/6}
	// acceptance test, protein-scale Born computations accept no cell
	// pair — the treecode performs the naive N·m work.
	m, q := testMol(500, 91)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9, CriterionPower: 6})
	sNode, sAtom := bs.NewAccumulators()
	var st Stats
	for l := 0; l < bs.NumQLeaves(); l++ {
		st.Add(bs.AccumulateQLeaf(l, sNode, sAtom))
	}
	nm := int64(m.N()) * int64(len(q))
	if st.NearPairs < nm*98/100 {
		t.Errorf("near pairs %d below 98%% of N·m %d — criterion accepted too much", st.NearPairs, nm)
	}
	// Compare with the default criterion, which accepts orders of
	// magnitude more cell pairs.
	bs1 := NewBornSolver(m, q, BornConfig{Eps: 0.9, CriterionPower: 1})
	s1n, s1a := bs1.NewAccumulators()
	var st1 Stats
	for l := 0; l < bs1.NumQLeaves(); l++ {
		st1.Add(bs1.AccumulateQLeaf(l, s1n, s1a))
	}
	if st1.NearPairs >= st.NearPairs {
		t.Errorf("default criterion near pairs %d not below printed criterion's %d",
			st1.NearPairs, st.NearPairs)
	}
	// And the power-6 result is essentially the naive reference.
	rTree := make([]float64, m.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(m.N()), rTree)
	R := bs.RadiiToOriginal(rTree)
	exact := gb.BornRadiiR6(m, q)
	for i := range R {
		if e := relErr(R[i], exact[i]); e > 1e-3 {
			t.Fatalf("atom %d: power-6 radius %v vs naive %v", i, R[i], exact[i])
		}
	}
}

func TestEnergyScaleValue(t *testing.T) {
	want := -0.5 * (1 - 1/80.0) * gb.CoulombConstant
	if got := EnergyScale(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EnergyScale = %v, want %v", got, want)
	}
}

func TestDualFrontierCompletesToDual(t *testing.T) {
	// Executing the frontier pairs must reproduce AccumulateDual exactly.
	m, q := testMol(400, 92)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})

	n1, a1 := bs.NewAccumulators()
	bs.AccumulateDual(n1, a1)

	n2, a2 := bs.NewAccumulators()
	for _, pr := range bs.DualFrontier(64) {
		bs.AccumulateDualPair(pr[0], pr[1], n2, a2)
	}
	for i := range n1 {
		if math.Abs(n1[i]-n2[i]) > 1e-12*(1+math.Abs(n1[i])) {
			t.Fatalf("node accumulator %d differs: %v vs %v", i, n1[i], n2[i])
		}
	}
	for i := range a1 {
		if math.Abs(a1[i]-a2[i]) > 1e-12*(1+math.Abs(a1[i])) {
			t.Fatalf("atom accumulator %d differs: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestEpolDualFrontierCompletes(t *testing.T) {
	m, q := testMol(400, 93)
	R := gb.BornRadiiR6(m, q)
	es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})

	full, _ := es.EnergyDual()
	var sum float64
	fr := es.EpolDualFrontier(100)
	if len(fr) < 50 {
		t.Fatalf("frontier too small: %d pairs", len(fr))
	}
	for _, pr := range fr {
		e, _ := es.EnergyDualPair(pr[0], pr[1])
		sum += e
	}
	if e := relErr(sum, full); e > 1e-12 {
		t.Errorf("frontier sum %v != dual %v", sum, full)
	}
}

func TestFrontierRequestLargerThanTree(t *testing.T) {
	// Asking for more pairs than the recursion contains must terminate
	// with all-terminal pairs.
	m, q := testMol(60, 94)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.9})
	fr := bs.DualFrontier(1 << 20)
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}
	n2, a2 := bs.NewAccumulators()
	for _, pr := range fr {
		bs.AccumulateDualPair(pr[0], pr[1], n2, a2)
	}
	n1, a1 := bs.NewAccumulators()
	bs.AccumulateDual(n1, a1)
	for i := range a1 {
		if math.Abs(a1[i]-a2[i]) > 1e-12*(1+math.Abs(a1[i])) {
			t.Fatalf("saturated frontier wrong at atom %d", i)
		}
	}
}

func TestLeafEnergyRowsPartition(t *testing.T) {
	// Summing row-restricted energies over disjoint ranges equals the
	// full leaf-driven sum (linearity of the far field in row charges).
	m, q := testMol(350, 95)
	R := gb.BornRadiiR6(m, q)
	es := NewEpolSolverFromMolecule(m, R, EpolConfig{Eps: 0.9})

	var full float64
	for l := 0; l < es.NumLeaves(); l++ {
		e, _ := es.LeafEnergy(l)
		full += e
	}
	n := int32(m.N())
	var split float64
	for l := 0; l < es.NumLeaves(); l++ {
		e1, _ := es.LeafEnergyRows(l, 0, n/3)
		e2, _ := es.LeafEnergyRows(l, n/3, 2*n/3)
		e3, _ := es.LeafEnergyRows(l, 2*n/3, n)
		split += e1 + e2 + e3
	}
	if e := relErr(split, full); e > 1e-12 {
		t.Errorf("row-partitioned %v != full %v", split, full)
	}
}
