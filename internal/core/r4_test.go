package core

import (
	"testing"

	"octgb/internal/gb"
)

func TestR4TreecodeMatchesNaiveR4(t *testing.T) {
	m, q := testMol(500, 81)
	exact := gb.BornRadiiR4(m, q)

	bs := NewBornSolver(m, q, BornConfig{Eps: 0.05, Exponent: 4})
	sNode, sAtom := bs.NewAccumulators()
	for l := 0; l < bs.NumQLeaves(); l++ {
		bs.AccumulateQLeaf(l, sNode, sAtom)
	}
	rTree := make([]float64, m.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(m.N()), rTree)
	R := bs.RadiiToOriginal(rTree)

	for i := range R {
		if e := relErr(R[i], exact[i]); e > 0.02 {
			t.Fatalf("atom %d: r4 treecode %v vs naive %v", i, R[i], exact[i])
		}
	}
}

func TestR4DiffersFromR6(t *testing.T) {
	// The Coulomb-field approximation systematically underestimates the
	// Born radii of buried atoms relative to the r⁶ form (Grycuk [14]) —
	// the two exponents must give materially different radii on a protein.
	m, q := testMol(400, 82)
	run := func(exp int) []float64 {
		bs := NewBornSolver(m, q, BornConfig{Eps: 0.5, Exponent: exp})
		sNode, sAtom := bs.NewAccumulators()
		for l := 0; l < bs.NumQLeaves(); l++ {
			bs.AccumulateQLeaf(l, sNode, sAtom)
		}
		rTree := make([]float64, m.N())
		bs.PushIntegrals(sNode, sAtom, 0, int32(m.N()), rTree)
		return bs.RadiiToOriginal(rTree)
	}
	r4 := run(4)
	r6 := run(6)
	diff := 0
	for i := range r4 {
		if relErr(r4[i], r6[i]) > 0.02 {
			diff++
		}
	}
	if diff < len(r4)/10 {
		t.Errorf("r4 and r6 radii nearly identical (%d/%d differ)", diff, len(r4))
	}
}

func TestExponentDefaultsToR6(t *testing.T) {
	c := BornConfig{}.withDefaults()
	if c.Exponent != 6 {
		t.Errorf("default exponent %d", c.Exponent)
	}
	c = BornConfig{Exponent: 4}.withDefaults()
	if c.Exponent != 4 {
		t.Errorf("explicit r4 lost: %d", c.Exponent)
	}
	// Invalid exponents collapse to the r⁶ default.
	c = BornConfig{Exponent: 5}.withDefaults()
	if c.Exponent != 6 {
		t.Errorf("invalid exponent kept: %d", c.Exponent)
	}
}

func TestR4DualMatchesSingle(t *testing.T) {
	m, q := testMol(300, 83)
	bs := NewBornSolver(m, q, BornConfig{Eps: 0.5, Exponent: 4})
	s1n, s1a := bs.NewAccumulators()
	for l := 0; l < bs.NumQLeaves(); l++ {
		bs.AccumulateQLeaf(l, s1n, s1a)
	}
	r1 := make([]float64, m.N())
	bs.PushIntegrals(s1n, s1a, 0, int32(m.N()), r1)

	s2n, s2a := bs.NewAccumulators()
	bs.AccumulateDual(s2n, s2a)
	r2 := make([]float64, m.N())
	bs.PushIntegrals(s2n, s2a, 0, int32(m.N()), r2)
	for i := range r1 {
		if e := relErr(r2[i], r1[i]); e > 0.1 {
			t.Fatalf("atom %d: dual %v vs single %v", i, r2[i], r1[i])
		}
	}
}
