//go:build !amd64

package core

// Non-amd64 builds have no hand-vectorized kernels; dispatch always
// takes the portable Go loops.
const hasAVX2FMA = false
