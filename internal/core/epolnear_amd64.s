#include "textflag.h"

// Vectorized energy near-field kernel. See epolNearArgs in
// epolnear_amd64.go for the argument block layout. For each entry of a
// run (shared v-leaf tile, L1-resident), each u-row atom is broadcast
// into six lane-splat registers and swept across the tile four atoms per
// iteration. The GB pair term qᵢqⱼ/√(d² + RᵢRⱼ·e^(−d²/4RᵢRⱼ)) needs a
// vector exponential: the same table-driven construction as expNeg
// (fastexp.go) — e^x = 2^k·2^(j/128)·e^r with the scale factor assembled
// in the bit pattern — using VGATHERQPD against ·exp2Bits for the table
// lookup and a VFMADD213PD chain for the degree-4 tail. The argument is
// clamped at −700 instead of flushed at −200: below −200 the e^x
// contribution is ≤ 1e-87 of the surviving d² term, and −700 keeps
// 2^k in the normal float64 range (no subnormal stalls, no bit-assembly
// overflow). NaN arguments survive the clamp (the NaN is kept as the max
// SECOND source) and propagate to the returned sum — the Restrict poison
// proof depends on it.
//
// Register plan:
//   BX/R15 entry cursor/end · CX/R13 row cursor/end · R10/R9 tile
//   cursor/width · DI tile · R11 uPos · R8 uQRG · R14 uRange ·
//   R12 exp2Bits · Y9..Y14 row splats (px py pz qᵢ Rᵢ gᵢ) ·
//   Y15 global accumulator · Y0..Y8 pipeline temps · FP constants
//   come in as m256 operands from RODATA.

DATA epolInvL4<>+0(SB)/8, $0x40671547652B82FE // 128/ln2
DATA epolInvL4<>+8(SB)/8, $0x40671547652B82FE
DATA epolInvL4<>+16(SB)/8, $0x40671547652B82FE
DATA epolInvL4<>+24(SB)/8, $0x40671547652B82FE
GLOBL epolInvL4<>(SB), RODATA, $32

DATA epolL4<>+0(SB)/8, $0x3F762E42FEFA39EF // ln2/128
DATA epolL4<>+8(SB)/8, $0x3F762E42FEFA39EF
DATA epolL4<>+16(SB)/8, $0x3F762E42FEFA39EF
DATA epolL4<>+24(SB)/8, $0x3F762E42FEFA39EF
GLOBL epolL4<>(SB), RODATA, $32

DATA epolHalf4<>+0(SB)/8, $0x3FE0000000000000 // 0.5
DATA epolHalf4<>+8(SB)/8, $0x3FE0000000000000
DATA epolHalf4<>+16(SB)/8, $0x3FE0000000000000
DATA epolHalf4<>+24(SB)/8, $0x3FE0000000000000
GLOBL epolHalf4<>(SB), RODATA, $32

DATA epolC6_4<>+0(SB)/8, $0x3FC5555555555555 // 1/6
DATA epolC6_4<>+8(SB)/8, $0x3FC5555555555555
DATA epolC6_4<>+16(SB)/8, $0x3FC5555555555555
DATA epolC6_4<>+24(SB)/8, $0x3FC5555555555555
GLOBL epolC6_4<>(SB), RODATA, $32

DATA epolC24_4<>+0(SB)/8, $0x3FA5555555555555 // 1/24
DATA epolC24_4<>+8(SB)/8, $0x3FA5555555555555
DATA epolC24_4<>+16(SB)/8, $0x3FA5555555555555
DATA epolC24_4<>+24(SB)/8, $0x3FA5555555555555
GLOBL epolC24_4<>(SB), RODATA, $32

DATA epolClamp4<>+0(SB)/8, $0xC085E00000000000 // -700.0
DATA epolClamp4<>+8(SB)/8, $0xC085E00000000000
DATA epolClamp4<>+16(SB)/8, $0xC085E00000000000
DATA epolClamp4<>+24(SB)/8, $0xC085E00000000000
GLOBL epolClamp4<>(SB), RODATA, $32

DATA epolIdx4<>+0(SB)/8, $127 // table index mask
DATA epolIdx4<>+8(SB)/8, $127
DATA epolIdx4<>+16(SB)/8, $127
DATA epolIdx4<>+24(SB)/8, $127
GLOBL epolIdx4<>(SB), RODATA, $32

// func epolNearRunAVX2(a *epolNearArgs) float64
TEXT ·epolNearRunAVX2(SB), NOSPLIT, $0-16
	MOVQ a+0(FP), AX
	MOVQ 0(AX), DI             // tile
	MOVQ 8(AX), BX             // entries cursor
	MOVQ 16(AX), R15
	SHLQ $3, R15
	ADDQ BX, R15               // entries end
	MOVQ 24(AX), R14           // uRange
	MOVQ 32(AX), R11           // uPos
	MOVQ 40(AX), R8            // uQRG
	MOVQ 48(AX), R9
	SHLQ $3, R9                // tile byte width (nv·8)
	LEAQ ·exp2Bits(SB), R12
	VXORPD Y15, Y15, Y15       // run accumulator

entry:
	CMPQ BX, R15
	JGE  done
	MOVLQSX 0(BX), AX          // u-leaf node id
	MOVQ (R14)(AX*8), CX       // packed start|end<<32
	MOVQ CX, R13
	SHRQ $32, R13
	MOVL CX, CX
	SHLQ $5, CX                // row cursor, bytes into uPos/uQRG
	SHLQ $5, R13               // row end

row:
	CMPQ CX, R13
	JGE  rowsdone
	VBROADCASTSD (R11)(CX*1), Y9    // pxᵢ
	VBROADCASTSD 8(R11)(CX*1), Y10  // pyᵢ
	VBROADCASTSD 16(R11)(CX*1), Y11 // pzᵢ
	VBROADCASTSD (R8)(CX*1), Y12    // qᵢ
	VBROADCASTSD 8(R8)(CX*1), Y13   // Rᵢ
	VBROADCASTSD 16(R8)(CX*1), Y14  // gᵢ = −0.25/Rᵢ
	XORQ R10, R10

col:
	VSUBPD (DI)(R10*1), Y9, Y0      // dx
	VSUBPD 512(DI)(R10*1), Y10, Y1  // dy
	VSUBPD 1024(DI)(R10*1), Y11, Y2 // dz
	VMULPD Y0, Y0, Y3
	VFMADD231PD Y1, Y1, Y3
	VFMADD231PD Y2, Y2, Y3          // d²
	VMULPD Y14, Y3, Y4              // d²·gᵢ
	VMULPD 2560(DI)(R10*1), Y4, Y4  // x = (d²·gᵢ)·(1/Rⱼ)
	// Clamp with x as the SECOND max source so a NaN x wins the max and
	// the Restrict poison keeps propagating.
	VMOVUPD epolClamp4<>(SB), Y5
	VMAXPD Y4, Y5, Y4               // max(−700, x)
	VMULPD epolInvL4<>(SB), Y4, Y5
	VSUBPD epolHalf4<>(SB), Y5, Y5
	VCVTTPD2DQY Y5, X5              // ki = trunc(x·128/ln2 − ½)
	VCVTDQ2PD X5, Y6                // float64(ki)
	VMOVAPD Y4, Y7
	VFNMADD231PD epolL4<>(SB), Y6, Y7 // r = x − ki·(ln2/128)
	VPMOVSXDQ X5, Y8                // ki widened to int64 lanes
	VPAND epolIdx4<>(SB), Y8, Y2    // j = ki & 127
	VPSUBQ Y2, Y8, Y8               // 128k = ki − j
	VPSLLQ $45, Y8, Y8              // k shifted into the exponent field
	VPCMPEQD Y0, Y0, Y0             // gather mask (consumed by the gather)
	VGATHERQPD Y0, (R12)(Y2*8), Y1  // 2^(j/128) bit patterns
	VPADDQ Y8, Y1, Y1               // sc = 2^k·2^(j/128)
	VMULPD Y7, Y7, Y6               // r²
	VMOVUPD epolC24_4<>(SB), Y5
	VFMADD213PD epolC6_4<>(SB), Y7, Y5
	VFMADD213PD epolHalf4<>(SB), Y7, Y5
	VFMADD213PD Y7, Y6, Y5          // p = r + r²·(½ + r·(⅙ + r/24))
	VFMADD213PD Y1, Y1, Y5          // e = sc + sc·p
	VMULPD 2048(DI)(R10*1), Y13, Y4 // RᵢRⱼ
	VMULPD Y5, Y4, Y4               // RᵢRⱼ·e
	VADDPD Y3, Y4, Y4               // f² = d² + RᵢRⱼ·e
	VSQRTPD Y4, Y4
	VMULPD 1536(DI)(R10*1), Y12, Y3 // qᵢqⱼ
	VDIVPD Y4, Y3, Y3               // term
	VADDPD Y3, Y15, Y15
	ADDQ $32, R10
	CMPQ R10, R9
	JLT  col
	ADDQ $32, CX
	JMP  row

rowsdone:
	ADDQ $8, BX
	JMP  entry

done:
	VEXTRACTF128 $1, Y15, X1
	VADDPD X1, X15, X15
	VSHUFPD $1, X15, X15, X1
	VADDSD X1, X15, X15
	VMOVSD X15, ret+8(FP)
	VZEROUPPER
	RET
