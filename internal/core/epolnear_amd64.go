package core

import "math"

// amd64 dispatch for the vectorized energy near-field kernel. The Go
// reference loop (evalEpolNearRun) stays the oracle-parity fallback — this
// path packs each run's v-leaf tile into a zero-padded stack block and
// hands whole runs to the AVX2+FMA kernel in epolnear_amd64.s, which
// evaluates exp(−d²/4RᵢRⱼ) four lanes at a time with a VGATHERQPD table
// lookup against the same exp2Bits table expNeg uses.

// epolTileCap is the per-row capacity of the packed v-tile, in elements.
// Leaves normally hold ≤ LeafSize (16) points; depth-capped degenerate
// leaves (or large configured LeafSize) can exceed it, and those runs fall
// back to the scalar kernel.
const epolTileCap = 64

// epolNearArgs is the argument block for epolNearRunAVX2. Field offsets
// are hard-coded in epolnear_amd64.s — keep the layouts in sync.
type epolNearArgs struct {
	tile   *float64  //  0: packed v-tile, 6 rows × epolTileCap (x y z q R invR)
	ents   *NodePair //  8: run entries (all sharing one v-leaf), u id at offset 0
	nents  int64     // 16
	ranges *int64    // 24: uRange — node point ranges packed start|end<<32
	upos   *float64  // 32: uPos — (x, y, z, pad) per u-row atom
	uqrg   *float64  // 40: uQRG — (q, R, −0.25/R, pad) per u-row atom
	nv     int64     // 48: padded tile length in elements (multiple of 4)
}

// epolNearRunAVX2 evaluates every (u-row atom × tile atom) pair of the
// run's entries with 4-wide AVX2+FMA lanes and returns the raw sum.
// Padding lanes carry q = 0 (and R = invR = 1 so the exponential argument
// stays benign), contributing exactly 0. Self pairs are NOT special-cased
// in the lanes — the smooth kernel evaluates them to qᵢ²/√(fl(Rᵢ²)),
// which the Go wrapper swaps for the exact qᵢ²/Rᵢ afterwards.
//
//go:noescape
func epolNearRunAVX2(a *epolNearArgs) float64

// evalEpolNearRangeVec is EvalEpolNearRange's amd64 vector path for Exact
// float64 math. Per-term evaluation matches the scalar kernel's operation
// order except for FMA contraction in d² and the exponential's
// reduction/reconstruction roundings — all ~1 ulp per term, far inside
// the total-energy golden pin (the epol pin is on the total, which has
// orders of magnitude more reassociation slack than the per-element Born
// pins).
// evalEpolNearEntryValuesVec is EvalEpolNearEntryValues' amd64 vector
// path: one v-tile pack for the whole batch, then a one-entry kernel call
// per selected entry. A one-entry call through this path is arithmetic-
// identical to a one-entry evalEpolNearRangeVec call (same pack, same
// kernel invocation, same self-pair correction), which is what makes the
// batch bitwise interchangeable with per-entry range calls.
func (s *EpolSolver) evalEpolNearEntryValuesVec(near []NodePair, idxs []int32, out []float64) {
	v := near[0].B
	vlo, vhi := s.T.PointRange(v)
	n := int(vhi - vlo)
	if n > epolTileCap {
		// Degenerate oversized leaf: the range path would fall back to the
		// scalar run kernel for this v, so the per-entry values must too.
		if idxs == nil {
			for k := range near {
				out[k] = s.evalEpolNearRun(near[k:k+1], v)
			}
			return
		}
		for _, k := range idxs {
			out[k] = s.evalEpolNearRun(near[k:k+1], v)
		}
		return
	}
	if n == 0 {
		if idxs == nil {
			for k := range near {
				out[k] = 0
			}
			return
		}
		for _, k := range idxs {
			out[k] = 0
		}
		return
	}
	var tile [6 * epolTileCap]float64
	x, y, z := s.T.X, s.T.Y, s.T.Z
	for k := 0; k < n; k++ {
		j := int(vlo) + k
		tile[0*epolTileCap+k] = x[j]
		tile[1*epolTileCap+k] = y[j]
		tile[2*epolTileCap+k] = z[j]
		tile[3*epolTileCap+k] = s.q[j]
		tile[4*epolTileCap+k] = s.R[j]
		tile[5*epolTileCap+k] = s.invR[j]
	}
	nv := (n + 3) &^ 3
	for k := n; k < nv; k++ {
		tile[0*epolTileCap+k] = 0
		tile[1*epolTileCap+k] = 0
		tile[2*epolTileCap+k] = 0
		tile[3*epolTileCap+k] = 0
		tile[4*epolTileCap+k] = 1
		tile[5*epolTileCap+k] = 1
	}
	args := epolNearArgs{
		tile:   &tile[0],
		nents:  1,
		ranges: &s.uRange[0],
		upos:   &s.uPos[0],
		uqrg:   &s.uQRG[0],
		nv:     int64(nv),
	}
	if idxs == nil {
		for k := range near {
			out[k] = s.evalEpolNearOneVec(&args, near, k, v, vlo, vhi)
		}
		return
	}
	for _, k := range idxs {
		out[k] = s.evalEpolNearOneVec(&args, near, int(k), v, vlo, vhi)
	}
}

// evalEpolNearOneVec runs the kernel for one entry of a packed batch and
// applies the exact-diagonal self-pair correction, mirroring the per-run
// epilogue of evalEpolNearRangeVec.
func (s *EpolSolver) evalEpolNearOneVec(args *epolNearArgs, near []NodePair, k int, v, vlo, vhi int32) float64 {
	args.ents = &near[k]
	val := epolNearRunAVX2(args)
	if near[k].A == v {
		for i := vlo; i < vhi; i++ {
			num := s.q[i] * s.q[i]
			ri := s.R[i]
			val += num/ri - num/math.Sqrt(ri*ri)
		}
	}
	return val
}

func (s *EpolSolver) evalEpolNearRangeVec(near []NodePair) float64 {
	var tile [6 * epolTileCap]float64
	args := epolNearArgs{
		tile:   &tile[0],
		ranges: &s.uRange[0],
		upos:   &s.uPos[0],
		uqrg:   &s.uQRG[0],
	}
	x, y, z := s.T.X, s.T.Y, s.T.Z
	var sum float64
	for len(near) > 0 {
		v := near[0].B
		run := 1
		for run < len(near) && near[run].B == v {
			run++
		}
		vlo, vhi := s.T.PointRange(v)
		n := int(vhi - vlo)
		if n > epolTileCap {
			sum += s.evalEpolNearRun(near[:run], v)
			near = near[run:]
			continue
		}
		if n == 0 {
			near = near[run:]
			continue
		}
		for k := 0; k < n; k++ {
			j := int(vlo) + k
			tile[0*epolTileCap+k] = x[j]
			tile[1*epolTileCap+k] = y[j]
			tile[2*epolTileCap+k] = z[j]
			tile[3*epolTileCap+k] = s.q[j]
			tile[4*epolTileCap+k] = s.R[j]
			tile[5*epolTileCap+k] = s.invR[j]
		}
		nv := (n + 3) &^ 3
		for k := n; k < nv; k++ {
			tile[0*epolTileCap+k] = 0
			tile[1*epolTileCap+k] = 0
			tile[2*epolTileCap+k] = 0
			tile[3*epolTileCap+k] = 0
			tile[4*epolTileCap+k] = 1
			tile[5*epolTileCap+k] = 1
		}
		args.ents = &near[0]
		args.nents = int64(run)
		args.nv = int64(nv)
		sum += epolNearRunAVX2(&args)
		// Self-pair correction: the lane computed the smooth kernel at
		// d² = +0 exactly (the vectorized exp returns exactly 1.0 there),
		// i.e. qᵢ²/√(fl(Rᵢ²)). Subtract that bit pattern and add the exact
		// diagonal qᵢ²/Rᵢ the treecode defines (f_GB(i,i) = Rᵢ).
		for _, p := range near[:run] {
			if p.A != v {
				continue
			}
			for i := vlo; i < vhi; i++ {
				num := s.q[i] * s.q[i]
				ri := s.R[i]
				sum += num/ri - num/math.Sqrt(ri*ri)
			}
		}
		near = near[run:]
	}
	return sum
}
