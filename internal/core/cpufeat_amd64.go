package core

// CPU feature detection for the hand-vectorized kernels. The standard
// library keeps its feature flags in internal/cpu, which user code cannot
// import, so the two instructions needed (CPUID and XGETBV) live in
// cpufeat_amd64.s. The vector kernels require AVX2 and FMA, plus OS
// support for saving the YMM state (OSXSAVE set and XCR0 enabling both
// SSE and AVX state), per the Intel-documented detection sequence.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasAVX2FMA reports whether the AVX2+FMA kernels can run on this
// machine. Computed once at package init; kernel dispatch reads the
// cached flag.
var hasAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be enabled by the OS.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
