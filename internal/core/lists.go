package core

import (
	"math"

	"octgb/internal/gb"
	"octgb/internal/octree"
)

// This file implements the two-phase (traversal / evaluation) form of the
// treecodes. The recursive traversals in born.go and epol.go interleave
// the near–far decision with the arithmetic; here the decision tree is run
// ONCE by an explicit-stack, allocation-light traversal that only records
// which node pairs interact and how (NodePair lists), and the arithmetic
// becomes flat, branch-predictable loops over the octrees' SoA coordinate
// mirrors. The split buys three things:
//
//  1. the evaluation loops stream contiguous float64 arrays with the
//     traversal control flow hoisted out entirely;
//  2. a built list is reusable across repeated evaluations over the same
//     geometry (the engines evaluate it with work-stealing workers, and a
//     list built once serves every math mode);
//  3. list entries are uniform, independent work items — exactly the
//     fine-grained tasks the Chase–Lev scheduler load-balances well.
//
// The construction mirrors the recursive traversals exactly — same visit
// order, same acceptance tests — so the recursive path remains the oracle:
// Stats captured at build time are identical to the recursion's, and
// evaluating a list reproduces the recursion's sums term for term.

// NodePair is one interaction-list entry: an (A-tree node, B-tree node)
// pair. For Born lists A is a T_A node and B a T_Q node; for energy lists
// both come from the atoms octree.
type NodePair struct {
	A, B int32
}

// InteractionList is the output of one list-construction traversal: the
// exact near-field block pairs, the accepted far-field cell pairs, and the
// work counters the traversal recorded (identical to what the equivalent
// recursive traversal would have reported).
type InteractionList struct {
	Near  []NodePair
	Far   []NodePair
	stats Stats
}

// Stats returns the traversal's work counters: NodesVisited from the
// construction phase, FarEval/NearPairs describing the recorded work
// (which evaluation performs verbatim).
func (l *InteractionList) Stats() Stats { return l.stats }

// reset empties the list while keeping its capacity, so rebuilds into the
// same InteractionList (ε-sweeps, per-pose docking rebuilds) reuse the
// previous pose's backing arrays instead of re-growing them from scratch.
func (l *InteractionList) reset() {
	l.Near = l.Near[:0]
	l.Far = l.Far[:0]
	l.stats = Stats{}
}

// pairStack is a tiny explicit stack of node pairs reused across the
// builders; grow-only, so a solver-scoped builder performs no allocation
// after warm-up when lists are rebuilt (ε-sweeps).
type pairStack []NodePair

func (st *pairStack) push(a, b int32) { *st = append(*st, NodePair{a, b}) }
func (st *pairStack) pop() NodePair {
	s := *st
	p := s[len(s)-1]
	*st = s[:len(s)-1]
	return p
}

// ---------------------------------------------------------------------------
// Born-radius treecode lists
// ---------------------------------------------------------------------------

// BuildBornList runs the single-tree APPROX-INTEGRALS traversal for the
// q-leaves [qLo, qHi) and returns the interaction list. Evaluating the
// list (EvalBornList) is equivalent to running AccumulateQLeaf over the
// same leaf range.
func (s *BornSolver) BuildBornList(qLo, qHi int) *InteractionList {
	return s.BuildBornListInto(new(InteractionList), qLo, qHi)
}

// BuildBornListInto is BuildBornList rebuilding into an existing list,
// reusing its backing arrays. Lists at ZDock scales run to tens of
// millions of entries, so rebuild loops should pass the same list back in
// rather than re-paying the append growth every pose.
func (s *BornSolver) BuildBornListInto(l *InteractionList, qLo, qHi int) *InteractionList {
	l.reset()
	if len(s.TA.Nodes) == 0 || len(s.TQ.Nodes) == 0 {
		return l
	}
	var stack pairStack
	for ql := qLo; ql < qHi; ql++ {
		q := s.TQ.LeafIdx[ql]
		qn := &s.TQ.Nodes[q]
		qlo, qhi := s.TQ.PointRange(q)
		qCount := int64(qhi - qlo)
		stack = stack[:0]
		stack.push(0, q)
		for len(stack) > 0 {
			p := stack.pop()
			a := p.A
			l.stats.NodesVisited++
			an := &s.TA.Nodes[a]
			d2 := an.Center.Dist2(qn.Center)
			if wellSeparated2(d2, an.Radius, qn.Radius, s.sepK2) {
				l.Far = append(l.Far, NodePair{a, q})
				l.stats.FarEval++
				continue
			}
			if an.Leaf {
				l.Near = append(l.Near, NodePair{a, q})
				l.stats.NearPairs += int64(an.Count) * qCount
				continue
			}
			// Push children in reverse so they pop in the recursion's
			// (ascending) order — keeps accumulation order, and therefore
			// floating-point results, aligned with the recursive oracle.
			for c := 7; c >= 0; c-- {
				if ch := an.Children[c]; ch != octree.NoChild {
					stack.push(ch, q)
				}
			}
		}
	}
	return l
}

// BuildBornDualList runs the dual-tree traversal of AccumulateDual and
// returns its interaction list. Near entries pair a T_A leaf with a T_Q
// leaf; far entries may involve internal nodes of either tree.
func (s *BornSolver) BuildBornDualList() *InteractionList {
	return s.BuildBornDualListInto(new(InteractionList))
}

// BuildBornDualListInto is BuildBornDualList reusing an existing list's
// backing arrays.
func (s *BornSolver) BuildBornDualListInto(l *InteractionList) *InteractionList {
	l.reset()
	if len(s.TA.Nodes) == 0 || len(s.TQ.Nodes) == 0 {
		return l
	}
	var stack pairStack
	stack.push(0, 0)
	for len(stack) > 0 {
		p := stack.pop()
		a, q := p.A, p.B
		l.stats.NodesVisited++
		an := &s.TA.Nodes[a]
		qn := &s.TQ.Nodes[q]
		d2 := an.Center.Dist2(qn.Center)
		if wellSeparated2(d2, an.Radius, qn.Radius, s.sepK2) {
			l.Far = append(l.Far, p)
			l.stats.FarEval++
			continue
		}
		switch {
		case an.Leaf && qn.Leaf:
			l.Near = append(l.Near, p)
			l.stats.NearPairs += int64(an.Count) * int64(qn.Count)
		case qn.Leaf || (!an.Leaf && an.Radius >= qn.Radius):
			for c := 7; c >= 0; c-- {
				if ch := an.Children[c]; ch != octree.NoChild {
					stack.push(ch, q)
				}
			}
		default:
			for c := 7; c >= 0; c-- {
				if ch := qn.Children[c]; ch != octree.NoChild {
					stack.push(a, ch)
				}
			}
		}
	}
	return l
}

// EvalBornNearPair evaluates one near-field list entry exactly: every
// q-point under q against every atom under the T_A leaf a, accumulating
// into sAtom (tree order).
func (s *BornSolver) EvalBornNearPair(a, q int32, sAtom []float64) {
	one := [1]NodePair{{a, q}}
	if s.f32 != nil {
		s.evalBornNearRunF32(one[:], q, sAtom)
		return
	}
	s.evalBornNearRun(one[:], q, sAtom)
}

// EvalBornNearRange evaluates the near entries [lo, hi) of the list.
// Entries accumulate into disjoint sAtom rows only when their T_A leaves
// are disjoint; parallel callers must partition entries, not rows.
//
// The single-tree builder emits near entries in runs sharing a q-leaf, so
// entries are processed run-blocked: the q-side tile (coordinates and
// quadrature weights, ≤ LeafSize points — comfortably L1-resident) is
// sliced once per run and swept over every atom row of every entry in
// the run. Accumulation order is identical to the entry-at-a-time form.
func (s *BornSolver) EvalBornNearRange(l *InteractionList, lo, hi int, sAtom []float64) {
	near := l.Near[lo:hi]
	if hasAVX2FMA && s.f32 == nil && len(near) > 0 {
		s.evalBornNearRangeVec(near, sAtom)
		return
	}
	for len(near) > 0 {
		q := near[0].B
		run := 1
		for run < len(near) && near[run].B == q {
			run++
		}
		if s.f32 != nil {
			s.evalBornNearRunF32(near[:run], q, sAtom)
		} else {
			s.evalBornNearRun(near[:run], q, sAtom)
		}
		near = near[run:]
	}
}

// evalBornNearRun evaluates a run of near entries sharing the q-leaf q.
// This is the portable reference kernel: the q-side arrays are sliced to
// the leaf range and clipped to a common length up front so the compiler
// proves the inner-loop indexing in bounds and drops the per-element
// checks, and each atom row sweeps the tile with a single scalar
// accumulator. Leaves average only a handful of points (DefaultLeafSize
// 16, median fill ~5), so the row loop is short and µop-issue-bound —
// multi-row unroll-and-jam variants were measured slower here (the jam
// spills loop invariants and reloads slice bases; see DESIGN.md §11).
// On amd64 with AVX2+FMA the run is instead handed to the vector kernel
// in bornnear_amd64.s, which jams rows in SIMD registers.
func (s *BornSolver) evalBornNearRun(entries []NodePair, q int32, sAtom []float64) {
	qlo, qhi := s.TQ.PointRange(q)
	ax, ay, az := s.TA.X, s.TA.Y, s.TA.Z
	qx := s.TQ.X[qlo:qhi]
	n := len(qx)
	qy := s.TQ.Y[qlo:qhi][:n]
	qz := s.TQ.Z[qlo:qhi][:n]
	wx := s.wnX[qlo:qhi][:n]
	wy := s.wnY[qlo:qhi][:n]
	wz := s.wnZ[qlo:qhi][:n]
	r4 := s.r4
	for _, p := range entries {
		alo, ahi := s.TA.PointRange(p.A)
		for i := alo; i < ahi; i++ {
			px, py, pz := ax[i], ay[i], az[i]
			var acc float64
			if r4 {
				for j := 0; j < n; j++ {
					dx, dy, dz := qx[j]-px, qy[j]-py, qz[j]-pz
					d2 := dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						acc += (wx[j]*dx + wy[j]*dy + wz[j]*dz) * (1 / (d2 * d2))
					}
				}
			} else {
				for j := 0; j < n; j++ {
					dx, dy, dz := qx[j]-px, qy[j]-py, qz[j]-pz
					d2 := dx*dx + dy*dy + dz*dz
					if d2 >= 1e-12 {
						acc += (wx[j]*dx + wy[j]*dy + wz[j]*dz) * (1 / (d2 * d2 * d2))
					}
				}
			}
			sAtom[i] += acc
		}
	}
}

// EvalBornFarRange evaluates the far entries [lo, hi) of the list: each
// entry is one pseudo q-point (Q's aggregate ñ_Q at its center) against
// the pseudo atom at A's center, into sNode[A]. Single-tree lists emit
// runs of entries sharing a q-leaf, so the q-side loads are cached across
// the run; the squared distance is formed directly from the SoA center
// mirrors rather than via the recursion's sqrt (the values differ from
// the oracle only in the last couple of ulps).
func (s *BornSolver) EvalBornFarRange(l *InteractionList, lo, hi int, sNode []float64) {
	if s.f32 != nil {
		s.evalBornFarRangeF32(l, lo, hi, sNode)
		return
	}
	if hasAVX2FMA && lo < hi {
		s.evalBornFarRangeVec(l.Far[lo:hi], sNode)
		return
	}
	far := l.Far[lo:hi]
	acx, acy, acz := s.TA.CX, s.TA.CY, s.TA.CZ
	qcx, qcy, qcz := s.TQ.CX, s.TQ.CY, s.TQ.CZ
	wqx, wqy, wqz := s.wnNX, s.wnNY, s.wnNZ
	lastQ := int32(-1)
	var cqx, cqy, cqz, nx, ny, nz float64
	if s.r4 {
		for _, p := range far {
			if p.B != lastQ {
				lastQ = p.B
				cqx, cqy, cqz = qcx[p.B], qcy[p.B], qcz[p.B]
				nx, ny, nz = wqx[p.B], wqy[p.B], wqz[p.B]
			}
			dx, dy, dz := cqx-acx[p.A], cqy-acy[p.A], cqz-acz[p.A]
			d2 := dx*dx + dy*dy + dz*dz
			sNode[p.A] += (nx*dx + ny*dy + nz*dz) * (1 / (d2 * d2))
		}
		return
	}
	for _, p := range far {
		if p.B != lastQ {
			lastQ = p.B
			cqx, cqy, cqz = qcx[p.B], qcy[p.B], qcz[p.B]
			nx, ny, nz = wqx[p.B], wqy[p.B], wqz[p.B]
		}
		dx, dy, dz := cqx-acx[p.A], cqy-acy[p.A], cqz-acz[p.A]
		d2 := dx*dx + dy*dy + dz*dz
		sNode[p.A] += (nx*dx + ny*dy + nz*dz) * (1 / (d2 * d2 * d2))
	}
}

// EvalBornList evaluates a whole interaction list serially into the
// caller's accumulators and returns the list's Stats — the flat-path
// equivalent of the recursive traversal that built the list.
func (s *BornSolver) EvalBornList(l *InteractionList, sNode, sAtom []float64) Stats {
	s.EvalBornFarRange(l, 0, len(l.Far), sNode)
	s.EvalBornNearRange(l, 0, len(l.Near), sAtom)
	return l.stats
}

// ---------------------------------------------------------------------------
// Energy (APPROX-EPOL) treecode lists
// ---------------------------------------------------------------------------

// BuildEpolList runs the leaf-driven APPROX-EPOL traversal for the
// atoms-octree leaves [vLo, vHi) and returns the interaction list.
// Evaluating it is equivalent to summing LeafEnergy over the same range.
func (s *EpolSolver) BuildEpolList(vLo, vHi int) *InteractionList {
	return s.BuildEpolListInto(new(InteractionList), vLo, vHi)
}

// BuildEpolListInto is BuildEpolList reusing an existing list's backing
// arrays.
func (s *EpolSolver) BuildEpolListInto(l *InteractionList, vLo, vHi int) *InteractionList {
	return buildEpolLeafList(l, s.T, s.sep, vLo, vHi, s.nnz)
}

// buildEpolLeafList is the leaf-driven APPROX-EPOL traversal shared by the
// full builder and the geometry-only skeleton builder. nnz may be nil, in
// which case FarEval is left at 0 (to be filled in by CompleteFarStats).
func buildEpolLeafList(l *InteractionList, t *octree.Tree, sep float64, vLo, vHi int, nnz func(int32) int64) *InteractionList {
	l.reset()
	if len(t.Nodes) == 0 {
		return l
	}
	sep2 := sep * sep // same squared constant the solver stores
	var stack pairStack
	for vl := vLo; vl < vHi; vl++ {
		v := t.LeafIdx[vl]
		vn := &t.Nodes[v]
		stack = stack[:0]
		stack.push(0, v)
		for len(stack) > 0 {
			p := stack.pop()
			u := p.A
			l.stats.NodesVisited++
			un := &t.Nodes[u]
			if un.Leaf {
				l.Near = append(l.Near, NodePair{u, v})
				l.stats.NearPairs += int64(un.Count) * int64(vn.Count)
				continue
			}
			d2 := un.Center.Dist2(vn.Center)
			if epolFar2(d2, un.Radius, vn.Radius, sep2) {
				l.Far = append(l.Far, NodePair{u, v})
				if nnz != nil {
					l.stats.FarEval += nnz(u) * nnz(v)
				}
				continue
			}
			for c := 7; c >= 0; c-- {
				if ch := un.Children[c]; ch != octree.NoChild {
					stack.push(ch, v)
				}
			}
		}
	}
	return l
}

// EpolSeparation returns the well-separatedness factor 1 + 2/ε a solver
// built with cfg will use (defaults applied) — what BuildEpolSkeletonInto
// needs before the solver itself can exist.
func EpolSeparation(cfg EpolConfig) float64 {
	return 1 + 2/cfg.withDefaults().Eps
}

// BuildEpolSkeletonInto builds the energy interaction list from GEOMETRY
// ALONE: the acceptance test needs only node centers, radii and the ε-derived
// separation factor, so the list can be constructed before charges or Born
// radii are known. Near, Far, NodesVisited and NearPairs are identical to
// BuildEpolListInto on a solver over the same tree and ε; FarEval — the one
// radii-dependent counter (it counts occupied Born-radius bin pairs) — is
// left at 0 until CompleteFarStats. This is the hook that lets the
// distributed engine overlap the Born-radius Allgatherv with list
// construction: the traversal runs while the radii are still in flight.
func BuildEpolSkeletonInto(l *InteractionList, t *octree.Tree, sep float64, vLo, vHi int) *InteractionList {
	return buildEpolLeafList(l, t, sep, vLo, vHi, nil)
}

// CompleteFarStats fills in the radii-dependent FarEval counter of a
// skeleton list built by BuildEpolSkeletonInto, making its Stats identical
// to a BuildEpolList over the same range.
func (s *EpolSolver) CompleteFarStats(l *InteractionList) {
	l.stats.FarEval = 0
	for _, p := range l.Far {
		l.stats.FarEval += s.nnz(p.A) * s.nnz(p.B)
	}
}

// BuildEpolDualList runs the dual-tree energy traversal of EnergyDual and
// returns its interaction list.
func (s *EpolSolver) BuildEpolDualList() *InteractionList {
	return s.BuildEpolDualListInto(new(InteractionList))
}

// BuildEpolDualListInto is BuildEpolDualList reusing an existing list's
// backing arrays.
func (s *EpolSolver) BuildEpolDualListInto(l *InteractionList) *InteractionList {
	l.reset()
	if len(s.T.Nodes) == 0 {
		return l
	}
	var stack pairStack
	stack.push(0, 0)
	for len(stack) > 0 {
		p := stack.pop()
		u, v := p.A, p.B
		l.stats.NodesVisited++
		un := &s.T.Nodes[u]
		vn := &s.T.Nodes[v]
		d2 := un.Center.Dist2(vn.Center)
		if u != v && epolFar2(d2, un.Radius, vn.Radius, s.sep2) {
			l.Far = append(l.Far, p)
			l.stats.FarEval += s.nnz(u) * s.nnz(v)
			continue
		}
		if un.Leaf && vn.Leaf {
			l.Near = append(l.Near, p)
			l.stats.NearPairs += int64(un.Count) * int64(vn.Count)
			continue
		}
		if vn.Leaf || (!un.Leaf && un.Radius >= vn.Radius) {
			for c := 7; c >= 0; c-- {
				if ch := un.Children[c]; ch != octree.NoChild {
					stack.push(ch, v)
				}
			}
		} else {
			for c := 7; c >= 0; c-- {
				if ch := vn.Children[c]; ch != octree.NoChild {
					stack.push(u, ch)
				}
			}
		}
	}
	return l
}

// nnz returns the number of occupied Born-radius bins of a node — the
// number of far-field terms a bin-pair approximation against it costs.
func (s *EpolSolver) nnz(n int32) int64 {
	return int64(s.nzStart[n+1] - s.nzStart[n])
}

// EvalEpolNearPair evaluates one exact near-field entry: all ordered atom
// pairs (u-leaf rows × v-leaf columns), including self pairs when the
// leaves coincide. Returns the raw (unscaled) sum.
func (s *EpolSolver) EvalEpolNearPair(u, v int32) float64 {
	one := [1]NodePair{{u, v}}
	switch {
	case s.f32 != nil:
		return s.evalEpolNearRunF32(one[:], v)
	case s.cfg.Math == gb.Approximate:
		return s.evalEpolNearRunApprox(one[:], v)
	}
	return s.evalEpolNearRun(one[:], v)
}

// evalEpolNearRun evaluates a run of near entries sharing the v-leaf v in
// Exact math. The v-side tile (positions, charges, Born radii — ≤ LeafSize
// atoms, L1-resident) is sliced once per run; u-leaf rows are unrolled
// two-wide with independent accumulator chains so the sqrt/divide unit
// pipelines across rows (wider jams lose to register spills: every lane's
// invariants are f64 and x86-64 has 16 XMM registers). The self-pair term
// is handled by conditional overwrite inside the lane (the smooth kernel
// already evaluates to qi²/R_i at d²=0 up to rounding; the overwrite keeps
// it exact), which keeps the inner loop free of a taken branch. Two
// divider-port operations are removed per term: exp(−d²/4RᵢRⱼ) uses the
// inlined expNeg polynomial (fastexp.go) instead of the opaque math.Exp
// call, and its argument is formed as (d²·(−0.25·invRᵢ))·invRⱼ from the
// precomputed reciprocal radii instead of dividing.
func (s *EpolSolver) evalEpolNearRun(entries []NodePair, v int32) float64 {
	vlo, vhi := s.T.PointRange(v)
	x, y, z := s.T.X, s.T.Y, s.T.Z
	xv := x[vlo:vhi]
	n := len(xv)
	yv := y[vlo:vhi][:n]
	zv := z[vlo:vhi][:n]
	qv := s.q[vlo:vhi][:n]
	Rv := s.R[vlo:vhi][:n]
	iv := s.invR[vlo:vhi][:n]
	var sum float64
	for _, p := range entries {
		ulo, uhi := s.T.PointRange(p.A)
		i := ulo
		for ; i+2 <= uhi; i += 2 {
			px0, py0, pz0, q0, r0 := x[i], y[i], z[i], s.q[i], s.R[i]
			px1, py1, pz1, q1, r1 := x[i+1], y[i+1], z[i+1], s.q[i+1], s.R[i+1]
			g0 := -0.25 * s.invR[i]
			g1 := -0.25 * s.invR[i+1]
			d0 := int(i - vlo)
			var c0, c1 float64
			for j := 0; j < n; j++ {
				xj, yj, zj := xv[j], yv[j], zv[j]
				qj, rj, irj := qv[j], Rv[j], iv[j]
				dx, dy, dz := px0-xj, py0-yj, pz0-zj
				d2 := dx*dx + dy*dy + dz*dz
				t := q0 * qj / math.Sqrt(d2+r0*rj*expNeg(d2*g0*irj))
				if j == d0 {
					t = q0 * q0 / r0
				}
				c0 += t
				dx, dy, dz = px1-xj, py1-yj, pz1-zj
				d2 = dx*dx + dy*dy + dz*dz
				t = q1 * qj / math.Sqrt(d2+r1*rj*expNeg(d2*g1*irj))
				if j == d0+1 {
					t = q1 * q1 / r1
				}
				c1 += t
			}
			sum += c0 + c1
		}
		for ; i < uhi; i++ {
			px, py, pz, qi, ri := x[i], y[i], z[i], s.q[i], s.R[i]
			gi := -0.25 * s.invR[i]
			diag := int(i - vlo)
			var acc float64
			for j := 0; j < n; j++ {
				dx, dy, dz := px-xv[j], py-yv[j], pz-zv[j]
				d2 := dx*dx + dy*dy + dz*dz
				t := qi * qv[j] / math.Sqrt(d2+ri*Rv[j]*expNeg(d2*gi*iv[j]))
				if j == diag {
					t = qi * qi / ri
				}
				acc += t
			}
			sum += acc
		}
	}
	return sum
}

// evalEpolNearRunApprox is evalEpolNearRun in Approximate math
// (rsqrt-seeded Newton inverse square root and the table-free exp
// surrogate from internal/gb).
func (s *EpolSolver) evalEpolNearRunApprox(entries []NodePair, v int32) float64 {
	vlo, vhi := s.T.PointRange(v)
	x, y, z := s.T.X, s.T.Y, s.T.Z
	xv := x[vlo:vhi]
	n := len(xv)
	yv := y[vlo:vhi][:n]
	zv := z[vlo:vhi][:n]
	qv := s.q[vlo:vhi][:n]
	Rv := s.R[vlo:vhi][:n]
	iv := s.invR[vlo:vhi][:n]
	var sum float64
	for _, p := range entries {
		ulo, uhi := s.T.PointRange(p.A)
		i := ulo
		for ; i+2 <= uhi; i += 2 {
			px0, py0, pz0, q0, r0 := x[i], y[i], z[i], s.q[i], s.R[i]
			px1, py1, pz1, q1, r1 := x[i+1], y[i+1], z[i+1], s.q[i+1], s.R[i+1]
			g0 := -0.25 * s.invR[i]
			g1 := -0.25 * s.invR[i+1]
			d0 := int(i - vlo)
			var c0, c1 float64
			for j := 0; j < n; j++ {
				xj, yj, zj := xv[j], yv[j], zv[j]
				qj, rj, irj := qv[j], Rv[j], iv[j]
				dx, dy, dz := px0-xj, py0-yj, pz0-zj
				d2 := dx*dx + dy*dy + dz*dz
				t := q0 * qj * gb.FastInvSqrt(d2+r0*rj*gb.FastExp(d2*g0*irj))
				if j == d0 {
					t = q0 * q0 / r0
				}
				c0 += t
				dx, dy, dz = px1-xj, py1-yj, pz1-zj
				d2 = dx*dx + dy*dy + dz*dz
				t = q1 * qj * gb.FastInvSqrt(d2+r1*rj*gb.FastExp(d2*g1*irj))
				if j == d0+1 {
					t = q1 * q1 / r1
				}
				c1 += t
			}
			sum += c0 + c1
		}
		for ; i < uhi; i++ {
			px, py, pz, qi, ri := x[i], y[i], z[i], s.q[i], s.R[i]
			gi := -0.25 * s.invR[i]
			diag := int(i - vlo)
			var acc float64
			for j := 0; j < n; j++ {
				dx, dy, dz := px-xv[j], py-yv[j], pz-zv[j]
				d2 := dx*dx + dy*dy + dz*dz
				t := qi * qv[j] * gb.FastInvSqrt(d2+ri*Rv[j]*gb.FastExp(d2*gi*iv[j]))
				if j == diag {
					t = qi * qi / ri
				}
				acc += t
			}
			sum += acc
		}
	}
	return sum
}

// EvalEpolFarPair evaluates one far-field bin-pair entry over the
// compressed nonzero-bin layout. Returns the raw sum. The squared center
// distance comes straight from the SoA node-center mirrors (no sqrt).
func (s *EpolSolver) EvalEpolFarPair(u, v int32) float64 {
	cx, cy, cz := s.T.CX, s.T.CY, s.T.CZ
	ddx, ddy, ddz := cx[u]-cx[v], cy[u]-cy[v], cz[u]-cz[v]
	d2 := ddx*ddx + ddy*ddy + ddz*ddz
	uLo, uHi := s.nzStart[u], s.nzStart[u+1]
	vLo, vHi := s.nzStart[v], s.nzStart[v+1]
	nzBin, nzQ, binRR := s.nzBin, s.nzQ, s.binRR
	var sum float64
	if s.cfg.Math == gb.Approximate {
		for a := uLo; a < uHi; a++ {
			qi, bi := nzQ[a], nzBin[a]
			for b := vLo; b < vHi; b++ {
				rr := binRR[bi+nzBin[b]]
				sum += qi * nzQ[b] * gb.FastInvSqrt(d2+rr*gb.FastExp(-d2/(4*rr)))
			}
		}
		return sum
	}
	for a := uLo; a < uHi; a++ {
		qi, bi := nzQ[a], nzBin[a]
		for b := vLo; b < vHi; b++ {
			rr := binRR[bi+nzBin[b]]
			sum += qi * nzQ[b] / math.Sqrt(d2+rr*math.Exp(-d2/(4*rr)))
		}
	}
	return sum
}

// EvalEpolNearRange sums the near entries [lo, hi) of the list. The
// leaf-driven builder emits near entries in runs sharing a v-leaf, so
// entries are processed run-blocked: the v-side tile is sliced once per
// run and swept over every u-row of every entry in the run.
func (s *EpolSolver) EvalEpolNearRange(l *InteractionList, lo, hi int) float64 {
	near := l.Near[lo:hi]
	if hasAVX2FMA && s.f32 == nil && s.cfg.Math != gb.Approximate &&
		len(near) > 0 && len(s.uPos) > 0 {
		return s.evalEpolNearRangeVec(near)
	}
	var sum float64
	for len(near) > 0 {
		v := near[0].B
		run := 1
		for run < len(near) && near[run].B == v {
			run++
		}
		switch {
		case s.f32 != nil:
			sum += s.evalEpolNearRunF32(near[:run], v)
		case s.cfg.Math == gb.Approximate:
			sum += s.evalEpolNearRunApprox(near[:run], v)
		default:
			sum += s.evalEpolNearRun(near[:run], v)
		}
		near = near[run:]
	}
	return sum
}

// EvalEpolNearEntryValues evaluates near entries of ONE driver segment in
// isolation, overwriting out[k] (parallel to near) with entry k's value
// for every k in idxs — or for every entry when idxs is nil. All entries
// of a driver segment share the driver's v-leaf, which lets the vector
// path pack the v-tile once for the whole batch instead of once per
// entry. Each value is bitwise the value a single-entry EvalEpolNearRange
// call produces — the canonical per-entry arithmetic that incremental
// entry caches are defined by.
func (s *EpolSolver) EvalEpolNearEntryValues(near []NodePair, idxs []int32, out []float64) {
	if len(near) == 0 {
		return
	}
	if hasAVX2FMA && s.f32 == nil && s.cfg.Math != gb.Approximate && len(s.uPos) > 0 {
		s.evalEpolNearEntryValuesVec(near, idxs, out)
		return
	}
	v := near[0].B
	if idxs == nil {
		for k := range near {
			out[k] = s.evalEpolNearEntryScalar(near, k, v)
		}
		return
	}
	for _, k := range idxs {
		out[k] = s.evalEpolNearEntryScalar(near, int(k), v)
	}
}

// evalEpolNearEntryScalar is the non-vector single-entry evaluation, with
// exactly the dispatch EvalEpolNearRange applies to a one-entry range.
func (s *EpolSolver) evalEpolNearEntryScalar(near []NodePair, k int, v int32) float64 {
	switch {
	case s.f32 != nil:
		return s.evalEpolNearRunF32(near[k:k+1], v)
	case s.cfg.Math == gb.Approximate:
		return s.evalEpolNearRunApprox(near[k:k+1], v)
	default:
		return s.evalEpolNearRun(near[k:k+1], v)
	}
}

// EvalEpolFarRange sums the far entries [lo, hi) of the list.
func (s *EpolSolver) EvalEpolFarRange(l *InteractionList, lo, hi int) float64 {
	var sum float64
	if s.f32 != nil {
		for _, p := range l.Far[lo:hi] {
			sum += s.evalEpolFarPairF32(p.A, p.B)
		}
		return sum
	}
	for _, p := range l.Far[lo:hi] {
		sum += s.EvalEpolFarPair(p.A, p.B)
	}
	return sum
}

// EvalEpolList evaluates a whole energy interaction list serially and
// returns the raw ordered-pair sum (scale by EnergyScale) plus the list's
// Stats.
func (s *EpolSolver) EvalEpolList(l *InteractionList) (float64, Stats) {
	return s.EvalEpolNearRange(l, 0, len(l.Near)) + s.EvalEpolFarRange(l, 0, len(l.Far)), l.stats
}
