package core

import (
	"octgb/internal/gb"
	"octgb/internal/octree"
)

// This file implements the ATOM-BASED-WORK-DIVISION variants (§IV-A): each
// rank owns a contiguous range of atoms (in tree order) rather than a range
// of leaves. A far-field acceptance can only be collected at a tree node
// when that node lies entirely inside the rank's atom range; nodes
// straddling a range boundary must fall back to per-atom approximation.
// Because different P produce different boundaries, the places where
// approximations are collected — and therefore the error — change with the
// number of processes, which is exactly the instability the paper reports
// for atom-based division (and the reason node-based division is preferred).

// AccumulateQLeafAtomRange is AccumulateQLeaf restricted to atoms with
// tree-order index in [lo, hi).
func (s *BornSolver) AccumulateQLeafAtomRange(qLeaf int, lo, hi int32, sNode, sAtom []float64) Stats {
	var st Stats
	qn := s.TQ.LeafIdx[qLeaf]
	s.approxIntegralsRange(0, qn, lo, hi, sNode, sAtom, &st)
	return st
}

func (s *BornSolver) approxIntegralsRange(a, q, lo, hi int32, sNode, sAtom []float64, st *Stats) {
	an := &s.TA.Nodes[a]
	if an.Start+an.Count <= lo || an.Start >= hi {
		return // disjoint from this rank's atoms
	}
	st.NodesVisited++
	qn := &s.TQ.Nodes[q]
	d2 := an.Center.Dist2(qn.Center)
	if wellSeparated2(d2, an.Radius, qn.Radius, s.sepK2) {
		if an.Start >= lo && an.Start+an.Count <= hi {
			// Node fully owned: collect at the node as usual.
			diff := qn.Center.Sub(an.Center)
			sNode[a] += s.nodeWN[q].Dot(diff) * s.kernel(d2)
			st.FarEval++
			return
		}
		// Straddling node: approximate per owned atom against the
		// pseudo q-point. The approximation point differs from the node
		// center, so the result (and error) depends on the boundary.
		from, to := clampRange(an.Start, an.Start+an.Count, lo, hi)
		for i := from; i < to; i++ {
			dv := qn.Center.Sub(s.TA.Points[i])
			sAtom[i] += s.nodeWN[q].Dot(dv) * s.kernel(dv.Norm2())
			st.FarEval++
		}
		return
	}
	if an.Leaf {
		from, to := clampRange(an.Start, an.Start+an.Count, lo, hi)
		qlo, qhi := s.TQ.PointRange(q)
		for i := from; i < to; i++ {
			p := s.TA.Points[i]
			var acc float64
			for j := qlo; j < qhi; j++ {
				dv := s.TQ.Points[j].Sub(p)
				d2 := dv.Norm2()
				if d2 < 1e-12 {
					continue
				}
				acc += s.wn[j].Dot(dv) * s.kernel(d2)
			}
			sAtom[i] += acc
		}
		st.NearPairs += int64(to-from) * int64(qhi-qlo)
		return
	}
	for _, ch := range an.Children {
		if ch != octree.NoChild {
			s.approxIntegralsRange(ch, q, lo, hi, sNode, sAtom, st)
		}
	}
}

func clampRange(start, end, lo, hi int32) (int32, int32) {
	if start < lo {
		start = lo
	}
	if end > hi {
		end = hi
	}
	return start, end
}

// LeafEnergyRows is LeafEnergy with the leaf-side (row) atoms restricted to
// tree-order range [lo, hi): the rank owns atom rows rather than whole
// leaves. The far-field term is linear in the row charges, so summing the
// row-restricted results over all ranks reproduces the full sum; only the
// work distribution changes.
func (s *EpolSolver) LeafEnergyRows(vLeaf int, lo, hi int32) (float64, Stats) {
	var st Stats
	v := s.T.LeafIdx[vLeaf]
	vn := &s.T.Nodes[v]
	from, to := clampRange(vn.Start, vn.Start+vn.Count, lo, hi)
	if from >= to {
		return 0, st
	}
	e := s.epolVisitRows(0, v, from, to, &st)
	return e, st
}

func (s *EpolSolver) epolVisitRows(u, v int32, from, to int32, st *Stats) float64 {
	st.NodesVisited++
	un := &s.T.Nodes[u]
	vn := &s.T.Nodes[v]
	if un.Leaf {
		ulo, uhi := s.T.PointRange(u)
		var sum float64
		for i := ulo; i < uhi; i++ {
			pi, qi, ri := s.T.Points[i], s.q[i], s.R[i]
			for j := from; j < to; j++ {
				if i == j {
					sum += qi * qi / ri
					continue
				}
				sum += gb.PairTerm(qi, s.q[j], pi.Dist2(s.T.Points[j]), ri, s.R[j], s.cfg.Math)
			}
		}
		st.NearPairs += int64(uhi-ulo) * int64(to-from)
		return sum
	}
	d2 := un.Center.Dist2(vn.Center)
	if epolFar2(d2, un.Radius, vn.Radius, s.sep2) {
		return s.binApproxRows(u, v, d2, from, to, st)
	}
	var sum float64
	for _, ch := range un.Children {
		if ch != octree.NoChild {
			sum += s.epolVisitRows(ch, v, from, to, st)
		}
	}
	return sum
}

// binApproxRows is binApprox with the V-side bins built from only the
// owned rows of the leaf.
func (s *EpolSolver) binApproxRows(u, v int32, d2 float64, from, to int32, st *Stats) float64 {
	// Build the partial V bins on the stack (M is small).
	vb := make([]float64, s.M)
	for j := from; j < to; j++ {
		vb[s.binIndex(j)] += s.q[j]
	}
	ub := s.bins[int(u)*s.M : (int(u)+1)*s.M]
	var sum float64
	for i := 0; i < s.M; i++ {
		qi := ub[i]
		if qi == 0 {
			continue
		}
		for j := 0; j < s.M; j++ {
			qj := vb[j]
			if qj == 0 {
				continue
			}
			sum += s.binPairTerm(d2, i+j, qi, qj)
			st.FarEval++
		}
	}
	return sum
}
