package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the fault-injection half of the failure model (failure.go):
// a deterministic chaos wrapper that sits between a communicator and the
// collective algorithms and injects faults from an explicit schedule — the
// tool the clusterchaos harness uses to prove the engines either complete
// with bit-identical energies or fail cleanly with ErrRankFailed.
//
// The wrapper works at the tagged pairwise layer shared by the in-process
// group and the TCP mesh, so the same FaultPlan exercises both transports.
// Every message is framed with one extra header word carrying a per-link
// sequence number and a CRC32C of the payload:
//
//	header = float64frombits(uint64(seq)<<32 | uint64(crc32c(payload)))
//
// The receiver drops frames whose CRC does not match (corruption,
// truncation) and frames whose sequence number it has already accepted
// (duplicates). A sender that injects a corrupting fault always follows it
// with the clean frame — the deterministic stand-in for a NACK/retransmit
// round-trip — so delay, duplicate, corrupt and truncate faults are fully
// absorbed by the protocol and the computation's results are bit-identical
// to a fault-free run. Crash and drop faults are not absorbable: they
// surface as ErrRankFailed on the crashed rank's peers via the receive
// timeout, and on the faulty rank itself immediately.

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// FaultDelay stalls the rank for Fault.Delay before the operation.
	// Absorbable: results must match the fault-free run exactly.
	FaultDelay FaultKind = iota
	// FaultDuplicate delivers the next outgoing frame twice. Absorbable
	// (the receiver deduplicates by sequence number).
	FaultDuplicate
	// FaultCorrupt flips payload bits in a copy of the next outgoing frame
	// and sends it ahead of the clean frame. Absorbable (CRC32C mismatch
	// drops the bad copy).
	FaultCorrupt
	// FaultTruncate sends a truncated copy of the next outgoing frame ahead
	// of the clean frame. Absorbable (CRC32C mismatch).
	FaultTruncate
	// FaultDrop severs the link to Fault.Peer: subsequent sends to it are
	// discarded, receives from it fail immediately. NOT absorbable: the
	// collective in flight (and typically the whole run) must surface
	// ErrRankFailed within the receive timeout.
	FaultDrop
	// FaultCrash kills the rank: every subsequent operation on it returns
	// ErrRankFailed{Rank: self}, and its silence surfaces on every peer as
	// ErrRankFailed{Rank: crashed} via the receive timeout. NOT absorbable.
	FaultCrash
)

func (k FaultKind) String() string {
	switch k {
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultDrop:
		return "drop"
	case FaultCrash:
		return "crash"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Absorbable reports whether the protocol is required to hide this fault
// completely (bit-identical results) rather than fail cleanly.
func (k FaultKind) Absorbable() bool { return k != FaultDrop && k != FaultCrash }

// Fault is one scheduled injection. Frame counts the faulty rank's chaos
// operations (sends and receives, in program order), which makes a plan
// deterministic for a fixed computation: operation k of rank r is the same
// message in every run. Frame-targeted send faults (duplicate, corrupt,
// truncate) that land on a receive operation are held and applied to the
// rank's next send.
type Fault struct {
	Kind  FaultKind
	Rank  int           // rank that injects the fault
	Frame int           // operation index on that rank at which it fires
	Peer  int           // FaultDrop: link to sever (-1 = peer of the triggering op)
	Delay time.Duration // FaultDelay: stall duration
}

// FaultPlan is a deterministic fault schedule plus the failure-detection
// timeout under which it runs. The same plan drives every rank: each
// rank's wrapper applies only the faults addressed to it.
type FaultPlan struct {
	// Timeout bounds every receive; a peer silent past it is reported as
	// failed. Zero disables the bound (only safe for absorbable-only plans).
	Timeout time.Duration
	Faults  []Fault
}

// forRank extracts the faults addressed to rank r, ordered by frame index.
func (p *FaultPlan) forRank(r int) []Fault {
	var fs []Fault
	for _, f := range p.Faults {
		if f.Rank == r {
			fs = append(fs, f)
		}
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Frame < fs[j].Frame })
	return fs
}

// errInjectedCrash / errInjectedDrop mark faults the plan itself caused.
var (
	errInjectedCrash = errors.New("cluster: injected rank crash")
	errInjectedDrop  = errors.New("cluster: injected connection drop")
)

// timedPairwise is the substrate the chaos wrapper needs: the tagged
// pairwise layer plus a bounded receive. localComm and the TCP meshComm
// implement it; the star transports do not (they have no pairwise layer to
// wrap).
type timedPairwise interface {
	pairwise
	recvTagTimeout(from, tag int, d time.Duration) ([]float64, error)
}

// WrapChaos wraps a communicator with the fault-injection layer. The inner
// communicator must expose the tagged pairwise substrate (an in-process
// LocalGroup rank or a TCP mesh rank — not a star transport). Collectives
// on the returned Comm always run the topology-aware algorithms of
// collectives.go over the chaos protocol, regardless of the inner group's
// configuration; the wrapper also implements Messenger and NonBlocking.
//
// A nil or empty plan yields a transparent wrapper that still speaks the
// seq+CRC framing — the fault-free baseline of a chaos experiment runs
// through the identical code path as the faulty runs.
func WrapChaos(inner Comm, plan *FaultPlan) (Comm, error) {
	tp, ok := inner.(timedPairwise)
	if !ok {
		return nil, fmt.Errorf("cluster: WrapChaos: %T does not expose the pairwise layer (star transports cannot be wrapped)", inner)
	}
	if plan == nil {
		plan = &FaultPlan{}
	}
	cc := &chaosComm{
		inner:   tp,
		timeout: plan.Timeout,
		faults:  plan.forRank(inner.Rank()),
		dead:    make(map[int]bool),
		sendSeq: make(map[uint64]uint32),
		recvSeq: make(map[uint64]uint32),
	}
	cc.coll.pw = cc
	return cc, nil
}

// chaosComm implements Comm, Messenger and NonBlocking over the chaos
// protocol. All injection state is guarded by mu; the blocking part of a
// receive runs outside the lock.
type chaosComm struct {
	inner   timedPairwise
	timeout time.Duration
	coll    coll

	crashed atomic.Bool

	mu      sync.Mutex
	frame   int         // operations executed so far on this rank
	faults  []Fault     // pending, ordered by Frame
	pending []FaultKind // send faults held until the next send
	dead    map[int]bool
	sendSeq map[uint64]uint32
	recvSeq map[uint64]uint32
}

func seqKey(peer, tag int) uint64 { return uint64(uint32(peer))<<32 | uint64(uint32(tag)) }

// crcOfWords is the payload checksum of the chaos framing: CRC32C over the
// little-endian bytes of the words, matching what the wire transport would
// see.
func crcOfWords(words []float64) uint32 {
	var b [8]byte
	crc := uint32(0)
	for _, w := range words {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
		crc = crc32.Update(crc, crcTable, b[:])
	}
	return crc
}

func chaosHeader(seq uint32, crc uint32) float64 {
	return math.Float64frombits(uint64(seq)<<32 | uint64(crc))
}

func splitChaosHeader(h float64) (seq uint32, crc uint32) {
	bits := math.Float64bits(h)
	return uint32(bits >> 32), uint32(bits)
}

// step advances the operation counter and applies the faults that are due.
// It returns the actions the caller must take outside the lock: a delay to
// sleep, the send faults to apply to the current operation (empty unless
// sending), and whether the rank is now crashed or the current peer's link
// is dead.
func (cc *chaosComm) step(peer int, sending bool) (delay time.Duration, sendFaults []FaultKind) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	idx := cc.frame
	cc.frame++
	for len(cc.faults) > 0 && cc.faults[0].Frame <= idx {
		f := cc.faults[0]
		cc.faults = cc.faults[1:]
		switch f.Kind {
		case FaultDelay:
			delay += f.Delay
		case FaultCrash:
			cc.crashed.Store(true)
		case FaultDrop:
			p := f.Peer
			if p < 0 {
				p = peer
			}
			cc.dead[p] = true
		default: // duplicate, corrupt, truncate: next send
			cc.pending = append(cc.pending, f.Kind)
		}
	}
	if sending && len(cc.pending) > 0 {
		sendFaults = cc.pending
		cc.pending = nil
	}
	return delay, sendFaults
}

func (cc *chaosComm) linkDead(peer int) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead[peer]
}

func (cc *chaosComm) Rank() int { return cc.inner.Rank() }
func (cc *chaosComm) Size() int { return cc.inner.Size() }

// sendTag frames and sends one message, applying any due send faults. A
// faulty copy (corrupt, truncate) is always followed by the clean frame.
func (cc *chaosComm) sendTag(to, tag int, data []float64) error {
	if cc.crashed.Load() {
		return ErrRankFailed{Rank: cc.Rank(), Cause: errInjectedCrash}
	}
	delay, sendFaults := cc.step(to, true)
	if delay > 0 {
		time.Sleep(delay)
	}
	if cc.crashed.Load() {
		return ErrRankFailed{Rank: cc.Rank(), Cause: errInjectedCrash}
	}
	if cc.linkDead(to) {
		// Severed link: the send vanishes. The receiver discovers the
		// failure through its timeout; reporting success here mirrors a
		// kernel accepting bytes into a buffer nobody will ever read.
		return nil
	}

	cc.mu.Lock()
	key := seqKey(to, tag)
	seq := cc.sendSeq[key]
	cc.sendSeq[key] = seq + 1
	cc.mu.Unlock()

	frame := make([]float64, 1+len(data))
	frame[0] = chaosHeader(seq, crcOfWords(data))
	copy(frame[1:], data)

	for _, k := range sendFaults {
		switch k {
		case FaultDuplicate:
			if err := cc.inner.sendTag(to, tag, frame); err != nil {
				return err
			}
		case FaultCorrupt:
			bad := append([]float64(nil), frame...)
			if len(bad) > 1 {
				bad[len(bad)-1] = math.Float64frombits(math.Float64bits(bad[len(bad)-1]) ^ 1)
			} else {
				bad[0] = math.Float64frombits(math.Float64bits(bad[0]) ^ 1)
			}
			if err := cc.inner.sendTag(to, tag, bad); err != nil {
				return err
			}
		case FaultTruncate:
			if err := cc.inner.sendTag(to, tag, frame[:len(frame)-1]); err != nil {
				return err
			}
		}
	}
	return cc.inner.sendTag(to, tag, frame)
}

// recvTag receives the next in-sequence frame, discarding corrupt,
// truncated and duplicate deliveries, and converting peer silence past the
// timeout (or a severed link) into ErrRankFailed.
func (cc *chaosComm) recvTag(from, tag int) ([]float64, error) {
	if cc.crashed.Load() {
		return nil, ErrRankFailed{Rank: cc.Rank(), Cause: errInjectedCrash}
	}
	delay, _ := cc.step(from, false)
	if delay > 0 {
		time.Sleep(delay)
	}
	if cc.crashed.Load() {
		return nil, ErrRankFailed{Rank: cc.Rank(), Cause: errInjectedCrash}
	}
	for {
		if cc.linkDead(from) {
			return nil, ErrRankFailed{Rank: from, Cause: errInjectedDrop}
		}
		msg, err := cc.inner.recvTagTimeout(from, tag, cc.timeout)
		if err != nil {
			if errors.Is(err, errRecvTimeout) {
				return nil, ErrRankFailed{Rank: from, Cause: err}
			}
			return nil, err
		}
		if len(msg) < 1 {
			putBuf(msg) // headerless garbage (truncated empty frame)
			continue
		}
		seq, crc := splitChaosHeader(msg[0])
		payload := msg[1:]
		if crcOfWords(payload) != crc {
			putBuf(msg) // corrupt or truncated: wait for the clean copy
			continue
		}
		cc.mu.Lock()
		key := seqKey(from, tag)
		want := cc.recvSeq[key]
		if seq < want {
			cc.mu.Unlock()
			putBuf(msg) // duplicate of an already-accepted frame
			continue
		}
		if seq > want {
			cc.mu.Unlock()
			putBuf(msg)
			return nil, fmt.Errorf("cluster: chaos: lost frame from rank %d tag %d (got seq %d, want %d)", from, tag, seq, want)
		}
		cc.recvSeq[key] = want + 1
		cc.mu.Unlock()
		out := getBuf(len(payload))
		copy(out, payload)
		putBuf(msg)
		return out, nil
	}
}

func (cc *chaosComm) Barrier() error                   { return cc.coll.Barrier() }
func (cc *chaosComm) AllreduceSum(buf []float64) error { return cc.coll.AllreduceSum(buf) }
func (cc *chaosComm) AllreduceMax(buf []float64) error { return cc.coll.AllreduceMax(buf) }
func (cc *chaosComm) Allgatherv(segment []float64, counts []int, out []float64) error {
	return cc.coll.Allgatherv(segment, counts, out)
}
func (cc *chaosComm) Bcast(buf []float64, root int) error { return cc.coll.Bcast(buf, root) }

func (cc *chaosComm) IAllreduceSum(buf []float64) Request { return cc.coll.IAllreduceSum(buf) }
func (cc *chaosComm) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	return cc.coll.IAllgatherv(segment, counts, out)
}

func (cc *chaosComm) Send(to int, data []float64) error {
	if to < 0 || to >= cc.Size() {
		return fmt.Errorf("cluster: send to invalid rank %d", to)
	}
	return cc.sendTag(to, tagP2P, data)
}

func (cc *chaosComm) Recv(from int) ([]float64, error) {
	if from < 0 || from >= cc.Size() {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d", from)
	}
	return cc.recvTag(from, tagP2P)
}
