package cluster

import (
	"fmt"
	"testing"
)

func TestP2PBasicExchange(t *testing.T) {
	err := RunLocal(4, nil, func(c Comm) error {
		m := c.(Messenger)
		// Ring: send to (rank+1)%4, receive from (rank+3)%4.
		if err := m.Send((c.Rank()+1)%4, []float64{float64(c.Rank()), 42}); err != nil {
			return err
		}
		got, err := m.Recv((c.Rank() + 3) % 4)
		if err != nil {
			return err
		}
		if got[0] != float64((c.Rank()+3)%4) || got[1] != 42 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestP2POrderingPreserved(t *testing.T) {
	err := RunLocal(2, nil, func(c Comm) error {
		m := c.(Messenger)
		if c.Rank() == 0 {
			for i := 0; i < 200; i++ {
				if err := m.Send(1, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 200; i++ {
			got, err := m.Recv(0)
			if err != nil {
				return err
			}
			if got[0] != float64(i) {
				return fmt.Errorf("message %d out of order: %v", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestP2PAllSendBeforeAnyRecvNoDeadlock(t *testing.T) {
	// The exchange pattern of the distributed-data engine: every rank
	// sends everything to everyone, then receives. Unbounded mailboxes
	// must make this deadlock-free even with many messages per pair.
	const P, msgs = 3, 500
	err := RunLocal(P, nil, func(c Comm) error {
		m := c.(Messenger)
		for to := 0; to < P; to++ {
			if to == c.Rank() {
				continue
			}
			for i := 0; i < msgs; i++ {
				if err := m.Send(to, []float64{float64(i)}); err != nil {
					return err
				}
			}
		}
		for from := 0; from < P; from++ {
			if from == c.Rank() {
				continue
			}
			for i := 0; i < msgs; i++ {
				got, err := m.Recv(from)
				if err != nil {
					return err
				}
				if got[0] != float64(i) {
					return fmt.Errorf("from %d msg %d: %v", from, i, got[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestP2PSendCopiesData(t *testing.T) {
	err := RunLocal(2, nil, func(c Comm) error {
		m := c.(Messenger)
		if c.Rank() == 0 {
			buf := []float64{1}
			if err := m.Send(1, buf); err != nil {
				return err
			}
			buf[0] = 999 // mutate after send: receiver must see 1
			return nil
		}
		got, err := m.Recv(0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			return fmt.Errorf("send aliased caller buffer: %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestP2PInvalidRanks(t *testing.T) {
	err := RunLocal(2, nil, func(c Comm) error {
		m := c.(Messenger)
		if err := m.Send(5, nil); err == nil {
			return fmt.Errorf("send to invalid rank accepted")
		}
		if _, err := m.Recv(-1); err == nil {
			return fmt.Errorf("recv from invalid rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
