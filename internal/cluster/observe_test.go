package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"octgb/internal/obs"
	"octgb/internal/testutil"
)

// TestTCPObserverRecordsCollectives covers the transport side of the
// observability wiring: a meshed TCP group running with WithObserver must
// record per-kind collective latency/bytes and, once the heartbeat writers
// have been alive for a few periods, heartbeat inter-arrival gaps — and
// the whole registry must render as valid exposition.
func TestTCPObserverRecordsCollectives(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	ob := obs.New()
	timeout := 300 * time.Millisecond
	opts := []TCPOption{WithObserver(ob), WithCommTimeout(timeout), WithMesh()}
	errs := startTCPGroupOpts(t, 3, opts, func(c Comm) error {
		buf := []float64{float64(c.Rank() + 1)}
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		if buf[0] != 6 {
			return fmt.Errorf("allreduce: got %v, want 6", buf[0])
		}
		counts := []int{1, 1, 1}
		if err := c.Allgatherv([]float64{float64(c.Rank())}, counts, make([]float64, 3)); err != nil {
			return err
		}
		// Sit past several heartbeat periods (timeout/3) so inter-arrival
		// gaps get recorded before the final barrier.
		time.Sleep(timeout)
		return c.Barrier()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	var sb strings.Builder
	if err := ob.Reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"octgb_cluster_collective_seconds",
		"octgb_cluster_collective_bytes_total",
		`kind="allreduce"`,
		`kind="allgatherv"`,
		`kind="barrier"`,
		"octgb_cluster_heartbeat_gap_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("TCP-transport metrics missing %q", want)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("TCP-transport metrics render invalid exposition: %v", err)
	}
}
