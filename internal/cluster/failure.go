package cluster

import (
	"errors"
	"fmt"
	"time"
)

// This file defines the cluster layer's failure model. The transports were
// originally written for a well-behaved interconnect: reads blocked forever
// and any I/O error was fatal and untyped. The hardened model is:
//
//   - A silent peer is a FAILED peer. When a transport is created with a
//     communication timeout (WithCommTimeout on TCP, FaultPlan.Timeout on
//     the chaos wrapper), every frame read carries a deadline and every
//     link runs a heartbeat writer at a fraction of that timeout, so a
//     merely-slow peer (long compute phase between collectives) keeps its
//     links warm while a dead one trips the deadline.
//   - A tripped deadline is converted into the typed ErrRankFailed carrying
//     the rank of the silent peer, and that error is surfaced through every
//     collective and point-to-point receive (the mesh poisons the peer's
//     mailbox, the star transports return it from the blocked read), so
//     callers can tell "rank 3 died" from "my arguments were wrong".
//   - Dial-time failures are retried with bounded exponential backoff plus
//     deterministic jitter before they are reported.
//   - Mesh construction failures degrade instead of aborting: if any worker
//     cannot complete its pairwise links, the whole group falls back to the
//     star topology through the root (see tcp.go's verdict round).

// ErrRankFailed reports that a peer rank went silent past the configured
// communication timeout or its connection was lost. It is returned (possibly
// wrapped) by collectives and receives on every transport with failure
// detection enabled; unwrap with errors.As:
//
//	var rf cluster.ErrRankFailed
//	if errors.As(err, &rf) { log.Printf("rank %d failed", rf.Rank) }
type ErrRankFailed struct {
	// Rank is the rank believed to have failed. On the rank that crashed
	// itself (chaos harness), Rank is its own rank.
	Rank int
	// Cause is the underlying error (deadline exceeded, connection reset,
	// injected crash), if any.
	Cause error
}

func (e ErrRankFailed) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("cluster: rank %d failed: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("cluster: rank %d failed", e.Rank)
}

func (e ErrRankFailed) Unwrap() error { return e.Cause }

// errRecvTimeout is the internal sentinel a timed mailbox take returns; the
// caller (chaos wrapper, TCP reader) attributes it to a peer and converts it
// into ErrRankFailed.
var errRecvTimeout = errors.New("cluster: receive timed out")

// FailureDetector is implemented by transports that track peer liveness
// (the TCP mesh and the star root when created with WithCommTimeout).
// AliveRanks reports, per rank, whether the peer has been heard from —
// any frame, heartbeats included — within twice the communication timeout.
// The local rank is always alive; without a timeout every rank is reported
// alive.
type FailureDetector interface {
	AliveRanks() []bool
}

// heartbeatInterval derives the heartbeat period from the communication
// timeout. It is strictly smaller than the timeout (one third), so a live
// peer always lands at least two heartbeats inside any read deadline window
// and slow compute never masquerades as rank failure.
func heartbeatInterval(timeout time.Duration) time.Duration {
	iv := timeout / 3
	if iv <= 0 {
		iv = time.Nanosecond
	}
	return iv
}
