package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"octgb/internal/testutil"
)

// Tests for the failure-hardened transport: deadlines, heartbeats, typed
// rank failures, and the Topo→Star mesh degradation.

// TestHeartbeatIntervalBelowTimeout is the property behind "slow is not
// dead": for any sane timeout the heartbeat period is strictly smaller, so
// a live peer always lands beats inside every read-deadline window.
func TestHeartbeatIntervalBelowTimeout(t *testing.T) {
	for _, d := range []time.Duration{
		time.Microsecond, time.Millisecond, 50 * time.Millisecond,
		time.Second, 30 * time.Second, 10 * time.Minute,
	} {
		iv := heartbeatInterval(d)
		if iv <= 0 || iv >= d {
			t.Errorf("heartbeatInterval(%v) = %v, want in (0, %v)", d, iv, d)
		}
	}
}

// TestReadFrameTimeoutReturnsErrRankFailed: a link whose peer sends
// nothing — no frames, no heartbeats — trips the read deadline and the
// error is the typed rank failure, attributed to the peer.
func TestReadFrameTimeoutReturnsErrRankFailed(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rc := newRankConn(a)
	rc.peer = 3
	rc.timeout = 50 * time.Millisecond
	start := time.Now()
	_, _, _, err := rc.readFrame()
	var rf ErrRankFailed
	if !errors.As(err, &rf) {
		t.Fatalf("got %v, want ErrRankFailed", err)
	}
	if rf.Rank != 3 {
		t.Fatalf("blamed rank %d, want 3", rf.Rank)
	}
	if el := time.Since(start); el > 2*rc.timeout {
		t.Fatalf("timeout took %v, want ≈%v", el, rc.timeout)
	}
}

// startTCPGroupOpts is startTCPGroup with transport options and per-rank
// error reporting (fatal errors are not flattened, so tests can assert on
// individual ranks).
func startTCPGroupOpts(t *testing.T, size int, opts []TCPOption, fn func(c Comm) error) []error {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	errs := make([]error, size)
	comms := make([]Comm, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := DialTCP(addr, r, size, opts...)
			if err != nil {
				errs[r] = err
				return
			}
			comms[r] = c
			errs[r] = fn(c)
		}(r)
	}
	root, err := NewTCPRoot(ln, size, opts...)
	if err != nil {
		t.Fatal(err)
	}
	comms[0] = root
	errs[0] = fn(root)
	wg.Wait()
	for _, c := range comms {
		if cl, ok := c.(io.Closer); ok && cl != nil {
			cl.Close()
		}
	}
	return errs
}

// TestTCPStarSlowWorkerIsNotFailed: the satellite "slow-writer" coverage
// for the non-mesh path. A worker that computes for several multiples of
// CommTimeout before joining the collective must NOT be flagged — its
// heartbeat writer (period < timeout) keeps the root's read deadline
// refreshed the whole time.
func TestTCPStarSlowWorkerIsNotFailed(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	timeout := 200 * time.Millisecond
	opts := []TCPOption{WithCommTimeout(timeout)}
	errs := startTCPGroupOpts(t, 3, opts, func(c Comm) error {
		if c.Rank() == 2 {
			time.Sleep(3 * timeout) // "slow compute", far past the deadline
		}
		buf := []float64{float64(c.Rank())}
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		if buf[0] != 3 {
			return fmt.Errorf("rank %d: sum %v", c.Rank(), buf[0])
		}
		return c.Barrier()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed although every rank was alive: %v", r, err)
		}
	}
}

// TestTCPStarSilentWorkerFailsTyped: a worker that is transport-silent
// (no frames AND no heartbeats — a hung process or a network partition,
// simulated by a worker running without failure detection) is flagged as
// ErrRankFailed at the root within the timeout.
func TestTCPStarSilentWorkerFailsTyped(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	timeout := 200 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	silentDone := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer close(silentDone)
		// No WithCommTimeout: this worker sends no heartbeats — from the
		// root's perspective it is a partitioned peer.
		c, err := DialTCP(addr, 1, 2)
		if err != nil {
			return
		}
		<-release
		c.(io.Closer).Close()
	}()
	root, err := NewTCPRoot(ln, 2, WithCommTimeout(timeout))
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{1}
	start := time.Now()
	err = root.AllreduceSum(buf)
	elapsed := time.Since(start)
	var rf ErrRankFailed
	if !errors.As(err, &rf) {
		t.Fatalf("got %v, want ErrRankFailed", err)
	}
	if rf.Rank != 1 {
		t.Fatalf("blamed rank %d, want 1", rf.Rank)
	}
	if elapsed > 2*timeout {
		t.Fatalf("detection took %v, budget 2×%v", elapsed, timeout)
	}
	if fd, ok := root.(FailureDetector); ok {
		alive := fd.AliveRanks()
		if !alive[0] {
			t.Error("root reported itself dead")
		}
	} else {
		t.Error("star root does not implement FailureDetector")
	}
	close(release)
	<-silentDone
	root.(io.Closer).Close()
}

// TestMeshDialFaultDegradesToStar: when a worker cannot build its pairwise
// links, the verdict round must downgrade the WHOLE group to the star
// topology — every rank gets a working (collective-capable, Messenger-free)
// star communicator, and the downgrade is logged.
func TestMeshDialFaultDegradesToStar(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	testMeshDialFault = func(rank, peer int) bool { return rank == 2 && peer == 1 }
	defer func() { testMeshDialFault = nil }()

	var logMu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	opts := []TCPOption{WithMesh(), WithCommTimeout(300 * time.Millisecond), WithLogger(logf)}
	errs := startTCPGroupOpts(t, 3, opts, func(c Comm) error {
		if _, isMesh := c.(Messenger); isMesh {
			return fmt.Errorf("rank %d: still on the mesh transport after a mesh build failure", c.Rank())
		}
		buf := []float64{float64(c.Rank() + 1)}
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		if buf[0] != 6 {
			return fmt.Errorf("rank %d: sum %v", c.Rank(), buf[0])
		}
		return c.Barrier()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	logMu.Lock()
	defer logMu.Unlock()
	degraded := false
	for _, l := range logs {
		if strings.Contains(l, "degrading") {
			degraded = true
		}
	}
	if !degraded {
		t.Errorf("downgrade not logged; logs: %q", logs)
	}
}

// TestMeshAliveRanksTracksFailure: the mesh failure detector reports a
// closed peer as dead within ~2× the timeout, while live peers (kept warm
// by heartbeats alone — no collectives running) stay alive.
func TestMeshAliveRanksTracksFailure(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	timeout := 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	opts := []TCPOption{WithMesh(), WithCommTimeout(timeout)}

	const p = 3
	comms := make([]Comm, p)
	var wg sync.WaitGroup
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r], _ = DialTCP(addr, r, p, opts...)
		}(r)
	}
	comms[0], err = NewTCPRoot(ln, p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for r := 1; r < p; r++ {
		if comms[r] == nil {
			t.Fatalf("rank %d failed to join", r)
		}
	}
	defer func() {
		for _, c := range comms {
			if cl, ok := c.(io.Closer); ok {
				cl.Close()
			}
		}
	}()

	fd, ok := comms[0].(FailureDetector)
	if !ok {
		t.Fatal("mesh comm does not implement FailureDetector")
	}
	time.Sleep(3 * timeout) // idle: only heartbeats keep links warm
	for r, alive := range fd.AliveRanks() {
		if !alive {
			t.Fatalf("rank %d reported dead while alive and idle", r)
		}
	}
	comms[2].(io.Closer).Close()
	deadline := time.Now().Add(10 * timeout)
	for {
		alive := fd.AliveRanks()
		if !alive[2] && alive[0] && alive[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank 2 closed but liveness is %v", alive)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
