package cluster

import (
	"strconv"
	"time"

	"octgb/internal/obs"
)

// Metric names and help strings recorded by the transports (full inventory
// in DESIGN.md §10).
const (
	collLatMetric   = "octgb_cluster_collective_seconds"
	collLatHelp     = "Wall-clock latency of one completed collective on one rank."
	collBytesMetric = "octgb_cluster_collective_bytes_total"
	collBytesHelp   = "Payload bytes moved through completed collectives, per kind and rank."
	hbGapMetric     = "octgb_cluster_heartbeat_gap_seconds"
	hbGapHelp       = "Spacing between consecutive heartbeat frames received from a peer. Heartbeats are one-way (no echo), so the gap distribution — nominally timeout/3 — is the liveness health signal: a fattening tail means the peer or the link is slowing toward the failure deadline."
	degradeMetric   = "octgb_cluster_degradations_total"
	degradeHelp     = "Topo-to-Star collective degradation events (mesh build failures falling back to the root star)."
)

// recordCollective records one completed collective: latency histogram,
// payload byte counter and a trace span, all labeled {kind, rank}. No-op on
// a nil observer — the label concatenation only happens when recording.
func recordCollective(ob *obs.Observer, kind string, rank, words int, start time.Time) {
	if ob == nil {
		return
	}
	d := time.Since(start)
	labels := `kind="` + kind + `",rank="` + strconv.Itoa(rank) + `"`
	ob.Histogram(collLatMetric, labels, collLatHelp).Observe(d)
	ob.Counter(collBytesMetric, labels, collBytesHelp).Add(int64(words) * 8)
	ob.Record("cluster."+kind, 0, rank, start, d)
}

// recordHeartbeatGap records the spacing between two consecutive heartbeat
// frames from peer. Called at heartbeat rate (timeout/3), so the registry
// lookup per observation is negligible.
func recordHeartbeatGap(ob *obs.Observer, peer int, gap time.Duration) {
	if ob == nil || peer < 0 {
		return
	}
	ob.Histogram(hbGapMetric, `peer="`+strconv.Itoa(peer)+`"`, hbGapHelp).Observe(gap)
}

// recordDegradation counts one Topo→Star fallback.
func recordDegradation(ob *obs.Observer) {
	if ob == nil {
		return
	}
	ob.Counter(degradeMetric, "", degradeHelp).Inc()
}
