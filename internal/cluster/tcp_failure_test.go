package cluster

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// Failure injection for the TCP transport: malformed handshakes and
// protocol violations must produce errors, not hangs or crashes.

func TestTCPRootRejectsBadMagic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		_, err := NewTCPRoot(ln, 2)
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], 0xDEAD)
	binary.LittleEndian.PutUint32(hello[4:], 1)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("bad magic accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("root hung on bad magic")
	}
}

func TestTCPRootRejectsDuplicateRank(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		_, err := NewTCPRoot(ln, 3)
		done <- err
	}()
	dial := func(rank uint32) net.Conn {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		var hello [8]byte
		binary.LittleEndian.PutUint32(hello[:4], tcpMagic)
		binary.LittleEndian.PutUint32(hello[4:], rank)
		if _, err := conn.Write(hello[:]); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	c1 := dial(1)
	defer c1.Close()
	c2 := dial(1) // duplicate
	defer c2.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("duplicate rank accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("root hung on duplicate rank")
	}
}

func TestTCPRootRejectsOutOfRangeRank(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		_, err := NewTCPRoot(ln, 2)
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], tcpMagic)
	binary.LittleEndian.PutUint32(hello[4:], 9) // size is 2: invalid
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("out-of-range rank accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("root hung")
	}
}

func TestTCPWorkerErrorOnClosedRoot(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	w, err := DialTCP(addr, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the root side mid-protocol: the worker's next collective must
	// fail rather than hang.
	conn := <-accepted
	conn.Close()
	ln.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- w.AllreduceSum([]float64{1}) }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("collective succeeded against a dead root")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker hung against a dead root")
	}
}

func TestTCPSizeOne(t *testing.T) {
	// A 1-rank "cluster": the root needs no workers; collectives are
	// identities.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := NewTCPRoot(ln, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{3, 4}
	if err := c.AllreduceSum(buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 || buf[1] != 4 {
		t.Errorf("1-rank allreduce changed data: %v", buf)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
}
