package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"octgb/internal/testutil"
)

// runChaosLocal runs fn on p in-process ranks, each wrapped with the plan.
func runChaosLocal(p int, plan *FaultPlan, fn func(c Comm) error) []error {
	g := NewLocalGroup(p, nil)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cc, err := WrapChaos(g.Comm(r), plan)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = fn(cc)
		}(r)
	}
	wg.Wait()
	return errs
}

// chaosWorkload runs a fixed collective + p2p sequence and returns rank 0's
// observed values for comparison across plans.
func chaosWorkload(p int) (func(c Comm) error, *[][]float64, *sync.Mutex) {
	results := make([][]float64, p)
	var mu sync.Mutex
	fn := func(c Comm) error {
		rank := c.Rank()
		var got []float64
		for round := 0; round < 5; round++ {
			buf := []float64{float64(rank + round), 1, float64(rank * rank)}
			if err := c.AllreduceSum(buf); err != nil {
				return err
			}
			got = append(got, buf...)
			counts := make([]int, p)
			total := 0
			for r := range counts {
				counts[r] = r + 1
				total += r + 1
			}
			seg := make([]float64, counts[rank])
			for i := range seg {
				seg[i] = float64(10*rank + i + round)
			}
			out := make([]float64, total)
			if err := c.Allgatherv(seg, counts, out); err != nil {
				return err
			}
			got = append(got, out...)
			b := []float64{float64(rank), float64(round)}
			if err := c.Bcast(b, round%p); err != nil {
				return err
			}
			got = append(got, b...)
			msgr := c.(Messenger)
			if err := msgr.Send((rank+1)%p, []float64{float64(rank), float64(round)}); err != nil {
				return err
			}
			m, err := msgr.Recv((rank + p - 1) % p)
			if err != nil {
				return err
			}
			got = append(got, m...)
			ReleaseBuffer(m)
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		mu.Lock()
		results[rank] = got
		mu.Unlock()
		return nil
	}
	return fn, &results, &mu
}

// TestChaosAbsorbableFaultsAreInvisible: a schedule of duplicates,
// corruptions, truncations and delays must not change a single bit of any
// rank's results — the seq+CRC framing detects every damaged frame and the
// clean retransmit replaces it.
func TestChaosAbsorbableFaultsAreInvisible(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	for _, p := range []int{2, 3, 5} {
		fn, clean, _ := chaosWorkload(p)
		for r, err := range runChaosLocal(p, &FaultPlan{Timeout: 5 * time.Second}, fn) {
			if err != nil {
				t.Fatalf("p=%d clean rank %d: %v", p, r, err)
			}
		}
		var faults []Fault
		for frame := 0; frame < 2*p+8; frame++ {
			kind := []FaultKind{FaultDuplicate, FaultCorrupt, FaultTruncate, FaultDelay}[frame%4]
			f := Fault{Kind: kind, Rank: frame % p, Frame: frame}
			if kind == FaultDelay {
				f.Delay = time.Millisecond
			}
			faults = append(faults, f)
		}
		fn2, faulty, _ := chaosWorkload(p)
		for r, err := range runChaosLocal(p, &FaultPlan{Timeout: 5 * time.Second, Faults: faults}, fn2) {
			if err != nil {
				t.Fatalf("p=%d faulty rank %d: %v", p, r, err)
			}
		}
		for r := range *clean {
			a, b := (*clean)[r], (*faulty)[r]
			if len(a) != len(b) {
				t.Fatalf("p=%d rank %d: lengths %d vs %d", p, r, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("p=%d rank %d word %d: %v (clean) vs %v (faulty) — fault leaked into results", p, r, i, a[i], b[i])
				}
			}
		}
	}
}

// TestChaosCrashFailsTyped: a crashed rank returns ErrRankFailed naming
// itself, every peer returns ErrRankFailed naming a rank it observed going
// silent (the victim directly, or a rank that unwound because of the
// victim — blame cascades along the collective's data paths), and all of
// it within the receive timeout.
func TestChaosCrashFailsTyped(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	const p, victim = 3, 1
	timeout := 300 * time.Millisecond
	plan := &FaultPlan{Timeout: timeout, Faults: []Fault{{Kind: FaultCrash, Rank: victim, Frame: 0}}}
	start := time.Now()
	errs := runChaosLocal(p, plan, func(c Comm) error {
		buf := []float64{1}
		return c.AllreduceSum(buf)
	})
	elapsed := time.Since(start)
	for r, err := range errs {
		var rf ErrRankFailed
		if !errors.As(err, &rf) {
			t.Fatalf("rank %d: got %v, want ErrRankFailed", r, err)
		}
		if r == victim && rf.Rank != victim {
			t.Errorf("victim blamed rank %d, want itself", rf.Rank)
		}
		if r != victim && rf.Rank == r {
			t.Errorf("rank %d blamed itself without crashing", r)
		}
	}
	if elapsed > 2*timeout {
		t.Errorf("failure took %v, budget 2×%v", elapsed, timeout)
	}
}

// TestChaosDropFailsTyped: severing one link surfaces ErrRankFailed on at
// least the two endpoints without hanging anyone else.
func TestChaosDropFailsTyped(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	const p = 4
	timeout := 300 * time.Millisecond
	plan := &FaultPlan{Timeout: timeout, Faults: []Fault{{Kind: FaultDrop, Rank: 2, Frame: 0, Peer: 0}}}
	errs := runChaosLocal(p, plan, func(c Comm) error {
		buf := []float64{1}
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		return c.Barrier()
	})
	failed := 0
	for r, err := range errs {
		if err == nil {
			continue
		}
		var rf ErrRankFailed
		if !errors.As(err, &rf) {
			t.Fatalf("rank %d: untyped error %v", r, err)
		}
		failed++
	}
	if failed == 0 {
		t.Fatal("no rank observed the severed link")
	}
}

// TestWrapChaosRejectsStarTransports: the star TCP comms have no pairwise
// layer to inject into; wrapping them must be a loud error, not a silent
// no-op.
func TestWrapChaosRejectsStarTransports(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	root, err := NewTCPRoot(ln, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WrapChaos(root, nil); err == nil {
		t.Fatal("WrapChaos accepted a star transport")
	}
}

// TestChaosP2PSurvivesCorruption: the Messenger path uses the same framed
// protocol as the collectives.
func TestChaosP2PSurvivesCorruption(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	plan := &FaultPlan{Timeout: 2 * time.Second, Faults: []Fault{
		{Kind: FaultCorrupt, Rank: 0, Frame: 0},
		{Kind: FaultDuplicate, Rank: 0, Frame: 1},
	}}
	errs := runChaosLocal(2, plan, func(c Comm) error {
		msgr := c.(Messenger)
		if c.Rank() == 0 {
			for k := 0; k < 4; k++ {
				if err := msgr.Send(1, []float64{float64(k), 2.5}); err != nil {
					return err
				}
			}
			return nil
		}
		for k := 0; k < 4; k++ {
			m, err := msgr.Recv(0)
			if err != nil {
				return err
			}
			if len(m) != 2 || m[0] != float64(k) || m[1] != 2.5 {
				return fmt.Errorf("message %d arrived damaged: %v", k, m)
			}
			ReleaseBuffer(m)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
