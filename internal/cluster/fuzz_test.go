package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrameBytes marshals a wire frame exactly like rankConn.writeFrame —
// through writeFrame itself, into a memory buffer — so the seed corpus
// stays in lockstep with the encoder.
func fuzzFrameBytes(t testing.TB, op byte, aux uint32, payload []float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	rc := &rankConn{w: bufio.NewWriter(&buf), peer: -1}
	if err := rc.writeFrame(op, aux, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame drives the wire decoders (readFrame and readBlob) with
// arbitrary bytes. The contract under test: the decoders return errors —
// they never panic, never allocate beyond the frame bounds
// (maxFrameWords/maxBlobLen), and never loop forever on a finite stream.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(fuzzFrameBytes(f, opBarrier, 0, nil))
	f.Add(fuzzFrameBytes(f, opTagged, 42, []float64{1, 2.5, -3}))
	f.Add(fuzzFrameBytes(f, opAllreduceSum, 0, []float64{3.14}))
	bad := fuzzFrameBytes(f, opAllreduceMax, 0, []float64{1e300})
	bad[len(bad)-1] ^= 0xFF // payload corruption: CRC must reject
	f.Add(bad)
	huge := fuzzFrameBytes(f, opBcast, 0, nil)
	binary.LittleEndian.PutUint32(huge[5:9], 0xFFFFFFFF) // absurd length: bound must reject
	f.Add(huge)
	hb := append(fuzzFrameBytes(f, opHeartbeat, 0, nil), fuzzFrameBytes(f, opBarrier, 0, nil)...)
	f.Add(hb) // heartbeat is consumed transparently, barrier delivered
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rc := &rankConn{r: bufio.NewReader(bytes.NewReader(data)), peer: -1}
		for {
			_, _, payload, err := rc.readFrame()
			if err != nil {
				break // any error is acceptable; a panic or hang is not
			}
			putBuf(payload)
		}
		rc = &rankConn{r: bufio.NewReader(bytes.NewReader(data)), peer: -1}
		for {
			if _, err := rc.readBlob(); err != nil {
				break
			}
		}
	})
}

// TestDecodeFrameRoundTrip pins the encoder/decoder pair outside the fuzz
// engine: every op round-trips, corruption and oversized lengths error.
func TestDecodeFrameRoundTrip(t *testing.T) {
	payload := []float64{0, 1.5, -2.25, 1e-300}
	data := fuzzFrameBytes(t, opTagged, 9, payload)
	rc := &rankConn{r: bufio.NewReader(bytes.NewReader(data)), peer: 3}
	op, aux, got, err := rc.readFrame()
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if op != opTagged || aux != 9 || len(got) != len(payload) {
		t.Fatalf("frame mismatch: op=%d aux=%d n=%d", op, aux, len(got))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], payload[i])
		}
	}
	putBuf(got)

	data = fuzzFrameBytes(t, opTagged, 9, payload)
	data[len(data)-3] ^= 0x10
	rc = &rankConn{r: bufio.NewReader(bytes.NewReader(data)), peer: 3}
	if _, _, _, err := rc.readFrame(); err == nil {
		t.Fatal("corrupted frame decoded without error")
	}

	data = fuzzFrameBytes(t, opBcast, 0, nil)
	binary.LittleEndian.PutUint32(data[5:9], maxFrameWords+1)
	rc = &rankConn{r: bufio.NewReader(bytes.NewReader(data)), peer: 3}
	if _, _, _, err := rc.readFrame(); err == nil {
		t.Fatal("oversized frame decoded without error")
	}
}
