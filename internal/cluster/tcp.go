package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// The TCP transport runs each rank in its own OS process. Rank 0 is the
// root of a star: workers send their collective contributions to the root,
// the root combines them and sends the result back. This is O(P·m) at the
// root rather than the O(log P) tree of a real MPI, but it is simple,
// correct, and uses only the standard library; the virtual-time simulator
// (not this transport) is what models the paper's collective costs.

const tcpMagic = 0x0C7B

// kind codes on the wire.
const (
	opBarrier = iota + 1
	opAllreduceSum
	opAllreduceMax
	opAllgatherv
	opBcast
)

// NewTCPRoot accepts size−1 worker connections on ln and returns rank 0's
// communicator. It blocks until all workers have joined.
func NewTCPRoot(ln net.Listener, size int) (Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("cluster: size %d < 1", size)
	}
	c := &tcpRoot{size: size, conns: make([]*rankConn, size)}
	for joined := 1; joined < size; joined++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		rc := newRankConn(conn)
		var hello [8]byte
		if _, err := io.ReadFull(rc.r, hello[:]); err != nil {
			return nil, fmt.Errorf("cluster: reading hello: %w", err)
		}
		if binary.LittleEndian.Uint32(hello[:4]) != tcpMagic {
			return nil, fmt.Errorf("cluster: bad magic from worker")
		}
		rank := int(binary.LittleEndian.Uint32(hello[4:]))
		if rank <= 0 || rank >= size || c.conns[rank] != nil {
			return nil, fmt.Errorf("cluster: bad or duplicate worker rank %d", rank)
		}
		c.conns[rank] = rc
	}
	return c, nil
}

// DialTCP connects worker `rank` (1 ≤ rank < size) to the root at addr.
func DialTCP(addr string, rank, size int) (Comm, error) {
	if rank <= 0 || rank >= size {
		return nil, fmt.Errorf("cluster: worker rank %d out of range (1..%d)", rank, size-1)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	rc := newRankConn(conn)
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], tcpMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(rank))
	if _, err := rc.w.Write(hello[:]); err != nil {
		return nil, err
	}
	if err := rc.w.Flush(); err != nil {
		return nil, err
	}
	return &tcpWorker{rank: rank, size: size, conn: rc}, nil
}

type rankConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func newRankConn(c net.Conn) *rankConn {
	return &rankConn{c: c, r: bufio.NewReaderSize(c, 1<<16), w: bufio.NewWriterSize(c, 1<<16)}
}

// writeMsg frames: op byte, aux uint32, n uint32, n float64 payload.
func (rc *rankConn) writeMsg(op byte, aux uint32, payload []float64) error {
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], aux)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	if _, err := rc.w.Write(hdr[:]); err != nil {
		return err
	}
	var b [8]byte
	for _, v := range payload {
		binary.LittleEndian.PutUint64(b[:], floatBits(v))
		if _, err := rc.w.Write(b[:]); err != nil {
			return err
		}
	}
	return rc.w.Flush()
}

func (rc *rankConn) readMsg(wantOp byte) (aux uint32, payload []float64, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(rc.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != wantOp {
		return 0, nil, fmt.Errorf("cluster: expected op %d, got %d", wantOp, hdr[0])
	}
	aux = binary.LittleEndian.Uint32(hdr[1:5])
	n := binary.LittleEndian.Uint32(hdr[5:9])
	payload = make([]float64, n)
	var b [8]byte
	for i := range payload {
		if _, err = io.ReadFull(rc.r, b[:]); err != nil {
			return 0, nil, err
		}
		payload[i] = floatFromBits(binary.LittleEndian.Uint64(b[:]))
	}
	return aux, payload, nil
}

// tcpRoot is rank 0.
type tcpRoot struct {
	size  int
	conns []*rankConn // index by rank; [0] nil
	mu    sync.Mutex
}

func (c *tcpRoot) Rank() int { return 0 }
func (c *tcpRoot) Size() int { return c.size }

// collect gathers every worker's payload for op, combines (with the root's
// own contribution) and sends the per-rank results back. combine receives
// payloads indexed by rank (root's own in slot 0) and returns the result
// for each rank (often the same slice for all).
func (c *tcpRoot) collect(op byte, own []float64, combine func(bufs [][]float64) [][]float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bufs := make([][]float64, c.size)
	bufs[0] = own
	for r := 1; r < c.size; r++ {
		_, p, err := c.conns[r].readMsg(op)
		if err != nil {
			return nil, fmt.Errorf("cluster: root reading rank %d: %w", r, err)
		}
		bufs[r] = p
	}
	results := combine(bufs)
	for r := 1; r < c.size; r++ {
		if err := c.conns[r].writeMsg(op, 0, results[r]); err != nil {
			return nil, fmt.Errorf("cluster: root replying to rank %d: %w", r, err)
		}
	}
	return results[0], nil
}

func sameForAll(size int, res []float64) [][]float64 {
	out := make([][]float64, size)
	for i := range out {
		out[i] = res
	}
	return out
}

func (c *tcpRoot) Barrier() error {
	_, err := c.collect(opBarrier, nil, func(bufs [][]float64) [][]float64 {
		return sameForAll(c.size, nil)
	})
	return err
}

func (c *tcpRoot) AllreduceSum(buf []float64) error {
	res, err := c.collect(opAllreduceSum, buf, func(bufs [][]float64) [][]float64 {
		out := make([]float64, len(buf))
		for _, b := range bufs {
			for i, v := range b {
				out[i] += v
			}
		}
		return sameForAll(c.size, out)
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpRoot) AllreduceMax(buf []float64) error {
	res, err := c.collect(opAllreduceMax, buf, func(bufs [][]float64) [][]float64 {
		out := append([]float64(nil), bufs[0]...)
		for _, b := range bufs[1:] {
			for i, v := range b {
				if v > out[i] {
					out[i] = v
				}
			}
		}
		return sameForAll(c.size, out)
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpRoot) Allgatherv(segment []float64, counts []int, out []float64) error {
	res, err := c.collect(opAllgatherv, segment, func(bufs [][]float64) [][]float64 {
		total := 0
		for _, n := range counts {
			total += n
		}
		cat := make([]float64, 0, total)
		for r := 0; r < c.size; r++ {
			cat = append(cat, bufs[r]...)
		}
		return sameForAll(c.size, cat)
	})
	if err != nil {
		return err
	}
	if len(res) != len(out) {
		return fmt.Errorf("cluster: Allgatherv length mismatch: %d vs %d", len(res), len(out))
	}
	copy(out, res)
	return nil
}

func (c *tcpRoot) Bcast(buf []float64, root int) error {
	res, err := c.collect(opBcast, buf, func(bufs [][]float64) [][]float64 {
		return sameForAll(c.size, append([]float64(nil), bufs[root]...))
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

// tcpWorker is a rank ≥ 1.
type tcpWorker struct {
	rank, size int
	conn       *rankConn
	mu         sync.Mutex
}

func (c *tcpWorker) Rank() int { return c.rank }
func (c *tcpWorker) Size() int { return c.size }

func (c *tcpWorker) roundTrip(op byte, payload []float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.conn.writeMsg(op, 0, payload); err != nil {
		return nil, err
	}
	_, res, err := c.conn.readMsg(op)
	return res, err
}

func (c *tcpWorker) Barrier() error {
	_, err := c.roundTrip(opBarrier, nil)
	return err
}

func (c *tcpWorker) AllreduceSum(buf []float64) error {
	res, err := c.roundTrip(opAllreduceSum, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpWorker) AllreduceMax(buf []float64) error {
	res, err := c.roundTrip(opAllreduceMax, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpWorker) Allgatherv(segment []float64, counts []int, out []float64) error {
	res, err := c.roundTrip(opAllgatherv, segment)
	if err != nil {
		return err
	}
	if len(res) != len(out) {
		return fmt.Errorf("cluster: Allgatherv length mismatch: %d vs %d", len(res), len(out))
	}
	copy(out, res)
	return nil
}

func (c *tcpWorker) Bcast(buf []float64, root int) error {
	res, err := c.roundTrip(opBcast, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}
