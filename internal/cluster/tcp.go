package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// The TCP transport runs each rank in its own OS process. Two wirings are
// available:
//
//   - Star (default): rank 0 is the root of a star; workers send their
//     collective contributions to the root, the root combines them and
//     sends the result back. O(P·m) at the root, but simple, correct, and
//     the oracle the mesh is tested against.
//   - Mesh (WithMesh, both sides): during the handshake every worker
//     reports a private listen port, the root broadcasts the address
//     table, and the workers connect pairwise. Collectives then run the
//     topology-aware algorithms of collectives.go over the mesh
//     (recursive doubling / ring / binomial / dissemination), point-to-point
//     messaging (Messenger) and the non-blocking collectives (NonBlocking)
//     become available, and the root is no longer a bandwidth bottleneck.
const tcpMagic = 0x0C7B

// kind codes on the wire.
const (
	opBarrier = iota + 1
	opAllreduceSum
	opAllreduceMax
	opAllgatherv
	opBcast
	opTagged // mesh frame: aux carries the message tag
)

func kindOfOp(op byte) string {
	switch op {
	case opBarrier:
		return "barrier"
	case opAllreduceSum:
		return "allreduce"
	case opAllreduceMax:
		return "allreducemax"
	case opAllgatherv:
		return "allgatherv"
	case opBcast:
		return "bcast"
	}
	return "unknown"
}

// tcpConfig collects the transport options.
type tcpConfig struct {
	mesh bool
	hook CollectiveHook
}

// TCPOption configures NewTCPRoot / DialTCP. Every rank of a group must be
// created with the same options.
type TCPOption func(*tcpConfig)

// WithMesh enables the worker-to-worker connection mesh and routes
// collectives through the topology-aware algorithms. Must be passed on the
// root and on every worker.
func WithMesh() TCPOption { return func(c *tcpConfig) { c.mesh = true } }

// WithHook attaches a CollectiveHook (observed once per collective: at the
// root in star mode, on rank 0 in mesh mode).
func WithHook(hook CollectiveHook) TCPOption { return func(c *tcpConfig) { c.hook = hook } }

// NewTCPRoot accepts size−1 worker connections on ln and returns rank 0's
// communicator. It blocks until all workers have joined (and, with
// WithMesh, until the address table has been distributed).
func NewTCPRoot(ln net.Listener, size int, opts ...TCPOption) (Comm, error) {
	var cfg tcpConfig
	for _, o := range opts {
		o(&cfg)
	}
	if size < 1 {
		return nil, fmt.Errorf("cluster: size %d < 1", size)
	}
	conns := make([]*rankConn, size)
	meshAddrs := make([]string, size)
	for joined := 1; joined < size; joined++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		rc := newRankConn(conn)
		var hello [8]byte
		if _, err := io.ReadFull(rc.r, hello[:]); err != nil {
			return nil, fmt.Errorf("cluster: reading hello: %w", err)
		}
		if binary.LittleEndian.Uint32(hello[:4]) != tcpMagic {
			return nil, fmt.Errorf("cluster: bad magic from worker")
		}
		rank := int(binary.LittleEndian.Uint32(hello[4:]))
		if rank <= 0 || rank >= size || conns[rank] != nil {
			return nil, fmt.Errorf("cluster: bad or duplicate worker rank %d", rank)
		}
		conns[rank] = rc
		if cfg.mesh {
			// Mesh handshake extension: the worker reports its private
			// listen port; combined with the address the connection came
			// from it yields the peer-dialable mesh address.
			var pb [4]byte
			if _, err := io.ReadFull(rc.r, pb[:]); err != nil {
				return nil, fmt.Errorf("cluster: reading mesh port of rank %d: %w", rank, err)
			}
			port := int(binary.LittleEndian.Uint32(pb[:]))
			host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
			if err != nil {
				return nil, fmt.Errorf("cluster: mesh address of rank %d: %w", rank, err)
			}
			meshAddrs[rank] = net.JoinHostPort(host, fmt.Sprint(port))
		}
	}
	if !cfg.mesh {
		return &tcpRoot{size: size, conns: conns, hook: cfg.hook}, nil
	}
	// Broadcast the address table, then switch every star connection into
	// tagged-frame mode: the root's links to the workers double as its
	// pairwise mesh links.
	table := strings.Join(meshAddrs[1:], "\n")
	for r := 1; r < size; r++ {
		if err := conns[r].writeBlob([]byte(table)); err != nil {
			return nil, fmt.Errorf("cluster: sending mesh table to rank %d: %w", r, err)
		}
	}
	return newMeshComm(0, size, conns, cfg.hook), nil
}

// DialTCP connects worker `rank` (1 ≤ rank < size) to the root at addr.
// With WithMesh it also opens a listener, reports it to the root, and
// joins the worker-to-worker mesh before returning.
func DialTCP(addr string, rank, size int, opts ...TCPOption) (Comm, error) {
	var cfg tcpConfig
	for _, o := range opts {
		o(&cfg)
	}
	if rank <= 0 || rank >= size {
		return nil, fmt.Errorf("cluster: worker rank %d out of range (1..%d)", rank, size-1)
	}
	var meshLn net.Listener
	if cfg.mesh {
		var err error
		meshLn, err = net.Listen("tcp", ":0")
		if err != nil {
			return nil, fmt.Errorf("cluster: mesh listen: %w", err)
		}
		defer meshLn.Close()
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	rc := newRankConn(conn)
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], tcpMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(rank))
	if _, err := rc.w.Write(hello[:]); err != nil {
		return nil, err
	}
	if cfg.mesh {
		var pb [4]byte
		binary.LittleEndian.PutUint32(pb[:], uint32(meshLn.Addr().(*net.TCPAddr).Port))
		if _, err := rc.w.Write(pb[:]); err != nil {
			return nil, err
		}
	}
	if err := rc.w.Flush(); err != nil {
		return nil, err
	}
	if !cfg.mesh {
		return &tcpWorker{rank: rank, size: size, conn: rc}, nil
	}

	// Receive the address table, then build the mesh: dial every
	// lower-ranked worker (their listeners predate the root handshake, so
	// they are accepting or their backlog queues us), accept every
	// higher-ranked one.
	blob, err := rc.readBlob()
	if err != nil {
		return nil, fmt.Errorf("cluster: reading mesh table: %w", err)
	}
	addrs := strings.Split(string(blob), "\n")
	if len(addrs) != size-1 {
		return nil, fmt.Errorf("cluster: mesh table has %d entries, want %d", len(addrs), size-1)
	}
	conns := make([]*rankConn, size)
	conns[0] = rc
	for peer := 1; peer < rank; peer++ {
		pc, err := net.Dial("tcp", addrs[peer-1])
		if err != nil {
			return nil, fmt.Errorf("cluster: dialing mesh peer %d: %w", peer, err)
		}
		prc := newRankConn(pc)
		binary.LittleEndian.PutUint32(hello[:4], tcpMagic)
		binary.LittleEndian.PutUint32(hello[4:], uint32(rank))
		if _, err := prc.w.Write(hello[:]); err != nil {
			return nil, err
		}
		if err := prc.w.Flush(); err != nil {
			return nil, err
		}
		conns[peer] = prc
	}
	for accepted := rank + 1; accepted < size; accepted++ {
		pc, err := meshLn.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: accepting mesh peer: %w", err)
		}
		prc := newRankConn(pc)
		if _, err := io.ReadFull(prc.r, hello[:]); err != nil {
			return nil, fmt.Errorf("cluster: reading mesh hello: %w", err)
		}
		if binary.LittleEndian.Uint32(hello[:4]) != tcpMagic {
			return nil, fmt.Errorf("cluster: bad mesh magic")
		}
		peer := int(binary.LittleEndian.Uint32(hello[4:]))
		if peer <= rank || peer >= size || conns[peer] != nil {
			return nil, fmt.Errorf("cluster: bad or duplicate mesh peer %d", peer)
		}
		conns[peer] = prc
	}
	return newMeshComm(rank, size, conns, cfg.hook), nil
}

// rankConn is one framed, buffered TCP link. Writers serialize on wmu and
// each frame — header and payload — is marshaled into a single scratch
// buffer and handed to the socket in ONE buffered write + flush (the
// original path issued one write per float64). Reads are the mirror image:
// the payload is pulled in one bulk read into a byte scratch and decoded
// into a pooled []float64. Exactly one goroutine reads from a rankConn at
// a time (the star collectives hold their communicator mutex; the mesh
// dedicates a reader goroutine per link).
type rankConn struct {
	c net.Conn
	r *bufio.Reader

	wmu      sync.Mutex
	w        *bufio.Writer
	scratch  []byte // write marshaling buffer, guarded by wmu
	rscratch []byte // read decode buffer, single-reader
}

func newRankConn(c net.Conn) *rankConn {
	return &rankConn{c: c, r: bufio.NewReaderSize(c, 1<<16), w: bufio.NewWriterSize(c, 1<<16)}
}

// writeFrame frames: op byte, aux uint32, n uint32, n float64 payload —
// marshaled and written as a single buffered write.
func (rc *rankConn) writeFrame(op byte, aux uint32, payload []float64) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	need := 9 + 8*len(payload)
	if cap(rc.scratch) < need {
		rc.scratch = make([]byte, need)
	}
	b := rc.scratch[:need]
	b[0] = op
	binary.LittleEndian.PutUint32(b[1:5], aux)
	binary.LittleEndian.PutUint32(b[5:9], uint32(len(payload)))
	for i, v := range payload {
		binary.LittleEndian.PutUint64(b[9+8*i:], floatBits(v))
	}
	if _, err := rc.w.Write(b); err != nil {
		return err
	}
	return rc.w.Flush()
}

// readFrame reads one frame; the payload arrives in a pooled buffer that
// the consumer releases with putBuf/ReleaseBuffer.
func (rc *rankConn) readFrame() (op byte, aux uint32, payload []float64, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(rc.r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	op = hdr[0]
	aux = binary.LittleEndian.Uint32(hdr[1:5])
	n := int(binary.LittleEndian.Uint32(hdr[5:9]))
	need := 8 * n
	if cap(rc.rscratch) < need {
		rc.rscratch = make([]byte, need)
	}
	raw := rc.rscratch[:need]
	if _, err = io.ReadFull(rc.r, raw); err != nil {
		return 0, 0, nil, err
	}
	payload = getBuf(n)
	for i := range payload {
		payload[i] = floatFromBits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return op, aux, payload, nil
}

func (rc *rankConn) writeMsg(op byte, aux uint32, payload []float64) error {
	return rc.writeFrame(op, aux, payload)
}

func (rc *rankConn) readMsg(wantOp byte) (aux uint32, payload []float64, err error) {
	op, aux, payload, err := rc.readFrame()
	if err != nil {
		return 0, nil, err
	}
	if op != wantOp {
		putBuf(payload)
		return 0, nil, fmt.Errorf("cluster: expected op %d, got %d", wantOp, op)
	}
	return aux, payload, nil
}

// writeBlob / readBlob frame raw bytes (the mesh address table).
func (rc *rankConn) writeBlob(b []byte) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := rc.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := rc.w.Write(b); err != nil {
		return err
	}
	return rc.w.Flush()
}

func (rc *rankConn) readBlob() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rc.r, hdr[:]); err != nil {
		return nil, err
	}
	b := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(rc.r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// Star transport (fallback and correctness oracle)
// ---------------------------------------------------------------------------

// tcpRoot is rank 0 of the star.
type tcpRoot struct {
	size  int
	conns []*rankConn // index by rank; [0] nil
	hook  CollectiveHook
	mu    sync.Mutex
}

func (c *tcpRoot) Rank() int { return 0 }
func (c *tcpRoot) Size() int { return c.size }

// collect gathers every worker's payload for op, combines (with the root's
// own contribution) and sends the per-rank results back. combine receives
// payloads indexed by rank (root's own in slot 0) and returns the result
// for each rank (often the same slice for all).
func (c *tcpRoot) collect(op byte, own []float64, combine func(bufs [][]float64) [][]float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bufs := make([][]float64, c.size)
	bufs[0] = own
	for r := 1; r < c.size; r++ {
		_, p, err := c.conns[r].readMsg(op)
		if err != nil {
			return nil, fmt.Errorf("cluster: root reading rank %d: %w", r, err)
		}
		bufs[r] = p
	}
	results := combine(bufs)
	for r := 1; r < c.size; r++ {
		putBuf(bufs[r]) // worker contributions decoded into pooled buffers
		if err := c.conns[r].writeMsg(op, 0, results[r]); err != nil {
			return nil, fmt.Errorf("cluster: root replying to rank %d: %w", r, err)
		}
	}
	if c.hook != nil {
		c.hook(kindOfOp(op), len(results[0]))
	}
	return results[0], nil
}

func sameForAll(size int, res []float64) [][]float64 {
	out := make([][]float64, size)
	for i := range out {
		out[i] = res
	}
	return out
}

func (c *tcpRoot) Barrier() error {
	_, err := c.collect(opBarrier, nil, func(bufs [][]float64) [][]float64 {
		return sameForAll(c.size, nil)
	})
	return err
}

func (c *tcpRoot) AllreduceSum(buf []float64) error {
	res, err := c.collect(opAllreduceSum, buf, func(bufs [][]float64) [][]float64 {
		out := make([]float64, len(buf))
		for _, b := range bufs {
			for i, v := range b {
				out[i] += v
			}
		}
		return sameForAll(c.size, out)
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpRoot) AllreduceMax(buf []float64) error {
	res, err := c.collect(opAllreduceMax, buf, func(bufs [][]float64) [][]float64 {
		out := append([]float64(nil), bufs[0]...)
		for _, b := range bufs[1:] {
			for i, v := range b {
				if v > out[i] {
					out[i] = v
				}
			}
		}
		return sameForAll(c.size, out)
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpRoot) Allgatherv(segment []float64, counts []int, out []float64) error {
	res, err := c.collect(opAllgatherv, segment, func(bufs [][]float64) [][]float64 {
		total := 0
		for _, n := range counts {
			total += n
		}
		cat := make([]float64, 0, total)
		for r := 0; r < c.size; r++ {
			cat = append(cat, bufs[r]...)
		}
		return sameForAll(c.size, cat)
	})
	if err != nil {
		return err
	}
	if len(res) != len(out) {
		return fmt.Errorf("cluster: Allgatherv length mismatch: %d vs %d", len(res), len(out))
	}
	copy(out, res)
	return nil
}

func (c *tcpRoot) Bcast(buf []float64, root int) error {
	res, err := c.collect(opBcast, buf, func(bufs [][]float64) [][]float64 {
		return sameForAll(c.size, append([]float64(nil), bufs[root]...))
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

// IAllreduceSum completes synchronously (the star cannot overlap).
func (c *tcpRoot) IAllreduceSum(buf []float64) Request { return doneRequest(c.AllreduceSum(buf)) }

// IAllgatherv completes synchronously (the star cannot overlap).
func (c *tcpRoot) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	return doneRequest(c.Allgatherv(segment, counts, out))
}

// tcpWorker is a rank ≥ 1 of the star.
type tcpWorker struct {
	rank, size int
	conn       *rankConn
	mu         sync.Mutex
}

func (c *tcpWorker) Rank() int { return c.rank }
func (c *tcpWorker) Size() int { return c.size }

func (c *tcpWorker) roundTrip(op byte, payload []float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.conn.writeMsg(op, 0, payload); err != nil {
		return nil, err
	}
	_, res, err := c.conn.readMsg(op)
	return res, err
}

func (c *tcpWorker) Barrier() error {
	res, err := c.roundTrip(opBarrier, nil)
	putBuf(res)
	return err
}

func (c *tcpWorker) AllreduceSum(buf []float64) error {
	res, err := c.roundTrip(opAllreduceSum, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	putBuf(res)
	return nil
}

func (c *tcpWorker) AllreduceMax(buf []float64) error {
	res, err := c.roundTrip(opAllreduceMax, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	putBuf(res)
	return nil
}

func (c *tcpWorker) Allgatherv(segment []float64, counts []int, out []float64) error {
	res, err := c.roundTrip(opAllgatherv, segment)
	if err != nil {
		return err
	}
	if len(res) != len(out) {
		putBuf(res)
		return fmt.Errorf("cluster: Allgatherv length mismatch: %d vs %d", len(res), len(out))
	}
	copy(out, res)
	putBuf(res)
	return nil
}

func (c *tcpWorker) Bcast(buf []float64, root int) error {
	res, err := c.roundTrip(opBcast, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	putBuf(res)
	return nil
}

// IAllreduceSum completes synchronously (the star cannot overlap).
func (c *tcpWorker) IAllreduceSum(buf []float64) Request { return doneRequest(c.AllreduceSum(buf)) }

// IAllgatherv completes synchronously (the star cannot overlap).
func (c *tcpWorker) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	return doneRequest(c.Allgatherv(segment, counts, out))
}

// ---------------------------------------------------------------------------
// Mesh transport
// ---------------------------------------------------------------------------

// meshComm is one rank of the fully-connected transport: a pairwise link
// to every peer (the root's star connections double as its links), a
// dedicated reader goroutine per link demultiplexing tagged frames into
// per-peer mailboxes, and the topology-aware collectives on top. It
// implements Comm, Messenger and NonBlocking.
type meshComm struct {
	rank, size int
	links      []*rankConn // index by peer; [rank] nil
	boxes      []*tagBox   // per-peer incoming messages (incl. self)
	coll       coll
}

func newMeshComm(rank, size int, links []*rankConn, hook CollectiveHook) *meshComm {
	mc := &meshComm{rank: rank, size: size, links: links, boxes: make([]*tagBox, size)}
	for i := range mc.boxes {
		mc.boxes[i] = newTagBox()
	}
	mc.coll.pw = mc
	if rank == 0 {
		mc.coll.hook = hook
	}
	for peer := range links {
		if links[peer] != nil {
			go mc.readLoop(peer)
		}
	}
	return mc
}

// readLoop demultiplexes one link's frames into the peer's mailbox; on
// connection loss the mailbox is poisoned so pending and future receives
// error out instead of hanging.
func (mc *meshComm) readLoop(peer int) {
	rc := mc.links[peer]
	for {
		op, tag, payload, err := rc.readFrame()
		if err != nil {
			mc.boxes[peer].fail(fmt.Errorf("cluster: mesh link to rank %d: %w", peer, err))
			return
		}
		if op != opTagged {
			putBuf(payload)
			mc.boxes[peer].fail(fmt.Errorf("cluster: mesh link to rank %d: unexpected op %d", peer, op))
			return
		}
		mc.boxes[peer].put(int(tag), payload)
	}
}

func (mc *meshComm) Rank() int { return mc.rank }
func (mc *meshComm) Size() int { return mc.size }

func (mc *meshComm) sendTag(to, tag int, data []float64) error {
	if to == mc.rank {
		buf := getBuf(len(data))
		copy(buf, data)
		mc.boxes[mc.rank].put(tag, buf)
		return nil
	}
	return mc.links[to].writeFrame(opTagged, uint32(tag), data)
}

func (mc *meshComm) recvTag(from, tag int) ([]float64, error) {
	return mc.boxes[from].take(tag)
}

func (mc *meshComm) Barrier() error                   { return mc.coll.Barrier() }
func (mc *meshComm) AllreduceSum(buf []float64) error { return mc.coll.AllreduceSum(buf) }
func (mc *meshComm) AllreduceMax(buf []float64) error { return mc.coll.AllreduceMax(buf) }
func (mc *meshComm) Allgatherv(segment []float64, counts []int, out []float64) error {
	return mc.coll.Allgatherv(segment, counts, out)
}
func (mc *meshComm) Bcast(buf []float64, root int) error { return mc.coll.Bcast(buf, root) }

func (mc *meshComm) IAllreduceSum(buf []float64) Request { return mc.coll.IAllreduceSum(buf) }
func (mc *meshComm) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	return mc.coll.IAllgatherv(segment, counts, out)
}

func (mc *meshComm) Send(to int, data []float64) error {
	if to < 0 || to >= mc.size {
		return fmt.Errorf("cluster: send to invalid rank %d", to)
	}
	return mc.sendTag(to, tagP2P, data)
}

func (mc *meshComm) Recv(from int) ([]float64, error) {
	if from < 0 || from >= mc.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d", from)
	}
	return mc.recvTag(from, tagP2P)
}

// Close tears the mesh down: all links are closed, which terminates the
// reader goroutines and poisons the mailboxes.
func (mc *meshComm) Close() error {
	var first error
	for _, rc := range mc.links {
		if rc != nil {
			if err := rc.c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
