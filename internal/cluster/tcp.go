package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"octgb/internal/obs"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// The TCP transport runs each rank in its own OS process. Two wirings are
// available:
//
//   - Star (default): rank 0 is the root of a star; workers send their
//     collective contributions to the root, the root combines them and
//     sends the result back. O(P·m) at the root, but simple, correct, and
//     the oracle the mesh is tested against.
//   - Mesh (WithMesh, both sides): during the handshake every worker
//     reports a private listen port, the root broadcasts the address
//     table, and the workers connect pairwise. Collectives then run the
//     topology-aware algorithms of collectives.go over the mesh
//     (recursive doubling / ring / binomial / dissemination), point-to-point
//     messaging (Messenger) and the non-blocking collectives (NonBlocking)
//     become available, and the root is no longer a bandwidth bottleneck.
//
// Failure hardening (see failure.go for the model): every frame carries a
// CRC32C, payload sizes are bounded so arbitrary bytes cannot force huge
// allocations, dials retry with exponential backoff + jitter, and with
// WithCommTimeout every read carries a deadline backed by per-link
// heartbeats — a silent peer surfaces as ErrRankFailed while a merely-slow
// one stays alive. If any worker cannot complete its pairwise mesh links,
// the whole group degrades to the star topology through the root instead
// of aborting (the "verdict round" below).
const tcpMagic = 0x0C7B

// kind codes on the wire.
const (
	opBarrier = iota + 1
	opAllreduceSum
	opAllreduceMax
	opAllgatherv
	opBcast
	opTagged    // mesh frame: aux carries the message tag
	opHeartbeat // liveness keep-alive; consumed inside readFrame, never delivered
)

// maxFrameWords bounds a frame's payload (16M float64 words = 128 MiB) so a
// corrupted or hostile length field produces an error instead of an
// arbitrarily large allocation. maxBlobLen bounds the handshake blobs.
const (
	maxFrameWords = 1 << 24
	maxBlobLen    = 1 << 20
)

// crcTable is the Castagnoli polynomial (CRC32C, hardware-accelerated on
// amd64/arm64) used for every frame checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func kindOfOp(op byte) string {
	switch op {
	case opBarrier:
		return "barrier"
	case opAllreduceSum:
		return "allreduce"
	case opAllreduceMax:
		return "allreducemax"
	case opAllgatherv:
		return "allgatherv"
	case opBcast:
		return "bcast"
	}
	return "unknown"
}

// tcpConfig collects the transport options.
type tcpConfig struct {
	mesh    bool
	hook    CollectiveHook
	timeout time.Duration
	logf    func(format string, args ...any)
	obs     *obs.Observer
}

func (c *tcpConfig) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

// TCPOption configures NewTCPRoot / DialTCP. Every rank of a group must be
// created with the same options.
type TCPOption func(*tcpConfig)

// WithMesh enables the worker-to-worker connection mesh and routes
// collectives through the topology-aware algorithms. Must be passed on the
// root and on every worker. If any worker cannot complete its pairwise
// links the group falls back to the star topology (all ranks return star
// communicators and the downgrade is logged through WithLogger).
func WithMesh() TCPOption { return func(c *tcpConfig) { c.mesh = true } }

// WithHook attaches a CollectiveHook (observed once per collective: at the
// root in star mode, on rank 0 in mesh mode).
func WithHook(hook CollectiveHook) TCPOption { return func(c *tcpConfig) { c.hook = hook } }

// WithCommTimeout enables failure detection: every frame read carries a
// deadline of d, every link runs a heartbeat writer at a third of d (so
// slow compute phases between collectives never trip the deadline), and a
// peer silent for longer than d surfaces as ErrRankFailed through every
// collective and receive. Zero (the default) disables deadlines and
// heartbeats entirely. Must be passed with the same d on every rank.
func WithCommTimeout(d time.Duration) TCPOption { return func(c *tcpConfig) { c.timeout = d } }

// WithLogger attaches a printf-style logger for transport events worth
// surfacing in deployments: mesh degradation, dial retries. nil (the
// default) keeps the transport silent.
func WithLogger(logf func(format string, args ...any)) TCPOption {
	return func(c *tcpConfig) { c.logf = logf }
}

// WithObserver attaches an observability sink to this rank's transport:
// completed collectives record {kind, rank} latency histograms and byte
// counters, heartbeat inter-arrival gaps record a per-peer histogram, and
// Topo→Star degradations count into octgb_cluster_degradations_total. Nil
// (the default) keeps the transport instrumentation-free.
func WithObserver(ob *obs.Observer) TCPOption {
	return func(c *tcpConfig) { c.obs = ob }
}

// dial retry policy: bounded exponential backoff with deterministic
// per-rank jitter, so a worker starting before its peers (or before the
// root) converges instead of failing on the first connection refused.
const (
	dialAttempts    = 4
	dialBackoffBase = 50 * time.Millisecond
)

// testMeshDialFault, when non-nil, makes mesh dialing from `rank` to `peer`
// fail without touching the network — the unit-test hook for the Topo→Star
// degradation path.
var testMeshDialFault func(rank, peer int) bool

// dialRetry dials addr with bounded exponential backoff + jitter. seed
// makes the jitter deterministic per (rank, peer) pair.
func dialRetry(addr string, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			backoff := dialBackoffBase << (attempt - 1)
			time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff/2)+1)))
		}
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: dial %s failed after %d attempts: %w", addr, dialAttempts, lastErr)
}

// meshBuildTimeout bounds the worker-to-worker accept phase of the mesh
// handshake, so a peer whose dialer died degrades to star instead of
// blocking in Accept forever.
func meshBuildTimeout(t time.Duration) time.Duration {
	if t <= 0 {
		return 10 * time.Second
	}
	bt := 4 * t
	if bt < time.Second {
		bt = time.Second
	}
	return bt
}

// NewTCPRoot accepts size−1 worker connections on ln and returns rank 0's
// communicator. It blocks until all workers have joined (and, with
// WithMesh, until the address table has been distributed and every worker
// has reported its mesh build status).
func NewTCPRoot(ln net.Listener, size int, opts ...TCPOption) (Comm, error) {
	var cfg tcpConfig
	for _, o := range opts {
		o(&cfg)
	}
	if size < 1 {
		return nil, fmt.Errorf("cluster: size %d < 1", size)
	}
	conns := make([]*rankConn, size)
	meshAddrs := make([]string, size)
	for joined := 1; joined < size; joined++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		rc := newRankConn(conn)
		var hello [8]byte
		if _, err := io.ReadFull(rc.r, hello[:]); err != nil {
			return nil, fmt.Errorf("cluster: reading hello: %w", err)
		}
		if binary.LittleEndian.Uint32(hello[:4]) != tcpMagic {
			return nil, fmt.Errorf("cluster: bad magic from worker")
		}
		rank := int(binary.LittleEndian.Uint32(hello[4:]))
		if rank <= 0 || rank >= size || conns[rank] != nil {
			return nil, fmt.Errorf("cluster: bad or duplicate worker rank %d", rank)
		}
		rc.peer = rank
		rc.timeout = cfg.timeout
		rc.obs = cfg.obs
		conns[rank] = rc
		if cfg.mesh {
			// Mesh handshake extension: the worker reports its private
			// listen port; combined with the address the connection came
			// from it yields the peer-dialable mesh address.
			var pb [4]byte
			if _, err := io.ReadFull(rc.r, pb[:]); err != nil {
				return nil, fmt.Errorf("cluster: reading mesh port of rank %d: %w", rank, err)
			}
			port := int(binary.LittleEndian.Uint32(pb[:]))
			host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
			if err != nil {
				return nil, fmt.Errorf("cluster: mesh address of rank %d: %w", rank, err)
			}
			meshAddrs[rank] = net.JoinHostPort(host, fmt.Sprint(port))
		}
	}
	if !cfg.mesh {
		root := &tcpRoot{size: size, conns: conns, hook: cfg.hook, timeout: cfg.timeout, obs: cfg.obs}
		root.startHeartbeats()
		return root, nil
	}
	// Broadcast the address table, then collect every worker's mesh build
	// status and broadcast the verdict: all-ok switches the star links into
	// tagged-frame mode (the root's links double as its pairwise mesh
	// links); any failure degrades the whole group to the star topology.
	table := strings.Join(meshAddrs[1:], "\n")
	for r := 1; r < size; r++ {
		if err := conns[r].writeBlob([]byte(table)); err != nil {
			return nil, fmt.Errorf("cluster: sending mesh table to rank %d: %w", r, err)
		}
	}
	meshOK := true
	for r := 1; r < size; r++ {
		status, err := conns[r].readBlob()
		if err != nil {
			return nil, fmt.Errorf("cluster: reading mesh status of rank %d: %w", r, err)
		}
		if len(status) != 1 || status[0] != 1 {
			meshOK = false
			cfg.log("cluster: rank %d reported mesh build failure", r)
		}
	}
	verdict := []byte{0}
	if meshOK {
		verdict[0] = 1
	}
	for r := 1; r < size; r++ {
		if err := conns[r].writeBlob(verdict); err != nil {
			return nil, fmt.Errorf("cluster: sending mesh verdict to rank %d: %w", r, err)
		}
	}
	if !meshOK {
		cfg.log("cluster: degrading collectives Topo→Star: routing through the root")
		recordDegradation(cfg.obs)
		root := &tcpRoot{size: size, conns: conns, hook: cfg.hook, timeout: cfg.timeout, obs: cfg.obs}
		root.startHeartbeats()
		return root, nil
	}
	return newMeshComm(0, size, conns, cfg), nil
}

// DialTCP connects worker `rank` (1 ≤ rank < size) to the root at addr.
// With WithMesh it also opens a listener, reports it to the root, and
// joins the worker-to-worker mesh before returning (or falls back to the
// star if the group's verdict is that the mesh could not be built).
func DialTCP(addr string, rank, size int, opts ...TCPOption) (Comm, error) {
	var cfg tcpConfig
	for _, o := range opts {
		o(&cfg)
	}
	if rank <= 0 || rank >= size {
		return nil, fmt.Errorf("cluster: worker rank %d out of range (1..%d)", rank, size-1)
	}
	var meshLn net.Listener
	if cfg.mesh {
		var err error
		meshLn, err = net.Listen("tcp", ":0")
		if err != nil {
			return nil, fmt.Errorf("cluster: mesh listen: %w", err)
		}
		defer meshLn.Close()
	}
	conn, err := dialRetry(addr, int64(rank))
	if err != nil {
		return nil, err
	}
	rc := newRankConn(conn)
	rc.peer = 0
	rc.timeout = cfg.timeout
	rc.obs = cfg.obs
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], tcpMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(rank))
	if _, err := rc.w.Write(hello[:]); err != nil {
		return nil, err
	}
	if cfg.mesh {
		var pb [4]byte
		binary.LittleEndian.PutUint32(pb[:], uint32(meshLn.Addr().(*net.TCPAddr).Port))
		if _, err := rc.w.Write(pb[:]); err != nil {
			return nil, err
		}
	}
	if err := rc.w.Flush(); err != nil {
		return nil, err
	}
	if !cfg.mesh {
		w := &tcpWorker{rank: rank, size: size, conn: rc, obs: cfg.obs}
		rc.startHeartbeat()
		return w, nil
	}

	// Receive the address table, then build the mesh: dial every
	// lower-ranked worker (their listeners predate the root handshake, so
	// they are accepting or their backlog queues us), accept every
	// higher-ranked one. Failures are collected rather than returned: the
	// status/verdict round with the root decides whether the group runs
	// the mesh or degrades to the star.
	blob, err := rc.readBlob()
	if err != nil {
		return nil, fmt.Errorf("cluster: reading mesh table: %w", err)
	}
	addrs := strings.Split(string(blob), "\n")
	if len(addrs) != size-1 {
		return nil, fmt.Errorf("cluster: mesh table has %d entries, want %d", len(addrs), size-1)
	}
	conns := make([]*rankConn, size)
	conns[0] = rc
	var meshErr error
	for peer := 1; peer < rank; peer++ {
		var pc net.Conn
		if testMeshDialFault != nil && testMeshDialFault(rank, peer) {
			meshErr = fmt.Errorf("cluster: injected mesh dial fault (rank %d → %d)", rank, peer)
		} else {
			pc, meshErr = dialRetry(addrs[peer-1], int64(rank)<<16|int64(peer))
		}
		if meshErr != nil {
			break
		}
		prc := newRankConn(pc)
		prc.peer = peer
		prc.timeout = cfg.timeout
		prc.obs = cfg.obs
		binary.LittleEndian.PutUint32(hello[:4], tcpMagic)
		binary.LittleEndian.PutUint32(hello[4:], uint32(rank))
		if _, err := prc.w.Write(hello[:]); err != nil {
			meshErr = err
			break
		}
		if err := prc.w.Flush(); err != nil {
			meshErr = err
			break
		}
		conns[peer] = prc
	}
	if meshErr == nil {
		deadline := time.Now().Add(meshBuildTimeout(cfg.timeout))
		if tl, ok := meshLn.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		for accepted := rank + 1; accepted < size; accepted++ {
			pc, err := meshLn.Accept()
			if err != nil {
				meshErr = fmt.Errorf("cluster: accepting mesh peer: %w", err)
				break
			}
			prc := newRankConn(pc)
			pc.SetReadDeadline(deadline)
			if _, err := io.ReadFull(prc.r, hello[:]); err != nil {
				meshErr = fmt.Errorf("cluster: reading mesh hello: %w", err)
				break
			}
			pc.SetReadDeadline(time.Time{})
			if binary.LittleEndian.Uint32(hello[:4]) != tcpMagic {
				meshErr = fmt.Errorf("cluster: bad mesh magic")
				break
			}
			peer := int(binary.LittleEndian.Uint32(hello[4:]))
			if peer <= rank || peer >= size || conns[peer] != nil {
				meshErr = fmt.Errorf("cluster: bad or duplicate mesh peer %d", peer)
				break
			}
			prc.peer = peer
			prc.timeout = cfg.timeout
			prc.obs = cfg.obs
			conns[peer] = prc
		}
	}
	status := []byte{1}
	if meshErr != nil {
		status[0] = 0
		cfg.log("cluster: rank %d: mesh build failed: %v", rank, meshErr)
	}
	if err := rc.writeBlob(status); err != nil {
		return nil, fmt.Errorf("cluster: sending mesh status: %w", err)
	}
	v, err := rc.readBlob()
	if err != nil {
		return nil, fmt.Errorf("cluster: reading mesh verdict: %w", err)
	}
	if len(v) == 1 && v[0] == 1 {
		return newMeshComm(rank, size, conns, cfg), nil
	}
	// Degrade: tear down the worker-to-worker links, keep the root link,
	// and run the star protocol through the root.
	for peer := 1; peer < size; peer++ {
		if conns[peer] != nil {
			conns[peer].close()
		}
	}
	cfg.log("cluster: rank %d: mesh unavailable, degrading collectives Topo→Star via root", rank)
	recordDegradation(cfg.obs)
	w := &tcpWorker{rank: rank, size: size, conn: rc, obs: cfg.obs}
	rc.startHeartbeat()
	return w, nil
}

// rankConn is one framed, buffered TCP link. Writers serialize on wmu and
// each frame — header and payload — is marshaled into a single scratch
// buffer and handed to the socket in ONE buffered write + flush (the
// original path issued one write per float64). Reads are the mirror image:
// the payload is pulled in one bulk read into a byte scratch and decoded
// into a pooled []float64. Exactly one goroutine reads from a rankConn at
// a time (the star collectives hold their communicator mutex; the mesh
// dedicates a reader goroutine per link).
//
// Every frame carries a CRC32C over its payload bytes; a mismatch (bit rot,
// desynchronized stream) is an error, never silent corruption. With a
// non-zero timeout, reads carry per-frame deadlines refreshed by the peer's
// heartbeat frames, and a tripped deadline surfaces as ErrRankFailed{peer}.
type rankConn struct {
	c    net.Conn
	r    *bufio.Reader
	peer int // rank at the other end, for failure attribution (-1 unknown)
	obs  *obs.Observer

	timeout  time.Duration // 0 = no deadlines, no heartbeats
	lastSeen atomic.Int64  // unix nanos of the last frame received
	lastHB   int64         // unix nanos of the last heartbeat frame, single-reader
	hbStop   chan struct{}
	hbOnce   sync.Once

	wmu      sync.Mutex
	w        *bufio.Writer
	scratch  []byte // write marshaling buffer, guarded by wmu
	rscratch []byte // read decode buffer, single-reader
}

func newRankConn(c net.Conn) *rankConn {
	rc := &rankConn{c: c, r: bufio.NewReaderSize(c, 1<<16), w: bufio.NewWriterSize(c, 1<<16), peer: -1}
	rc.lastSeen.Store(time.Now().UnixNano())
	return rc
}

// startHeartbeat launches the keep-alive writer (no-op without a timeout).
// A write that times out is backpressure — the peer's buffers are full but
// the socket is up — so the writer skips that beat; any other write error
// terminates it (the read side will attribute the dead link).
func (rc *rankConn) startHeartbeat() {
	if rc.timeout <= 0 || rc.hbStop != nil {
		return
	}
	rc.hbStop = make(chan struct{})
	go func(stop chan struct{}) {
		t := time.NewTicker(heartbeatInterval(rc.timeout))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := rc.writeFrame(opHeartbeat, 0, nil); err != nil {
					var ne net.Error
					if errors.As(err, &ne) && ne.Timeout() {
						continue
					}
					return
				}
			}
		}
	}(rc.hbStop)
}

// close shuts the link down and stops its heartbeat writer.
func (rc *rankConn) close() error {
	if rc.hbStop != nil {
		rc.hbOnce.Do(func() { close(rc.hbStop) })
	}
	return rc.c.Close()
}

// alive reports whether the peer has been heard from within 2× the timeout
// (always true without a timeout). Liveness is as of the last read on this
// link: the mesh's dedicated readers keep it current; the star transports
// update it only while a collective is draining the link.
func (rc *rankConn) alive() bool {
	if rc.timeout <= 0 {
		return true
	}
	return time.Since(time.Unix(0, rc.lastSeen.Load())) < 2*rc.timeout
}

// frameHdrLen is op(1) + aux(4) + n(4) + crc32c(4).
const frameHdrLen = 13

// writeFrame frames: op byte, aux uint32, n uint32, crc32c uint32, then n
// float64 payload words — marshaled and written as a single buffered write.
func (rc *rankConn) writeFrame(op byte, aux uint32, payload []float64) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	need := frameHdrLen + 8*len(payload)
	if cap(rc.scratch) < need {
		rc.scratch = make([]byte, need)
	}
	b := rc.scratch[:need]
	b[0] = op
	binary.LittleEndian.PutUint32(b[1:5], aux)
	binary.LittleEndian.PutUint32(b[5:9], uint32(len(payload)))
	for i, v := range payload {
		binary.LittleEndian.PutUint64(b[frameHdrLen+8*i:], floatBits(v))
	}
	binary.LittleEndian.PutUint32(b[9:13], crc32.Checksum(b[frameHdrLen:], crcTable))
	if rc.timeout > 0 {
		rc.c.SetWriteDeadline(time.Now().Add(rc.timeout))
	}
	if _, err := rc.w.Write(b); err != nil {
		return rc.failWrite(err)
	}
	if err := rc.w.Flush(); err != nil {
		return rc.failWrite(err)
	}
	return nil
}

// readFrame reads one frame, transparently consuming heartbeat frames (each
// received frame — heartbeats included — refreshes the read deadline, which
// is how a slow-but-alive peer stays undetected as failed); the payload
// arrives in a pooled buffer that the consumer releases with
// putBuf/ReleaseBuffer.
func (rc *rankConn) readFrame() (op byte, aux uint32, payload []float64, err error) {
	for {
		op, aux, payload, err = rc.readFrameOnce()
		if err != nil || op != opHeartbeat {
			return
		}
		putBuf(payload)
	}
}

func (rc *rankConn) readFrameOnce() (op byte, aux uint32, payload []float64, err error) {
	if rc.timeout > 0 {
		rc.c.SetReadDeadline(time.Now().Add(rc.timeout))
	}
	var hdr [frameHdrLen]byte
	if _, err = io.ReadFull(rc.r, hdr[:]); err != nil {
		return 0, 0, nil, rc.failRead(err)
	}
	op = hdr[0]
	aux = binary.LittleEndian.Uint32(hdr[1:5])
	n := int(binary.LittleEndian.Uint32(hdr[5:9]))
	crc := binary.LittleEndian.Uint32(hdr[9:13])
	if n > maxFrameWords {
		return 0, 0, nil, fmt.Errorf("cluster: frame payload %d words exceeds limit %d", n, maxFrameWords)
	}
	need := 8 * n
	if cap(rc.rscratch) < need {
		rc.rscratch = make([]byte, need)
	}
	raw := rc.rscratch[:need]
	if rc.timeout > 0 {
		rc.c.SetReadDeadline(time.Now().Add(rc.timeout))
	}
	if _, err = io.ReadFull(rc.r, raw); err != nil {
		return 0, 0, nil, rc.failRead(err)
	}
	if got := crc32.Checksum(raw, crcTable); got != crc {
		return 0, 0, nil, fmt.Errorf("cluster: frame from rank %d: CRC32C mismatch (got %08x, want %08x)", rc.peer, got, crc)
	}
	now := time.Now().UnixNano()
	rc.lastSeen.Store(now)
	if op == opHeartbeat {
		// Heartbeat inter-arrival gap: the liveness health signal. lastHB
		// is single-reader state (exactly one goroutine reads a rankConn).
		if rc.lastHB != 0 {
			recordHeartbeatGap(rc.obs, rc.peer, time.Duration(now-rc.lastHB))
		}
		rc.lastHB = now
	}
	payload = getBuf(n)
	for i := range payload {
		payload[i] = floatFromBits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return op, aux, payload, nil
}

// failRead types read errors: a deadline expiry (peer silent past the
// timeout despite heartbeats) and hard link errors (EOF, connection
// reset — the peer's end is conclusively gone) both become the typed
// rank failure. Only our own side closing the socket stays untyped:
// that is shutdown, not a peer death.
func (rc *rankConn) failRead(err error) error {
	if errors.Is(err, net.ErrClosed) {
		return err
	}
	return ErrRankFailed{Rank: rc.peer, Cause: err}
}

// failWrite types write errors: a broken pipe or reset means the peer is
// conclusively gone, but a write *timeout* stays untyped — a full TCP
// window is a slow reader, not a dead one — as does our own shutdown.
func (rc *rankConn) failWrite(err error) error {
	var ne net.Error
	if (errors.As(err, &ne) && ne.Timeout()) || errors.Is(err, net.ErrClosed) {
		return err
	}
	return ErrRankFailed{Rank: rc.peer, Cause: err}
}

func (rc *rankConn) writeMsg(op byte, aux uint32, payload []float64) error {
	return rc.writeFrame(op, aux, payload)
}

func (rc *rankConn) readMsg(wantOp byte) (aux uint32, payload []float64, err error) {
	op, aux, payload, err := rc.readFrame()
	if err != nil {
		return 0, nil, err
	}
	if op != wantOp {
		putBuf(payload)
		return 0, nil, fmt.Errorf("cluster: expected op %d, got %d", wantOp, op)
	}
	return aux, payload, nil
}

// writeBlob / readBlob frame raw bytes (the mesh handshake: address table,
// status, verdict). Handshake traffic predates the heartbeat writers, so
// blobs carry no deadline management.
func (rc *rankConn) writeBlob(b []byte) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := rc.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := rc.w.Write(b); err != nil {
		return err
	}
	return rc.w.Flush()
}

func (rc *rankConn) readBlob() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rc.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxBlobLen {
		return nil, fmt.Errorf("cluster: blob length %d exceeds limit %d", n, maxBlobLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rc.r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// Star transport (fallback and correctness oracle)
// ---------------------------------------------------------------------------

// tcpRoot is rank 0 of the star.
type tcpRoot struct {
	size    int
	conns   []*rankConn // index by rank; [0] nil
	hook    CollectiveHook
	obs     *obs.Observer
	timeout time.Duration
	mu      sync.Mutex
}

func (c *tcpRoot) Rank() int { return 0 }
func (c *tcpRoot) Size() int { return c.size }

func (c *tcpRoot) startHeartbeats() {
	for _, rc := range c.conns {
		if rc != nil {
			rc.startHeartbeat()
		}
	}
}

// Close tears down every worker link and stops the heartbeat writers.
func (c *tcpRoot) Close() error {
	var first error
	for _, rc := range c.conns {
		if rc != nil {
			if err := rc.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// AliveRanks implements FailureDetector (star liveness is as of the last
// collective that drained each link; see rankConn.alive).
func (c *tcpRoot) AliveRanks() []bool {
	alive := make([]bool, c.size)
	alive[0] = true
	for r := 1; r < c.size; r++ {
		alive[r] = c.conns[r] != nil && c.conns[r].alive()
	}
	return alive
}

// collect gathers every worker's payload for op, combines (with the root's
// own contribution) and sends the per-rank results back. combine receives
// payloads indexed by rank (root's own in slot 0) and returns the result
// for each rank (often the same slice for all).
func (c *tcpRoot) collect(op byte, own []float64, combine func(bufs [][]float64) [][]float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	bufs := make([][]float64, c.size)
	bufs[0] = own
	for r := 1; r < c.size; r++ {
		_, p, err := c.conns[r].readMsg(op)
		if err != nil {
			return nil, fmt.Errorf("cluster: root reading rank %d: %w", r, err)
		}
		bufs[r] = p
	}
	results := combine(bufs)
	for r := 1; r < c.size; r++ {
		putBuf(bufs[r]) // worker contributions decoded into pooled buffers
		if err := c.conns[r].writeMsg(op, 0, results[r]); err != nil {
			return nil, fmt.Errorf("cluster: root replying to rank %d: %w", r, err)
		}
	}
	if c.hook != nil {
		c.hook(kindOfOp(op), len(results[0]))
	}
	recordCollective(c.obs, kindOfOp(op), 0, len(results[0]), start)
	return results[0], nil
}

func sameForAll(size int, res []float64) [][]float64 {
	out := make([][]float64, size)
	for i := range out {
		out[i] = res
	}
	return out
}

func (c *tcpRoot) Barrier() error {
	_, err := c.collect(opBarrier, nil, func(bufs [][]float64) [][]float64 {
		return sameForAll(c.size, nil)
	})
	return err
}

func (c *tcpRoot) AllreduceSum(buf []float64) error {
	res, err := c.collect(opAllreduceSum, buf, func(bufs [][]float64) [][]float64 {
		out := make([]float64, len(buf))
		for _, b := range bufs {
			for i, v := range b {
				out[i] += v
			}
		}
		return sameForAll(c.size, out)
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpRoot) AllreduceMax(buf []float64) error {
	res, err := c.collect(opAllreduceMax, buf, func(bufs [][]float64) [][]float64 {
		out := append([]float64(nil), bufs[0]...)
		for _, b := range bufs[1:] {
			for i, v := range b {
				if v > out[i] {
					out[i] = v
				}
			}
		}
		return sameForAll(c.size, out)
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

func (c *tcpRoot) Allgatherv(segment []float64, counts []int, out []float64) error {
	res, err := c.collect(opAllgatherv, segment, func(bufs [][]float64) [][]float64 {
		total := 0
		for _, n := range counts {
			total += n
		}
		cat := make([]float64, 0, total)
		for r := 0; r < c.size; r++ {
			cat = append(cat, bufs[r]...)
		}
		return sameForAll(c.size, cat)
	})
	if err != nil {
		return err
	}
	if len(res) != len(out) {
		return fmt.Errorf("cluster: Allgatherv length mismatch: %d vs %d", len(res), len(out))
	}
	copy(out, res)
	return nil
}

func (c *tcpRoot) Bcast(buf []float64, root int) error {
	res, err := c.collect(opBcast, buf, func(bufs [][]float64) [][]float64 {
		return sameForAll(c.size, append([]float64(nil), bufs[root]...))
	})
	if err != nil {
		return err
	}
	copy(buf, res)
	return nil
}

// IAllreduceSum completes synchronously (the star cannot overlap).
func (c *tcpRoot) IAllreduceSum(buf []float64) Request { return doneRequest(c.AllreduceSum(buf)) }

// IAllgatherv completes synchronously (the star cannot overlap).
func (c *tcpRoot) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	return doneRequest(c.Allgatherv(segment, counts, out))
}

// tcpWorker is a rank ≥ 1 of the star.
type tcpWorker struct {
	rank, size int
	conn       *rankConn
	obs        *obs.Observer
	mu         sync.Mutex
}

func (c *tcpWorker) Rank() int { return c.rank }
func (c *tcpWorker) Size() int { return c.size }

// Close tears down the root link and stops the heartbeat writer.
func (c *tcpWorker) Close() error { return c.conn.close() }

func (c *tcpWorker) roundTrip(op byte, payload []float64) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	if err := c.conn.writeMsg(op, 0, payload); err != nil {
		return nil, err
	}
	_, res, err := c.conn.readMsg(op)
	if err == nil {
		recordCollective(c.obs, kindOfOp(op), c.rank, len(res), start)
	}
	return res, err
}

func (c *tcpWorker) Barrier() error {
	res, err := c.roundTrip(opBarrier, nil)
	putBuf(res)
	return err
}

func (c *tcpWorker) AllreduceSum(buf []float64) error {
	res, err := c.roundTrip(opAllreduceSum, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	putBuf(res)
	return nil
}

func (c *tcpWorker) AllreduceMax(buf []float64) error {
	res, err := c.roundTrip(opAllreduceMax, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	putBuf(res)
	return nil
}

func (c *tcpWorker) Allgatherv(segment []float64, counts []int, out []float64) error {
	res, err := c.roundTrip(opAllgatherv, segment)
	if err != nil {
		return err
	}
	if len(res) != len(out) {
		putBuf(res)
		return fmt.Errorf("cluster: Allgatherv length mismatch: %d vs %d", len(res), len(out))
	}
	copy(out, res)
	putBuf(res)
	return nil
}

func (c *tcpWorker) Bcast(buf []float64, root int) error {
	res, err := c.roundTrip(opBcast, buf)
	if err != nil {
		return err
	}
	copy(buf, res)
	putBuf(res)
	return nil
}

// IAllreduceSum completes synchronously (the star cannot overlap).
func (c *tcpWorker) IAllreduceSum(buf []float64) Request { return doneRequest(c.AllreduceSum(buf)) }

// IAllgatherv completes synchronously (the star cannot overlap).
func (c *tcpWorker) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	return doneRequest(c.Allgatherv(segment, counts, out))
}

// ---------------------------------------------------------------------------
// Mesh transport
// ---------------------------------------------------------------------------

// meshComm is one rank of the fully-connected transport: a pairwise link
// to every peer (the root's star connections double as its links), a
// dedicated reader goroutine per link demultiplexing tagged frames into
// per-peer mailboxes, and the topology-aware collectives on top. It
// implements Comm, Messenger, NonBlocking and FailureDetector.
type meshComm struct {
	rank, size int
	timeout    time.Duration
	links      []*rankConn // index by peer; [rank] nil
	boxes      []*tagBox   // per-peer incoming messages (incl. self)
	coll       coll
}

func newMeshComm(rank, size int, links []*rankConn, cfg tcpConfig) *meshComm {
	mc := &meshComm{rank: rank, size: size, timeout: cfg.timeout, links: links, boxes: make([]*tagBox, size)}
	for i := range mc.boxes {
		mc.boxes[i] = newTagBox()
	}
	mc.coll.pw = mc
	mc.coll.obs = cfg.obs
	if rank == 0 {
		mc.coll.hook = cfg.hook
	}
	for peer := range links {
		if links[peer] != nil {
			links[peer].startHeartbeat()
			go mc.readLoop(peer)
		}
	}
	return mc
}

// readLoop demultiplexes one link's frames into the peer's mailbox; on
// connection loss or peer silence past the timeout the mailbox is poisoned
// (with ErrRankFailed when attributable) so pending and future receives —
// and through them every in-flight collective — error out instead of
// hanging.
func (mc *meshComm) readLoop(peer int) {
	rc := mc.links[peer]
	for {
		op, tag, payload, err := rc.readFrame()
		if err != nil {
			var rf ErrRankFailed
			if errors.As(err, &rf) {
				mc.boxes[peer].fail(err)
			} else {
				mc.boxes[peer].fail(fmt.Errorf("cluster: mesh link to rank %d: %w", peer, err))
			}
			return
		}
		if op != opTagged {
			putBuf(payload)
			mc.boxes[peer].fail(fmt.Errorf("cluster: mesh link to rank %d: unexpected op %d", peer, op))
			return
		}
		mc.boxes[peer].put(int(tag), payload)
	}
}

func (mc *meshComm) Rank() int { return mc.rank }
func (mc *meshComm) Size() int { return mc.size }

// AliveRanks implements FailureDetector; the per-link reader goroutines
// keep liveness current even between collectives.
func (mc *meshComm) AliveRanks() []bool {
	alive := make([]bool, mc.size)
	for r := range alive {
		alive[r] = r == mc.rank || (mc.links[r] != nil && mc.links[r].alive())
	}
	return alive
}

func (mc *meshComm) sendTag(to, tag int, data []float64) error {
	if to == mc.rank {
		buf := getBuf(len(data))
		copy(buf, data)
		mc.boxes[mc.rank].put(tag, buf)
		return nil
	}
	return mc.links[to].writeFrame(opTagged, uint32(tag), data)
}

func (mc *meshComm) recvTag(from, tag int) ([]float64, error) {
	return mc.boxes[from].take(tag)
}

func (mc *meshComm) recvTagTimeout(from, tag int, d time.Duration) ([]float64, error) {
	return mc.boxes[from].takeTimeout(tag, d)
}

func (mc *meshComm) Barrier() error                   { return mc.coll.Barrier() }
func (mc *meshComm) AllreduceSum(buf []float64) error { return mc.coll.AllreduceSum(buf) }
func (mc *meshComm) AllreduceMax(buf []float64) error { return mc.coll.AllreduceMax(buf) }
func (mc *meshComm) Allgatherv(segment []float64, counts []int, out []float64) error {
	return mc.coll.Allgatherv(segment, counts, out)
}
func (mc *meshComm) Bcast(buf []float64, root int) error { return mc.coll.Bcast(buf, root) }

func (mc *meshComm) IAllreduceSum(buf []float64) Request { return mc.coll.IAllreduceSum(buf) }
func (mc *meshComm) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	return mc.coll.IAllgatherv(segment, counts, out)
}

func (mc *meshComm) Send(to int, data []float64) error {
	if to < 0 || to >= mc.size {
		return fmt.Errorf("cluster: send to invalid rank %d", to)
	}
	return mc.sendTag(to, tagP2P, data)
}

func (mc *meshComm) Recv(from int) ([]float64, error) {
	if from < 0 || from >= mc.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d", from)
	}
	return mc.recvTag(from, tagP2P)
}

// Close tears the mesh down: heartbeat writers stop and all links are
// closed, which terminates the reader goroutines and poisons the mailboxes.
func (mc *meshComm) Close() error {
	var first error
	for _, rc := range mc.links {
		if rc != nil {
			if err := rc.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
