// Package cluster is the distributed-memory substrate of the library — the
// stand-in for MPI in the paper's algorithms. It defines the small
// communicator interface the engines need (the collectives of the paper's
// Fig. 4: Allreduce for partial integrals, Allgather for Born-radius
// segments, Allreduce for the final energy) and provides two transports:
//
//   - an in-process transport (goroutine per rank) used by tests, the
//     benchmark harness and the virtual-time simulator, and
//   - a TCP transport (stdlib net) for genuine multi-process runs via
//     cmd/epolnode.
//
// A CollectiveHook observes every completed collective with its payload
// size; the virtual-time machine model (internal/simtime) uses it to charge
// the t_s·log P + t_w·m communication costs of the paper's §IV-C analysis.
package cluster

// Comm is the per-rank communicator handle.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Barrier blocks until all ranks reach it.
	Barrier() error
	// AllreduceSum replaces buf on every rank with the element-wise sum
	// across ranks. All ranks must pass equal-length buffers.
	AllreduceSum(buf []float64) error
	// AllreduceMax replaces buf with the element-wise max across ranks.
	AllreduceMax(buf []float64) error
	// Allgatherv concatenates every rank's segment (whose lengths are
	// given by counts, indexed by rank) into out, which must have length
	// Σ counts. Every rank receives the full concatenation.
	Allgatherv(segment []float64, counts []int, out []float64) error
	// Bcast replaces buf on every rank with root's buf.
	Bcast(buf []float64, root int) error
}

// CollectiveHook observes completed collectives. kind is one of "barrier",
// "allreduce", "allgatherv", "bcast"; words is the per-collective payload
// in float64 words. Called once per collective (not per rank), at the
// rendezvous point where all ranks are blocked — the natural place to
// synchronize virtual clocks.
type CollectiveHook func(kind string, words int)
