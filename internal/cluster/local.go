package cluster

import (
	"fmt"
	"sync"
	"time"

	"octgb/internal/obs"
)

// LocalGroup is an in-process communicator group: P ranks running as
// goroutines in one address space. Two collective implementations are
// wired in:
//
//   - Topo (default): the topology-aware algorithms of collectives.go,
//     routed over the group's (from, to) mailbox grid exactly like the TCP
//     mesh routes them over sockets — recursive doubling, ring, binomial
//     tree, dissemination — including the non-blocking forms.
//   - Star: every collective rendezvouses through a single
//     generation-counted monitor; simple, obviously correct for arbitrary
//     collective sequences, and kept as the oracle the topology-aware
//     path is tested against.
//
// The mailbox grid is fully pre-built at construction time, so the p2p
// Send/Recv path and the collective stages index it without taking any
// group-wide lock.
type LocalGroup struct {
	size int
	algo Algorithm
	hook CollectiveHook
	obs  *obs.Observer

	mu      sync.Mutex
	cond    *sync.Cond
	gen     int64
	arrived int
	kind    string
	bufs    []collArg
	result  []float64

	grid []*tagBox // (from, to) mailboxes, row-major from*size+to
}

type collArg struct {
	buf    []float64
	counts []int
	out    []float64
	root   int
}

// NewLocalGroup creates a group of p ranks using the topology-aware
// collectives. hook may be nil.
func NewLocalGroup(p int, hook CollectiveHook) *LocalGroup {
	return NewLocalGroupAlgo(p, hook, Topo)
}

// NewLocalGroupAlgo creates a group with an explicit collective algorithm
// selection (Star is the monitor-based reference).
func NewLocalGroupAlgo(p int, hook CollectiveHook, algo Algorithm) *LocalGroup {
	g := &LocalGroup{size: p, algo: algo, hook: hook, bufs: make([]collArg, p)}
	g.cond = sync.NewCond(&g.mu)
	g.grid = make([]*tagBox, p*p)
	for i := range g.grid {
		g.grid[i] = newTagBox()
	}
	return g
}

// WithObserver attaches an observability sink: every rank's completed
// collectives are recorded as {kind, rank} latency histograms, byte
// counters and trace spans. Nil (the default) keeps the group
// instrumentation-free. Returns g for chaining; must be called before Comm.
func (g *LocalGroup) WithObserver(ob *obs.Observer) *LocalGroup {
	g.obs = ob
	return g
}

// Comm returns the communicator handle for one rank.
func (g *LocalGroup) Comm(rank int) Comm {
	c := &localComm{g: g, rank: rank}
	c.coll.pw = c
	c.coll.obs = g.obs
	if rank == 0 {
		// Hook on rank 0 only: once per collective, as documented.
		c.coll.hook = g.hook
	}
	return c
}

// Run executes fn on every rank of the group concurrently and returns the
// first error. It is the instance form of RunLocalAlgo, for callers that
// configure the group (WithObserver) before running.
func (g *LocalGroup) Run(fn func(c Comm) error) error {
	errs := make([]error, g.size)
	var wg sync.WaitGroup
	for r := 0; r < g.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(g.Comm(r))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunLocal runs fn on p in-process ranks with the topology-aware
// collectives and returns the first error.
func RunLocal(p int, hook CollectiveHook, fn func(c Comm) error) error {
	return RunLocalAlgo(p, hook, Topo, fn)
}

// RunLocalAlgo is RunLocal with an explicit collective algorithm.
func RunLocalAlgo(p int, hook CollectiveHook, algo Algorithm, fn func(c Comm) error) error {
	return NewLocalGroupAlgo(p, hook, algo).Run(fn)
}

type localComm struct {
	g    *LocalGroup
	rank int
	coll coll
}

func (c *localComm) Rank() int { return c.rank }
func (c *localComm) Size() int { return c.g.size }

// rendezvous implements the generic "everyone deposits, last one computes,
// everyone copies out" monitor collective (Star algorithm). complete runs
// exactly once (under the monitor) when the last rank arrives; copyOut runs
// per rank before it leaves. A rank cannot enter collective k+1 before
// every rank has left collective k, because arrival counting restarts only
// after the generation bump and copyOut happens under the same critical
// section.
func (c *localComm) rendezvous(kind string, arg collArg, complete func(bufs []collArg) []float64, copyOut func(result []float64, arg collArg)) error {
	g := c.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.arrived > 0 && g.kind != kind {
		return fmt.Errorf("cluster: rank %d entered %q while group is in %q", c.rank, kind, g.kind)
	}
	g.kind = kind
	myGen := g.gen
	g.bufs[c.rank] = arg
	g.arrived++
	if g.arrived == g.size {
		g.result = complete(g.bufs)
		if g.hook != nil {
			g.hook(kind, len(g.result))
		}
		g.arrived = 0
		g.gen++
		g.cond.Broadcast()
	} else {
		for g.gen == myGen {
			g.cond.Wait()
		}
	}
	if copyOut != nil {
		copyOut(g.result, arg)
	}
	return nil
}

// starDone records one completed Star-algorithm collective into the
// group's observer (the Topo path records inside coll); returns err.
func (c *localComm) starDone(kind string, words int, start time.Time, err error) error {
	if err == nil {
		recordCollective(c.coll.obs, kind, c.rank, words, start)
	}
	return err
}

func (c *localComm) Barrier() error {
	if c.g.algo == Topo {
		return c.coll.Barrier()
	}
	start := time.Now()
	return c.starDone("barrier", 0, start, c.rendezvous("barrier", collArg{},
		func([]collArg) []float64 { return nil }, nil))
}

func (c *localComm) AllreduceSum(buf []float64) error {
	if c.g.algo == Topo {
		return c.coll.AllreduceSum(buf)
	}
	start := time.Now()
	return c.starDone("allreduce", len(buf), start, c.rendezvous("allreduce", collArg{buf: buf},
		func(bufs []collArg) []float64 {
			res := make([]float64, len(buf))
			for _, b := range bufs {
				for i, v := range b.buf {
					res[i] += v
				}
			}
			return res
		},
		func(result []float64, arg collArg) { copy(arg.buf, result) }))
}

func (c *localComm) AllreduceMax(buf []float64) error {
	if c.g.algo == Topo {
		return c.coll.AllreduceMax(buf)
	}
	start := time.Now()
	return c.starDone("allreducemax", len(buf), start, c.rendezvous("allreducemax", collArg{buf: buf},
		func(bufs []collArg) []float64 {
			res := append([]float64(nil), bufs[0].buf...)
			for _, b := range bufs[1:] {
				for i, v := range b.buf {
					if v > res[i] {
						res[i] = v
					}
				}
			}
			return res
		},
		func(result []float64, arg collArg) { copy(arg.buf, result) }))
}

func (c *localComm) Allgatherv(segment []float64, counts []int, out []float64) error {
	if c.g.algo == Topo {
		return c.coll.Allgatherv(segment, counts, out)
	}
	if _, err := checkGatherArgs(c.rank, segment, counts, out); err != nil {
		return err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	start := time.Now()
	return c.starDone("allgatherv", total, start, c.rendezvous("allgatherv", collArg{buf: segment, counts: counts, out: out},
		func(bufs []collArg) []float64 {
			res := make([]float64, total)
			at := 0
			for r := 0; r < len(bufs); r++ {
				copy(res[at:], bufs[r].buf)
				at += counts[r]
			}
			return res
		},
		func(result []float64, arg collArg) { copy(arg.out, result) }))
}

func (c *localComm) Bcast(buf []float64, root int) error {
	if c.g.algo == Topo {
		return c.coll.Bcast(buf, root)
	}
	start := time.Now()
	return c.starDone("bcast", len(buf), start, c.rendezvous("bcast", collArg{buf: buf, root: root},
		func(bufs []collArg) []float64 {
			return append([]float64(nil), bufs[root].buf...)
		},
		func(result []float64, arg collArg) { copy(arg.buf, result) }))
}

// IAllreduceSum initiates a non-blocking allreduce. On the Star algorithm
// the operation completes synchronously (monitor collectives cannot
// overlap), preserving semantics without overlap.
func (c *localComm) IAllreduceSum(buf []float64) Request {
	if c.g.algo == Topo {
		return c.coll.IAllreduceSum(buf)
	}
	return doneRequest(c.AllreduceSum(buf))
}

// IAllgatherv initiates a non-blocking allgatherv (synchronous under Star).
func (c *localComm) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	if c.g.algo == Topo {
		return c.coll.IAllgatherv(segment, counts, out)
	}
	return doneRequest(c.Allgatherv(segment, counts, out))
}
