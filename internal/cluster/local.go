package cluster

import (
	"fmt"
	"sync"
)

// LocalGroup is an in-process communicator group: P ranks running as
// goroutines in one address space. Collectives rendezvous through a single
// generation-counted monitor, which is simple, correct for arbitrary
// collective sequences, and fast enough for the rank counts the paper uses
// (≤ 144).
type LocalGroup struct {
	size int
	hook CollectiveHook

	mu      sync.Mutex
	cond    *sync.Cond
	gen     int64
	arrived int
	kind    string
	bufs    []collArg
	result  []float64
	mail    map[[2]int]*mailbox // point-to-point mailboxes (p2p.go)
}

type collArg struct {
	buf    []float64
	counts []int
	out    []float64
	root   int
}

// NewLocalGroup creates a group of p ranks. hook may be nil.
func NewLocalGroup(p int, hook CollectiveHook) *LocalGroup {
	g := &LocalGroup{size: p, hook: hook, bufs: make([]collArg, p)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Comm returns the communicator handle for one rank.
func (g *LocalGroup) Comm(rank int) Comm {
	return &localComm{g: g, rank: rank}
}

// RunLocal runs fn on p in-process ranks and returns the first error.
func RunLocal(p int, hook CollectiveHook, fn func(c Comm) error) error {
	g := NewLocalGroup(p, hook)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(g.Comm(r))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type localComm struct {
	g    *LocalGroup
	rank int
}

func (c *localComm) Rank() int { return c.rank }
func (c *localComm) Size() int { return c.g.size }

// rendezvous implements the generic "everyone deposits, last one computes,
// everyone copies out" collective. complete runs exactly once (under the
// monitor) when the last rank arrives; copyOut runs per rank before it
// leaves. A rank cannot enter collective k+1 before every rank has left
// collective k, because arrival counting restarts only after the
// generation bump and copyOut happens under the same critical section.
func (c *localComm) rendezvous(kind string, arg collArg, complete func(bufs []collArg) []float64, copyOut func(result []float64, arg collArg)) error {
	g := c.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.arrived > 0 && g.kind != kind {
		return fmt.Errorf("cluster: rank %d entered %q while group is in %q", c.rank, kind, g.kind)
	}
	g.kind = kind
	myGen := g.gen
	g.bufs[c.rank] = arg
	g.arrived++
	if g.arrived == g.size {
		g.result = complete(g.bufs)
		if g.hook != nil {
			g.hook(kind, len(g.result))
		}
		g.arrived = 0
		g.gen++
		g.cond.Broadcast()
	} else {
		for g.gen == myGen {
			g.cond.Wait()
		}
	}
	if copyOut != nil {
		copyOut(g.result, arg)
	}
	return nil
}

func (c *localComm) Barrier() error {
	return c.rendezvous("barrier", collArg{},
		func([]collArg) []float64 { return nil }, nil)
}

func (c *localComm) AllreduceSum(buf []float64) error {
	return c.rendezvous("allreduce", collArg{buf: buf},
		func(bufs []collArg) []float64 {
			res := make([]float64, len(buf))
			for _, b := range bufs {
				for i, v := range b.buf {
					res[i] += v
				}
			}
			return res
		},
		func(result []float64, arg collArg) { copy(arg.buf, result) })
}

func (c *localComm) AllreduceMax(buf []float64) error {
	return c.rendezvous("allreducemax", collArg{buf: buf},
		func(bufs []collArg) []float64 {
			res := append([]float64(nil), bufs[0].buf...)
			for _, b := range bufs[1:] {
				for i, v := range b.buf {
					if v > res[i] {
						res[i] = v
					}
				}
			}
			return res
		},
		func(result []float64, arg collArg) { copy(arg.buf, result) })
}

func (c *localComm) Allgatherv(segment []float64, counts []int, out []float64) error {
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(out) {
		return fmt.Errorf("cluster: Allgatherv out length %d != Σcounts %d", len(out), total)
	}
	if len(segment) != counts[c.rank] {
		return fmt.Errorf("cluster: rank %d segment length %d != counts[rank] %d", c.rank, len(segment), counts[c.rank])
	}
	return c.rendezvous("allgatherv", collArg{buf: segment, counts: counts, out: out},
		func(bufs []collArg) []float64 {
			res := make([]float64, total)
			at := 0
			for r := 0; r < len(bufs); r++ {
				copy(res[at:], bufs[r].buf)
				at += counts[r]
			}
			return res
		},
		func(result []float64, arg collArg) { copy(arg.out, result) })
}

func (c *localComm) Bcast(buf []float64, root int) error {
	return c.rendezvous("bcast", collArg{buf: buf, root: root},
		func(bufs []collArg) []float64 {
			return append([]float64(nil), bufs[root].buf...)
		},
		func(result []float64, arg collArg) { copy(arg.buf, result) })
}
