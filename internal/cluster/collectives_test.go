package cluster

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"

	"octgb/internal/testutil"
)

// runMeshGroup runs fn on every rank of a TCP mesh group over loopback
// (root inline, workers as goroutines) and tears the mesh down afterwards.
func runMeshGroup(p int, fn func(c Comm) error) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	addr := ln.Addr().String()

	errs := make([]error, p)
	comms := make([]Comm, p)
	var wg sync.WaitGroup
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := DialTCP(addr, r, p, WithMesh())
			if err != nil {
				errs[r] = err
				return
			}
			comms[r] = c
			errs[r] = fn(c)
		}(r)
	}
	root, err := NewTCPRoot(ln, p, WithMesh())
	if err != nil {
		return err
	}
	comms[0] = root
	errs[0] = fn(root)
	wg.Wait()
	for _, c := range comms {
		if cl, ok := c.(io.Closer); ok {
			cl.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// collectiveWorkload exercises every collective with deterministic
// pseudo-random inputs (seeded per (p, rank), so every transport/algorithm
// sees identical data) across a size sweep that covers empty payloads,
// sub-chunk payloads and multi-chunk pipelined payloads, and returns the
// concatenated per-rank outputs.
func collectiveWorkload(p int, run func(fn func(c Comm) error) error) ([][]float64, error) {
	results := make([][]float64, p)
	var mu sync.Mutex
	err := run(func(c Comm) error {
		rank := c.Rank()
		rng := rand.New(rand.NewSource(int64(1000*p + rank)))
		var got []float64
		sizes := []int{0, 1, 5, 1000, 2*collChunkWords + 77}
		for si, n := range sizes {
			sum := make([]float64, n)
			for i := range sum {
				sum[i] = rng.Float64()*2 - 1
			}
			mx := append([]float64(nil), sum...)
			if err := c.AllreduceSum(sum); err != nil {
				return err
			}
			if err := c.AllreduceMax(mx); err != nil {
				return err
			}
			got = append(got, sum...)
			got = append(got, mx...)

			counts := make([]int, p)
			total := 0
			for r := range counts {
				counts[r] = (r*13 + si*7 + 3) % 29
				total += counts[r]
			}
			seg := make([]float64, counts[rank])
			for i := range seg {
				seg[i] = rng.Float64()
			}
			out := make([]float64, total)
			if err := c.Allgatherv(seg, counts, out); err != nil {
				return err
			}
			got = append(got, out...)

			bb := make([]float64, 1+si*200)
			for i := range bb {
				bb[i] = rng.Float64() + float64(rank)
			}
			if err := c.Bcast(bb, (si+p-1)%p); err != nil {
				return err
			}
			got = append(got, bb...)

			if err := c.Barrier(); err != nil {
				return err
			}
		}
		mu.Lock()
		results[rank] = got
		mu.Unlock()
		return nil
	})
	return results, err
}

func compareToReference(t *testing.T, label string, ref, got [][]float64) {
	t.Helper()
	for r := range ref {
		if len(ref[r]) != len(got[r]) {
			t.Fatalf("%s: rank %d output length %d, reference %d", label, r, len(got[r]), len(ref[r]))
		}
		for i := range ref[r] {
			a, b := ref[r][i], got[r][i]
			if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
				t.Fatalf("%s: rank %d word %d: got %v, reference %v", label, r, i, b, a)
			}
		}
	}
}

// TestTopoCollectivesMatchStarReference is the core property test: every
// collective on the in-process transport, topology-aware algorithms vs.
// the monitor-based star oracle, across power-of-two and non-power-of-two
// rank counts.
func TestTopoCollectivesMatchStarReference(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		ref, err := collectiveWorkload(p, func(fn func(c Comm) error) error {
			return RunLocalAlgo(p, nil, Star, fn)
		})
		if err != nil {
			t.Fatalf("p=%d star: %v", p, err)
		}
		topo, err := collectiveWorkload(p, func(fn func(c Comm) error) error {
			return RunLocalAlgo(p, nil, Topo, fn)
		})
		if err != nil {
			t.Fatalf("p=%d topo: %v", p, err)
		}
		compareToReference(t, fmt.Sprintf("local topo p=%d", p), ref, topo)
	}
}

// TestMeshCollectivesMatchStarReference runs the same workload over the
// TCP worker-to-worker mesh and cross-checks against the in-process star
// oracle.
func TestMeshCollectivesMatchStarReference(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	for _, p := range []int{1, 2, 3, 5, 8} {
		ref, err := collectiveWorkload(p, func(fn func(c Comm) error) error {
			return RunLocalAlgo(p, nil, Star, fn)
		})
		if err != nil {
			t.Fatalf("p=%d star: %v", p, err)
		}
		mesh, err := collectiveWorkload(p, func(fn func(c Comm) error) error {
			return runMeshGroup(p, fn)
		})
		if err != nil {
			t.Fatalf("p=%d mesh: %v", p, err)
		}
		compareToReference(t, fmt.Sprintf("tcp mesh p=%d", p), ref, mesh)
	}
}

// TestTCPStarCollectivesStillMatch keeps the coalesced-write star path
// honest against the in-process star oracle.
func TestTCPStarCollectivesStillMatch(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	p := 5
	ref, err := collectiveWorkload(p, func(fn func(c Comm) error) error {
		return RunLocalAlgo(p, nil, Star, fn)
	})
	if err != nil {
		t.Fatal(err)
	}
	star, err := collectiveWorkload(p, func(fn func(c Comm) error) error {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		addr := ln.Addr().String()
		errs := make([]error, p)
		var wg sync.WaitGroup
		for r := 1; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c, err := DialTCP(addr, r, p)
				if err != nil {
					errs[r] = err
					return
				}
				errs[r] = fn(c)
			}(r)
		}
		root, err := NewTCPRoot(ln, p)
		if err != nil {
			return err
		}
		errs[0] = fn(root)
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				return fmt.Errorf("rank %d: %w", r, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	compareToReference(t, "tcp star", ref, star)
}

// overlapStress interleaves non-blocking collectives with p2p ring traffic
// and a blocking barrier while both requests are still in flight — the
// tag-matching layer under -race pressure.
func overlapStress(p, rounds, n int) func(c Comm) error {
	return func(c Comm) error {
		rank := c.Rank()
		msgr, okM := c.(Messenger)
		nb, okNB := c.(NonBlocking)
		if !okM || !okNB {
			return fmt.Errorf("rank %d: transport lacks Messenger/NonBlocking", rank)
		}
		counts := make([]int, p)
		total := 0
		for r := range counts {
			counts[r] = n/2 + r
			total += counts[r]
		}
		for round := 0; round < rounds; round++ {
			sum := make([]float64, n)
			for i := range sum {
				sum[i] = float64(rank + i + round)
			}
			seg := make([]float64, counts[rank])
			for i := range seg {
				seg[i] = float64(100*rank + i)
			}
			out := make([]float64, total)
			r1 := nb.IAllreduceSum(sum)
			r2 := nb.IAllgatherv(seg, counts, out)

			// p2p traffic racing the in-flight collectives.
			payload := []float64{float64(rank), float64(round)}
			if err := msgr.Send((rank+1)%p, payload); err != nil {
				return err
			}
			got, err := msgr.Recv((rank + p - 1) % p)
			if err != nil {
				return err
			}
			prev := (rank + p - 1) % p
			if len(got) != 2 || got[0] != float64(prev) || got[1] != float64(round) {
				return fmt.Errorf("rank %d round %d: p2p got %v", rank, round, got)
			}
			ReleaseBuffer(got)

			// A blocking collective while both requests are in flight.
			if err := c.Barrier(); err != nil {
				return err
			}

			if err := r1.Wait(); err != nil {
				return err
			}
			if err := r2.Wait(); err != nil {
				return err
			}
			for i := range sum {
				want := float64(p*(i+round)) + float64(p*(p-1))/2
				if sum[i] != want {
					return fmt.Errorf("rank %d round %d: sum[%d]=%v want %v", rank, round, i, sum[i], want)
				}
			}
			at := 0
			for r := 0; r < p; r++ {
				for i := 0; i < counts[r]; i++ {
					if out[at] != float64(100*r+i) {
						return fmt.Errorf("rank %d round %d: gather[%d]=%v", rank, round, at, out[at])
					}
					at++
				}
			}
		}
		return nil
	}
}

func TestNonBlockingOverlapStressLocal(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	for _, p := range []int{2, 5, 8} {
		if err := RunLocal(p, nil, overlapStress(p, 25, 64)); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestNonBlockingOverlapStressMesh(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	p := 4
	if err := runMeshGroup(p, overlapStress(p, 10, 64)); err != nil {
		t.Fatal(err)
	}
}

// TestMeshMessengerOrdering: multiple sends to the same destination are
// received in order over the mesh.
func TestMeshMessengerOrdering(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	p := 3
	err := runMeshGroup(p, func(c Comm) error {
		msgr := c.(Messenger)
		rank := c.Rank()
		for k := 0; k < 20; k++ {
			if err := msgr.Send((rank+1)%p, []float64{float64(k), float64(rank)}); err != nil {
				return err
			}
		}
		prev := (rank + p - 1) % p
		for k := 0; k < 20; k++ {
			got, err := msgr.Recv(prev)
			if err != nil {
				return err
			}
			if got[0] != float64(k) || got[1] != float64(prev) {
				return fmt.Errorf("rank %d: msg %d got %v", rank, k, got)
			}
			ReleaseBuffer(got)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMeshCloseUnblocksPeers: tearing a rank down poisons its peers'
// mailboxes so in-flight collectives error out instead of hanging.
func TestMeshCloseUnblocksPeers(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	p := 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := DialTCP(addr, r, p, WithMesh())
			if err != nil {
				errs[r] = err
				return
			}
			if r == 2 {
				// Deserter: leaves without participating.
				errs[r] = c.(io.Closer).Close()
				return
			}
			errs[r] = c.Barrier()
		}(r)
	}
	root, err := NewTCPRoot(ln, p, WithMesh())
	if err != nil {
		t.Fatal(err)
	}
	rootErr := root.Barrier()
	wg.Wait()
	root.(io.Closer).Close()
	if errs[2] != nil {
		t.Fatalf("close failed: %v", errs[2])
	}
	if rootErr == nil && errs[1] == nil {
		t.Fatal("no rank observed the dead peer")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Topo.String() != "topo" || Star.String() != "star" {
		t.Fatalf("Algorithm strings: %v %v", Topo, Star)
	}
}
