package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property: AllreduceSum over random rank contributions equals the serial
// sum on every rank, for arbitrary rank counts and vector lengths.
func TestPropertyAllreduceSum(t *testing.T) {
	f := func(p, n int, seed int64) bool {
		p = 1 + p%8
		if p < 1 {
			p = -p + 1
		}
		n = n % 200
		if n < 0 {
			n = -n
		}
		r := rand.New(rand.NewSource(seed))
		data := make([][]float64, p)
		want := make([]float64, n)
		for rk := range data {
			data[rk] = make([]float64, n)
			for i := range data[rk] {
				data[rk][i] = r.NormFloat64()
				want[i] += data[rk][i]
			}
		}
		ok := true
		err := RunLocal(p, nil, func(c Comm) error {
			buf := append([]float64(nil), data[c.Rank()]...)
			if err := c.AllreduceSum(buf); err != nil {
				return err
			}
			for i := range buf {
				if math.Abs(buf[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// Property: Allgatherv reconstructs the concatenation for random segment
// length splits.
func TestPropertyAllgatherv(t *testing.T) {
	f := func(p int, seed int64) bool {
		p = 1 + abs(p)%6
		r := rand.New(rand.NewSource(seed))
		counts := make([]int, p)
		total := 0
		for i := range counts {
			counts[i] = r.Intn(30)
			total += counts[i]
		}
		want := make([]float64, total)
		for i := range want {
			want[i] = float64(i) * 1.5
		}
		offsets := make([]int, p)
		at := 0
		for i := range counts {
			offsets[i] = at
			at += counts[i]
		}
		ok := true
		err := RunLocal(p, nil, func(c Comm) error {
			seg := want[offsets[c.Rank()] : offsets[c.Rank()]+counts[c.Rank()]]
			out := make([]float64, total)
			if err := c.Allgatherv(append([]float64(nil), seg...), counts, out); err != nil {
				return err
			}
			for i := range out {
				if out[i] != want[i] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property: AllreduceMax is idempotent — applying it twice gives the same
// result as once.
func TestPropertyAllreduceMaxIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 2 + r.Intn(5)
		n := 1 + r.Intn(50)
		base := make([][]float64, p)
		for rk := range base {
			base[rk] = make([]float64, n)
			for i := range base[rk] {
				base[rk][i] = r.NormFloat64() * 10
			}
		}
		var first [][]float64
		run := func() [][]float64 {
			out := make([][]float64, p)
			err := RunLocal(p, nil, func(c Comm) error {
				buf := append([]float64(nil), base[c.Rank()]...)
				if err := c.AllreduceMax(buf); err != nil {
					return err
				}
				if err := c.AllreduceMax(buf); err != nil { // second application
					return err
				}
				out[c.Rank()] = buf
				return nil
			})
			if err != nil {
				return nil
			}
			return out
		}
		first = run()
		if first == nil {
			return false
		}
		// All ranks equal, and equal to the element-wise max.
		for i := 0; i < n; i++ {
			max := math.Inf(-1)
			for rk := range base {
				if base[rk][i] > max {
					max = base[rk][i]
				}
			}
			for rk := range first {
				if first[rk][i] != max {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(9)),
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
