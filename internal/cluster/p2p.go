package cluster

import (
	"fmt"
	"sync"
)

// Messenger is the optional point-to-point extension of Comm. The
// in-process transport implements it; it backs the experimental
// distributed-data engine (the paper's §VI future work), whose ghost
// exchange is naturally pairwise rather than collective. Callers type-assert:
//
//	if msgr, ok := c.(cluster.Messenger); ok { ... }
type Messenger interface {
	// Send delivers a copy of data to rank `to`. Sends to the same
	// destination are received in order. Send never blocks (mailboxes are
	// unbounded), which keeps exchange protocols where every rank sends
	// everything before receiving anything deadlock-free.
	Send(to int, data []float64) error
	// Recv blocks until a message from rank `from` arrives.
	Recv(from int) ([]float64, error)
}

// mailbox is an unbounded FIFO of messages for one (from, to) pair.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue [][]float64
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(data []float64) {
	m.mu.Lock()
	m.queue = append(m.queue, data)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) take() []float64 {
	m.mu.Lock()
	for len(m.queue) == 0 {
		m.cond.Wait()
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	m.mu.Unlock()
	return msg
}

// mailboxFor lazily creates the (from, to) mailbox.
func (g *LocalGroup) mailboxFor(from, to int) *mailbox {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.mail == nil {
		g.mail = make(map[[2]int]*mailbox)
	}
	key := [2]int{from, to}
	mb, ok := g.mail[key]
	if !ok {
		mb = newMailbox()
		g.mail[key] = mb
	}
	return mb
}

func (c *localComm) Send(to int, data []float64) error {
	if to < 0 || to >= c.g.size {
		return fmt.Errorf("cluster: send to invalid rank %d", to)
	}
	c.g.mailboxFor(c.rank, to).put(append([]float64(nil), data...))
	return nil
}

func (c *localComm) Recv(from int) ([]float64, error) {
	if from < 0 || from >= c.g.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d", from)
	}
	return c.g.mailboxFor(from, c.rank).take(), nil
}
