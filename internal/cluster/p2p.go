package cluster

import (
	"fmt"
	"sync"
	"time"
)

// Messenger is the optional point-to-point extension of Comm. The
// in-process transport implements it, and so does the TCP transport when
// the worker-to-worker mesh is enabled (WithMesh); it backs the
// distributed-data engine (the paper's §VI future work), whose ghost
// exchange is naturally pairwise rather than collective. Callers type-assert:
//
//	if msgr, ok := c.(cluster.Messenger); ok { ... }
type Messenger interface {
	// Send delivers a copy of data to rank `to`. Sends to the same
	// destination are received in order. Send never blocks (mailboxes are
	// unbounded), which keeps exchange protocols where every rank sends
	// everything before receiving anything deadlock-free.
	Send(to int, data []float64) error
	// Recv blocks until a message from rank `from` arrives. The returned
	// slice is owned by the caller; hand it back with ReleaseBuffer once
	// its contents have been consumed to recycle the allocation.
	Recv(from int) ([]float64, error)
}

// Message tags. User point-to-point traffic (Messenger) travels on tagP2P;
// every collective operation draws a fresh tag from its communicator's
// sequence counter (collectives.go), so collective rounds never mix with
// each other or with ghost-exchange traffic even when a non-blocking
// collective is still in flight.
const tagP2P = 0

// ---------------------------------------------------------------------------
// float64 message-buffer pool
// ---------------------------------------------------------------------------

// bufPool recycles []float64 message buffers. Send copies the caller's
// data into a pooled buffer, collective stages recycle their scratch, and
// the TCP readers decode frames into pooled buffers — so a large ghost
// exchange or a long collective sweep reaches a steady state with no
// allocation in the hot path instead of churning the GC.
var bufPool sync.Pool

// getBuf returns a length-n buffer, reusing pooled capacity when possible.
func getBuf(n int) []float64 {
	if v := bufPool.Get(); v != nil {
		b := *(v.(*[]float64))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// putBuf recycles a buffer obtained from getBuf (or any slice whose owner
// is done with it).
func putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// ReleaseBuffer hands a slice returned by Messenger.Recv back to the
// transport's buffer pool. Optional — an unreleased buffer is simply
// garbage-collected — but releasing keeps large repeated exchanges (ghost
// payloads, collective sweeps) allocation-free. The caller must not touch
// the slice afterwards.
func ReleaseBuffer(b []float64) { putBuf(b) }

// ---------------------------------------------------------------------------
// Tag-matching mailbox
// ---------------------------------------------------------------------------

// taggedMsg is one in-flight payload on a (from, to) pair.
type taggedMsg struct {
	tag  int
	data []float64
}

// tagBox is an unbounded tag-matching FIFO for one directed (from, to)
// pair: put appends, take removes the FIRST message whose tag matches
// (messages with the same tag are therefore received in send order, while
// different tags — concurrent collectives, p2p traffic — pass each other
// freely, MPI-style). fail poisons the box: every current and future take
// returns the error (used by the TCP readers on connection loss so a dead
// peer produces errors, not hangs).
type tagBox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []taggedMsg
	err   error
}

func newTagBox() *tagBox {
	b := &tagBox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *tagBox) put(tag int, data []float64) {
	b.mu.Lock()
	b.queue = append(b.queue, taggedMsg{tag: tag, data: data})
	// Broadcast, not Signal: waiters may be blocked on different tags.
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *tagBox) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *tagBox) take(tag int) ([]float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i := range b.queue {
			if b.queue[i].tag == tag {
				msg := b.queue[i].data
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return msg, nil
			}
		}
		if b.err != nil {
			return nil, b.err
		}
		b.cond.Wait()
	}
}

// takeTimeout is take with a deadline: if no matching message arrives
// within d it returns errRecvTimeout (d <= 0 means wait forever). The
// deadline is how the chaos wrapper and the hardened transports convert a
// silent peer into ErrRankFailed instead of blocking a collective forever.
func (b *tagBox) takeTimeout(tag int, d time.Duration) ([]float64, error) {
	if d <= 0 {
		return b.take(tag)
	}
	deadline := time.Now().Add(d)
	// The condition variable has no timed wait; a timer broadcast wakes the
	// waiters at the deadline so the loop can observe it.
	timer := time.AfterFunc(d, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer timer.Stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i := range b.queue {
			if b.queue[i].tag == tag {
				msg := b.queue[i].data
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return msg, nil
			}
		}
		if b.err != nil {
			return nil, b.err
		}
		if !time.Now().Before(deadline) {
			return nil, errRecvTimeout
		}
		b.cond.Wait()
	}
}

// ---------------------------------------------------------------------------
// In-process Messenger implementation
// ---------------------------------------------------------------------------

// box returns the (from, to) mailbox from the grid pre-built at
// NewLocalGroup time — plain indexing, no group-wide lock on the Send/Recv
// path (the old lazily-populated map took the group mutex on every call).
func (g *LocalGroup) box(from, to int) *tagBox {
	return g.grid[from*g.size+to]
}

func (c *localComm) sendTag(to, tag int, data []float64) error {
	buf := getBuf(len(data))
	copy(buf, data)
	c.g.box(c.rank, to).put(tag, buf)
	return nil
}

func (c *localComm) recvTag(from, tag int) ([]float64, error) {
	return c.g.box(from, c.rank).take(tag)
}

func (c *localComm) recvTagTimeout(from, tag int, d time.Duration) ([]float64, error) {
	return c.g.box(from, c.rank).takeTimeout(tag, d)
}

func (c *localComm) Send(to int, data []float64) error {
	if to < 0 || to >= c.g.size {
		return fmt.Errorf("cluster: send to invalid rank %d", to)
	}
	return c.sendTag(to, tagP2P, data)
}

func (c *localComm) Recv(from int) ([]float64, error) {
	if from < 0 || from >= c.g.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d", from)
	}
	return c.recvTag(from, tagP2P)
}
