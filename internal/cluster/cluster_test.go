package cluster

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
)

func TestLocalAllreduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 7, 16} {
		err := RunLocal(p, nil, func(c Comm) error {
			buf := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
			if err := c.AllreduceSum(buf); err != nil {
				return err
			}
			wantSum := float64(p*(p-1)) / 2
			var wantSq float64
			for r := 0; r < p; r++ {
				wantSq += float64(r * r)
			}
			if buf[0] != wantSum || buf[1] != float64(p) || buf[2] != wantSq {
				return fmt.Errorf("p=%d rank=%d: got %v", p, c.Rank(), buf)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestLocalAllreduceMax(t *testing.T) {
	err := RunLocal(5, nil, func(c Comm) error {
		buf := []float64{float64(-c.Rank()), float64(c.Rank())}
		if err := c.AllreduceMax(buf); err != nil {
			return err
		}
		if buf[0] != 0 || buf[1] != 4 {
			return fmt.Errorf("rank %d: %v", c.Rank(), buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalAllgatherv(t *testing.T) {
	p := 4
	counts := []int{2, 0, 3, 1}
	total := 6
	err := RunLocal(p, nil, func(c Comm) error {
		seg := make([]float64, counts[c.Rank()])
		for i := range seg {
			seg[i] = float64(c.Rank()*10 + i)
		}
		out := make([]float64, total)
		if err := c.Allgatherv(seg, counts, out); err != nil {
			return err
		}
		want := []float64{0, 1, 20, 21, 22, 30}
		for i := range want {
			if out[i] != want[i] {
				return fmt.Errorf("rank %d: out=%v", c.Rank(), out)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalBcast(t *testing.T) {
	err := RunLocal(6, nil, func(c Comm) error {
		buf := []float64{float64(c.Rank()), float64(c.Rank() * 2)}
		if err := c.Bcast(buf, 3); err != nil {
			return err
		}
		if buf[0] != 3 || buf[1] != 6 {
			return fmt.Errorf("rank %d: %v", c.Rank(), buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalSequenceOfCollectives(t *testing.T) {
	// Back-to-back collectives of different kinds and sizes must not
	// interfere — the generation logic under test.
	err := RunLocal(8, nil, func(c Comm) error {
		for round := 0; round < 20; round++ {
			buf := []float64{1}
			if err := c.AllreduceSum(buf); err != nil {
				return err
			}
			if buf[0] != 8 {
				return fmt.Errorf("round %d: %v", round, buf[0])
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			big := make([]float64, 100+round)
			big[round] = float64(c.Rank())
			if err := c.AllreduceMax(big); err != nil {
				return err
			}
			if big[round] != 7 {
				return fmt.Errorf("round %d: max %v", round, big[round])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalHookObservesCollectives(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	words := 0
	hook := func(kind string, w int) {
		mu.Lock()
		calls[kind]++
		words += w
		mu.Unlock()
	}
	err := RunLocal(3, hook, func(c Comm) error {
		buf := make([]float64, 10)
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls["allreduce"] != 1 || calls["barrier"] != 1 {
		t.Errorf("hook calls: %v", calls)
	}
	if words != 10 {
		t.Errorf("hook words: %d", words)
	}
}

func TestLocalAllgathervLengthMismatch(t *testing.T) {
	err := RunLocal(2, nil, func(c Comm) error {
		out := make([]float64, 5) // wrong: counts sum to 4
		return c.Allgatherv(make([]float64, 2), []int{2, 2}, out)
	})
	if err == nil {
		t.Error("length mismatch not detected")
	}
}

// startTCPGroup spins up a size-rank TCP group over loopback in one
// process (root inline, workers as goroutines) and runs fn on every rank.
func startTCPGroup(t *testing.T, size int, fn func(c Comm) error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := DialTCP(addr, r, size)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = fn(c)
		}(r)
	}
	root, err := NewTCPRoot(ln, size)
	if err != nil {
		t.Fatal(err)
	}
	errs[0] = fn(root)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPAllreduceSum(t *testing.T) {
	startTCPGroup(t, 4, func(c Comm) error {
		buf := []float64{float64(c.Rank() + 1), -2}
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		if buf[0] != 10 || buf[1] != -8 {
			return fmt.Errorf("rank %d: %v", c.Rank(), buf)
		}
		return nil
	})
}

func TestTCPAllgathervAndBcast(t *testing.T) {
	counts := []int{1, 2, 1}
	startTCPGroup(t, 3, func(c Comm) error {
		seg := make([]float64, counts[c.Rank()])
		for i := range seg {
			seg[i] = float64(c.Rank()) + float64(i)/10
		}
		out := make([]float64, 4)
		if err := c.Allgatherv(seg, counts, out); err != nil {
			return err
		}
		want := []float64{0, 1, 1.1, 2}
		for i := range want {
			if math.Abs(out[i]-want[i]) > 1e-12 {
				return fmt.Errorf("rank %d: out %v", c.Rank(), out)
			}
		}
		b := []float64{float64(c.Rank())}
		if err := c.Bcast(b, 1); err != nil {
			return err
		}
		if b[0] != 1 {
			return fmt.Errorf("rank %d: bcast %v", c.Rank(), b)
		}
		return c.Barrier()
	})
}

func TestTCPLargePayload(t *testing.T) {
	n := 200000 // forces multiple socket buffer flushes
	startTCPGroup(t, 3, func(c Comm) error {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(c.Rank())
		}
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != 3 { // 0+1+2
				return fmt.Errorf("rank %d: buf[%d]=%v", c.Rank(), i, buf[i])
			}
		}
		return nil
	})
}

func TestDialTCPRejectsBadRank(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1", 0, 4); err == nil {
		t.Error("rank 0 dial accepted")
	}
	if _, err := DialTCP("127.0.0.1:1", 4, 4); err == nil {
		t.Error("rank out of range accepted")
	}
}
