package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"octgb/internal/obs"
)

// This file implements the topology-aware collective algorithms on top of
// the tagged pairwise layer (pairwise below) — the library's answer to the
// O(P·m) root bottleneck of the star transports. The algorithms are the
// classical log-depth ones the paper's §IV-C cost model assumes
// (t_s·log P + t_w·m, Grama et al. Table 4.1, and the log-depth reductions
// behind the boundary-integral treecode scaling of Geng, arXiv:1301.5914):
//
//   - AllreduceSum / AllreduceMax: recursive doubling. Non-power-of-two
//     rank counts use the standard pre/post fold: the first 2r ranks
//     (r = P − 2^⌊log₂P⌋) pair up, odds fold into evens, the surviving
//     2^⌊log₂P⌋ ranks run the power-of-two exchange, and the folded ranks
//     receive the result back at the end. Both peers of every exchange
//     combine with commutative element-wise ops (a+b ≡ b+a bitwise in
//     IEEE-754), so all ranks finish with bitwise-identical buffers.
//   - Allgatherv: ring. P−1 steps; step s forwards the block received at
//     step s−1, so each rank moves Σ counts − its own segment words in
//     total regardless of P — the bandwidth-optimal form.
//   - Bcast: binomial tree rooted at `root`, log₂P rounds.
//   - Barrier: dissemination, ⌈log₂P⌉ rounds of empty messages.
//
// Large payloads are pipelined in collChunkWords-sized chunks: a stage's
// sends are split into bounded frames so a transport can stream a chunk
// while the peer is already combining the previous one, and no stage ever
// materializes an unbounded scratch buffer.
//
// Every collective operation draws a fresh tag from the communicator's
// sequence counter. Ranks execute collectives in the same program order
// (the usual SPMD contract), so operation k on every rank shares a tag and
// chunk streams can never mix across operations — which is what makes the
// non-blocking forms safe to overlap with each other and with p2p traffic.

// Algorithm selects the collective implementation of a transport.
type Algorithm int

const (
	// Topo selects the topology-aware algorithms of this file (default).
	Topo Algorithm = iota
	// Star selects the root-star / central-monitor reference
	// implementations — the correctness oracle and fallback.
	Star
)

func (a Algorithm) String() string {
	if a == Star {
		return "star"
	}
	return "topo"
}

// collChunkWords is the pipelining chunk: 8192 float64 words = 64 KiB per
// frame. Every payload is sent as max(1, ⌈n/collChunkWords⌉) frames; the
// guaranteed ≥1 frame keeps zero-length stages (barrier tokens, empty
// Allgatherv blocks) as genuine rendezvous messages with no special cases.
const collChunkWords = 8192

// Request is an in-flight non-blocking collective. Wait blocks until the
// operation completes and returns its error; the buffers passed at
// initiation must not be read or written until Wait returns. Wait may be
// called once.
type Request interface {
	Wait() error
}

// NonBlocking is the optional asynchronous extension of Comm: initiation
// returns immediately and the operation proceeds in the background, which
// lets callers overlap communication with independent compute (the
// engines overlap the Born-radius Allgatherv with energy-phase list
// construction). All ranks must initiate collectives — blocking or not —
// in the same order. Implementations without genuine asynchrony (the star
// transports) complete the operation synchronously at initiation and
// return an already-done Request, which is correct but overlap-free.
type NonBlocking interface {
	IAllreduceSum(buf []float64) Request
	IAllgatherv(segment []float64, counts []int, out []float64) Request
}

// request is the Request implementation shared by the async collectives.
type request struct {
	done chan struct{}
	err  error
}

func (r *request) Wait() error {
	<-r.done
	return r.err
}

// doneRequest wraps an already-completed operation.
func doneRequest(err error) Request {
	r := &request{done: make(chan struct{}), err: err}
	close(r.done)
	return r
}

// pairwise is the internal tagged point-to-point substrate the collective
// algorithms run on. Both transports implement it: the in-process group
// over its mailbox grid, the TCP mesh over its per-pair connections.
// sendTag must not block indefinitely on an unresponsive receiver
// (unbounded mailboxes / dedicated reader goroutines), so the "send
// everything, then receive" stage structure cannot deadlock.
type pairwise interface {
	Rank() int
	Size() int
	sendTag(to, tag int, data []float64) error
	recvTag(from, tag int) ([]float64, error)
}

// coll runs the collective algorithms over a pairwise transport. hook, if
// non-nil, observes completed collectives (set on rank 0 only, preserving
// the once-per-collective contract of CollectiveHook). obs, if non-nil,
// records per-kind per-rank latency histograms, byte counters and trace
// spans for every completed collective (set on every rank).
type coll struct {
	pw   pairwise
	hook CollectiveHook
	obs  *obs.Observer
	seq  atomic.Int64
}

// nextTag allocates the tag for one collective operation. Tag 0 is p2p;
// collective tags start at 1 and never repeat within a session.
func (c *coll) nextTag() int { return int(c.seq.Add(1)) }

func (c *coll) observe(kind string, words int) {
	if c.hook != nil {
		c.hook(kind, words)
	}
}

// sendChunked streams data to `to` as max(1, ⌈n/chunk⌉) frames.
func (c *coll) sendChunked(to, tag int, data []float64) error {
	for {
		n := len(data)
		if n > collChunkWords {
			n = collChunkWords
		}
		if err := c.pw.sendTag(to, tag, data[:n]); err != nil {
			return err
		}
		data = data[n:]
		if len(data) == 0 {
			return nil
		}
	}
}

// recvChunks receives a sendChunked stream from `from`, applying consume
// to each chunk against the matching dst window. Chunks of one tag arrive
// in send order (FIFO per pair per tag), so offsets line up by construction.
func (c *coll) recvChunks(from, tag int, dst []float64, consume func(dst, src []float64)) error {
	at := 0
	for {
		msg, err := c.pw.recvTag(from, tag)
		if err != nil {
			return err
		}
		if at+len(msg) > len(dst) {
			putBuf(msg)
			return fmt.Errorf("cluster: rank %d: oversized chunk from %d (tag %d): %d+%d > %d",
				c.pw.Rank(), from, tag, at, len(msg), len(dst))
		}
		consume(dst[at:at+len(msg)], msg)
		at += len(msg)
		putBuf(msg)
		if at >= len(dst) {
			return nil
		}
	}
}

func copyInto(dst, src []float64) { copy(dst, src) }
func sumInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}
func maxInto(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// ---------------------------------------------------------------------------
// Allreduce: recursive doubling with non-power-of-two pre/post fold
// ---------------------------------------------------------------------------

func (c *coll) allreduceTag(tag int, buf []float64, op func(dst, src []float64)) error {
	size, rank := c.pw.Size(), c.pw.Rank()
	if size == 1 {
		return nil
	}
	pof2 := 1
	for pof2*2 <= size {
		pof2 *= 2
	}
	rem := size - pof2

	// Pre-fold: the first 2·rem ranks pair up (2i, 2i+1); odds fold their
	// contribution into the even neighbor and sit out the exchange.
	newrank := rank - rem
	switch {
	case rank < 2*rem && rank%2 != 0:
		if err := c.sendChunked(rank-1, tag, buf); err != nil {
			return err
		}
		newrank = -1
	case rank < 2*rem:
		if err := c.recvChunks(rank+1, tag, buf, op); err != nil {
			return err
		}
		newrank = rank / 2
	}

	// Power-of-two recursive doubling among the surviving ranks.
	if newrank >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			np := newrank ^ mask
			peer := np + rem
			if np < rem {
				peer = 2 * np
			}
			if err := c.sendChunked(peer, tag, buf); err != nil {
				return err
			}
			if err := c.recvChunks(peer, tag, buf, op); err != nil {
				return err
			}
		}
	}

	// Post-fold: evens hand the finished result back to their odd partner.
	switch {
	case rank < 2*rem && rank%2 != 0:
		return c.recvChunks(rank-1, tag, buf, copyInto)
	case rank < 2*rem:
		return c.sendChunked(rank+1, tag, buf)
	}
	return nil
}

func (c *coll) AllreduceSum(buf []float64) error {
	start := time.Now()
	if err := c.allreduceTag(c.nextTag(), buf, sumInto); err != nil {
		return err
	}
	c.observe("allreduce", len(buf))
	recordCollective(c.obs, "allreduce", c.pw.Rank(), len(buf), start)
	return nil
}

func (c *coll) AllreduceMax(buf []float64) error {
	start := time.Now()
	if err := c.allreduceTag(c.nextTag(), buf, maxInto); err != nil {
		return err
	}
	c.observe("allreducemax", len(buf))
	recordCollective(c.obs, "allreducemax", c.pw.Rank(), len(buf), start)
	return nil
}

func (c *coll) IAllreduceSum(buf []float64) Request {
	tag := c.nextTag()
	start := time.Now()
	r := &request{done: make(chan struct{})}
	go func() {
		r.err = c.allreduceTag(tag, buf, sumInto)
		if r.err == nil {
			c.observe("allreduce", len(buf))
			recordCollective(c.obs, "allreduce", c.pw.Rank(), len(buf), start)
		}
		close(r.done)
	}()
	return r
}

// ---------------------------------------------------------------------------
// Allgatherv: ring
// ---------------------------------------------------------------------------

// checkGatherArgs validates the Allgatherv contract shared by every
// implementation and returns the per-rank output offsets.
func checkGatherArgs(rank int, segment []float64, counts []int, out []float64) ([]int, error) {
	offsets := make([]int, len(counts))
	total := 0
	for r, n := range counts {
		offsets[r] = total
		total += n
	}
	if total != len(out) {
		return nil, fmt.Errorf("cluster: Allgatherv out length %d != Σcounts %d", len(out), total)
	}
	if len(segment) != counts[rank] {
		return nil, fmt.Errorf("cluster: rank %d segment length %d != counts[rank] %d", rank, len(segment), counts[rank])
	}
	return offsets, nil
}

func (c *coll) allgathervTag(tag int, segment []float64, counts []int, out []float64) error {
	size, rank := c.pw.Size(), c.pw.Rank()
	offsets, err := checkGatherArgs(rank, segment, counts, out)
	if err != nil {
		return err
	}
	copy(out[offsets[rank]:offsets[rank]+counts[rank]], segment)
	if size == 1 {
		return nil
	}
	right, left := (rank+1)%size, (rank+size-1)%size
	for s := 0; s < size-1; s++ {
		sendBlk := ((rank-s)%size + size) % size
		recvBlk := ((rank-s-1)%size + size) % size
		if err := c.sendChunked(right, tag, out[offsets[sendBlk]:offsets[sendBlk]+counts[sendBlk]]); err != nil {
			return err
		}
		if err := c.recvChunks(left, tag, out[offsets[recvBlk]:offsets[recvBlk]+counts[recvBlk]], copyInto); err != nil {
			return err
		}
	}
	return nil
}

func (c *coll) Allgatherv(segment []float64, counts []int, out []float64) error {
	start := time.Now()
	if err := c.allgathervTag(c.nextTag(), segment, counts, out); err != nil {
		return err
	}
	c.observe("allgatherv", len(out))
	recordCollective(c.obs, "allgatherv", c.pw.Rank(), len(out), start)
	return nil
}

func (c *coll) IAllgatherv(segment []float64, counts []int, out []float64) Request {
	tag := c.nextTag()
	start := time.Now()
	r := &request{done: make(chan struct{})}
	go func() {
		r.err = c.allgathervTag(tag, segment, counts, out)
		if r.err == nil {
			c.observe("allgatherv", len(out))
			recordCollective(c.obs, "allgatherv", c.pw.Rank(), len(out), start)
		}
		close(r.done)
	}()
	return r
}

// ---------------------------------------------------------------------------
// Bcast: binomial tree
// ---------------------------------------------------------------------------

func (c *coll) bcastTag(tag int, buf []float64, root int) error {
	size, rank := c.pw.Size(), c.pw.Rank()
	if size == 1 {
		return nil
	}
	if root < 0 || root >= size {
		return fmt.Errorf("cluster: bcast root %d out of range", root)
	}
	vrank := (rank - root + size) % size
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			src := (rank - mask + size) % size
			if err := c.recvChunks(src, tag, buf, copyInto); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size {
			dst := (rank + mask) % size
			if err := c.sendChunked(dst, tag, buf); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

func (c *coll) Bcast(buf []float64, root int) error {
	start := time.Now()
	if err := c.bcastTag(c.nextTag(), buf, root); err != nil {
		return err
	}
	c.observe("bcast", len(buf))
	recordCollective(c.obs, "bcast", c.pw.Rank(), len(buf), start)
	return nil
}

// ---------------------------------------------------------------------------
// Barrier: dissemination
// ---------------------------------------------------------------------------

func (c *coll) Barrier() error {
	size, rank := c.pw.Size(), c.pw.Rank()
	if size == 1 {
		return nil
	}
	start := time.Now()
	tag := c.nextTag()
	for k := 1; k < size; k <<= 1 {
		if err := c.pw.sendTag((rank+k)%size, tag, nil); err != nil {
			return err
		}
		msg, err := c.pw.recvTag((rank-k+size)%size, tag)
		if err != nil {
			return err
		}
		putBuf(msg)
	}
	c.observe("barrier", 0)
	recordCollective(c.obs, "barrier", rank, 0, start)
	return nil
}
