package partition

import (
	"math/rand"
	"testing"
)

func checkCover(t *testing.T, segs []Segment, n int) {
	t.Helper()
	at := 0
	for i, s := range segs {
		if s.Lo != at {
			t.Fatalf("segment %d starts at %d, want %d", i, s.Lo, at)
		}
		if s.Hi < s.Lo {
			t.Fatalf("segment %d inverted", i)
		}
		at = s.Hi
	}
	if at != n {
		t.Fatalf("segments end at %d, want %d", at, n)
	}
}

func TestEvenCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {0, 4}, {7, 7}, {5, 8}, {100, 1}, {144, 12}} {
		segs := Even(tc.n, tc.p)
		if len(segs) != tc.p {
			t.Fatalf("n=%d p=%d: %d segments", tc.n, tc.p, len(segs))
		}
		checkCover(t, segs, tc.n)
		min, max := tc.n, 0
		for _, s := range segs {
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d p=%d: sizes differ by %d", tc.n, tc.p, max-min)
		}
	}
}

func TestForRank(t *testing.T) {
	if got := ForRank(10, 3, 1); got != (Segment{4, 7}) {
		t.Errorf("ForRank = %+v", got)
	}
}

func TestWeightedEvenCovers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(200)
		p := 1 + r.Intn(10)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64() * 10
		}
		segs := WeightedEven(w, p)
		if len(segs) != p {
			t.Fatalf("%d segments, want %d", len(segs), p)
		}
		checkCover(t, segs, n)
	}
}

func TestWeightedEvenBalancesSkewedWeights(t *testing.T) {
	// Strongly front-loaded weights: the naive count split would give
	// rank 0 nearly all the work; the weighted split must do much better.
	n, p := 1000, 4
	w := make([]float64, n)
	for i := range w {
		if i < 100 {
			w[i] = 50
		} else {
			w[i] = 1
		}
	}
	var total float64
	for _, x := range w {
		total += x
	}
	segs := WeightedEven(w, p)
	maxLoad := 0.0
	for _, s := range segs {
		var l float64
		for i := s.Lo; i < s.Hi; i++ {
			l += w[i]
		}
		if l > maxLoad {
			maxLoad = l
		}
	}
	ideal := total / float64(p)
	if maxLoad > ideal*1.5 {
		t.Errorf("weighted split max load %v vs ideal %v", maxLoad, ideal)
	}
	// Count-based split is far worse on this input.
	countMax := 0.0
	for _, s := range Even(n, p) {
		var l float64
		for i := s.Lo; i < s.Hi; i++ {
			l += w[i]
		}
		if l > countMax {
			countMax = l
		}
	}
	if countMax < maxLoad {
		t.Errorf("count split (%v) beat weighted split (%v) on skewed input", countMax, maxLoad)
	}
}

func TestWeightedEvenEdgeCases(t *testing.T) {
	checkCover(t, WeightedEven(nil, 3), 0)
	checkCover(t, WeightedEven([]float64{5}, 4), 1)
	checkCover(t, WeightedEven(make([]float64, 10), 3), 10) // all-zero weights
}
