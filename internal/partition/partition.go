// Package partition implements the static work-division schemes of the
// paper's §IV-A: contiguous even segments of leaves (node-based division)
// or atoms (atom-based division) assigned to ranks, plus a weighted variant
// that balances measured work rather than item counts.
package partition

// Segment is a half-open index range [Lo, Hi).
type Segment struct {
	Lo, Hi int
}

// Len returns the number of items in the segment.
func (s Segment) Len() int { return s.Hi - s.Lo }

// Even splits n items into p contiguous segments whose sizes differ by at
// most one (the paper's "divide evenly among processes"). Ranks beyond n
// receive empty segments.
func Even(n, p int) []Segment {
	if p < 1 {
		p = 1
	}
	out := make([]Segment, p)
	base := n / p
	rem := n % p
	at := 0
	for r := 0; r < p; r++ {
		sz := base
		if r < rem {
			sz++
		}
		out[r] = Segment{at, at + sz}
		at += sz
	}
	return out
}

// ForRank returns rank r's segment of Even(n, p).
func ForRank(n, p, r int) Segment { return Even(n, p)[r] }

// WeightedEven splits items (with the given non-negative weights) into p
// contiguous segments of approximately equal total weight using a greedy
// sweep: a segment closes once it reaches the ideal share. This is the
// "explicit static load balancing" refinement for non-uniform leaves.
func WeightedEven(weights []float64, p int) []Segment {
	n := len(weights)
	if p < 1 {
		p = 1
	}
	out := make([]Segment, p)
	var total float64
	for _, w := range weights {
		total += w
	}
	at := 0
	var used float64
	for r := 0; r < p; r++ {
		lo := at
		// Remaining ideal share for this and subsequent ranks.
		share := (total - used) / float64(p-r)
		var acc float64
		for at < n && (acc < share || p-r == 1) {
			// Leave at least one item per remaining rank when possible.
			if n-at <= p-r-1 {
				break
			}
			acc += weights[at]
			at++
		}
		used += acc
		out[r] = Segment{lo, at}
	}
	out[p-1].Hi = n
	if p >= 2 && out[p-1].Lo > n {
		out[p-1].Lo = n
	}
	return out
}
