package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property: Even always covers [0,n) with p contiguous ordered segments.
func TestPropertyEvenCovers(t *testing.T) {
	f := func(n, p int) bool {
		n, p = abs(n)%10000, 1+abs(p)%300
		segs := Even(n, p)
		if len(segs) != p {
			return false
		}
		at := 0
		for _, s := range segs {
			if s.Lo != at || s.Hi < s.Lo {
				return false
			}
			at = s.Hi
		}
		return at == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Error(err)
	}
}

// Property: WeightedEven never produces a worse max load than giving one
// rank everything, and covers the index space.
func TestPropertyWeightedEvenBounded(t *testing.T) {
	f := func(seed int64, p int) bool {
		p = 1 + abs(p)%20
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(500)
		w := make([]float64, n)
		var total float64
		for i := range w {
			w[i] = r.Float64() * 10
			total += w[i]
		}
		segs := WeightedEven(w, p)
		at := 0
		var maxLoad float64
		for _, s := range segs {
			if s.Lo != at {
				return false
			}
			var l float64
			for i := s.Lo; i < s.Hi; i++ {
				l += w[i]
			}
			if l > maxLoad {
				maxLoad = l
			}
			at = s.Hi
		}
		return at == n && maxLoad <= total+1e-9
	}
	cfg := &quick.Config{
		MaxCount: 150,
		Rand:     rand.New(rand.NewSource(62)),
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
			v[1] = reflect.ValueOf(r.Intn(40))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// WeightedEven on uniform weights behaves like Even (within one item).
func TestWeightedEvenUniformMatchesEven(t *testing.T) {
	n, p := 100, 7
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	ws := WeightedEven(w, p)
	es := Even(n, p)
	for i := range ws {
		if d := ws[i].Len() - es[i].Len(); d < -1 || d > 1 {
			t.Fatalf("segment %d: weighted %d vs even %d", i, ws[i].Len(), es[i].Len())
		}
	}
}

func TestSegmentLen(t *testing.T) {
	if (Segment{3, 10}).Len() != 7 {
		t.Error("Len wrong")
	}
	if (Segment{5, 5}).Len() != 0 {
		t.Error("empty segment Len wrong")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
