package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeOwnerLIFO: the owner pops in reverse push order.
func TestDequeOwnerLIFO(t *testing.T) {
	d := NewDequeBench(false)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		t := Task(func(int) { got = append(got, i) })
		d.Push(&t)
	}
	for {
		task, ok := d.Pop()
		if !ok {
			break
		}
		(*task)(0)
	}
	if len(got) != 100 {
		t.Fatalf("popped %d of 100", len(got))
	}
	for i, v := range got {
		if v != 99-i {
			t.Fatalf("pop order not LIFO at %d: got %d", i, v)
		}
	}
}

// TestDequeStealFIFO: a thief takes the oldest task first.
func TestDequeStealFIFO(t *testing.T) {
	d := NewDequeBench(false)
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		t := Task(func(int) { got = append(got, i) })
		d.Push(&t)
	}
	for {
		task, ok := d.Steal()
		if !ok {
			break
		}
		(*task)(0)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("steal order not FIFO at %d: got %d", i, v)
		}
	}
}

// TestDequeGrowth: pushing far past the initial ring capacity keeps every
// task, in order, across the ring doublings.
func TestDequeGrowth(t *testing.T) {
	d := NewDequeBench(false)
	const n = 10 * ringInit
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		t := Task(func(int) { seen[i] = true })
		d.Push(&t)
	}
	count := 0
	for {
		task, ok := d.Pop()
		if !ok {
			break
		}
		(*task)(0)
		count++
	}
	if count != n {
		t.Fatalf("recovered %d of %d tasks after growth", count, n)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("task %d lost during ring growth", i)
		}
	}
}

// TestDequeInterleavedPushPopWraps exercises index wrap-around: the ring
// indices keep increasing while the occupancy stays small.
func TestDequeInterleavedPushPopWraps(t *testing.T) {
	d := NewDequeBench(false)
	executed := 0
	bump := Task(func(int) { executed++ })
	for round := 0; round < 20*ringInit; round++ {
		d.Push(&bump)
		d.Push(&bump)
		for k := 0; k < 2; k++ {
			task, ok := d.Pop()
			if !ok {
				t.Fatalf("round %d: deque lost a task", round)
			}
			(*task)(0)
		}
	}
	if want := 40 * ringInit; executed != want {
		t.Fatalf("executed %d, want %d", executed, want)
	}
}

// TestDequeConcurrentStealers: one owner pushing and popping against many
// thieves; every task must execute exactly once. Run with -race this is
// the memory-ordering smoke test for the Chase–Lev implementation.
func TestDequeConcurrentStealers(t *testing.T) {
	const (
		nTasks   = 20000
		nThieves = 4
	)
	d := NewDequeBench(false)
	hits := make([]int32, nTasks)
	var done atomic.Bool
	var wg sync.WaitGroup
	for th := 0; th < nThieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if task, ok := d.Steal(); ok {
					(*task)(0)
				}
			}
			// Drain whatever is left after the owner finished.
			for {
				task, ok := d.Steal()
				if !ok {
					return
				}
				(*task)(0)
			}
		}()
	}
	for i := 0; i < nTasks; i++ {
		i := i
		task := Task(func(int) { atomic.AddInt32(&hits[i], 1) })
		d.Push(&task)
		if i%3 == 0 {
			if task, ok := d.Pop(); ok {
				(*task)(0)
			}
		}
	}
	// Owner drains its remainder, racing the thieves for the last items.
	for {
		task, ok := d.Pop()
		if !ok {
			break
		}
		(*task)(0)
	}
	done.Store(true)
	wg.Wait()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d executed %d times", i, h)
		}
	}
}

// TestPoolMatchesMutexPool: the lock-free pool and the mutex oracle
// produce the same coverage and Executed counts for identical workloads.
func TestPoolMatchesMutexPool(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, n := range []int{1, 5, 1000, 4096} {
			run := func(pool *Pool) (int64, Stats) {
				var sum int64
				st := pool.ParallelFor(n, 16, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&sum, int64(i))
					}
				})
				return sum, st
			}
			sumCL, stCL := run(NewPool(p))
			sumMu, stMu := run(NewMutexPool(p))
			if sumCL != sumMu {
				t.Fatalf("p=%d n=%d: sums differ %d vs %d", p, n, sumCL, sumMu)
			}
			if stCL.Executed != stMu.Executed {
				t.Fatalf("p=%d n=%d: Executed differ %d vs %d", p, n, stCL.Executed, stMu.Executed)
			}
		}
	}
}

// TestParallelForTinyNSingleTask: the automatic grain no longer fans tiny
// ranges out into unit tasks — n < workers runs as one task (the
// regression test for the grain clamp).
func TestParallelForTinyNSingleTask(t *testing.T) {
	pool := NewPool(8)
	hits := make([]int32, 5)
	st := pool.ParallelFor(len(hits), 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	if st.Executed != 1 {
		t.Errorf("tiny ParallelFor spawned %d tasks, want 1", st.Executed)
	}
}

// TestParallelForDefaultGrainClamp: automatic grain never goes below
// DefaultMinGrain, and explicit grains are honored unchanged.
func TestParallelForDefaultGrainClamp(t *testing.T) {
	pool := NewPool(8)
	n := 4 * DefaultMinGrain // small enough that n/(8p) would be < MinGrain
	var chunks int64
	st := pool.ParallelFor(n, 0, func(w, lo, hi int) {
		atomic.AddInt64(&chunks, 1)
		if hi-lo > DefaultMinGrain {
			t.Errorf("chunk [%d,%d) exceeds grain", lo, hi)
		}
	})
	if chunks != 4 {
		t.Errorf("got %d chunks, want 4", chunks)
	}
	if st.Executed != 4 {
		t.Errorf("Executed = %d, want 4", st.Executed)
	}
	// Explicit grain 1 still splits fully.
	var unit int64
	pool.ParallelFor(10, 1, func(w, lo, hi int) { atomic.AddInt64(&unit, 1) })
	if unit != 10 {
		t.Errorf("explicit grain 1 produced %d chunks, want 10", unit)
	}
}

// TestMutexPoolNestedSpawns mirrors TestRunNestedSpawns on the oracle.
func TestMutexPoolNestedSpawns(t *testing.T) {
	pool := NewMutexPool(4)
	var count int64
	var spawnTree func(depth int) Task
	spawnTree = func(depth int) Task {
		return func(w int) {
			if depth == 0 {
				atomic.AddInt64(&count, 1)
				return
			}
			pool.Spawn(w, spawnTree(depth-1))
			pool.Spawn(w, spawnTree(depth-1))
		}
	}
	stats := pool.Run(spawnTree(8))
	if count != 256 {
		t.Errorf("executed %d leaves, want 256", count)
	}
	if stats.Executed != 511 {
		t.Errorf("stats.Executed = %d, want 511", stats.Executed)
	}
}

func BenchmarkDequePushPop(b *testing.B) {
	for _, impl := range []struct {
		name  string
		mutex bool
	}{{"chaselev", false}, {"mutex", true}} {
		b.Run(impl.name, func(b *testing.B) {
			d := NewDequeBench(impl.mutex)
			task := Task(func(int) {})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&task)
				d.Pop()
			}
		})
	}
}

func BenchmarkDequeSteal(b *testing.B) {
	for _, impl := range []struct {
		name  string
		mutex bool
	}{{"chaselev", false}, {"mutex", true}} {
		b.Run(impl.name, func(b *testing.B) {
			d := NewDequeBench(impl.mutex)
			task := Task(func(int) {})
			// Keep the deque deep so mutex steal pays its O(n) shift.
			for i := 0; i < 1024; i++ {
				d.Push(&task)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := d.Steal(); !ok {
					b.StopTimer()
					for j := 0; j < 1024; j++ {
						d.Push(&task)
					}
					b.StartTimer()
				}
			}
		})
	}
}

func BenchmarkParallelFor(b *testing.B) {
	work := func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i % 17)
		}
		_ = s
	}
	for _, impl := range []struct {
		name string
		mk   func(p int) *Pool
	}{{"chaselev", NewPool}, {"mutex", NewMutexPool}} {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(impl.name+"/p="+string(rune('0'+p)), func(b *testing.B) {
				pool := impl.mk(p)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pool.ParallelFor(1<<14, 8, work)
				}
			})
		}
	}
}
