package sched

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		pool := NewPool(p)
		n := 10000
		hits := make([]int32, n)
		pool.ParallelFor(n, 0, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("p=%d: index %d hit %d times", p, i, h)
			}
		}
	}
}

func TestParallelForSum(t *testing.T) {
	pool := NewPool(4)
	n := 100000
	partial := make([]float64, pool.Workers())
	pool.ParallelFor(n, 100, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			partial[w] += float64(i)
		}
	})
	var sum float64
	for _, s := range partial {
		sum += s
	}
	want := float64(n) * float64(n-1) / 2
	if sum != want {
		t.Errorf("sum = %v, want %v", sum, want)
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	pool := NewPool(3)
	ran := int32(0)
	pool.ParallelFor(0, 0, func(w, lo, hi int) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Error("fn ran for empty range")
	}
	pool.ParallelFor(1, 0, func(w, lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		atomic.AddInt32(&ran, 1)
	})
	if ran != 1 {
		t.Errorf("fn ran %d times for 1-element range", ran)
	}
}

func TestRunNestedSpawns(t *testing.T) {
	// A recursive fibonacci-style spawn tree: all leaves must execute.
	pool := NewPool(4)
	var count int64
	var spawnTree func(depth int) Task
	spawnTree = func(depth int) Task {
		return func(w int) {
			if depth == 0 {
				atomic.AddInt64(&count, 1)
				return
			}
			pool.Spawn(w, spawnTree(depth-1))
			pool.Spawn(w, spawnTree(depth-1))
		}
	}
	stats := pool.Run(spawnTree(10))
	if count != 1024 {
		t.Errorf("executed %d leaves, want 1024", count)
	}
	// 2^11 - 1 internal+leaf tasks total.
	if stats.Executed != 2047 {
		t.Errorf("stats.Executed = %d, want 2047", stats.Executed)
	}
}

func TestStealsHappenWithMultipleWorkers(t *testing.T) {
	if testingOnOneProc() {
		// With GOMAXPROCS=1 stealing is still possible (goroutines
		// interleave) but not guaranteed; don't assert.
		t.Skip("single-proc machine: steal counts are not deterministic")
	}
	pool := NewPool(4)
	var sink int64
	stats := pool.ParallelFor(100000, 10, func(w, lo, hi int) {
		s := int64(0)
		for i := lo; i < hi; i++ {
			s += int64(i % 7)
		}
		atomic.AddInt64(&sink, s)
	})
	if stats.Steals == 0 {
		t.Error("no steals occurred with 4 workers and 10k chunks")
	}
}

func testingOnOneProc() bool {
	return NewPool(0).Workers() == 1
}

func TestWorkerIDsInRange(t *testing.T) {
	pool := NewPool(5)
	var bad int64
	pool.ParallelFor(1000, 1, func(w, lo, hi int) {
		if w < 0 || w >= 5 {
			atomic.AddInt64(&bad, 1)
		}
	})
	if bad != 0 {
		t.Errorf("%d chunks saw out-of-range worker ids", bad)
	}
}

func TestPoolReuse(t *testing.T) {
	pool := NewPool(2)
	for round := 0; round < 5; round++ {
		var n int64
		pool.ParallelFor(100, 7, func(w, lo, hi int) {
			atomic.AddInt64(&n, int64(hi-lo))
		})
		if n != 100 {
			t.Fatalf("round %d: covered %d", round, n)
		}
	}
}

func TestTaskPanicPropagates(t *testing.T) {
	pool := NewPool(3)
	defer func() {
		if r := recover(); r == nil {
			t.Error("task panic was swallowed")
		}
	}()
	pool.ParallelFor(100, 1, func(w, lo, hi int) {
		if lo == 50 {
			panic("boom")
		}
	})
}

func TestPoolUsableAfterPanic(t *testing.T) {
	pool := NewPool(2)
	func() {
		defer func() { recover() }()
		pool.Run(func(w int) { panic("first") })
	}()
	// The pool must still work for subsequent runs.
	var n int64
	pool.ParallelFor(50, 5, func(w, lo, hi int) {
		atomic.AddInt64(&n, int64(hi-lo))
	})
	if n != 50 {
		t.Errorf("post-panic run covered %d of 50", n)
	}
}

func TestListScheduleMakespan(t *testing.T) {
	// p=1: sum.
	if got := ListScheduleMakespan([]float64{1, 2, 3}, 1); got != 6 {
		t.Errorf("p=1: %v", got)
	}
	// Equal tasks divide evenly.
	w := make([]float64, 16)
	for i := range w {
		w[i] = 1
	}
	if got := ListScheduleMakespan(w, 4); got != 4 {
		t.Errorf("16 unit tasks on 4: %v", got)
	}
	// Makespan bounds: max(avg, largest) ≤ makespan ≤ avg + largest.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(100)
		p := 1 + r.Intn(12)
		ws := make([]float64, n)
		var sum, largest float64
		for i := range ws {
			ws[i] = r.Float64()*10 + 0.01
			sum += ws[i]
			if ws[i] > largest {
				largest = ws[i]
			}
		}
		got := ListScheduleMakespan(ws, p)
		lower := math.Max(sum/float64(p), largest)
		upper := sum/float64(p) + largest + 1e-9
		if got < lower-1e-9 || got > upper {
			t.Fatalf("makespan %v outside [%v, %v]", got, lower, upper)
		}
	}
	// Empty task list.
	if got := ListScheduleMakespan(nil, 4); got != 0 {
		t.Errorf("empty: %v", got)
	}
}

func TestListScheduleMoreWorkersNeverSlower(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ws := make([]float64, 200)
	for i := range ws {
		ws[i] = r.Float64() * 5
	}
	prev := math.Inf(1)
	for p := 1; p <= 16; p *= 2 {
		m := ListScheduleMakespan(ws, p)
		if m > prev+1e-9 {
			t.Errorf("p=%d makespan %v worse than p/2's %v", p, m, prev)
		}
		prev = m
	}
}

func BenchmarkParallelForOverhead(b *testing.B) {
	pool := NewPool(0)
	for i := 0; i < b.N; i++ {
		pool.ParallelFor(1000, 100, func(w, lo, hi int) {})
	}
}
