// Package sched is the shared-memory parallel runtime of the library — the
// stand-in for the cilk++ work-stealing scheduler the paper uses inside
// each compute node. Each worker owns a double-ended queue; it pushes and
// pops its own work at the bottom (LIFO, cache-warm) and steals from the
// top of a random victim's deque (FIFO, oldest work) when it runs dry —
// exactly the Blumofe–Leiserson discipline the paper describes (§IV-A,
// "Dynamic load balancing among threads").
package sched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of work. It receives the executing worker's id so tasks
// can use per-worker accumulators without synchronization.
type Task func(worker int)

// Stats reports scheduler activity for one Run.
type Stats struct {
	Executed     int64 // tasks executed
	Steals       int64 // successful steals
	FailedSteals int64 // steal attempts that found an empty deque
}

// Pool is a work-stealing scheduler with a fixed number of workers.
type Pool struct {
	p      int
	deques []deque
	stats  Stats

	pending int64 // outstanding tasks across all deques + in flight

	panicMu  sync.Mutex
	panicked interface{} // first task panic value, re-raised by Run
}

// deque is a mutex-protected double-ended queue. Push/pop at the bottom
// are the owner's fast path; Steal takes from the top.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) push(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) pop() (Task, bool) {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t, true
}

func (d *deque) steal() (Task, bool) {
	d.mu.Lock()
	if len(d.tasks) == 0 {
		d.mu.Unlock()
		return nil, false
	}
	t := d.tasks[0]
	copy(d.tasks, d.tasks[1:])
	d.tasks[len(d.tasks)-1] = nil
	d.tasks = d.tasks[:len(d.tasks)-1]
	d.mu.Unlock()
	return t, true
}

// NewPool creates a pool with p workers (p ≤ 0 selects GOMAXPROCS).
func NewPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Pool{p: p, deques: make([]deque, p)}
}

// Workers returns the worker count.
func (pl *Pool) Workers() int { return pl.p }

// Spawn enqueues t on the given worker's deque. It may only be called from
// inside a running task (with that task's worker id) or before Run with
// worker 0; the pending count keeps Run from returning early.
func (pl *Pool) Spawn(worker int, t Task) {
	atomic.AddInt64(&pl.pending, 1)
	pl.deques[worker].push(t)
}

// Run executes root and everything it transitively spawns, returning when
// the pool is quiescent. Stats for this run are returned. If any task
// panics, the remaining queued work is drained and the first panic value
// is re-raised on the caller's goroutine (so a library user sees an
// ordinary panic rather than a crashed anonymous worker).
func (pl *Pool) Run(root Task) Stats {
	atomic.StoreInt64(&pl.pending, 0)
	pl.stats = Stats{}
	pl.panicked = nil
	pl.Spawn(0, root)

	var wg sync.WaitGroup
	for w := 0; w < pl.p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pl.workerLoop(w)
		}(w)
	}
	wg.Wait()
	if pl.panicked != nil {
		panic(fmt.Sprintf("sched: task panicked: %v", pl.panicked))
	}
	return Stats{
		Executed:     atomic.LoadInt64(&pl.stats.Executed),
		Steals:       atomic.LoadInt64(&pl.stats.Steals),
		FailedSteals: atomic.LoadInt64(&pl.stats.FailedSteals),
	}
}

func (pl *Pool) workerLoop(w int) {
	rng := rand.New(rand.NewSource(int64(w)*2654435761 + 97))
	idleSpins := 0
	for {
		if t, ok := pl.deques[w].pop(); ok {
			pl.exec(w, t)
			idleSpins = 0
			continue
		}
		// Local deque empty: try to steal the oldest work from a random
		// victim (stealing oldest reduces inter-thread communication, as
		// the paper notes for cilk++).
		if pl.p > 1 {
			victim := rng.Intn(pl.p - 1)
			if victim >= w {
				victim++
			}
			if t, ok := pl.deques[victim].steal(); ok {
				atomic.AddInt64(&pl.stats.Steals, 1)
				pl.exec(w, t)
				idleSpins = 0
				continue
			}
			atomic.AddInt64(&pl.stats.FailedSteals, 1)
		}
		if atomic.LoadInt64(&pl.pending) == 0 {
			return
		}
		idleSpins++
		if idleSpins > 64 {
			runtime.Gosched()
		}
	}
}

func (pl *Pool) exec(w int, t Task) {
	defer func() {
		if r := recover(); r != nil {
			pl.panicMu.Lock()
			if pl.panicked == nil {
				pl.panicked = r
			}
			pl.panicMu.Unlock()
		}
		atomic.AddInt64(&pl.stats.Executed, 1)
		atomic.AddInt64(&pl.pending, -1)
	}()
	t(w)
}

// ParallelFor executes fn over [0, n) split into chunks of at most grain
// (grain ≤ 0 picks n/(8p), floored at 1), using recursive binary splitting
// so stealing moves large half-ranges first. It blocks until all chunks
// complete and returns the run's stats.
func (pl *Pool) ParallelFor(n, grain int, fn func(worker, lo, hi int)) Stats {
	if n <= 0 {
		return Stats{}
	}
	if grain <= 0 {
		grain = n / (8 * pl.p)
		if grain < 1 {
			grain = 1
		}
	}
	var split func(lo, hi int) Task
	split = func(lo, hi int) Task {
		return func(w int) {
			for hi-lo > grain {
				mid := lo + (hi-lo)/2
				pl.Spawn(w, split(mid, hi))
				hi = mid
			}
			fn(w, lo, hi)
		}
	}
	return pl.Run(split(0, n))
}

// ListScheduleMakespan computes the deterministic greedy (list-scheduling)
// makespan of the given task weights on p identical workers: tasks are
// assigned in order to the least-loaded worker. By Graham's bound this is
// within 2× of optimal and models what a work-stealing scheduler achieves;
// the virtual-time machine model uses it to turn measured per-task work
// into a p-thread execution time on hardware we do not have.
func ListScheduleMakespan(weights []float64, p int) float64 {
	if p <= 1 {
		var s float64
		for _, w := range weights {
			s += w
		}
		return s
	}
	loads := make([]float64, p)
	for _, w := range weights {
		// Find least-loaded worker (p is small; linear scan is fine and
		// deterministic).
		min := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += w
	}
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
