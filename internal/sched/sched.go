// Package sched is the shared-memory parallel runtime of the library — the
// stand-in for the cilk++ work-stealing scheduler the paper uses inside
// each compute node. Each worker owns a double-ended queue; it pushes and
// pops its own work at the bottom (LIFO, cache-warm) and steals from the
// top of a random victim's deque (FIFO, oldest work) when it runs dry —
// exactly the Blumofe–Leiserson discipline the paper describes (§IV-A,
// "Dynamic load balancing among threads").
//
// The default deque is a lock-free Chase–Lev ring buffer: the owner's
// push/pop never takes a lock, and a compare-and-swap is needed only on
// the steal path and when the owner races a thief for the last element.
// The previous mutex-guarded deque is retained (NewMutexPool) as the
// correctness oracle and the baseline the scheduler benchmarks compare
// against.
package sched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of work. It receives the executing worker's id so tasks
// can use per-worker accumulators without synchronization.
type Task func(worker int)

// Stats reports scheduler activity for one Run.
type Stats struct {
	Executed     int64 // tasks executed
	Steals       int64 // successful steals
	FailedSteals int64 // steal attempts that found an empty deque or lost a race
	Parks        int64 // idle backoffs (Gosched yields after a dry spin burst)
}

// Add accumulates other into s — the aggregation the engines use when
// combining per-rank or per-phase scheduler stats.
func (s *Stats) Add(other Stats) {
	s.Executed += other.Executed
	s.Steals += other.Steals
	s.FailedSteals += other.FailedSteals
	s.Parks += other.Parks
}

// ringInit is the initial per-worker ring capacity (a power of two). The
// ring doubles on overflow, so this only sets the smallest allocation.
const ringInit = 64

// ring is one immutable-capacity circular buffer generation of a deque.
// Slots are atomic because thieves read them concurrently with the
// owner's writes; indices wrap modulo the capacity via mask.
type ring struct {
	mask int64
	slot []atomic.Pointer[Task]
}

func newRing(n int64) *ring {
	return &ring{mask: n - 1, slot: make([]atomic.Pointer[Task], n)}
}

// deque is a lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA
// 2005, in the memory-ordered formulation of Lê et al., PPoPP 2013). The
// owner pushes and pops at bottom; thieves take from top.
//
// Memory-ordering argument (see DESIGN.md §"Chase–Lev deque"): Go's
// sync/atomic operations are sequentially consistent, which subsumes every
// fence of the C11 version. The owner is the only writer of bottom and of
// the buffer pointer; top only ever increases, and does so exclusively
// through compare-and-swap, so each index t is won by exactly one of
// {owner popping its last element, one thief}. A thief validates its slot
// read by the CAS on top: if the CAS succeeds, no pop or prior steal
// consumed index t, and the owner cannot have overwritten slot t&mask
// because push grows the ring before bottom-top reaches the capacity.
// Grown rings copy the live range [top, bottom) and old generations remain
// valid (and garbage-collected) for thieves still holding them.
type deque struct {
	bottom atomic.Int64
	top    atomic.Int64
	buf    atomic.Pointer[ring]
}

func (d *deque) init() {
	d.buf.Store(newRing(ringInit))
}

// push appends t at the bottom. Owner-only. Tasks travel as pointers so
// a spawn boxes its closure exactly once, and the deque's own operations
// never allocate (outside ring growth).
func (d *deque) push(t *Task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.buf.Load()
	if b-tp >= int64(len(r.slot)) {
		// Full: double the capacity, copying the live range.
		nr := newRing(int64(len(r.slot)) * 2)
		for i := tp; i < b; i++ {
			nr.slot[i&nr.mask].Store(r.slot[i&r.mask].Load())
		}
		d.buf.Store(nr)
		r = nr
	}
	r.slot[b&r.mask].Store(t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Owner-only.
func (d *deque) pop() (*Task, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty; restore the canonical empty state bottom == top.
		d.bottom.Store(b + 1)
		return nil, false
	}
	r := d.buf.Load()
	task := r.slot[b&r.mask].Load()
	if b > t {
		return task, true
	}
	// Single element left: race thieves for it via top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(b + 1)
	if !won {
		return nil, false
	}
	return task, true
}

// steal removes the oldest task. Safe from any goroutine.
func (d *deque) steal() (*Task, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	r := d.buf.Load()
	task := r.slot[t&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false // lost the race to the owner or another thief
	}
	return task, true
}

// mutexDeque is the pre-Chase–Lev mutex-guarded deque, kept verbatim as
// the reference oracle for tests and the baseline for the scheduler
// benchmarks. Its steal is O(n) (slice shift), which is part of what the
// lock-free deque replaces.
type mutexDeque struct {
	mu    sync.Mutex
	tasks []*Task
}

func (d *mutexDeque) push(t *Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *mutexDeque) pop() (*Task, bool) {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t, true
}

func (d *mutexDeque) steal() (*Task, bool) {
	d.mu.Lock()
	if len(d.tasks) == 0 {
		d.mu.Unlock()
		return nil, false
	}
	t := d.tasks[0]
	copy(d.tasks, d.tasks[1:])
	d.tasks[len(d.tasks)-1] = nil
	d.tasks = d.tasks[:len(d.tasks)-1]
	d.mu.Unlock()
	return t, true
}

// Pool is a work-stealing scheduler with a fixed number of workers.
type Pool struct {
	p       int
	deques  []deque
	mdeques []mutexDeque // non-nil only for NewMutexPool
	stats   Stats

	pending int64 // outstanding tasks across all deques + in flight

	panicMu  sync.Mutex
	panicked interface{} // first task panic value, re-raised by Run
}

// NewPool creates a pool with p workers (p ≤ 0 selects GOMAXPROCS) backed
// by lock-free Chase–Lev deques.
func NewPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	pl := &Pool{p: p, deques: make([]deque, p)}
	for i := range pl.deques {
		pl.deques[i].init()
	}
	return pl
}

// NewMutexPool creates a pool backed by the mutex-guarded reference
// deques. It exists for differential tests and as the benchmark baseline;
// production callers should use NewPool.
func NewMutexPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Pool{p: p, mdeques: make([]mutexDeque, p)}
}

// Workers returns the worker count.
func (pl *Pool) Workers() int { return pl.p }

func (pl *Pool) push(w int, t *Task) {
	if pl.mdeques != nil {
		pl.mdeques[w].push(t)
		return
	}
	pl.deques[w].push(t)
}

func (pl *Pool) pop(w int) (*Task, bool) {
	if pl.mdeques != nil {
		return pl.mdeques[w].pop()
	}
	return pl.deques[w].pop()
}

func (pl *Pool) stealFrom(victim int) (*Task, bool) {
	if pl.mdeques != nil {
		return pl.mdeques[victim].steal()
	}
	return pl.deques[victim].steal()
}

// Spawn enqueues t on the given worker's deque. It may only be called from
// inside a running task (with that task's worker id) or before Run with
// worker 0; the pending count keeps Run from returning early.
func (pl *Pool) Spawn(worker int, t Task) {
	atomic.AddInt64(&pl.pending, 1)
	pl.push(worker, &t)
}

// Run executes root and everything it transitively spawns, returning when
// the pool is quiescent. Stats for this run are returned. If any task
// panics, the remaining queued work is drained and the first panic value
// is re-raised on the caller's goroutine (so a library user sees an
// ordinary panic rather than a crashed anonymous worker).
func (pl *Pool) Run(root Task) Stats {
	atomic.StoreInt64(&pl.pending, 0)
	pl.stats = Stats{}
	pl.panicked = nil
	pl.Spawn(0, root)

	var wg sync.WaitGroup
	for w := 0; w < pl.p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pl.workerLoop(w)
		}(w)
	}
	wg.Wait()
	if pl.panicked != nil {
		panic(fmt.Sprintf("sched: task panicked: %v", pl.panicked))
	}
	return Stats{
		Executed:     atomic.LoadInt64(&pl.stats.Executed),
		Steals:       atomic.LoadInt64(&pl.stats.Steals),
		FailedSteals: atomic.LoadInt64(&pl.stats.FailedSteals),
		Parks:        atomic.LoadInt64(&pl.stats.Parks),
	}
}

func (pl *Pool) workerLoop(w int) {
	rng := rand.New(rand.NewSource(int64(w)*2654435761 + 97))
	idleSpins := 0
	for {
		if t, ok := pl.pop(w); ok {
			pl.exec(w, *t)
			idleSpins = 0
			continue
		}
		// Local deque empty: try to steal the oldest work from a random
		// victim (stealing oldest reduces inter-thread communication, as
		// the paper notes for cilk++).
		if pl.p > 1 {
			victim := rng.Intn(pl.p - 1)
			if victim >= w {
				victim++
			}
			if t, ok := pl.stealFrom(victim); ok {
				atomic.AddInt64(&pl.stats.Steals, 1)
				pl.exec(w, *t)
				idleSpins = 0
				continue
			}
			atomic.AddInt64(&pl.stats.FailedSteals, 1)
		}
		if atomic.LoadInt64(&pl.pending) == 0 {
			return
		}
		idleSpins++
		if idleSpins > 64 {
			atomic.AddInt64(&pl.stats.Parks, 1)
			runtime.Gosched()
		}
	}
}

func (pl *Pool) exec(w int, t Task) {
	defer func() {
		if r := recover(); r != nil {
			pl.panicMu.Lock()
			if pl.panicked == nil {
				pl.panicked = r
			}
			pl.panicMu.Unlock()
		}
		atomic.AddInt64(&pl.stats.Executed, 1)
		atomic.AddInt64(&pl.pending, -1)
	}()
	t(w)
}

// DefaultMinGrain is the smallest chunk ParallelFor's automatic grain will
// produce. Chunks below this size cost more in scheduling than they can
// recover in load balance (a near-field leaf-pair kernel runs in well
// under a microsecond), so tiny n no longer fans out into 8p unit tasks.
const DefaultMinGrain = 32

// ParallelFor executes fn over [0, n) split into chunks of at most grain
// (grain ≤ 0 picks n/(8p) clamped to at least DefaultMinGrain), using
// recursive binary splitting so stealing moves large half-ranges first.
// It blocks until all chunks complete and returns the run's stats.
func (pl *Pool) ParallelFor(n, grain int, fn func(worker, lo, hi int)) Stats {
	if n <= 0 {
		return Stats{}
	}
	if grain <= 0 {
		grain = n / (8 * pl.p)
		if grain < DefaultMinGrain {
			grain = DefaultMinGrain
		}
	}
	var split func(lo, hi int) Task
	split = func(lo, hi int) Task {
		return func(w int) {
			for hi-lo > grain {
				mid := lo + (hi-lo)/2
				pl.Spawn(w, split(mid, hi))
				hi = mid
			}
			fn(w, lo, hi)
		}
	}
	return pl.Run(split(0, n))
}

// ListScheduleMakespan computes the deterministic greedy (list-scheduling)
// makespan of the given task weights on p identical workers: tasks are
// assigned in order to the least-loaded worker. By Graham's bound this is
// within 2× of optimal and models what a work-stealing scheduler achieves;
// the virtual-time machine model uses it to turn measured per-task work
// into a p-thread execution time on hardware we do not have.
func ListScheduleMakespan(weights []float64, p int) float64 {
	if p <= 1 {
		var s float64
		for _, w := range weights {
			s += w
		}
		return s
	}
	loads := make([]float64, p)
	for _, w := range weights {
		// Find least-loaded worker (p is small; linear scan is fine and
		// deterministic).
		min := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += w
	}
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// DequeBench exposes the raw deque operations of one deque to the
// micro-benchmark driver (cmd/benchkernels). Not intended for scheduling
// use — Pool wires the deques into workers.
type DequeBench struct {
	cl *deque
	mu *mutexDeque
}

// NewDequeBench returns a bench handle over a fresh deque; mutex selects
// the baseline mutex-guarded implementation.
func NewDequeBench(mutex bool) *DequeBench {
	if mutex {
		return &DequeBench{mu: &mutexDeque{}}
	}
	d := &deque{}
	d.init()
	return &DequeBench{cl: d}
}

// Push appends a task at the bottom (owner side).
func (b *DequeBench) Push(t *Task) {
	if b.mu != nil {
		b.mu.push(t)
		return
	}
	b.cl.push(t)
}

// Pop removes the newest task (owner side).
func (b *DequeBench) Pop() (*Task, bool) {
	if b.mu != nil {
		return b.mu.pop()
	}
	return b.cl.pop()
}

// Steal removes the oldest task (thief side).
func (b *DequeBench) Steal() (*Task, bool) {
	if b.mu != nil {
		return b.mu.steal()
	}
	return b.cl.steal()
}
