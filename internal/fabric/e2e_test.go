package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"octgb/internal/molecule"
	"octgb/internal/serve"
	"octgb/internal/testutil"
)

// fabricWorker is one real back-end: an engine-backed serve.Server, its
// HTTP listener, and the membership agent that joins it to the router.
type fabricWorker struct {
	id    string
	srv   *serve.Server
	ts    *httptest.Server
	agent *Worker
}

// kill simulates a crash: the HTTP side and the registration link both
// drop with no goodbye and no reconnect.
func (fw *fabricWorker) kill() {
	fw.agent.stop.Do(func() {
		close(fw.agent.stopCh)
		fw.agent.mu.Lock()
		c := fw.agent.conn
		fw.agent.mu.Unlock()
		if c != nil {
			c.Close()
		}
	})
	fw.agent.wg.Wait()
	fw.ts.CloseClientConnections()
	fw.ts.Close()
}

// newFabric boots 1 router + n engine workers and waits for the full
// ring.
func newFabric(t *testing.T, n int, cfg RouterConfig) (*Router, *httptest.Server, []*fabricWorker) {
	t.Helper()
	cfg.Addr = "unused"
	cfg.MembershipAddr = "unused"
	if cfg.Timeout == 0 {
		cfg.Timeout = 300 * time.Millisecond
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = 32
	}
	rt := NewRouter(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rt.ServeMembership(ln)
	t.Cleanup(rt.mem.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	workers := make([]*fabricWorker, n)
	for i := range workers {
		fw := &fabricWorker{id: fmt.Sprintf("w%d", i)}
		fw.srv = serve.New(serve.Config{Workers: 2, Threads: 1})
		fw.ts = httptest.NewServer(fw.srv.Handler())
		srv := fw.srv
		agent, err := StartWorker(WorkerConfig{
			RouterAddr: rt.MembershipAddr(),
			WorkerID:   fw.id,
			Advertise:  strings.TrimPrefix(fw.ts.URL, "http://"),
			Epoch:      1,
			Timeout:    cfg.Timeout,
			Load:       ServeLoad(srv),
		})
		if err != nil {
			t.Fatal(err)
		}
		fw.agent = agent
		workers[i] = fw
		t.Cleanup(func() {
			agent.Close()
			fw.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.mem.Ring().Size() != n {
		if time.Now().After(deadline) {
			t.Fatalf("ring never reached %d workers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return rt, front, workers
}

func postBody(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// hitRate computes a worker's lifetime cache hit rate.
func hitRate(ls serve.LoadStats) float64 {
	total := ls.CacheHits + ls.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(ls.CacheHits) / float64(total)
}

// TestE2EFailoverMidSweep is the acceptance scenario: 1 router + 3 engine
// workers serve a mixed trace; one worker is crashed mid-trace. No
// accepted energy/sweep request is lost (failover retries on the
// replica), sessions on the dead shard fail with the typed 404 contract
// only, and the surviving shards' cache hit rate stays within 20% of its
// pre-crash value.
func TestE2EFailoverMidSweep(t *testing.T) {
	defer testutil.Watchdog(t, 4*time.Minute)()
	rt, front, workers := newFabric(t, 3, RouterConfig{HedgeDelay: -1})

	// A mixed molecule population: distinct small proteins, each repeated
	// so the prepared caches warm up.
	const nMol = 6
	mols := make([]serve.MoleculeJSON, nMol)
	for i := range mols {
		mols[i] = serve.FromMolecule(molecule.GenerateProtein(fmt.Sprintf("m%d", i), 30, int64(i+1)))
	}
	rec := serve.FromMolecule(molecule.GenerateProtein("rec", 40, 99))
	lig := serve.FromMolecule(molecule.GenerateProtein("lig", 12, 98))

	sendEnergy := func(i int) (int, string) {
		resp, body := postBody(t, front.URL+"/v1/energy", serve.EnergyRequest{Molecule: mols[i%nMol]})
		if resp.StatusCode != 200 {
			return resp.StatusCode, string(body)
		}
		return 200, resp.Header.Get(WorkerHeader)
	}
	sendSweep := func() (int, string) {
		resp, body := postBody(t, front.URL+"/v1/sweep", serve.SweepRequest{
			Receptor: &rec, Ligand: lig,
			Poses: []serve.PoseJSON{{T: [3]float64{8, 0, 0}}, {T: [3]float64{10, 0, 0}}},
		})
		if resp.StatusCode != 200 {
			return resp.StatusCode, string(body)
		}
		return 200, resp.Header.Get(WorkerHeader)
	}

	// Phase 1 — warm. Two passes over every molecule plus sweeps: the
	// second pass hits the prepared caches.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < nMol; i++ {
			if code, detail := sendEnergy(i); code != 200 {
				t.Fatalf("warm energy %d: %d %s", i, code, detail)
			}
		}
		if code, detail := sendSweep(); code != 200 {
			t.Fatalf("warm sweep: %d %s", code, detail)
		}
	}

	// Create stream sessions across the shards.
	type session struct {
		routedID string
		owner    string
	}
	var sessions []session
	for i := 0; i < nMol; i++ {
		resp, body := postBody(t, front.URL+"/v1/stream", serve.StreamCreateRequest{Molecule: mols[i]})
		if resp.StatusCode != 200 && resp.StatusCode != 201 {
			t.Fatalf("stream create %d: %d %s", i, resp.StatusCode, body)
		}
		var cr serve.StreamCreateResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		owner, _, ok := strings.Cut(cr.SessionID, sessionIDSep)
		if !ok {
			t.Fatalf("session ID %q not in routed form", cr.SessionID)
		}
		if got := resp.Header.Get(WorkerHeader); got != owner {
			t.Fatalf("create served by %s but session routed to %s", got, owner)
		}
		sessions = append(sessions, session{routedID: cr.SessionID, owner: owner})
	}

	// Shard stickiness: every frame of a session lands on its owner.
	frame := func(s session) (*http.Response, []byte) {
		return postBody(t, front.URL+"/v1/stream/"+s.routedID+"/frame",
			serve.StreamFrameRequest{Moves: []serve.MoveJSON{{I: 0, Pos: [3]float64{0.05, 0, 0}}}})
	}
	for _, s := range sessions {
		for f := 0; f < 2; f++ {
			resp, body := frame(s)
			if resp.StatusCode != 200 {
				t.Fatalf("frame on %s: %d %s", s.routedID, resp.StatusCode, body)
			}
			if got := resp.Header.Get(WorkerHeader); got != s.owner {
				t.Fatalf("frame of %s served by %s, want owner %s", s.routedID, got, s.owner)
			}
			var fr serve.StreamFrameResponse
			if err := json.Unmarshal(body, &fr); err != nil {
				t.Fatal(err)
			}
			if fr.SessionID != s.routedID {
				t.Fatalf("frame response session_id %q, want routed %q", fr.SessionID, s.routedID)
			}
		}
	}

	// Pre-crash snapshot of the soon-to-be survivors' cache behaviour.
	victim := workers[1]
	preRate := map[string]float64{}
	for _, fw := range workers {
		if fw != victim {
			preRate[fw.id] = hitRate(fw.srv.LoadStats())
		}
	}

	// Phase 2 — crash mid-trace. Concurrent clients sweep the same
	// population while the victim dies under them.
	var failures atomic.Int64
	var firstFailure atomic.Value
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var code int
				var detail string
				if i%4 == 3 {
					code, detail = sendSweep()
				} else {
					code, detail = sendEnergy(c*7 + i)
				}
				if code != 200 {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("%d %s", code, detail))
				}
			}
		}(c)
	}
	time.Sleep(150 * time.Millisecond) // in-flight load established
	victim.kill()
	time.Sleep(600 * time.Millisecond) // crash + detection + rerouted traffic
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d accepted requests lost across the crash; first: %v", n, firstFailure.Load())
	}

	// The ring converged on the survivors.
	deadline := time.Now().Add(3 * time.Second)
	for rt.mem.Ring().Size() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("ring still %v after crash", rt.mem.Ring().Members())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One more warm pass, then compare survivor hit rates: within 20
	// points of pre-crash (the keys the survivors already owned did not
	// move — that is the consistent-hash property doing its job).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < nMol; i++ {
			if code, detail := sendEnergy(i); code != 200 {
				t.Fatalf("post-crash energy %d: %d %s", i, code, detail)
			}
		}
	}
	for _, fw := range workers {
		if fw == victim {
			continue
		}
		post := hitRate(fw.srv.LoadStats())
		if pre := preRate[fw.id]; post < pre-0.20 {
			t.Errorf("survivor %s hit rate fell from %.2f to %.2f (> 20%% drop)", fw.id, pre, post)
		}
	}

	// Sessions: survivors' sessions keep working; the dead shard's
	// sessions fail with the existing 404 token — a truly lost session —
	// and nothing else.
	for _, s := range sessions {
		resp, body := frame(s)
		if s.owner == victim.id {
			if resp.StatusCode != http.StatusNotFound || !bytes.Contains(body, []byte("not_found")) {
				t.Fatalf("lost session %s: %d %s, want 404 not_found", s.routedID, resp.StatusCode, body)
			}
			continue
		}
		if resp.StatusCode != 200 {
			t.Fatalf("surviving session %s: %d %s", s.routedID, resp.StatusCode, body)
		}
	}

	// Router bookkeeping saw the crash as a typed failure, not a goodbye.
	_, goodbyes, fails, _ := rt.mem.Counters()
	if fails == 0 {
		t.Error("crash not recorded as a membership failure")
	}
	_ = goodbyes
}

// TestE2EStreamCloseAndUnknownSession pins the sticky-session edge cases
// through the full stack: close works through the router, a closed or
// never-created session is 404 not_found, and a session ID without a
// shard prefix is rejected with the same token.
func TestE2EStreamCloseAndUnknownSession(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	_, front, _ := newFabric(t, 2, RouterConfig{HedgeDelay: -1})

	mol := serve.FromMolecule(molecule.GenerateProtein("sc", 25, 5))
	resp, body := postBody(t, front.URL+"/v1/stream", serve.StreamCreateRequest{Molecule: mol})
	if resp.StatusCode != 200 && resp.StatusCode != 201 {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var cr serve.StreamCreateResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}

	resp2, body2 := postBody(t, front.URL+"/v1/stream/"+cr.SessionID+"/close", struct{}{})
	if resp2.StatusCode != 200 {
		t.Fatalf("close: %d %s", resp2.StatusCode, body2)
	}
	// Frames after close: the worker's own 404 contract, relayed.
	resp3, body3 := postBody(t, front.URL+"/v1/stream/"+cr.SessionID+"/frame",
		serve.StreamFrameRequest{Moves: []serve.MoveJSON{{I: 0, Pos: [3]float64{1, 0, 0}}}})
	if resp3.StatusCode != http.StatusNotFound || !bytes.Contains(body3, []byte("not_found")) {
		t.Fatalf("frame after close: %d %s, want 404 not_found", resp3.StatusCode, body3)
	}
	// A session ID with no shard prefix: the router's own 404.
	resp4, body4 := postBody(t, front.URL+"/v1/stream/s-has-no-prefix/frame",
		serve.StreamFrameRequest{Moves: []serve.MoveJSON{{I: 0, Pos: [3]float64{1, 0, 0}}}})
	if resp4.StatusCode != http.StatusNotFound || !bytes.Contains(body4, []byte("not_found")) {
		t.Fatalf("unprefixed session: %d %s, want 404 not_found", resp4.StatusCode, body4)
	}
}
