// Package fabric is the sharded serving tier: a stateless front-end
// router in front of a pool of back-end engine workers, joined by a
// membership/registration protocol over TCP.
//
// The paper evaluates polarization energy on a *cluster* of multicores;
// internal/cluster brings that cluster inside one evaluation, and
// internal/serve makes one node resident. This package joins the two at
// the serving layer: requests are routed by molecule content hash
// (molecule.Hash) on a consistent-hash ring with virtual nodes, so each
// worker owns a shard of the prepared-problem LRU cache and the stream
// session store. Hot keys replicate to R shards, cache-aware load
// balancing routes to whoever is warm and spills to whoever is idle, and
// failover builds on the cluster layer's typed ErrRankFailed +
// FailureDetector machinery: a worker silent past the heartbeat timeout
// is removed from the ring, its range reassigned, in-flight requests
// retried on the replica, and request hedging caps tail latency.
//
// Components:
//
//   - Ring: the consistent-hash ring (this file).
//   - Message/EncodeMessage/DecodeMessage: the registration wire protocol
//     (wire.go), framed with CRC32C and bounded lengths like the cluster
//     transport's frames.
//   - Membership: the router-side registry — accepts registrations,
//     monitors heartbeats, maintains the ring (membership.go).
//   - Worker: the worker-side agent — registers a serve.Server with the
//     router and streams load reports (worker.go).
//   - Router: the stateless HTTP front end — routing, replication,
//     failover, hedging (router.go, hedge.go).
//
// See DESIGN.md §14 for the architecture and the failover state machine.
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the default virtual-node count per worker. 128 vnodes
// keep the 8-worker balance inside ±15% of fair share (pinned by
// TestRingBalance) at ~1 KiB of ring state per worker.
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys and members
// hash into the same 64-bit space; a key is owned by the first member
// vnode clockwise from the key's hash. Membership changes move only the
// ranges adjacent to the joining or leaving member's vnodes — at most
// ~K/N of the keyspace on a single join or leave (pinned by
// TestRingKeyMovement) — which is exactly the property that keeps the
// per-shard prepared caches warm across worker churn.
//
// All methods are safe for concurrent use; lookups take a read lock only.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	hashes  []uint64 // sorted vnode positions
	owners  []string // owners[i] is the member at hashes[i]
	members map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// member (DefaultVNodes when v <= 0).
func NewRing(v int) *Ring {
	if v <= 0 {
		v = DefaultVNodes
	}
	return &Ring{vnodes: v, members: make(map[string]struct{})}
}

// vnodeHash positions one virtual node: SHA-256 of "id#i", first 8 bytes.
// SHA-256 (rather than a fast non-cryptographic hash) keeps vnode
// positions uniform regardless of how adversarially similar worker IDs
// are, and matches the keyspace: routing keys are molecule.Hash prefixes,
// which are SHA-256 digests already.
func vnodeHash(id string, i int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i))
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte{'#'})
	h.Write(buf[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// KeyHash maps a molecule content hash onto the ring's keyspace.
func KeyHash(sum [sha256.Size]byte) uint64 {
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member. Adding an existing member is a no-op.
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		return
	}
	r.members[id] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		h := vnodeHash(id, i)
		at := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= h })
		r.hashes = append(r.hashes, 0)
		copy(r.hashes[at+1:], r.hashes[at:])
		r.hashes[at] = h
		r.owners = append(r.owners, "")
		copy(r.owners[at+1:], r.owners[at:])
		r.owners[at] = id
	}
}

// Remove deletes a member and its vnodes. Removing an unknown member is a
// no-op.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return
	}
	delete(r.members, id)
	keep := 0
	for i := range r.hashes {
		if r.owners[i] != id {
			r.hashes[keep] = r.hashes[i]
			r.owners[keep] = r.owners[i]
			keep++
		}
	}
	r.hashes = r.hashes[:keep]
	r.owners = r.owners[:keep]
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the member IDs in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Owner returns the member owning the key, or "" on an empty ring.
func (r *Ring) Owner(key uint64) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// Owners returns up to n distinct members in ring order starting at the
// key's owner — the primary shard followed by its replicas. Fewer than n
// members yields all of them; an empty ring yields nil.
func (r *Ring) Owners(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	at := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= key })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		id := r.owners[(at+i)%len(r.hashes)]
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("ring(members=%d vnodes=%d)", len(r.members), r.vnodes)
}
