package fabric

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzMessageBytes marshals through EncodeMessage itself so the seed
// corpus stays in lockstep with the encoder (the FuzzDecodeFrame pattern
// from internal/cluster).
func fuzzMessageBytes(t testing.TB, m *Message) []byte {
	t.Helper()
	frame, err := EncodeMessage(m)
	if err != nil {
		t.Fatalf("EncodeMessage: %v", err)
	}
	return frame
}

// FuzzDecodeMessage drives the membership wire decoder with arbitrary
// bytes. The contract under test: DecodeMessage returns errors — it never
// panics, never allocates beyond maxWirePayload, and never loops forever
// on a finite stream.
func FuzzDecodeMessage(f *testing.F) {
	f.Add(fuzzMessageBytes(f, &Message{Type: MsgRegister, WorkerID: "w0", Addr: "127.0.0.1:9001", Epoch: 1}))
	f.Add(fuzzMessageBytes(f, &Message{Type: MsgAck, OK: true}))
	f.Add(fuzzMessageBytes(f, &Message{Type: MsgAck, Detail: "registration rejected"}))
	f.Add(fuzzMessageBytes(f, &Message{Type: MsgHeartbeat, WorkerID: "w0", Load: LoadReport{
		Workers: 8, QueueDepth: 2, Inflight: 8, Sessions: 5, CacheEntries: 17, CacheHits: 400, CacheMisses: 12,
	}}))
	f.Add(fuzzMessageBytes(f, &Message{Type: MsgGoodbye, WorkerID: "w0"}))
	bad := fuzzMessageBytes(f, &Message{Type: MsgHeartbeat, WorkerID: "w1"})
	bad[len(bad)-1] ^= 0xFF // payload corruption: CRC must reject
	f.Add(bad)
	huge := fuzzMessageBytes(f, &Message{Type: MsgRegister, WorkerID: "w2", Addr: "a"})
	binary.LittleEndian.PutUint32(huge[4:8], 0xFFFFFFFF) // absurd length: bound must reject
	f.Add(huge)
	two := append(
		fuzzMessageBytes(f, &Message{Type: MsgHeartbeat, WorkerID: "w3"}),
		fuzzMessageBytes(f, &Message{Type: MsgGoodbye, WorkerID: "w3"})...)
	f.Add(two) // back-to-back frames decode in sequence
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			m, err := DecodeMessage(r)
			if err != nil {
				break // any error is acceptable; a panic or hang is not
			}
			// Decoded messages obey the wire bounds whatever the input.
			if len(m.WorkerID) > maxWireString || len(m.Addr) > maxWireString || len(m.Detail) > maxWireString {
				t.Fatalf("decoded message violates string bound: %+v", m)
			}
			if m.Type < MsgRegister || m.Type > MsgGoodbye {
				t.Fatalf("decoded message has invalid type %d", m.Type)
			}
		}
	})
}
