package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"octgb/internal/obs"
)

// stubWorker is a scriptable upstream: an httptest server plus a worker
// agent registered under id, with togglable latency and context
// awareness.
type stubWorker struct {
	id       string
	ts       *httptest.Server
	agent    *Worker
	hits     atomic.Int64
	delay    atomic.Int64 // ns to sleep before answering
	sawHits  atomic.Int64
	canceled atomic.Int64 // handlers cut short by context cancel
	barrier  chan struct{} // when non-nil, handlers block until it closes
}

func (s *stubWorker) handler(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	// Consume the body like a real worker: the server starts watching for
	// client disconnect (context cancellation) only once the body is read.
	_, _ = io.Copy(io.Discard, r.Body)
	if s.barrier != nil {
		<-s.barrier
	}
	if d := time.Duration(s.delay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			s.canceled.Add(1)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"request_id":"r1","worker":%q,"energy":-42.0}`, s.id)
}

// newRouterHarness builds a router (handler-mounted, membership on a
// loopback listener) plus n stub workers, and waits for the full ring.
func newRouterHarness(t *testing.T, n int, cfg RouterConfig) (*Router, *httptest.Server, []*stubWorker) {
	t.Helper()
	cfg.Addr = "unused"
	cfg.MembershipAddr = "unused"
	if cfg.Timeout == 0 {
		cfg.Timeout = 300 * time.Millisecond
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = 32
	}
	rt := NewRouter(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rt.ServeMembership(ln)
	t.Cleanup(rt.mem.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	workers := make([]*stubWorker, n)
	for i := range workers {
		sw := &stubWorker{id: fmt.Sprintf("w%d", i)}
		sw.ts = httptest.NewServer(http.HandlerFunc(sw.handler))
		t.Cleanup(sw.ts.Close)
		agent, err := StartWorker(WorkerConfig{
			RouterAddr: rt.MembershipAddr(),
			WorkerID:   sw.id,
			Advertise:  strings.TrimPrefix(sw.ts.URL, "http://"),
			Epoch:      1,
			Timeout:    cfg.Timeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		sw.agent = agent
		t.Cleanup(agent.Close)
		workers[i] = sw
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.mem.Ring().Size() != n {
		if time.Now().After(deadline) {
			t.Fatalf("ring never reached %d workers (at %d)", n, rt.mem.Ring().Size())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return rt, front, workers
}

// energyBody builds a small valid energy request; seed varies the routing
// key.
func energyBody(seed int) []byte {
	atoms := make([][5]float64, 4)
	for i := range atoms {
		atoms[i] = [5]float64{float64(i) * 3, float64(seed), 0, 1.5, 0.1}
	}
	b, _ := json.Marshal(map[string]any{"molecule": map[string]any{"atoms": atoms}})
	return b
}

// keyOf extracts the routing key the router would derive for energyBody(seed).
func keyOf(seed int) uint64 {
	atoms := make([][5]float64, 4)
	for i := range atoms {
		atoms[i] = [5]float64{float64(i) * 3, float64(seed), 0, 1.5, 0.1}
	}
	return hashAtoms(atoms)
}

// stubByID finds the stub a ring owner ID refers to.
func stubByID(t *testing.T, workers []*stubWorker, id string) *stubWorker {
	t.Helper()
	for _, w := range workers {
		if w.id == id {
			return w
		}
	}
	t.Fatalf("no stub %q", id)
	return nil
}

func postRaw(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRouterRoutesByKey: the same molecule always lands on its ring
// owner; the serving shard is stamped on the response.
func TestRouterRoutesByKey(t *testing.T) {
	rt, front, workers := newRouterHarness(t, 3, RouterConfig{HedgeDelay: -1})
	for seed := 0; seed < 5; seed++ {
		want := rt.mem.Ring().Owner(keyOf(seed))
		for rep := 0; rep < 3; rep++ {
			resp, body := postRaw(t, front.URL+"/v1/energy", energyBody(seed))
			if resp.StatusCode != 200 {
				t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, body)
			}
			if got := resp.Header.Get(WorkerHeader); got != want {
				t.Fatalf("seed %d rep %d served by %s, want owner %s", seed, rep, got, want)
			}
		}
	}
	total := int64(0)
	for _, w := range workers {
		total += w.hits.Load()
	}
	if total != 15 {
		t.Fatalf("stub hits %d, want 15 (no duplicates without hedging)", total)
	}
}

// TestRouterFailover: the primary dies hard (connection refused); the
// request retries on the replica and succeeds, and the dead worker leaves
// the ring via the suspect path.
func TestRouterFailover(t *testing.T) {
	rt, front, workers := newRouterHarness(t, 3, RouterConfig{HedgeDelay: -1})
	const seed = 7
	owners := rt.mem.Ring().Owners(keyOf(seed), 2)
	prim := stubByID(t, workers, owners[0])
	// Kill the HTTP side only: the membership link keeps heartbeating, so
	// the router still believes the worker is up — exactly the window
	// between a crash and its detection.
	prim.ts.CloseClientConnections()
	prim.ts.Close()

	resp, body := postRaw(t, front.URL+"/v1/energy", energyBody(seed))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(WorkerHeader); got != owners[1] {
		t.Fatalf("served by %s, want replica %s", got, owners[1])
	}
	if rt.met.retries.Load() == 0 {
		t.Fatal("no retry recorded")
	}
	// The transport error marked the primary suspect → declared failed
	// via the single membership removal path.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, _, failures, _ := rt.mem.Counters()
		if failures >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("suspected primary never declared failed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterSpillsWhenPrimaryBusy: a cold key leaves a saturated primary
// for an idle replica, driven by the heartbeat load reports.
func TestRouterSpillsWhenPrimaryBusy(t *testing.T) {
	rt, _, workers := newRouterHarness(t, 2, RouterConfig{HedgeDelay: -1})
	const seed = 3
	owners := rt.mem.Ring().Owners(keyOf(seed), 2)
	// Mark the primary saturated via its member load (as a heartbeat
	// would), then plan.
	rt.mem.mu.Lock()
	rt.mem.members[owners[0]].setLoad(LoadReport{Workers: 2, Inflight: 2, QueueDepth: 5})
	rt.mem.mu.Unlock()
	order := rt.plan(keyOf(seed))
	if order[0] != owners[1] {
		t.Fatalf("plan %v, want spill to %s", order, owners[1])
	}
	if rt.met.spills.Load() != 1 {
		t.Fatalf("spills = %d, want 1", rt.met.spills.Load())
	}
	_ = workers
}

// TestRouterHotSpread: a hot key's requests alternate across its replica
// set instead of hammering the primary.
func TestRouterHotSpread(t *testing.T) {
	rt, front, workers := newRouterHarness(t, 3, RouterConfig{HedgeDelay: -1})
	const seed = 11
	owners := rt.mem.Ring().Owners(keyOf(seed), 2)
	for i := 0; i < hotThreshold+20; i++ {
		resp, body := postRaw(t, front.URL+"/v1/energy", energyBody(seed))
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	if rt.met.hotSpreads.Load() == 0 {
		t.Fatal("hot key never spread to its replica")
	}
	a, b := stubByID(t, workers, owners[0]).hits.Load(), stubByID(t, workers, owners[1]).hits.Load()
	if a == 0 || b == 0 {
		t.Fatalf("hot key hits not spread: primary=%d replica=%d", a, b)
	}
}

// TestHedgingWinsOverSlowPrimary pins the tail-latency path: the primary
// stalls, the hedge fires after the configured delay, the replica's
// response wins, and the loser's in-flight work is cancelled through its
// request context. Counters surface in /stats and /metrics.
func TestHedgingWinsOverSlowPrimary(t *testing.T) {
	rt, front, workers := newRouterHarness(t, 2, RouterConfig{
		HedgeDelay: 30 * time.Millisecond,
		Observe:    obs.New(),
	})
	const seed = 5
	owners := rt.mem.Ring().Owners(keyOf(seed), 2)
	prim := stubByID(t, workers, owners[0])
	prim.delay.Store(int64(2 * time.Second)) // way past the hedge delay

	start := time.Now()
	resp, body := postRaw(t, front.URL+"/v1/energy", energyBody(seed))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedged request took %v; the hedge never fired", d)
	}
	if got := resp.Header.Get(WorkerHeader); got != owners[1] {
		t.Fatalf("served by %s, want hedge replica %s", got, owners[1])
	}
	if !bytes.Contains(body, []byte(owners[1])) {
		t.Fatalf("response body %s not from replica", body)
	}

	st := rt.Stats()
	if st.Hedge.Launched == 0 || st.Hedge.Wins == 0 {
		t.Fatalf("hedge counters launched=%d wins=%d, want both > 0", st.Hedge.Launched, st.Hedge.Wins)
	}
	// Loser cancellation: the slow stub's handler must observe the
	// context cancel (its work was cut, not run to completion).
	deadline := time.Now().Add(3 * time.Second)
	for prim.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loser's handler never saw cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitHedgeSettled(t, rt, 1)
	if got := rt.met.hedgesCanceled.Load(); got == 0 {
		t.Fatalf("hedgesCanceled = %d, want > 0", got)
	}

	// /stats exposure.
	resp2, stats := postGet(t, front.URL+"/stats")
	if resp2.StatusCode != 200 || !bytes.Contains(stats, []byte(`"launched"`)) {
		t.Fatalf("/stats missing hedge block: %d %s", resp2.StatusCode, stats)
	}
	// /metrics exposure.
	resp3, metrics := postGet(t, front.URL+"/metrics")
	if resp3.StatusCode != 200 || !bytes.Contains(metrics, []byte("octgb_fabric_hedges_total")) {
		t.Fatalf("/metrics missing hedge counter: %d", resp3.StatusCode)
	}
	if !bytes.Contains(metrics, []byte(`octgb_fabric_upstream_seconds_bucket{worker=`)) {
		t.Fatal("/metrics missing per-shard upstream latency series")
	}
}

// TestHedgingDeduplicates pins the duplicate path: both legs answer (the
// stubs barrier until both arrived, so neither can be cancelled before
// responding), the client sees exactly one response, and the duplicate is
// discarded and counted.
func TestHedgingDeduplicates(t *testing.T) {
	rt, front, workers := newRouterHarness(t, 2, RouterConfig{HedgeDelay: 10 * time.Millisecond})
	barrier := make(chan struct{})
	arrivals := &atomic.Int64{}
	for _, w := range workers {
		w.barrier = barrier
	}
	// Release the barrier once both legs have arrived.
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for arrivals.Load() < 2 && time.Now().Before(deadline) {
			n := int64(0)
			for _, w := range workers {
				n += w.hits.Load()
			}
			arrivals.Store(n)
			time.Sleep(time.Millisecond)
		}
		close(barrier)
	}()

	resp, body := postRaw(t, front.URL+"/v1/energy", energyBody(9))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// Exactly one JSON document came back.
	var one map[string]any
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatalf("client saw a malformed (duplicated?) body: %v: %s", err, body)
	}
	total := int64(0)
	for _, w := range workers {
		total += w.hits.Load()
	}
	if total != 2 {
		t.Fatalf("upstream hits = %d, want 2 (request duplicated to both shards)", total)
	}
	waitHedgeSettled(t, rt, 1)
	st := rt.Stats()
	if st.Hedge.Launched != 1 {
		t.Fatalf("launched = %d, want 1", st.Hedge.Launched)
	}
	if st.Hedge.Deduped+st.Hedge.Canceled != 1 {
		t.Fatalf("deduped=%d canceled=%d, want exactly one loser accounted", st.Hedge.Deduped, st.Hedge.Canceled)
	}
}

// waitHedgeSettled waits until every launched hedge's loser has been
// accounted (the drain goroutine runs off the request path).
func waitHedgeSettled(t *testing.T, rt *Router, launched int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := rt.Stats()
		if st.Hedge.Wins+st.Hedge.Deduped+st.Hedge.Canceled >= launched &&
			st.Hedge.Deduped+st.Hedge.Canceled >= launched {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("hedge accounting never settled: %+v", rt.Stats().Hedge)
}

func postGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// TestRouterNoWorkers: an empty ring is a clean 503 with the no_workers
// token, not a hang or a panic.
func TestRouterNoWorkers(t *testing.T) {
	rt := NewRouter(RouterConfig{Timeout: 200 * time.Millisecond, HedgeDelay: -1})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, body := postRaw(t, front.URL+"/v1/energy", energyBody(1))
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("no_workers")) {
		t.Fatalf("status %d body %s, want 503 no_workers", resp.StatusCode, body)
	}
	resp2, body2 := postGet(t, front.URL+"/healthz")
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz on empty ring: %d %s", resp2.StatusCode, body2)
	}
}

// TestRouterBadRequest: malformed bodies are rejected at the router with
// the workers' token vocabulary.
func TestRouterBadRequest(t *testing.T) {
	_, front, _ := newRouterHarness(t, 1, RouterConfig{HedgeDelay: -1})
	resp, body := postRaw(t, front.URL+"/v1/energy", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte("bad_request")) {
		t.Fatalf("status %d body %s, want 400 bad_request", resp.StatusCode, body)
	}
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/v1/energy", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/energy: %d, want 405", resp2.StatusCode)
	}
}
