package fabric

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The membership/registration wire protocol. One TCP connection joins a
// worker to the router for the worker's whole life: a Register message,
// an Ack, then Heartbeat messages carrying load reports at a third of the
// membership timeout (the cluster transport's heartbeat cadence), and an
// optional Goodbye on graceful drain. The framing follows the hardened
// cluster transport's rules: a magic number so a stray client is rejected
// on the first frame, a CRC32C over the payload so corruption is an error
// rather than a silent misread, and bounded lengths so arbitrary bytes
// can never force a large allocation (pinned by FuzzDecodeMessage).

// wireMagic distinguishes fabric membership frames from the cluster
// transport's collectives (tcpMagic 0x0C7B) and from random traffic.
const wireMagic = 0xFA8B

// wireVersion is bumped on incompatible message-schema changes; a
// mismatch is rejected at decode so mixed-version deployments fail
// loudly at registration rather than subtly mid-run.
const wireVersion = 1

// Message types.
const (
	// MsgRegister announces a worker: ID, advertised HTTP address, epoch.
	MsgRegister = byte(iota + 1)
	// MsgAck answers a Register: OK or a rejection with Detail.
	MsgAck
	// MsgHeartbeat is the periodic liveness + load report.
	MsgHeartbeat
	// MsgGoodbye announces a graceful drain: the router unmaps the worker
	// immediately instead of waiting out the heartbeat timeout.
	MsgGoodbye
)

// Wire bounds: strings (worker IDs, addresses, rejection details) and the
// whole payload. A frame longer than maxWirePayload is rejected before
// any allocation proportional to the claimed length.
const (
	maxWireString  = 1 << 10
	maxWirePayload = 1 << 14
)

// wireHdrLen is magic(2) + version(1) + type(1) + len(4) + crc32c(4).
const wireHdrLen = 12

var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// LoadReport is a worker's self-reported load, carried on every
// heartbeat. The router's cache-aware balancer reads it: QueueDepth and
// Inflight against Workers decide whether the primary shard is busy
// enough to spill to a replica; CacheEntries/Sessions describe how warm
// the shard is.
type LoadReport struct {
	// Workers is the worker-pool size (capacity).
	Workers int64 `json:"workers"`
	// QueueDepth / Inflight are the instantaneous admission gauges.
	QueueDepth int64 `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`
	// Sessions is the live stream-session count.
	Sessions int64 `json:"sessions"`
	// CacheEntries / CacheHits / CacheMisses describe the prepared cache.
	CacheEntries int64 `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
}

// busy reports whether the worker has no idle capacity: every pool slot
// evaluating and at least one request queued behind them.
func (l LoadReport) busy() bool {
	return l.Workers > 0 && l.Inflight >= l.Workers && l.QueueDepth > 0
}

// Message is one membership frame. Every field is encoded for every
// type (the schema is fixed); which fields are meaningful depends on
// Type.
type Message struct {
	Type     byte
	WorkerID string
	// Addr is the worker's advertised HTTP address (Register only).
	Addr string
	// Epoch distinguishes a restarted worker from a duplicate
	// registration: a Register whose Epoch is newer replaces the old
	// entry; an equal-or-older one is rejected.
	Epoch uint64
	// OK / Detail carry the Ack verdict.
	OK     bool
	Detail string
	// Load is the heartbeat's load report.
	Load LoadReport
}

// appendString encodes s as u16 length + bytes.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// EncodeMessage marshals m into a framed wire message.
func EncodeMessage(m *Message) ([]byte, error) {
	if len(m.WorkerID) > maxWireString || len(m.Addr) > maxWireString || len(m.Detail) > maxWireString {
		return nil, fmt.Errorf("fabric: message string exceeds %d bytes", maxWireString)
	}
	payload := make([]byte, 0, 64+len(m.WorkerID)+len(m.Addr)+len(m.Detail))
	payload = appendString(payload, m.WorkerID)
	payload = appendString(payload, m.Addr)
	payload = binary.LittleEndian.AppendUint64(payload, m.Epoch)
	var ok byte
	if m.OK {
		ok = 1
	}
	payload = append(payload, ok)
	payload = appendString(payload, m.Detail)
	for _, v := range [...]int64{
		m.Load.Workers, m.Load.QueueDepth, m.Load.Inflight, m.Load.Sessions,
		m.Load.CacheEntries, m.Load.CacheHits, m.Load.CacheMisses,
	} {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
	}

	frame := make([]byte, wireHdrLen, wireHdrLen+len(payload))
	binary.LittleEndian.PutUint16(frame[0:2], wireMagic)
	frame[2] = wireVersion
	frame[3] = m.Type
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload, wireCRC))
	return append(frame, payload...), nil
}

// wireReader decodes bounded primitives out of a payload slice; any
// overrun flips err once and every later read returns zero values, so
// DecodeMessage needs a single error check at the end.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("fabric: "+format, args...)
	}
}

func (r *wireReader) str() string {
	if r.err != nil {
		return ""
	}
	if len(r.b) < 2 {
		r.fail("truncated string length")
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.b))
	r.b = r.b[2:]
	if n > maxWireString {
		r.fail("string length %d exceeds %d", n, maxWireString)
		return ""
	}
	if len(r.b) < n {
		r.fail("truncated string body")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *wireReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *wireReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("truncated u8")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// DecodeMessage reads one framed message from r. Malformed input — bad
// magic, unknown version or type, oversized or truncated payload, CRC
// mismatch, string overruns — yields an error, never a panic or an
// oversized allocation (the FuzzDecodeMessage contract). io.EOF before
// the first header byte is returned as io.EOF so callers can tell a
// clean close from a torn frame.
func DecodeMessage(rd io.Reader) (*Message, error) {
	var hdr [wireHdrLen]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("fabric: truncated message header: %w", err)
		}
		return nil, err
	}
	if binary.LittleEndian.Uint16(hdr[0:2]) != wireMagic {
		return nil, fmt.Errorf("fabric: bad magic %#04x", binary.LittleEndian.Uint16(hdr[0:2]))
	}
	if hdr[2] != wireVersion {
		return nil, fmt.Errorf("fabric: unsupported wire version %d (want %d)", hdr[2], wireVersion)
	}
	typ := hdr[3]
	if typ < MsgRegister || typ > MsgGoodbye {
		return nil, fmt.Errorf("fabric: unknown message type %d", typ)
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxWirePayload {
		return nil, fmt.Errorf("fabric: payload %d bytes exceeds limit %d", n, maxWirePayload)
	}
	crc := binary.LittleEndian.Uint32(hdr[8:12])
	payload := make([]byte, n)
	if _, err := io.ReadFull(rd, payload); err != nil {
		return nil, fmt.Errorf("fabric: truncated payload: %w", err)
	}
	if got := crc32.Checksum(payload, wireCRC); got != crc {
		return nil, fmt.Errorf("fabric: payload CRC32C mismatch (got %08x, want %08x)", got, crc)
	}

	m := &Message{Type: typ}
	r := wireReader{b: payload}
	m.WorkerID = r.str()
	m.Addr = r.str()
	m.Epoch = r.u64()
	m.OK = r.u8() != 0
	m.Detail = r.str()
	for _, dst := range [...]*int64{
		&m.Load.Workers, &m.Load.QueueDepth, &m.Load.Inflight, &m.Load.Sessions,
		&m.Load.CacheEntries, &m.Load.CacheHits, &m.Load.CacheMisses,
	} {
		*dst = int64(r.u64())
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("fabric: %d trailing payload bytes", len(r.b))
	}
	return m, nil
}

// writeMessage encodes and writes one message.
func writeMessage(w io.Writer, m *Message) error {
	frame, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// validWorkerID constrains registered IDs to URL- and label-safe bytes.
// The router embeds worker IDs in routed stream-session IDs
// ("id~session") and in Prometheus label values, so the delimiter and
// quoting characters are excluded.
func validWorkerID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}
