package fabric

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"octgb/internal/molecule"
	"octgb/internal/serve"
	"octgb/internal/testutil"
)

// The chaos harness: a worker-crash matrix over victim index × crash mode
// × hedging, each cell asserting the fabric's degradation contract — no
// accepted energy/sweep request lost, ring convergence, router healthy.
//
// `go test` runs a single quick cell; `FABRIC_CHAOS=1 go test -run
// TestChaosWorkerCrashMatrix` (the Makefile's fabric-chaos target) runs
// the full matrix.

type chaosCase struct {
	name    string
	victim  int
	mode    string // "http" = HTTP dies, membership lingers; "full" = both die
	hedging bool
}

func chaosMatrix(full bool) []chaosCase {
	if !full {
		return []chaosCase{{name: "quick-full-crash", victim: 1, mode: "full", hedging: false}}
	}
	var cases []chaosCase
	for victim := 0; victim < 3; victim++ {
		for _, mode := range []string{"http", "full"} {
			for _, hedging := range []bool{false, true} {
				cases = append(cases, chaosCase{
					name:    fmt.Sprintf("victim%d-%s-hedge%v", victim, mode, hedging),
					victim:  victim,
					mode:    mode,
					hedging: hedging,
				})
			}
		}
	}
	return cases
}

func TestChaosWorkerCrashMatrix(t *testing.T) {
	defer testutil.Watchdog(t, 8*time.Minute)()
	full := os.Getenv("FABRIC_CHAOS") != ""
	for _, tc := range chaosMatrix(full) {
		t.Run(tc.name, func(t *testing.T) { runChaosCase(t, tc) })
	}
}

func runChaosCase(t *testing.T, tc chaosCase) {
	cfg := RouterConfig{HedgeDelay: -1}
	if tc.hedging {
		cfg.HedgeDelay = 25 * time.Millisecond
	}
	rt, front, workers := newFabric(t, 3, cfg)

	const nMol = 4
	mols := make([]serve.MoleculeJSON, nMol)
	for i := range mols {
		mols[i] = serve.FromMolecule(molecule.GenerateProtein(fmt.Sprintf("c%d", i), 25, int64(i+1)))
	}

	var failures atomic.Int64
	var firstFailure atomic.Value
	var sent atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := postBody(t, front.URL+"/v1/energy", serve.EnergyRequest{Molecule: mols[(c+i)%nMol]})
				sent.Add(1)
				if resp.StatusCode != 200 {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("%d %s", resp.StatusCode, body))
				}
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond)
	victim := workers[tc.victim]
	switch tc.mode {
	case "full":
		victim.kill()
	case "http":
		// The HTTP side dies but heartbeats keep flowing — the crash is
		// discovered by a forwarded request, not by the failure detector.
		victim.ts.CloseClientConnections()
		victim.ts.Close()
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("[%s] %d/%d requests lost; first: %v", tc.name, n, sent.Load(), firstFailure.Load())
	}
	if sent.Load() < 10 {
		t.Fatalf("[%s] only %d requests driven; harness too idle to mean anything", tc.name, sent.Load())
	}

	// Convergence: the victim leaves the ring (suspect path or heartbeat
	// timeout) and the router stays healthy on the survivors.
	deadline := time.Now().Add(5 * time.Second)
	for rt.mem.Ring().Size() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("[%s] ring stuck at %v", tc.name, rt.mem.Ring().Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, body := postBody(t, front.URL+"/v1/energy", serve.EnergyRequest{Molecule: mols[0]})
	if resp.StatusCode != 200 {
		t.Fatalf("[%s] post-crash request failed: %d %s", tc.name, resp.StatusCode, body)
	}
}
