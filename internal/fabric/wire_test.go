package fabric

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"reflect"
	"strings"
	"testing"
)

func sampleMessages() []*Message {
	return []*Message{
		{Type: MsgRegister, WorkerID: "w0", Addr: "127.0.0.1:9001", Epoch: 42},
		{Type: MsgAck, OK: true},
		{Type: MsgAck, OK: false, Detail: "duplicate registration (epoch 1 <= live epoch 2)"},
		{Type: MsgHeartbeat, WorkerID: "w0", Load: LoadReport{
			Workers: 8, QueueDepth: 3, Inflight: 8, Sessions: 12,
			CacheEntries: 40, CacheHits: 1000, CacheMisses: 50,
		}},
		{Type: MsgGoodbye, WorkerID: "shard-a.2"},
		{Type: MsgHeartbeat, Load: LoadReport{QueueDepth: -1}}, // negative survives the u64 trip
	}
}

// TestWireRoundTrip pins Encode→Decode identity for every message type.
func TestWireRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		frame, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		got, err := DecodeMessage(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", m, got)
		}
	}
}

// TestWireStream pins multi-message framing: back-to-back frames decode in
// order and a clean end of stream is io.EOF (how the registry tells a
// graceful close from a torn frame).
func TestWireStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := writeMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := DecodeMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type != msgs[i].Type {
			t.Fatalf("message %d: type %d, want %d", i, got.Type, msgs[i].Type)
		}
	}
	if _, err := DecodeMessage(&buf); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestWireRejectsMalformed pins the decoder's failure modes: every
// corruption is a typed error, never a panic or an oversized allocation.
func TestWireRejectsMalformed(t *testing.T) {
	good, err := EncodeMessage(&Message{Type: MsgHeartbeat, WorkerID: "w"})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":         corrupt(func(b []byte) { b[0] ^= 0xFF }),
		"bad version":       corrupt(func(b []byte) { b[2] = 99 }),
		"bad type zero":     corrupt(func(b []byte) { b[3] = 0 }),
		"bad type high":     corrupt(func(b []byte) { b[3] = MsgGoodbye + 1 }),
		"oversized payload": corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[4:8], maxWirePayload+1) }),
		"flipped payload":   corrupt(func(b []byte) { b[len(b)-1] ^= 1 }),
		"flipped crc":       corrupt(func(b []byte) { b[8] ^= 1 }),
		"truncated header":  good[:wireHdrLen-3],
		"truncated payload": good[:len(good)-2],
		"trailing bytes": func() []byte {
			// Inflate the declared length and recompute the CRC so only the
			// trailing-bytes check can object.
			payload := append(append([]byte(nil), good[wireHdrLen:]...), 0)
			b := append(append([]byte(nil), good[:wireHdrLen]...), payload...)
			binary.LittleEndian.PutUint32(b[4:8], uint32(len(payload)))
			binary.LittleEndian.PutUint32(b[8:12], crc32.Checksum(payload, wireCRC))
			return b
		}(),
	}
	for name, frame := range cases {
		if _, err := DecodeMessage(bytes.NewReader(frame)); err == nil {
			t.Errorf("%s: decoded successfully, want error", name)
		} else if err == io.EOF {
			t.Errorf("%s: io.EOF, want a typed error", name)
		}
	}
}

// TestWireStringBound pins the encoder-side bound.
func TestWireStringBound(t *testing.T) {
	if _, err := EncodeMessage(&Message{Type: MsgAck, Detail: strings.Repeat("x", maxWireString+1)}); err == nil {
		t.Fatal("oversized Detail encoded, want error")
	}
}

func TestValidWorkerID(t *testing.T) {
	for _, ok := range []string{"w0", "shard-a.2", "A_b-c.9", strings.Repeat("x", 64)} {
		if !validWorkerID(ok) {
			t.Errorf("validWorkerID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "a~b", "a b", "a/b", `a"b`, strings.Repeat("x", 65), "αβ"} {
		if validWorkerID(bad) {
			t.Errorf("validWorkerID(%q) = true, want false", bad)
		}
	}
}
