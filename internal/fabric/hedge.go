package fabric

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"time"
)

// Hedging knobs. The delay adapts to the fleet: p95 of observed upstream
// latency, clamped, so hedges fire only into the latency tail. Until
// enough samples exist the delay falls back to a conservative default.
const (
	defaultHedgeDelay = 50 * time.Millisecond
	minHedgeDelay     = 2 * time.Millisecond
	maxHedgeDelay     = 2 * time.Second
	hedgeMinSamples   = 16
)

// hedgeDelay returns the delay a hedge launched now would wait before
// duplicating the request to the second-warmest shard.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeDelay > 0 {
		return rt.cfg.HedgeDelay
	}
	snap := rt.upstreamLat.Snapshot()
	if snap.Count < hedgeMinSamples {
		return defaultHedgeDelay
	}
	d := snap.Quantile(0.95)
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

func (rt *Router) hedgeCounter(event, help string) {
	if rt.cfg.Observe != nil {
		rt.cfg.Observe.Counter("octgb_fabric_hedges_total", `event="`+event+`"`, help).Inc()
	}
}

// hedgeResult is one leg's outcome.
type hedgeResult struct {
	resp   *http.Response
	worker string
	err    error
	leg    int
}

// hedged routes an idempotent request with tail-latency hedging: the
// primary leg starts immediately; if it has not answered within the
// p95-derived delay, a hedge leg duplicates the request to the
// second-warmest shard. First response wins, the loser's work is cancelled
// through its request context, and a duplicate answer is discarded
// (deduplicated) — the client sees exactly one response either way.
//
// Each leg is itself a failover chain (tryEach), so hedging composes with
// crash failover: the primary leg walks [owner, replica...] and the hedge
// leg walks the reverse.
func (rt *Router) hedged(ctx context.Context, order []string, path, contentType string, body []byte) (*http.Response, string, error) {
	primCtx, cancelPrim := context.WithCancel(ctx)
	hedgeCtx, cancelHedge := context.WithCancel(ctx)

	results := make(chan hedgeResult, 2)
	run := func(leg int, c context.Context, ids []string) {
		resp, worker, err := rt.tryEach(c, ids, path, contentType, body)
		results <- hedgeResult{resp: resp, worker: worker, err: err, leg: leg}
	}
	go run(0, primCtx, order)

	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()

	hedgeLaunched := false
	outstanding := 1
	var winner *hedgeResult
	var lastErr error
	for winner == nil && outstanding > 0 {
		select {
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				outstanding++
				rt.met.hedgesLaunched.Add(1)
				rt.hedgeCounter("launched", "Hedge legs launched after the p95-derived delay.")
				rev := make([]string, len(order))
				for i, id := range order {
					rev[len(order)-1-i] = id
				}
				go run(1, hedgeCtx, rev)
			}
		case res := <-results:
			outstanding--
			if res.err != nil {
				lastErr = res.err
				continue
			}
			// Buffer the winner's body while its own context is still
			// live; afterwards both contexts can be cancelled safely.
			b, err := io.ReadAll(res.resp.Body)
			res.resp.Body.Close()
			if err != nil {
				lastErr = err
				continue
			}
			res.resp.Body = io.NopCloser(bytes.NewReader(b))
			r := res
			winner = &r
		}
	}

	if winner == nil {
		cancelPrim()
		cancelHedge()
		if lastErr == nil {
			lastErr = errors.New("no owners reachable")
		}
		return nil, "", lastErr
	}
	if winner.leg == 1 {
		rt.met.hedgeWins.Add(1)
		rt.hedgeCounter("won", "Hedge legs that finished before the primary.")
	}
	if outstanding > 0 {
		// Cancel the loser and account for it off the request path: a
		// cancelled leg is cut work, a completed one is a deduplicated
		// duplicate whose body is discarded unread by the client.
		if winner.leg == 0 {
			cancelHedge()
		} else {
			cancelPrim()
		}
		go func() {
			res := <-results
			if res.err == nil && res.resp != nil {
				res.resp.Body.Close()
				rt.met.hedgesDeduped.Add(1)
				rt.hedgeCounter("deduped", "Duplicate hedge responses discarded (both legs answered).")
			} else {
				rt.met.hedgesCanceled.Add(1)
				rt.hedgeCounter("canceled", "Hedge losers cancelled mid-flight.")
			}
			cancelPrim()
			cancelHedge()
		}()
	} else {
		cancelPrim()
		cancelHedge()
	}
	return winner.resp, winner.worker, nil
}
