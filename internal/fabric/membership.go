package fabric

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"octgb/internal/cluster"
	"octgb/internal/obs"
)

// DefaultMembershipTimeout is the default heartbeat timeout: a worker
// silent for this long is declared failed and unmapped from the ring.
// Workers heartbeat at a third of it (the cluster transport's cadence),
// so a live worker always lands at least two beats inside any window.
const DefaultMembershipTimeout = 2 * time.Second

// MembershipConfig configures the router-side registry.
type MembershipConfig struct {
	// Timeout is the heartbeat timeout (default DefaultMembershipTimeout).
	Timeout time.Duration
	// VNodes is the ring's virtual-node count per worker (default
	// DefaultVNodes).
	VNodes int
	// OnChange, when non-nil, runs after every ring membership change
	// (join, goodbye, failure) with the lock released.
	OnChange func()
	// Observe records membership metrics (joins, failures, live gauge).
	Observe *obs.Observer
	// Logf receives membership lifecycle logs; nil is silent.
	Logf func(format string, args ...any)
}

// member is one registered worker.
type member struct {
	id    string
	addr  string
	epoch uint64
	slot  int

	conn     net.Conn
	joined   time.Time
	lastSeen atomic.Int64 // unix nanos of the last frame from the worker

	mu   sync.Mutex
	load LoadReport
}

func (m *member) setLoad(l LoadReport) {
	m.mu.Lock()
	m.load = l
	m.mu.Unlock()
}

func (m *member) getLoad() LoadReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.load
}

// MemberInfo is a point-in-time view of one registered worker — the
// router's routing table entry and the /stats worker block.
type MemberInfo struct {
	ID    string     `json:"id"`
	Addr  string     `json:"addr"`
	Slot  int        `json:"slot"`
	Epoch uint64     `json:"epoch"`
	Alive bool       `json:"alive"`
	Load  LoadReport `json:"load"`
	// AgeSeconds is time since registration.
	AgeSeconds float64 `json:"age_seconds"`
}

// Membership is the router-side registry: it accepts worker
// registrations on a TCP listener, monitors their heartbeats, and keeps
// the consistent-hash ring in sync with the live set. It implements
// cluster.FailureDetector over registration slots, and failures surface
// internally as the cluster layer's typed ErrRankFailed — the same
// machinery the in-evaluation transports use.
type Membership struct {
	cfg  MembershipConfig
	ring *Ring

	mu      sync.Mutex
	members map[string]*member
	slots   []string // slot index → worker ID ("" when free)

	ln     net.Listener
	closed atomic.Bool
	wg     sync.WaitGroup

	joins    atomic.Int64
	goodbyes atomic.Int64
	failures atomic.Int64
	rejects  atomic.Int64
}

// NewMembership builds a registry (and its ring) without binding
// anything; call Serve with a listener to start accepting workers.
func NewMembership(cfg MembershipConfig) *Membership {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultMembershipTimeout
	}
	m := &Membership{
		cfg:     cfg,
		ring:    NewRing(cfg.VNodes),
		members: make(map[string]*member),
	}
	if ob := cfg.Observe; ob != nil {
		ob.Reg.GaugeFunc("octgb_fabric_workers", "", "Live registered fabric workers.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.members))
		})
	}
	return m
}

// Ring returns the registry's ring (shared, live — lookups see
// membership changes immediately).
func (m *Membership) Ring() *Ring { return m.ring }

// Serve starts the accept loop on ln; it returns immediately. The
// listener is owned by the registry afterwards and closed by Close.
func (m *Membership) Serve(ln net.Listener) {
	m.ln = ln
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.serveConn(c)
			}()
		}
	}()
}

// Close stops the accept loop, drops every member and waits for the
// connection handlers to exit.
func (m *Membership) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	if m.ln != nil {
		m.ln.Close()
	}
	m.mu.Lock()
	for _, mb := range m.members {
		mb.conn.Close()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// Addr returns the membership listener address, or "" before Serve.
func (m *Membership) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

func (m *Membership) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// serveConn owns one worker's registration connection for its whole
// life: register → ack → heartbeats until goodbye, silence or error.
// Every exit path unregisters the member it registered (and only that
// one — a re-registration replaces the map entry, and the old handler's
// cleanup must not tear down the new epoch).
func (m *Membership) serveConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 1<<12)

	c.SetReadDeadline(time.Now().Add(m.cfg.Timeout))
	msg, err := DecodeMessage(br)
	if err != nil || msg.Type != MsgRegister {
		m.rejects.Add(1)
		_ = writeMessage(c, &Message{Type: MsgAck, Detail: "expected Register"})
		return
	}
	mb, reject := m.register(msg, c)
	if reject != "" {
		m.rejects.Add(1)
		m.logf("fabric: rejected registration of %q: %s", msg.WorkerID, reject)
		_ = writeMessage(c, &Message{Type: MsgAck, Detail: reject})
		return
	}
	if err := writeMessage(c, &Message{Type: MsgAck, OK: true}); err != nil {
		m.unregister(mb, fmt.Errorf("ack write: %w", err), false)
		return
	}
	m.logf("fabric: worker %s joined (addr=%s slot=%d epoch=%d)", mb.id, mb.addr, mb.slot, mb.epoch)

	for {
		c.SetReadDeadline(time.Now().Add(m.cfg.Timeout))
		msg, err := DecodeMessage(br)
		if err != nil {
			// Silence past the timeout or a torn connection: the typed
			// rank failure, attributed to the worker's slot like a rank
			// death inside an evaluation.
			m.unregister(mb, cluster.ErrRankFailed{Rank: mb.slot, Cause: err}, false)
			return
		}
		switch msg.Type {
		case MsgHeartbeat:
			mb.lastSeen.Store(time.Now().UnixNano())
			mb.setLoad(msg.Load)
		case MsgGoodbye:
			m.unregister(mb, nil, true)
			return
		default:
			m.unregister(mb, fmt.Errorf("unexpected message type %d", msg.Type), false)
			return
		}
	}
}

// register validates and installs a registration, returning the member
// or a rejection detail.
func (m *Membership) register(msg *Message, c net.Conn) (*member, string) {
	if !validWorkerID(msg.WorkerID) {
		return nil, "invalid worker id (want [A-Za-z0-9._-]{1,64})"
	}
	if msg.Addr == "" {
		return nil, "missing advertised address"
	}
	m.mu.Lock()
	if old := m.members[msg.WorkerID]; old != nil {
		if msg.Epoch <= old.epoch {
			m.mu.Unlock()
			return nil, fmt.Sprintf("duplicate registration (epoch %d <= live epoch %d)", msg.Epoch, old.epoch)
		}
		// A restarted worker: replace in place. The old handler's read
		// fails once its conn closes, and its unregister no-ops because
		// the map no longer points at its member.
		old.conn.Close()
		mb := &member{id: msg.WorkerID, addr: msg.Addr, epoch: msg.Epoch, slot: old.slot, conn: c, joined: time.Now()}
		mb.lastSeen.Store(time.Now().UnixNano())
		mb.setLoad(msg.Load)
		m.members[msg.WorkerID] = mb
		m.mu.Unlock()
		m.joins.Add(1)
		// Same ID, same ring position: no ring change, no OnChange.
		return mb, ""
	}
	slot := -1
	for i, id := range m.slots {
		if id == "" {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(m.slots)
		m.slots = append(m.slots, "")
	}
	m.slots[slot] = msg.WorkerID
	mb := &member{id: msg.WorkerID, addr: msg.Addr, epoch: msg.Epoch, slot: slot, conn: c, joined: time.Now()}
	mb.lastSeen.Store(time.Now().UnixNano())
	mb.setLoad(msg.Load)
	m.members[msg.WorkerID] = mb
	m.mu.Unlock()

	m.ring.Add(msg.WorkerID)
	m.joins.Add(1)
	if m.cfg.OnChange != nil {
		m.cfg.OnChange()
	}
	return mb, ""
}

// unregister removes mb if it is still the live entry for its ID, and
// reassigns its ring range. cause nil + graceful marks a clean goodbye;
// a typed ErrRankFailed marks detection of a death.
func (m *Membership) unregister(mb *member, cause error, graceful bool) {
	m.mu.Lock()
	if m.members[mb.id] != mb {
		m.mu.Unlock()
		return // replaced by a newer epoch; nothing of ours is live
	}
	delete(m.members, mb.id)
	m.slots[mb.slot] = ""
	m.mu.Unlock()
	mb.conn.Close()

	m.ring.Remove(mb.id)
	if graceful {
		m.goodbyes.Add(1)
		m.logf("fabric: worker %s left (goodbye); ring range reassigned", mb.id)
	} else {
		m.failures.Add(1)
		if m.cfg.Observe != nil {
			m.cfg.Observe.Counter("octgb_fabric_member_failures_total", "", "Workers declared failed (heartbeat timeout or torn registration link).").Inc()
		}
		m.logf("fabric: worker %s FAILED (%v); ring range reassigned to replicas", mb.id, cause)
	}
	if m.cfg.OnChange != nil {
		m.cfg.OnChange()
	}
}

// Suspect reports an out-of-band failure observation (a forward to the
// worker hit a transport error). The member's registration connection is
// closed, which funnels removal through the single serveConn cleanup
// path — the ring updates at most once however many requests notice the
// death concurrently.
func (m *Membership) Suspect(id string, cause error) {
	m.mu.Lock()
	mb := m.members[id]
	m.mu.Unlock()
	if mb == nil {
		return
	}
	m.logf("fabric: worker %s suspected (%v); closing registration link", id, cause)
	mb.conn.Close()
}

// Member returns the live entry for id.
func (m *Membership) Member(id string) (MemberInfo, bool) {
	m.mu.Lock()
	mb := m.members[id]
	m.mu.Unlock()
	if mb == nil {
		return MemberInfo{}, false
	}
	return m.info(mb), true
}

// Snapshot returns every live member, ordered by slot.
func (m *Membership) Snapshot() []MemberInfo {
	m.mu.Lock()
	out := make([]MemberInfo, 0, len(m.members))
	for _, id := range m.slots {
		if id == "" {
			continue
		}
		if mb := m.members[id]; mb != nil {
			out = append(out, m.info(mb))
		}
	}
	m.mu.Unlock()
	return out
}

func (m *Membership) info(mb *member) MemberInfo {
	return MemberInfo{
		ID:         mb.id,
		Addr:       mb.addr,
		Slot:       mb.slot,
		Epoch:      mb.epoch,
		Alive:      m.aliveAt(mb),
		Load:       mb.getLoad(),
		AgeSeconds: time.Since(mb.joined).Seconds(),
	}
}

// aliveAt applies the cluster layer's liveness rule: heard from within
// twice the timeout.
func (m *Membership) aliveAt(mb *member) bool {
	return time.Since(time.Unix(0, mb.lastSeen.Load())) < 2*m.cfg.Timeout
}

// AliveRanks implements cluster.FailureDetector over registration slots:
// slot i is alive while its worker is registered and heard from within
// twice the timeout. Freed slots report false until reused.
func (m *Membership) AliveRanks() []bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	alive := make([]bool, len(m.slots))
	for i, id := range m.slots {
		if id == "" {
			continue
		}
		if mb := m.members[id]; mb != nil {
			alive[i] = m.aliveAt(mb)
		}
	}
	return alive
}

// Counters returns the lifecycle tallies (joins, goodbyes, failures,
// rejected registrations).
func (m *Membership) Counters() (joins, goodbyes, failures, rejects int64) {
	return m.joins.Load(), m.goodbyes.Load(), m.failures.Load(), m.rejects.Load()
}

// statically assert the FailureDetector contract.
var _ cluster.FailureDetector = (*Membership)(nil)
