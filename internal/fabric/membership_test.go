package fabric

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"octgb/internal/cluster"
)

// newTestMembership binds a registry on a loopback listener with a short
// timeout so death detection fits in test time.
func newTestMembership(t *testing.T, cfg MembershipConfig) *Membership {
	t.Helper()
	if cfg.Timeout == 0 {
		cfg.Timeout = 300 * time.Millisecond
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = 16
	}
	m := NewMembership(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m.Serve(ln)
	t.Cleanup(m.Close)
	return m
}

// startTestWorker registers a worker agent against the registry.
func startTestWorker(t *testing.T, m *Membership, id string, epoch uint64, load func() LoadReport) *Worker {
	t.Helper()
	w, err := StartWorker(WorkerConfig{
		RouterAddr: m.Addr(),
		WorkerID:   id,
		Advertise:  "127.0.0.1:1", // unused by membership itself
		Epoch:      epoch,
		Timeout:    300 * time.Millisecond,
		Load:       load,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if !w.WaitRegistered(5 * time.Second) {
		t.Fatalf("worker %s never registered", id)
	}
	return w
}

func waitRingSize(t *testing.T, m *Membership, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Ring().Size() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ring size %d, want %d", m.Ring().Size(), want)
}

// TestMembershipJoinHeartbeatGoodbye: the full graceful lifecycle — join
// updates the ring, heartbeats carry load reports, goodbye unmaps
// immediately.
func TestMembershipJoinHeartbeatGoodbye(t *testing.T) {
	m := newTestMembership(t, MembershipConfig{})
	load := LoadReport{Workers: 4, Inflight: 2, CacheEntries: 9}
	w := startTestWorker(t, m, "w0", 1, func() LoadReport { return load })
	startTestWorker(t, m, "w1", 1, nil)
	waitRingSize(t, m, 2)

	// Heartbeats deliver the load report.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, ok := m.Member("w0")
		if ok && info.Load.CacheEntries == 9 {
			if !info.Alive {
				t.Fatal("heartbeating worker reported not alive")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load report never arrived: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}

	alive := m.AliveRanks()
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("AliveRanks = %v, want 2 alive", alive)
	}

	// Goodbye unmaps without waiting out the timeout.
	start := time.Now()
	w.Close()
	waitRingSize(t, m, 1)
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Errorf("goodbye removal took %v; want well under the 300ms timeout", d)
	}
	joins, goodbyes, failures, _ := m.Counters()
	if joins != 2 || goodbyes != 1 || failures != 0 {
		t.Fatalf("counters joins=%d goodbyes=%d failures=%d, want 2/1/0", joins, goodbyes, failures)
	}
}

// rawRegister speaks the wire protocol by hand so tests can die silently
// (no goodbye, no reconnect) — the failure path a crashed worker takes.
func rawRegister(t *testing.T, addr, id string, epoch uint64) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMessage(c, &Message{Type: MsgRegister, WorkerID: id, Addr: "127.0.0.1:1", Epoch: epoch}); err != nil {
		t.Fatal(err)
	}
	ack, err := DecodeMessage(bufio.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	if !ack.OK {
		c.Close()
		t.Fatalf("registration rejected: %s", ack.Detail)
	}
	return c
}

// TestMembershipDeathDetection: a worker that goes silent (crash, not
// goodbye) is declared failed within the heartbeat timeout and its range
// reassigned; the failure is attributed like a cluster rank death.
func TestMembershipDeathDetection(t *testing.T) {
	var mu sync.Mutex
	var failure error
	m := newTestMembership(t, MembershipConfig{
		Logf: func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			for _, a := range args {
				if err, ok := a.(error); ok {
					failure = err
				}
			}
		},
	})
	startTestWorker(t, m, "w0", 1, nil)
	c := rawRegister(t, m.Addr(), "crashy", 1)
	defer c.Close()
	waitRingSize(t, m, 2)

	// Go silent: no heartbeats. Detection within ~timeout.
	start := time.Now()
	waitRingSize(t, m, 1)
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("death detection took %v", d)
	}
	if got := m.Ring().Members(); len(got) != 1 || got[0] != "w0" {
		t.Fatalf("ring members after death: %v", got)
	}
	_, _, failures, _ := m.Counters()
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
	// The attribution is the cluster layer's typed failure.
	mu.Lock()
	got := failure
	mu.Unlock()
	if got == nil {
		t.Fatal("no failure error surfaced to the log")
	}
	var rf cluster.ErrRankFailed
	if !errors.As(got, &rf) {
		t.Fatalf("failure %T (%v), want cluster.ErrRankFailed", got, got)
	}
}

// TestMembershipEpochReplacement: a restarted worker (same ID, newer
// epoch) replaces its old registration in place; a stale epoch is
// rejected.
func TestMembershipEpochReplacement(t *testing.T) {
	m := newTestMembership(t, MembershipConfig{})
	c1 := rawRegister(t, m.Addr(), "w0", 5)
	defer c1.Close()
	waitRingSize(t, m, 1)

	// Stale epoch: rejected.
	c2, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := writeMessage(c2, &Message{Type: MsgRegister, WorkerID: "w0", Addr: "127.0.0.1:1", Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	ack, err := DecodeMessage(bufio.NewReader(c2))
	if err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("stale epoch accepted")
	}

	// Newer epoch: replaces. Ring stays size 1 throughout (same ID, same
	// ranges — a restart does not shuffle keys).
	c3 := rawRegister(t, m.Addr(), "w0", 6)
	defer c3.Close()
	if m.Ring().Size() != 1 {
		t.Fatalf("ring size %d after replacement", m.Ring().Size())
	}
	info, ok := m.Member("w0")
	if !ok || info.Epoch != 6 {
		t.Fatalf("member after replacement: %+v ok=%v, want epoch 6", info, ok)
	}
	// The old handler's cleanup must not remove the new registration.
	time.Sleep(50 * time.Millisecond)
	if _, ok := m.Member("w0"); !ok {
		t.Fatal("old connection's cleanup tore down the new epoch")
	}
}

// TestWorkerReconnect: a worker whose registration link tears (router
// restart, network blip) re-registers with a bumped epoch.
func TestWorkerReconnect(t *testing.T) {
	m := newTestMembership(t, MembershipConfig{})
	startTestWorker(t, m, "w0", 1, nil)
	waitRingSize(t, m, 1)

	// Tear the link from the router side without removing state: Suspect
	// closes the conn, the worker must come back on its own.
	m.Suspect("w0", nil)
	waitRingSize(t, m, 0)
	waitRingSize(t, m, 1)
	info, _ := m.Member("w0")
	if info.Epoch <= 1 {
		t.Fatalf("reconnected epoch %d, want > 1", info.Epoch)
	}
}
