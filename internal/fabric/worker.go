package fabric

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"octgb/internal/serve"
)

// ServeLoad adapts a serve.Server's instantaneous load view into the
// heartbeat report — the WorkerConfig.Load hookup every engine worker
// uses.
func ServeLoad(s *serve.Server) func() LoadReport {
	return func() LoadReport {
		ls := s.LoadStats()
		return LoadReport{
			Workers:      int64(ls.Workers),
			QueueDepth:   int64(ls.QueueDepth),
			Inflight:     ls.Inflight,
			Sessions:     int64(ls.Sessions),
			CacheEntries: int64(ls.CacheEntries),
			CacheHits:    ls.CacheHits,
			CacheMisses:  ls.CacheMisses,
		}
	}
}

// WorkerConfig configures a worker-side membership agent.
type WorkerConfig struct {
	// RouterAddr is the router's membership listener ("host:port").
	RouterAddr string
	// WorkerID is this worker's stable identity on the ring. It must
	// satisfy validWorkerID; the shard the worker owns follows the ID, so
	// a restart under the same ID reclaims the same key ranges.
	WorkerID string
	// Advertise is the HTTP address the router forwards requests to.
	Advertise string
	// Epoch orders registrations of the same WorkerID; a restarted worker
	// must register with a larger epoch than its previous life. Wall-clock
	// nanoseconds at startup is the usual choice.
	Epoch uint64
	// Timeout is the membership timeout agreed with the router; the agent
	// heartbeats at a third of it (default DefaultMembershipTimeout).
	Timeout time.Duration
	// Load supplies the load report attached to each heartbeat; nil sends
	// zero reports.
	Load func() LoadReport
	// Logf receives agent lifecycle logs; nil is silent.
	Logf func(format string, args ...any)
}

// Worker is the worker-side membership agent: it keeps one registration
// connection to the router alive for the process's life — register, ack,
// heartbeats at a third of the membership timeout — and re-registers with
// a bumped epoch (backing off with jitter) whenever the link tears.
type Worker struct {
	cfg   WorkerConfig
	epoch atomic.Uint64

	stopCh chan struct{}
	stop   sync.Once
	wg     sync.WaitGroup

	mu   sync.Mutex
	conn net.Conn // current registration conn, nil between attempts

	registered atomic.Bool
}

// StartWorker validates cfg and starts the agent's connection loop.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	if !validWorkerID(cfg.WorkerID) {
		return nil, fmt.Errorf("fabric: invalid worker id %q (want [A-Za-z0-9._-]{1,64})", cfg.WorkerID)
	}
	if cfg.RouterAddr == "" || cfg.Advertise == "" {
		return nil, fmt.Errorf("fabric: worker needs RouterAddr and Advertise")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultMembershipTimeout
	}
	w := &Worker{cfg: cfg, stopCh: make(chan struct{})}
	w.epoch.Store(cfg.Epoch)
	w.wg.Add(1)
	go w.run()
	return w, nil
}

// Registered reports whether the agent currently holds an acked
// registration with the router.
func (w *Worker) Registered() bool { return w.registered.Load() }

// WaitRegistered blocks until the agent is registered or the deadline
// passes.
func (w *Worker) WaitRegistered(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if w.registered.Load() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return w.registered.Load()
}

// Close sends a best-effort Goodbye (so the router unmaps the shard
// immediately rather than waiting out the heartbeat timeout) and stops
// the agent.
func (w *Worker) Close() {
	w.stop.Do(func() {
		close(w.stopCh)
		w.mu.Lock()
		c := w.conn
		w.mu.Unlock()
		if c != nil {
			c.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
			_ = writeMessage(c, &Message{Type: MsgGoodbye, WorkerID: w.cfg.WorkerID})
			c.Close()
		}
	})
	w.wg.Wait()
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// run is the agent's whole life: (re)connect, register, heartbeat until
// the link tears, back off, repeat. The backoff is exponential with
// jitter seeded per-agent, mirroring the cluster transport's dialRetry.
func (w *Worker) run() {
	defer w.wg.Done()
	rng := rand.New(rand.NewSource(int64(w.epoch.Load()) ^ int64(len(w.cfg.WorkerID))))
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		select {
		case <-w.stopCh:
			return
		default:
		}
		err := w.session()
		select {
		case <-w.stopCh:
			return
		default:
		}
		if err != nil {
			w.logf("fabric: worker %s link to router lost (%v); retrying in ~%v", w.cfg.WorkerID, err, backoff)
		}
		// Re-register as a new life: bump the epoch so the router accepts
		// the replacement even if the old conn hasn't timed out yet.
		w.epoch.Add(1)
		jitter := time.Duration(rng.Int63n(int64(backoff)/2 + 1))
		select {
		case <-w.stopCh:
			return
		case <-time.After(backoff + jitter):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// session runs one registration connection to completion: dial, register,
// await ack, heartbeat until error or stop.
func (w *Worker) session() error {
	d := net.Dialer{Timeout: w.cfg.Timeout}
	c, err := d.Dial("tcp", w.cfg.RouterAddr)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.conn = c
	w.mu.Unlock()
	defer func() {
		w.registered.Store(false)
		w.mu.Lock()
		if w.conn == c {
			w.conn = nil
		}
		w.mu.Unlock()
		c.Close()
	}()

	reg := &Message{Type: MsgRegister, WorkerID: w.cfg.WorkerID, Addr: w.cfg.Advertise, Epoch: w.epoch.Load()}
	if w.cfg.Load != nil {
		reg.Load = w.cfg.Load()
	}
	c.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	if err := writeMessage(c, reg); err != nil {
		return fmt.Errorf("register write: %w", err)
	}
	br := bufio.NewReaderSize(c, 1<<10)
	c.SetReadDeadline(time.Now().Add(w.cfg.Timeout))
	ack, err := DecodeMessage(br)
	if err != nil {
		return fmt.Errorf("register ack: %w", err)
	}
	if ack.Type != MsgAck || !ack.OK {
		return fmt.Errorf("registration rejected: %s", ack.Detail)
	}
	w.registered.Store(true)
	w.logf("fabric: worker %s registered with router %s (epoch %d)", w.cfg.WorkerID, w.cfg.RouterAddr, w.epoch.Load())

	// The cluster transport's cadence: three beats per timeout window.
	tick := time.NewTicker(w.cfg.Timeout / 3)
	defer tick.Stop()
	for {
		select {
		case <-w.stopCh:
			return nil
		case <-tick.C:
		}
		hb := &Message{Type: MsgHeartbeat, WorkerID: w.cfg.WorkerID}
		if w.cfg.Load != nil {
			hb.Load = w.cfg.Load()
		}
		c.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
		if err := writeMessage(c, hb); err != nil {
			return fmt.Errorf("heartbeat write: %w", err)
		}
	}
}
