package fabric

import (
	"fmt"
	"testing"
)

// ringKeys deterministically generates n pseudo-random keyspace points by
// hashing an index — the same uniformity the real keys (SHA-256 molecule
// digests) have.
func ringKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = vnodeHash("key", i)
	}
	return keys
}

// TestRingBalance pins the satellite acceptance bound: with 8 workers at
// the default vnode count, every worker's share of a uniform keyspace is
// within ±15% of fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVNodes)
	const workers = 8
	for i := 0; i < workers; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	const n = 100_000
	counts := make(map[string]int, workers)
	for _, k := range ringKeys(n) {
		owner := r.Owner(k)
		if owner == "" {
			t.Fatal("empty owner on a populated ring")
		}
		counts[owner]++
	}
	fair := float64(n) / workers
	for id, c := range counts {
		dev := (float64(c) - fair) / fair
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("worker %s owns %d keys (%.1f%% from fair share %.0f; want within ±15%%)", id, c, 100*dev, fair)
		}
	}
	if len(counts) != workers {
		t.Errorf("only %d of %d workers own keys", len(counts), workers)
	}
}

// TestRingKeyMovement pins the consistency property: a single join or
// leave moves at most ~K/N of the keys (with slack for vnode variance),
// and keys that do move on a join move only onto the joiner.
func TestRingKeyMovement(t *testing.T) {
	const workers = 8
	const n = 50_000
	keys := ringKeys(n)

	build := func(ids ...string) map[uint64]string {
		r := NewRing(DefaultVNodes)
		for _, id := range ids {
			r.Add(id)
		}
		owners := make(map[uint64]string, n)
		for _, k := range keys {
			owners[k] = r.Owner(k)
		}
		return owners
	}

	ids := make([]string, workers)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%d", i)
	}
	before := build(ids...)

	// Join: w8 enters. Only keys that land on w8 may change owner, and
	// about 1/(N+1) of the keyspace should.
	after := build(append(append([]string{}, ids...), "w8")...)
	moved := 0
	for k, o := range after {
		if o != before[k] {
			moved++
			if o != "w8" {
				t.Fatalf("key %x moved from %s to %s on a join of w8", k, before[k], o)
			}
		}
	}
	fair := float64(n) / (workers + 1)
	if float64(moved) > 1.5*fair {
		t.Errorf("join moved %d keys; want ≤ ~K/N = %.0f (1.5× slack)", moved, fair)
	}
	if moved == 0 {
		t.Error("join moved no keys; the new worker owns nothing")
	}

	// Leave: w0 exits. Only w0's keys may move.
	afterLeave := build(ids[1:]...)
	moved = 0
	for k, o := range afterLeave {
		if o != before[k] {
			moved++
			if before[k] != "w0" {
				t.Fatalf("key %x moved from %s to %s on a leave of w0", k, before[k], o)
			}
		}
	}
	fair = float64(n) / workers
	if float64(moved) > 1.5*fair {
		t.Errorf("leave moved %d keys; want ≤ ~K/N = %.0f (1.5× slack)", moved, fair)
	}
}

// TestRingOwnersDistinct pins the replica-set contract: Owners returns
// distinct members in ring order, truncated to the member count.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(64)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	for _, k := range ringKeys(1000) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(k,2) returned %d members", len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("replica set contains a duplicate: %v", owners)
		}
		if got := r.Owner(k); got != owners[0] {
			t.Fatalf("Owner (%s) disagrees with Owners[0] (%s)", got, owners[0])
		}
	}
	if got := r.Owners(ringKeys(1)[0], 5); len(got) != 3 {
		t.Fatalf("Owners(k,5) on a 3-ring returned %d members (want all 3)", len(got))
	}
	if got := NewRing(0).Owners(42, 2); got != nil {
		t.Fatalf("Owners on an empty ring = %v, want nil", got)
	}
}

// TestRingAddRemoveIdempotent pins membership edge cases.
func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(32)
	r.Add("a")
	r.Add("a")
	if r.Size() != 1 {
		t.Fatalf("double Add: size %d", r.Size())
	}
	if len(r.hashes) != 32 {
		t.Fatalf("double Add duplicated vnodes: %d", len(r.hashes))
	}
	r.Remove("missing")
	r.Remove("a")
	r.Remove("a")
	if r.Size() != 0 || len(r.hashes) != 0 {
		t.Fatalf("remove left residue: size=%d vnodes=%d", r.Size(), len(r.hashes))
	}
	if got := r.Owner(7); got != "" {
		t.Fatalf("Owner on empty ring = %q", got)
	}
}
