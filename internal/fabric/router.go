package fabric

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"octgb/internal/obs"
	"octgb/internal/serve"
)

// DefaultReplicas is the replication factor R: hot keys and failover both
// use the key's first R distinct ring owners.
const DefaultReplicas = 2

// maxRouterBody bounds request buffering, matching the workers' own
// request-body bound so the router never rejects what a worker would
// accept.
const maxRouterBody = 256 << 20

// sessionIDSep joins a worker ID and a worker-local session ID into the
// routed session ID clients hold ("worker~s-abc-0001"). Worker IDs cannot
// contain it (validWorkerID) and worker-minted session IDs never do.
const sessionIDSep = "~"

// WorkerHeader is set on every proxied response: which shard served it.
// The load generator's router mode reads it for per-shard attribution.
const WorkerHeader = "X-Octgb-Worker"

// RouterConfig configures the front-end router tier.
type RouterConfig struct {
	// Addr is the HTTP listen address (":8700" when empty).
	Addr string
	// MembershipAddr is the worker registration listener (":8701" when
	// empty).
	MembershipAddr string
	// Replicas is the replication factor R (DefaultReplicas when 0).
	Replicas int
	// VNodes is the ring's virtual-node count per worker.
	VNodes int
	// Timeout is the membership heartbeat timeout.
	Timeout time.Duration
	// HedgeDelay fixes the hedging delay. 0 derives it per request from
	// the p95 of observed upstream latency (the adaptive default);
	// negative disables hedging.
	HedgeDelay time.Duration
	// Client performs upstream requests (a pooled default when nil).
	Client *http.Client
	// Observe exports the router's metrics; nil disables /metrics.
	Observe *obs.Observer
	// Logger receives lifecycle logs; nil is silent.
	Logger *log.Logger
}

// routerMetrics is the router's atomic counter set.
type routerMetrics struct {
	start time.Time

	forwarded      atomic.Int64 // requests relayed to a worker (any status)
	retries        atomic.Int64 // failover retries after a transport error
	spills         atomic.Int64 // load spills: busy primary skipped for an idle replica
	hotSpreads     atomic.Int64 // hot keys alternated across their replica set
	noWorkers      atomic.Int64 // rejected: empty ring
	upstreamFailed atomic.Int64 // all owners exhausted by transport errors
	lostSessions   atomic.Int64 // sticky session whose shard is gone

	hedgesLaunched atomic.Int64 // secondary requests launched
	hedgeWins      atomic.Int64 // secondary finished first
	hedgesDeduped  atomic.Int64 // both legs answered; duplicate discarded
	hedgesCanceled atomic.Int64 // loser cut short by context cancel
}

// Router is the stateless front end of the serving fabric. It owns no
// evaluation state — only the membership registry, the ring, and soft
// routing state (hot-key tracker, latency histograms) that can be lost
// without losing a request — so routers scale horizontally and restart
// freely.
type Router struct {
	cfg    RouterConfig
	mem    *Membership
	client *http.Client
	mux    *http.ServeMux
	met    routerMetrics
	hot    *hotTracker
	spread atomic.Uint64 // alternates hot keys across their replica set

	// upstreamLat feeds the p95-derived hedge delay. It lives in the
	// Observe registry when one is configured (it IS
	// octgb_fabric_upstream_seconds aggregated) and in a private registry
	// otherwise, so hedging adapts either way.
	upstreamLat *obs.Histogram

	perWorkerMu  sync.Mutex
	perWorkerLat map[string]*obs.Histogram

	httpSrv *http.Server
	ln      net.Listener
	stopped atomic.Bool
}

// NewRouter builds a router and its membership registry; Start (or
// Handler + Serve on the membership listener in tests) brings it live.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Addr == "" {
		cfg.Addr = ":8700"
	}
	if cfg.MembershipAddr == "" {
		cfg.MembershipAddr = ":8701"
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	rt := &Router{
		cfg:          cfg,
		client:       cfg.Client,
		hot:          newHotTracker(hotWindow, hotThreshold),
		perWorkerLat: make(map[string]*obs.Histogram),
	}
	rt.met.start = time.Now()
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	reg := obs.NewRegistry()
	if cfg.Observe != nil {
		reg = cfg.Observe.Reg
	}
	rt.upstreamLat = reg.Histogram("octgb_fabric_upstream_seconds", "", "Upstream request latency across all workers (feeds the p95-derived hedge delay).")

	rt.mem = NewMembership(MembershipConfig{
		Timeout: cfg.Timeout,
		VNodes:  cfg.VNodes,
		Observe: cfg.Observe,
		Logf:    rt.logf,
	})

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/energy", rt.handleEnergy)
	rt.mux.HandleFunc("/v1/sweep", rt.handleSweep)
	rt.mux.HandleFunc("/v1/stream", rt.handleStreamCreate)
	rt.mux.HandleFunc("/v1/stream/", rt.handleStreamSticky)
	rt.mux.HandleFunc("/stats", rt.handleStats)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	if cfg.Observe != nil {
		rt.mux.Handle("/metrics", cfg.Observe.Reg.Handler())
	}
	return rt
}

// Membership returns the router's registry (tests and the daemon use it
// for introspection).
func (rt *Router) Membership() *Membership { return rt.mem }

// Handler returns the router's HTTP handler without starting listeners.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start binds the HTTP and membership listeners and serves in background
// goroutines until Shutdown.
func (rt *Router) Start() error {
	memLn, err := net.Listen("tcp", rt.cfg.MembershipAddr)
	if err != nil {
		return fmt.Errorf("fabric: membership listen: %w", err)
	}
	rt.mem.Serve(memLn)

	ln, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		rt.mem.Close()
		return fmt.Errorf("fabric: listen: %w", err)
	}
	rt.ln = ln
	rt.httpSrv = &http.Server{Handler: rt.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = rt.httpSrv.Serve(ln) }()
	rt.logf("fabric: router serving on %s (membership on %s, R=%d)", ln.Addr(), memLn.Addr(), rt.cfg.Replicas)
	return nil
}

// ServeMembership starts only the registration listener — tests drive the
// HTTP side through Handler().
func (rt *Router) ServeMembership(ln net.Listener) { rt.mem.Serve(ln) }

// Addr returns the bound HTTP address ("" before Start).
func (rt *Router) Addr() string {
	if rt.ln == nil {
		return ""
	}
	return rt.ln.Addr().String()
}

// MembershipAddr returns the bound registration address ("" before
// Start/ServeMembership).
func (rt *Router) MembershipAddr() string { return rt.mem.Addr() }

// Shutdown stops the HTTP server and the membership registry.
func (rt *Router) Shutdown(ctx context.Context) error {
	if !rt.stopped.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	if rt.httpSrv != nil {
		err = rt.httpSrv.Shutdown(ctx)
	}
	rt.mem.Close()
	return err
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Printf(format, args...)
	}
}

// hashAtoms reproduces molecule.Hash over the wire-form atom 5-tuples, so
// the router derives the same routing key the workers use as cache key
// material without materializing a molecule.
func hashAtoms(atoms [][5]float64) uint64 {
	h := sha256.New()
	var buf [40]byte
	for _, a := range atoms {
		for i, v := range a {
			binary.LittleEndian.PutUint64(buf[8*i:8*i+8], math.Float64bits(v))
		}
		h.Write(buf[:])
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return KeyHash(sum)
}

// writeRouterError mirrors the workers' error contract (serve.ErrorResponse
// tokens) so clients see one vocabulary whether a reject came from a
// worker's admission gate or from the router itself.
func writeRouterError(w http.ResponseWriter, status int, token, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: token, Detail: detail})
}

// readBody buffers the request body for replay across failover attempts.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouterBody))
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, "too_large", "request body exceeds limit")
		return nil, false
	}
	return body, true
}

func (rt *Router) handleEnergy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeRouterError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req serve.EnergyRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Molecule.Atoms) == 0 {
		writeRouterError(w, http.StatusBadRequest, "bad_request", "invalid energy request")
		return
	}
	rt.forward(w, r, hashAtoms(req.Molecule.Atoms), body, true)
}

func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeRouterError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req serve.SweepRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Ligand.Atoms) == 0 {
		writeRouterError(w, http.StatusBadRequest, "bad_request", "invalid sweep request")
		return
	}
	// Route by receptor when present: the receptor is the shared, heavy,
	// cache-resident side of a docking sweep (the paper's workload), so
	// all sweeps against one receptor land on the shard that has its
	// surface and octree prepared. Ligand-only sweeps route by ligand.
	key := hashAtoms(req.Ligand.Atoms)
	if req.Receptor != nil && len(req.Receptor.Atoms) > 0 {
		key = hashAtoms(req.Receptor.Atoms)
	}
	rt.forward(w, r, key, body, true)
}

// forward routes one idempotent request: plan the owner order, optionally
// hedge, fail over on transport errors, relay the first response.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key uint64, body []byte, hedgeable bool) {
	order := rt.plan(key)
	if len(order) == 0 {
		rt.met.noWorkers.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, "no_workers", "no workers registered")
		return
	}
	if hedgeable && len(order) >= 2 && rt.cfg.HedgeDelay >= 0 {
		resp, worker, err := rt.hedged(r.Context(), order, r.URL.Path, r.Header.Get("Content-Type"), body)
		if err != nil {
			rt.met.upstreamFailed.Add(1)
			writeRouterError(w, http.StatusBadGateway, "upstream_failed", err.Error())
			return
		}
		rt.relay(w, resp, worker, nil)
		return
	}
	resp, worker, err := rt.tryEach(r.Context(), order, r.URL.Path, r.Header.Get("Content-Type"), body)
	if err != nil {
		rt.met.upstreamFailed.Add(1)
		writeRouterError(w, http.StatusBadGateway, "upstream_failed", err.Error())
		return
	}
	rt.relay(w, resp, worker, nil)
}

// send performs one upstream attempt against worker id. A non-nil error
// is a transport failure (dial, reset, torn body) — the worker is suspect
// and the caller should fail over; HTTP-level errors come back as
// responses.
func (rt *Router) send(ctx context.Context, id, path, contentType string, body []byte) (*http.Response, error) {
	info, ok := rt.mem.Member(id)
	if !ok {
		return nil, fmt.Errorf("worker %s no longer registered", id)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+info.Addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		// A cancelled context is our own doing (client gone or hedge
		// loser cut short) — only organic transport errors make the
		// worker suspect.
		if ctx.Err() == nil {
			rt.mem.Suspect(id, err)
		}
		return nil, err
	}
	d := time.Since(start)
	rt.upstreamLat.Observe(d)
	rt.workerLat(id).Observe(d)
	return resp, nil
}

// workerLat returns the per-shard upstream latency histogram (Observe
// registry only — nil-safe no-op otherwise).
func (rt *Router) workerLat(id string) *obs.Histogram {
	if rt.cfg.Observe == nil {
		return nil
	}
	rt.perWorkerMu.Lock()
	defer rt.perWorkerMu.Unlock()
	h, ok := rt.perWorkerLat[id]
	if !ok {
		h = rt.cfg.Observe.Histogram("octgb_fabric_upstream_seconds", `worker="`+id+`"`, "Upstream request latency by worker shard.")
		rt.perWorkerLat[id] = h
	}
	return h
}

// retryableStatus reports admission rejects worth spilling to a replica:
// the worker is alive but full (429) or draining (503). Anything else —
// including eval_failed 500s, which are deterministic for the payload —
// is relayed as-is rather than retried.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// tryEach walks the owner order: transport errors and admission rejects
// move to the next owner; the first relayable response wins. The last
// response is relayed even if it is a reject, so a fully-loaded fleet
// still answers with the workers' own backpressure contract.
func (rt *Router) tryEach(ctx context.Context, order []string, path, contentType string, body []byte) (*http.Response, string, error) {
	var lastErr error
	for i, id := range order {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		if i > 0 {
			rt.met.retries.Add(1)
			if rt.cfg.Observe != nil {
				rt.cfg.Observe.Counter("octgb_fabric_retries_total", "", "Failover retries onto a replica shard.").Inc()
			}
		}
		resp, err := rt.send(ctx, id, path, contentType, body)
		if err != nil {
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) && i < len(order)-1 {
			resp.Body.Close()
			continue
		}
		return resp, id, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no owners reachable")
	}
	return nil, "", lastErr
}

// relay copies an upstream response to the client, stamping the serving
// shard, optionally transforming the body.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, worker string, transform func([]byte) []byte) {
	defer resp.Body.Close()
	rt.met.forwarded.Add(1)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, "upstream_failed", "torn upstream response")
		return
	}
	if transform != nil && resp.StatusCode < 300 {
		body = transform(body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(WorkerHeader, worker)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// handleStreamCreate routes a session create by molecule hash and rewrites
// the returned session ID into routed form ("worker~sid") so every later
// frame carries its shard. Creates are not hedged — a session is state,
// and hedging one would strand a twin on the loser shard.
func (rt *Router) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeRouterError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req serve.StreamCreateRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Molecule.Atoms) == 0 {
		writeRouterError(w, http.StatusBadRequest, "bad_request", "invalid stream create request")
		return
	}
	order := rt.plan(hashAtoms(req.Molecule.Atoms))
	if len(order) == 0 {
		rt.met.noWorkers.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, "no_workers", "no workers registered")
		return
	}
	resp, worker, err := rt.tryEach(r.Context(), order, r.URL.Path, r.Header.Get("Content-Type"), body)
	if err != nil {
		rt.met.upstreamFailed.Add(1)
		writeRouterError(w, http.StatusBadGateway, "upstream_failed", err.Error())
		return
	}
	rt.relay(w, resp, worker, func(b []byte) []byte {
		return rewriteSessionID(b, func(sid string) string { return worker + sessionIDSep + sid })
	})
}

// handleStreamSticky forwards /v1/stream/{worker~sid}[/frame|/close] to
// the one shard holding the session's state. There is no failover here by
// design — incremental session state lives on exactly one worker — so a
// dead shard is a truly lost session: the existing 404 token contract.
func (rt *Router) handleStreamSticky(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/stream/")
	routedID, suffix, _ := strings.Cut(rest, "/")
	worker, sid, found := strings.Cut(routedID, sessionIDSep)
	if !found || worker == "" || sid == "" {
		rt.met.lostSessions.Add(1)
		writeRouterError(w, http.StatusNotFound, "not_found", "unknown session "+routedID)
		return
	}
	if _, ok := rt.mem.Member(worker); !ok {
		rt.met.lostSessions.Add(1)
		rt.lostSessionCounter().Inc()
		writeRouterError(w, http.StatusNotFound, "not_found", "session shard lost: "+routedID)
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	path := "/v1/stream/" + sid
	if suffix != "" {
		path += "/" + suffix
	}
	info, _ := rt.mem.Member(worker)
	req, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+info.Addr+path, bytes.NewReader(body))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		// The shard died under the session: suspect it (funnels ring
		// removal through membership) and report the loss with the same
		// token an eviction uses.
		rt.mem.Suspect(worker, err)
		rt.met.lostSessions.Add(1)
		rt.lostSessionCounter().Inc()
		writeRouterError(w, http.StatusNotFound, "not_found", "session shard lost: "+routedID)
		return
	}
	rt.upstreamLat.Observe(time.Since(start))
	rt.relay(w, resp, worker, func(b []byte) []byte {
		return rewriteSessionID(b, func(string) string { return routedID })
	})
}

func (rt *Router) lostSessionCounter() *obs.Counter {
	if rt.cfg.Observe == nil {
		return nil
	}
	return rt.cfg.Observe.Counter("octgb_fabric_lost_sessions_total", "", "Sticky stream requests whose owning shard was gone (404 not_found).")
}

// rewriteSessionID rewrites the "session_id" field of a JSON body through
// fn, leaving every other field's raw bytes untouched. Bodies without the
// field (or non-JSON bodies) pass through unchanged.
func rewriteSessionID(body []byte, fn func(string) string) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	raw, ok := m["session_id"]
	if !ok {
		return body
	}
	var sid string
	if err := json.Unmarshal(raw, &sid); err != nil || sid == "" {
		return body
	}
	out, err := json.Marshal(fn(sid))
	if err != nil {
		return body
	}
	m["session_id"] = out
	b, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return b
}

// RouterStats is the router's GET /stats payload.
type RouterStats struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Workers       []MemberInfo `json:"workers"`

	Ring struct {
		Members int `json:"members"`
		VNodes  int `json:"vnodes"`
	} `json:"ring"`

	Requests struct {
		Forwarded      int64 `json:"forwarded"`
		Retries        int64 `json:"retries"`
		Spills         int64 `json:"spills"`
		HotSpreads     int64 `json:"hot_spreads"`
		NoWorkers      int64 `json:"no_workers"`
		UpstreamFailed int64 `json:"upstream_failed"`
		LostSessions   int64 `json:"lost_sessions"`
	} `json:"requests"`

	Membership struct {
		Joins    int64 `json:"joins"`
		Goodbyes int64 `json:"goodbyes"`
		Failures int64 `json:"failures"`
		Rejects  int64 `json:"rejects"`
	} `json:"membership"`

	Hedge struct {
		Launched int64 `json:"launched"`
		Wins     int64 `json:"wins"`
		Deduped  int64 `json:"deduped"`
		Canceled int64 `json:"canceled"`
		// DelayMS is the delay a hedge launched now would wait — fixed or
		// p95-derived.
		DelayMS float64 `json:"delay_ms"`
	} `json:"hedge"`
}

// Stats returns a point-in-time stats snapshot.
func (rt *Router) Stats() RouterStats {
	var out RouterStats
	out.UptimeSeconds = time.Since(rt.met.start).Seconds()
	out.Workers = rt.mem.Snapshot()
	out.Ring.Members = rt.mem.Ring().Size()
	out.Ring.VNodes = rt.mem.Ring().vnodes
	out.Requests.Forwarded = rt.met.forwarded.Load()
	out.Requests.Retries = rt.met.retries.Load()
	out.Requests.Spills = rt.met.spills.Load()
	out.Requests.HotSpreads = rt.met.hotSpreads.Load()
	out.Requests.NoWorkers = rt.met.noWorkers.Load()
	out.Requests.UpstreamFailed = rt.met.upstreamFailed.Load()
	out.Requests.LostSessions = rt.met.lostSessions.Load()
	out.Membership.Joins, out.Membership.Goodbyes, out.Membership.Failures, out.Membership.Rejects = rt.mem.Counters()
	out.Hedge.Launched = rt.met.hedgesLaunched.Load()
	out.Hedge.Wins = rt.met.hedgeWins.Load()
	out.Hedge.Deduped = rt.met.hedgesDeduped.Load()
	out.Hedge.Canceled = rt.met.hedgesCanceled.Load()
	out.Hedge.DelayMS = float64(rt.hedgeDelay()) / 1e6
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeRouterError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rt.Stats())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.mem.Ring().Size() == 0 {
		writeRouterError(w, http.StatusServiceUnavailable, "no_workers", "no workers registered")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","workers":%d}`+"\n", rt.mem.Ring().Size())
}
