package fabric

import "sync"

// Hot-key tracking knobs: a key seen hotThreshold+ times within the last
// hotWindow routed requests is hot, and hot keys alternate across their
// replica set so R shards warm up instead of one.
const (
	hotWindow    = 1024
	hotThreshold = 8
)

// hotTracker is the router's soft-state popularity sketch: a sliding
// window of the last N routing keys with exact counts. Losing it on a
// router restart costs nothing but a few spreads — it re-learns within
// one window.
type hotTracker struct {
	mu        sync.Mutex
	window    []uint64
	at        int
	filled    bool
	counts    map[uint64]int
	threshold int
}

func newHotTracker(window, threshold int) *hotTracker {
	return &hotTracker{
		window:    make([]uint64, window),
		counts:    make(map[uint64]int, window/4),
		threshold: threshold,
	}
}

// touch records one access and reports whether the key is now hot.
func (t *hotTracker) touch(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		old := t.window[t.at]
		if c := t.counts[old]; c <= 1 {
			delete(t.counts, old)
		} else {
			t.counts[old] = c - 1
		}
	}
	t.window[t.at] = key
	t.at++
	if t.at == len(t.window) {
		t.at = 0
		t.filled = true
	}
	t.counts[key]++
	return t.counts[key] >= t.threshold
}

// plan orders the key's replica set for one request: primary first, then
// failover replicas, adjusted by the cache-aware balancer.
//
//   - Cold key: the primary owns it. If the primary's last load report
//     says it is saturated (every pool slot busy and a queue behind them)
//     and some replica is not, spill to that replica — it will build the
//     entry cold once, and the key's warmth then lives on two shards.
//   - Hot key: alternate the first position across the replica set so all
//     R owners keep the entry resident, which is what makes failover for
//     hot receptors hitless.
//
// The returned slice is freshly allocated; callers may reorder it.
func (rt *Router) plan(key uint64) []string {
	owners := rt.mem.Ring().Owners(key, rt.cfg.Replicas)
	if len(owners) <= 1 {
		return owners
	}
	if rt.hot.touch(key) {
		if i := int(rt.spread.Add(1) % uint64(len(owners))); i != 0 {
			owners[0], owners[i] = owners[i], owners[0]
			rt.met.hotSpreads.Add(1)
			if rt.cfg.Observe != nil {
				rt.cfg.Observe.Counter("octgb_fabric_hot_spreads_total", "", "Hot keys routed to a replica to keep R shards warm.").Inc()
			}
		}
		return owners
	}
	if prim, ok := rt.mem.Member(owners[0]); ok && prim.Load.busy() {
		for j := 1; j < len(owners); j++ {
			rep, ok := rt.mem.Member(owners[j])
			if !ok || rep.Load.busy() {
				continue
			}
			owners[0], owners[j] = owners[j], owners[0]
			rt.met.spills.Add(1)
			if rt.cfg.Observe != nil {
				rt.cfg.Observe.Counter("octgb_fabric_spills_total", "", "Cold keys spilled from a saturated primary to an idle replica.").Inc()
			}
			break
		}
	}
	return owners
}
