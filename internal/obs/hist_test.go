package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0},                         // negative clamps to first bucket
		{0, 0},                          // zero duration is a real event
		{1, 0},                          //
		{1023, 0},                       //
		{1024, 0},                       // == bucketBound(0), inclusive upper bound
		{1025, 1},                       // first value past bucket 0
		{2048, 1},                       // == bucketBound(1)
		{2049, 2},                       //
		{4096, 2},                       // == bucketBound(2)
		{1 << 41, numFiniteBuckets - 1}, // last finite boundary (~37min)
		{1<<41 + 1, numFiniteBuckets},   // beyond finite range → +Inf
		{1 << 62, numFiniteBuckets},     // far beyond → +Inf
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Invariant: every finite index i satisfies
	// bucketBound(i-1) < ns ≤ bucketBound(i).
	for i := 0; i < numFiniteBuckets; i++ {
		b := bucketBound(i)
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(bucketBound(%d)=%d) = %d", i, b, got)
		}
		if i < numFiniteBuckets-1 {
			if got := bucketIndex(b + 1); got != i+1 {
				t.Errorf("bucketIndex(bucketBound(%d)+1) = %d, want %d", i, got, i+1)
			}
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // 1000ns → bucket 0
	h.Observe(3 * time.Microsecond)  // 3000ns → bucket 2 (2048 < 3000 ≤ 4096)
	h.Observe(time.Hour)             // +Inf

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	wantSum := 500*time.Nanosecond + time.Microsecond + 3*time.Microsecond + time.Hour
	if s.Sum != wantSum {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Buckets[0] != 2 || s.Buckets[2] != 1 || s.Buckets[numFiniteBuckets] != 1 {
		t.Fatalf("bucket placement wrong: %v", s.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 lands in the fast bucket,
	// p95/p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond) // bucket for 10_000ns: bound 16384ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond) // bound 16_777_216ns
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != time.Duration(16384) {
		t.Errorf("p50 = %v, want 16.384µs", got)
	}
	if got := s.Quantile(0.95); got != time.Duration(16777216) {
		t.Errorf("p95 = %v, want ~16.78ms", got)
	}
	if got := s.Quantile(0.99); got != time.Duration(16777216) {
		t.Errorf("p99 = %v, want ~16.78ms", got)
	}
	if got := s.Quantile(1.0); got != time.Duration(16777216) {
		t.Errorf("p100 = %v, want ~16.78ms", got)
	}

	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}

	// Observations beyond the finite range clamp to the last finite bound.
	var inf Histogram
	inf.Observe(time.Hour)
	if got := inf.Snapshot().Quantile(0.5); got != time.Duration(bucketBound(numFiniteBuckets-1)) {
		t.Errorf("+Inf quantile = %v, want last finite bound", got)
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if got := h.Snapshot().Mean(); got != 3*time.Millisecond {
		t.Errorf("Mean = %v, want 3ms", got)
	}
	var empty HistSnapshot
	if empty.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	h.ObserveSince(time.Now())
	s := h.Snapshot()
	if s.Count != 0 {
		t.Error("nil histogram snapshot should be empty")
	}
}
