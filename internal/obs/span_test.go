package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(8)
	base := time.Now()
	for i := 0; i < 20; i++ {
		tr.Record("span", 0, i, base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	// The last 8 recorded spans (TIDs 12..19), oldest first.
	for i, sp := range spans {
		if sp.TID != 12+i {
			t.Errorf("spans[%d].TID = %d, want %d", i, sp.TID, 12+i)
		}
	}
	// IDs are monotone within the retained window.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Errorf("span IDs not monotone: %d then %d", spans[i-1].ID, spans[i].ID)
		}
	}
}

func TestTracerUnderCapacity(t *testing.T) {
	tr := NewTracer(16)
	tr.Record("a", 0, 1, time.Now(), time.Millisecond)
	tr.Record("b", 0, 2, time.Now(), time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("unexpected spans: %+v", spans)
	}
}

func TestLiveSpanParenting(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Begin("root", 0, 0)
	child := tr.Begin("child", root.ID(), 0)
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// child recorded first (ended first), root second.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child.Parent = %d, want root ID %d", spans[0].Parent, spans[1].ID)
	}
}

func TestWriteTraceJSON(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Begin("serve.energy", 0, 3)
	tr.Record("engine.born", root.ID(), 3, time.Now(), 2*time.Millisecond)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TID != 3 {
			t.Errorf("event %q tid = %d, want 3", ev.Name, ev.TID)
		}
		if ev.Args["id"] == nil {
			t.Errorf("event %q missing args.id", ev.Name)
		}
	}
	// engine.born carries its parent reference.
	if doc.TraceEvents[0].Name != "engine.born" || doc.TraceEvents[0].Args["parent"] == nil {
		t.Errorf("child event missing parent arg: %+v", doc.TraceEvents[0])
	}
}

func TestNilTracerAndObserverSafe(t *testing.T) {
	var tr *Tracer
	if tr.NextID() != 0 {
		t.Error("nil tracer NextID should be 0")
	}
	tr.Record("x", 0, 0, time.Now(), time.Second)
	l := tr.Begin("x", 0, 0)
	if l.ID() != 0 {
		t.Error("nil live span ID should be 0")
	}
	l.End() // no panic
	if tr.Spans() != nil {
		t.Error("nil tracer Spans should be nil")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var o *Observer
	if o.Histogram("x", "", "") != nil {
		t.Error("nil observer Histogram should be nil")
	}
	if o.Counter("x", "", "") != nil {
		t.Error("nil observer Counter should be nil")
	}
	o.Begin("x", 0, 0).End()
	if o.Record("x", 0, 0, time.Now(), time.Second) != 0 {
		t.Error("nil observer Record should be 0")
	}
	if o.NextID() != 0 {
		t.Error("nil observer NextID should be 0")
	}
}
