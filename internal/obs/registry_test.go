package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistryPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("octgb_test_seconds", `phase="born"`, "test latency")
	h.Observe(3 * time.Microsecond) // bucket 2, bound 4096ns
	c := r.Counter("octgb_test_total", "", "test counter")
	c.Add(7)
	r.GaugeFunc("octgb_test_gauge", `kind="q"`, "test gauge", func() float64 { return 2.5 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP octgb_test_seconds test latency\n",
		"# TYPE octgb_test_seconds histogram\n",
		`octgb_test_seconds_bucket{phase="born",le="1.024e-06"} 0` + "\n",
		`octgb_test_seconds_bucket{phase="born",le="4.096e-06"} 1` + "\n",
		`octgb_test_seconds_bucket{phase="born",le="+Inf"} 1` + "\n",
		`octgb_test_seconds_sum{phase="born"} 3e-06` + "\n",
		`octgb_test_seconds_count{phase="born"} 1` + "\n",
		"# TYPE octgb_test_total counter\n",
		"octgb_test_total 7\n",
		"# TYPE octgb_test_gauge gauge\n",
		`octgb_test_gauge{kind="q"} 2.5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q\ngot:\n%s", want, out)
		}
	}

	// Buckets are cumulative: each le line's value must be ≥ the previous.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "octgb_test_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscan(line[strings.LastIndex(line, " ")+1:], &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}

	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own rendering fails validation: %v", err)
	}
}

// fmtSscan is a tiny strconv wrapper so the cumulative check stays local.
func fmtSscan(s string, v *int64) (int, error) {
	var err error
	*v, err = parseInt(s)
	return 1, err
}

func parseInt(s string) (int64, error) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotDigit
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

var errNotDigit = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "not a digit" }

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("octgb_x_seconds", `k="1"`, "h")
	b := r.Histogram("octgb_x_seconds", `k="1"`, "h")
	if a != b {
		t.Error("same (name,labels) should return the same histogram")
	}
	c := r.Histogram("octgb_x_seconds", `k="2"`, "h")
	if a == c {
		t.Error("different labels should return a different histogram")
	}
	c1 := r.Counter("octgb_y_total", "", "c")
	c1.Inc()
	if r.Counter("octgb_y_total", "", "c").Value() != 1 {
		t.Error("counter identity not preserved")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("octgb_z", "", "c")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on re-registering counter as histogram")
		}
	}()
	r.Histogram("octgb_z", "", "h")
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("octgb_req_total", "", "requests").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "octgb_req_total 1") {
		t.Errorf("handler body missing counter:\n%s", rec.Body.String())
	}
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value should be 0")
	}
	var real Counter
	real.Add(-3) // negative ignored
	if real.Value() != 0 {
		t.Error("negative Add should be ignored")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []string{
		"2bad_name 1\n",                            // name starts with digit
		"ok_name\n",                                // missing value
		"ok_name notanumber\n",                     // bad value
		`ok_name{l="v} 1` + "\n",                   // unterminated label value
		`ok_name{l=v} 1` + "\n",                    // unquoted label value
		`ok_name{="v"} 1` + "\n",                   // empty label name
		"# TYPE x flavor\n",                        // unknown type
		"# TYPE h histogram\nh_sum 1\nh_count 1\n", // histogram missing +Inf bucket
	}
	for _, in := range bad {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("expected rejection of %q", in)
		}
	}
	good := "# HELP m help text\n# TYPE m counter\nm{a=\"x\\\"y\",b=\"z\"} 1.5 1700000000\n\nplain_metric +Inf\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}
