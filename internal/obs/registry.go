package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// valid and its methods are no-ops.
type Counter struct {
	name, labels, help string
	v                  atomic.Int64
}

// Add increments the counter by n (negative n is ignored — counters only
// go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// gauge is a registered callback gauge: sampled at render time, so queue
// depths and cache occupancy need no write-path instrumentation.
type gauge struct {
	name, labels, help string
	f                  func() float64
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric identity is (name, labels): Histogram/Counter
// return the existing metric when called again with the same identity, so
// instrumented code can look metrics up at use sites without caching
// handles. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	order  []string // family (base name) first-registration order
	hists  map[string]*Histogram
	counts map[string]*Counter
	gauges map[string]*gauge
	help   map[string]string // family → help (first registration wins)
	typ    map[string]string // family → prometheus type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  make(map[string]*Histogram),
		counts: make(map[string]*Counter),
		gauges: make(map[string]*gauge),
		help:   make(map[string]string),
		typ:    make(map[string]string),
	}
}

// metricKey identifies one series inside a family.
func metricKey(name, labels string) string { return name + "{" + labels + "}" }

// registerFamily records the family's help/type on first sight and fails
// loudly on a name registered twice with different types (a programming
// error that would render invalid exposition).
func (r *Registry) registerFamily(name, help, promType string) {
	if t, ok := r.typ[name]; ok {
		if t != promType {
			panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, t, promType))
		}
		return
	}
	r.typ[name] = promType
	r.help[name] = help
	r.order = append(r.order, name)
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. name should end in _seconds (durations are rendered in seconds);
// labels is a raw Prometheus label list without braces (`phase="born"`),
// empty for none.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if h, ok := r.hists[key]; ok {
		return h
	}
	r.registerFamily(name, help, "histogram")
	h := &Histogram{name: name, labels: labels, help: help}
	r.hists[key] = h
	return h
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if c, ok := r.counts[key]; ok {
		return c
	}
	r.registerFamily(name, help, "counter")
	c := &Counter{name: name, labels: labels, help: help}
	r.counts[key] = c
	return c
}

// GaugeFunc registers a callback gauge sampled at render time. Re-registering
// the same (name, labels) replaces the callback.
func (r *Registry) GaugeFunc(name, labels, help string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if _, ok := r.gauges[key]; !ok {
		r.registerFamily(name, help, "gauge")
	}
	r.gauges[key] = &gauge{name: name, labels: labels, help: help, f: f}
}

// spliceLabels joins a metric's static labels with an extra label (the
// histogram le) into one brace block.
func spliceLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// formatSeconds renders a nanosecond quantity as seconds with full float64
// round-trip precision.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per family
// followed by all of its series, families in first-registration order,
// series within a family sorted by label set for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	families := make(map[string][]func(bw *bufio.Writer))
	collect := func(name string, f func(bw *bufio.Writer)) {
		families[name] = append(families[name], f)
	}
	// Snapshot series lists under the lock; values are read at write time
	// (atomics / callbacks, both safe without the registry lock).
	type histEntry struct {
		key string
		h   *Histogram
	}
	var hists []histEntry
	for k, h := range r.hists {
		hists = append(hists, histEntry{k, h})
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].key < hists[j].key })
	for _, e := range hists {
		h := e.h
		collect(h.name, func(bw *bufio.Writer) { writeHistogram(bw, h) })
	}
	type countEntry struct {
		key string
		c   *Counter
	}
	var counts []countEntry
	for k, c := range r.counts {
		counts = append(counts, countEntry{k, c})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].key < counts[j].key })
	for _, e := range counts {
		c := e.c
		collect(c.name, func(bw *bufio.Writer) {
			fmt.Fprintf(bw, "%s%s %d\n", c.name, spliceLabels(c.labels, ""), c.v.Load())
		})
	}
	type gaugeEntry struct {
		key string
		g   *gauge
	}
	var gauges []gaugeEntry
	for k, g := range r.gauges {
		gauges = append(gauges, gaugeEntry{k, g})
	}
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].key < gauges[j].key })
	for _, e := range gauges {
		g := e.g
		collect(g.name, func(bw *bufio.Writer) {
			fmt.Fprintf(bw, "%s%s %s\n", g.name, spliceLabels(g.labels, ""),
				strconv.FormatFloat(g.f(), 'g', -1, 64))
		})
	}
	help := make(map[string]string, len(r.help))
	typ := make(map[string]string, len(r.typ))
	for k, v := range r.help {
		help[k] = v
	}
	for k, v := range r.typ {
		typ[k] = v
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, fam := range order {
		if h := help[fam]; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam, sanitizeHelp(h))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typ[fam])
		for _, f := range families[fam] {
			f(bw)
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative le buckets, sum
// in seconds, count.
func writeHistogram(bw *bufio.Writer, h *Histogram) {
	s := h.Snapshot()
	var cum uint64
	for i := 0; i < numFiniteBuckets; i++ {
		cum += s.Buckets[i]
		le := `le="` + formatSeconds(bucketBound(i)) + `"`
		fmt.Fprintf(bw, "%s_bucket%s %d\n", h.name, spliceLabels(h.labels, le), cum)
	}
	cum += s.Buckets[numFiniteBuckets]
	fmt.Fprintf(bw, "%s_bucket%s %d\n", h.name, spliceLabels(h.labels, `le="+Inf"`), cum)
	fmt.Fprintf(bw, "%s_sum%s %s\n", h.name, spliceLabels(h.labels, ""), formatSeconds(int64(s.Sum)))
	fmt.Fprintf(bw, "%s_count%s %d\n", h.name, spliceLabels(h.labels, ""), s.Count)
}

// sanitizeHelp keeps help text single-line per the exposition format.
func sanitizeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ---------------------------------------------------------------------------
// Exposition validation (the obs-smoke gate)
// ---------------------------------------------------------------------------

// ValidateExposition checks that r is well-formed Prometheus text format:
// every line is a comment (# HELP name text / # TYPE name type / plain #)
// or a sample `name{label="value",...} value [timestamp]` with a legal
// metric name, parseable labels and a parseable float value — and every
// family declared `# TYPE x histogram` carries its le="+Inf" bucket, _sum
// and _count series. Returns the first malformed line as an error.
// make obs-smoke scrapes a live epolserve /metrics through this.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	histFamilies := map[string]bool{}
	seenInf := map[string]bool{}
	seenSum := map[string]bool{}
	seenCount := map[string]bool{}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, histFamilies); err != nil {
				return fmt.Errorf("line %d: %w: %q", lineNo, err, line)
			}
			continue
		}
		name, err := validateSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w: %q", lineNo, err, line)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && strings.Contains(line, `le="+Inf"`):
			seenInf[strings.TrimSuffix(name, "_bucket")] = true
		case strings.HasSuffix(name, "_sum"):
			seenSum[strings.TrimSuffix(name, "_sum")] = true
		case strings.HasSuffix(name, "_count"):
			seenCount[strings.TrimSuffix(name, "_count")] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam := range histFamilies {
		if !seenInf[fam] || !seenSum[fam] || !seenCount[fam] {
			return fmt.Errorf("histogram family %q missing +Inf bucket, _sum or _count", fam)
		}
	}
	return nil
}

func validateComment(line string, histFamilies map[string]bool) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP")
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE")
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if fields[3] == "histogram" {
			histFamilies[fields[2]] = true
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validateSample parses one sample line and returns the metric name.
func validateSample(line string) (string, error) {
	// Metric name.
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", fmt.Errorf("invalid metric name")
	}
	rest := line[i:]
	// Optional label block.
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", fmt.Errorf("unterminated label block")
		}
		if err := validateLabels(rest[1:end]); err != nil {
			return "", err
		}
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", fmt.Errorf("missing space before value")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("expected value [timestamp]")
	}
	if err := validateValue(fields[0]); err != nil {
		return "", err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("invalid timestamp")
		}
	}
	return name, nil
}

func validateValue(s string) error {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("invalid value")
	}
	if math.IsInf(v, 0) && !strings.Contains(s, "Inf") {
		return fmt.Errorf("invalid value")
	}
	return nil
}

func validateLabels(s string) error {
	// label="value" pairs, comma separated, values with \" \\ \n escapes.
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 || !validMetricName(strings.TrimSuffix(s[:eq], " ")) {
			return fmt.Errorf("invalid label name")
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted label value")
		}
		s = s[1:]
		for {
			j := strings.IndexAny(s, `"\`)
			if j < 0 {
				return fmt.Errorf("unterminated label value")
			}
			if s[j] == '\\' {
				if j+1 >= len(s) {
					return fmt.Errorf("dangling escape")
				}
				s = s[j+2:]
				continue
			}
			s = s[j+1:]
			break
		}
		if s == "" {
			return nil
		}
		if !strings.HasPrefix(s, ",") {
			return fmt.Errorf("expected comma between labels")
		}
		s = s[1:]
	}
	return nil
}
