package obs

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistogramSnapshotConsistencyUnderStorm pins the snapshot contract the
// serve auto-tuner depends on: a snapshot cut while writers are mid-storm
// must be internally consistent — Count equals the sum of the buckets, the
// cumulative le series is monotone, and quantiles are monotone in q and
// never exceed the largest finite bound. Before Snapshot derived Count from
// the buckets this only held on quiet histograms; run with -race.
func TestHistogramSnapshotConsistencyUnderStorm(t *testing.T) {
	h := &Histogram{}
	const writers = 8
	var stop atomic.Bool
	var wrote atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				// Spread observations across the full finite range plus +Inf.
				ns := int64(1) << uint(rng.Intn(numFiniteBuckets+14))
				h.Observe(time.Duration(ns))
				wrote.Add(1)
			}
		}(int64(w + 1))
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		s := h.Snapshot()
		snaps++
		var sum uint64
		for _, b := range s.Buckets {
			sum += b
		}
		if s.Count != sum {
			t.Fatalf("snapshot %d: Count %d != bucket sum %d", snaps, s.Count, sum)
		}
		// Quantiles must be monotone in q and bounded by the finite range.
		prev := time.Duration(0)
		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("snapshot %d: Quantile(%g)=%v < previous %v", snaps, q, v, prev)
			}
			if v > time.Duration(bucketBound(numFiniteBuckets-1)) {
				t.Fatalf("snapshot %d: Quantile(%g)=%v beyond the finite range", snaps, q, v)
			}
			prev = v
		}
		if s.Count > 0 && s.Quantile(0.5) == 0 {
			t.Fatalf("snapshot %d: count %d but p50 = 0", snaps, s.Count)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced, the snapshot must account for every observation exactly.
	final := h.Snapshot()
	if final.Count != wrote.Load() {
		t.Fatalf("final count %d != observations written %d", final.Count, wrote.Load())
	}
	t.Logf("validated %d mid-storm snapshots over %d observations", snaps, final.Count)
}

// TestHistogramExpositionUnderStorm renders a registry mid-storm through
// the library's own exposition validator: the cumulative buckets, _sum and
// _count lines of a histogram being written concurrently must still form a
// well-formed scrape (the le series monotone because Snapshot is
// internally consistent).
func TestHistogramExpositionUnderStorm(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("octgb_test_storm_seconds", `src="storm"`, "storm test")
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
			}
		}(int64(w + 100))
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidateExposition(&buf); err != nil {
			t.Fatalf("render %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestHistSnapshotSubAdd pins the window-diff algebra: Sub of two ordered
// snapshots is exactly the observations in between, Add merges bucket-wise,
// and both preserve the Count == sum-of-Buckets invariant.
func TestHistSnapshotSubAdd(t *testing.T) {
	h := &Histogram{}
	h.Observe(2 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	before := h.Snapshot()
	h.Observe(5 * time.Millisecond)
	h.Observe(7 * time.Second)
	h.Observe(3 * time.Microsecond)
	after := h.Snapshot()

	win := after.Sub(before)
	if win.Count != 3 {
		t.Fatalf("window count = %d, want 3", win.Count)
	}
	if want := 5*time.Millisecond + 7*time.Second + 3*time.Microsecond; win.Sum != want {
		t.Fatalf("window sum = %v, want %v", win.Sum, want)
	}
	var sum uint64
	for _, b := range win.Buckets {
		sum += b
	}
	if win.Count != sum {
		t.Fatalf("window count %d != bucket sum %d", win.Count, sum)
	}

	// Sub saturates instead of wrapping when handed out-of-order snapshots.
	rev := before.Sub(after)
	if rev.Count != 0 || rev.Sum != 0 {
		t.Fatalf("reversed Sub = %+v, want zero", rev)
	}

	merged := before.Sub(HistSnapshot{}).Add(win)
	if merged.Count != after.Count || merged.Sum != after.Sum {
		t.Fatalf("before+window = count %d sum %v, want count %d sum %v",
			merged.Count, merged.Sum, after.Count, after.Sum)
	}

	var g *Histogram
	if s := g.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
}
