// Package obs is the zero-dependency observability layer of the library:
// the instrumentation substrate that makes the paper's central claim — the
// breakdown of runtime into Born-radius treecode, E_pol treecode and
// communication across ranks and cores — visible on a live deployment
// instead of only in ad-hoc bench binaries.
//
// It provides three primitives, all safe for concurrent use:
//
//   - Histogram: a lock-free fixed-bucket latency histogram (power-of-two
//     bucket boundaries, atomic counters). p50/p95/p99 are derivable from a
//     Snapshot, and the Registry renders it in Prometheus exposition
//     format with cumulative le buckets.
//   - Tracer: lightweight begin/end span recording against a monotonic
//     clock, with parent IDs and an in-memory ring buffer dumpable as
//     Chrome trace_event JSON (load the dump in chrome://tracing or
//     https://ui.perfetto.dev).
//   - Registry: a named-metric registry (counters, gauges, histograms)
//     that renders the Prometheus text format on GET /metrics.
//
// An Observer bundles one Registry and one Tracer and is the handle the
// instrumented layers share: engine.Options.Observe, cluster.WithObserver
// and serve.Config.Observe all accept/construct one. Every method of
// Observer, Histogram, Counter and Tracer is nil-receiver safe and a
// no-op, so instrumented code paths need no conditionals and the
// observability-off path costs a nil check — no allocations, no atomics,
// bitwise-identical numerical results (pinned by the engine golden tests).
//
// Metric name inventory (see DESIGN.md §10 for the full table):
//
//	octgb_engine_phase_seconds{phase,rank}        engine phase latency
//	octgb_sched_{executed,steals,failed_steals,parks}_total
//	octgb_cluster_collective_seconds{kind,rank}   per-collective latency
//	octgb_cluster_collective_bytes_total{kind,rank}
//	octgb_cluster_heartbeat_gap_seconds{peer}     liveness signal spacing
//	octgb_cluster_degradations_total              Topo→Star fallbacks
//	octgb_serve_request_seconds{endpoint}         end-to-end request latency
//	octgb_serve_queue_wait_seconds                admission queue wait
//	octgb_serve_stage_seconds{stage}              surface/prepare/eval stages
package obs

import "time"

// DefaultTraceCapacity is the span ring-buffer size an Observer's Tracer is
// created with: large enough to hold several complete request traces, small
// enough (~64 B/span) to be always-on.
const DefaultTraceCapacity = 4096

// Observer bundles a metric Registry and a span Tracer — the handle the
// instrumented layers (engine, cluster, serve, the daemons) share. A nil
// *Observer is valid and turns every method into a no-op, which is how the
// observability-off path stays free: callers hold a nil Observer instead of
// branching at every site.
type Observer struct {
	// Reg is the metric registry rendered on GET /metrics.
	Reg *Registry
	// Trace is the span ring buffer dumped on GET /debug/trace.
	Trace *Tracer
}

// New returns an Observer with a fresh Registry and a Tracer of
// DefaultTraceCapacity.
func New() *Observer {
	return &Observer{Reg: NewRegistry(), Trace: NewTracer(DefaultTraceCapacity)}
}

// Histogram returns the named histogram from the registry, creating it on
// first use. Returns nil (whose Observe is a no-op) on a nil Observer.
func (o *Observer) Histogram(name, labels, help string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name, labels, help)
}

// Counter returns the named counter from the registry, creating it on first
// use. Returns nil (whose Add/Inc are no-ops) on a nil Observer.
func (o *Observer) Counter(name, labels, help string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name, labels, help)
}

// Begin opens a live span (ended by (*Live).End). Returns nil on a nil
// Observer; a nil *Live is safe to End and has ID 0.
func (o *Observer) Begin(name string, parent uint64, tid int) *Live {
	if o == nil {
		return nil
	}
	return o.Trace.Begin(name, parent, tid)
}

// Record stores an already-measured span (retroactive recording — the
// instrumented phase loops of the engine measure with their own lap clocks
// and hand the result over). Returns the span's ID, or 0 on a nil Observer.
func (o *Observer) Record(name string, parent uint64, tid int, start time.Time, d time.Duration) uint64 {
	if o == nil {
		return 0
	}
	return o.Trace.Record(name, parent, tid, start, d)
}

// NextID mints a span ID without recording anything — used to name a root
// span up front so children can reference it before the root's duration is
// known. Returns 0 on a nil Observer.
func (o *Observer) NextID() uint64 {
	if o == nil {
		return 0
	}
	return o.Trace.NextID()
}
