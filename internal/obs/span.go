package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed trace interval. Times are offsets from the
// tracer's epoch, taken from Go's monotonic clock (time.Time carries a
// monotonic reading; Sub of two of them is immune to wall-clock steps).
type Span struct {
	// ID is unique within the tracer (monotonically minted, never 0).
	ID uint64
	// Parent is the enclosing span's ID (0 = root).
	Parent uint64
	// Name identifies the operation ("engine.born", "serve.energy", …).
	Name string
	// TID is the logical thread/track the span renders on in a trace
	// viewer — the instrumented layers use the rank or worker index.
	TID int
	// Start is the offset from the tracer epoch.
	Start time.Duration
	// Dur is the span length.
	Dur time.Duration
}

// Tracer records spans into a fixed-capacity in-memory ring buffer: the
// last capacity completed spans are retained, older ones are overwritten.
// Recording takes a short mutex-guarded critical section (one slot write);
// spans are recorded at phase/request granularity, not inside numeric
// kernels, so contention is negligible. A nil *Tracer is valid and records
// nothing.
type Tracer struct {
	epoch time.Time
	seq   atomic.Uint64 // span ID mint

	mu   sync.Mutex
	ring []Span
	n    uint64 // spans ever recorded; ring slot = (n-1) % cap
}

// NewTracer returns a tracer retaining the last capacity spans
// (capacity ≤ 0 selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, capacity)}
}

// NextID mints a fresh span ID (never 0) without recording.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Add(1)
}

// Record stores a completed span measured by the caller and returns its ID.
func (t *Tracer) Record(name string, parent uint64, tid int, start time.Time, d time.Duration) uint64 {
	if t == nil {
		return 0
	}
	id := t.seq.Add(1)
	t.RecordID(id, name, parent, tid, start, d)
	return id
}

// RecordID stores a completed span under a pre-minted ID (NextID) — how a
// root span is written after its children, which referenced the ID while
// the root was still open.
func (t *Tracer) RecordID(id uint64, name string, parent uint64, tid int, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	sp := Span{ID: id, Parent: parent, Name: name, TID: tid, Start: start.Sub(t.epoch), Dur: d}
	t.mu.Lock()
	t.ring[t.n%uint64(len(t.ring))] = sp
	t.n++
	t.mu.Unlock()
}

// Live is an open span begun with Begin; End completes and records it. A
// nil *Live (from a nil Tracer/Observer) is safe to use: ID is 0 and End
// does nothing.
type Live struct {
	t      *Tracer
	id     uint64
	parent uint64
	tid    int
	name   string
	start  time.Time
}

// Begin opens a span now; it is recorded when End is called.
func (t *Tracer) Begin(name string, parent uint64, tid int) *Live {
	if t == nil {
		return nil
	}
	return &Live{t: t, id: t.seq.Add(1), parent: parent, tid: tid, name: name, start: time.Now()}
}

// ID returns the open span's ID (0 on nil), usable as a child's parent.
func (l *Live) ID() uint64 {
	if l == nil {
		return 0
	}
	return l.id
}

// End completes the span and records it.
func (l *Live) End() {
	if l == nil {
		return
	}
	l.t.RecordID(l.id, l.name, l.parent, l.tid, l.start, time.Since(l.start))
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	capn := uint64(len(t.ring))
	count := t.n
	if count > capn {
		count = capn
	}
	out := make([]Span, 0, count)
	start := t.n - count
	for i := uint64(0); i < count; i++ {
		out = append(out, t.ring[(start+i)%capn])
	}
	return out
}

// traceEvent is one Chrome trace_event object ("X" = complete event; ts and
// dur are microseconds). The parent span ID travels in args.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace dumps the retained spans as Chrome trace_event JSON (the
// {"traceEvents": [...]} form). Save it to a file and load it in
// chrome://tracing or https://ui.perfetto.dev to see the per-rank /
// per-request phase breakdown on a timeline.
func (t *Tracer) WriteTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]traceEvent, 0, len(spans))
	for _, sp := range spans {
		ev := traceEvent{
			Name: sp.Name,
			Ph:   "X",
			TS:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  sp.TID,
			Args: map[string]any{"id": sp.ID},
		}
		if sp.Parent != 0 {
			ev.Args["parent"] = sp.Parent
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
