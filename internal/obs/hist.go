package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numFiniteBuckets is the number of finite histogram buckets. Boundaries
// are powers of two in nanoseconds starting at 1.024µs: bucket i covers
// (2^(9+i), 2^(10+i)] ns, so the finite range spans 1.024µs … ~37min —
// wide enough for a near-field kernel slice at the bottom and a full
// cluster run at the top. Everything beyond the last finite boundary lands
// in the +Inf bucket.
const numFiniteBuckets = 32

// bucketBound returns the inclusive upper boundary of finite bucket i in
// nanoseconds.
func bucketBound(i int) int64 { return 1 << (10 + uint(i)) }

// bucketIndex maps a duration in nanoseconds onto its bucket: the smallest
// i with ns ≤ bucketBound(i), or numFiniteBuckets for the +Inf bucket.
// Non-positive observations count into bucket 0 (a zero-duration event is
// a real event; clocks can also stall).
func bucketIndex(ns int64) int {
	if ns <= 1<<10 {
		return 0
	}
	idx := bits.Len64(uint64(ns-1)) - 10
	if idx > numFiniteBuckets {
		return numFiniteBuckets
	}
	return idx
}

// Histogram is a lock-free fixed-bucket latency histogram: Observe is a
// bucket lookup (one Len64) plus two atomic adds, with no locks and no
// allocation, so it can sit on paths that run thousands of times per
// second. The bucket layout is fixed at compile time (see bucketBound), so
// two histograms are always mergeable and the Prometheus rendering needs
// no per-instance boundary bookkeeping.
//
// The total observation count is not stored separately: Snapshot derives
// it from the buckets, so a snapshot's Count always equals the sum of its
// Buckets even when it is cut mid-storm under concurrent writers (pinned
// by TestHistogramSnapshotConsistencyUnderStorm).
//
// A nil *Histogram is valid: Observe and ObserveSince are no-ops, which is
// what makes instrumented call sites unconditional.
type Histogram struct {
	name, labels, help string

	sumNS   atomic.Int64
	buckets [numFiniteBuckets + 1]atomic.Uint64 // per-bucket (not cumulative); last is +Inf
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(d.Nanoseconds())].Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// ObserveSince records time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// HistSnapshot is a point-in-time copy of a histogram. Under concurrent
// Observe the copy is not a single atomic cut — it may miss the handful of
// observations in flight — but it is always internally consistent: Count
// equals the sum of Buckets (Snapshot derives it), so the cumulative le
// series renders monotone and quantile ranks never point past the buckets.
// Only Sum can be off by in-flight observations, which is the standard
// (and accepted) behavior of scrape-based metrics.
type HistSnapshot struct {
	// Count is the total number of observations (always == sum of Buckets).
	Count uint64
	// Sum is the sum of all observed durations.
	Sum time.Duration
	// Buckets[i] is the number of observations in finite bucket i
	// (boundaries per bucketBound); Buckets[numFiniteBuckets] is +Inf.
	Buckets [numFiniteBuckets + 1]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = time.Duration(h.sumNS.Load())
	for i := range h.buckets {
		b := h.buckets[i].Load()
		s.Buckets[i] = b
		s.Count += b
	}
	return s
}

// Sub returns the observations recorded between prev and s — the window
// diff a control loop feeds on (serve's auto-tuner samples its latency
// histograms every interval and tunes on the delta, not the lifetime
// distribution). Both snapshots must come from the same histogram with
// prev taken first; buckets subtract saturating at zero so a racy pair
// still yields a well-formed (if slightly off) window. Count is re-derived
// from the subtracted buckets, preserving the Count == sum-of-Buckets
// invariant.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for i := range s.Buckets {
		if s.Buckets[i] > prev.Buckets[i] {
			out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		}
		out.Count += out.Buckets[i]
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	return out
}

// Add merges two snapshots bucket-wise — valid for any pair because the
// bucket layout is fixed at compile time. Used to pool per-endpoint
// latency series into one distribution (e.g. the tuner's view of all
// admitted requests).
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
		out.Count += out.Buckets[i]
	}
	out.Sum = s.Sum + o.Sum
	return out
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) of the
// recorded distribution: the upper boundary of the bucket containing the
// ⌈q·count⌉-th observation. Resolution is the bucket width (a factor of 2);
// observations beyond the finite range report the largest finite boundary.
// Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i >= numFiniteBuckets {
				return time.Duration(bucketBound(numFiniteBuckets - 1))
			}
			return time.Duration(bucketBound(i))
		}
	}
	return time.Duration(bucketBound(numFiniteBuckets - 1))
}

// Mean returns the mean observed duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
