// Package clusterchaos is the deterministic fault-injection harness for
// the distributed engines: it runs OCT_MPI parity experiments under every
// fault class of cluster.FaultPlan, on both the in-process transport and
// the TCP mesh, and states the acceptance rule of the failure model as
// code (Check):
//
//   - Absorbable faults (delay, duplicate, corrupt, truncate) must be
//     invisible: every rank completes and the energy matches the
//     fault-free baseline to 1e-12 — the chaos protocol's CRC32C catches
//     the damaged frames and the deterministic retransmit replaces them.
//   - Non-absorbable faults (crash, drop) must fail cleanly: at least one
//     rank returns cluster.ErrRankFailed, the first failure surfaces
//     within twice the receive timeout, no rank hangs, and no goroutines
//     leak (the callers assert the last property with
//     testutil.WaitGoroutines).
//
// Everything is seeded: the same (P, seed, kind, transport) tuple produces
// the same fault schedule and therefore the same run, which is what makes
// a chaos failure reproducible instead of anecdotal.
package clusterchaos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"octgb/internal/cluster"
	"octgb/internal/engine"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// Transport selects the substrate under test.
type Transport int

const (
	// Local runs the ranks as goroutines over the in-process mailbox grid.
	Local Transport = iota
	// TCPMesh runs the ranks over a loopback TCP mesh (WithMesh).
	TCPMesh
)

func (tr Transport) String() string {
	if tr == TCPMesh {
		return "tcpmesh"
	}
	return "local"
}

// Config is one chaos experiment.
type Config struct {
	P         int
	Seed      int64
	Kind      cluster.FaultKind
	Transport Transport
	// Timeout is the receive timeout (FaultPlan.Timeout) for the faulty
	// run; non-absorbable classes need it to convert silence into
	// ErrRankFailed.
	Timeout time.Duration
	// Atoms sizes the synthetic molecule (0 = 300, small enough that the
	// experiment is communication-dominated).
	Atoms int
}

func (c Config) String() string {
	return fmt.Sprintf("%s/P=%d/%s/seed=%d", c.Transport, c.P, c.Kind, c.Seed)
}

// RankOutcome is one rank's result: its energy on success, its error and
// the time from run start to its return otherwise.
type RankOutcome struct {
	Energy  float64
	Err     error
	Elapsed time.Duration
}

// Result is the outcome of one experiment.
type Result struct {
	Baseline float64       // fault-free energy (identical code path: chaos-wrapped, empty plan)
	Outcomes []RankOutcome // by rank, from the faulty run
	Elapsed  time.Duration // wall time of the faulty run (slowest rank)
}

// NewPlan derives the deterministic fault schedule for a configuration.
// Frame indices are kept small (every rank executes at least ~2 pairwise
// operations per collective, and the engine runs several collectives), so
// each scheduled fault actually fires during the run.
func NewPlan(cfg Config) *cluster.FaultPlan {
	rng := rand.New(rand.NewSource(cfg.Seed<<16 ^ int64(cfg.P)<<8 ^ int64(cfg.Kind)))
	plan := &cluster.FaultPlan{Timeout: cfg.Timeout}
	switch cfg.Kind {
	case cluster.FaultCrash:
		plan.Faults = append(plan.Faults, cluster.Fault{
			Kind: cluster.FaultCrash, Rank: rng.Intn(cfg.P), Frame: rng.Intn(4),
		})
	case cluster.FaultDrop:
		// Sever a ring link: the allgatherv ring and the dissemination
		// barrier exercise (r±1) mod P at every P, so the dropped link is
		// guaranteed to carry traffic. An arbitrary pair can be one the
		// collective schedule never touches at this P (e.g. ranks 0 and 3
		// at P=8), which would make the drop a silent no-op.
		r := rng.Intn(cfg.P)
		p := (r + 1) % cfg.P
		if rng.Intn(2) == 1 {
			p = (r + cfg.P - 1) % cfg.P
		}
		plan.Faults = append(plan.Faults, cluster.Fault{
			Kind: cluster.FaultDrop, Rank: r, Frame: rng.Intn(4), Peer: p,
		})
	default: // absorbable: several injections spread across ranks and frames
		for i, n := 0, 2+rng.Intn(3); i < n; i++ {
			f := cluster.Fault{Kind: cfg.Kind, Rank: rng.Intn(cfg.P), Frame: rng.Intn(2*cfg.P + 6)}
			if cfg.Kind == cluster.FaultDelay {
				f.Delay = time.Duration(1+rng.Intn(5)) * time.Millisecond
			}
			plan.Faults = append(plan.Faults, f)
		}
	}
	return plan
}

// Run executes the experiment: a fault-free baseline first (chaos-wrapped
// with an empty plan, so both runs take the identical code path), then the
// faulty run under NewPlan(cfg). A baseline failure is an error of the
// harness itself, not a finding.
func Run(cfg Config) (*Result, error) {
	if cfg.P < 2 {
		return nil, fmt.Errorf("clusterchaos: need P ≥ 2, got %d", cfg.P)
	}
	atoms := cfg.Atoms
	if atoms <= 0 {
		atoms = 300
	}
	pr := engine.NewProblem(molecule.GenerateProtein(fmt.Sprintf("chaos_%d", atoms), atoms, 42), surface.Default())

	baseline, err := baselineEnergy(cfg, pr, atoms)
	if err != nil {
		return nil, err
	}
	res, err := runOnce(cfg, pr, NewPlan(cfg))
	if err != nil {
		return nil, err
	}
	res.Baseline = baseline
	return res, nil
}

// baselineCache memoizes fault-free energies per (transport, P, atoms):
// the baseline is deterministic (Topo collectives are bitwise-reproducible
// for a fixed P), so a seed sweep pays for it once.
var baselineCache sync.Map

func baselineEnergy(cfg Config, pr *engine.Problem, atoms int) (float64, error) {
	key := fmt.Sprintf("%s/%d/%d", cfg.Transport, cfg.P, atoms)
	if v, ok := baselineCache.Load(key); ok {
		return v.(float64), nil
	}
	base, err := runOnce(cfg, pr, &cluster.FaultPlan{Timeout: cfg.Timeout})
	if err != nil {
		return 0, fmt.Errorf("clusterchaos: baseline: %w", err)
	}
	for r, o := range base.Outcomes {
		if o.Err != nil {
			return 0, fmt.Errorf("clusterchaos: baseline rank %d failed: %w", r, o.Err)
		}
	}
	baselineCache.Store(key, base.Outcomes[0].Energy)
	return base.Outcomes[0].Energy, nil
}

// Check applies the failure model's acceptance rule to an experiment.
func Check(cfg Config, res *Result) error {
	if cfg.Kind.Absorbable() {
		for r, o := range res.Outcomes {
			if o.Err != nil {
				return fmt.Errorf("%s: absorbable fault leaked an error on rank %d: %w", cfg, r, o.Err)
			}
		}
		e := res.Outcomes[0].Energy
		if diff := math.Abs(e - res.Baseline); diff > 1e-12*math.Abs(res.Baseline) {
			return fmt.Errorf("%s: energy diverged: %.17g vs baseline %.17g (|Δ|=%g)", cfg, e, res.Baseline, diff)
		}
		return nil
	}
	// Crash/drop: at least one rank must fail, every failure must be the
	// typed ErrRankFailed, and the first failure must surface within twice
	// the receive timeout (one timeout for the direct observer, one more
	// for a cascading stage).
	firstAt := time.Duration(math.MaxInt64)
	failed := false
	for r, o := range res.Outcomes {
		if o.Err == nil {
			continue
		}
		var rf cluster.ErrRankFailed
		if !errors.As(o.Err, &rf) {
			return fmt.Errorf("%s: rank %d failed with an untyped error: %v", cfg, r, o.Err)
		}
		failed = true
		if o.Elapsed < firstAt {
			firstAt = o.Elapsed
		}
	}
	if !failed {
		return fmt.Errorf("%s: no rank reported ErrRankFailed", cfg)
	}
	if cfg.Timeout > 0 && firstAt > 2*cfg.Timeout {
		return fmt.Errorf("%s: first ErrRankFailed after %v, budget 2×%v", cfg, firstAt, cfg.Timeout)
	}
	return nil
}

// runOnce builds the transport, wraps every rank with the plan, and runs
// the OCT_MPI engine (single-threaded ranks — the deterministic engine the
// parity criterion needs) on all ranks concurrently.
func runOnce(cfg Config, pr *engine.Problem, plan *cluster.FaultPlan) (*Result, error) {
	comms, cleanup, err := buildComms(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	res := &Result{Outcomes: make([]RankOutcome, cfg.P)}
	opts := engine.Options{Threads: 1, CommTimeout: cfg.Timeout}
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			wrapped, err := cluster.WrapChaos(comms[r], plan)
			if err != nil {
				res.Outcomes[r] = RankOutcome{Err: err, Elapsed: time.Since(start)}
				return
			}
			rep, err := engine.RunRank(wrapped, pr, opts)
			res.Outcomes[r] = RankOutcome{Energy: rep.Energy, Err: err, Elapsed: time.Since(start)}
		}(r)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// buildComms constructs one communicator per rank on the requested
// transport. The returned cleanup tears the transport down (closing the
// TCP links stops heartbeats and reader goroutines, so leak checks can run
// after it).
func buildComms(cfg Config) ([]cluster.Comm, func(), error) {
	switch cfg.Transport {
	case Local:
		g := cluster.NewLocalGroup(cfg.P, nil)
		comms := make([]cluster.Comm, cfg.P)
		for r := 0; r < cfg.P; r++ {
			comms[r] = g.Comm(r)
		}
		return comms, func() {}, nil
	case TCPMesh:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		comms := make([]cluster.Comm, cfg.P)
		errs := make([]error, cfg.P)
		var wg sync.WaitGroup
		for r := 0; r < cfg.P; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if r == 0 {
					comms[0], errs[0] = cluster.NewTCPRoot(ln, cfg.P, cluster.WithMesh())
				} else {
					comms[r], errs[r] = cluster.DialTCP(ln.Addr().String(), r, cfg.P, cluster.WithMesh())
				}
			}(r)
		}
		wg.Wait()
		ln.Close()
		cleanup := func() {
			for _, c := range comms {
				if cl, ok := c.(interface{ Close() error }); ok && cl != nil {
					cl.Close()
				}
			}
		}
		for r, err := range errs {
			if err != nil {
				cleanup()
				return nil, nil, fmt.Errorf("clusterchaos: building TCP mesh rank %d: %w", r, err)
			}
		}
		return comms, cleanup, nil
	}
	return nil, nil, fmt.Errorf("clusterchaos: unknown transport %d", cfg.Transport)
}
