package clusterchaos

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"octgb/internal/cluster"
	"octgb/internal/testutil"
)

var allKinds = []cluster.FaultKind{
	cluster.FaultDelay, cluster.FaultDuplicate, cluster.FaultCorrupt,
	cluster.FaultTruncate, cluster.FaultDrop, cluster.FaultCrash,
}

// caseTimeout picks the receive timeout per fault class: absorbable faults
// never consume it (generous, so compute skew cannot trip it); crash/drop
// cases pay it in wall time, so it is kept tight.
func caseTimeout(k cluster.FaultKind) time.Duration {
	if k.Absorbable() {
		return 5 * time.Second
	}
	return 600 * time.Millisecond
}

// runCase executes one experiment under a deadlock watchdog and verifies
// the acceptance rule plus the zero-goroutine-leak property.
func runCase(t *testing.T, cfg Config) {
	t.Helper()
	defer testutil.Watchdog(t, 90*time.Second)()
	g0 := runtime.NumGoroutine()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg, err)
	}
	if err := Check(cfg, res); err != nil {
		t.Fatal(err)
	}
	// Everything the run spawned — engine ranks, in-flight non-blocking
	// collectives, transport readers and heartbeats — must drain within
	// the timeout budget once the transport is torn down.
	if n := testutil.WaitGoroutines(g0+2, 2*cfg.Timeout+2*time.Second); n > g0+2 {
		t.Errorf("%s: goroutine leak: %d live, baseline %d", cfg, n, g0)
	}
}

// TestChaosQuick is the tier-1 slice of the matrix: every fault class on
// the in-process transport at P ∈ {2, 4}, plus a TCP-mesh spot check of
// one absorbable and one fatal class. The full P ∈ {2,4,8} × 8-seed × both
// transports matrix runs under `make chaos` (CHAOS_FULL=1).
func TestChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos experiments are not -short")
	}
	for _, p := range []int{2, 4} {
		for _, k := range allKinds {
			cfg := Config{P: p, Seed: 1, Kind: k, Transport: Local, Timeout: caseTimeout(k)}
			t.Run(fmt.Sprintf("local/P=%d/%s", p, k), func(t *testing.T) { runCase(t, cfg) })
		}
	}
	for _, k := range []cluster.FaultKind{cluster.FaultCorrupt, cluster.FaultCrash} {
		cfg := Config{P: 2, Seed: 1, Kind: k, Transport: TCPMesh, Timeout: caseTimeout(k)}
		t.Run(fmt.Sprintf("tcpmesh/P=2/%s", k), func(t *testing.T) { runCase(t, cfg) })
	}
}

// TestChaosMatrix is the full acceptance matrix: every fault class × both
// transports × P ∈ {2, 4, 8} × 8 seeds. Gated behind CHAOS_FULL=1 (set by
// `make chaos`) because it takes minutes by design — the fatal classes each
// spend their timeout.
func TestChaosMatrix(t *testing.T) {
	if os.Getenv("CHAOS_FULL") == "" {
		t.Skip("set CHAOS_FULL=1 (or run `make chaos`) for the full matrix")
	}
	for _, tr := range []Transport{Local, TCPMesh} {
		for _, p := range []int{2, 4, 8} {
			for _, k := range allKinds {
				for seed := int64(1); seed <= 8; seed++ {
					cfg := Config{P: p, Seed: seed, Kind: k, Transport: tr, Timeout: caseTimeout(k)}
					t.Run(cfg.String(), func(t *testing.T) { runCase(t, cfg) })
				}
			}
		}
	}
}

// TestPlanDeterminism pins the seeding contract: the same configuration
// always yields the same schedule, different seeds yield different ones.
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{P: 4, Seed: 7, Kind: cluster.FaultCorrupt, Timeout: time.Second}
	a, b := NewPlan(cfg), NewPlan(cfg)
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("plan not deterministic: %d vs %d faults", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("plan not deterministic at fault %d: %+v vs %+v", i, a.Faults[i], b.Faults[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c := NewPlan(cfg2)
	same := len(a.Faults) == len(c.Faults)
	if same {
		for i := range a.Faults {
			if a.Faults[i] != c.Faults[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}
