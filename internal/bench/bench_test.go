package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.N != 4 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std %v", s.Std)
	}
	if e := Summarize(nil); e.N != 0 || e.Min != 0 || e.Max != 0 {
		t.Errorf("empty summary %+v", e)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Name: "test", Header: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	tab.AddRow("longer", "x")
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== test ==") || !strings.Contains(out, "longer") {
		t.Errorf("render missing content:\n%s", out)
	}
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := csv.String(); !strings.HasPrefix(got, "a,bee\n1,2\n") {
		t.Errorf("csv:\n%s", got)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Header: []string{"x"}}
	tab.AddRow(`comma, and "quote"`)
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"comma, and ""quote"""`) {
		t.Errorf("csv escaping wrong: %s", csv.String())
	}
}

func TestFmtAndSeconds(t *testing.T) {
	if Fmt(0) != "0" {
		t.Error("Fmt(0)")
	}
	if Fmt(1234567) != "1.235e+06" {
		t.Errorf("Fmt big: %s", Fmt(1234567))
	}
	if Seconds(0.5) != "500.0ms" || Seconds(2) != "2.00s" || Seconds(1e-5) != "10.0µs" {
		t.Errorf("Seconds: %s %s %s", Seconds(0.5), Seconds(2), Seconds(1e-5))
	}
}

// tinyRunner builds a fast config for smoke tests of the figure runners.
func tinyRunner() *Runner {
	return NewRunner(Config{
		Scale:     0.001, // 6k-atom BTV stand-in, 510-atom CMV
		SuiteSize: 4,
		MaxAtoms:  1500,
		Runs:      4,
	})
}

func TestStaticTables(t *testing.T) {
	r := tinyRunner()
	env := r.TableEnv()
	if len(env.Rows) < 5 {
		t.Errorf("env table rows: %d", len(env.Rows))
	}
	pkgs := r.TablePackages()
	if len(pkgs.Rows) != 9 {
		t.Errorf("packages table rows: %d, want 9 (Table II)", len(pkgs.Rows))
	}
}

func TestSuiteCachingAndFilter(t *testing.T) {
	r := tinyRunner()
	s1 := r.Suite()
	s2 := r.Suite()
	if len(s1) == 0 {
		t.Fatal("empty suite")
	}
	if &s1[0] != &s2[0] {
		t.Error("suite not cached")
	}
	for _, it := range s1 {
		if it.Entry.Atoms > 1500 {
			t.Errorf("MaxAtoms filter failed: %d", it.Entry.Atoms)
		}
		if it.NaiveEnergy >= 0 {
			t.Errorf("naive energy %v", it.NaiveEnergy)
		}
	}
}

func TestFig5And6Smoke(t *testing.T) {
	r := tinyRunner()
	f5 := r.Fig5Scalability()
	if len(f5.Rows) != len(fig56Cores) {
		t.Errorf("fig5 rows: %d", len(f5.Rows))
	}
	f6 := r.Fig6MinMax()
	if len(f6.Rows) != len(fig56Cores) {
		t.Errorf("fig6 rows: %d", len(f6.Rows))
	}
}

func TestFig7Through10Smoke(t *testing.T) {
	r := tinyRunner()
	n := len(r.Suite())
	if got := r.Fig7Engines(); len(got.Rows) != n {
		t.Errorf("fig7 rows: %d", len(got.Rows))
	}
	a, b := r.Fig8Baselines()
	if len(a.Rows) != n || len(b.Rows) != n {
		t.Errorf("fig8 rows: %d/%d", len(a.Rows), len(b.Rows))
	}
	if got := r.Fig9Energy(); len(got.Rows) != n {
		t.Errorf("fig9 rows: %d", len(got.Rows))
	}
	if got := r.Fig10Epsilon(); len(got.Rows) != 9 {
		t.Errorf("fig10 rows: %d", len(got.Rows))
	}
}

func TestFig11Smoke(t *testing.T) {
	r := tinyRunner()
	tab := r.Fig11CMV()
	if len(tab.Rows) != 4 {
		t.Errorf("fig11 rows: %d", len(tab.Rows))
	}
}

func TestAblationsSmoke(t *testing.T) {
	r := tinyRunner()
	for name, tab := range map[string]*Table{
		"workdiv":  r.AblationWorkDivision(),
		"nblist":   r.AblationOctreeVsNblist(),
		"binning":  r.AblationEnergyBinning(),
		"stealing": r.AblationStealing(),
		"approx":   r.AblationApproxMath(),
		"balance":  r.AblationStaticBalance(),
		"distdata": r.AblationDataDistribution(),
		"crit":     r.AblationCriterion(),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("ablation %s: empty table", name)
		}
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	tab := &Table{Name: "Figure X: odd/name (test)", Header: []string{"a"}}
	tab.AddRow("1")
	path, err := tab.WriteCSVFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a\n1\n") {
		t.Errorf("csv content: %q", data)
	}
	if strings.ContainsAny(filepath.Base(path), "/: ()") {
		t.Errorf("unsanitized filename: %s", path)
	}
}
