package bench

import (
	"fmt"
	"math"

	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/nblist"
	"octgb/internal/octree"
	"octgb/internal/partition"
	"octgb/internal/sched"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

// Ablation benches for the design choices DESIGN.md calls out. Each
// returns a table comparing the chosen design against its alternative.

// ablationAtoms clamps an ablation's default molecule size to the
// config's MaxAtoms so fast test configs stay fast.
func (r *Runner) ablationAtoms(def int) int {
	if r.Cfg.MaxAtoms > 0 && r.Cfg.MaxAtoms < def {
		return r.Cfg.MaxAtoms
	}
	return def
}

// AblationWorkDivision compares node-based and atom-based work division
// (§IV-A): time and energy stability across rank counts.
func (r *Runner) AblationWorkDivision() *Table {
	cfg := r.Cfg
	mol := molecule.GenerateProtein("ablation_wd", r.ablationAtoms(4000), 301)
	pr := engine.NewProblem(mol, surface.Default())
	sm := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{}, cfg.Costs)

	t := &Table{
		Name:   "Ablation: node-based vs atom-based work division",
		Note:   "node-based energy is P-invariant; atom-based varies with boundaries (paper §IV-A)",
		Header: []string{"ranks", "node time", "node energy", "atom time", "atom energy"},
	}
	for _, P := range []int{1, 2, 4, 8, 12} {
		nt := sm.Time(P, 1, cfg.Machine, -1)
		at, ae := sm.TimeAtomBased(P, 1, cfg.Machine)
		t.AddRow(fmt.Sprint(P), Seconds(nt.TotalSec), Fmt(sm.Energy), Seconds(at.TotalSec), Fmt(ae))
	}
	return t
}

// AblationOctreeVsNblist compares the octree against nonbonded lists:
// build time proxy (work counters), memory across cutoffs (§II).
func (r *Runner) AblationOctreeVsNblist() *Table {
	mol := molecule.GenerateProtein("ablation_nb", r.ablationAtoms(8000), 302)
	pts := make([]geom.Vec3, mol.N())
	for i := range mol.Atoms {
		pts[i] = mol.Atoms[i].Pos
	}
	tree := octree.Build(pts, 0)
	t := &Table{
		Name:   fmt.Sprintf("Ablation: octree vs nonbonded lists (%d atoms)", mol.N()),
		Note:   "octree memory is cutoff-independent; nblist memory grows cubically with the cutoff",
		Header: []string{"structure", "cutoff (Å)", "memory (MB)", "stored pairs"},
	}
	t.AddRow("octree", "any", Fmt(float64(tree.MemoryBytes())/(1<<20)), "-")
	for _, cutoff := range []float64{6, 12, 18, 24} {
		nb := nblist.Build(pts, cutoff)
		t.AddRow("nblist", Fmt(cutoff), Fmt(float64(nb.MemoryBytes())/(1<<20)), fmt.Sprint(nb.NumPairs()))
	}
	return t
}

// AblationEnergyBinning compares the Born-radius charge-binned far field
// against exact evaluation: time (pair counters) and error at several ε.
func (r *Runner) AblationEnergyBinning() *Table {
	cfg := r.Cfg
	mol := molecule.GenerateProtein("ablation_bin", r.ablationAtoms(3000), 303)
	pr := engine.NewProblem(mol, surface.Default())
	R := gb.BornRadiiR6(mol, pr.QPts)
	exact := gb.EpolNaive(mol, R, gb.Exact)

	base := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{BornEps: 0.9, EpolEps: 0.9}, cfg.Costs)
	t := &Table{
		Name:   "Ablation: binned far-field vs exact pairwise energy",
		Note:   fmt.Sprintf("exact naive energy %s kcal/mol; treecode uses M_ε charge bins per node", Fmt(exact)),
		Header: []string{"E_pol ε", "near pairs", "far evals", "12-core time", "err %"},
	}
	for _, eps := range []float64{0.3, 0.9, 2.0} {
		sm := base.WithEpolEps(eps)
		tm := sm.Time(12, 1, cfg.Machine, -1)
		t.AddRow(Fmt(eps), fmt.Sprint(sm.EpolStats.NearPairs), fmt.Sprint(sm.EpolStats.FarEval),
			Seconds(tm.TotalSec), Fmt(math.Abs(pctErr(sm.Energy, exact))))
	}
	// The "no binning" row: pure pairwise (naive) work at 12 cores.
	naive := engine.BuildSimModel(pr, engine.Naive, engine.Options{}, cfg.Costs)
	nt := naive.Time(1, 12, cfg.Machine, -1)
	t.AddRow("exact", fmt.Sprint(naive.EpolStats.NearPairs), "0", Seconds(nt.TotalSec), "0")
	return t
}

// AblationStealing compares dynamic work stealing against a static
// contiguous per-thread split on the real (skewed) per-leaf work profile.
func (r *Runner) AblationStealing() *Table {
	cfg := r.Cfg
	mol := molecule.GenerateProtein("ablation_steal", r.ablationAtoms(6000), 304)
	pr := engine.NewProblem(mol, surface.Default())
	sm := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{}, cfg.Costs)
	weights := sm.EpolLeafWork()

	t := &Table{
		Name:   "Ablation: work stealing vs static per-thread split (energy-phase leaf work)",
		Note:   "makespans in modeled seconds on the measured per-leaf work profile",
		Header: []string{"threads", "stealing (greedy)", "static contiguous", "static penalty"},
	}
	for _, p := range []int{2, 6, 12} {
		steal := sched.ListScheduleMakespan(weights, p)
		var static float64
		for _, seg := range partition.Even(len(weights), p) {
			var l float64
			for i := seg.Lo; i < seg.Hi; i++ {
				l += weights[i]
			}
			if l > static {
				static = l
			}
		}
		t.AddRow(fmt.Sprint(p), Seconds(steal), Seconds(static), Fmt(static/steal))
	}
	return t
}

// AblationApproxMath compares exact and approximate math: modeled time and
// energy shift (§V-E: ≈1.42× faster, 4–5 % energy shift).
func (r *Runner) AblationApproxMath() *Table {
	cfg := r.Cfg
	mol := molecule.GenerateProtein("ablation_am", r.ablationAtoms(4000), 305)
	pr := engine.NewProblem(mol, surface.Default())
	ex := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{Math: gb.Exact}, cfg.Costs)
	ap := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{Math: gb.Approximate}, apxCosts(cfg.Costs))

	t := &Table{
		Name:   "Ablation: approximate math (fast invsqrt/exp) on vs off",
		Header: []string{"math", "energy", "shift %", "12-core time"},
	}
	te := ex.Time(12, 1, cfg.Machine, -1)
	ta := ap.Time(12, 1, cfg.Machine, -1)
	t.AddRow("exact", Fmt(ex.Energy), "0", Seconds(te.TotalSec))
	t.AddRow("approximate", Fmt(ap.Energy), Fmt(pctErr(ap.Energy, ex.Energy)), Seconds(ta.TotalSec))
	return t
}

// AblationStaticBalance compares the paper's count-based static division
// with the explicit work-weighted static division (the §VI future-work
// direction implemented by Options.WeightedStatic).
func (r *Runner) AblationStaticBalance() *Table {
	cfg := r.Cfg
	// A ligand-receptor complex gives a deliberately lopsided leaf-work
	// profile (dense receptor + detached ligand).
	mol := molecule.GenerateComplex("ablation_bal", r.ablationAtoms(4000), r.ablationAtoms(4000)/8, 306)
	pr := engine.NewProblem(mol, surface.Default())
	count := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{}, cfg.Costs)
	weighted := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{WeightedStatic: true}, cfg.Costs)

	t := &Table{
		Name:   "Ablation: count-based vs work-weighted static division (future work §VI)",
		Note:   fmt.Sprintf("ligand–receptor complex, %d atoms", mol.N()),
		Header: []string{"ranks", "count-split time", "weighted-split time", "improvement"},
	}
	for _, P := range []int{4, 12, 24, 48} {
		tc := count.Time(P, 1, cfg.Machine, -1).TotalSec
		tw := weighted.Time(P, 1, cfg.Machine, -1).TotalSec
		t.AddRow(fmt.Sprint(P), Seconds(tc), Seconds(tw), Fmt(tc/tw))
	}
	return t
}

// AblationDataDistribution quantifies the §VI future-work variant: per-rank
// memory when atoms are distributed (owned + ghost leaves + skeleton)
// versus the published full-replication design.
func (r *Runner) AblationDataDistribution() *Table {
	cfg := r.Cfg
	mol := molecule.GenerateProtein("ablation_dd", r.ablationAtoms(8000), 307)
	pr := engine.NewProblem(mol, surface.Default())
	sm := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{}, cfg.Costs)

	t := &Table{
		Name:   fmt.Sprintf("Ablation: distributed data vs full replication (%d atoms, energy phase)", mol.N()),
		Note:   "replicated = published design (every rank holds all data); distributed = owned + ghost leaves + tree skeleton",
		Header: []string{"ranks", "replicated/rank (MB)", "distributed/rank (MB)", "ghost atoms (max)", "exchange"},
	}
	for _, P := range []int{2, 12, 48, 144} {
		dd := sm.DistributeData(P, cfg.Machine)
		t.AddRow(fmt.Sprint(P),
			Fmt(float64(dd.BytesPerRankReplicated)/(1<<20)),
			Fmt(float64(dd.BytesPerRankDistributed)/(1<<20)),
			fmt.Sprint(dd.MaxGhostAtoms),
			Seconds(dd.ExchangeCostSec))
	}
	return t
}

// AblationCriterion contrasts the default distance-ratio Born acceptance
// criterion with the poster's printed (1+ε)^{1/6} variant, which at
// protein scales accepts almost no cell pairs (see DESIGN.md's criterion
// note): the near-pair counts make the near-degeneracy visible.
func (r *Runner) AblationCriterion() *Table {
	cfg := r.Cfg
	mol := molecule.GenerateProtein("ablation_crit", r.ablationAtoms(3000), 308)
	pr := engine.NewProblem(mol, surface.Default())

	t := &Table{
		Name:   "Ablation: Born far-field criterion — distance-ratio (power 1) vs poster-printed (power 6)",
		Header: []string{"criterion", "far evals", "near pairs", "naive N*m", "12-core time"},
	}
	nm := int64(mol.N()) * int64(len(pr.QPts))
	for _, power := range []int{1, 6} {
		sm := engine.BuildSimModel(pr, engine.OctMPI,
			engine.Options{CriterionPower: power}, cfg.Costs)
		tm := sm.Time(12, 1, cfg.Machine, -1)
		name := "power 1 (default)"
		if power == 6 {
			name = "power 6 (printed)"
		}
		t.AddRow(name, fmt.Sprint(sm.BornStats.FarEval), fmt.Sprint(sm.BornStats.NearPairs),
			fmt.Sprint(nm), Seconds(tm.TotalSec))
	}
	return t
}

// apxCosts scales the transcendental-heavy kernel costs by the measured
// approximate-math factor (§V-E: 1.42× on average).
func apxCosts(oc simtime.OpCosts) simtime.OpCosts {
	oc.EpolNearPairSec /= simtime.ApproxMathFactor
	oc.FarEvalSec /= simtime.ApproxMathFactor
	return oc
}
