package bench

import (
	"fmt"
	"io"
	"math"

	"octgb/internal/baselines"
	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

// Config controls the harness. Zero values select defaults that finish in
// minutes on a laptop; cmd/benchsuite exposes flags for the full-scale
// paper settings.
type Config struct {
	// Scale shrinks the CMV/BTV stand-ins (1 = the paper's full sizes:
	// 509,640 and 6,000,000 atoms). Default 0.1.
	Scale float64
	// SuiteSize is the number of ZDock-like molecules (default 21; the
	// paper's suite has 84).
	SuiteSize int
	// MaxAtoms filters the suite to entries of at most this many atoms
	// (0 = no filter); used by fast tests.
	MaxAtoms int
	// Runs is the number of jittered repetitions for Figure 6 (default 20,
	// matching the paper).
	Runs int
	// Exact forces a naive reference even on the large molecules; when
	// false, molecules above 100k atoms use the ε=0.01 treecode as
	// reference (documented substitution).
	Exact bool
	// Math selects exact or approximate arithmetic for the octree engines
	// (the paper runs Figure 7 with approximate math on, Figure 10 with it
	// off).
	Math    gb.MathMode
	Machine simtime.Machine
	Costs   simtime.OpCosts
	// Log receives progress lines (nil discards them).
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.SuiteSize <= 0 {
		c.SuiteSize = 21
	}
	if c.Runs <= 0 {
		c.Runs = 20
	}
	if c.Machine.CoresPerNode == 0 {
		c.Machine = simtime.Lonestar4()
	}
	if c.Costs == (simtime.OpCosts{}) {
		c.Costs = simtime.DefaultOpCosts()
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Runner caches the expensive shared state (suite problems, naive
// references) across figure regenerations.
type Runner struct {
	Cfg   Config
	suite []SuiteItem

	btvMPI, btvHyb *engine.SimModel
	btvName        string
	btvAtoms       int
	btvQPts        int

	baseCache map[string]*baselines.Report // "pkg/molecule" → executed run
}

// baseline runs (or returns the cached run of) one baseline package on one
// suite molecule; Figures 8 and 9 share the executed pairwise work.
func (r *Runner) baseline(p baselines.Package, it SuiteItem) (*baselines.Report, error) {
	key := fmt.Sprintf("%d/%s", p, it.Entry.Name)
	if r.baseCache == nil {
		r.baseCache = map[string]*baselines.Report{}
	}
	if rep, ok := r.baseCache[key]; ok {
		return rep, nil
	}
	rep, err := baselines.Run(p, it.Prob.Mol, gb.Exact, 0)
	if err != nil {
		return nil, err
	}
	r.baseCache[key] = rep
	return rep, nil
}

// SuiteItem is one prepared ZDock-like benchmark molecule.
type SuiteItem struct {
	Entry       molecule.SuiteEntry
	Prob        *engine.Problem
	NaiveEnergy float64
}

// NewRunner validates the config and returns a harness.
func NewRunner(cfg Config) *Runner {
	return &Runner{Cfg: cfg.withDefaults()}
}

// Suite lazily builds the benchmark suite with naive reference energies.
func (r *Runner) Suite() []SuiteItem {
	if r.suite != nil {
		return r.suite
	}
	entries := molecule.ZDockLikeSuite(r.Cfg.SuiteSize)
	for _, e := range entries {
		if r.Cfg.MaxAtoms > 0 && e.Atoms > r.Cfg.MaxAtoms {
			continue
		}
		r.Cfg.logf("suite: preparing %s (%d atoms)", e.Name, e.Atoms)
		mol := e.Build()
		pr := engine.NewProblem(mol, surface.Default())
		R := gb.BornRadiiR6(mol, pr.QPts)
		item := SuiteItem{
			Entry:       e,
			Prob:        pr,
			NaiveEnergy: gb.EpolNaive(mol, R, gb.Exact),
		}
		r.suite = append(r.suite, item)
	}
	return r.suite
}

// referenceEnergy returns the exact-reference energy for an arbitrary
// problem: naive when feasible (or when cfg.Exact), otherwise the ε=0.3
// treecode — whose error against naive is ≤0.25 % across the suite
// (Figure 10), several times below the differences being measured, while
// staying computable on half-million-atom shells.
func (r *Runner) referenceEnergy(pr *engine.Problem) (float64, string) {
	if r.Cfg.Exact || pr.Mol.N() <= 100000 {
		R := gb.BornRadiiR6(pr.Mol, pr.QPts)
		return gb.EpolNaive(pr.Mol, R, gb.Exact), "naive"
	}
	sm := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{BornEps: 0.3, EpolEps: 0.3}, r.Cfg.Costs)
	return sm.Energy, "treecode ε=0.3"
}

func pctErr(e, ref float64) float64 {
	return 100 * (e - ref) / math.Abs(ref)
}

// TableEnv reproduces Table I: the modeled simulation environment.
func (r *Runner) TableEnv() *Table {
	m := r.Cfg.Machine
	t := &Table{Name: "Table I: Simulation Environment (modeled)", Header: []string{"Attribute", "Property"}}
	t.AddRow("Processors", fmt.Sprintf("%.2f GHz hexa-core (modeled Westmere)", m.CoreGHz))
	t.AddRow("Cores/node", fmt.Sprintf("%d (%d sockets)", m.CoresPerNode, m.SocketsPerNode))
	t.AddRow("RAM/node", fmt.Sprintf("%d GB", m.RAMBytesPerNode>>30))
	t.AddRow("Interconnect", fmt.Sprintf("α–β model: t_s=%.1fµs, t_w=%.2fns/word", m.TsSec*1e6, m.TwSecPerWord*1e9))
	t.AddRow("L3 cache", fmt.Sprintf("%d MB/socket", m.L3BytesPerSkt>>20))
	t.AddRow("Parallelism", "Go work-stealing pool + message-passing ranks (cilk++/MPI stand-ins)")
	return t
}

// TablePackages reproduces Table II: packages, GB models, parallelism.
func (r *Runner) TablePackages() *Table {
	t := &Table{Name: "Table II: Packages, GB models, parallelism", Header: []string{"Package", "GB-Model", "Parallelism"}}
	for _, p := range baselines.All() {
		s := p.Spec()
		t.AddRow(s.Name, s.Model.String(), s.Parallel)
	}
	t.AddRow("OCT_CILK", "STILL (surface r6)", "Shared (work stealing)")
	t.AddRow("OCT_MPI", "STILL (surface r6)", "Distributed (message passing)")
	t.AddRow("OCT_MPI+CILK", "STILL (surface r6)", "Hybrid (ranks × work stealing)")
	t.AddRow("Naive", "STILL (surface r6)", "Serial")
	return t
}

// btvModels builds (once) the Figure 5/6 molecule and both engine models.
func (r *Runner) btvModels() (mpi, hyb *engine.SimModel) {
	if r.btvMPI != nil {
		return r.btvMPI, r.btvHyb
	}
	mol := molecule.GenerateBTV(r.Cfg.Scale)
	r.Cfg.logf("fig5/6: BTV stand-in with %d atoms", mol.N())
	// Coarser surface for the very large shells: the paper's BTV has
	// ~0.5 q-points per atom.
	pr := engine.NewProblem(mol, surface.Options{SubdivLevel: 0, Degree: 1})
	r.btvName, r.btvAtoms, r.btvQPts = mol.Name, mol.N(), len(pr.QPts)
	r.Cfg.logf("fig5/6: building OCT_MPI model")
	r.btvMPI = engine.BuildSimModel(pr, engine.OctMPI, engine.Options{Math: r.Cfg.Math}, r.Cfg.Costs)
	r.Cfg.logf("fig5/6: building OCT_MPI+CILK model")
	r.btvHyb = engine.BuildSimModel(pr, engine.OctMPICilk, engine.Options{Math: r.Cfg.Math}, r.Cfg.Costs)
	return r.btvMPI, r.btvHyb
}

// fig56Cores is the swept core count list (one Lonestar4 node = 12 cores).
var fig56Cores = []int{12, 24, 48, 72, 96, 120, 144, 192, 240, 288}

// Fig5Scalability regenerates Figure 5: running time and speedup of
// OCT_MPI (12 ranks/node) and OCT_MPI+CILK (2 ranks × 6 threads/node)
// versus core count on the BTV stand-in, speedup relative to one node.
func (r *Runner) Fig5Scalability() *Table {
	cfg := r.Cfg
	mpi, hyb := r.btvModels()

	t := &Table{
		Name:   "Figure 5: Scalability on BTV stand-in (time and speedup vs one 12-core node)",
		Note:   fmt.Sprintf("molecule: %s (%d atoms, %d q-points)", r.btvName, r.btvAtoms, r.btvQPts),
		Header: []string{"cores", "OCT_MPI time", "OCT_MPI+CILK time", "OCT_MPI speedup", "OCT_MPI+CILK speedup"},
	}
	base := map[string]float64{}
	for _, cores := range fig56Cores {
		tm := mpi.Time(cores, 1, cfg.Machine, -1)
		th := hyb.Time(cores/6, 6, cfg.Machine, -1)
		if cores == 12 {
			base["mpi"], base["hyb"] = tm.TotalSec, th.TotalSec
		}
		t.AddRow(fmt.Sprint(cores),
			Seconds(tm.TotalSec), Seconds(th.TotalSec),
			Fmt(base["mpi"]/tm.TotalSec), Fmt(base["hyb"]/th.TotalSec))
	}
	return t
}

// Fig6MinMax regenerates Figure 6: min and max running times over cfg.Runs
// jittered repetitions for both engines versus core count.
func (r *Runner) Fig6MinMax() *Table {
	cfg := r.Cfg
	mpi, hyb := r.btvModels()

	t := &Table{
		Name:   fmt.Sprintf("Figure 6: min/max over %d runs on BTV stand-in", cfg.Runs),
		Note:   fmt.Sprintf("molecule: %s (%d atoms)", r.btvName, r.btvAtoms),
		Header: []string{"cores", "MPI min", "MPI max", "HYB min", "HYB max", "hyb min wins"},
	}
	for _, cores := range fig56Cores {
		var tm, th []float64
		for run := 0; run < cfg.Runs; run++ {
			tm = append(tm, mpi.Time(cores, 1, cfg.Machine, int64(run)).TotalSec)
			th = append(th, hyb.Time(cores/6, 6, cfg.Machine, int64(run)).TotalSec)
		}
		sm, sh := Summarize(tm), Summarize(th)
		t.AddRow(fmt.Sprint(cores),
			Seconds(sm.Min), Seconds(sm.Max),
			Seconds(sh.Min), Seconds(sh.Max),
			fmt.Sprint(sh.Min < sm.Min))
	}
	return t
}

// Fig7Engines regenerates Figure 7: the three octree engines across the
// ZDock-like suite on one 12-core node, sorted by OCT_CILK time. The
// paper runs this experiment with approximate math on.
func (r *Runner) Fig7Engines() *Table {
	cfg := r.Cfg
	t := &Table{
		Name:   "Figure 7: octree engines on one 12-core node (approximate math on)",
		Header: []string{"molecule", "atoms", "OCT_CILK", "OCT_MPI(12)", "OCT_MPI+CILK(2x6)"},
	}
	type row struct {
		cells []string
		sort  float64
	}
	var rows []row
	for _, it := range r.Suite() {
		o := engine.Options{Math: gb.Approximate}
		cilk := engine.BuildSimModel(it.Prob, engine.OctCilk, o, cfg.Costs)
		mpi := engine.BuildSimModel(it.Prob, engine.OctMPI, o, cfg.Costs)
		hyb := engine.BuildSimModel(it.Prob, engine.OctMPICilk, o, cfg.Costs)
		tc := cilk.Time(1, 12, cfg.Machine, -1).TotalSec
		tm := mpi.Time(12, 1, cfg.Machine, -1).TotalSec
		th := hyb.Time(2, 6, cfg.Machine, -1).TotalSec
		rows = append(rows, row{
			cells: []string{it.Entry.Name, fmt.Sprint(it.Entry.Atoms), Seconds(tc), Seconds(tm), Seconds(th)},
			sort:  tc,
		})
		cfg.logf("fig7: %s done", it.Entry.Name)
	}
	// Sort by OCT_CILK time as in the paper.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].sort < rows[j-1].sort; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	for _, rw := range rows {
		t.AddRow(rw.cells...)
	}
	return t
}

// Fig8Baselines regenerates Figure 8: (a) running times of all programs on
// a 12-core node across the suite, sorted by size; (b) speedups w.r.t.
// Amber.
func (r *Runner) Fig8Baselines() (*Table, *Table) {
	cfg := r.Cfg
	ta := &Table{
		Name:   "Figure 8a: GB-energy running time, 12-core node (sorted by molecule size)",
		Header: []string{"molecule", "atoms", "OCT_MPI", "OCT_MPI+CILK", "OCT_CILK", "Gromacs", "Amber", "NAMD", "Tinker", "GBr6", "Naive(1 core)"},
	}
	tb := &Table{
		Name:   "Figure 8b: speedup w.r.t. Amber 12 on 12 cores",
		Header: []string{"molecule", "atoms", "OCT_MPI", "OCT_MPI+CILK", "Gromacs", "NAMD", "Tinker", "GBr6"},
	}
	for _, it := range r.Suite() {
		o := engine.Options{Math: cfg.Math}
		mpi := engine.BuildSimModel(it.Prob, engine.OctMPI, o, cfg.Costs).Time(12, 1, cfg.Machine, -1).TotalSec
		hyb := engine.BuildSimModel(it.Prob, engine.OctMPICilk, o, cfg.Costs).Time(2, 6, cfg.Machine, -1).TotalSec
		cilk := engine.BuildSimModel(it.Prob, engine.OctCilk, o, cfg.Costs).Time(1, 12, cfg.Machine, -1).TotalSec
		naive := engine.BuildSimModel(it.Prob, engine.Naive, o, cfg.Costs).Time(1, 1, cfg.Machine, -1).TotalSec

		times := map[baselines.Package]float64{}
		for _, p := range baselines.All() {
			rep, err := r.baseline(p, it)
			if err != nil {
				times[p] = math.NaN() // out of memory
				continue
			}
			switch p {
			case baselines.TinkerLike:
				times[p] = rep.SimTime(1, 12, cfg.Machine, cfg.Costs, cfg.Math).TotalSec
			case baselines.GBr6Like:
				times[p] = rep.SimTime(1, 1, cfg.Machine, cfg.Costs, cfg.Math).TotalSec
			default:
				times[p] = rep.SimTime(12, 1, cfg.Machine, cfg.Costs, cfg.Math).TotalSec
			}
		}
		fmtT := func(s float64) string {
			if math.IsNaN(s) {
				return "OOM"
			}
			return Seconds(s)
		}
		ta.AddRow(it.Entry.Name, fmt.Sprint(it.Entry.Atoms),
			Seconds(mpi), Seconds(hyb), Seconds(cilk),
			fmtT(times[baselines.GromacsLike]), fmtT(times[baselines.AmberLike]),
			fmtT(times[baselines.NAMDLike]), fmtT(times[baselines.TinkerLike]),
			fmtT(times[baselines.GBr6Like]), Seconds(naive))

		amber := times[baselines.AmberLike]
		sp := func(s float64) string {
			if math.IsNaN(s) || s == 0 {
				return "-"
			}
			return Fmt(amber / s)
		}
		tb.AddRow(it.Entry.Name, fmt.Sprint(it.Entry.Atoms),
			sp(mpi), sp(hyb),
			sp(times[baselines.GromacsLike]), sp(times[baselines.NAMDLike]),
			sp(times[baselines.TinkerLike]), sp(times[baselines.GBr6Like]))
		cfg.logf("fig8: %s done", it.Entry.Name)
	}
	return ta, tb
}

// Fig9Energy regenerates Figure 9: energy values per molecule per program,
// with percent difference from the naive reference.
func (r *Runner) Fig9Energy() *Table {
	cfg := r.Cfg
	t := &Table{
		Name:   "Figure 9: GB-energy values (kcal/mol) and % difference w.r.t. naive",
		Header: []string{"molecule", "atoms", "Naive", "OCT(all)", "oct%", "Amber", "amber%", "Gromacs", "gro%", "NAMD", "namd%", "Tinker", "tink%", "GBr6", "gbr6%"},
	}
	for _, it := range r.Suite() {
		oct := engine.BuildSimModel(it.Prob, engine.OctMPI, engine.Options{Math: cfg.Math}, cfg.Costs)
		cells := []string{it.Entry.Name, fmt.Sprint(it.Entry.Atoms),
			Fmt(it.NaiveEnergy), Fmt(oct.Energy), Fmt(pctErr(oct.Energy, it.NaiveEnergy))}
		for _, p := range []baselines.Package{baselines.AmberLike, baselines.GromacsLike, baselines.NAMDLike, baselines.TinkerLike, baselines.GBr6Like} {
			rep, err := r.baseline(p, it)
			if err != nil {
				cells = append(cells, "OOM", "-")
				continue
			}
			cells = append(cells, Fmt(rep.Energy), Fmt(pctErr(rep.Energy, it.NaiveEnergy)))
		}
		t.AddRow(cells...)
		cfg.logf("fig9: %s done", it.Entry.Name)
	}
	return t
}

// Fig10Epsilon regenerates Figure 10: percent error (avg ± std across the
// suite) and average running time of OCT_MPI+CILK as the E_pol ε varies
// from 0.1 to 0.9 with the Born ε fixed at 0.9 (approximate math off).
func (r *Runner) Fig10Epsilon() *Table {
	cfg := r.Cfg
	t := &Table{
		Name:   "Figure 10: error and time vs E_pol approximation parameter (Born ε = 0.9, exact math)",
		Header: []string{"epsilon", "avg err %", "std err %", "avg time", "max err %"},
	}
	// Build the Born phase once per molecule; sweep the energy ε.
	bases := make([]*engine.SimModel, len(r.Suite()))
	for i, it := range r.Suite() {
		bases[i] = engine.BuildSimModel(it.Prob, engine.OctMPICilk,
			engine.Options{BornEps: 0.9, EpolEps: 0.9, Math: gb.Exact}, cfg.Costs)
	}
	for _, eps := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		var errs, times []float64
		for i, it := range r.Suite() {
			sm := bases[i].WithEpolEps(eps)
			errs = append(errs, math.Abs(pctErr(sm.Energy, it.NaiveEnergy)))
			times = append(times, sm.Time(2, 6, cfg.Machine, -1).TotalSec)
		}
		es, ts := Summarize(errs), Summarize(times)
		t.AddRow(Fmt(eps), Fmt(es.Mean), Fmt(es.Std), Seconds(ts.Mean), Fmt(es.Max))
		cfg.logf("fig10: ε=%.1f done", eps)
	}
	return t
}

// Fig11CMV regenerates Figure 11: the CMV-shell table — 12-core and
// 144-core times, speedups w.r.t. Amber, energies and % difference from
// the exact reference.
func (r *Runner) Fig11CMV() *Table {
	cfg := r.Cfg
	mol := molecule.GenerateCMV(cfg.Scale)
	cfg.logf("fig11: CMV stand-in with %d atoms", mol.N())
	// Subdivision 0 gives ≈4–6 q-points per atom after burial culling,
	// matching the paper's CMV density (1,929,128 q-points / 509,640
	// atoms ≈ 3.8).
	pr := engine.NewProblem(mol, surface.Options{SubdivLevel: 0, Degree: 1})
	cfg.logf("fig11: %d q-points", len(pr.QPts))

	ref, refKind := r.referenceEnergy(pr)
	cfg.logf("fig11: reference energy %.4g kcal/mol (%s)", ref, refKind)

	o := engine.Options{Math: cfg.Math}
	cilk := engine.BuildSimModel(pr, engine.OctCilk, o, cfg.Costs)
	cfg.logf("fig11: OCT_CILK model built")
	mpi := engine.BuildSimModel(pr, engine.OctMPI, o, cfg.Costs)
	hyb := engine.BuildSimModel(pr, engine.OctMPICilk, o, cfg.Costs)
	cfg.logf("fig11: octree models built")

	amberRep, amberErr := baselines.RunLarge(baselines.AmberLike, mol, cfg.Math)
	var amber12, amber144, amberE float64
	if amberErr == nil {
		amber12 = amberRep.SimTime(12, 1, cfg.Machine, cfg.Costs, cfg.Math).TotalSec
		amber144 = amberRep.SimTime(144, 1, cfg.Machine, cfg.Costs, cfg.Math).TotalSec
		amberE = amberRep.Energy
	}
	cfg.logf("fig11: Amber baseline done")

	t := &Table{
		Name: "Figure 11: scalability on the CMV shell stand-in",
		Note: fmt.Sprintf("molecule: %s (%d atoms, %d q-points); reference: %s = %s kcal/mol",
			mol.Name, mol.N(), len(pr.QPts), refKind, Fmt(ref)),
		Header: []string{"program", "12 cores", "144 cores", "speedup/Amber@12", "speedup/Amber@144", "energy (kcal/mol)", "% diff vs ref"},
	}
	addOct := func(name string, t12, t144, energy float64, has144 bool) {
		c144 := "X"
		s144 := "X"
		if has144 {
			c144 = Seconds(t144)
			s144 = Fmt(amber144 / t144)
		}
		t.AddRow(name, Seconds(t12), c144, Fmt(amber12/t12), s144, Fmt(energy), Fmt(pctErr(energy, ref)))
	}
	addOct("OCT_CILK", cilk.Time(1, 12, cfg.Machine, -1).TotalSec, 0, cilk.Energy, false)
	t.AddRow("Amber", Seconds(amber12), Seconds(amber144), "1", "1", Fmt(amberE), Fmt(pctErr(amberE, ref)))
	addOct("OCT_MPI+CILK", hyb.Time(2, 6, cfg.Machine, -1).TotalSec, hyb.Time(24, 6, cfg.Machine, -1).TotalSec, hyb.Energy, true)
	addOct("OCT_MPI", mpi.Time(12, 1, cfg.Machine, -1).TotalSec, mpi.Time(144, 1, cfg.Machine, -1).TotalSec, mpi.Energy, true)
	return t
}
