// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation section (see DESIGN.md's per-experiment
// index). The figure runners live here so that cmd/benchsuite, the root
// bench_test.go targets and the tests all execute the same code.
package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Summary is a basic sample statistic bundle.
type Summary struct {
	Min, Max, Mean, Std float64
	N                   int
}

// Summarize computes min/max/mean/population-std of xs.
func Summarize(xs []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(xs)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	return s
}

// Table is a named result table with aligned-text and CSV rendering.
type Table struct {
	Name   string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fmt formats a float compactly for table cells.
func Fmt(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Seconds formats a duration in seconds with adaptive precision.
func Seconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "\n== %s ==\n", t.Name)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad+2))
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSVFile writes the table as <sanitized-name>.csv inside dir
// (created if missing) and returns the path.
func (t *Table) WriteCSVFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, t.Name)
	if len(name) > 60 {
		name = name[:60]
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return path, t.WriteCSV(f)
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	var b strings.Builder
	cells := make([]string, 0, len(t.Header))
	for _, h := range t.Header {
		cells = append(cells, esc(h))
	}
	b.WriteString(strings.Join(cells, ",") + "\n")
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
