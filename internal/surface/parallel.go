package surface

import (
	"math"

	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/octree"
	"octgb/internal/quadrature"
	"octgb/internal/sched"
)

// SampleParallel is Sample with the per-atom sphere sampling and burial
// tests distributed over a work-stealing pool of `workers` threads
// (workers ≤ 1 falls back to the serial Sample). The output is identical
// to Sample — per-atom results are assembled in atom order regardless of
// scheduling — so callers can switch freely between the two.
func SampleParallel(mol *molecule.Molecule, opt Options, workers int) []QPoint {
	if workers <= 1 || mol.N() == 0 {
		return Sample(mol, opt)
	}
	opt = opt.withDefaults()
	n := mol.N()

	mesh := quadrature.Icosphere(opt.SubdivLevel)
	rule := quadrature.Rule(opt.Degree)
	areaFix := 4 * math.Pi / mesh.TotalArea()
	type protoPoint struct {
		dir geom.Vec3
		w   float64
	}
	protos := make([]protoPoint, 0, len(mesh.Tris)*len(rule))
	for i := range mesh.Tris {
		area := mesh.TriangleArea(i) * areaFix
		for _, p := range rule {
			protos = append(protos, protoPoint{
				dir: mesh.PointAt(i, p.A, p.B, p.C).Unit(),
				w:   p.W * area,
			})
		}
	}

	centers := make([]geom.Vec3, n)
	maxR := 0.0
	for i, a := range mol.Atoms {
		centers[i] = a.Pos
		if r := a.Radius * opt.RadiusScale; r > maxR {
			maxR = r
		}
	}
	tree := octree.Build(centers, 0)

	// Per-atom buckets keep the output deterministic under any schedule.
	buckets := make([][]QPoint, n)
	pool := sched.NewPool(workers)
	pool.ParallelFor(n, 16, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := &mol.Atoms[i]
			ri := ai.Radius * opt.RadiusScale
			var pts []QPoint
			for _, pp := range protos {
				p := ai.Pos.Add(pp.dir.Scale(ri))
				if buried(tree, mol, opt.RadiusScale, p, int32(i), maxR) {
					continue
				}
				pts = append(pts, QPoint{Pos: p, Normal: pp.dir, Weight: pp.w * ri * ri})
			}
			buckets[i] = pts
		}
	})

	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	out := make([]QPoint, 0, total)
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}
