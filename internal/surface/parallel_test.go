package surface

import (
	"testing"

	"octgb/internal/molecule"
)

func TestSampleParallelMatchesSerial(t *testing.T) {
	m := molecule.GenerateProtein("par", 800, 91)
	serial := Sample(m, Default())
	for _, workers := range []int{2, 4, 8} {
		par := SampleParallel(m, Default(), workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d points vs serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: point %d differs", workers, i)
			}
		}
	}
}

func TestSampleParallelFallbacks(t *testing.T) {
	m := molecule.GenerateProtein("pf", 100, 92)
	if got := SampleParallel(m, Default(), 1); len(got) != len(Sample(m, Default())) {
		t.Error("workers=1 fallback differs")
	}
	if got := SampleParallel(&molecule.Molecule{}, Default(), 4); len(got) != 0 {
		t.Error("empty molecule produced points")
	}
}

func BenchmarkSampleParallel2000(b *testing.B) {
	m := molecule.GenerateProtein("bp", 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleParallel(m, Default(), 4)
	}
}
