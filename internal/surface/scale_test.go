package surface

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"octgb/internal/geom"
	"octgb/internal/molecule"
)

func TestRadiusScaleGrowsArea(t *testing.T) {
	// Inflating the radii (SAS-style surfaces) must grow the exposed area
	// roughly quadratically for an isolated atom and monotonically for a
	// molecule.
	a1 := TotalArea(Sample(singleAtom(1.5), Options{RadiusScale: 1}))
	a2 := TotalArea(Sample(singleAtom(1.5), Options{RadiusScale: 2}))
	if math.Abs(a2/a1-4) > 1e-9 {
		t.Errorf("isolated-atom area ratio %v, want 4", a2/a1)
	}

	// For a packed molecule inflation also increases burial, so the net
	// area change is shape-dependent; it must differ from the unscaled
	// area and stay below the sum of isolated-sphere areas.
	m := molecule.GenerateProtein("ss", 400, 61)
	s1 := TotalArea(Sample(m, Options{RadiusScale: 1}))
	s12 := TotalArea(Sample(m, Options{RadiusScale: 1.2}))
	if s12 == s1 {
		t.Error("radius scale had no effect on molecular area")
	}
	var upper float64
	for _, a := range m.Atoms {
		r := a.Radius * 1.2
		upper += 4 * math.Pi * r * r
	}
	if s12 <= 0 || s12 > upper {
		t.Errorf("scaled area %v outside (0, %v]", s12, upper)
	}
}

func TestHigherResolutionRefinesArea(t *testing.T) {
	// For two overlapping spheres the analytic exposed area is known;
	// resolution must converge toward it.
	d := 1.5
	m := &molecule.Molecule{Name: "pair", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1},
		{Pos: geom.V(d, 0, 0), Radius: 1},
	}}
	h := 1 - d/2
	want := 2 * (4*math.Pi - 2*math.Pi*h)
	errAt := func(level int) float64 {
		got := TotalArea(Sample(m, Options{SubdivLevel: level, Degree: 2}))
		return math.Abs(got - want)
	}
	if e3, e1 := errAt(3), errAt(1); e3 > e1 {
		t.Errorf("refinement did not reduce area error: L1 %v → L3 %v", e1, e3)
	}
}

// Property: sampled areas are positive and bounded by the sum of the
// isolated-sphere areas, for random small molecules.
func TestPropertyAreaBounds(t *testing.T) {
	f := func(n int, seed int64) bool {
		n = 2 + abs(n)%60
		m := molecule.GenerateProtein("p", n, seed)
		q := Sample(m, Options{SubdivLevel: 0, Degree: 1})
		area := TotalArea(q)
		var max float64
		for _, a := range m.Atoms {
			max += 4 * math.Pi * a.Radius * a.Radius
		}
		return area > 0 && area <= max*(1+1e-9)
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(77)),
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Intn(60))
			v[1] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
