package surface

import (
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/octree"
)

// ComposePose assembles the molecular surface of a receptor–ligand complex
// from the two molecules' already-sampled surfaces instead of re-sampling
// the merged molecule — the per-pose fast path of a docking sweep, where
// the receptor never moves and the ligand is placed at thousands of rigid
// poses.
//
// The construction is exact with respect to Sample's culling rule: a
// receptor point survives in the complex iff it is not strictly inside any
// other complex atom, and the receptor-internal part of that test was
// already applied when recQ was sampled, so only burial by posed-ligand
// atoms remains to check (and symmetrically for ligand points against
// receptor atoms). Ligand points and normals are carried through the rigid
// transform; quadrature weights are rotation/translation invariant.
//
// For a pure translation the result is numerically identical to
// Sample(Merge(rec, lig.Transform(pose)), opt). Under rotation the two
// differ at the surface-discretization level only: Sample re-tiles every
// posed ligand atom with the fixed world-frame icosphere, while
// ComposePose rotates the original tiling with the molecule. Both are
// equally valid quadratures of the same surface (the icosphere orientation
// is arbitrary); energies agree to the quadrature accuracy, not bitwise.
// See TestComposePose for both properties.
//
// recQ and ligQ must have been sampled with the same Options opt that is
// passed here (opt supplies the radius scale for the burial tests).
func ComposePose(name string, rec *molecule.Molecule, recQ []QPoint,
	lig *molecule.Molecule, ligQ []QPoint, pose geom.Rigid, opt Options) (*molecule.Molecule, []QPoint) {
	opt = opt.withDefaults()
	posed := lig.Transform(pose)
	cx := molecule.Merge(name, rec, posed)

	out := make([]QPoint, 0, len(recQ)+len(ligQ))

	// Receptor points: cull those buried by any posed-ligand atom.
	ligTree, ligMaxR := centerTree(posed, opt.RadiusScale)
	for i := range recQ {
		if buriedByAny(ligTree, posed, opt.RadiusScale, recQ[i].Pos, ligMaxR) {
			continue
		}
		out = append(out, recQ[i])
	}

	// Ligand points: rigidly transport, cull those buried by any receptor
	// atom.
	recTree, recMaxR := centerTree(rec, opt.RadiusScale)
	for i := range ligQ {
		p := pose.Apply(ligQ[i].Pos)
		if buriedByAny(recTree, rec, opt.RadiusScale, p, recMaxR) {
			continue
		}
		out = append(out, QPoint{
			Pos:    p,
			Normal: pose.ApplyVector(ligQ[i].Normal),
			Weight: ligQ[i].Weight,
		})
	}
	return cx, out
}

// centerTree builds an octree over the molecule's atom centers and returns
// it with the largest scaled radius (the burial query ball).
func centerTree(m *molecule.Molecule, scale float64) (*octree.Tree, float64) {
	centers := make([]geom.Vec3, m.N())
	maxR := 0.0
	for i := range m.Atoms {
		centers[i] = m.Atoms[i].Pos
		if r := m.Atoms[i].Radius * scale; r > maxR {
			maxR = r
		}
	}
	return octree.Build(centers, 0), maxR
}

// buriedByAny reports whether p lies strictly inside any atom of mol —
// the cross-molecule half of Sample's burial rule, where no atom is
// "self". The strictness threshold matches buried exactly so composed
// surfaces reproduce Sample's culling decisions.
func buriedByAny(tree *octree.Tree, mol *molecule.Molecule, scale float64, p geom.Vec3, maxR float64) bool {
	hit := false
	tree.ForEachInBall(p, maxR, func(ti int32) bool {
		a := &mol.Atoms[tree.Perm[ti]]
		r := a.Radius * scale
		if a.Pos.Dist2(p) < r*r*(1-1e-12) {
			hit = true
			return false
		}
		return true
	})
	return hit
}
