package surface

import (
	"errors"

	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/octree"
)

// ErrRotatedPose is returned by ComposePose (and PoseComposer.Compose) when
// the pose carries a non-identity rotation. Composition is only exact for
// pure translations; rotated poses must go through the full re-sample path
// (Sample of the merged molecule).
var ErrRotatedPose = errors.New("surface: pose carries a rotation; composed surfaces are exact only for pure translations")

// ComposePose assembles the molecular surface of a receptor–ligand complex
// from the two molecules' already-sampled surfaces instead of re-sampling
// the merged molecule — the per-pose fast path of a docking sweep, where
// the receptor never moves and the ligand is placed at thousands of rigid
// translations.
//
// Exactness contract: the pose must be a pure translation
// (geom.Rigid.IsTranslation — the rotation block is bitwise the identity);
// anything else returns ErrRotatedPose and the caller falls back to
// Sample(Merge(...)). Under that restriction the result is numerically
// identical to Sample(Merge(rec, lig.Transform(pose)), opt): a receptor
// point survives in the complex iff it is not strictly inside any other
// complex atom, and the receptor-internal part of that test was already
// applied when recQ was sampled, so only burial by posed-ligand atoms
// remains to check (and symmetrically for ligand points against receptor
// atoms). Ligand points translate rigidly with the very arithmetic Sample
// would use; normals and quadrature weights are translation invariant.
//
// A rotation would break the contract at the discretization level: Sample
// re-tiles every posed ligand atom with the fixed world-frame icosphere,
// while transporting the original tiling rotates it with the molecule. The
// two quadratures agree only to quadrature accuracy, which is why rotated
// poses are rejected instead of silently composed.
//
// recQ and ligQ must have been sampled with the same Options opt that is
// passed here (opt supplies the radius scale for the burial tests).
func ComposePose(name string, rec *molecule.Molecule, recQ []QPoint,
	lig *molecule.Molecule, ligQ []QPoint, pose geom.Rigid, opt Options) (*molecule.Molecule, []QPoint, error) {
	if !pose.IsTranslation() {
		return nil, nil, ErrRotatedPose
	}
	opt = opt.withDefaults()
	posed := lig.Transform(pose)
	cx := molecule.Merge(name, rec, posed)

	out := make([]QPoint, 0, len(recQ)+len(ligQ))

	// Receptor points: cull those buried by any posed-ligand atom.
	ligTree, ligMaxR := centerTree(posed, opt.RadiusScale)
	// Ligand points: rigidly transport, cull those buried by any receptor
	// atom.
	recTree, recMaxR := centerTree(rec, opt.RadiusScale)
	out = composeInto(out, rec, recQ, posed, ligQ, recTree, recMaxR, ligTree, ligMaxR, pose, opt)
	return cx, out, nil
}

// composeInto runs the two burial sweeps of ComposePose, appending
// surviving points to out. posed is the ligand already at its pose;
// ligTree/recTree are center octrees over posed and rec.
func composeInto(out []QPoint, rec *molecule.Molecule, recQ []QPoint,
	posed *molecule.Molecule, ligQ []QPoint,
	recTree *octree.Tree, recMaxR float64, ligTree *octree.Tree, ligMaxR float64,
	pose geom.Rigid, opt Options) []QPoint {
	for i := range recQ {
		if buriedByAny(ligTree, posed, opt.RadiusScale, recQ[i].Pos, ligMaxR) {
			continue
		}
		out = append(out, recQ[i])
	}
	for i := range ligQ {
		p := pose.Apply(ligQ[i].Pos)
		if buriedByAny(recTree, rec, opt.RadiusScale, p, recMaxR) {
			continue
		}
		out = append(out, QPoint{
			Pos:    p,
			Normal: ligQ[i].Normal, // translation: normals carry over
			Weight: ligQ[i].Weight,
		})
	}
	return out
}

// PoseComposer amortizes ComposePose across a sweep of translations of the
// same receptor/ligand pair: the receptor octree and the base-pose ligand
// octree are built once, and each Compose call only translates the ligand
// tree into reusable scratch storage and re-runs the burial sweeps. The
// result of Compose is identical to ComposePose for the same inputs.
type PoseComposer struct {
	rec, lig   *molecule.Molecule
	recQ, ligQ []QPoint
	opt        Options

	recTree *octree.Tree
	recMaxR float64
	ligBase *octree.Tree
	ligMaxR float64

	sc *ComposeScratch
}

// ComposeScratch is reusable backing storage for PoseComposer: the
// translated ligand tree and the output q-point buffer. A zero value is
// ready to use. Scratch is molecule independent, so one ComposeScratch can
// be recycled (e.g. via sync.Pool) across composers for different
// receptor/ligand pairs — but a q-point slice returned by Compose aliases
// the scratch and is only valid until the next Compose using the same
// scratch.
type ComposeScratch struct {
	posed *octree.Tree
	buf   []QPoint
}

// NewPoseComposer prepares a composer for sweeping lig over translations
// against rec. recQ and ligQ must have been sampled with opt. sc may be
// nil, in which case the composer allocates its own scratch.
func NewPoseComposer(rec *molecule.Molecule, recQ []QPoint,
	lig *molecule.Molecule, ligQ []QPoint, opt Options, sc *ComposeScratch) *PoseComposer {
	opt = opt.withDefaults()
	if sc == nil {
		sc = &ComposeScratch{}
	}
	pc := &PoseComposer{rec: rec, lig: lig, recQ: recQ, ligQ: ligQ, opt: opt, sc: sc}
	pc.recTree, pc.recMaxR = centerTree(rec, opt.RadiusScale)
	pc.ligBase, pc.ligMaxR = centerTree(lig, opt.RadiusScale)
	return pc
}

// Compose is ComposePose against the cached trees. The returned q-point
// slice aliases the composer's scratch buffer and is valid only until the
// next Compose call; callers that retain it across poses must copy.
func (pc *PoseComposer) Compose(name string, pose geom.Rigid) (*molecule.Molecule, []QPoint, error) {
	if !pose.IsTranslation() {
		return nil, nil, ErrRotatedPose
	}
	posed := pc.lig.Transform(pose)
	cx := molecule.Merge(name, pc.rec, posed)
	// Translating the base tree applies the same p + T arithmetic that
	// lig.Transform just ran, so the tree's points match posed bitwise and
	// the burial sweeps reproduce ComposePose's decisions exactly.
	pc.sc.posed = pc.ligBase.TransformInto(pc.sc.posed, pose)
	pc.sc.buf = composeInto(pc.sc.buf[:0], pc.rec, pc.recQ, posed, pc.ligQ,
		pc.recTree, pc.recMaxR, pc.sc.posed, pc.ligMaxR, pose, pc.opt)
	return cx, pc.sc.buf, nil
}

// centerTree builds an octree over the molecule's atom centers and returns
// it with the largest scaled radius (the burial query ball).
func centerTree(m *molecule.Molecule, scale float64) (*octree.Tree, float64) {
	centers := make([]geom.Vec3, m.N())
	maxR := 0.0
	for i := range m.Atoms {
		centers[i] = m.Atoms[i].Pos
		if r := m.Atoms[i].Radius * scale; r > maxR {
			maxR = r
		}
	}
	return octree.Build(centers, 0), maxR
}

// buriedByAny reports whether p lies strictly inside any atom of mol —
// the cross-molecule half of Sample's burial rule, where no atom is
// "self". The strictness threshold matches buried exactly so composed
// surfaces reproduce Sample's culling decisions.
func buriedByAny(tree *octree.Tree, mol *molecule.Molecule, scale float64, p geom.Vec3, maxR float64) bool {
	hit := false
	tree.ForEachInBall(p, maxR, func(ti int32) bool {
		a := &mol.Atoms[tree.Perm[ti]]
		r := a.Radius * scale
		if a.Pos.Dist2(p) < r*r*(1-1e-12) {
			hit = true
			return false
		}
		return true
	})
	return hit
}
