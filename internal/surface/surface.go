// Package surface samples Gaussian-quadrature points from the molecular
// surface — the set Q of "q-points" the paper's Born-radius integral
// (Eq. 4) is evaluated over.
//
// The paper obtains Q by triangulating the molecular surface and placing
// Dunavant quadrature points in each triangle. We reproduce that pipeline
// for the van-der-Waals union-of-spheres surface: every atom sphere is
// triangulated with a subdivided icosahedron, Dunavant points are placed in
// each (projected) triangle, and points buried inside any other atom are
// culled, leaving a quadrature of the exposed molecular surface with
// outward normals and area weights. This is the substitution documented in
// DESIGN.md for the authors' surface-generation toolchain.
package surface

import (
	"math"

	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/octree"
	"octgb/internal/quadrature"
)

// QPoint is one surface quadrature point: location, unit outward normal of
// the molecular surface, and quadrature weight (units of area, Å²).
type QPoint struct {
	Pos    geom.Vec3
	Normal geom.Vec3
	Weight float64
}

// Options controls surface sampling resolution.
type Options struct {
	// SubdivLevel is the icosphere subdivision level per atom
	// (0 → 20 triangles/atom). Default 1 (80 triangles).
	SubdivLevel int
	// Degree is the Dunavant rule degree (1–5). Default 1 (1 point per
	// triangle; the paper notes "a constant number of quadrature points per
	// triangle").
	Degree int
	// RadiusScale inflates atom radii before surface construction
	// (1.0 = van-der-Waals surface). Default 1.0.
	RadiusScale float64
}

func (o Options) withDefaults() Options {
	if o.SubdivLevel < 0 {
		o.SubdivLevel = 0
	}
	if o.Degree <= 0 {
		o.Degree = 1
	}
	if o.RadiusScale <= 0 {
		o.RadiusScale = 1
	}
	return o
}

// Default returns the default sampling options.
func Default() Options { return Options{SubdivLevel: 1, Degree: 1, RadiusScale: 1} }

// Sample generates the surface quadrature point set of mol.
func Sample(mol *molecule.Molecule, opt Options) []QPoint {
	q, _ := SampleOwned(mol, opt)
	return q
}

// SampleOwned is Sample additionally reporting, for every quadrature point,
// the index of the atom whose sphere it was placed on. Owners are what lets
// incremental (streaming) evaluation transport q-points rigidly with their
// parent atom when it moves: a point at atomPos + r·dir stays at the same
// offset under translation, and its normal and weight are translation
// invariant. Burial culling is decided at sampling time and not revisited
// by such transports (see engine.Session).
func SampleOwned(mol *molecule.Molecule, opt Options) ([]QPoint, []int32) {
	opt = opt.withDefaults()
	n := mol.N()
	if n == 0 {
		return nil, nil
	}

	mesh := quadrature.Icosphere(opt.SubdivLevel)
	rule := quadrature.Rule(opt.Degree)
	// Calibrate weights so an isolated unit sphere integrates to exactly 4π
	// (flat facets slightly under-tile the sphere).
	areaFix := 4 * math.Pi / mesh.TotalArea()

	// Precompute per-triangle unit directions and per-point weights on the
	// unit sphere; scale by r and r² per atom.
	type protoPoint struct {
		dir geom.Vec3
		w   float64 // weight on the unit sphere (sums to 4π)
	}
	protos := make([]protoPoint, 0, len(mesh.Tris)*len(rule))
	for i := range mesh.Tris {
		area := mesh.TriangleArea(i) * areaFix
		for _, p := range rule {
			protos = append(protos, protoPoint{
				dir: mesh.PointAt(i, p.A, p.B, p.C).Unit(),
				w:   p.W * area,
			})
		}
	}

	// Octree over atom centers for burial queries.
	centers := make([]geom.Vec3, n)
	maxR := 0.0
	for i, a := range mol.Atoms {
		centers[i] = a.Pos
		if r := a.Radius * opt.RadiusScale; r > maxR {
			maxR = r
		}
	}
	tree := octree.Build(centers, 0)

	out := make([]QPoint, 0, n*4)
	owners := make([]int32, 0, n*4)
	for i := range mol.Atoms {
		ai := &mol.Atoms[i]
		ri := ai.Radius * opt.RadiusScale
		for _, pp := range protos {
			p := ai.Pos.Add(pp.dir.Scale(ri))
			if buried(tree, mol, opt.RadiusScale, p, int32(i), maxR) {
				continue
			}
			out = append(out, QPoint{
				Pos:    p,
				Normal: pp.dir,
				Weight: pp.w * ri * ri,
			})
			owners = append(owners, int32(i))
		}
	}
	return out, owners
}

// buried reports whether point p (on atom self's sphere) lies strictly
// inside any other atom's sphere.
func buried(tree *octree.Tree, mol *molecule.Molecule, scale float64, p geom.Vec3, self int32, maxR float64) bool {
	hit := false
	tree.ForEachInBall(p, maxR, func(ti int32) bool {
		j := tree.Perm[ti]
		if j == self {
			return true
		}
		a := &mol.Atoms[j]
		r := a.Radius * scale
		if a.Pos.Dist2(p) < r*r*(1-1e-12) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// TotalArea returns the summed quadrature weight — the exposed molecular
// surface area in Å².
func TotalArea(q []QPoint) float64 {
	var s float64
	for i := range q {
		s += q[i].Weight
	}
	return s
}

// Positions extracts the point locations (used to build the q-point octree).
func Positions(q []QPoint) []geom.Vec3 {
	out := make([]geom.Vec3, len(q))
	for i := range q {
		out[i] = q[i].Pos
	}
	return out
}
