package surface

import (
	"errors"
	"math"
	"testing"

	"octgb/internal/geom"
	"octgb/internal/molecule"
)

// TestComposePoseTranslationExact: for a pure translation the composed
// complex surface must reproduce Sample(Merge(...)) point for point — same
// ordering, same culling decisions, same weights. PoseComposer must in turn
// reproduce ComposePose bitwise, including across reuses of its scratch.
func TestComposePoseTranslationExact(t *testing.T) {
	rec := molecule.GenerateProtein("rec", 600, 5)
	lig := molecule.GenerateProtein("lig", 120, 6)
	opt := Default()
	recQ := Sample(rec, opt)
	ligQ := Sample(lig, opt)

	// Place the ligand in contact with the receptor's flank so the
	// cross-burial culling actually fires.
	rb := rec.Bounds()
	pose := geom.Translation(geom.V(0.6*rb.HalfDiagonal(), 0, 0).Add(rb.Center()).Sub(lig.Bounds().Center()))

	cx, composed, err := ComposePose("cx", rec, recQ, lig, ligQ, pose, opt)
	if err != nil {
		t.Fatalf("ComposePose: %v", err)
	}
	ref := Sample(molecule.Merge("cx", rec, lig.Transform(pose)), opt)

	if got, want := TotalArea(composed), TotalArea(ref); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("composed area %.12g != sampled area %.12g", got, want)
	}
	if len(composed) != len(ref) {
		t.Fatalf("composed %d points, sampled %d", len(composed), len(ref))
	}
	for i := range composed {
		if composed[i].Pos.Dist2(ref[i].Pos) > 1e-18 {
			t.Fatalf("point %d position differs: %v vs %v", i, composed[i].Pos, ref[i].Pos)
		}
		if math.Abs(composed[i].Weight-ref[i].Weight) > 1e-15 {
			t.Fatalf("point %d weight differs", i)
		}
	}
	if cx.N() != rec.N()+lig.N() {
		t.Fatalf("complex has %d atoms, want %d", cx.N(), rec.N()+lig.N())
	}
	// The contact must have culled something relative to the isolated parts.
	if len(composed) >= len(recQ)+len(ligQ) {
		t.Fatalf("no cross-burial culling happened (pose not in contact?)")
	}

	// PoseComposer parity, twice over the same scratch (second pose at a
	// slightly different offset, then back, to prove scratch reuse is clean).
	pc := NewPoseComposer(rec, recQ, lig, ligQ, opt, &ComposeScratch{})
	poses := []geom.Rigid{pose, geom.Translation(pose.T.Add(geom.V(1.5, -0.5, 0.25))), pose}
	for k, ps := range poses {
		wantCx, wantQ, err := ComposePose("cx", rec, recQ, lig, ligQ, ps, opt)
		if err != nil {
			t.Fatalf("pose %d: ComposePose: %v", k, err)
		}
		gotCx, gotQ, err := pc.Compose("cx", ps)
		if err != nil {
			t.Fatalf("pose %d: PoseComposer.Compose: %v", k, err)
		}
		if len(gotQ) != len(wantQ) {
			t.Fatalf("pose %d: composer %d points, ComposePose %d", k, len(gotQ), len(wantQ))
		}
		for i := range gotQ {
			if gotQ[i] != wantQ[i] {
				t.Fatalf("pose %d point %d differs: %+v vs %+v", k, i, gotQ[i], wantQ[i])
			}
		}
		if gotCx.N() != wantCx.N() {
			t.Fatalf("pose %d: complex sizes differ", k)
		}
	}
}

// TestComposePoseRejectsRotation: any non-identity rotation violates the
// exactness contract and must surface as ErrRotatedPose from both the
// one-shot and the cached composer, so callers fall back to a full
// re-sample instead of silently getting a re-oriented quadrature.
func TestComposePoseRejectsRotation(t *testing.T) {
	rec := molecule.GenerateProtein("rec", 500, 9)
	lig := molecule.GenerateProtein("lig", 100, 10)
	opt := Default()
	recQ := Sample(rec, opt)
	ligQ := Sample(lig, opt)

	rb := rec.Bounds()
	pose := geom.RotationAxisAngle(geom.V(0, 1, 0), 0.7)
	pose.T = geom.V(0, rb.HalfDiagonal()+2, 0).Add(rb.Center())

	if _, _, err := ComposePose("cx", rec, recQ, lig, ligQ, pose, opt); !errors.Is(err, ErrRotatedPose) {
		t.Fatalf("ComposePose(rotated) err = %v, want ErrRotatedPose", err)
	}
	pc := NewPoseComposer(rec, recQ, lig, ligQ, opt, nil)
	if _, _, err := pc.Compose("cx", pose); !errors.Is(err, ErrRotatedPose) {
		t.Fatalf("PoseComposer.Compose(rotated) err = %v, want ErrRotatedPose", err)
	}
	// A pure translation still works on the same composer.
	if _, _, err := pc.Compose("cx", geom.Translation(pose.T)); err != nil {
		t.Fatalf("PoseComposer.Compose(translation) err = %v", err)
	}
}
