package surface

import (
	"math"
	"testing"

	"octgb/internal/geom"
	"octgb/internal/molecule"
)

// TestComposePoseTranslationExact: for a pure translation the composed
// complex surface must reproduce Sample(Merge(...)) point for point — same
// ordering, same culling decisions, same weights.
func TestComposePoseTranslationExact(t *testing.T) {
	rec := molecule.GenerateProtein("rec", 600, 5)
	lig := molecule.GenerateProtein("lig", 120, 6)
	opt := Default()
	recQ := Sample(rec, opt)
	ligQ := Sample(lig, opt)

	// Place the ligand in contact with the receptor's flank so the
	// cross-burial culling actually fires.
	rb := rec.Bounds()
	pose := geom.Translation(geom.V(0.6*rb.HalfDiagonal(), 0, 0).Add(rb.Center()).Sub(lig.Bounds().Center()))

	cx, composed := ComposePose("cx", rec, recQ, lig, ligQ, pose, opt)
	ref := Sample(molecule.Merge("cx", rec, lig.Transform(pose)), opt)

	if got, want := TotalArea(composed), TotalArea(ref); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("composed area %.12g != sampled area %.12g", got, want)
	}
	if len(composed) != len(ref) {
		t.Fatalf("composed %d points, sampled %d", len(composed), len(ref))
	}
	for i := range composed {
		if composed[i].Pos.Dist2(ref[i].Pos) > 1e-18 {
			t.Fatalf("point %d position differs: %v vs %v", i, composed[i].Pos, ref[i].Pos)
		}
		if math.Abs(composed[i].Weight-ref[i].Weight) > 1e-15 {
			t.Fatalf("point %d weight differs", i)
		}
	}
	if cx.N() != rec.N()+lig.N() {
		t.Fatalf("complex has %d atoms, want %d", cx.N(), rec.N()+lig.N())
	}
	// The contact must have culled something relative to the isolated parts.
	if len(composed) >= len(recQ)+len(ligQ) {
		t.Fatalf("no cross-burial culling happened (pose not in contact?)")
	}
}

// TestComposePoseRotationQuadratureLevel: under rotation the composed
// surface rotates the ligand's original icosphere tiling while Sample
// re-tiles in the world frame — two equally valid quadratures of the same
// surface. Area and (downstream) energies agree at the discretization
// level, not bitwise.
func TestComposePoseRotationQuadratureLevel(t *testing.T) {
	rec := molecule.GenerateProtein("rec", 500, 9)
	lig := molecule.GenerateProtein("lig", 100, 10)
	opt := Default()
	recQ := Sample(rec, opt)
	ligQ := Sample(lig, opt)

	rb := rec.Bounds()
	pose := geom.RotationAxisAngle(geom.V(0, 1, 0), 0.7)
	pose.T = geom.V(0, rb.HalfDiagonal()+2, 0).Add(rb.Center())

	_, composed := ComposePose("cx", rec, recQ, lig, ligQ, pose, opt)
	ref := Sample(molecule.Merge("cx", rec, lig.Transform(pose)), opt)

	got, want := TotalArea(composed), TotalArea(ref)
	if rel := math.Abs(got-want) / math.Abs(want); rel > 5e-3 {
		t.Fatalf("composed area %.6g vs sampled %.6g (rel %.2g > 5e-3)", got, want, rel)
	}

	// Weights must be preserved exactly through the rigid transform and
	// normals must stay unit length.
	for i := range composed {
		n := composed[i].Normal
		if math.Abs(n.Dot(n)-1) > 1e-12 {
			t.Fatalf("point %d normal not unit after rotation", i)
		}
	}
}
