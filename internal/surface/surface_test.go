package surface

import (
	"math"
	"testing"

	"octgb/internal/geom"
	"octgb/internal/molecule"
)

func singleAtom(r float64) *molecule.Molecule {
	return &molecule.Molecule{
		Name:  "one",
		Atoms: []molecule.Atom{{Pos: geom.V(0, 0, 0), Radius: r, Charge: -1}},
	}
}

func TestSingleAtomAreaExact(t *testing.T) {
	for _, r := range []float64{1.0, 1.52, 2.0} {
		q := Sample(singleAtom(r), Default())
		want := 4 * math.Pi * r * r
		got := TotalArea(q)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("r=%v: area %v, want %v", r, got, want)
		}
	}
}

func TestSingleAtomSolidAngle(t *testing.T) {
	// ∮ (r-x)·n̂/|r-x|³ dA = 4π for x inside the sphere — checks positions,
	// normals and weights together.
	q := Sample(singleAtom(1.5), Options{SubdivLevel: 2, Degree: 2})
	x := geom.V(0.2, 0.1, -0.3)
	var s float64
	for _, p := range q {
		d := p.Pos.Sub(x)
		s += p.Weight * d.Dot(p.Normal) / math.Pow(d.Norm(), 3)
	}
	if math.Abs(s-4*math.Pi) > 0.05 {
		t.Errorf("solid angle %v, want 4π", s)
	}
}

func TestBuriedAtomContributesNothing(t *testing.T) {
	// A small atom fully inside a big one has no exposed surface.
	m := &molecule.Molecule{Name: "buried", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 3.0},
		{Pos: geom.V(0.5, 0, 0), Radius: 1.0},
	}}
	q := Sample(m, Default())
	// All q-points must lie on the big sphere (radius 3 from origin).
	for _, p := range q {
		if math.Abs(p.Pos.Norm()-3.0) > 1e-9 {
			t.Fatalf("q-point on buried atom at %v", p.Pos)
		}
	}
	// Area equals the isolated big sphere's area (small atom adds nothing,
	// removes nothing).
	want := 4 * math.Pi * 9
	if got := TotalArea(q); math.Abs(got-want) > 1e-9*want {
		t.Errorf("area %v, want %v", got, want)
	}
}

func TestTwoOverlappingSpheresArea(t *testing.T) {
	// Two unit spheres at distance d<2: exposed area of each is the sphere
	// minus a cap. Total = 2·(4π − 2π(1−d/2)) = 8π − 4π(1−d/2) exactly
	// (spherical cap area 2πrh with h = 1−d/2 for equal radii r=1).
	d := 1.2
	m := &molecule.Molecule{Name: "pair", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1},
		{Pos: geom.V(d, 0, 0), Radius: 1},
	}}
	q := Sample(m, Options{SubdivLevel: 3, Degree: 2})
	h := 1 - d/2
	want := 2 * (4*math.Pi - 2*math.Pi*h)
	got := TotalArea(q)
	if math.Abs(got-want) > 0.03*want {
		t.Errorf("area %v, want %v (%.2f%% off)", got, want, 100*math.Abs(got-want)/want)
	}
}

func TestNormalsAreUnitAndOutward(t *testing.T) {
	m := molecule.GenerateProtein("s", 200, 3)
	q := Sample(m, Default())
	if len(q) == 0 {
		t.Fatal("no q-points")
	}
	c := m.Centroid()
	outward := 0
	for _, p := range q {
		if math.Abs(p.Normal.Norm()-1) > 1e-12 {
			t.Fatalf("non-unit normal %v", p.Normal)
		}
		if p.Normal.Dot(p.Pos.Sub(c)) > 0 {
			outward++
		}
	}
	// Most surface normals point away from the centroid (crevices on the
	// rugged blob legitimately produce some inward-facing ones).
	if frac := float64(outward) / float64(len(q)); frac < 0.6 {
		t.Errorf("only %.0f%% of normals point outward", frac*100)
	}
}

func TestQPointCountScaling(t *testing.T) {
	// q-points should be O(surface atoms), far fewer than atoms × protos.
	m := molecule.GenerateProtein("p", 3000, 17)
	q := Sample(m, Default())
	perAtom := float64(len(q)) / 3000
	if perAtom < 0.5 || perAtom > 60 {
		t.Errorf("%.1f q-points per atom out of plausible range", perAtom)
	}
	// Interior culling happened: a fully exposed suite would give
	// 80 tris × 1 pt = 80 per atom.
	if perAtom > 70 {
		t.Errorf("no culling apparent: %.1f per atom", perAtom)
	}
}

func TestWeightsPositive(t *testing.T) {
	m := molecule.GenerateProtein("w", 500, 23)
	for _, p := range Sample(m, Default()) {
		if p.Weight <= 0 {
			t.Fatalf("non-positive weight %v", p.Weight)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	q1 := Sample(singleAtom(1), Options{})
	q2 := Sample(singleAtom(1), Options{SubdivLevel: 0, Degree: 1, RadiusScale: 1})
	if len(q1) != len(q2) {
		t.Errorf("zero-value options differ from explicit defaults: %d vs %d", len(q1), len(q2))
	}
}

func BenchmarkSample2000Atoms(b *testing.B) {
	m := molecule.GenerateProtein("b", 2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sample(m, Default())
	}
}
