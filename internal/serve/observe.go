package serve

import (
	"net/http"
	"net/http/pprof"
	"time"

	"octgb/internal/core"
	"octgb/internal/obs"
)

// Metric names and help strings recorded by the serving layer (full
// inventory in DESIGN.md §10).
const (
	reqMetric   = "octgb_serve_request_seconds"
	reqHelp     = "End-to-end request latency by endpoint, admission rejects excluded."
	queueMetric = "octgb_serve_queue_wait_seconds"
	queueHelp   = "Time an admitted request spent queued before a worker picked it up."
	stageMetric = "octgb_serve_stage_seconds"
	stageHelp   = "Per-stage evaluation time: surface sampling, octree+Born prepare, E_pol eval, coalesced batch runs."
)

// serveObs holds the serving layer's pre-resolved instruments so the
// request path pays one histogram lookup per server, not per request. The
// zero value (Config.Observe nil) is fully inert: every histogram is nil
// (Observe is a no-op) and span recording is skipped, so the
// observability-off path performs no observability allocations.
type serveObs struct {
	ob           *obs.Observer
	reqEnergy    *obs.Histogram
	reqSweep     *obs.Histogram
	reqStream    *obs.Histogram
	queueWait    *obs.Histogram
	surface      *obs.Histogram
	prepare      *obs.Histogram
	evalF64      *obs.Histogram
	evalF32      *obs.Histogram
	batch        *obs.Histogram
	streamCreate *obs.Histogram
	streamFrame  *obs.Histogram
}

func newServeObs(ob *obs.Observer) serveObs {
	if ob == nil {
		return serveObs{}
	}
	return serveObs{
		ob:        ob,
		reqEnergy: ob.Histogram(reqMetric, `endpoint="energy"`, reqHelp),
		reqSweep:  ob.Histogram(reqMetric, `endpoint="sweep"`, reqHelp),
		reqStream: ob.Histogram(reqMetric, `endpoint="stream"`, reqHelp),
		queueWait: ob.Histogram(queueMetric, "", queueHelp),
		surface:   ob.Histogram(stageMetric, `stage="surface"`, stageHelp),
		prepare:   ob.Histogram(stageMetric, `stage="prepare"`, stageHelp),
		evalF64:   ob.Histogram(stageMetric, `stage="eval",precision="f64"`, stageHelp),
		evalF32:   ob.Histogram(stageMetric, `stage="eval",precision="f32"`, stageHelp),
		batch:     ob.Histogram(stageMetric, `stage="batch"`, stageHelp),
		// Stream stages carry mode="stream" so dashboards can split the
		// incremental per-frame latency series from one-shot evaluation.
		streamCreate: ob.Histogram(stageMetric, `stage="create",mode="stream"`, stageHelp),
		streamFrame:  ob.Histogram(stageMetric, `stage="frame",mode="stream"`, stageHelp),
	}
}

// evalHist returns the eval-stage histogram of the given storage tier, so
// /metrics separates f64 and f32 evaluation latency series.
func (so *serveObs) evalHist(p core.Precision) *obs.Histogram {
	if p == core.Float32 {
		return so.evalF32
	}
	return so.evalF64
}

// spanID mints a request's root span ID up front so child stages can parent
// under it before the request's total duration is known. 0 when
// observability is off.
func (so *serveObs) spanID() uint64 {
	if so.ob == nil {
		return 0
	}
	return so.ob.NextID()
}

// request closes a completed request: the endpoint latency histogram plus
// the root span minted by spanID. name must be a constant ("serve.energy",
// "serve.sweep") so the off path builds no strings.
func (so *serveObs) request(h *obs.Histogram, name string, id uint64, start time.Time) {
	if so.ob == nil {
		return
	}
	d := time.Since(start)
	h.Observe(d)
	so.ob.Trace.RecordID(id, name, 0, 0, start, d)
}

// stage records one already-measured child stage: a histogram observation
// (h may be nil for span-only stages) and a span under parent.
func (so *serveObs) stage(h *obs.Histogram, name string, parent uint64, start time.Time, d time.Duration) {
	if so.ob == nil {
		return
	}
	if d < 0 {
		// Failed batches carry a zero start time; don't skew the sums.
		d = 0
	}
	h.Observe(d)
	so.ob.Record(name, parent, 0, start, d)
}

// mountDebug exposes the observability endpoints on the server mux:
// Prometheus metrics, the Chrome trace_event dump, and the pprof family.
// They are mounted raw — not through wrap — so scrapes and profiles keep
// working while the server drains.
func (s *Server) mountDebug(ob *obs.Observer) {
	s.mux.Handle("/metrics", ob.Reg.Handler())
	s.mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = ob.Trace.WriteTrace(w)
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
