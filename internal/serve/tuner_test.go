package serve

import (
	"net/http"
	"testing"
	"time"

	"octgb/internal/molecule"
	"octgb/internal/obs"
	"octgb/internal/testutil"
)

// histOf builds a window snapshot whose observations are the given
// durations — synthetic tuner inputs with known quantiles.
func histOf(ds ...time.Duration) obs.HistSnapshot {
	h := &obs.Histogram{}
	for _, d := range ds {
		h.Observe(d)
	}
	return h.Snapshot()
}

// slowWindow is a breach window: p99 well over a 100ms SLO with the queue
// wait carrying most of it.
func slowWindow() TunerInputs {
	return TunerInputs{
		Elapsed:   time.Second,
		Completed: 50,
		Request:   histOf(300*time.Millisecond, 350*time.Millisecond, 400*time.Millisecond),
		Queue:     histOf(250*time.Millisecond, 300*time.Millisecond, 350*time.Millisecond),
	}
}

// fastWindow is a slack window: p99 far under the SLO.
func fastWindow() TunerInputs {
	return TunerInputs{
		Elapsed:   time.Second,
		Completed: 50,
		Request:   histOf(5*time.Millisecond, 6*time.Millisecond, 7*time.Millisecond),
		Queue:     histOf(time.Millisecond),
	}
}

func testTunerCfg() TunerConfig {
	return TunerConfig{SLO: SLO{P99: 100 * time.Millisecond, MinQPS: 10}}.
		withDefaults(2, 64, 5*time.Millisecond)
}

// TestTunerControlLaw walks the AIMD law: hysteresis holds the first
// breach, the second tightens the queue and arms shedding, floors hold
// under further pressure, and sustained slack relaxes back toward the
// rails.
func TestTunerControlLaw(t *testing.T) {
	cfg := testTunerCfg()
	tn := NewTuner(cfg, Knobs{BatchWindow: 5 * time.Millisecond, QueueLimit: 64})

	d := tn.Step(slowWindow())
	if d.Action != "hold" {
		t.Fatalf("first breach acted immediately: %s", d)
	}
	if d.Knobs.QueueLimit != 64 || d.Knobs.ShedLatency != 0 {
		t.Fatalf("knobs moved inside hysteresis: %s", d)
	}

	d = tn.Step(slowWindow())
	if d.Action != "tighten_queue" {
		t.Fatalf("second breach: action %q, want tighten_queue (%s)", d.Action, d)
	}
	if d.Knobs.QueueLimit != 48 {
		t.Fatalf("queue limit = %d, want 48 (¾ of 64)", d.Knobs.QueueLimit)
	}
	if d.Knobs.ShedLatency != 50*time.Millisecond {
		t.Fatalf("shed = %v, want 50ms (half the SLO budget)", d.Knobs.ShedLatency)
	}

	// Keep breaching: the queue walks down but never below MinQueue, the
	// shed threshold never below an eighth of the budget.
	for i := 0; i < 20; i++ {
		d = tn.Step(slowWindow())
	}
	if d.Knobs.QueueLimit < cfg.MinQueue {
		t.Fatalf("queue limit %d fell below floor %d", d.Knobs.QueueLimit, cfg.MinQueue)
	}
	if d.Knobs.ShedLatency < cfg.SLO.P99/8 {
		t.Fatalf("shed %v fell below floor %v", d.Knobs.ShedLatency, cfg.SLO.P99/8)
	}

	// Sustained slack relaxes: queue grows again, shed loosens.
	tight := d.Knobs
	tn.Step(fastWindow())
	d = tn.Step(fastWindow())
	if d.Action != "relax" {
		t.Fatalf("sustained slack: action %q, want relax (%s)", d.Action, d)
	}
	if d.Knobs.QueueLimit <= tight.QueueLimit || d.Knobs.ShedLatency <= tight.ShedLatency {
		t.Fatalf("relax did not loosen: %+v -> %+v", tight, d.Knobs)
	}
	// Relaxation is bounded by the rails.
	for i := 0; i < 40; i++ {
		tn.Step(fastWindow())
		d = tn.Step(fastWindow())
	}
	if d.Knobs.QueueLimit > cfg.MaxQueue || d.Knobs.ShedLatency > cfg.SLO.P99 {
		t.Fatalf("relax overshot the rails: %+v", d.Knobs)
	}
}

// TestTunerEvalDominatedWidensBatch: when the breach is evaluation-bound
// (queue wait is a small share of the request latency), admission can't
// help — the tuner widens the batch window for coalescing capacity.
func TestTunerEvalDominatedWidensBatch(t *testing.T) {
	tn := NewTuner(testTunerCfg(), Knobs{BatchWindow: 5 * time.Millisecond, QueueLimit: 64})
	evalBound := TunerInputs{
		Elapsed:   time.Second,
		Completed: 20,
		Request:   histOf(300*time.Millisecond, 400*time.Millisecond),
		Queue:     histOf(2 * time.Millisecond),
	}
	tn.Step(evalBound)
	d := tn.Step(evalBound)
	if d.Action != "widen_batch" {
		t.Fatalf("eval-bound breach: action %q, want widen_batch (%s)", d.Action, d)
	}
	if d.Knobs.BatchWindow != 10*time.Millisecond {
		t.Fatalf("batch window = %v, want 10ms (doubled)", d.Knobs.BatchWindow)
	}
	if d.Knobs.QueueLimit != 64 {
		t.Fatalf("queue limit moved on an eval-bound breach: %d", d.Knobs.QueueLimit)
	}
}

// TestTunerIdleWindowHoldsStreaks: an empty window records "idle", moves
// nothing, and does not launder an in-progress breach streak.
func TestTunerIdleWindowHoldsStreaks(t *testing.T) {
	tn := NewTuner(testTunerCfg(), Knobs{BatchWindow: 5 * time.Millisecond, QueueLimit: 64})
	tn.Step(slowWindow())
	d := tn.Step(TunerInputs{Elapsed: time.Second})
	if d.Action != "idle" || d.Knobs.QueueLimit != 64 {
		t.Fatalf("idle window: %s", d)
	}
	d = tn.Step(slowWindow())
	if d.Action != "tighten_queue" {
		t.Fatalf("breach streak did not survive the idle window: %s", d)
	}
}

// TestTunerDeterministicLog: two tuners fed the identical window sequence
// produce byte-identical decision logs — the replay contract the loadgen
// simtime test pins end to end.
func TestTunerDeterministicLog(t *testing.T) {
	seq := []TunerInputs{
		slowWindow(), slowWindow(), slowWindow(),
		{Elapsed: time.Second},
		fastWindow(), fastWindow(), slowWindow(), fastWindow(), fastWindow(),
	}
	run := func() []string {
		tn := NewTuner(testTunerCfg(), Knobs{BatchWindow: 5 * time.Millisecond, QueueLimit: 64})
		for _, in := range seq {
			tn.Step(in)
		}
		var out []string
		for _, d := range tn.Log() {
			out = append(out, d.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(seq) {
		t.Fatalf("log has %d entries for %d windows", len(a), len(seq))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestServerShedLoad drives the shed path through HTTP: with the threshold
// armed, a deep queue and a high observed mean evaluation time, a new
// energy request is turned away 429 with the shed_load token (and the
// tuned queue limit rejects below the channel's physical capacity).
func TestServerShedLoad(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 1, Threads: 1, MaxQueue: 8})

	// Park the lone worker and stack two queued items so depth >= workers.
	block := make(chan struct{})
	defer close(block)
	if err := s.submit(func() { <-block }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}

	// Pretend history: evaluations average 1s, shed anything estimated
	// over 100ms.
	s.metrics.evals.Store(1)
	s.metrics.evalNS.Store(int64(time.Second))
	s.applyKnobs(Knobs{BatchWindow: 5 * time.Millisecond, QueueLimit: 8, ShedLatency: 100 * time.Millisecond})

	mol := molecule.GenerateProtein("shed", 60, 2)
	var errResp ErrorResponse
	if code := postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Molecule: FromMolecule(mol)}, &errResp); code != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d (%+v)", code, errResp)
	}
	if errResp.Error != "shed_load" {
		t.Fatalf("shed token %q, want shed_load", errResp.Error)
	}
	if st := s.snapshot(); st.Admission.ShedLoad != 1 {
		t.Fatalf("shed counter = %d, want 1", st.Admission.ShedLoad)
	}

	// A tuned queue limit below the physical capacity rejects queue_full.
	s.applyKnobs(Knobs{BatchWindow: 5 * time.Millisecond, QueueLimit: 2, ShedLatency: 0})
	if code := postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Molecule: FromMolecule(mol)}, &errResp); code != http.StatusTooManyRequests {
		t.Fatalf("limited request: status %d", code)
	}
	if errResp.Error != "queue_full" {
		t.Fatalf("limited token %q, want queue_full", errResp.Error)
	}
}

// TestServerTunerLoop boots a server with an unmeetable SLO and checks the
// live control loop reacts: decisions accumulate, a tighten lands, and the
// knobs published to the admission atomics moved off their configured
// defaults. /stats carries the tuner block.
func TestServerTunerLoop(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{
		Workers:  1,
		Threads:  1,
		MaxQueue: 32,
		Tuner: &TunerConfig{
			SLO:      SLO{P99: time.Millisecond, MinQPS: 1},
			Interval: 25 * time.Millisecond,
		},
	})
	if s.cfg.Observe == nil {
		t.Fatal("tuner config did not promote an observer")
	}

	mol := molecule.GenerateProtein("tune", 150, 4)
	deadline := time.Now().Add(30 * time.Second)
	tightened := false
	for time.Now().Before(deadline) && !tightened {
		var resp EnergyResponse
		if code := postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Molecule: FromMolecule(mol)}, &resp); code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("energy status %d", code)
		}
		for _, d := range s.TunerDecisions() {
			if d.Action == "tighten_queue" || d.Action == "widen_batch" {
				tightened = true
			}
		}
	}
	if !tightened {
		t.Fatalf("tuner never tightened under a 1ms SLO; log: %v", s.TunerDecisions())
	}
	k := s.CurrentKnobs()
	if k.ShedLatency == 0 {
		t.Fatalf("shedding never armed: %+v", k)
	}

	var st StatsSnapshot
	if code := doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.Tuner == nil || st.Tuner.Decisions == 0 || st.Tuner.LastDecision == "" {
		t.Fatalf("/stats tuner block missing or empty: %+v", st.Tuner)
	}
	if st.Tuner.SLO.P99 != time.Millisecond {
		t.Fatalf("/stats tuner SLO %+v", st.Tuner.SLO)
	}
}
