package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"octgb/internal/engine"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// composeScratchPool recycles the composed-surface scratch (translated
// ligand octree + q-point buffer) across batch flushes. The scratch is
// molecule independent, so a batch for any receptor/ligand pair can reuse
// storage left behind by another; without the pool every flush reallocated
// it from scratch. Scratch is checked back in only after the batch's last
// pose — the q-points handed to each per-pose Problem alias it.
var composeScratchPool = sync.Pool{
	New: func() any { return &surface.ComposeScratch{} },
}

// sweepWaiter is one /v1/sweep request parked in a pending batch.
type sweepWaiter struct {
	ctx      context.Context
	reqID    string
	poses    []geom.Rigid
	queuedAt time.Time
	span     uint64            // request root span ID (0 with observability off)
	out      chan sweepOutcome // buffered; the batch runner never blocks on it
}

// sweepOutcome is one waiter's share of a batch run.
type sweepOutcome struct {
	energies      []float64
	deltas        []float64
	eRec, eLig    float64
	cache         string
	batchRequests int
	batchPoses    int
	startedAt     time.Time
	surfaceMS     float64
	prepareMS     float64
	evalMS        float64
	err           error
}

// pendingSweep is a batch being coalesced: every waiter shares the same
// receptor/ligand content and options (the batch key guarantees it), so
// the receptor and ligand are prepared once and each pose only pays for
// its own complex.
type pendingSweep struct {
	key     string
	rec     *molecule.Molecule // nil for receptor-free sweeps
	lig     *molecule.Molecule
	opts    evalOpts
	exact   bool
	timer   *time.Timer // window flush; stopped when Shutdown flushes early
	waiters []*sweepWaiter
}

// sweepKey identifies a coalescible batch: both molecules' content hashes
// plus every parameter that shapes the evaluation.
func sweepKey(rec, lig *molecule.Molecule, o evalOpts, exact bool) string {
	recHash := "-"
	if rec != nil {
		recHash = rec.HashString()
	}
	return fmt.Sprintf("%s|%s|b%g|e%g|a%v|s%d|d%d|r%g|x%v",
		recHash, lig.HashString(), o.bornEps, o.epolEps, o.approx,
		o.surf.SubdivLevel, o.surf.Degree, o.surf.RadiusScale, exact)
}

// enqueueSweep parks the waiter on the batch for its key, opening the
// batch (and arming its flush timer) if it is the first arrival.
func (s *Server) enqueueSweep(rec, lig *molecule.Molecule, o evalOpts, exact bool, wt *sweepWaiter) {
	key := sweepKey(rec, lig, o, exact)
	s.pendingMu.Lock()
	b, ok := s.pending[key]
	if !ok {
		b = &pendingSweep{key: key, rec: rec, lig: lig, opts: o, exact: exact}
		s.pending[key] = b
		// The window is the tuner's knob, sampled when the batch opens:
		// wider windows coalesce more under load, narrower ones cap the
		// latency a lone sweep pays waiting for company.
		b.timer = time.AfterFunc(s.batchWindow(), func() { s.flushSweep(key) })
	}
	b.waiters = append(b.waiters, wt)
	s.pendingMu.Unlock()
}

// flushAllPending closes every open batch window immediately — the
// Shutdown path, where waiting out BatchWindow would stall the drain (and,
// with a long window, leave armed timers firing after the workers are
// gone). Stopping the timer first makes the flush single-shot in the
// common case; a timer that already fired is harmless because flushSweep
// is idempotent (the second call finds no pending entry).
func (s *Server) flushAllPending() {
	s.pendingMu.Lock()
	keys := make([]string, 0, len(s.pending))
	for key, b := range s.pending {
		if b.timer != nil {
			b.timer.Stop()
		}
		keys = append(keys, key)
	}
	s.pendingMu.Unlock()
	for _, key := range keys {
		s.flushSweep(key)
	}
}

// flushSweep closes the batch window for key and hands the batch to the
// worker pool. Its requests were already admitted, so a full queue blocks
// the flush goroutine rather than rejecting; if the server stopped in the
// meantime every waiter is failed (their handlers are gone by then anyway
// — Shutdown drains handlers before stopping workers).
func (s *Server) flushSweep(key string) {
	s.pendingMu.Lock()
	b := s.pending[key]
	delete(s.pending, key)
	s.pendingMu.Unlock()
	if b == nil {
		return
	}
	if !s.submitBatch(func() { s.runSweep(b) }) {
		for _, wt := range b.waiters {
			wt.out <- sweepOutcome{err: errDraining}
		}
	}
}

// runSweep executes one coalesced batch on a worker: prepare the receptor
// and ligand through the cache once, evaluate their isolated energies
// once, then score every waiter's poses. By default each pose's complex
// surface is composed from the cached parts (surface.PoseComposer); the
// octrees and Born radii of the complex are rebuilt per pose because they
// depend on the merged geometry.
func (s *Server) runSweep(b *pendingSweep) {
	started := time.Now()
	totalPoses := 0
	for _, wt := range b.waiters {
		totalPoses += len(wt.poses)
	}
	s.metrics.batchesRun.Add(1)
	s.metrics.batchedRequests.Add(int64(len(b.waiters)))
	s.metrics.batchedPoses.Add(int64(totalPoses))

	fail := func(err error) {
		for _, wt := range b.waiters {
			wt.out <- sweepOutcome{err: err, startedAt: started}
		}
	}

	// Shared preprocessing: ligand (always) and receptor (if present)
	// through the prepared cache, plus their isolated energies for deltas.
	eo := s.engineOpts(b.opts)
	ligB, ligSrc, err := s.cache.get(cacheKey(b.lig, b.opts), func() (*built, error) {
		return s.buildPrepared(b.lig, b.opts)
	})
	if err != nil {
		fail(fmt.Errorf("prepare ligand: %w", err))
		return
	}
	ligRep, err := ligB.prep.EvalEpol(eo)
	if err != nil {
		fail(fmt.Errorf("ligand energy: %w", err))
		return
	}
	cache := "ligand:" + string(ligSrc)
	var recB *built
	var eRec float64
	if b.rec != nil {
		var recSrc cacheSource
		recB, recSrc, err = s.cache.get(cacheKey(b.rec, b.opts), func() (*built, error) {
			return s.buildPrepared(b.rec, b.opts)
		})
		if err != nil {
			fail(fmt.Errorf("prepare receptor: %w", err))
			return
		}
		recRep, err := recB.prep.EvalEpol(eo)
		if err != nil {
			fail(fmt.Errorf("receptor energy: %w", err))
			return
		}
		eRec = recRep.Energy
		cache = "receptor:" + string(recSrc) + " " + cache
	}

	// One composer per batch: the receptor octree and the base-pose ligand
	// octree are built once here instead of once per pose, over pooled
	// scratch that survives across flushes.
	var pc *surface.PoseComposer
	if b.rec != nil && !b.exact {
		sc := composeScratchPool.Get().(*surface.ComposeScratch)
		defer composeScratchPool.Put(sc)
		pc = surface.NewPoseComposer(b.rec, recB.prep.Pr.QPts, b.lig, ligB.prep.Pr.QPts, b.opts.surf, sc)
	}

	for _, wt := range b.waiters {
		out := sweepOutcome{
			eRec:          eRec,
			eLig:          ligRep.Energy,
			cache:         cache,
			batchRequests: len(b.waiters),
			batchPoses:    totalPoses,
			startedAt:     started,
		}
		out.energies = make([]float64, 0, len(wt.poses))
		if b.rec != nil {
			out.deltas = make([]float64, 0, len(wt.poses))
		}
		for _, pose := range wt.poses {
			if wt.ctx.Err() != nil {
				s.metrics.canceled.Add(1)
				out.err = wt.ctx.Err()
				break
			}
			e, tm, err := s.evalPose(b, pc, pose)
			if err != nil {
				out.err = err
				break
			}
			out.surfaceMS += tm.SurfaceMS
			out.prepareMS += tm.PrepareMS
			out.evalMS += tm.EvalMS
			out.energies = append(out.energies, e)
			if b.rec != nil {
				out.deltas = append(out.deltas, e-eRec-ligRep.Energy)
			}
		}
		wt.out <- out
	}
	s.sobs.stage(s.sobs.batch, "serve.batch", 0, started, time.Since(started))
}

// evalPose scores one pose: assemble the complex (composed or re-sampled
// surface), run the Born phase, evaluate E_pol. pc is the batch's cached
// composer (nil for receptor-free or exact sweeps); a pose it rejects for
// carrying a rotation falls back to the exact Merge + full-sample path,
// which is valid for any rigid transform.
func (s *Server) evalPose(b *pendingSweep, pc *surface.PoseComposer, pose geom.Rigid) (float64, TimingsJSON, error) {
	var tm TimingsJSON
	var pr *engine.Problem
	t0 := time.Now()
	composed := false
	if pc != nil {
		cx, qpts, err := pc.Compose("complex", pose)
		switch {
		case err == nil:
			pr = engine.NewProblemFromSurface(cx, qpts)
			composed = true
		case errors.Is(err, surface.ErrRotatedPose):
			// fall through to the exact path below
		default:
			return 0, tm, err
		}
	}
	if !composed {
		if b.rec == nil {
			pr = engine.NewProblem(b.lig.Transform(pose), b.opts.surf)
		} else {
			cx := molecule.Merge("complex", b.rec, b.lig.Transform(pose))
			pr = engine.NewProblem(cx, b.opts.surf)
		}
	}
	t1 := time.Now()
	p, err := engine.Prepare(pr, s.engineOpts(b.opts))
	if err != nil {
		return 0, tm, err
	}
	t2 := time.Now()
	rep, err := p.EvalEpol(s.engineOpts(b.opts))
	if err != nil {
		return 0, tm, err
	}
	t3 := time.Now()
	tm.SurfaceMS = msBetween(t0, t1)
	tm.PrepareMS = msBetween(t1, t2)
	tm.EvalMS = msBetween(t2, t3)
	s.metrics.surfaceNS.Add(t1.Sub(t0).Nanoseconds())
	s.metrics.prepareNS.Add(t2.Sub(t1).Nanoseconds())
	s.recordEval(b.opts.prec, t3.Sub(t2).Nanoseconds())
	s.sobs.stage(s.sobs.surface, "serve.surface", 0, t0, t1.Sub(t0))
	s.sobs.stage(s.sobs.prepare, "serve.prepare", 0, t1, t2.Sub(t1))
	s.sobs.stage(s.sobs.evalHist(b.opts.prec), "serve.eval", 0, t2, t3.Sub(t2))
	return rep.Energy, tm, nil
}
