package serve

import (
	"fmt"
	"time"

	"octgb/internal/obs"
)

// SLO is an explicit service-level objective for the admitted request
// stream: the p99 end-to-end latency the tier must stay under while
// admitting at least MinQPS requests per second. The tuner trades the two
// off deliberately — shedding load lowers p99 and costs throughput,
// widening the batch window buys throughput and costs latency — so both
// sides of the objective are stated instead of implied.
type SLO struct {
	// P99 is the target 99th-percentile request latency for admitted
	// requests (queue wait + evaluation).
	P99 time.Duration `json:"p99"`
	// MinQPS is the admitted-throughput floor in requests per second.
	MinQPS float64 `json:"min_qps"`
}

// TunerConfig configures the closed-loop admission tuner. The tuner reads
// the serving layer's own latency histograms (the obs layer PR 5 added —
// queue wait and per-endpoint request latency) as window diffs every
// Interval and adjusts three knobs against the SLO: the sweep batch
// window, the effective submission-queue depth, and the shed-load
// threshold. Decisions use integer/bucket arithmetic only and are appended
// to a deterministic decision log, so a replayed trace produces an
// identical log (pinned by loadgen's determinism tests under simtime).
type TunerConfig struct {
	// SLO is the objective; a zero P99 disables the tuner.
	SLO SLO
	// Interval is how often the control loop samples and decides
	// (default 1s of wall time; in simtime runs, 1s of virtual time).
	Interval time.Duration
	// Hysteresis is how many consecutive breach (or slack) intervals must
	// accumulate before the tuner acts (default 2). One noisy window never
	// moves a knob.
	Hysteresis int
	// MinQueue / MaxQueue bound the effective queue-depth knob
	// (defaults: 2×workers and the configured MaxQueue).
	MinQueue, MaxQueue int
	// MinBatchWindow / MaxBatchWindow bound the sweep batch-window knob
	// (defaults: 1ms and max(4×configured window, SLO.P99/4)).
	MinBatchWindow, MaxBatchWindow time.Duration
}

func (c TunerConfig) withDefaults(workers, maxQueue int, batchWindow time.Duration) TunerConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.MinQueue <= 0 {
		c.MinQueue = 2 * workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = maxQueue
	}
	if c.MinQueue > c.MaxQueue {
		c.MinQueue = c.MaxQueue
	}
	if c.MinBatchWindow <= 0 {
		c.MinBatchWindow = time.Millisecond
	}
	if c.MaxBatchWindow <= 0 {
		c.MaxBatchWindow = 4 * batchWindow
		if q := c.SLO.P99 / 4; q > c.MaxBatchWindow {
			c.MaxBatchWindow = q
		}
	}
	return c
}

// Knobs are the tunable admission-control parameters. The server reads
// them through atomics on every admission decision; the tuner owns writes.
type Knobs struct {
	// BatchWindow is how long a sweep batch coalesces before flushing.
	// Wider windows merge more requests into one shared-prepare run
	// (throughput ↑) at up to one window of added latency per request.
	BatchWindow time.Duration `json:"batch_window"`
	// QueueLimit is the effective submission-queue depth: admissions past
	// it are rejected 429 even though the channel has capacity. Shorter
	// queues bound queue wait directly (Little's law) at the risk of
	// idling workers between bursts.
	QueueLimit int `json:"queue_limit"`
	// ShedLatency sheds load early: an arrival whose estimated queue wait
	// (depth/workers × observed mean evaluation) exceeds it is rejected
	// with shed_load before it can blow the latency budget of everything
	// behind it. Zero disables shedding.
	ShedLatency time.Duration `json:"shed_latency"`
}

// TunerInputs is one control window's observations: snapshot diffs of the
// latency histograms plus the admission counters accumulated during the
// window. Both the live server loop and the loadgen virtual-time simulator
// construct these, which is what makes the decision sequence replayable.
type TunerInputs struct {
	// Elapsed is the window length (wall or virtual).
	Elapsed time.Duration
	// Completed / Rejected / Shed are the window's admission counters.
	Completed, Rejected, Shed uint64
	// Request is the window diff of the pooled request-latency histogram
	// (all endpoints), Queue the diff of the queue-wait histogram.
	Request, Queue obs.HistSnapshot
}

// Decision is one tuner step's outcome, recorded in the decision log. The
// String form is the replay contract: two runs over the same trace must
// produce byte-identical logs.
type Decision struct {
	Step        int           `json:"step"`
	P99         time.Duration `json:"p99"`
	QueueP99    time.Duration `json:"queue_p99"`
	AdmittedQPS float64       `json:"admitted_qps"`
	Shed        uint64        `json:"shed"`
	Action      string        `json:"action"`
	Reason      string        `json:"reason"`
	Knobs       Knobs         `json:"knobs"`
}

// String renders the decision in the fixed format the determinism tests
// compare. AdmittedQPS is printed at fixed precision so float formatting
// can never make two identical runs diverge textually.
func (d Decision) String() string {
	return fmt.Sprintf("step=%d p99=%v queue_p99=%v qps=%.3f shed=%d action=%s batch=%v queue=%d shed_at=%v reason=%q",
		d.Step, d.P99, d.QueueP99, d.AdmittedQPS, d.Shed, d.Action,
		d.Knobs.BatchWindow, d.Knobs.QueueLimit, d.Knobs.ShedLatency, d.Reason)
}

// Tuner is the closed-loop admission controller: a pure, deterministic
// state machine over window observations. It is not safe for concurrent
// use — the server serializes Step calls on its control goroutine, and the
// simulator is single-threaded.
//
// The control law is additive-increase/multiplicative-decrease with
// hysteresis, split by where the latency lives:
//
//   - Sustained p99 breach with the queue dominating (queue-wait p99 over
//     half the request p99): the backlog is the problem — shrink the
//     effective queue to ¾ and arm/tighten the shed threshold at half the
//     SLO budget, so bursts are turned away instead of parked.
//   - Sustained breach with evaluation dominating: admission cannot help;
//     widen the sweep batch window (×2, capped) so coalescing buys
//     capacity, and still arm shedding as the backstop.
//   - Sustained slack (p99 under 70% of target): relax a quarter step —
//     grow the queue, raise the shed threshold, and (only if throughput is
//     short of MinQPS) widen the batch window — reclaiming throughput the
//     tight settings may have cost.
//
// Every move is bounded by the config's min/max rails, so the tuner can
// never wedge the server into rejecting everything or buffering unbounded.
type Tuner struct {
	cfg   TunerConfig
	knobs Knobs
	step  int

	breachStreak int
	slackStreak  int

	log []Decision
}

// NewTuner returns a tuner starting from the given knob settings
// (typically the server's configured defaults — the untuned baseline).
func NewTuner(cfg TunerConfig, initial Knobs) *Tuner {
	return &Tuner{cfg: cfg, knobs: initial}
}

// Knobs returns the current knob settings.
func (t *Tuner) Knobs() Knobs { return t.knobs }

// Log returns the decision log (every Step appends exactly one entry).
func (t *Tuner) Log() []Decision { return t.log }

// Step consumes one window's observations, possibly moves the knobs, and
// returns (and logs) the decision. Deterministic: equal input sequences
// yield equal logs.
// maxTunerLog bounds the in-memory decision log of a long-running server:
// past it the older half is dropped. Far above any load-harness run, so
// replay comparisons always see complete logs.
const maxTunerLog = 4096

func (t *Tuner) Step(in TunerInputs) Decision {
	t.step++
	d := Decision{Step: t.step, Shed: in.Shed, Knobs: t.knobs}
	defer func() {
		if len(t.log) >= maxTunerLog {
			t.log = append(t.log[:0], t.log[maxTunerLog/2:]...)
		}
		t.log = append(t.log, d)
	}()

	if in.Request.Count == 0 {
		// Nothing completed this window: no evidence, no action. Streaks
		// hold — an idle gap inside a breach should not launder it.
		d.Action, d.Reason = "idle", "no completions in window"
		return d
	}
	d.P99 = in.Request.Quantile(0.99)
	d.QueueP99 = in.Queue.Quantile(0.99)
	if s := in.Elapsed.Seconds(); s > 0 {
		d.AdmittedQPS = float64(in.Completed) / s
	}

	switch {
	case d.P99 > t.cfg.SLO.P99:
		t.breachStreak++
		t.slackStreak = 0
	case d.P99 <= (7*t.cfg.SLO.P99)/10:
		t.slackStreak++
		t.breachStreak = 0
	default:
		t.breachStreak, t.slackStreak = 0, 0
	}

	switch {
	case t.breachStreak >= t.cfg.Hysteresis:
		t.breachStreak = 0
		queueBound := d.QueueP99*2 >= d.P99
		k := t.knobs
		if queueBound {
			k.QueueLimit = maxInt(t.cfg.MinQueue, (3*k.QueueLimit)/4)
			k.ShedLatency = t.tightenShed(k.ShedLatency)
			d.Action = "tighten_queue"
			d.Reason = "p99 over SLO, queue-wait dominated"
		} else {
			k.BatchWindow = minDur(t.cfg.MaxBatchWindow, 2*k.BatchWindow)
			k.ShedLatency = t.tightenShed(k.ShedLatency)
			d.Action = "widen_batch"
			d.Reason = "p99 over SLO, evaluation dominated"
		}
		t.knobs, d.Knobs = k, k
	case t.slackStreak >= t.cfg.Hysteresis:
		t.slackStreak = 0
		k := t.knobs
		k.QueueLimit = minInt(t.cfg.MaxQueue, k.QueueLimit+maxInt(1, k.QueueLimit/4))
		if k.ShedLatency > 0 {
			k.ShedLatency = minDur(t.cfg.SLO.P99, (5*k.ShedLatency)/4)
		}
		if d.AdmittedQPS < t.cfg.SLO.MinQPS {
			k.BatchWindow = minDur(t.cfg.MaxBatchWindow, (5*k.BatchWindow)/4)
		}
		if k == t.knobs {
			d.Action, d.Reason = "hold", "slack but knobs at rails"
		} else {
			d.Action, d.Reason = "relax", "p99 under 70% of SLO"
		}
		t.knobs, d.Knobs = k, k
	default:
		d.Action, d.Reason = "hold", "within hysteresis band"
	}
	return d
}

// tightenShed arms the shed threshold at half the SLO budget, or tightens
// an armed one by ¾ down to an eighth of the budget.
func (t *Tuner) tightenShed(cur time.Duration) time.Duration {
	if cur == 0 || cur > t.cfg.SLO.P99/2 {
		return t.cfg.SLO.P99 / 2
	}
	return maxDur(t.cfg.SLO.P99/8, (3*cur)/4)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
