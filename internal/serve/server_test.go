package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"octgb/internal/engine"
	"octgb/internal/molecule"
	"octgb/internal/surface"
	"octgb/internal/testutil"
)

// newTestServer builds a Server, mounts it on an httptest listener and
// registers cleanup (drain + goroutine accounting is up to the caller).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// postJSON posts v and decodes the response body into out (which may be
// nil). Returns the HTTP status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

// TestServerEnergyColdWarm: a cold request builds (cache=miss), matches the
// library's one-shot engine result, and the warm repeat is a cache hit with
// the identical energy and no surface/prepare cost.
func TestServerEnergyColdWarm(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 2, Threads: 2})

	mol := molecule.GenerateProtein("cw", 220, 11)
	want, err := engine.RunReal(engine.NewProblem(mol, surface.Default()), engine.OctCilk,
		engine.Options{Threads: 2, BornEps: 0.9, EpolEps: 0.9})
	if err != nil {
		t.Fatal(err)
	}

	req := EnergyRequest{Molecule: FromMolecule(mol), IncludeRadii: true}
	var cold EnergyResponse
	if code := postJSON(t, ts.URL+"/v1/energy", req, &cold); code != http.StatusOK {
		t.Fatalf("cold status %d", code)
	}
	if cold.Cache != string(sourceBuild) {
		t.Fatalf("cold cache = %q, want %q", cold.Cache, sourceBuild)
	}
	if rd := relDiff(cold.Energy, want.Energy); rd > 1e-12 {
		t.Fatalf("cold energy %.17g vs engine %.17g (rel %.3g)", cold.Energy, want.Energy, rd)
	}
	if len(cold.BornRadii) != mol.N() {
		t.Fatalf("born radii: %d values for %d atoms", len(cold.BornRadii), mol.N())
	}
	if cold.Timings.SurfaceMS <= 0 || cold.Timings.PrepareMS <= 0 {
		t.Fatalf("cold build reported no surface/prepare time: %+v", cold.Timings)
	}
	if cold.RequestID == "" || cold.Engine != engine.OctCilk.String() {
		t.Fatalf("response metadata: id=%q engine=%q", cold.RequestID, cold.Engine)
	}

	var warm EnergyResponse
	if code := postJSON(t, ts.URL+"/v1/energy", req, &warm); code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	if warm.Cache != string(sourceHit) {
		t.Fatalf("warm cache = %q, want %q", warm.Cache, sourceHit)
	}
	// Same prepared problem, but work-stealing perturbs the reduction
	// order between evaluations — agreement is last-ulp, not bitwise.
	if rd := relDiff(warm.Energy, cold.Energy); rd > 1e-12 {
		t.Fatalf("warm energy %.17g vs cold %.17g (rel %.3g)", warm.Energy, cold.Energy, rd)
	}
	if warm.Timings.SurfaceMS != 0 || warm.Timings.PrepareMS != 0 {
		t.Fatalf("warm request paid preprocessing: %+v", warm.Timings)
	}

	var st StatsSnapshot
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.Builds != 1 || st.Cache.Hits != 1 || st.Requests.Completed != 2 {
		t.Fatalf("stats: builds=%d hits=%d completed=%d", st.Cache.Builds, st.Cache.Hits, st.Requests.Completed)
	}
	_ = s
}

// TestServerEnergyCoalesced: concurrent identical requests trigger exactly
// one build; everyone gets the same energy.
func TestServerEnergyCoalesced(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 4, Threads: 1})

	mol := molecule.GenerateProtein("co", 180, 3)
	req := EnergyRequest{Molecule: FromMolecule(mol)}

	const n = 6
	var wg sync.WaitGroup
	got := make([]EnergyResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = postJSON(t, ts.URL+"/v1/energy", req, &got[i])
		}(i)
	}
	wg.Wait()

	misses := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if got[i].Energy != got[0].Energy {
			t.Fatalf("request %d: energy %.17g != %.17g", i, got[i].Energy, got[0].Energy)
		}
		if got[i].Cache == string(sourceBuild) {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d requests reported cache=miss, want exactly 1 (singleflight)", misses)
	}
	if b := s.metrics.cacheBuilds.Load(); b != 1 {
		t.Fatalf("cache ran %d builds, want 1", b)
	}
}

// TestServerSweep: concurrent same-pair sweeps coalesce into one batch, the
// deltas are consistent with the isolated energies, and for pure
// translations the default composed surface matches exact re-sampling.
func TestServerSweep(t *testing.T) {
	defer testutil.Watchdog(t, 4*time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 2, Threads: 2, BatchWindow: 300 * time.Millisecond})

	rec := molecule.GenerateProtein("rec", 150, 7)
	lig := molecule.GenerateProtein("lig", 60, 8)
	// Overlapping contact poses (translation only → composition is exact).
	off := 0.6 * rec.Bounds().HalfDiagonal()
	mkReq := func(ts ...[3]float64) SweepRequest {
		req := SweepRequest{Receptor: ptr(FromMolecule(rec)), Ligand: FromMolecule(lig)}
		for _, v := range ts {
			req.Poses = append(req.Poses, PoseJSON{T: v})
		}
		return req
	}
	reqA := mkReq([3]float64{off, 0, 0}, [3]float64{0, off, 0})
	reqB := mkReq([3]float64{0, 0, off})

	var wg sync.WaitGroup
	var respA, respB SweepResponse
	var codeA, codeB int
	wg.Add(2)
	go func() { defer wg.Done(); codeA = postJSON(t, ts.URL+"/v1/sweep", reqA, &respA) }()
	go func() { defer wg.Done(); codeB = postJSON(t, ts.URL+"/v1/sweep", reqB, &respB) }()
	wg.Wait()
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("sweep statuses %d/%d", codeA, codeB)
	}

	// Both rode one coalesced batch of 2 requests / 3 poses.
	for _, r := range []SweepResponse{respA, respB} {
		if r.BatchRequests != 2 || r.BatchPoses != 3 {
			t.Fatalf("batch = %d requests / %d poses, want 2/3", r.BatchRequests, r.BatchPoses)
		}
	}
	if b := s.metrics.batchesRun.Load(); b != 1 {
		t.Fatalf("ran %d batches, want 1", b)
	}
	if len(respA.Energies) != 2 || len(respB.Energies) != 1 {
		t.Fatalf("pose counts: %d/%d", len(respA.Energies), len(respB.Energies))
	}
	// Isolated energies are shared across the batch; deltas are consistent.
	if respA.LigandEnergy != respB.LigandEnergy || respA.ReceptorEnergy != respB.ReceptorEnergy {
		t.Fatalf("batch members disagree on isolated energies")
	}
	for i, e := range respA.Energies {
		want := e - respA.ReceptorEnergy - respA.LigandEnergy
		if respA.Deltas[i] != want {
			t.Fatalf("delta[%d] = %.17g, want %.17g", i, respA.Deltas[i], want)
		}
	}

	// Translation poses: composed surface == re-sampled surface.
	exact := reqB
	exact.ExactSurface = true
	var respE SweepResponse
	if code := postJSON(t, ts.URL+"/v1/sweep", exact, &respE); code != http.StatusOK {
		t.Fatalf("exact sweep status %d", code)
	}
	if rd := relDiff(respE.Energies[0], respB.Energies[0]); rd > 1e-12 {
		t.Fatalf("composed %.17g vs exact %.17g (rel %.3g)", respB.Energies[0], respE.Energies[0], rd)
	}

	// A receptor-free sweep returns absolute energies, no deltas.
	free := SweepRequest{Ligand: FromMolecule(lig), Poses: []PoseJSON{{T: [3]float64{1, 2, 3}}}}
	var respF SweepResponse
	if code := postJSON(t, ts.URL+"/v1/sweep", free, &respF); code != http.StatusOK {
		t.Fatalf("free sweep status %d", code)
	}
	if len(respF.Energies) != 1 || respF.Deltas != nil {
		t.Fatalf("receptor-free sweep: energies=%d deltas=%v", len(respF.Energies), respF.Deltas)
	}
	// Rigid-motion invariance: posed ligand energy equals its isolated energy.
	if rd := relDiff(respF.Energies[0], respF.LigandEnergy); rd > 1e-12 {
		t.Fatalf("translated ligand energy drifted: %.17g vs %.17g", respF.Energies[0], respF.LigandEnergy)
	}
}

func ptr[T any](v T) *T { return &v }

// TestServerAdmission: a saturated queue yields typed 429s with a
// Retry-After hint; both endpoints reject.
func TestServerAdmission(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 1, Threads: 1, MaxQueue: 1})

	// Occupy the single worker, then fill the single queue slot.
	block := make(chan struct{})
	running := make(chan struct{})
	if err := s.submit(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	if err := s.submit(func() {}); err != nil {
		t.Fatal(err)
	}

	mol := molecule.GenerateProtein("adm", 40, 1)
	var e ErrorResponse
	if code := postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Molecule: FromMolecule(mol)}, &e); code != http.StatusTooManyRequests {
		t.Fatalf("energy status %d, want 429", code)
	}
	if e.Error != "queue_full" || e.RetryAfterMS <= 0 {
		t.Fatalf("energy rejection: %+v", e)
	}
	sw := SweepRequest{Ligand: FromMolecule(mol), Poses: []PoseJSON{{}}}
	if code := postJSON(t, ts.URL+"/v1/sweep", sw, &e); code != http.StatusTooManyRequests {
		t.Fatalf("sweep status %d, want 429", code)
	}
	if e.Error != "queue_full" {
		t.Fatalf("sweep rejection: %+v", e)
	}
	if got := s.metrics.rejectedQueueFull.Load(); got != 2 {
		t.Fatalf("rejected_queue_full = %d, want 2", got)
	}
	close(block)
}

// TestServerDeadline: a request whose deadline elapses while queued gets
// 504 and the queued work is abandoned without evaluating.
func TestServerDeadline(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 1, Threads: 1})

	block := make(chan struct{})
	running := make(chan struct{})
	if err := s.submit(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running

	mol := molecule.GenerateProtein("dl", 40, 2)
	req := EnergyRequest{Molecule: FromMolecule(mol), DeadlineMS: 30}
	var e ErrorResponse
	if code := postJSON(t, ts.URL+"/v1/energy", req, &e); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if e.Error != "deadline_exceeded" {
		t.Fatalf("error token %q", e.Error)
	}
	close(block)

	// The abandoned task must be discarded by the worker without building.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.canceled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.metrics.canceled.Load() != 1 {
		t.Fatalf("canceled = %d, want 1", s.metrics.canceled.Load())
	}
	if b := s.metrics.cacheBuilds.Load(); b != 0 {
		t.Fatalf("expired request still built (%d builds)", b)
	}
	if s.metrics.deadlineMisses.Load() != 1 {
		t.Fatalf("deadline_misses = %d, want 1", s.metrics.deadlineMisses.Load())
	}
}

// TestServerBadRequests: malformed input gets typed 4xx, never a panic or
// a queued evaluation.
func TestServerBadRequests(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	_, ts := newTestServer(t, Config{Workers: 1, Threads: 1, MaxAtoms: 50})

	get, err := http.Get(ts.URL + "/v1/energy")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", get.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/v1/energy", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || e.Error != "bad_request" {
		t.Fatalf("bad JSON: status %d token %q", resp.StatusCode, e.Error)
	}

	if code := postJSON(t, ts.URL+"/v1/energy", EnergyRequest{}, &e); code != http.StatusBadRequest {
		t.Fatalf("empty molecule: status %d", code)
	}

	big := molecule.GenerateProtein("big", 60, 1) // over MaxAtoms=50
	if code := postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Molecule: FromMolecule(big)}, &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: status %d", code)
	}
	if e.Error != "too_large" {
		t.Fatalf("oversized token %q", e.Error)
	}

	small := molecule.GenerateProtein("s", 10, 1)
	if code := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Ligand: FromMolecule(small)}, &e); code != http.StatusBadRequest {
		t.Fatalf("no poses: status %d", code)
	}
}

// TestServerDrain is the graceful-shutdown contract: an in-flight request
// completes with 200, new requests are rejected with 503, Shutdown returns
// cleanly and no goroutines leak.
func TestServerDrain(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	baseline := runtime.NumGoroutine()

	s := New(Config{Workers: 2, Threads: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mol := molecule.GenerateProtein("drain", 400, 5)
	inflight := make(chan struct{})
	var resp EnergyResponse
	var code int
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Signal just before the POST; the handler will be mid-flight (or at
		// worst mid-queue — both must survive the drain).
		close(inflight)
		code = postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Molecule: FromMolecule(mol)}, &resp)
	}()
	<-inflight
	// Wait until the request is actually being evaluated.
	for i := 0; i < 5000 && s.metrics.inflight.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	if code != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain, want 200", code)
	}
	if resp.Energy == 0 {
		t.Fatalf("in-flight request returned no energy")
	}

	// The drained server refuses new work with a typed 503.
	var e ErrorResponse
	if code := postJSON(t, ts.URL+"/v1/energy", EnergyRequest{Molecule: FromMolecule(mol)}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", code)
	}
	if e.Error != "draining" {
		t.Fatalf("post-drain token %q", e.Error)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d while draining, want 503", hz.StatusCode)
	}

	ts.Close()
	if n := testutil.WaitGoroutines(baseline, 10*time.Second); n > baseline {
		t.Fatalf("goroutine leak after drain: %d live, baseline %d", n, baseline)
	}
}

// TestServerStartAddr: Start binds a real listener; /healthz answers over
// TCP and Shutdown closes it.
func TestServerStartAddr(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	s := New(Config{Addr: "127.0.0.1:0", Workers: 1, Threads: 1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
