package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"octgb/internal/molecule"
	"octgb/internal/obs"
	"octgb/internal/testutil"
)

// TestConfigTimeoutDefaults pins the listener-timeout convention: zero
// applies the hardening defaults, negative disables, positive passes
// through.
func TestConfigTimeoutDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ReadHeaderTimeout != 10*time.Second || c.ReadTimeout != 5*time.Minute || c.IdleTimeout != 2*time.Minute {
		t.Fatalf("defaults: header=%v read=%v idle=%v", c.ReadHeaderTimeout, c.ReadTimeout, c.IdleTimeout)
	}
	c = Config{ReadHeaderTimeout: -1, ReadTimeout: 3 * time.Second, IdleTimeout: -1}.withDefaults()
	if c.ReadHeaderTimeout != 0 || c.ReadTimeout != 3*time.Second || c.IdleTimeout != 0 {
		t.Fatalf("overrides: header=%v read=%v idle=%v", c.ReadHeaderTimeout, c.ReadTimeout, c.IdleTimeout)
	}
}

// TestServerSlowHeaderTimeout proves the Start listener is hardened against
// header-dribbling clients: a connection that never finishes its request
// header is closed once ReadHeaderTimeout elapses, instead of pinning a
// connection goroutine forever (the old &http.Server{Handler: mux} had no
// timeouts at all).
func TestServerSlowHeaderTimeout(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	s := New(Config{Addr: "127.0.0.1:0", Workers: 1, Threads: 1, ReadHeaderTimeout: 200 * time.Millisecond})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send an eternally incomplete header block.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow: ")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered an incomplete request header")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server did not close the dribbling connection within 10s")
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("connection closed after %v, want ~ReadHeaderTimeout", e)
	}

	// Well-formed requests still work on the same server.
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after slow client: %d", resp.StatusCode)
	}
}

// TestServerShutdownFlushesPendingBatch is the flush-after-shutdown
// regression test: with a long batch window, Shutdown must stop the armed
// window timer and flush the pending batch immediately — the parked sweep
// handler is an in-flight request the HTTP drain waits for, so shutdown
// latency has to be bounded by evaluation time, not BatchWindow. Before the
// fix this test took the full 30s window (and the timer fired into a
// stopped worker pool).
func TestServerShutdownFlushesPendingBatch(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	baseline := runtime.NumGoroutine()

	s := New(Config{Workers: 1, Threads: 1, BatchWindow: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lig := molecule.GenerateProtein("flush", 60, 9)
	req := SweepRequest{Ligand: FromMolecule(lig), Poses: []PoseJSON{{T: [3]float64{1, 0, 0}}}}
	var resp SweepResponse
	var code int
	done := make(chan struct{})
	go func() {
		defer close(done)
		code = postJSON(t, ts.URL+"/v1/sweep", req, &resp)
	}()

	// Wait until the sweep is parked in a pending batch.
	for i := 0; ; i++ {
		s.pendingMu.Lock()
		n := len(s.pending)
		s.pendingMu.Unlock()
		if n == 1 {
			break
		}
		if i > 10000 {
			t.Fatal("sweep never entered the pending batch")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if e := time.Since(shutdownStart); e > 10*time.Second {
		t.Fatalf("shutdown took %v, batch window was not flushed early", e)
	}
	<-done
	if code != http.StatusOK {
		t.Fatalf("parked sweep got %d during shutdown, want 200", code)
	}
	if len(resp.Energies) != 1 {
		t.Fatalf("parked sweep returned %d energies, want 1", len(resp.Energies))
	}

	// Nothing left behind: no batch timers, no ticker, no workers.
	ts.Close()
	if n := testutil.WaitGoroutines(baseline, 10*time.Second); n > baseline {
		t.Fatalf("goroutine leak after flush+drain: %d live, baseline %d", n, baseline)
	}
}

// TestServerObservability exercises the Config.Observe wiring end to end:
// request/queue/stage histograms and engine metrics on /metrics (valid
// exposition), per-request spans on /debug/trace, pprof mounted, and the
// /stats latency block.
func TestServerObservability(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	ob := obs.New()
	s, ts := newTestServer(t, Config{Workers: 2, Threads: 1, Observe: ob})

	mol := molecule.GenerateProtein("obs", 150, 4)
	req := EnergyRequest{Molecule: FromMolecule(mol)}
	for i := 0; i < 2; i++ { // one cold, one warm
		var er EnergyResponse
		if code := postJSON(t, ts.URL+"/v1/energy", req, &er); code != http.StatusOK {
			t.Fatalf("energy %d: status %d", i, code)
		}
	}
	sw := SweepRequest{Ligand: FromMolecule(mol), Poses: []PoseJSON{{T: [3]float64{2, 0, 0}}}}
	var sr SweepResponse
	if code := postJSON(t, ts.URL+"/v1/sweep", sw, &sr); code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}

	// /metrics renders a valid exposition covering serve and engine layers.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("/metrics invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		`octgb_serve_request_seconds_count{endpoint="energy"}`,
		`octgb_serve_request_seconds_count{endpoint="sweep"}`,
		"octgb_serve_queue_wait_seconds_count",
		`octgb_serve_stage_seconds_count{stage="prepare"}`,
		`octgb_serve_stage_seconds_count{stage="batch"}`,
		"octgb_engine_phase_seconds", // requests ran with eo.Observe = cfg.Observe
		"octgb_sched_executed_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/trace is loadable trace_event JSON with the request spans.
	resp, err = http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/trace decode: %v", err)
	}
	resp.Body.Close()
	names := map[string]bool{}
	for _, ev := range dump.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"serve.energy", "serve.sweep", "serve.queue", "serve.cache", "serve.eval", "serve.batch"} {
		if !names[want] {
			t.Errorf("/debug/trace missing span %q (have %v)", want, names)
		}
	}

	// pprof answers on the same mux.
	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	// /stats gains the latency quantile block.
	var st StatsSnapshot
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Latency == nil {
		t.Fatal("/stats missing latency block with Observe set")
	}
	if st.Latency.Energy.Count != 2 || st.Latency.Sweep.Count != 1 {
		t.Fatalf("latency counts energy=%d sweep=%d, want 2/1", st.Latency.Energy.Count, st.Latency.Sweep.Count)
	}
	if st.Latency.Energy.P99MS <= 0 {
		t.Fatalf("energy p99 = %v, want > 0", st.Latency.Energy.P99MS)
	}

	// Debug endpoints bypass the drain gate: scrapes keep working while
	// (and after) the server drains.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics during drain: status %d", resp.StatusCode)
	}
}

// TestServerObserveOffStats pins that without Config.Observe the /stats
// payload has no latency block and the debug endpoints are not mounted.
func TestServerObserveOffStats(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	_, ts := newTestServer(t, Config{Workers: 1, Threads: 1})

	var st StatsSnapshot
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Latency != nil {
		t.Fatal("latency block present without an observer")
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without observer: status %d, want 404", resp.StatusCode)
	}
}
