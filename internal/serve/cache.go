package serve

import (
	"container/list"
	"sync"
	"time"

	"octgb/internal/engine"
)

// built is one cache value: the prepared problem plus the stage timings of
// the build that produced it (echoed in cold responses and aggregated in
// /stats).
type built struct {
	prep      *engine.Prepared
	surfaceNS int64 // surface sampling
	prepareNS int64 // octree construction + Born phase
	bytes     int64
}

// cacheSource says how a request obtained its prepared problem.
type cacheSource string

const (
	// sourceHit: the entry was resident.
	sourceHit cacheSource = "hit"
	// sourceBuild: this request built the entry.
	sourceBuild cacheSource = "miss"
	// sourceWait: another in-flight request was already building the same
	// key; this one waited for it (singleflight).
	sourceWait cacheSource = "coalesced"
)

// prepCache is a size-bounded LRU of prepared problems with singleflight
// deduplication: concurrent gets for the same key build once, everyone
// else blocks on the winner's result. Eviction is by estimated resident
// bytes (engine.Prepared.MemoryBytes), least recently used first. Build
// errors are returned to every waiter and not cached.
type prepCache struct {
	maxBytes int64
	metrics  *metrics

	mu     sync.Mutex
	ll     *list.List // front = most recently used; values are *cacheEntry
	items  map[string]*list.Element
	bytes  int64
	flight map[string]*flightCall
}

type cacheEntry struct {
	key string
	val *built
}

type flightCall struct {
	done chan struct{}
	val  *built
	err  error
}

func newPrepCache(maxBytes int64, m *metrics) *prepCache {
	c := &prepCache{
		maxBytes: maxBytes,
		metrics:  m,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flight:   make(map[string]*flightCall),
	}
	return c
}

// get returns the cached value for key, building it at most once across
// concurrent callers. build runs outside the cache lock.
func (c *prepCache) get(key string, build func() (*built, error)) (*built, cacheSource, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.metrics.cacheHits.Add(1)
		return el.Value.(*cacheEntry).val, sourceHit, nil
	}
	if fc, ok := c.flight[key]; ok {
		c.mu.Unlock()
		c.metrics.cacheCoalesced.Add(1)
		<-fc.done
		return fc.val, sourceWait, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flight[key] = fc
	c.mu.Unlock()

	c.metrics.cacheMisses.Add(1)
	t0 := time.Now()
	val, err := build()
	if err == nil {
		c.metrics.cacheBuilds.Add(1)
		c.metrics.buildNS.Add(time.Since(t0).Nanoseconds())
	}

	c.mu.Lock()
	delete(c.flight, key)
	if err == nil {
		val.bytes = val.prep.MemoryBytes()
		el := c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.items[key] = el
		c.bytes += val.bytes
		c.evictLocked()
	}
	c.mu.Unlock()

	fc.val, fc.err = val, err
	close(fc.done)
	return val, sourceBuild, err
}

// evictLocked drops least-recently-used entries until the byte budget is
// met; the most recent entry always stays so a single oversized molecule
// can still be served (it just won't keep neighbors resident).
func (c *prepCache) evictLocked() {
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		el := c.ll.Back()
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.bytes -= ent.val.bytes
		c.metrics.cacheEvictions.Add(1)
	}
}

// stats returns the resident entry count and byte total.
func (c *prepCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}
