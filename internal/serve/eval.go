package serve

import (
	"context"
	"time"

	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/molecule"
)

// energyOutcome is one /v1/energy evaluation's result, produced on a
// worker and consumed by the waiting handler.
type energyOutcome struct {
	energy    float64
	bornRadii []float64
	src       cacheSource
	engine    string
	startedAt time.Time
	surfaceMS float64
	prepareMS float64
	evalMS    float64
	err       error
}

// engineOpts maps resolved request options onto the engine layer.
func (s *Server) engineOpts(o evalOpts) engine.Options {
	eo := engine.Options{
		Threads: s.cfg.Threads,
		BornEps: o.bornEps,
		EpolEps: o.epolEps,
	}
	if o.approx {
		eo.Math = gb.Approximate
	}
	return eo
}

// buildPrepared is the cache-miss path: sample the surface, build the
// trees, run the Born phase. Stage timings are recorded globally and on
// the entry (cold responses echo them).
func (s *Server) buildPrepared(mol *molecule.Molecule, o evalOpts) (*built, error) {
	t0 := time.Now()
	pr := engine.NewProblem(mol, o.surf)
	t1 := time.Now()
	p, err := engine.Prepare(pr, s.engineOpts(o))
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	b := &built{
		prep:      p,
		surfaceNS: t1.Sub(t0).Nanoseconds(),
		prepareNS: t2.Sub(t1).Nanoseconds(),
	}
	s.metrics.surfaceNS.Add(b.surfaceNS)
	s.metrics.prepareNS.Add(b.prepareNS)
	return b, nil
}

// evalEnergy runs on a worker: prepared-problem lookup (singleflight
// build on miss) followed by the E_pol evaluation. Work whose deadline
// already passed while queued is abandoned before any computation.
func (s *Server) evalEnergy(ctx context.Context, mol *molecule.Molecule, o evalOpts) energyOutcome {
	out := energyOutcome{startedAt: time.Now()}
	if ctx.Err() != nil {
		s.metrics.canceled.Add(1)
		out.err = ctx.Err()
		return out
	}
	b, src, err := s.cache.get(cacheKey(mol, o), func() (*built, error) {
		return s.buildPrepared(mol, o)
	})
	if err != nil {
		out.err = err
		return out
	}
	out.src = src
	if src == sourceBuild {
		out.surfaceMS = float64(b.surfaceNS) / 1e6
		out.prepareMS = float64(b.prepareNS) / 1e6
	}

	eo := s.engineOpts(o)
	t0 := time.Now()
	if s.cfg.Ranks > 1 && src == sourceBuild {
		// Ranks deployments evaluate cold requests with the hybrid engine
		// (the configuration that fronts a cmd/epolnode mesh). The entry
		// just built still serves warm requests through the prepared path;
		// the two agree to ~1e-12.
		eo.Ranks = s.cfg.Ranks
		rep, err := engine.RunReal(b.prep.Pr, engine.OctMPICilk, eo)
		if err != nil {
			out.err = err
			return out
		}
		out.energy, out.bornRadii = rep.Energy, rep.BornRadii
		out.engine = engine.OctMPICilk.String()
	} else {
		rep, err := b.prep.EvalEpol(eo)
		if err != nil {
			out.err = err
			return out
		}
		out.energy, out.bornRadii = rep.Energy, rep.BornRadii
		out.engine = engine.OctCilk.String()
	}
	evalNS := time.Since(t0).Nanoseconds()
	out.evalMS = float64(evalNS) / 1e6
	s.metrics.evalNS.Add(evalNS)
	s.metrics.evals.Add(1)
	return out
}
