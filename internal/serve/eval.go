package serve

import (
	"context"
	"time"

	"octgb/internal/core"
	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/molecule"
)

// energyOutcome is one /v1/energy evaluation's result, produced on a
// worker and consumed by the waiting handler.
type energyOutcome struct {
	energy    float64
	bornRadii []float64
	src       cacheSource
	engine    string
	startedAt time.Time
	surfaceMS float64
	prepareMS float64
	evalMS    float64
	err       error
}

// engineOpts maps resolved request options onto the engine layer.
func (s *Server) engineOpts(o evalOpts) engine.Options {
	eo := engine.Options{
		Threads:   s.cfg.Threads,
		BornEps:   o.bornEps,
		EpolEps:   o.epolEps,
		Precision: o.prec,
		Observe:   s.cfg.Observe,
	}
	if o.approx {
		eo.Math = gb.Approximate
	}
	return eo
}

// recordEval charges one E_pol evaluation to the global counters and, for
// the reduced-precision tier, the f32 sub-counters that /stats reports.
func (s *Server) recordEval(prec core.Precision, ns int64) {
	s.metrics.evalNS.Add(ns)
	s.metrics.evals.Add(1)
	if prec == core.Float32 {
		s.metrics.evalF32NS.Add(ns)
		s.metrics.evalsF32.Add(1)
	}
}

// buildPrepared is the cache-miss path: sample the surface, build the
// trees, run the Born phase. Stage timings are recorded globally and on
// the entry (cold responses echo them).
func (s *Server) buildPrepared(mol *molecule.Molecule, o evalOpts) (*built, error) {
	t0 := time.Now()
	pr := engine.NewProblem(mol, o.surf)
	t1 := time.Now()
	p, err := engine.Prepare(pr, s.engineOpts(o))
	if err != nil {
		return nil, err
	}
	t2 := time.Now()
	b := &built{
		prep:      p,
		surfaceNS: t1.Sub(t0).Nanoseconds(),
		prepareNS: t2.Sub(t1).Nanoseconds(),
	}
	s.metrics.surfaceNS.Add(b.surfaceNS)
	s.metrics.prepareNS.Add(b.prepareNS)
	s.sobs.stage(s.sobs.surface, "serve.surface", 0, t0, t1.Sub(t0))
	s.sobs.stage(s.sobs.prepare, "serve.prepare", 0, t1, t2.Sub(t1))
	return b, nil
}

// evalEnergy runs on a worker: prepared-problem lookup (singleflight
// build on miss) followed by the E_pol evaluation. Work whose deadline
// already passed while queued is abandoned before any computation. span is
// the request's root span ID (0 with observability off); the cache and
// eval stages are traced under it.
func (s *Server) evalEnergy(ctx context.Context, mol *molecule.Molecule, o evalOpts, span uint64) energyOutcome {
	out := energyOutcome{startedAt: time.Now()}
	if ctx.Err() != nil {
		s.metrics.canceled.Add(1)
		out.err = ctx.Err()
		return out
	}
	cacheStart := time.Now()
	b, src, err := s.cache.get(cacheKey(mol, o), func() (*built, error) {
		return s.buildPrepared(mol, o)
	})
	s.sobs.stage(nil, "serve.cache", span, cacheStart, time.Since(cacheStart))
	if err != nil {
		out.err = err
		return out
	}
	out.src = src
	if src == sourceBuild {
		out.surfaceMS = float64(b.surfaceNS) / 1e6
		out.prepareMS = float64(b.prepareNS) / 1e6
	}

	eo := s.engineOpts(o)
	t0 := time.Now()
	if s.cfg.Ranks > 1 && src == sourceBuild {
		// Ranks deployments evaluate cold requests with the hybrid engine
		// (the configuration that fronts a cmd/epolnode mesh). The entry
		// just built still serves warm requests through the prepared path;
		// the two agree to ~1e-12.
		eo.Ranks = s.cfg.Ranks
		rep, err := engine.RunReal(b.prep.Pr, engine.OctMPICilk, eo)
		if err != nil {
			out.err = err
			return out
		}
		out.energy, out.bornRadii = rep.Energy, rep.BornRadii
		out.engine = engine.OctMPICilk.String()
	} else {
		rep, err := b.prep.EvalEpol(eo)
		if err != nil {
			out.err = err
			return out
		}
		out.energy, out.bornRadii = rep.Energy, rep.BornRadii
		out.engine = engine.OctCilk.String()
	}
	evalNS := time.Since(t0).Nanoseconds()
	out.evalMS = float64(evalNS) / 1e6
	s.recordEval(o.prec, evalNS)
	s.sobs.stage(s.sobs.evalHist(o.prec), "serve.eval", span, t0, time.Duration(evalNS))
	return out
}
