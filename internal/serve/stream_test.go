package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"octgb/internal/engine"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
	"octgb/internal/testutil"
)

// jitterMoves builds a deterministic k-frame jitter stream over mol as
// wire-level moves plus the equivalent engine deltas, so tests can replay
// the same trajectory through the HTTP API and a local oracle session.
func jitterMoves(mol *molecule.Molecule, k, movers int, amp float64, seed int64) ([][]MoveJSON, []engine.FrameDelta) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Vec3, mol.N())
	for i := range mol.Atoms {
		pos[i] = mol.Atoms[i].Pos
	}
	wire := make([][]MoveJSON, k)
	deltas := make([]engine.FrameDelta, k)
	for f := 0; f < k; f++ {
		for m := 0; m < movers; m++ {
			i := rng.Intn(mol.N())
			d := geom.V((rng.Float64()*2-1)*amp, (rng.Float64()*2-1)*amp, (rng.Float64()*2-1)*amp)
			pos[i] = pos[i].Add(d)
			wire[f] = append(wire[f], MoveJSON{I: i, Pos: [3]float64{pos[i].X, pos[i].Y, pos[i].Z}})
			deltas[f].Moves = append(deltas[f].Moves, engine.AtomMove{Index: i, Pos: pos[i]})
		}
	}
	return wire, deltas
}

// doJSON issues method against url with v as the JSON body (nil for none)
// and decodes the response into out. Returns the HTTP status.
func doJSON(t *testing.T, method, url string, v, out any) int {
	t.Helper()
	if method == http.MethodPost {
		return postJSON(t, url, v, out)
	}
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestStreamLifecycle drives the full /v1/stream arc — create, frames,
// close — and checks every frame's energy against a local engine.Session
// replaying the identical trajectory with the server's default options.
// Sessions evaluate serially in canonical order, so agreement is exact.
func TestStreamLifecycle(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 2, Threads: 1})

	mol := molecule.GenerateProtein("traj", 240, 17)
	oracle, err := engine.NewSession(mol, engine.SessionOptions{
		Surf: surface.Default(),
		Eval: engine.Options{Threads: 1, BornEps: 0.9, EpolEps: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}

	var created StreamCreateResponse
	if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{Molecule: FromMolecule(mol)}, &created); code != http.StatusOK {
		t.Fatalf("create status %d", code)
	}
	if created.SessionID == "" || created.Atoms != mol.N() || created.QPoints != oracle.NumQPoints() {
		t.Fatalf("create response %+v vs oracle atoms=%d qpts=%d", created, mol.N(), oracle.NumQPoints())
	}
	if rd := relDiff(created.Energy, oracle.Energy()); rd > 1e-12 {
		t.Fatalf("initial energy %.17g vs oracle %.17g (rel %.3g)", created.Energy, oracle.Energy(), rd)
	}
	if created.Timings.PrepareMS <= 0 {
		t.Fatalf("create reported no prepare time: %+v", created.Timings)
	}

	wire, deltas := jitterMoves(mol, 6, 3, 0.05, 11)
	frameURL := ts.URL + "/v1/stream/" + created.SessionID + "/frame"
	var last StreamFrameResponse
	for f := range wire {
		rep, err := oracle.Step(deltas[f])
		if err != nil {
			t.Fatal(err)
		}
		if code := postJSON(t, frameURL, StreamFrameRequest{Moves: wire[f]}, &last); code != http.StatusOK {
			t.Fatalf("frame %d status %d", f, code)
		}
		if last.Frame != rep.Frame || last.MovedAtoms != rep.MovedAtoms {
			t.Fatalf("frame %d report %+v vs oracle %+v", f, last, rep)
		}
		if rd := relDiff(last.Energy, rep.Energy); rd > 1e-12 {
			t.Fatalf("frame %d energy %.17g vs oracle %.17g (rel %.3g)", f, last.Energy, rep.Energy, rd)
		}
	}

	// A bad move index is rejected with 400 and leaves the session usable:
	// Step validates before touching any state.
	var bad ErrorResponse
	if code := postJSON(t, frameURL, StreamFrameRequest{Moves: []MoveJSON{{I: mol.N() + 5}}}, &bad); code != http.StatusBadRequest {
		t.Fatalf("out-of-range move: status %d", code)
	}
	if bad.Error != "bad_request" {
		t.Fatalf("out-of-range move: token %q", bad.Error)
	}
	extraWire, extraDelta := jitterMoves(mol, 1, 2, 0.05, 12)
	rep, err := oracle.Step(extraDelta[0])
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, frameURL, StreamFrameRequest{Moves: extraWire[0]}, &last); code != http.StatusOK {
		t.Fatalf("post-reject frame status %d", code)
	}
	if rd := relDiff(last.Energy, rep.Energy); rd > 1e-12 {
		t.Fatalf("post-reject energy %.17g vs oracle %.17g (rel %.3g)", last.Energy, rep.Energy, rd)
	}

	st := s.snapshot()
	if st.Streaming.Live != 1 || st.Streaming.Created != 1 || st.Streaming.Frames != int64(len(wire))+2 {
		t.Fatalf("streaming stats %+v", st.Streaming)
	}
	if st.Streaming.FrameMSTotal <= 0 {
		t.Fatalf("streaming stats recorded no frame time: %+v", st.Streaming)
	}

	var closed StreamCloseResponse
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/stream/"+created.SessionID, nil, &closed); code != http.StatusOK {
		t.Fatalf("close status %d", code)
	}
	if closed.Frames != rep.Frame || relDiff(closed.Energy, rep.Energy) > 1e-12 {
		t.Fatalf("close response %+v vs oracle frame=%d E=%.17g", closed, rep.Frame, rep.Energy)
	}

	// Closed sessions are gone: frames and a second close both 404.
	var gone ErrorResponse
	if code := postJSON(t, frameURL, StreamFrameRequest{Moves: extraWire[0]}, &gone); code != http.StatusNotFound || gone.Error != "not_found" {
		t.Fatalf("frame after close: status %d token %q", code, gone.Error)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/stream/"+created.SessionID, nil, &gone); code != http.StatusNotFound {
		t.Fatalf("double close: status %d", code)
	}
	if st := s.snapshot(); st.Streaming.Live != 0 || st.Streaming.Closed != 1 {
		t.Fatalf("post-close streaming stats %+v", st.Streaming)
	}
}

// TestStreamEviction exercises both store-eviction paths: LRU when a
// create needs room past MaxSessions, and idle expiry after SessionIdle.
func TestStreamEviction(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 2, Threads: 1, MaxSessions: 2, SessionIdle: 30 * time.Second})

	mol := molecule.GenerateProtein("evict", 150, 3)
	ids := make([]string, 3)
	for i := range ids {
		var resp StreamCreateResponse
		if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{Molecule: FromMolecule(mol)}, &resp); code != http.StatusOK {
			t.Fatalf("create %d status %d", i, code)
		}
		ids[i] = resp.SessionID
		time.Sleep(5 * time.Millisecond) // order lastUsed so the LRU victim is ids[0]
	}

	st := s.snapshot()
	if st.Streaming.Live != 2 || st.Streaming.EvictedLRU != 1 {
		t.Fatalf("after 3 creates with cap 2: %+v", st.Streaming)
	}
	var errResp ErrorResponse
	if code := postJSON(t, ts.URL+"/v1/stream/"+ids[0]+"/frame", StreamFrameRequest{}, &errResp); code != http.StatusNotFound {
		t.Fatalf("evicted session frame: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/stream/"+ids[2]+"/frame", StreamFrameRequest{}, nil); code != http.StatusOK {
		t.Fatalf("surviving session frame: status %d", code)
	}

	// Idle expiry: age every live session past the threshold, then any
	// store access sweeps them out.
	s.sessMu.Lock()
	for _, live := range s.sessions {
		live.lastUsed = time.Now().Add(-time.Minute)
	}
	s.sessMu.Unlock()
	if code := postJSON(t, ts.URL+"/v1/stream/"+ids[2]+"/frame", StreamFrameRequest{}, &errResp); code != http.StatusNotFound {
		t.Fatalf("idle-expired session frame: status %d", code)
	}
	if st := s.snapshot(); st.Streaming.Live != 0 || st.Streaming.EvictedIdle != 2 {
		t.Fatalf("after idle sweep: %+v", st.Streaming)
	}
}

// TestStreamAdmissionAndMethods covers the edge responses: draining 503,
// method/path validation, and oversized molecules.
func TestStreamAdmissionAndMethods(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 1, Threads: 1, MaxAtoms: 50})

	var errResp ErrorResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stream", nil, &errResp); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/stream: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/stream/", StreamFrameRequest{}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("missing session id: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stream/s-x-0001/frame", nil, &errResp); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET frame: status %d", code)
	}

	big := molecule.GenerateProtein("big", 80, 1)
	if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{Molecule: FromMolecule(big)}, &errResp); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: status %d", code)
	}
	if errResp.Error != "too_large" {
		t.Fatalf("oversized create token %q", errResp.Error)
	}

	s.draining.Store(true)
	if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{}, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("draining create: status %d", code)
	}
	if errResp.Error != "draining" {
		t.Fatalf("draining token %q", errResp.Error)
	}
	s.draining.Store(false)
}

// TestComposeScratchSteadyStateAllocs pins the pooled compose path: once a
// ComposeScratch is warm, a pose composition must not grow the scratch —
// the only per-pose allocations left are the posed molecule and merged
// complex Compose hands back to the caller. The pin guards the sync.Pool
// reuse in runSweep against regressions that silently reintroduce a
// per-pose q-point buffer or tree allocation.
func TestComposeScratchSteadyStateAllocs(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	rec := molecule.GenerateProtein("rec", 160, 5)
	lig := molecule.GenerateProtein("lig", 60, 6)
	opt := surface.Default()
	recQ := surface.Sample(rec, opt)
	ligQ := surface.Sample(lig, opt)

	sc := composeScratchPool.Get().(*surface.ComposeScratch)
	defer composeScratchPool.Put(sc)
	pc := surface.NewPoseComposer(rec, recQ, lig, ligQ, opt, sc)
	pose := geom.Translation(geom.V(40, 0, 0))
	if _, _, err := pc.Compose("warm", pose); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := pc.Compose("steady", pose); err != nil {
			t.Fatal(err)
		}
	})
	// Transform + Merge return fresh molecules (2 headers + 2 atom slices);
	// anything past a small constant means the scratch stopped being reused.
	const maxAllocs = 8
	if allocs > maxAllocs {
		t.Fatalf("steady-state Compose: %.1f allocs/op, want <= %d (scratch reuse broken?)", allocs, maxAllocs)
	}
	t.Logf("steady-state Compose: %.1f allocs/op", allocs)
}
