package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"octgb/internal/engine"
	"octgb/internal/molecule"
	"octgb/internal/surface"
	"octgb/internal/testutil"
)

func buildFor(t testing.TB, n int, seed int64) func() (*built, error) {
	t.Helper()
	return func() (*built, error) {
		mol := molecule.GenerateProtein(fmt.Sprintf("m%d-%d", n, seed), n, seed)
		pr := engine.NewProblem(mol, surface.Default())
		p, err := engine.Prepare(pr, engine.Options{Threads: 1})
		if err != nil {
			return nil, err
		}
		return &built{prep: p}, nil
	}
}

// TestCacheSingleflightStress is the satellite concurrency test: N
// goroutines hammer the same and different keys concurrently; exactly one
// build must run per key, everyone must observe the same value, and no
// goroutines may leak. Run under -race (the Makefile race target includes
// this package).
func TestCacheSingleflightStress(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	baseline := runtime.NumGoroutine()

	c := newPrepCache(1<<40, newMetrics())
	const keys = 4
	const goroutinesPerKey = 16

	var builds [keys]atomic.Int64
	var wg sync.WaitGroup
	vals := make([][]*built, keys)
	for k := 0; k < keys; k++ {
		vals[k] = make([]*built, goroutinesPerKey)
	}
	for k := 0; k < keys; k++ {
		for g := 0; g < goroutinesPerKey; g++ {
			wg.Add(1)
			go func(k, g int) {
				defer wg.Done()
				inner := buildFor(t, 120+10*k, int64(k))
				v, _, err := c.get(fmt.Sprintf("key-%d", k), func() (*built, error) {
					builds[k].Add(1)
					return inner()
				})
				if err != nil {
					t.Errorf("get key-%d: %v", k, err)
					return
				}
				vals[k][g] = v
			}(k, g)
		}
	}
	wg.Wait()

	for k := 0; k < keys; k++ {
		if got := builds[k].Load(); got != 1 {
			t.Fatalf("key-%d built %d times, want exactly 1 (singleflight)", k, got)
		}
		for g := 1; g < goroutinesPerKey; g++ {
			if vals[k][g] != vals[k][0] {
				t.Fatalf("key-%d: goroutine %d observed a different value", k, g)
			}
		}
	}
	entries, bytes := c.stats()
	if entries != keys {
		t.Fatalf("cache has %d entries, want %d", entries, keys)
	}
	if bytes <= 0 {
		t.Fatalf("cache accounted %d bytes, want > 0", bytes)
	}
	if n := testutil.WaitGoroutines(baseline, 5*time.Second); n > baseline {
		t.Fatalf("goroutine leak: %d live, baseline %d", n, baseline)
	}
}

// TestCacheBuildErrorNotCached: a failing build propagates to every
// concurrent waiter and leaves nothing resident, so a later call retries.
func TestCacheBuildErrorNotCached(t *testing.T) {
	defer testutil.Watchdog(t, time.Minute)()
	c := newPrepCache(1<<40, newMetrics())
	boom := fmt.Errorf("boom")
	var calls atomic.Int64

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, _, err := c.get("bad", func() (*built, error) {
				calls.Add(1)
				time.Sleep(10 * time.Millisecond) // let waiters pile up
				return nil, boom
			})
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d got nil error", g)
		}
	}
	if entries, _ := c.stats(); entries != 0 {
		t.Fatalf("error was cached: %d entries", entries)
	}
	// A fresh call retries the build (and can succeed).
	v, src, err := c.get("bad", buildFor(t, 100, 1))
	if err != nil || v == nil {
		t.Fatalf("retry after error: %v", err)
	}
	if src != sourceBuild {
		t.Fatalf("retry source = %s, want %s", src, sourceBuild)
	}
	if calls.Load() < 1 {
		t.Fatalf("build never ran")
	}
}

// TestCacheLRUEviction: exceeding the byte budget evicts least recently
// used entries, never the most recent one, and the accounting stays
// consistent.
func TestCacheLRUEviction(t *testing.T) {
	m := newMetrics()
	// Build one entry to learn its size, then budget for exactly two.
	probe, err := buildFor(t, 150, 1)()
	if err != nil {
		t.Fatal(err)
	}
	one := probe.prep.MemoryBytes()
	c := newPrepCache(2*one+one/2, m)

	for i := 0; i < 4; i++ {
		if _, _, err := c.get(fmt.Sprintf("k%d", i), buildFor(t, 150, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, bytes := c.stats()
	if entries > 2 {
		t.Fatalf("%d entries resident, budget allows 2", entries)
	}
	if bytes > 2*one+one/2 {
		t.Fatalf("resident bytes %d exceed budget", bytes)
	}
	if m.cacheEvictions.Load() == 0 {
		t.Fatalf("no evictions recorded")
	}
	// Most recent key must still be a hit.
	var hit bool
	_, src, err := c.get("k3", func() (*built, error) { hit = false; return nil, fmt.Errorf("rebuilt") })
	if err != nil || src != sourceHit {
		t.Fatalf("most recent entry evicted: src=%s err=%v hit=%v", src, err, hit)
	}
	// Oldest key must have been evicted → rebuilt.
	if _, src, err = c.get("k0", buildFor(t, 150, 0)); err != nil || src != sourceBuild {
		t.Fatalf("expected rebuild of evicted k0, got src=%s err=%v", src, err)
	}
}

// TestCacheKeyDiscriminates: the cache key must separate everything the
// preprocessing depends on and nothing else.
func TestCacheKeyDiscriminates(t *testing.T) {
	mol := molecule.GenerateProtein("m", 50, 1)
	same := molecule.GenerateProtein("other-name", 50, 1)
	base := evalOpts{bornEps: 0.9, epolEps: 0.9, surf: surface.Default()}

	if cacheKey(mol, base) != cacheKey(same, base) {
		t.Fatalf("key depends on molecule name")
	}
	epol := base
	epol.epolEps = 0.5
	if cacheKey(mol, base) != cacheKey(mol, epol) {
		t.Fatalf("key depends on ε_E (evaluation-time knob must share the entry)")
	}
	for name, mut := range map[string]func(*evalOpts){
		"bornEps": func(o *evalOpts) { o.bornEps = 0.5 },
		"subdiv":  func(o *evalOpts) { o.surf.SubdivLevel = 2 },
		"degree":  func(o *evalOpts) { o.surf.Degree = 3 },
	} {
		o := base
		mut(&o)
		if cacheKey(mol, base) == cacheKey(mol, o) {
			t.Fatalf("key ignores %s", name)
		}
	}
	other := molecule.GenerateProtein("m", 50, 2)
	if cacheKey(mol, base) == cacheKey(other, base) {
		t.Fatalf("key ignores molecule content")
	}
}
