package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"octgb/internal/core"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// MoleculeJSON is the wire form of a molecule: each atom is the 5-tuple
// [x, y, z, radius, charge] (Å, Å, elementary charges).
type MoleculeJSON struct {
	Name  string       `json:"name,omitempty"`
	Atoms [][5]float64 `json:"atoms"`
}

// FromMolecule converts to the wire form (used by clients and benches).
func FromMolecule(m *molecule.Molecule) MoleculeJSON {
	mj := MoleculeJSON{Name: m.Name, Atoms: make([][5]float64, m.N())}
	for i, a := range m.Atoms {
		mj.Atoms[i] = [5]float64{a.Pos.X, a.Pos.Y, a.Pos.Z, a.Radius, a.Charge}
	}
	return mj
}

// ToMolecule converts from the wire form and validates it.
func (mj *MoleculeJSON) ToMolecule() (*molecule.Molecule, error) {
	if len(mj.Atoms) == 0 {
		return nil, fmt.Errorf("empty molecule")
	}
	m := &molecule.Molecule{Name: mj.Name, Atoms: make([]molecule.Atom, len(mj.Atoms))}
	for i, a := range mj.Atoms {
		m.Atoms[i] = molecule.Atom{Pos: geom.V(a[0], a[1], a[2]), Radius: a[3], Charge: a[4]}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// PoseJSON is a rigid transform: optional row-major 3×3 rotation (identity
// when omitted) followed by a translation.
type PoseJSON struct {
	Rot *[9]float64 `json:"rot,omitempty"`
	T   [3]float64  `json:"t"`
}

// ToRigid converts to the geometry type.
func (p PoseJSON) ToRigid() geom.Rigid {
	r := geom.Identity()
	if p.Rot != nil {
		r.R = [3][3]float64{
			{p.Rot[0], p.Rot[1], p.Rot[2]},
			{p.Rot[3], p.Rot[4], p.Rot[5]},
			{p.Rot[6], p.Rot[7], p.Rot[8]},
		}
	}
	r.T = geom.V(p.T[0], p.T[1], p.T[2])
	return r
}

// FromRigid converts a transform to the wire form.
func FromRigid(r geom.Rigid) PoseJSON {
	return PoseJSON{
		Rot: &[9]float64{
			r.R[0][0], r.R[0][1], r.R[0][2],
			r.R[1][0], r.R[1][1], r.R[1][2],
			r.R[2][0], r.R[2][1], r.R[2][2],
		},
		T: [3]float64{r.T.X, r.T.Y, r.T.Z},
	}
}

// OptionsJSON are the per-request evaluation parameters; zero fields fall
// back to the server's configured defaults.
type OptionsJSON struct {
	BornEps         float64 `json:"born_eps,omitempty"`
	EpolEps         float64 `json:"epol_eps,omitempty"`
	ApproximateMath bool    `json:"approximate_math,omitempty"`
	SubdivLevel     int     `json:"subdiv_level,omitempty"`
	Degree          int     `json:"degree,omitempty"`
	// Precision selects the kernel storage tier: "f64" (default) or "f32"
	// (~1e-6 relative error, half the kernel memory). Unknown values fall back
	// to the server default.
	Precision string `json:"precision,omitempty"`
}

// EnergyRequest is the POST /v1/energy payload.
type EnergyRequest struct {
	Molecule MoleculeJSON `json:"molecule"`
	Options  *OptionsJSON `json:"options,omitempty"`
	// DeadlineMS bounds queue wait + evaluation; 0 uses the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// IncludeRadii returns the per-atom Born radii too.
	IncludeRadii bool `json:"include_radii,omitempty"`
}

// TimingsJSON is a per-request stage breakdown in milliseconds. Stages a
// cache hit skipped report 0.
type TimingsJSON struct {
	QueueMS   float64 `json:"queue_ms"`
	SurfaceMS float64 `json:"surface_ms"`
	PrepareMS float64 `json:"prepare_ms"`
	EvalMS    float64 `json:"eval_ms"`
}

// EnergyResponse is the POST /v1/energy result.
type EnergyResponse struct {
	RequestID string    `json:"request_id"`
	Name      string    `json:"name,omitempty"`
	Atoms     int       `json:"atoms"`
	Energy    float64   `json:"energy"` // kcal/mol
	BornRadii []float64 `json:"born_radii,omitempty"`
	// Cache is "hit", "miss" (this request built the entry) or "coalesced"
	// (another in-flight request built it; this one waited).
	Cache   string      `json:"cache"`
	Engine  string      `json:"engine"`
	Timings TimingsJSON `json:"timings"`
}

// SweepRequest is the POST /v1/sweep payload: a rigid-body pose sweep of a
// ligand, optionally against a fixed receptor. Requests with the same
// receptor, ligand and options arriving within the server's batch window
// are coalesced into one engine run.
type SweepRequest struct {
	// Receptor, when present, is merged with the posed ligand per pose and
	// per-pose binding deltas are returned.
	Receptor *MoleculeJSON `json:"receptor,omitempty"`
	Ligand   MoleculeJSON  `json:"ligand"`
	Poses    []PoseJSON    `json:"poses"`
	Options  *OptionsJSON  `json:"options,omitempty"`
	// ExactSurface forces re-sampling each pose's complex surface from
	// scratch. The default composes it from the cached receptor and ligand
	// surfaces (surface.PoseComposer) — exact for translations; poses that
	// carry a rotation automatically fall back to the re-sampling path.
	ExactSurface bool  `json:"exact_surface,omitempty"`
	DeadlineMS   int64 `json:"deadline_ms,omitempty"`
}

// SweepResponse is the POST /v1/sweep result. Energies[i] is the complex
// energy at pose i; with a receptor, Deltas[i] = Energies[i] −
// ReceptorEnergy − LigandEnergy is the polarization part of the binding
// energy.
type SweepResponse struct {
	RequestID      string    `json:"request_id"`
	Poses          int       `json:"poses"`
	Energies       []float64 `json:"energies"`
	Deltas         []float64 `json:"deltas,omitempty"`
	ReceptorEnergy float64   `json:"receptor_energy,omitempty"`
	LigandEnergy   float64   `json:"ligand_energy"`
	// BatchRequests / BatchPoses describe the coalesced engine run this
	// request rode in.
	BatchRequests int         `json:"batch_requests"`
	BatchPoses    int         `json:"batch_poses"`
	Cache         string      `json:"cache"`
	Timings       TimingsJSON `json:"timings"`
}

// StreamCreateRequest is the POST /v1/stream payload: the molecule to
// open an incremental session for. The response carries the session ID
// every subsequent frame and close call addresses.
type StreamCreateRequest struct {
	Molecule MoleculeJSON       `json:"molecule"`
	Options  *StreamOptionsJSON `json:"options,omitempty"`
	// DeadlineMS bounds queue wait + session construction.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// StreamOptionsJSON extends the per-request evaluation parameters with the
// incremental-session knobs (engine.SessionOptions); zero fields use the
// engine defaults.
type StreamOptionsJSON struct {
	OptionsJSON
	// ResweepEvery forces a full value resweep every k-th frame (0 → 64).
	ResweepEvery int `json:"resweep_every,omitempty"`
	// SlackFactor / MinSlack set the drift margin before interaction lists
	// re-derive (0 → 0.05 / 0.25 Å).
	SlackFactor float64 `json:"slack_factor,omitempty"`
	MinSlack    float64 `json:"min_slack,omitempty"`
	// RadiusTolerance is the relative staleness budget of the Born radii
	// the energy phase evaluates with (0 → 1e-6; negative → exact).
	RadiusTolerance float64 `json:"radius_tolerance,omitempty"`
}

// StreamCreateResponse is the POST /v1/stream result. Timings.PrepareMS
// covers the whole session build (surface + trees + initial evaluation).
type StreamCreateResponse struct {
	RequestID string      `json:"request_id"`
	SessionID string      `json:"session_id"`
	Name      string      `json:"name,omitempty"`
	Atoms     int         `json:"atoms"`
	QPoints   int         `json:"qpoints"`
	Energy    float64     `json:"energy"` // kcal/mol
	Timings   TimingsJSON `json:"timings"`
}

// MoveJSON is one atom move of a stream frame: atom index (original
// order) and absolute position (Å).
type MoveJSON struct {
	I   int        `json:"i"`
	Pos [3]float64 `json:"pos"`
}

// StreamFrameRequest is the POST /v1/stream/{id}/frame payload.
type StreamFrameRequest struct {
	Moves      []MoveJSON `json:"moves"`
	DeadlineMS int64      `json:"deadline_ms,omitempty"`
}

// StreamFrameResponse is one frame's result: the updated energy plus the
// frame's dirty-set counters (see engine.FrameReport). Timings.EvalMS is
// the frame evaluation time — the number the mode="stream" histogram
// tracks.
type StreamFrameResponse struct {
	RequestID        string      `json:"request_id"`
	SessionID        string      `json:"session_id"`
	Frame            int         `json:"frame"`
	Energy           float64     `json:"energy"` // kcal/mol
	MovedAtoms       int         `json:"moved_atoms"`
	DirtyBornRows    int         `json:"dirty_born_rows"`
	DirtyEpolDrivers int         `json:"dirty_epol_drivers"`
	PushedRadii      int         `json:"pushed_radii"`
	Rederived        int         `json:"rederived"`
	Resweep          bool        `json:"resweep,omitempty"`
	Refreshed        bool        `json:"refreshed,omitempty"`
	Timings          TimingsJSON `json:"timings"`
}

// StreamCloseResponse is the DELETE /v1/stream/{id} result.
type StreamCloseResponse struct {
	RequestID string  `json:"request_id"`
	SessionID string  `json:"session_id"`
	Frames    int     `json:"frames"`
	Energy    float64 `json:"energy"` // kcal/mol, as of the last frame
}

// ErrorResponse is every non-2xx payload. Error is a stable machine token:
// bad_request, too_large, queue_full, shed_load, draining,
// deadline_exceeded, eval_failed, method_not_allowed, not_found.
type ErrorResponse struct {
	RequestID    string `json:"request_id"`
	Error        string `json:"error"`
	Detail       string `json:"detail,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// maxBodyBytes bounds request decoding (a 200k-atom molecule is ~20 MB of
// JSON; leave generous headroom).
const maxBodyBytes = 256 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, reqID, token, detail string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+1)))
	}
	writeJSON(w, status, ErrorResponse{
		RequestID:    reqID,
		Error:        token,
		Detail:       detail,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// retryAfterHint estimates how long a rejected client should back off:
// the queue depth times the observed mean evaluation time (250ms floor
// before any evaluation has completed).
func (s *Server) retryAfterHint() time.Duration {
	mean := 250 * time.Millisecond
	if n := s.metrics.evals.Load(); n > 0 {
		mean = time.Duration(s.metrics.evalNS.Load() / n)
		if mean < 50*time.Millisecond {
			mean = 50 * time.Millisecond
		}
	}
	return time.Duration(len(s.queue)/s.cfg.Workers+1) * mean
}

func (s *Server) deadlineFor(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.cfg.DefaultDeadline
}

func (s *Server) handleEnergy(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, reqID, "method_not_allowed", "POST required", 0)
		return
	}
	s.metrics.energyRequests.Add(1)
	reqStart := time.Now()
	span := s.sobs.spanID()

	var req EnergyRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", err.Error(), 0)
		return
	}
	mol, err := req.Molecule.ToMolecule()
	if err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", err.Error(), 0)
		return
	}
	if mol.N() > s.cfg.MaxAtoms {
		writeError(w, http.StatusRequestEntityTooLarge, reqID, "too_large",
			fmt.Sprintf("%d atoms exceeds limit %d", mol.N(), s.cfg.MaxAtoms), 0)
		return
	}
	opts := s.resolveOpts(req.Options)

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()
	queued := time.Now()
	outCh := make(chan energyOutcome, 1)
	if err := s.submit(func() { outCh <- s.evalEnergy(ctx, mol, opts, span) }); err != nil {
		s.admissionError(w, reqID, err)
		return
	}
	select {
	case out := <-outCh:
		s.sobs.stage(s.sobs.queueWait, "serve.queue", span, queued, out.startedAt.Sub(queued))
		s.sobs.request(s.sobs.reqEnergy, "serve.energy", span, reqStart)
		if out.err != nil {
			s.metrics.failed.Add(1)
			writeError(w, http.StatusInternalServerError, reqID, "eval_failed", out.err.Error(), 0)
			return
		}
		s.metrics.completed.Add(1)
		resp := EnergyResponse{
			RequestID: reqID,
			Name:      mol.Name,
			Atoms:     mol.N(),
			Energy:    out.energy,
			Cache:     string(out.src),
			Engine:    out.engine,
			Timings: TimingsJSON{
				QueueMS:   msBetween(queued, out.startedAt),
				SurfaceMS: out.surfaceMS,
				PrepareMS: out.prepareMS,
				EvalMS:    out.evalMS,
			},
		}
		if req.IncludeRadii {
			resp.BornRadii = out.bornRadii
		}
		s.logf("serve: %s energy %s atoms=%d cache=%s E=%.6g (%s)", reqID, mol.Name, mol.N(), out.src, out.energy, out.engine)
		writeJSON(w, http.StatusOK, resp)
	case <-ctx.Done():
		s.metrics.deadlineMisses.Add(1)
		s.sobs.request(s.sobs.reqEnergy, "serve.energy", span, reqStart)
		writeError(w, http.StatusGatewayTimeout, reqID, "deadline_exceeded",
			"request deadline elapsed before evaluation completed", s.retryAfterHint())
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, reqID, "method_not_allowed", "POST required", 0)
		return
	}
	s.metrics.sweepRequests.Add(1)
	reqStart := time.Now()
	span := s.sobs.spanID()

	var req SweepRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", err.Error(), 0)
		return
	}
	lig, err := req.Ligand.ToMolecule()
	if err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "ligand: "+err.Error(), 0)
		return
	}
	var rec *molecule.Molecule
	if req.Receptor != nil {
		if rec, err = req.Receptor.ToMolecule(); err != nil {
			writeError(w, http.StatusBadRequest, reqID, "bad_request", "receptor: "+err.Error(), 0)
			return
		}
	}
	if len(req.Poses) == 0 {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "no poses", 0)
		return
	}
	atoms := lig.N()
	if rec != nil {
		atoms += rec.N()
	}
	if atoms > s.cfg.MaxAtoms {
		writeError(w, http.StatusRequestEntityTooLarge, reqID, "too_large",
			fmt.Sprintf("%d atoms exceeds limit %d", atoms, s.cfg.MaxAtoms), 0)
		return
	}
	// Admission: a sweep occupies a queue slot once its batch flushes;
	// apply the same gate (drain, tuned queue limit, shed threshold) up
	// front instead of after the window has been spent coalescing.
	if err := s.admissionCheck(); err != nil {
		s.admissionError(w, reqID, err)
		return
	}
	opts := s.resolveOpts(req.Options)
	poses := make([]geom.Rigid, len(req.Poses))
	for i, p := range req.Poses {
		poses[i] = p.ToRigid()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()
	wt := &sweepWaiter{
		ctx:      ctx,
		reqID:    reqID,
		poses:    poses,
		queuedAt: time.Now(),
		span:     span,
		out:      make(chan sweepOutcome, 1),
	}
	s.enqueueSweep(rec, lig, opts, req.ExactSurface, wt)

	select {
	case out := <-wt.out:
		s.sobs.stage(s.sobs.queueWait, "serve.queue", span, wt.queuedAt, out.startedAt.Sub(wt.queuedAt))
		s.sobs.request(s.sobs.reqSweep, "serve.sweep", span, reqStart)
		if out.err != nil {
			s.metrics.failed.Add(1)
			writeError(w, http.StatusInternalServerError, reqID, "eval_failed", out.err.Error(), 0)
			return
		}
		s.metrics.completed.Add(1)
		resp := SweepResponse{
			RequestID:      reqID,
			Poses:          len(out.energies),
			Energies:       out.energies,
			Deltas:         out.deltas,
			ReceptorEnergy: out.eRec,
			LigandEnergy:   out.eLig,
			BatchRequests:  out.batchRequests,
			BatchPoses:     out.batchPoses,
			Cache:          out.cache,
			Timings: TimingsJSON{
				QueueMS:   msBetween(wt.queuedAt, out.startedAt),
				SurfaceMS: out.surfaceMS,
				PrepareMS: out.prepareMS,
				EvalMS:    out.evalMS,
			},
		}
		s.logf("serve: %s sweep poses=%d batch=%d/%d cache=%s", reqID, len(out.energies), out.batchRequests, out.batchPoses, out.cache)
		writeJSON(w, http.StatusOK, resp)
	case <-ctx.Done():
		s.metrics.deadlineMisses.Add(1)
		s.sobs.request(s.sobs.reqSweep, "serve.sweep", span, reqStart)
		writeError(w, http.StatusGatewayTimeout, reqID, "deadline_exceeded",
			"request deadline elapsed before the sweep completed", s.retryAfterHint())
	}
}

func (s *Server) admissionError(w http.ResponseWriter, reqID string, err error) {
	switch err {
	case errQueueFull:
		writeError(w, http.StatusTooManyRequests, reqID, "queue_full",
			"submission queue is full", s.retryAfterHint())
	case errShedLoad:
		writeError(w, http.StatusTooManyRequests, reqID, "shed_load",
			"estimated queue wait exceeds the shed threshold", s.retryAfterHint())
	case errDraining:
		writeError(w, http.StatusServiceUnavailable, reqID, "draining",
			"server is shutting down", 0)
	default:
		writeError(w, http.StatusInternalServerError, reqID, "eval_failed", err.Error(), 0)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{"status": state})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

// resolveOpts folds request overrides over the server defaults.
func (s *Server) resolveOpts(o *OptionsJSON) evalOpts {
	e := evalOpts{
		bornEps: s.cfg.BornEps,
		epolEps: s.cfg.EpolEps,
		prec:    s.cfg.Precision,
		surf:    s.cfg.Surface,
	}
	if o != nil {
		if o.BornEps > 0 {
			e.bornEps = o.BornEps
		}
		if o.EpolEps > 0 {
			e.epolEps = o.EpolEps
		}
		e.approx = o.ApproximateMath
		if p, ok := core.ParsePrecision(o.Precision); ok && o.Precision != "" {
			e.prec = p
		}
		if o.SubdivLevel > 0 {
			e.surf.SubdivLevel = o.SubdivLevel
		}
		if o.Degree > 0 {
			e.surf.Degree = o.Degree
		}
	}
	return e
}

// evalOpts are the resolved per-request evaluation parameters. The
// Born-phase subset (bornEps + precision tier + surface options) keys the
// prepared cache; epolEps and approx apply at evaluation time only.
type evalOpts struct {
	bornEps float64
	epolEps float64
	approx  bool
	prec    core.Precision
	surf    surface.Options
}

// cacheKey identifies a prepared problem: molecule content hash plus every
// parameter the preprocessing depends on. The precision tier is part of
// the key — Prepare bakes the tier's storage mirrors into the solver, so
// f64 and f32 prepareds for one molecule are distinct entries.
func cacheKey(mol *molecule.Molecule, o evalOpts) string {
	return fmt.Sprintf("%s|b%g|s%d|d%d|r%g|p%s",
		mol.HashString(), o.bornEps, o.surf.SubdivLevel, o.surf.Degree, o.surf.RadiusScale, o.prec)
}

func msBetween(a, b time.Time) float64 {
	if b.Before(a) {
		return 0
	}
	return float64(b.Sub(a).Nanoseconds()) / 1e6
}
