package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"octgb/internal/molecule"
	"octgb/internal/testutil"
)

// The tests in this file are the stream-session lifecycle race matrix:
// store eviction (LRU and idle) and close racing in-flight frame
// evaluation. They are written to run under -race (the `make race` list
// includes this package) and assert the lifecycle contract directly: a
// frame that passed lookup completes against its session pointer even if
// the store drops the session mid-evaluation, and every post-removal
// request observes a clean 404 — never a torn session.

// grabSession fetches the live session pointer for white-box
// orchestration (holding its mutex stalls that session's next frame at
// the top of its worker closure).
func grabSession(t *testing.T, s *Server, id string) *streamSession {
	t.Helper()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	st := s.sessions[id]
	if st == nil {
		t.Fatalf("session %s not in store", id)
	}
	return st
}

// waitFrameDispatched waits until the submission queue is empty and n
// frame requests have entered their handler — at that point every fired
// frame has finished its session lookup (lookup precedes submit) and its
// closure has been handed to a worker.
func waitFrameDispatched(t *testing.T, s *Server, frames int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.streamFrames.Load() < frames || len(s.queue) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("frame never dispatched: frames=%d queue=%d",
				s.metrics.streamFrames.Load(), len(s.queue))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamRaceLRUEvictionVsInflightFrame: a frame is mid-evaluation on
// a worker when a create pushes the session out of the store (LRU,
// MaxSessions 1). The in-flight frame owns the session pointer, so it
// completes with 200; the next frame on the evicted id sees 404.
func TestStreamRaceLRUEvictionVsInflightFrame(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 2, Threads: 1, MaxSessions: 1})

	mol := molecule.GenerateProtein("lru-race", 120, 21)
	var a StreamCreateResponse
	if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{Molecule: FromMolecule(mol)}, &a); code != http.StatusOK {
		t.Fatalf("create A status %d", code)
	}
	wire, _ := jitterMoves(mol, 1, 3, 0.05, 7)
	frameURL := ts.URL + "/v1/stream/" + a.SessionID + "/frame"

	// Hold A's evaluation lock so the frame's worker closure parks after
	// lookup, leaving the race window open for as long as we need it.
	stA := grabSession(t, s, a.SessionID)
	stA.mu.Lock()
	frameDone := make(chan int, 1)
	var frameResp StreamFrameResponse
	go func() {
		frameDone <- postJSON(t, frameURL, StreamFrameRequest{Moves: wire[0]}, &frameResp)
	}()
	waitFrameDispatched(t, s, 1)

	// The create needs room in the size-1 store: it must evict A even
	// though A's frame is still on a worker.
	var b StreamCreateResponse
	if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{Molecule: FromMolecule(mol)}, &b); code != http.StatusOK {
		t.Fatalf("create B status %d", code)
	}
	if st := s.snapshot(); st.Streaming.EvictedLRU != 1 || st.Streaming.Live != 1 {
		t.Fatalf("after eviction: %+v", st.Streaming)
	}

	// Release the in-flight frame: it must complete normally against the
	// evicted-but-referenced session.
	stA.mu.Unlock()
	if code := <-frameDone; code != http.StatusOK {
		t.Fatalf("in-flight frame on evicted session: status %d", code)
	}
	if frameResp.Frame != 1 || frameResp.Energy == 0 {
		t.Fatalf("in-flight frame report %+v", frameResp)
	}

	// The store no longer knows A: the next frame is a clean 404, and the
	// survivor B still serves frames.
	var gone ErrorResponse
	if code := postJSON(t, frameURL, StreamFrameRequest{Moves: wire[0]}, &gone); code != http.StatusNotFound || gone.Error != "not_found" {
		t.Fatalf("post-eviction frame: status %d token %q", code, gone.Error)
	}
	if code := postJSON(t, ts.URL+"/v1/stream/"+b.SessionID+"/frame", StreamFrameRequest{Moves: wire[0]}, nil); code != http.StatusOK {
		t.Fatalf("survivor frame status %d", code)
	}
}

// TestStreamRaceCloseDuringFrame: DELETE races a frame that is already on
// a worker. The close wins the store map immediately; the frame still
// completes 200 through its own pointer, and everything after the close
// observes 404.
func TestStreamRaceCloseDuringFrame(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{Workers: 2, Threads: 1})

	mol := molecule.GenerateProtein("close-race", 120, 22)
	var created StreamCreateResponse
	if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{Molecule: FromMolecule(mol)}, &created); code != http.StatusOK {
		t.Fatalf("create status %d", code)
	}
	wire, _ := jitterMoves(mol, 1, 3, 0.05, 9)
	frameURL := ts.URL + "/v1/stream/" + created.SessionID + "/frame"

	st := grabSession(t, s, created.SessionID)
	st.mu.Lock()
	frameDone := make(chan int, 1)
	go func() {
		frameDone <- postJSON(t, frameURL, StreamFrameRequest{Moves: wire[0]}, nil)
	}()
	waitFrameDispatched(t, s, 1)

	// Close while the frame is parked on the session lock. The handler
	// removes the session from the store first, then waits for the lock to
	// read the final frame count — so it blocks until we release, which is
	// exactly the concurrency this test exists to exercise.
	closeDone := make(chan int, 1)
	var closed StreamCloseResponse
	go func() {
		closeDone <- doJSON(t, http.MethodDelete, ts.URL+"/v1/stream/"+created.SessionID, nil, &closed)
	}()
	// The close wins the map race even while the frame holds the session:
	// once the id is gone from the store, new frames 404 regardless of the
	// in-flight one.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.sessMu.Lock()
		_, live := s.sessions[created.SessionID]
		s.sessMu.Unlock()
		if !live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("close never removed the session from the store")
		}
		time.Sleep(time.Millisecond)
	}
	st.mu.Unlock()

	if code := <-frameDone; code != http.StatusOK {
		t.Fatalf("in-flight frame during close: status %d", code)
	}
	if code := <-closeDone; code != http.StatusOK {
		t.Fatalf("close status %d", code)
	}
	var gone ErrorResponse
	if code := postJSON(t, frameURL, StreamFrameRequest{Moves: wire[0]}, &gone); code != http.StatusNotFound {
		t.Fatalf("frame after close: status %d", code)
	}
	if st := s.snapshot(); st.Streaming.Live != 0 || st.Streaming.Closed != 1 {
		t.Fatalf("post-close stats %+v", st.Streaming)
	}
}

// TestStreamRaceIdleEvictionVsChurn runs create/frame/close churn across
// goroutines while another goroutine repeatedly ages every live session
// past the idle threshold. Any individual frame or close may land 200
// (it won) or 404 (the sweeper won) — anything else is a bug — and the
// lifecycle counters must balance exactly at the end.
func TestStreamRaceIdleEvictionVsChurn(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	s, ts := newTestServer(t, Config{
		Workers: 2, Threads: 1, MaxSessions: 4, MaxQueue: 256,
		SessionIdle: 50 * time.Millisecond,
	})

	mol := molecule.GenerateProtein("churn", 60, 23)
	molJSON := FromMolecule(mol)
	wire, _ := jitterMoves(mol, 1, 2, 0.05, 13)

	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Age everything past SessionIdle; the next store access (any
			// lookup or create) sweeps the aged sessions out.
			s.sessMu.Lock()
			for _, live := range s.sessions {
				live.lastUsed = time.Now().Add(-time.Minute)
			}
			s.sessMu.Unlock()
			// Slow enough that plenty of frames win the race too — the
			// interesting regime is the mix, not a sweeper that always wins.
			time.Sleep(15 * time.Millisecond)
		}
	}()

	const clients, rounds, framesPerSession = 4, 6, 3
	var createdOK, frameOK, frameGone, closeOK, closeGone atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var created StreamCreateResponse
				if code := postJSON(t, ts.URL+"/v1/stream", StreamCreateRequest{Molecule: molJSON}, &created); code != http.StatusOK {
					t.Errorf("churn create: status %d", code)
					return
				}
				createdOK.Add(1)
				for f := 0; f < framesPerSession; f++ {
					switch code := postJSON(t, ts.URL+"/v1/stream/"+created.SessionID+"/frame", StreamFrameRequest{Moves: wire[0]}, nil); code {
					case http.StatusOK:
						frameOK.Add(1)
					case http.StatusNotFound:
						frameGone.Add(1)
					default:
						t.Errorf("churn frame: status %d", code)
						return
					}
				}
				switch code := doJSON(t, http.MethodDelete, ts.URL+"/v1/stream/"+created.SessionID, nil, nil); code {
				case http.StatusOK:
					closeOK.Add(1)
				case http.StatusNotFound:
					closeGone.Add(1)
				default:
					t.Errorf("churn close: status %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	sweeps.Wait()

	st := s.snapshot()
	// Every session a client successfully created left the store exactly
	// one way: explicit close, LRU eviction, idle eviction, or it is still
	// live. The books must balance — a leak or a double-removal breaks it.
	total := st.Streaming.Closed + st.Streaming.EvictedLRU + st.Streaming.EvictedIdle + int64(st.Streaming.Live)
	if total != createdOK.Load() || st.Streaming.Created != createdOK.Load() {
		t.Fatalf("lifecycle books do not balance: created=%d closed=%d lru=%d idle=%d live=%d",
			st.Streaming.Created, st.Streaming.Closed, st.Streaming.EvictedLRU,
			st.Streaming.EvictedIdle, st.Streaming.Live)
	}
	if got := frameOK.Load() + frameGone.Load(); got != clients*rounds*framesPerSession {
		t.Fatalf("frame outcomes %d (ok %d, gone %d) != attempts %d",
			got, frameOK.Load(), frameGone.Load(), clients*rounds*framesPerSession)
	}
	if got := closeOK.Load() + closeGone.Load(); got != clients*rounds {
		t.Fatalf("close outcomes %d != attempts %d", got, clients*rounds)
	}
	if st.Streaming.EvictedIdle == 0 {
		t.Fatal("aging sweeper never evicted anything — the race never happened")
	}
	t.Logf("churn: created=%d frames ok=%d gone=%d closes ok=%d gone=%d evicted idle=%d lru=%d",
		createdOK.Load(), frameOK.Load(), frameGone.Load(), closeOK.Load(), closeGone.Load(),
		st.Streaming.EvictedIdle, st.Streaming.EvictedLRU)
}
