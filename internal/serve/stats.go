package serve

import (
	"sync/atomic"
	"time"

	"octgb/internal/obs"
)

// metrics is the server's counter set. Everything is atomic so the hot
// path never takes a lock to record.
type metrics struct {
	start time.Time

	energyRequests atomic.Int64
	sweepRequests  atomic.Int64
	completed      atomic.Int64
	failed         atomic.Int64

	rejectedQueueFull atomic.Int64
	rejectedDraining  atomic.Int64
	shedLoad          atomic.Int64 // rejected by the shed-latency threshold
	deadlineMisses    atomic.Int64
	canceled          atomic.Int64 // queued work abandoned before running

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheCoalesced atomic.Int64 // singleflight waiters
	cacheBuilds    atomic.Int64
	cacheEvictions atomic.Int64

	batchesRun      atomic.Int64
	batchedRequests atomic.Int64
	batchedPoses    atomic.Int64

	streamCreates     atomic.Int64
	streamFrames      atomic.Int64
	streamCloses      atomic.Int64
	streamEvictedIdle atomic.Int64
	streamEvictedLRU  atomic.Int64
	streamFrameNS     atomic.Int64 // completed frame evaluation time

	inflight atomic.Int64

	surfaceNS atomic.Int64 // surface sampling (cold builds + exact sweep poses)
	prepareNS atomic.Int64 // octree construction + Born phase
	evalNS    atomic.Int64 // E_pol evaluation
	buildNS   atomic.Int64 // whole cache builds (surface+prepare)
	evals     atomic.Int64 // E_pol evaluations executed

	evalsF32  atomic.Int64 // f32-tier subset of evals
	evalF32NS atomic.Int64 // f32-tier subset of evalNS
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

// StatsSnapshot is the GET /stats payload — a point-in-time copy of every
// counter plus derived queue/cache occupancy.
type StatsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Requests struct {
		Energy    int64 `json:"energy"`
		Sweep     int64 `json:"sweep"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
	} `json:"requests"`

	Admission struct {
		QueueDepth        int   `json:"queue_depth"`
		QueueCapacity     int   `json:"queue_capacity"`
		QueueLimit        int   `json:"queue_limit"`
		Inflight          int64 `json:"inflight"`
		Workers           int   `json:"workers"`
		RejectedQueueFull int64 `json:"rejected_queue_full"`
		RejectedDraining  int64 `json:"rejected_draining"`
		ShedLoad          int64 `json:"shed_load"`
		DeadlineMisses    int64 `json:"deadline_misses"`
		Canceled          int64 `json:"canceled"`
	} `json:"admission"`

	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Coalesced int64 `json:"coalesced"`
		Builds    int64 `json:"builds"`
		Evictions int64 `json:"evictions"`
		Entries   int   `json:"entries"`
		Bytes     int64 `json:"bytes"`
		MaxBytes  int64 `json:"max_bytes"`
	} `json:"cache"`

	Batching struct {
		BatchesRun      int64 `json:"batches_run"`
		BatchedRequests int64 `json:"batched_requests"`
		BatchedPoses    int64 `json:"batched_poses"`
	} `json:"batching"`

	// Streaming covers the stateful /v1/stream sessions: live store
	// occupancy against the cap, lifecycle counters and the total frame
	// evaluation time (FrameMSTotal / Frames ≈ mean incremental frame cost).
	Streaming struct {
		Live         int     `json:"live"`
		MaxSessions  int     `json:"max_sessions"`
		Created      int64   `json:"created"`
		Frames       int64   `json:"frames"`
		Closed       int64   `json:"closed"`
		EvictedIdle  int64   `json:"evicted_idle"`
		EvictedLRU   int64   `json:"evicted_lru"`
		FrameMSTotal float64 `json:"frame_ms_total"`
	} `json:"streaming"`

	Timings struct {
		SurfaceMSTotal float64 `json:"surface_ms_total"`
		PrepareMSTotal float64 `json:"prepare_ms_total"`
		EvalMSTotal    float64 `json:"eval_ms_total"`
		BuildMSTotal   float64 `json:"build_ms_total"`
		Evals          int64   `json:"evals"`
	} `json:"timings"`

	// Precision splits the evaluation counters by kernel storage tier
	// (requests select a tier with options.precision; see Config.Precision).
	Precision struct {
		F64Evals       int64   `json:"f64_evals"`
		F32Evals       int64   `json:"f32_evals"`
		F32EvalMSTotal float64 `json:"f32_eval_ms_total"`
	} `json:"precision"`

	// Latency is present only when the server runs with Config.Observe: the
	// request-latency quantiles of each endpoint, derived from the same
	// histograms /metrics exports.
	Latency *LatencySnapshot `json:"latency,omitempty"`

	// Tuner is present only when the closed-loop admission tuner runs: the
	// knobs currently in force, the SLO it targets, and its decision tally.
	Tuner *TunerSnapshot `json:"tuner,omitempty"`
}

// TunerSnapshot is the /stats view of the admission control loop.
type TunerSnapshot struct {
	SLO          SLO    `json:"slo"`
	Knobs        Knobs  `json:"knobs"`
	Decisions    int    `json:"decisions"`
	LastDecision string `json:"last_decision,omitempty"`
}

// LatencySnapshot is the /stats request-latency block (observer-enabled
// servers only).
type LatencySnapshot struct {
	Energy EndpointLatency `json:"energy"`
	Sweep  EndpointLatency `json:"sweep"`
}

// EndpointLatency summarizes one endpoint's request-latency histogram.
// Quantiles are upper bucket bounds (see obs.HistSnapshot.Quantile).
type EndpointLatency struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

func endpointLatency(h *obs.Histogram) EndpointLatency {
	snap := h.Snapshot()
	return EndpointLatency{
		Count: int64(snap.Count),
		P50MS: float64(snap.Quantile(0.50)) / 1e6,
		P95MS: float64(snap.Quantile(0.95)) / 1e6,
		P99MS: float64(snap.Quantile(0.99)) / 1e6,
	}
}

// LoadStats is the instantaneous load view a fabric worker agent reports
// on its membership heartbeats (internal/fabric): admission gauges
// against pool capacity plus shard warmth. Plain ints so fabric maps the
// fields without serve importing it.
type LoadStats struct {
	Workers      int
	QueueDepth   int
	Inflight     int64
	Sessions     int
	CacheEntries int
	CacheHits    int64
	CacheMisses  int64
}

// LoadStats returns the current load view; safe for concurrent use.
func (s *Server) LoadStats() LoadStats {
	entries, _ := s.cache.stats()
	s.sessMu.Lock()
	live := len(s.sessions)
	s.sessMu.Unlock()
	return LoadStats{
		Workers:      s.cfg.Workers,
		QueueDepth:   len(s.queue),
		Inflight:     s.metrics.inflight.Load(),
		Sessions:     live,
		CacheEntries: entries,
		CacheHits:    s.metrics.cacheHits.Load(),
		CacheMisses:  s.metrics.cacheMisses.Load(),
	}
}

func (s *Server) snapshot() StatsSnapshot {
	m := s.metrics
	var out StatsSnapshot
	out.UptimeSeconds = time.Since(m.start).Seconds()
	out.Draining = s.draining.Load()

	out.Requests.Energy = m.energyRequests.Load()
	out.Requests.Sweep = m.sweepRequests.Load()
	out.Requests.Completed = m.completed.Load()
	out.Requests.Failed = m.failed.Load()

	out.Admission.QueueDepth = len(s.queue)
	out.Admission.QueueCapacity = cap(s.queue)
	out.Admission.QueueLimit = int(s.queueLimit.Load())
	out.Admission.Inflight = m.inflight.Load()
	out.Admission.Workers = s.cfg.Workers
	out.Admission.RejectedQueueFull = m.rejectedQueueFull.Load()
	out.Admission.RejectedDraining = m.rejectedDraining.Load()
	out.Admission.ShedLoad = m.shedLoad.Load()
	out.Admission.DeadlineMisses = m.deadlineMisses.Load()
	out.Admission.Canceled = m.canceled.Load()

	entries, bytes := s.cache.stats()
	out.Cache.Hits = m.cacheHits.Load()
	out.Cache.Misses = m.cacheMisses.Load()
	out.Cache.Coalesced = m.cacheCoalesced.Load()
	out.Cache.Builds = m.cacheBuilds.Load()
	out.Cache.Evictions = m.cacheEvictions.Load()
	out.Cache.Entries = entries
	out.Cache.Bytes = bytes
	out.Cache.MaxBytes = s.cfg.MaxCacheBytes

	out.Batching.BatchesRun = m.batchesRun.Load()
	out.Batching.BatchedRequests = m.batchedRequests.Load()
	out.Batching.BatchedPoses = m.batchedPoses.Load()

	s.sessMu.Lock()
	out.Streaming.Live = len(s.sessions)
	s.sessMu.Unlock()
	out.Streaming.MaxSessions = s.cfg.MaxSessions
	out.Streaming.Created = m.streamCreates.Load()
	out.Streaming.Frames = m.streamFrames.Load()
	out.Streaming.Closed = m.streamCloses.Load()
	out.Streaming.EvictedIdle = m.streamEvictedIdle.Load()
	out.Streaming.EvictedLRU = m.streamEvictedLRU.Load()
	out.Streaming.FrameMSTotal = float64(m.streamFrameNS.Load()) / 1e6

	out.Timings.SurfaceMSTotal = float64(m.surfaceNS.Load()) / 1e6
	out.Timings.PrepareMSTotal = float64(m.prepareNS.Load()) / 1e6
	out.Timings.EvalMSTotal = float64(m.evalNS.Load()) / 1e6
	out.Timings.BuildMSTotal = float64(m.buildNS.Load()) / 1e6
	out.Timings.Evals = m.evals.Load()

	f32 := m.evalsF32.Load()
	out.Precision.F64Evals = out.Timings.Evals - f32
	out.Precision.F32Evals = f32
	out.Precision.F32EvalMSTotal = float64(m.evalF32NS.Load()) / 1e6

	if s.sobs.ob != nil {
		out.Latency = &LatencySnapshot{
			Energy: endpointLatency(s.sobs.reqEnergy),
			Sweep:  endpointLatency(s.sobs.reqSweep),
		}
	}
	if s.tuner != nil {
		s.tunerMu.Lock()
		ts := &TunerSnapshot{
			SLO:       s.tuner.cfg.SLO,
			Decisions: len(s.tuner.log),
		}
		if n := len(s.tuner.log); n > 0 {
			ts.LastDecision = s.tuner.log[n-1].String()
		}
		s.tunerMu.Unlock()
		ts.Knobs = s.CurrentKnobs()
		out.Tuner = ts
	}
	return out
}
