// Package serve is the production serving layer of the library: a
// long-running HTTP/JSON evaluation service in front of the engine layer
// that amortizes preprocessing across requests.
//
// Every one-shot entry point (cmd/epol, examples) rebuilds the molecular
// surface, both octrees and the Born radii from scratch per evaluation,
// even though docking-style workloads evaluate thousands of requests
// against the same molecule. This package keeps a content-hash-keyed LRU
// of prepared problems (engine.Prepared: surface + octrees + Born radii)
// with singleflight deduplication, so concurrent requests for the same
// molecule build once and subsequent requests skip straight to the E_pol
// evaluation — the paper's §IV-C "octree construction as preprocessing",
// applied across a request stream.
//
// The service layers three mechanisms over the cache:
//
//   - Request batching: pose-sweep requests (POST /v1/sweep) that target
//     the same receptor/ligand pair with the same parameters and arrive
//     within Config.BatchWindow are coalesced into one engine run that
//     shares the prepared receptor and ligand and, by default, composes
//     each translated pose's complex surface from the cached parts
//     (surface.PoseComposer) instead of re-sampling it; rotated poses
//     fall back to re-sampling, which is valid for any rigid transform.
//
//   - Admission control and backpressure: evaluations run on a bounded
//     worker pool (Config.Workers slots over the shared-memory engine;
//     the hybrid OCT_MPI+CILK engine when Config.Ranks > 1) behind a
//     bounded submission queue. A full queue yields a typed 429 with a
//     Retry-After hint; a draining server yields 503; a missed deadline
//     yields 504 and the queued work is abandoned before it runs.
//
//   - Observability: every request gets an ID; cache hits/misses, queue
//     depth, rejections, batch coalescing and per-stage timings (surface /
//     tree build / eval) are exposed on GET /stats and echoed per request.
//
//   - Streaming sessions: POST /v1/stream creates a stateful incremental
//     session (engine.Session) for a moving molecule; POST
//     /v1/stream/{id}/frame posts one frame of atom moves and gets the
//     updated energy back at O(changed atoms) cost; DELETE /v1/stream/{id}
//     closes it. The session store is capped at Config.MaxSessions (LRU
//     eviction) with idle eviction after Config.SessionIdle; frames ride
//     the same admission-controlled worker pool as one-shot requests.
//
// Endpoints: POST /v1/energy, POST /v1/sweep, POST /v1/stream,
// POST /v1/stream/{id}/frame, DELETE /v1/stream/{id}, GET /healthz,
// GET /stats. See DESIGN.md §9/§12 for the architecture and README
// "Serving"/"Streaming" for curl quickstarts.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"octgb/internal/core"
	"octgb/internal/obs"
	"octgb/internal/surface"
)

// Config configures a Server. The zero value serves on DefaultAddr with
// conservative defaults; see the field docs.
type Config struct {
	// Addr is the listen address (default ":8686"). Start binds it; tests
	// can instead mount Handler() on their own listener.
	Addr string
	// Workers is the worker-pool size — the maximum number of evaluations
	// in flight (default 2). Each evaluation is itself parallel over
	// Threads.
	Workers int
	// Threads is the work-stealing thread count per evaluation (default 2).
	Threads int
	// Ranks selects the engine for cold (uncached) evaluations: 1 (default)
	// runs the shared-memory OCT_CILK path; > 1 runs the hybrid
	// OCT_MPI+CILK engine with that many in-process ranks (the
	// configuration used in front of a cmd/epolnode mesh deployment).
	// Cached re-evaluations always use the prepared shared-memory path;
	// the two agree to ~1e-12 (see the engine parity tests).
	Ranks int
	// MaxQueue is the submission-queue capacity (default 64). Requests
	// beyond it are rejected with 429.
	MaxQueue int
	// MaxCacheBytes is the prepared-problem cache budget (default 256 MiB).
	// Least-recently-used entries are evicted when the estimated resident
	// size (engine.Prepared.MemoryBytes) exceeds it.
	MaxCacheBytes int64
	// MaxAtoms rejects oversized molecules up front (default 200000).
	MaxAtoms int
	// BatchWindow is how long a new sweep batch waits for compatible
	// requests to coalesce before running (default 5ms).
	BatchWindow time.Duration
	// MaxSessions caps the number of live /v1/stream sessions (default 8).
	// Sessions hold prepared state resident (tens of MB for protein-scale
	// molecules); creating one past the cap evicts the least-recently-used
	// live session, whose subsequent frames get 404 not_found.
	MaxSessions int
	// SessionIdle evicts stream sessions that have not seen a frame for
	// this long (default 5m). Checked on every stream request.
	SessionIdle time.Duration
	// DefaultDeadline bounds a request's total latency (queue wait +
	// evaluation) when the request does not set deadline_ms (default 60s).
	DefaultDeadline time.Duration
	// BornEps / EpolEps are the default approximation parameters when a
	// request does not override them (default 0.9/0.9, the paper's
	// operating point).
	BornEps, EpolEps float64
	// Precision is the default kernel storage tier when a request does not
	// override it (core.Float64; core.Float32 trades ~1e-6 relative error
	// for throughput and half the hot-path memory). Requests select a tier
	// with OptionsJSON.Precision ("f64"/"f32"); the tier is part of the
	// prepared-cache key, so both tiers of one molecule can be resident.
	Precision core.Precision
	// Surface is the default surface sampling resolution.
	Surface surface.Options
	// Logger receives request and lifecycle logs; nil is silent.
	Logger *log.Logger
	// ReadHeaderTimeout / ReadTimeout / IdleTimeout harden the listener
	// against slow or stalled clients (Slowloris-style header dribbling,
	// abandoned keep-alive connections). Zero applies the defaults (10s /
	// 5m / 2m); a negative value disables that timeout. ReadTimeout's
	// default is generous because energy request bodies can be tens of MB.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	// Observe attaches metrics and tracing: request/queue/stage latency
	// histograms on the registry, per-request spans on the tracer, and the
	// /metrics, /debug/trace and /debug/pprof/* endpoints on the mux (kept
	// outside the drain gate so scrapes survive shutdown). Engine runs
	// triggered by requests share the same observer, so one scrape shows
	// the serve, engine and scheduler layers together. Nil (the default)
	// disables all of it at zero cost.
	Observe *obs.Observer
	// Tuner enables the closed-loop admission tuner: every Interval the
	// server diffs its own latency histograms and adjusts the batch
	// window, effective queue depth and shed-load threshold against the
	// configured SLO (see TunerConfig). Requires observability — a nil
	// Observe is promoted to a fresh obs.New() when a tuner is configured,
	// because the control loop feeds on the histograms. Nil (the default)
	// leaves all knobs at their configured values.
	Tuner *TunerConfig
}

// DefaultAddr is the default listen address.
const DefaultAddr = ":8686"

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = DefaultAddr
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxCacheBytes <= 0 {
		c.MaxCacheBytes = 256 << 20
	}
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 200000
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 5 * time.Millisecond
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.SessionIdle <= 0 {
		c.SessionIdle = 5 * time.Minute
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.BornEps == 0 {
		c.BornEps = 0.9
	}
	if c.EpolEps == 0 {
		c.EpolEps = 0.9
	}
	if c.Surface == (surface.Options{}) {
		c.Surface = surface.Default()
	}
	c.ReadHeaderTimeout = resolveTimeout(c.ReadHeaderTimeout, 10*time.Second)
	c.ReadTimeout = resolveTimeout(c.ReadTimeout, 5*time.Minute)
	c.IdleTimeout = resolveTimeout(c.IdleTimeout, 2*time.Minute)
	if c.Tuner != nil && c.Tuner.SLO.P99 > 0 && c.Observe == nil {
		// The tuner reads the latency histograms; without an observer there
		// is nothing to close the loop on.
		c.Observe = obs.New()
	}
	return c
}

// resolveTimeout maps the Config timeout convention onto http.Server's:
// zero means def, negative means disabled (http.Server's zero).
func resolveTimeout(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	default:
		return v
	}
}

// Server is a resident E_pol evaluation service. Create with New, mount
// Handler on a listener or call Start, and stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *metrics
	cache   *prepCache
	mux     *http.ServeMux
	sobs    serveObs

	queue        chan func()
	stopCh       chan struct{} // closed once by Shutdown after handlers drain
	workers      sync.WaitGroup
	handlersLive atomic.Int64
	draining     atomic.Bool
	stopped      atomic.Bool

	pendingMu sync.Mutex
	pending   map[string]*pendingSweep

	sessMu   sync.Mutex
	sessions map[string]*streamSession
	sessSeq  atomic.Int64

	// Tunable admission knobs, owned by the tuner loop (or pinned at the
	// configured defaults when no tuner runs). Read lock-free on every
	// admission decision and batch open.
	batchWindowNS atomic.Int64
	queueLimit    atomic.Int64
	shedLatNS     atomic.Int64

	tunerMu sync.Mutex
	tuner   *Tuner

	nonce  string
	reqSeq atomic.Int64

	httpMu   sync.Mutex
	httpSrv  *http.Server
	listener net.Listener
}

// New builds a Server and starts its worker pool. The HTTP side is not
// bound until Start (or until the caller mounts Handler themselves).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(),
		queue:    make(chan func(), cfg.MaxQueue),
		stopCh:   make(chan struct{}),
		pending:  make(map[string]*pendingSweep),
		sessions: make(map[string]*streamSession),
	}
	s.cache = newPrepCache(cfg.MaxCacheBytes, s.metrics)
	s.sobs = newServeObs(cfg.Observe)
	s.batchWindowNS.Store(int64(cfg.BatchWindow))
	s.queueLimit.Store(int64(cfg.MaxQueue))
	var nb [4]byte
	_, _ = rand.Read(nb[:])
	s.nonce = hex.EncodeToString(nb[:])

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/energy", s.wrap(s.handleEnergy))
	s.mux.HandleFunc("/v1/sweep", s.wrap(s.handleSweep))
	s.mux.HandleFunc("/v1/stream", s.wrap(s.handleStreamCreate))
	s.mux.HandleFunc("/v1/stream/", s.wrap(s.handleStreamSub))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	if cfg.Observe != nil {
		s.mountDebug(cfg.Observe)
	}

	for w := 0; w < cfg.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	if cfg.Tuner != nil && cfg.Tuner.SLO.P99 > 0 {
		tc := cfg.Tuner.withDefaults(cfg.Workers, cfg.MaxQueue, cfg.BatchWindow)
		s.tuner = NewTuner(tc, Knobs{
			BatchWindow: cfg.BatchWindow,
			QueueLimit:  cfg.MaxQueue,
		})
		s.workers.Add(1)
		go s.tunerLoop(tc)
	}
	return s
}

// Handler returns the HTTP handler tree — the hook for tests and for
// embedding the service behind an existing mux or TLS terminator.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds cfg.Addr and serves until Shutdown. It returns once the
// listener is bound; serving continues in the background.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.httpMu.Lock()
	s.listener = ln
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	srv := s.httpSrv
	s.httpMu.Unlock()
	s.logf("serve: listening on %s (workers=%d threads=%d ranks=%d queue=%d cache=%dMiB)",
		ln.Addr(), s.cfg.Workers, s.cfg.Threads, s.cfg.Ranks, s.cfg.MaxQueue, s.cfg.MaxCacheBytes>>20)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("serve: %v", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (useful with ":0"), or "" before
// Start.
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Shutdown drains the server gracefully: new requests are rejected with
// 503 immediately, in-flight requests (including queued ones) run to
// completion, then the worker pool stops. It returns ctx.Err() if the
// drain does not finish in time; the server is unusable afterwards either
// way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.logf("serve: draining")

	// Parked sweep handlers are in-flight HTTP requests: srv.Shutdown below
	// waits for them, and they are waiting for their batch's window timer.
	// Flush every pending batch now (stopping its timer) so shutdown
	// latency is bounded by evaluation time, not by BatchWindow.
	s.flushAllPending()

	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
	}

	// Wait for handler goroutines (covers Handler() mounted on external
	// listeners, e.g. httptest) — every waiter they registered resolves
	// before they return. Polled so stragglers that race the drain can
	// still register, get their 503, and unregister without tripping
	// WaitGroup reuse rules. A single reused ticker paces the poll (the
	// previous per-iteration time.After allocated a timer every
	// millisecond for the whole drain). Stragglers admitted before the
	// draining flag flipped can also still open a batch, so the flush
	// repeats inside the loop.
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.handlersLive.Load() > 0 {
		s.flushAllPending()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}

	if s.stopped.CompareAndSwap(false, true) {
		close(s.stopCh)
	}
	workersDone := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		s.logf("serve: drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker executes queued evaluations until the server stops; on stop it
// drains whatever is already queued so accepted work is never dropped.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case f := <-s.queue:
			s.metrics.inflight.Add(1)
			f()
			s.metrics.inflight.Add(-1)
		case <-s.stopCh:
			for {
				select {
				case f := <-s.queue:
					s.metrics.inflight.Add(1)
					f()
					s.metrics.inflight.Add(-1)
				default:
					return
				}
			}
		}
	}
}

// errQueueFull, errDraining and errShedLoad are the typed admission
// failures.
var (
	errQueueFull = fmt.Errorf("serve: queue full")
	errDraining  = fmt.Errorf("serve: draining")
	errShedLoad  = fmt.Errorf("serve: load shed")
)

// admissionCheck is the shared admission gate: draining reject, effective
// queue-depth limit (the tuner's knob — it can sit below the channel's
// physical capacity), and the shed-load threshold (reject arrivals whose
// estimated queue wait would already blow the latency budget, instead of
// parking them to time out and drag everything behind them down). Counts
// the matching rejection metric; the caller maps the error onto HTTP.
func (s *Server) admissionCheck() error {
	if s.draining.Load() {
		s.metrics.rejectedDraining.Add(1)
		return errDraining
	}
	depth := len(s.queue)
	if depth >= int(s.queueLimit.Load()) {
		s.metrics.rejectedQueueFull.Add(1)
		return errQueueFull
	}
	if shed := s.shedLatNS.Load(); shed > 0 && depth >= s.cfg.Workers {
		if n := s.metrics.evals.Load(); n > 0 {
			est := int64(depth/s.cfg.Workers) * (s.metrics.evalNS.Load() / n)
			if est > shed {
				s.metrics.shedLoad.Add(1)
				return errShedLoad
			}
		}
	}
	return nil
}

// submit enqueues an evaluation without blocking; admission control lives
// here. The returned error is errQueueFull, errShedLoad or errDraining.
func (s *Server) submit(f func()) error {
	if err := s.admissionCheck(); err != nil {
		return err
	}
	select {
	case s.queue <- f:
		return nil
	default:
		s.metrics.rejectedQueueFull.Add(1)
		return errQueueFull
	}
}

// batchWindow returns the current (possibly tuned) sweep coalescing
// window.
func (s *Server) batchWindow() time.Duration {
	return time.Duration(s.batchWindowNS.Load())
}

// tunerWindow is one control-loop sample: cumulative counters plus
// histogram snapshots, diffed against the previous sample to produce the
// window the tuner decides on.
type tunerWindow struct {
	at                        time.Time
	completed, rejected, shed int64
	req, queue                obs.HistSnapshot
}

func (s *Server) tunerSample() tunerWindow {
	return tunerWindow{
		at:        time.Now(),
		completed: s.metrics.completed.Load(),
		rejected:  s.metrics.rejectedQueueFull.Load(),
		shed:      s.metrics.shedLoad.Load(),
		req: s.sobs.reqEnergy.Snapshot().
			Add(s.sobs.reqSweep.Snapshot()).
			Add(s.sobs.reqStream.Snapshot()),
		queue: s.sobs.queueWait.Snapshot(),
	}
}

// diff converts two samples into the tuner's window observations.
func (w tunerWindow) diff(prev tunerWindow) TunerInputs {
	return TunerInputs{
		Elapsed:   w.at.Sub(prev.at),
		Completed: uint64(w.completed - prev.completed),
		Rejected:  uint64(w.rejected - prev.rejected),
		Shed:      uint64(w.shed - prev.shed),
		Request:   w.req.Sub(prev.req),
		Queue:     w.queue.Sub(prev.queue),
	}
}

// tunerLoop is the control loop: every Interval it feeds the window diff
// to the tuner and publishes the resulting knobs to the admission atomics.
// Exits when the server stops.
func (s *Server) tunerLoop(tc TunerConfig) {
	defer s.workers.Done()
	tick := time.NewTicker(tc.Interval)
	defer tick.Stop()
	prev := s.tunerSample()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			cur := s.tunerSample()
			in := cur.diff(prev)
			prev = cur
			s.tunerMu.Lock()
			d := s.tuner.Step(in)
			s.tunerMu.Unlock()
			s.applyKnobs(d.Knobs)
			if d.Action != "hold" && d.Action != "idle" {
				s.logf("serve: tuner %s", d)
			}
		}
	}
}

// applyKnobs publishes tuner decisions to the lock-free admission path.
func (s *Server) applyKnobs(k Knobs) {
	s.batchWindowNS.Store(int64(k.BatchWindow))
	s.queueLimit.Store(int64(k.QueueLimit))
	s.shedLatNS.Store(int64(k.ShedLatency))
}

// TunerDecisions returns a copy of the tuner's decision log (nil when no
// tuner is configured) — the hook the load harness and /stats use.
func (s *Server) TunerDecisions() []Decision {
	if s.tuner == nil {
		return nil
	}
	s.tunerMu.Lock()
	defer s.tunerMu.Unlock()
	return append([]Decision(nil), s.tuner.Log()...)
}

// CurrentKnobs returns the admission knobs currently in force.
func (s *Server) CurrentKnobs() Knobs {
	return Knobs{
		BatchWindow: time.Duration(s.batchWindowNS.Load()),
		QueueLimit:  int(s.queueLimit.Load()),
		ShedLatency: time.Duration(s.shedLatNS.Load()),
	}
}

// submitBatch enqueues a coalesced batch. Batches represent requests that
// were already admitted, so a full queue blocks instead of rejecting; a
// stopped server fails the send (the batch's waiters are all gone by
// then — Shutdown drains handlers before stopping workers).
func (s *Server) submitBatch(f func()) bool {
	select {
	case <-s.stopCh:
		return false
	default:
	}
	select {
	case s.queue <- f:
		return true
	case <-s.stopCh:
		return false
	}
}

// nextReqID mints a request ID: a per-process nonce plus a sequence
// number, grep-friendly across the request log and /stats.
func (s *Server) nextReqID() string {
	return fmt.Sprintf("%s-%06d", s.nonce, s.reqSeq.Add(1))
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// wrap is the common handler shell: handler-liveness accounting for
// graceful drain plus the draining fast-reject.
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.handlersLive.Add(1)
		defer s.handlersLive.Add(-1)
		if s.draining.Load() {
			s.metrics.rejectedDraining.Add(1)
			writeError(w, http.StatusServiceUnavailable, s.nextReqID(), "draining", "server is shutting down", 0)
			return
		}
		h(w, r)
	}
}
