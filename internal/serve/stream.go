package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/geom"
)

// streamSession is one live /v1/stream session: an engine.Session plus the
// bookkeeping the store needs for LRU and idle eviction. engine.Session is
// not safe for concurrent use, so frames against one session serialize on
// mu (each still occupies a worker slot while it runs — streams share the
// pool's admission control with one-shot requests).
type streamSession struct {
	id      string
	mu      sync.Mutex
	ss      *engine.Session
	created time.Time

	// lastUsed is guarded by the server's sessMu (not mu): eviction scans
	// must read it without blocking behind a long frame evaluation.
	lastUsed time.Time
}

// streamOptions maps resolved request options onto the engine session.
func (s *Server) streamOptions(o evalOpts, so *StreamOptionsJSON) engine.SessionOptions {
	out := engine.SessionOptions{
		Surf: o.surf,
		Eval: engine.Options{
			Threads:   s.cfg.Threads,
			BornEps:   o.bornEps,
			EpolEps:   o.epolEps,
			Precision: o.prec,
			Observe:   s.cfg.Observe,
		},
	}
	if o.approx {
		out.Eval.Math = gb.Approximate
	}
	if so != nil {
		out.ResweepEvery = so.ResweepEvery
		out.SlackFactor = so.SlackFactor
		out.MinSlack = so.MinSlack
		out.RadiusTolerance = so.RadiusTolerance
	}
	return out
}

// evictSessionsLocked drops idle-expired sessions and, while the store
// holds at least max live sessions, the least-recently-used one. Called
// with sessMu held; needRoom is true when a create wants a free slot.
func (s *Server) evictSessionsLocked(needRoom bool) {
	now := time.Now()
	for id, st := range s.sessions {
		if now.Sub(st.lastUsed) > s.cfg.SessionIdle {
			delete(s.sessions, id)
			s.metrics.streamEvictedIdle.Add(1)
			s.logf("serve: stream %s evicted (idle %v)", id, now.Sub(st.lastUsed).Round(time.Second))
		}
	}
	if !needRoom {
		return
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		oldest := ""
		var oldestAt time.Time
		for id, st := range s.sessions {
			if oldest == "" || st.lastUsed.Before(oldestAt) {
				oldest, oldestAt = id, st.lastUsed
			}
		}
		if oldest == "" {
			return
		}
		delete(s.sessions, oldest)
		s.metrics.streamEvictedLRU.Add(1)
		s.logf("serve: stream %s evicted (LRU, cap %d)", oldest, s.cfg.MaxSessions)
	}
}

// lookupSession touches and returns a live session, or nil.
func (s *Server) lookupSession(id string) *streamSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.evictSessionsLocked(false)
	st := s.sessions[id]
	if st != nil {
		st.lastUsed = time.Now()
	}
	return st
}

// handleStreamCreate is POST /v1/stream: build an incremental session for
// the molecule (preprocessing runs on a worker under admission control)
// and register it in the capped session store.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, reqID, "method_not_allowed", "POST required", 0)
		return
	}
	s.metrics.streamCreates.Add(1)
	reqStart := time.Now()
	span := s.sobs.spanID()

	var req StreamCreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", err.Error(), 0)
		return
	}
	mol, err := req.Molecule.ToMolecule()
	if err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", err.Error(), 0)
		return
	}
	if mol.N() > s.cfg.MaxAtoms {
		writeError(w, http.StatusRequestEntityTooLarge, reqID, "too_large",
			fmt.Sprintf("%d atoms exceeds limit %d", mol.N(), s.cfg.MaxAtoms), 0)
		return
	}
	var base *OptionsJSON
	if req.Options != nil {
		base = &req.Options.OptionsJSON
	}
	so := s.streamOptions(s.resolveOpts(base), req.Options)

	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	queued := time.Now()
	type createOut struct {
		ss        *engine.Session
		startedAt time.Time
		err       error
	}
	outCh := make(chan createOut, 1)
	if err := s.submit(func() {
		out := createOut{startedAt: time.Now()}
		if ctx.Err() != nil {
			s.metrics.canceled.Add(1)
			out.err = ctx.Err()
		} else {
			out.ss, out.err = engine.NewSession(mol, so)
		}
		outCh <- out
	}); err != nil {
		s.admissionError(w, reqID, err)
		return
	}
	select {
	case out := <-outCh:
		s.sobs.stage(s.sobs.queueWait, "serve.queue", span, queued, out.startedAt.Sub(queued))
		s.sobs.request(s.sobs.reqStream, "serve.stream", span, reqStart)
		if out.err != nil {
			s.metrics.failed.Add(1)
			writeError(w, http.StatusInternalServerError, reqID, "eval_failed", out.err.Error(), 0)
			return
		}
		st := &streamSession{
			id:      fmt.Sprintf("s-%s-%04d", s.nonce, s.sessSeq.Add(1)),
			ss:      out.ss,
			created: time.Now(),
		}
		s.sessMu.Lock()
		s.evictSessionsLocked(true)
		st.lastUsed = time.Now()
		s.sessions[st.id] = st
		s.sessMu.Unlock()
		s.metrics.completed.Add(1)
		s.sobs.stage(s.sobs.streamCreate, "serve.stream.create", span, out.startedAt, time.Since(out.startedAt))
		s.logf("serve: %s stream create %s atoms=%d qpts=%d E=%.6g", reqID, st.id, out.ss.NumAtoms(), out.ss.NumQPoints(), out.ss.Energy())
		writeJSON(w, http.StatusOK, StreamCreateResponse{
			RequestID: reqID,
			SessionID: st.id,
			Name:      mol.Name,
			Atoms:     out.ss.NumAtoms(),
			QPoints:   out.ss.NumQPoints(),
			Energy:    out.ss.Energy(),
			Timings: TimingsJSON{
				QueueMS:   msBetween(queued, out.startedAt),
				PrepareMS: msBetween(out.startedAt, time.Now()),
			},
		})
	case <-ctx.Done():
		s.metrics.deadlineMisses.Add(1)
		s.sobs.request(s.sobs.reqStream, "serve.stream", span, reqStart)
		writeError(w, http.StatusGatewayTimeout, reqID, "deadline_exceeded",
			"request deadline elapsed before the session was built", s.retryAfterHint())
	}
}

// handleStreamSub routes /v1/stream/{id} (DELETE = close) and
// /v1/stream/{id}/frame (POST = step).
func (s *Server) handleStreamSub(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	rest := strings.TrimPrefix(r.URL.Path, "/v1/stream/")
	id, sub, _ := strings.Cut(rest, "/")
	switch {
	case id == "":
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "missing session id", 0)
	case sub == "" && (r.Method == http.MethodDelete || r.Method == http.MethodPost):
		// POST /v1/stream/{id}/close is accepted as DELETE /v1/stream/{id}
		// for clients that cannot issue DELETE.
		s.handleStreamClose(w, r, reqID, id)
	case sub == "close" && r.Method == http.MethodPost:
		s.handleStreamClose(w, r, reqID, id)
	case sub == "frame" && r.Method == http.MethodPost:
		s.handleStreamFrame(w, r, reqID, id)
	default:
		writeError(w, http.StatusMethodNotAllowed, reqID, "method_not_allowed",
			"POST /v1/stream/{id}/frame or DELETE /v1/stream/{id}", 0)
	}
}

// handleStreamFrame is POST /v1/stream/{id}/frame: apply one frame delta
// on a worker and return the updated energy with the frame's dirty-set
// counters. Frames against one session serialize; the per-frame latency
// lands in the mode="stream" histogram.
func (s *Server) handleStreamFrame(w http.ResponseWriter, r *http.Request, reqID, id string) {
	s.metrics.streamFrames.Add(1)
	reqStart := time.Now()
	span := s.sobs.spanID()

	var req StreamFrameRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", err.Error(), 0)
		return
	}
	st := s.lookupSession(id)
	if st == nil {
		writeError(w, http.StatusNotFound, reqID, "not_found",
			fmt.Sprintf("session %s does not exist (closed or evicted)", id), 0)
		return
	}
	delta := engine.FrameDelta{Moves: make([]engine.AtomMove, len(req.Moves))}
	for i, mv := range req.Moves {
		delta.Moves[i] = engine.AtomMove{Index: mv.I, Pos: geom.V(mv.Pos[0], mv.Pos[1], mv.Pos[2])}
	}

	ctx, cancel := s.requestContext(r, req.DeadlineMS)
	defer cancel()
	queued := time.Now()
	type frameOut struct {
		rep       engine.FrameReport
		startedAt time.Time
		err       error
	}
	outCh := make(chan frameOut, 1)
	if err := s.submit(func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		out := frameOut{startedAt: time.Now()}
		if ctx.Err() != nil {
			s.metrics.canceled.Add(1)
			out.err = ctx.Err()
		} else {
			out.rep, out.err = st.ss.Step(delta)
		}
		outCh <- out
	}); err != nil {
		s.admissionError(w, reqID, err)
		return
	}
	select {
	case out := <-outCh:
		s.sobs.stage(s.sobs.queueWait, "serve.queue", span, queued, out.startedAt.Sub(queued))
		s.sobs.request(s.sobs.reqStream, "serve.stream", span, reqStart)
		if out.err != nil {
			if out.err == context.DeadlineExceeded || out.err == context.Canceled {
				s.metrics.deadlineMisses.Add(1)
				writeError(w, http.StatusGatewayTimeout, reqID, "deadline_exceeded",
					"frame deadline elapsed while queued", s.retryAfterHint())
				return
			}
			// Step validates before mutating: a rejected frame leaves the
			// session usable, so the error is the client's.
			s.metrics.failed.Add(1)
			writeError(w, http.StatusBadRequest, reqID, "bad_request", out.err.Error(), 0)
			return
		}
		frameNS := time.Since(out.startedAt).Nanoseconds()
		s.metrics.completed.Add(1)
		s.metrics.streamFrameNS.Add(frameNS)
		s.sobs.stage(s.sobs.streamFrame, "serve.stream.frame", span, out.startedAt, time.Duration(frameNS))
		writeJSON(w, http.StatusOK, StreamFrameResponse{
			RequestID:        reqID,
			SessionID:        id,
			Frame:            out.rep.Frame,
			Energy:           out.rep.Energy,
			MovedAtoms:       out.rep.MovedAtoms,
			DirtyBornRows:    out.rep.DirtyBornRows,
			DirtyEpolDrivers: out.rep.DirtyEpolDrivers,
			PushedRadii:      out.rep.PushedRadii,
			Rederived:        out.rep.Rederived,
			Resweep:          out.rep.Resweep,
			Refreshed:        out.rep.Refreshed,
			Timings: TimingsJSON{
				QueueMS: msBetween(queued, out.startedAt),
				EvalMS:  float64(frameNS) / 1e6,
			},
		})
	case <-ctx.Done():
		s.metrics.deadlineMisses.Add(1)
		s.sobs.request(s.sobs.reqStream, "serve.stream", span, reqStart)
		writeError(w, http.StatusGatewayTimeout, reqID, "deadline_exceeded",
			"frame deadline elapsed before evaluation completed", s.retryAfterHint())
	}
}

// handleStreamClose removes a session from the store. Closing an unknown
// (or already-evicted) session is a 404 so clients can distinguish a clean
// close from a racing eviction.
func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request, reqID, id string) {
	s.sessMu.Lock()
	st := s.sessions[id]
	delete(s.sessions, id)
	s.sessMu.Unlock()
	if st == nil {
		writeError(w, http.StatusNotFound, reqID, "not_found",
			fmt.Sprintf("session %s does not exist (closed or evicted)", id), 0)
		return
	}
	s.metrics.streamCloses.Add(1)
	// A frame running on a worker holds st.mu, not the store's map — the
	// close wins the map race and the frame still completes against its
	// own response channel.
	st.mu.Lock()
	frames, energy := st.ss.Frame(), st.ss.Energy()
	st.mu.Unlock()
	s.logf("serve: %s stream close %s frames=%d", reqID, id, frames)
	writeJSON(w, http.StatusOK, StreamCloseResponse{
		RequestID: reqID,
		SessionID: id,
		Frames:    frames,
		Energy:    energy,
	})
}

// requestContext derives the request-scoped deadline context every stream
// handler uses.
func (s *Server) requestContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.deadlineFor(deadlineMS))
}
