package nblist

import (
	"math/rand"
	"sort"
	"testing"

	"octgb/internal/geom"
	"octgb/internal/molecule"
)

func randomPts(n int, seed int64, scale float64) []geom.Vec3 {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(r.Float64()*scale, r.Float64()*scale, r.Float64()*scale)
	}
	return pts
}

// bruteNeighbors is the reference implementation.
func bruteNeighbors(pts []geom.Vec3, i int, cutoff float64) []int32 {
	var out []int32
	for j := range pts {
		if j != i && pts[j].Dist(pts[i]) <= cutoff {
			out = append(out, int32(j))
		}
	}
	return out
}

func TestCellListMatchesBruteForce(t *testing.T) {
	pts := randomPts(500, 1, 30)
	for _, cutoff := range []float64{2, 5, 12, 40} {
		cl := NewCellList(pts, cutoff)
		for i := 0; i < 50; i++ {
			var got []int32
			cl.ForEachNeighbor(i, cutoff, func(j int32) { got = append(got, j) })
			want := bruteNeighbors(pts, i, cutoff)
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			if len(got) != len(want) {
				t.Fatalf("cutoff %v atom %d: %d neighbors, want %d", cutoff, i, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("cutoff %v atom %d: neighbor lists differ", cutoff, i)
				}
			}
		}
	}
}

func TestCellListSmallerCellThanCutoff(t *testing.T) {
	// Cell edge smaller than query cutoff must still find everything
	// (reach > 1 cells).
	pts := randomPts(300, 2, 20)
	cl := NewCellList(pts, 3)
	cutoff := 10.0
	for i := 0; i < 20; i++ {
		count := 0
		cl.ForEachNeighbor(i, cutoff, func(int32) { count++ })
		if want := len(bruteNeighbors(pts, i, cutoff)); count != want {
			t.Fatalf("atom %d: %d vs %d", i, count, want)
		}
	}
}

func TestCellListEmpty(t *testing.T) {
	cl := NewCellList(nil, 5)
	n := cl.ForEachInBall(geom.V(0, 0, 0), 10, -1, func(int32) {
		t.Error("found neighbor in empty list")
	})
	if n != 0 {
		t.Errorf("tests on empty list: %d", n)
	}
}

func TestNBListSymmetric(t *testing.T) {
	pts := randomPts(400, 3, 25)
	nb := Build(pts, 6)
	// Neighbor relation is symmetric.
	has := func(i int, j int32) bool {
		for _, k := range nb.Pairs[i] {
			if k == j {
				return true
			}
		}
		return false
	}
	for i, lst := range nb.Pairs {
		for _, j := range lst {
			if !has(int(j), int32(i)) {
				t.Fatalf("pair (%d,%d) not symmetric", i, j)
			}
		}
	}
}

func TestNBListMemoryGrowsCubicallyWithCutoff(t *testing.T) {
	// The paper's core argument against nblists. Dense uniform points:
	// doubling the cutoff should grow memory ≈8× (within geometry slack).
	m := molecule.GenerateProtein("nb", 4000, 9)
	pts := make([]geom.Vec3, m.N())
	for i := range m.Atoms {
		pts[i] = m.Atoms[i].Pos
	}
	nb1 := Build(pts, 4)
	nb2 := Build(pts, 8)
	ratio := float64(nb2.MemoryBytes()) / float64(nb1.MemoryBytes())
	if ratio < 4 || ratio > 10 {
		t.Errorf("memory ratio for 2x cutoff: %v (want ≈8)", ratio)
	}
}

func TestNBListBuildTestsCounted(t *testing.T) {
	pts := randomPts(200, 4, 15)
	nb := Build(pts, 5)
	if nb.BuildTests < nb.NumPairs() {
		t.Errorf("build tests %d < stored pairs %d", nb.BuildTests, nb.NumPairs())
	}
}

func BenchmarkNBListBuild4000(b *testing.B) {
	m := molecule.GenerateProtein("nb", 4000, 1)
	pts := make([]geom.Vec3, m.N())
	for i := range m.Atoms {
		pts[i] = m.Atoms[i].Pos
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts, 10)
	}
}
