// Package nblist implements cell lists and explicit nonbonded neighbour
// lists — the data structure traditional MD packages (Amber, Gromacs,
// NAMD) use for cutoff-truncated interactions, and the structure the paper
// argues octrees should replace (§II "Octrees vs. Nblists"): an nblist's
// size grows cubically with the distance cutoff, its rebuild is costly, and
// packages relying on it run out of memory for very large molecules. The
// baseline engines in internal/baselines are built on this package.
package nblist

import (
	"math"

	"octgb/internal/geom"
)

// CellList is a uniform spatial hash with cell edge ≥ the query cutoff, so
// any neighbour within the cutoff lies in the 27 surrounding cells.
type CellList struct {
	pts        []geom.Vec3
	origin     geom.Vec3
	cell       float64
	nx, ny, nz int
	heads      []int32 // head of per-cell singly linked list, -1 empty
	next       []int32 // next point in the same cell
}

// NewCellList builds a cell list with the given cell edge (usually the
// cutoff). The points slice is retained (not copied).
func NewCellList(pts []geom.Vec3, cellSize float64) *CellList {
	c := &CellList{pts: pts, cell: cellSize}
	if len(pts) == 0 || cellSize <= 0 {
		c.nx, c.ny, c.nz = 1, 1, 1
		c.heads = []int32{-1}
		return c
	}
	b := geom.NewAABB(pts...)
	c.origin = b.Min
	size := b.Size()
	dim := func(s float64) int {
		n := int(math.Floor(s/c.cell)) + 1
		if n < 1 {
			n = 1
		}
		return n
	}
	// Cap the grid at O(len(pts)) cells: a cell edge far below the point
	// spacing only wastes memory (queries stay correct for any edge, since
	// the search reach is computed from cutoff/edge).
	maxCells := 4*len(pts) + 1024
	for {
		c.nx, c.ny, c.nz = dim(size.X), dim(size.Y), dim(size.Z)
		if c.nx <= maxCells && c.ny <= maxCells && c.nz <= maxCells &&
			c.nx*c.ny*c.nz <= maxCells {
			break
		}
		c.cell *= 2
	}
	c.heads = make([]int32, c.nx*c.ny*c.nz)
	for i := range c.heads {
		c.heads[i] = -1
	}
	c.next = make([]int32, len(pts))
	for i, p := range pts {
		ci := c.cellIndex(p)
		c.next[i] = c.heads[ci]
		c.heads[ci] = int32(i)
	}
	return c
}

func (c *CellList) clampIdx(v float64, n int) int {
	i := int(math.Floor(v / c.cell))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func (c *CellList) cellIndex(p geom.Vec3) int {
	d := p.Sub(c.origin)
	ix := c.clampIdx(d.X, c.nx)
	iy := c.clampIdx(d.Y, c.ny)
	iz := c.clampIdx(d.Z, c.nz)
	return (iz*c.ny+iy)*c.nx + ix
}

// ForEachNeighbor calls fn(j) for every point j ≠ i within cutoff of point
// i. It returns the number of candidate distance tests performed (the work
// counter the nblist-rebuild cost model consumes).
func (c *CellList) ForEachNeighbor(i int, cutoff float64, fn func(j int32)) int64 {
	return c.ForEachInBall(c.pts[i], cutoff, int32(i), fn)
}

// ForEachInBall calls fn(j) for every point j ≠ exclude within cutoff of p.
func (c *CellList) ForEachInBall(p geom.Vec3, cutoff float64, exclude int32, fn func(j int32)) int64 {
	if len(c.pts) == 0 {
		return 0
	}
	c2 := cutoff * cutoff
	d := p.Sub(c.origin)
	reach := int(math.Ceil(cutoff / c.cell))
	ix := c.clampIdx(d.X, c.nx)
	iy := c.clampIdx(d.Y, c.ny)
	iz := c.clampIdx(d.Z, c.nz)
	var tests int64
	for dz := -reach; dz <= reach; dz++ {
		z := iz + dz
		if z < 0 || z >= c.nz {
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			y := iy + dy
			if y < 0 || y >= c.ny {
				continue
			}
			for dx := -reach; dx <= reach; dx++ {
				x := ix + dx
				if x < 0 || x >= c.nx {
					continue
				}
				for j := c.heads[(z*c.ny+y)*c.nx+x]; j >= 0; j = c.next[j] {
					tests++
					if j == exclude {
						continue
					}
					if c.pts[j].Dist2(p) <= c2 {
						fn(j)
					}
				}
			}
		}
	}
	return tests
}

// NBList is an explicit per-atom neighbour list, the structure Amber-style
// packages persist between steps.
type NBList struct {
	Pairs      [][]int32 // Pairs[i] = neighbours of i (all j ≠ i within cutoff)
	Cutoff     float64
	BuildTests int64 // candidate distance tests during construction
}

// Build constructs the full nonbonded list for the given cutoff.
func Build(pts []geom.Vec3, cutoff float64) *NBList {
	cl := NewCellList(pts, cutoff)
	nb := &NBList{Pairs: make([][]int32, len(pts)), Cutoff: cutoff}
	for i := range pts {
		var lst []int32
		nb.BuildTests += cl.ForEachNeighbor(i, cutoff, func(j int32) {
			lst = append(lst, j)
		})
		nb.Pairs[i] = lst
	}
	return nb
}

// NumPairs returns the total number of stored (ordered) neighbour entries.
func (n *NBList) NumPairs() int64 {
	var s int64
	for _, l := range n.Pairs {
		s += int64(len(l))
	}
	return s
}

// MemoryBytes estimates the nblist's memory footprint: 4 bytes per stored
// neighbour plus per-atom slice headers. This is the quantity that grows
// cubically with the cutoff and linearly with N (§II of the paper).
func (n *NBList) MemoryBytes() int64 {
	return n.NumPairs()*4 + int64(len(n.Pairs))*24
}
