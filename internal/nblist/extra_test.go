package nblist

import (
	"math/rand"
	"testing"

	"octgb/internal/geom"
)

func TestCellListExcludeSelf(t *testing.T) {
	pts := randomPts(100, 21, 10)
	cl := NewCellList(pts, 50) // cutoff covers everything
	count := 0
	cl.ForEachNeighbor(7, 50, func(j int32) {
		if j == 7 {
			t.Fatal("self returned as neighbor")
		}
		count++
	})
	if count != 99 {
		t.Errorf("found %d of 99 neighbors", count)
	}
}

func TestForEachInBallNoExclusion(t *testing.T) {
	pts := randomPts(50, 22, 5)
	cl := NewCellList(pts, 3)
	count := 0
	cl.ForEachInBall(pts[0], 100, -1, func(int32) { count++ })
	if count != 50 {
		t.Errorf("ball over everything found %d of 50", count)
	}
}

func TestCellListSinglePoint(t *testing.T) {
	pts := []geom.Vec3{geom.V(1, 1, 1)}
	cl := NewCellList(pts, 2)
	if n := cl.ForEachNeighbor(0, 2, func(int32) { t.Fatal("self as neighbor") }); n == 0 {
		t.Error("no candidate tests counted")
	}
}

func TestCellListZeroCellSize(t *testing.T) {
	pts := randomPts(10, 23, 5)
	cl := NewCellList(pts, 0) // degenerate: must not crash
	found := 0
	cl.ForEachInBall(pts[0], 1e9, -1, func(int32) { found++ })
	// Degenerate lists are allowed to find nothing (no grid), but must be
	// safe to query.
	_ = found
}

func TestNBListZeroCutoff(t *testing.T) {
	pts := randomPts(30, 24, 5)
	nb := Build(pts, 1e-6)
	if nb.NumPairs() != 0 {
		t.Errorf("tiny cutoff found %d pairs", nb.NumPairs())
	}
}

func TestCellListClusteredPoints(t *testing.T) {
	// All points in one cell: queries must still be exact.
	r := rand.New(rand.NewSource(25))
	pts := make([]geom.Vec3, 200)
	for i := range pts {
		pts[i] = geom.V(r.Float64()*0.1, r.Float64()*0.1, r.Float64()*0.1)
	}
	cl := NewCellList(pts, 10)
	for i := 0; i < 10; i++ {
		got := 0
		cl.ForEachNeighbor(i, 0.05, func(int32) { got++ })
		want := len(bruteNeighbors(pts, i, 0.05))
		if got != want {
			t.Fatalf("clustered atom %d: %d vs %d", i, got, want)
		}
	}
}

func TestNBListMemoryLinearInN(t *testing.T) {
	// At fixed cutoff, nblist memory is linear in N (the paper concedes
	// this; the cubic growth is in the cutoff).
	mk := func(n int) int64 {
		return Build(randomPts(n, 26, cubeSideFor(n)), 4).MemoryBytes()
	}
	m1, m2 := mk(2000), mk(4000)
	ratio := float64(m2) / float64(m1)
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("memory ratio %v for 2x points at fixed density", ratio)
	}
}

// cubeSideFor keeps density constant as n grows.
func cubeSideFor(n int) float64 {
	side := 1.0
	for side*side*side < float64(n)/2 {
		side *= 1.26
	}
	return side * 10
}
