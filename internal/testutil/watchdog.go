// Package testutil holds helpers shared by the test suites. It is imported
// only from _test.go files and ships no production code.
package testutil

import (
	"runtime"
	"time"
)

// failer is the subset of testing.TB the watchdog needs (kept narrow so the
// package does not force a testing import on callers' production builds).
type failer interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// DefaultWatchdogTimeout is the deadline Watchdog applies when the caller
// passes 0: collective tests that block longer than this are considered
// deadlocked.
const DefaultWatchdogTimeout = 30 * time.Second

// Watchdog guards a test against deadlock: if the returned stop function is
// not called within timeout (0 = DefaultWatchdogTimeout), the test fails
// with a full goroutine dump — turning a silent `go test` hang that only
// dies at the 10-minute package timeout into an immediate, attributable
// failure showing exactly which collective stage every goroutine is blocked
// in. Use with defer:
//
//	defer testutil.Watchdog(t, 0)()
//
// The dump is produced with runtime.Stack(all=true), the same format as a
// SIGQUIT dump. The watchdog fires via Errorf from its own goroutine
// (Fatalf must not be called off the test goroutine); the blocked test then
// still hangs until the package timeout, but the dump and failure are
// already recorded and visible.
func Watchdog(t failer, timeout time.Duration) (stop func()) {
	t.Helper()
	if timeout <= 0 {
		timeout = DefaultWatchdogTimeout
	}
	done := make(chan struct{})
	fired := make(chan struct{})
	go func() {
		defer close(fired)
		select {
		case <-done:
		case <-time.After(timeout):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("testutil: watchdog: test still blocked after %v — goroutine dump:\n%s", timeout, buf[:n])
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-fired
	}
}

// WaitGoroutines polls until the live goroutine count drops to at most
// want, or deadline elapses; it returns the final count. Fault-tolerance
// tests use it to prove that error unwinding leaks nothing: in-flight
// non-blocking collectives and transport readers are bounded by the receive
// timeout, so counts return to baseline shortly after a failed run.
func WaitGoroutines(want int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(end) {
			return n
		}
		runtime.GC() // nudge finalizer-held goroutines along
		time.Sleep(10 * time.Millisecond)
	}
}
