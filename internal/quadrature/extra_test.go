package quadrature

import (
	"math"
	"testing"

	"octgb/internal/geom"
)

func TestRulePointsInsideTriangle(t *testing.T) {
	// All rules except the deg-3 centroid rule (which has one negative
	// weight) keep points strictly inside the triangle.
	for d := 1; d <= 5; d++ {
		for i, p := range Rule(d) {
			if p.A < -1e-12 || p.B < -1e-12 || p.C < -1e-12 {
				t.Errorf("degree %d point %d has negative barycentric: %+v", d, i, p)
			}
			if p.A > 1 || p.B > 1 || p.C > 1 {
				t.Errorf("degree %d point %d outside: %+v", d, i, p)
			}
		}
	}
}

func TestOnlyDegree3HasNegativeWeight(t *testing.T) {
	for d := 1; d <= 5; d++ {
		neg := false
		for _, p := range Rule(d) {
			if p.W < 0 {
				neg = true
			}
		}
		if neg != (d == 3) {
			t.Errorf("degree %d: negative weight presence = %v", d, neg)
		}
	}
}

func TestIcosphereTrianglesConsistentlyOriented(t *testing.T) {
	// All faces must wind the same way: outward normals (cross product)
	// point away from the origin.
	for level := 0; level <= 2; level++ {
		m := Icosphere(level)
		for i, tr := range m.Tris {
			a, b, c := m.Verts[tr[0]], m.Verts[tr[1]], m.Verts[tr[2]]
			n := b.Sub(a).Cross(c.Sub(a))
			centroid := a.Add(b).Add(c).Scale(1.0 / 3)
			if n.Dot(centroid) <= 0 {
				t.Fatalf("level %d triangle %d wound inward", level, i)
			}
		}
	}
}

func TestIcosphereNoDegenerateTriangles(t *testing.T) {
	m := Icosphere(2)
	for i := range m.Tris {
		if m.TriangleArea(i) < 1e-6 {
			t.Fatalf("triangle %d degenerate (area %v)", i, m.TriangleArea(i))
		}
	}
}

func TestIcosphereEdgeSharing(t *testing.T) {
	// Closed manifold: every edge is shared by exactly two triangles.
	m := Icosphere(1)
	edges := map[[2]int32]int{}
	for _, tr := range m.Tris {
		for e := 0; e < 3; e++ {
			a, b := tr[e], tr[(e+1)%3]
			if a > b {
				a, b = b, a
			}
			edges[[2]int32{a, b}]++
		}
	}
	for e, n := range edges {
		if n != 2 {
			t.Fatalf("edge %v shared by %d triangles", e, n)
		}
	}
}

func TestPointAtVertices(t *testing.T) {
	m := Icosphere(0)
	tr := m.Tris[0]
	if got := m.PointAt(0, 1, 0, 0); got != m.Verts[tr[0]] {
		t.Errorf("PointAt(1,0,0) = %v", got)
	}
	if got := m.PointAt(0, 0, 0, 1); got != m.Verts[tr[2]] {
		t.Errorf("PointAt(0,0,1) = %v", got)
	}
	mid := m.PointAt(0, 0.5, 0.5, 0)
	want := m.Verts[tr[0]].Add(m.Verts[tr[1]]).Scale(0.5)
	if mid.Dist(want) > 1e-12 {
		t.Errorf("midpoint = %v, want %v", mid, want)
	}
}

// Integrating the constant 1 over the sphere with any rule gives the flat
// mesh area exactly (weights sum to 1 per triangle).
func TestConstantIntegral(t *testing.T) {
	m := Icosphere(1)
	for d := 1; d <= 5; d++ {
		var s float64
		for i := range m.Tris {
			area := m.TriangleArea(i)
			for _, p := range Rule(d) {
				s += p.W * area
			}
		}
		if math.Abs(s-m.TotalArea()) > 1e-9 {
			t.Errorf("degree %d: ∫1 = %v, want %v", d, s, m.TotalArea())
		}
	}
}

// The gradient theorem check: ∮ n̂ dA = 0 over a closed surface — a strong
// joint test of normals, weights and orientation used by the Born-radius
// integrand.
func TestClosedSurfaceNormalIntegralVanishes(t *testing.T) {
	m := Icosphere(2)
	var sum geom.Vec3
	for i := range m.Tris {
		area := m.TriangleArea(i)
		for _, p := range Rule(2) {
			n := m.PointAt(i, p.A, p.B, p.C).Unit()
			sum = sum.Add(n.Scale(p.W * area))
		}
	}
	if sum.Norm() > 1e-10 {
		t.Errorf("∮ n̂ dA = %v, want 0", sum)
	}
}
