// Package quadrature provides the numerical-integration machinery the
// surface sampler needs: Dunavant symmetric Gaussian quadrature rules on
// triangles (the paper cites Dunavant [11] for the Born-radius surface
// integral) and icosphere triangulations of the unit sphere.
package quadrature

import "fmt"

// TrianglePoint is one quadrature point of a rule, in barycentric
// coordinates with a weight. Weights of a rule sum to 1, so integrating a
// function f over a flat triangle T is area(T) · Σ w_i f(x_i).
type TrianglePoint struct {
	A, B, C float64 // barycentric coordinates (A+B+C = 1)
	W       float64 // weight
}

// Rule returns the Dunavant symmetric rule exact for polynomials up to the
// given degree (1–5 supported). Higher requested degrees fall back to 5.
func Rule(degree int) []TrianglePoint {
	switch {
	case degree <= 1:
		return rule1
	case degree == 2:
		return rule2
	case degree == 3:
		return rule3
	case degree == 4:
		return rule4
	default:
		return rule5
	}
}

// NumPoints returns the number of quadrature points of the degree-d rule.
func NumPoints(degree int) int { return len(Rule(degree)) }

var rule1 = []TrianglePoint{
	{1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0},
}

var rule2 = perm3(2.0/3, 1.0/6, 1.0/3)

var rule3 = append(
	[]TrianglePoint{{1.0 / 3, 1.0 / 3, 1.0 / 3, -27.0 / 48}},
	perm3(0.6, 0.2, 25.0/48)...,
)

var rule4 = append(
	perm3(0.108103018168070, 0.445948490915965, 0.223381589678011),
	perm3(0.816847572980459, 0.091576213509771, 0.109951743655322)...,
)

var rule5 = append(
	append([]TrianglePoint{{1.0 / 3, 1.0 / 3, 1.0 / 3, 0.225}},
		perm3(0.059715871789770, 0.470142064105115, 0.132394152788506)...),
	perm3(0.797426985353087, 0.101286507323456, 0.125939180544827)...,
)

// perm3 expands the symmetric orbit (a,b,b) into its three permutations,
// each with weight w.
func perm3(a, b, w float64) []TrianglePoint {
	return []TrianglePoint{
		{a, b, b, w},
		{b, a, b, w},
		{b, b, a, w},
	}
}

// CheckRule verifies that the weights of a rule sum to 1 and all barycentric
// coordinates are valid; it returns an error describing the first problem.
func CheckRule(pts []TrianglePoint) error {
	var sum float64
	for i, p := range pts {
		if p.A < -0.5 || p.B < -0.5 || p.C < -0.5 {
			return fmt.Errorf("point %d: barycentric out of range", i)
		}
		if d := p.A + p.B + p.C; d < 1-1e-12 || d > 1+1e-12 {
			return fmt.Errorf("point %d: barycentric sum %v", i, d)
		}
		sum += p.W
	}
	if sum < 1-1e-12 || sum > 1+1e-12 {
		return fmt.Errorf("weights sum to %v", sum)
	}
	return nil
}
