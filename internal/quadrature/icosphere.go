package quadrature

import (
	"math"

	"octgb/internal/geom"
)

// Mesh is a triangulated surface: vertices and triangles indexing them.
type Mesh struct {
	Verts []geom.Vec3
	Tris  [][3]int32
}

// Icosphere returns a triangulation of the unit sphere obtained by
// subdividing an icosahedron `level` times (level 0 = 20 triangles,
// each level quadruples the count) and projecting vertices to the sphere.
func Icosphere(level int) *Mesh {
	t := (1 + math.Sqrt(5)) / 2
	verts := []geom.Vec3{
		geom.V(-1, t, 0), geom.V(1, t, 0), geom.V(-1, -t, 0), geom.V(1, -t, 0),
		geom.V(0, -1, t), geom.V(0, 1, t), geom.V(0, -1, -t), geom.V(0, 1, -t),
		geom.V(t, 0, -1), geom.V(t, 0, 1), geom.V(-t, 0, -1), geom.V(-t, 0, 1),
	}
	for i := range verts {
		verts[i] = verts[i].Unit()
	}
	tris := [][3]int32{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	m := &Mesh{Verts: verts, Tris: tris}
	for l := 0; l < level; l++ {
		m = m.subdivide()
	}
	return m
}

// subdivide splits every triangle into 4, projecting midpoints to the unit
// sphere. Midpoints are cached per edge so shared edges stay shared.
func (m *Mesh) subdivide() *Mesh {
	out := &Mesh{Verts: append([]geom.Vec3(nil), m.Verts...)}
	cache := make(map[[2]int32]int32, len(m.Tris)*2)
	mid := func(a, b int32) int32 {
		k := [2]int32{a, b}
		if a > b {
			k = [2]int32{b, a}
		}
		if v, ok := cache[k]; ok {
			return v
		}
		p := out.Verts[a].Add(out.Verts[b]).Scale(0.5).Unit()
		idx := int32(len(out.Verts))
		out.Verts = append(out.Verts, p)
		cache[k] = idx
		return idx
	}
	for _, tr := range m.Tris {
		a, b, c := tr[0], tr[1], tr[2]
		ab, bc, ca := mid(a, b), mid(b, c), mid(c, a)
		out.Tris = append(out.Tris,
			[3]int32{a, ab, ca},
			[3]int32{b, bc, ab},
			[3]int32{c, ca, bc},
			[3]int32{ab, bc, ca},
		)
	}
	return out
}

// TriangleArea returns the flat area of triangle i.
func (m *Mesh) TriangleArea(i int) float64 {
	tr := m.Tris[i]
	a, b, c := m.Verts[tr[0]], m.Verts[tr[1]], m.Verts[tr[2]]
	return b.Sub(a).Cross(c.Sub(a)).Norm() / 2
}

// TotalArea returns the summed flat triangle area; for an icosphere this
// approaches 4π as the level increases.
func (m *Mesh) TotalArea() float64 {
	var s float64
	for i := range m.Tris {
		s += m.TriangleArea(i)
	}
	return s
}

// PointAt evaluates the barycentric point (a,b,c) on triangle i.
func (m *Mesh) PointAt(i int, a, b, c float64) geom.Vec3 {
	tr := m.Tris[i]
	return m.Verts[tr[0]].Scale(a).
		Add(m.Verts[tr[1]].Scale(b)).
		Add(m.Verts[tr[2]].Scale(c))
}
