package quadrature

import (
	"math"
	"testing"

	"octgb/internal/geom"
)

func TestAllRulesValid(t *testing.T) {
	for d := 1; d <= 5; d++ {
		if err := CheckRule(Rule(d)); err != nil {
			t.Errorf("degree %d: %v", d, err)
		}
	}
}

// integrateTri integrates f over the unit right triangle (0,0)-(1,0)-(0,1)
// with the degree-d rule.
func integrateTri(d int, f func(x, y float64) float64) float64 {
	var s float64
	for _, p := range Rule(d) {
		// Vertices (0,0), (1,0), (0,1) with barycentric (A,B,C).
		x := p.B
		y := p.C
		s += p.W * f(x, y)
	}
	return s * 0.5 // triangle area
}

// monomialExact is ∫∫_T x^m y^n dx dy over the unit right triangle:
// m! n! / (m+n+2)!.
func monomialExact(m, n int) float64 {
	fact := func(k int) float64 {
		f := 1.0
		for i := 2; i <= k; i++ {
			f *= float64(i)
		}
		return f
	}
	return fact(m) * fact(n) / fact(m+n+2)
}

func TestRulesExactForPolynomials(t *testing.T) {
	for d := 1; d <= 5; d++ {
		for m := 0; m+0 <= d; m++ {
			for n := 0; m+n <= d; n++ {
				got := integrateTri(d, func(x, y float64) float64 {
					return math.Pow(x, float64(m)) * math.Pow(y, float64(n))
				})
				want := monomialExact(m, n)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("degree %d rule not exact for x^%d y^%d: %v vs %v", d, m, n, got, want)
				}
			}
		}
	}
}

func TestRuleFallbacks(t *testing.T) {
	if len(Rule(0)) != 1 {
		t.Error("degree 0 should map to the 1-point rule")
	}
	if len(Rule(9)) != len(Rule(5)) {
		t.Error("degree >5 should fall back to degree 5")
	}
	if NumPoints(3) != 4 {
		t.Errorf("deg-3 rule has %d points, want 4", NumPoints(3))
	}
}

func TestIcosphereTopology(t *testing.T) {
	for level := 0; level <= 3; level++ {
		m := Icosphere(level)
		wantTris := 20 << (2 * uint(level))
		if len(m.Tris) != wantTris {
			t.Errorf("level %d: %d tris, want %d", level, len(m.Tris), wantTris)
		}
		// Euler characteristic of a sphere: V - E + F = 2, E = 3F/2.
		wantVerts := 2 + wantTris/2
		if len(m.Verts) != wantVerts {
			t.Errorf("level %d: %d verts, want %d", level, len(m.Verts), wantVerts)
		}
		// All vertices on the unit sphere.
		for i, v := range m.Verts {
			if math.Abs(v.Norm()-1) > 1e-12 {
				t.Fatalf("level %d: vertex %d has |v| = %v", level, i, v.Norm())
			}
		}
	}
}

func TestIcosphereAreaConvergesTo4Pi(t *testing.T) {
	prevErr := math.Inf(1)
	for level := 0; level <= 3; level++ {
		m := Icosphere(level)
		err := math.Abs(m.TotalArea() - 4*math.Pi)
		if err >= prevErr {
			t.Errorf("area error did not shrink at level %d: %v >= %v", level, err, prevErr)
		}
		prevErr = err
	}
	if got := Icosphere(3).TotalArea(); math.Abs(got-4*math.Pi) > 0.1 {
		t.Errorf("level-3 area %v too far from 4π", got)
	}
}

// The classical solid-angle identity: for a sphere of radius R centered at
// c, ∮ (r-x)·n̂ / |r-x|³ dA = 4π for any x strictly inside. This is exactly
// the structure of the paper's surface integrals, so it is the key
// correctness check for the triangulated-sphere + Dunavant pipeline.
func TestSurfaceQuadratureSolidAngle(t *testing.T) {
	m := Icosphere(3)
	deg := 2
	x := geom.V(0.2, -0.1, 0.3) // inside the unit sphere
	var integral float64
	for i := range m.Tris {
		area := m.TriangleArea(i)
		for _, p := range Rule(deg) {
			r := m.PointAt(i, p.A, p.B, p.C)
			n := r.Unit() // outward normal of the unit sphere
			d := r.Sub(x)
			integral += p.W * area * d.Dot(n) / math.Pow(d.Norm(), 3)
		}
	}
	if math.Abs(integral-4*math.Pi) > 0.1 {
		t.Errorf("solid angle = %v, want 4π = %v", integral, 4*math.Pi)
	}
}

func BenchmarkIcosphereLevel3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Icosphere(3)
	}
}
