// Package integration exercises whole-pipeline scenarios across module
// boundaries: file I/O → surface → treecode → engines → cluster transport,
// the way a downstream user composes the library.
package integration

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"

	"octgb/internal/cluster"
	"octgb/internal/core"
	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1e-30, math.Abs(b))
}

// TestPQRRoundTripPreservesEnergy: writing a molecule to PQR and reading it
// back must not change its energy beyond the format's 3-decimal rounding.
func TestPQRRoundTripPreservesEnergy(t *testing.T) {
	mol := molecule.GenerateProtein("io", 600, 101)
	var buf bytes.Buffer
	if err := molecule.WritePQR(&buf, mol); err != nil {
		t.Fatal(err)
	}
	back, err := molecule.ReadPQR(&buf, "io")
	if err != nil {
		t.Fatal(err)
	}

	e1 := quickEnergy(t, mol)
	e2 := quickEnergy(t, back)
	if e := relErr(e2, e1); e > 1e-3 {
		t.Errorf("energy drift through PQR: %v vs %v (rel %v)", e2, e1, e)
	}
}

func quickEnergy(t *testing.T, mol *molecule.Molecule) float64 {
	t.Helper()
	pr := engine.NewProblem(mol, surface.Default())
	rep, err := engine.RunReal(pr, engine.OctMPICilk, engine.Options{Ranks: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Energy
}

// TestTCPEngineMatchesInProcess: the same molecule through genuine TCP
// ranks (cmd/epolnode's path) and through in-process ranks must agree.
func TestTCPEngineMatchesInProcess(t *testing.T) {
	mol := molecule.GenerateProtein("tcp", 500, 102)
	pr := engine.NewProblem(mol, surface.Default())
	opts := engine.Options{Threads: 1, BornEps: 0.9, EpolEps: 0.9}

	inproc, err := engine.RunReal(pr, engine.OctMPI, engine.Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	const ranks = 3

	energies := make([]float64, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := cluster.DialTCP(addr, r, ranks)
			if err != nil {
				errs[r] = err
				return
			}
			rep, err := engine.RunRank(c, pr, opts)
			energies[r], errs[r] = rep.Energy, err
		}(r)
	}
	root, err := cluster.NewTCPRoot(ln, ranks)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := engine.RunRank(root, pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	energies[0] = rep.Energy
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", r, e)
		}
	}
	// All ranks agree with each other and with the in-process run.
	for r := 1; r < ranks; r++ {
		if energies[r] != energies[0] {
			t.Errorf("rank %d energy %v != rank 0 %v", r, energies[r], energies[0])
		}
	}
	if e := relErr(energies[0], inproc.Energy); e > 1e-12 {
		t.Errorf("TCP energy %v vs in-process %v", energies[0], inproc.Energy)
	}
}

// TestDockingPoseInvariance: moving a molecule rigidly and recomputing
// through the whole pipeline changes E_pol only by surface-discretization
// noise — the correctness property behind the §IV-C octree-reuse argument.
func TestDockingPoseInvariance(t *testing.T) {
	mol := molecule.GenerateProtein("pose", 800, 103)
	e0 := quickEnergy(t, mol)
	tr := geom.RotationAxisAngle(geom.V(1, -1, 2), 1.2)
	tr.T = geom.V(50, 20, -70)
	e1 := quickEnergy(t, mol.Transform(tr))
	if e := relErr(e1, e0); e > 0.02 {
		t.Errorf("pose changed energy by %v (%v vs %v)", e, e1, e0)
	}
}

// TestComplexEnergyDecomposition: a far-separated "complex" has E_pol equal
// to the sum of its parts (no polarization coupling at distance), while a
// bound complex differs — the docking example's physics.
func TestComplexEnergyDecomposition(t *testing.T) {
	a := molecule.GenerateProtein("pa", 700, 104)
	b := molecule.GenerateProtein("pb", 500, 105)
	ea, eb := quickEnergy(t, a), quickEnergy(t, b)

	// Far apart: interaction negligible.
	farB := b.Transform(geom.Translation(geom.V(500, 0, 0)))
	far := molecule.Merge("far", a, farB)
	eFar := quickEnergy(t, far)
	if e := relErr(eFar, ea+eb); e > 0.01 {
		t.Errorf("separated complex energy %v != %v + %v (rel %v)", eFar, ea, eb, e)
	}

	// In contact: energies must not simply add (descreening changes radii).
	bound := molecule.GenerateComplex("bound", 700, 500, 104)
	_ = bound // just ensure it builds; quantitative check below on merge
	touchB := b.Transform(geom.Translation(geom.V(a.Bounds().Max.X-b.Bounds().Min.X+1.5, 0, 0)))
	eBound := quickEnergy(t, molecule.Merge("contact", a, touchB))
	if math.Abs(eBound-(ea+eb)) < 1e-6*math.Abs(ea+eb) {
		t.Error("bound complex energy suspiciously equals the sum of parts")
	}
}

// TestSimDeterminism: virtual-time runs are bit-reproducible.
func TestSimDeterminism(t *testing.T) {
	mol := molecule.GenerateProtein("det", 700, 106)
	pr := engine.NewProblem(mol, surface.Default())
	oc := simtime.DefaultOpCosts()
	m := simtime.Lonestar4()
	a := engine.BuildSimModel(pr, engine.OctMPICilk, engine.Options{}, oc)
	b := engine.BuildSimModel(pr, engine.OctMPICilk, engine.Options{}, oc)
	if a.Energy != b.Energy {
		t.Errorf("energies differ across identical builds: %v vs %v", a.Energy, b.Energy)
	}
	if x, y := a.Time(24, 6, m, -1), b.Time(24, 6, m, -1); x != y {
		t.Errorf("timings differ: %+v vs %+v", x, y)
	}
	if x, y := a.Time(24, 6, m, 7), b.Time(24, 6, m, 7); x != y {
		t.Errorf("jittered timings with equal seeds differ: %+v vs %+v", x, y)
	}
}

// TestR4VsR6Pipeline: both Born formulations run end to end; the energies
// differ (different radii) but both are physical.
func TestR4VsR6Pipeline(t *testing.T) {
	mol := molecule.GenerateProtein("r46", 600, 107)
	q := surface.Sample(mol, surface.Default())

	res6 := core.ComputeSerial(mol, q, core.BornConfig{Eps: 0.5}, core.EpolConfig{Eps: 0.5})
	res4 := core.ComputeSerial(mol, q, core.BornConfig{Eps: 0.5, Exponent: 4}, core.EpolConfig{Eps: 0.5})
	if res4.Epol >= 0 || res6.Epol >= 0 {
		t.Fatalf("non-negative energies: r4 %v r6 %v", res4.Epol, res6.Epol)
	}
	if res4.Epol == res6.Epol {
		t.Error("r4 and r6 pipelines produced identical energy")
	}
	// Cross-check r4 against the naive r4 reference.
	R4 := gb.BornRadiiR4(mol, q)
	naive4 := gb.EpolNaive(mol, R4, gb.Exact)
	if e := relErr(res4.Epol, naive4); e > 0.03 {
		t.Errorf("r4 treecode %v vs naive r4 %v (rel %v)", res4.Epol, naive4, e)
	}
}

// TestLigandReceptorOctreeReuse: the Transform path on a built octree
// preserves the tree invariants and the energies it produces.
func TestLigandReceptorOctreeReuse(t *testing.T) {
	mol := molecule.GenerateProtein("reuse", 500, 108)
	q := surface.Sample(mol, surface.Default())
	bs := core.NewBornSolver(mol, q, core.BornConfig{})
	tr := geom.RotationAxisAngle(geom.V(0, 1, 0), 0.5)
	tr.T = geom.V(10, 0, 0)
	moved := bs.TA.Transform(tr)
	if err := func() error {
		// Transformed trees keep the enclosing-ball invariant; Validate
		// checks boxes too, which Transform only approximates, so check
		// balls directly.
		for i := range moved.Nodes {
			nd := &moved.Nodes[i]
			for j := nd.Start; j < nd.Start+nd.Count; j++ {
				if moved.Points[j].Dist(nd.Center) > nd.Radius+1e-9 {
					t.Fatalf("node %d ball violated after transform", i)
				}
			}
		}
		return nil
	}(); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndErrorBudget: at the paper's operating point the engines must
// land within a small error of the naive reference across several
// molecule shapes (globular, capsid, complex).
func TestEndToEndErrorBudget(t *testing.T) {
	cases := []*molecule.Molecule{
		molecule.GenerateProtein("glob", 900, 109),
		molecule.GenerateCapsid("shell", 900, 8, 110),
		molecule.GenerateComplex("cx", 700, 200, 111),
	}
	for _, mol := range cases {
		pr := engine.NewProblem(mol, surface.Default())
		R := gb.BornRadiiR6(mol, pr.QPts)
		naive := gb.EpolNaive(mol, R, gb.Exact)
		for _, k := range []engine.Kind{engine.OctCilk, engine.OctMPI, engine.OctMPICilk} {
			rep, err := engine.RunReal(pr, k, engine.Options{Ranks: 2, Threads: 2})
			if err != nil {
				t.Fatalf("%s/%v: %v", mol.Name, k, err)
			}
			if e := relErr(rep.Energy, naive); e > 0.05 {
				t.Errorf("%s/%v: error %v (%v vs %v)", mol.Name, k, e, rep.Energy, naive)
			}
		}
	}
}
