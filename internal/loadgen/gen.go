package loadgen

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Request is one generated arrival: what to send and when. Times are
// offsets from the trace start; the live runner maps them onto the wall
// clock, the simulator uses them as virtual time directly.
type Request struct {
	// ID is the arrival index (0-based, in time order).
	ID int
	// At is the arrival offset from trace start.
	At time.Duration
	// Kind is the class kind ("energy", "sweep", "stream").
	Kind string
	// Class is the index into TraceSpec.Classes.
	Class int
	// Variant selects which of the class's molecules this request targets
	// (cache-key diversity).
	Variant int
	// Atoms / Poses / Frames / Movers are copied from the class.
	Atoms, Poses, Frames, Movers int
}

// Generate expands a validated spec into its arrival sequence. It is a
// pure function of the spec: the same spec yields the identical slice on
// every run and every platform (pinned by TestGenerateReplay). The rng
// draw order is part of that contract — one gap draw, one class draw, one
// variant draw per request, always in that order.
func Generate(spec *TraceSpec) ([]Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var totalW float64
	for _, c := range spec.Classes {
		totalW += c.Weight
	}

	reqs := make([]Request, spec.Requests)
	var t time.Duration
	for i := range reqs {
		t += sampleGap(rng, spec.Arrivals)
		ci := sampleClass(rng, spec.Classes, totalW)
		c := spec.Classes[ci]
		variants := c.Variants
		if variants <= 0 {
			variants = 1
		}
		reqs[i] = Request{
			ID:      i,
			At:      t,
			Kind:    c.Kind,
			Class:   ci,
			Variant: rng.Intn(variants),
			Atoms:   c.Atoms,
			Poses:   c.Poses,
			Frames:  c.Frames,
			Movers:  c.Movers,
		}
	}
	return reqs, nil
}

// sampleGap draws one inter-arrival gap. All three processes share the
// mean 1/RateHz; they differ in burstiness.
func sampleGap(rng *rand.Rand, a ArrivalSpec) time.Duration {
	mean := 1 / a.RateHz
	var gap float64
	switch a.Process {
	case ProcPareto:
		// Pareto(x_m, α) by inversion: x_m / U^{1/α}, with the scale x_m
		// chosen so the mean x_m·α/(α−1) equals the configured mean.
		alpha := a.shape()
		xm := mean * (alpha - 1) / alpha
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap = xm / math.Pow(u, 1/alpha)
	case ProcLognormal:
		// Lognormal(μ, σ) with μ = ln(mean) − σ²/2 so E = mean.
		sigma := a.sigma()
		mu := math.Log(mean) - sigma*sigma/2
		gap = math.Exp(mu + sigma*rng.NormFloat64())
	default: // poisson
		gap = rng.ExpFloat64() * mean
	}
	// Clamp the tail: one pathological draw must not stall the whole
	// trace. 100× the mean keeps the burst structure intact. The
	// condition is written so NaN (possible from extreme but valid
	// lognormal parameters) also lands on the clamp.
	if max := 100 * mean; !(gap >= 0 && gap <= max) {
		gap = max
	}
	return time.Duration(gap * float64(time.Second))
}

// sampleClass draws a class index proportionally to the weights.
func sampleClass(rng *rand.Rand, classes []ClassSpec, totalW float64) int {
	x := rng.Float64() * totalW
	for i, c := range classes {
		x -= c.Weight
		if x < 0 {
			return i
		}
	}
	return len(classes) - 1
}

// Serialize renders the arrival sequence in a canonical text form, one
// line per request with nanosecond arrival offsets. Two runs replayed the
// same trace if and only if their serializations are byte-identical — the
// determinism tests compare exactly this.
func Serialize(reqs []Request) []byte {
	var buf bytes.Buffer
	for _, r := range reqs {
		fmt.Fprintf(&buf, "%d at=%dns kind=%s class=%d variant=%d atoms=%d poses=%d frames=%d movers=%d\n",
			r.ID, r.At.Nanoseconds(), r.Kind, r.Class, r.Variant, r.Atoms, r.Poses, r.Frames, r.Movers)
	}
	return buf.Bytes()
}
