package loadgen

import (
	"testing"
)

// FuzzTraceSpec feeds arbitrary bytes through the full parse → validate →
// generate pipeline. The contract under fuzzing: malformed input always
// comes back as an error, never a panic, and anything that parses must
// generate without panicking. Seeds below cover the documented error
// classes (malformed weights, zero-rate arrivals, negative seeds); the
// committed corpus in testdata/fuzz/FuzzTraceSpec keeps past findings
// regression-tested.
func FuzzTraceSpec(f *testing.F) {
	f.Add([]byte(validSpecJSON()))
	f.Add([]byte(`{"name":"neg","seed":-1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`))
	f.Add([]byte(`{"name":"zr","seed":1,"requests":10,"arrivals":{"process":"pareto","rate_hz":0},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`))
	f.Add([]byte(`{"name":"w","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":-3,"atoms":100}]}`))
	f.Add([]byte(`{"name":"w2","seed":1,"requests":10,"arrivals":{"process":"lognormal","rate_hz":1e308,"sigma":1e-300},"classes":[{"kind":"sweep","weight":1e-300,"atoms":1,"poses":1}]}`))
	f.Add([]byte(`{"name":"s","seed":1,"requests":3,"arrivals":{"process":"poisson","rate_hz":2},"classes":[{"kind":"stream","weight":1,"atoms":50,"frames":2,"movers":50}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseTraceSpec(data)
		if err != nil {
			if spec != nil {
				t.Fatalf("error %v returned non-nil spec", err)
			}
			return
		}
		// Keep fuzz iterations cheap: the arrival count is the only knob
		// that scales work, and Validate already bounded it — clamp far
		// lower so the fuzzer spends its budget on structure, not loops.
		if spec.Requests > 64 {
			spec.Requests = 64
		}
		reqs, err := Generate(spec)
		if err != nil {
			t.Fatalf("validated spec failed to generate: %v", err)
		}
		if len(reqs) != spec.Requests {
			t.Fatalf("generated %d of %d", len(reqs), spec.Requests)
		}
		for i, r := range reqs {
			if r.At < 0 {
				t.Fatalf("request %d has negative arrival %v", i, r.At)
			}
			if i > 0 && r.At < reqs[i-1].At {
				t.Fatalf("arrivals not monotone at %d", i)
			}
		}
		_ = Serialize(reqs)
	})
}
