package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"octgb/internal/serve"
)

// TestGenerateReplay pins the tentpole's determinism contract end to end:
// the same seeded spec generates a byte-identical request sequence, and
// replaying it through the virtual-time simulator with the tuner enabled
// produces an identical report — including the tuner's decision log,
// compared entry by entry in its canonical String form.
func TestGenerateReplay(t *testing.T) {
	spec := overloadSpec()
	tc := &serve.TunerConfig{
		SLO:      serve.SLO{P99: 150 * time.Millisecond, MinQPS: 80},
		Interval: 250 * time.Millisecond,
	}

	run := func() ([]byte, *Report) {
		reqs, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Simulate(spec, reqs, SimOptions{Tuner: tc})
		if err != nil {
			t.Fatal(err)
		}
		return Serialize(reqs), rep
	}

	seqA, repA := run()
	seqB, repB := run()

	if !bytes.Equal(seqA, seqB) {
		t.Fatal("request sequences differ between runs of the same spec")
	}
	if len(repA.Decisions) == 0 {
		t.Fatal("tuned overload run produced no tuner decisions")
	}
	if len(repA.Decisions) != len(repB.Decisions) {
		t.Fatalf("decision logs differ in length: %d vs %d", len(repA.Decisions), len(repB.Decisions))
	}
	for i := range repA.Decisions {
		if repA.Decisions[i] != repB.Decisions[i] {
			t.Fatalf("decision %d diverged:\n  %s\n  %s", i, repA.Decisions[i], repB.Decisions[i])
		}
	}
	ja, _ := json.Marshal(repA)
	jb, _ := json.Marshal(repB)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("reports diverged:\n%s\n%s", ja, jb)
	}
}

// TestGenerateSeedSensitivity: different seeds must actually change the
// sequence — a generator that ignores its seed would pass every replay
// test while testing nothing.
func TestGenerateSeedSensitivity(t *testing.T) {
	a := lightSpec()
	b := lightSpec()
	b.Seed = a.Seed + 1
	ra, err := Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Generate(b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(Serialize(ra), Serialize(rb)) {
		t.Fatal("seed change did not change the sequence")
	}
}
