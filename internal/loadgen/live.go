package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"octgb/internal/fabric"
	"octgb/internal/molecule"
	"octgb/internal/obs"
	"octgb/internal/serve"
)

// LiveOptions configures a wall-clock replay against a real server.
type LiveOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8686".
	BaseURL string
	// Client is the HTTP client (default: http.DefaultClient).
	Client *http.Client
	// Speed dilates the trace's virtual timeline: 2 replays arrivals
	// twice as fast, 0.5 half speed (default 1). The single-core dev box
	// runs live smokes at low speed; CI gates run the simulator instead.
	Speed float64
}

// liveCounters collects the run's outcome across request goroutines.
type liveCounters struct {
	admitted, completed, rejected, shed, failed, aborted atomic.Int64
	reqHist, queueHist                                   *obs.Histogram
	// measured counts completions inside the measurement window (after
	// warmAt); the histograms likewise only see post-warm-up latencies.
	measured atomic.Int64
	warmAt   time.Time
	// shardMu guards shard: post-warm completions per serving shard, keyed
	// by the fabric router's WorkerHeader. Stays empty against a bare
	// server, which never sets the header.
	shardMu sync.Mutex
	shard   map[string]int64
}

// countShard attributes one measured completion to the shard that served
// it.
func (ctr *liveCounters) countShard(worker string) {
	if worker == "" {
		return
	}
	ctr.shardMu.Lock()
	if ctr.shard == nil {
		ctr.shard = make(map[string]int64)
	}
	ctr.shard[worker]++
	ctr.shardMu.Unlock()
}

// RunLive replays the arrival sequence against a live server, open-loop:
// each arrival fires at its scheduled wall time whether or not earlier
// requests have answered. Stream sessions are closed-loop internally
// (frame n+1 posts when frame n returns), matching the simulator's model.
func RunLive(spec *TraceSpec, reqs []Request, opt LiveOptions) (*Report, error) {
	if opt.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: live run needs a BaseURL")
	}
	if opt.Client == nil {
		opt.Client = http.DefaultClient
	}
	if opt.Speed <= 0 {
		opt.Speed = 1
	}

	// Molecules are deterministic per (class, variant) and generated
	// before the clock starts so construction cost never pollutes the
	// measured latencies.
	mols := make(map[batchKey]serve.MoleculeJSON)
	for _, r := range reqs {
		k := batchKey{r.Class, r.Variant}
		if _, ok := mols[k]; !ok {
			name := fmt.Sprintf("%s-c%d-v%d", spec.Name, r.Class, r.Variant)
			seed := spec.Seed + int64(r.Class)*1009 + int64(r.Variant)
			mols[k] = serve.FromMolecule(molecule.GenerateProtein(name, r.Atoms, seed))
		}
	}

	ctr := &liveCounters{reqHist: &obs.Histogram{}, queueHist: &obs.Histogram{}}
	start := time.Now()
	// Warm-up is specified in trace time, so it dilates with Speed like
	// the arrival schedule does.
	ctr.warmAt = start.Add(time.Duration(spec.SLO.WarmupS / opt.Speed * float64(time.Second)))
	var wg sync.WaitGroup
	for _, r := range reqs {
		due := start.Add(time.Duration(float64(r.At) / opt.Speed))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(r Request) {
			defer wg.Done()
			fire(opt, ctr, mols[batchKey{r.Class, r.Variant}], r)
		}(r)
	}
	wg.Wait()

	rep := &Report{
		Trace:             spec.Name,
		Mode:              "live",
		Offered:           int64(len(reqs)),
		Admitted:          ctr.admitted.Load(),
		Completed:         ctr.completed.Load(),
		RejectedQueueFull: ctr.rejected.Load(),
		Shed:              ctr.shed.Load(),
		Failed:            ctr.failed.Load(),
		AbortedSessions:   ctr.aborted.Load(),
		DurationS:         time.Since(start).Seconds(),
	}
	span := time.Since(start)
	if w := time.Duration(spec.SLO.WarmupS / opt.Speed * float64(time.Second)); w > 0 && w < span {
		span -= w
		rep.WarmupS = w.Seconds()
	}
	rep.fillLatencyWindow(ctr.reqHist.Snapshot(), ctr.queueHist.Snapshot(), ctr.measured.Load(), span)
	ctr.shardMu.Lock()
	if len(ctr.shard) > 0 && span > 0 {
		rep.PerShardQPS = make(map[string]float64, len(ctr.shard))
		for worker, n := range ctr.shard {
			rep.PerShardQPS[worker] = float64(n) / span.Seconds()
		}
	}
	ctr.shardMu.Unlock()
	return rep, nil
}

// fire dispatches one arrival and records its outcome.
func fire(opt LiveOptions, ctr *liveCounters, mol serve.MoleculeJSON, r Request) {
	switch r.Kind {
	case KindSweep:
		poses := make([]serve.PoseJSON, r.Poses)
		for i := range poses {
			poses[i] = serve.PoseJSON{T: [3]float64{float64(r.ID%7) + 0.25*float64(i), 0, 0}}
		}
		post(opt, ctr, "/v1/sweep", serve.SweepRequest{Ligand: mol, Poses: poses}, nil)
	case KindStream:
		runSession(opt, ctr, mol, r)
	default:
		post(opt, ctr, "/v1/energy", serve.EnergyRequest{Molecule: mol}, nil)
	}
}

// runSession is one closed-loop stream client: create, then frames
// back-to-back. A rejected create or frame ends the session, like the
// simulator's abort semantics.
func runSession(opt LiveOptions, ctr *liveCounters, mol serve.MoleculeJSON, r Request) {
	var created serve.StreamCreateResponse
	if !post(opt, ctr, "/v1/stream", serve.StreamCreateRequest{Molecule: mol}, &created) {
		return
	}
	for f := 0; f < r.Frames; f++ {
		moves := make([]serve.MoveJSON, r.Movers)
		for i := range moves {
			a := mol.Atoms[i%len(mol.Atoms)]
			moves[i] = serve.MoveJSON{I: i % len(mol.Atoms), Pos: [3]float64{
				a[0] + 0.01*float64(f+1), a[1], a[2],
			}}
		}
		if !post(opt, ctr, "/v1/stream/"+created.SessionID+"/frame", serve.StreamFrameRequest{Moves: moves}, nil) {
			ctr.aborted.Add(1)
			return
		}
	}
	req, err := http.NewRequest(http.MethodDelete, opt.BaseURL+"/v1/stream/"+created.SessionID, nil)
	if err == nil {
		if resp, err := opt.Client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// post sends one JSON request, classifies the outcome into the counters,
// and reports whether it succeeded.
func post(opt LiveOptions, ctr *liveCounters, path string, body, out any) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		ctr.failed.Add(1)
		return false
	}
	t0 := time.Now()
	resp, err := opt.Client.Post(opt.BaseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		ctr.failed.Add(1)
		return false
	}
	defer resp.Body.Close()
	lat := time.Since(t0)

	if resp.StatusCode == http.StatusOK {
		ctr.admitted.Add(1)
		ctr.completed.Add(1)
		if t0.After(ctr.warmAt) || time.Now().After(ctr.warmAt) {
			ctr.measured.Add(1)
			ctr.reqHist.Observe(lat)
			ctr.countShard(resp.Header.Get(fabric.WorkerHeader))
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				ctr.failed.Add(1)
				return false
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return true
	}

	var e serve.ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests && e.Error == "shed_load":
		ctr.shed.Add(1)
	case resp.StatusCode == http.StatusTooManyRequests:
		ctr.rejected.Add(1)
	default:
		ctr.failed.Add(1)
	}
	return false
}
