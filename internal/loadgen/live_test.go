package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"octgb/internal/serve"
	"octgb/internal/testutil"
)

// TestRunLiveSmoke drives a tiny trace against a real in-process server —
// wall-clock mode end to end. Deliberately small (the dev box has one
// core): a handful of 80-atom evaluations and one short stream session.
func TestRunLiveSmoke(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	srv := serve.New(serve.Config{Workers: 1, Threads: 1, MaxQueue: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	spec := &TraceSpec{
		Name:     "live-smoke-test",
		Seed:     9,
		Requests: 6,
		Arrivals: ArrivalSpec{Process: ProcPoisson, RateHz: 50},
		Classes: []ClassSpec{
			{Kind: KindEnergy, Weight: 4, Atoms: 80},
			{Kind: KindStream, Weight: 1, Atoms: 80, Frames: 2, Movers: 3},
		},
	}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLive(spec, reqs, LiveOptions{BaseURL: ts.URL, Speed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "live" || rep.Offered != 6 {
		t.Fatalf("report header off: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d transport/5xx failures: %+v", rep.Failed, rep)
	}
	if rep.Completed == 0 || rep.P99MS <= 0 {
		t.Fatalf("nothing measured: %+v", rep)
	}
	// Every offered arrival was accounted for somewhere.
	if rep.Completed+rep.RejectedQueueFull+rep.Shed < rep.Offered {
		t.Fatalf("accounting leak: %+v", rep)
	}
}
