package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"octgb/internal/fabric"
	"octgb/internal/serve"
	"octgb/internal/testutil"
)

// TestRunLiveSmoke drives a tiny trace against a real in-process server —
// wall-clock mode end to end. Deliberately small (the dev box has one
// core): a handful of 80-atom evaluations and one short stream session.
func TestRunLiveSmoke(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	srv := serve.New(serve.Config{Workers: 1, Threads: 1, MaxQueue: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	spec := &TraceSpec{
		Name:     "live-smoke-test",
		Seed:     9,
		Requests: 6,
		Arrivals: ArrivalSpec{Process: ProcPoisson, RateHz: 50},
		Classes: []ClassSpec{
			{Kind: KindEnergy, Weight: 4, Atoms: 80},
			{Kind: KindStream, Weight: 1, Atoms: 80, Frames: 2, Movers: 3},
		},
	}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLive(spec, reqs, LiveOptions{BaseURL: ts.URL, Speed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "live" || rep.Offered != 6 {
		t.Fatalf("report header off: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d transport/5xx failures: %+v", rep.Failed, rep)
	}
	if rep.Completed == 0 || rep.P99MS <= 0 {
		t.Fatalf("nothing measured: %+v", rep)
	}
	// Every offered arrival was accounted for somewhere.
	if rep.Completed+rep.RejectedQueueFull+rep.Shed < rep.Offered {
		t.Fatalf("accounting leak: %+v", rep)
	}
	// A bare server never sets the shard header.
	if rep.PerShardQPS != nil {
		t.Fatalf("bare server produced per-shard qps: %+v", rep.PerShardQPS)
	}
}

// TestRunLivePerShard: when the target stamps responses with the fabric
// router's worker header, the report breaks admitted qps down per shard.
// The router itself is faked with a header-stamping middleware — the
// fabric package's own tests cover real routing.
func TestRunLivePerShard(t *testing.T) {
	defer testutil.Watchdog(t, 2*time.Minute)()
	srv := serve.New(serve.Config{Workers: 1, Threads: 1, MaxQueue: 16})
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shard := fmt.Sprintf("w%d", n.Add(1)%2)
		w.Header().Set(fabric.WorkerHeader, shard)
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	spec := &TraceSpec{
		Name:     "per-shard-test",
		Seed:     11,
		Requests: 8,
		Arrivals: ArrivalSpec{Process: ProcPoisson, RateHz: 50},
		Classes:  []ClassSpec{{Kind: KindEnergy, Weight: 1, Atoms: 60}},
	}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLive(spec, reqs, LiveOptions{BaseURL: ts.URL, Speed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Completed == 0 {
		t.Fatalf("run unhealthy: %+v", rep)
	}
	if len(rep.PerShardQPS) != 2 {
		t.Fatalf("per-shard qps = %v, want both fake shards", rep.PerShardQPS)
	}
	var sum float64
	for shard, qps := range rep.PerShardQPS {
		if qps <= 0 {
			t.Fatalf("shard %s has qps %v", shard, qps)
		}
		sum += qps
	}
	// The shard breakdown partitions the aggregate (same completions, same
	// measurement window).
	if d := sum - rep.AdmittedQPS; d > 1e-9 || d < -1e-9 {
		t.Fatalf("per-shard sum %.6f != admitted %.6f", sum, rep.AdmittedQPS)
	}
}
