package loadgen

import (
	"fmt"
	"time"

	"octgb/internal/obs"
	"octgb/internal/serve"
)

// Report is one replay's outcome — the unit BENCH_slo.json commits and
// `cmd/loadgen -check` regresses against.
type Report struct {
	Trace string `json:"trace"`
	// Mode is "sim" (virtual time) or "live" (wall clock against a real
	// server).
	Mode  string `json:"mode"`
	Tuned bool   `json:"tuned"`

	// DurationS is the replay span in seconds (virtual or wall).
	DurationS float64 `json:"duration_s"`
	// WarmupS is the excluded start-up window (see SLOSpec.WarmupS): the
	// quantile and QPS fields below measure only operations completing
	// after it. Counters (Offered/Admitted/...) always cover the full run.
	WarmupS float64 `json:"warmup_s,omitempty"`

	// Offered is the trace's arrival count. Admitted counts admitted
	// operations (stream frames included, so it can exceed Offered);
	// Completed the operations that finished.
	Offered           int64 `json:"offered"`
	Admitted          int64 `json:"admitted"`
	Completed         int64 `json:"completed"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	Shed              int64 `json:"shed"`
	// AbortedSessions counts stream sessions ended early by a rejected
	// frame.
	AbortedSessions int64 `json:"aborted_sessions,omitempty"`
	// Failed counts live-mode transport or 5xx failures.
	Failed int64 `json:"failed,omitempty"`

	AdmittedQPS float64 `json:"admitted_qps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	QueueP99MS  float64 `json:"queue_p99_ms"`

	// PerShardQPS breaks AdmittedQPS down by serving shard when the live
	// run targets a fabric router (keyed by the X-Octgb-Worker response
	// header; see internal/fabric). Empty against a bare server.
	PerShardQPS map[string]float64 `json:"per_shard_qps,omitempty"`

	// Decisions is the tuner's deterministic decision log (tuned runs).
	Decisions []string `json:"decisions,omitempty"`
	// FinalKnobs are the admission knobs in force at the end of the run.
	FinalKnobs *serve.Knobs `json:"final_knobs,omitempty"`
}

// fillLatency derives the quantile and throughput fields from the run's
// completed-request and queue-wait histograms over the full run.
func (r *Report) fillLatency(req, queue obs.HistSnapshot) {
	r.fillLatencyWindow(req, queue, r.Completed, time.Duration(r.DurationS*float64(time.Second)))
}

// fillLatencyWindow is fillLatency over an explicit measurement window —
// post-warm-up snapshot diffs with their own completion count and span.
func (r *Report) fillLatencyWindow(req, queue obs.HistSnapshot, completed int64, span time.Duration) {
	r.P50MS = float64(req.Quantile(0.50)) / 1e6
	r.P95MS = float64(req.Quantile(0.95)) / 1e6
	r.P99MS = float64(req.Quantile(0.99)) / 1e6
	r.QueueP99MS = float64(queue.Quantile(0.99)) / 1e6
	if s := span.Seconds(); s > 0 {
		r.AdmittedQPS = float64(completed) / s
	}
}

// CheckSLO verifies a report against the objective: admitted p99 at or
// under the target, admitted throughput at or over the floor.
func (r *Report) CheckSLO(slo SLOSpec) error {
	if slo.P99MS > 0 && r.P99MS > slo.P99MS {
		return fmt.Errorf("loadgen: %s/%s p99 %.1fms exceeds SLO %.1fms", r.Trace, r.Mode, r.P99MS, slo.P99MS)
	}
	if slo.MinQPS > 0 && r.AdmittedQPS < slo.MinQPS {
		return fmt.Errorf("loadgen: %s/%s admitted %.2f qps under SLO floor %.2f", r.Trace, r.Mode, r.AdmittedQPS, slo.MinQPS)
	}
	return nil
}
