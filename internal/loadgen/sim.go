package loadgen

import (
	"container/heap"
	"fmt"
	"time"

	"octgb/internal/obs"
	"octgb/internal/serve"
	"octgb/internal/simtime"
)

// SimOptions configures a virtual-time replay.
type SimOptions struct {
	// Costs are the service-time surrogates (zero value → calibrated
	// defaults).
	Costs simtime.ServeCosts
	// Tuner, when non-nil with a positive SLO.P99, runs the serve.Tuner
	// control loop inside the simulation at virtual-time intervals —
	// the same state machine the live server runs, fed the same window
	// shape, so its decision log replays identically.
	Tuner *serve.TunerConfig
}

// event kinds, in deterministic tie-break order: at equal virtual times,
// completions land before the tuner samples, the tuner decides before new
// arrivals are admitted (so a knob change is visible to the arrival that
// shares its timestamp), and batch flushes follow arrivals so a request
// arriving exactly at window close still joins its batch.
const (
	evComplete = iota
	evTick
	evWarm
	evArrival
	evFrame
	evFlush
)

type simEvent struct {
	at   time.Duration
	kind int
	seq  int // FIFO tie-break within (at, kind)

	req  Request     // evArrival
	key  batchKey    // evFlush
	job  *simJob     // evComplete
	sess *simSession // evFrame
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// batchKey identifies a coalescible sweep batch, mirroring serve.sweepKey:
// same class (same molecules and options) and same variant.
type batchKey struct{ class, variant int }

// simWaiter is one admitted request riding a job.
type simWaiter struct {
	arrivedAt time.Duration
	sess      *simSession // non-nil: completing this job advances the session
}

// simJob is one unit of worker-pool work: an energy evaluation, a
// coalesced sweep batch, a session create or a frame.
type simJob struct {
	service    time.Duration
	enqueuedAt time.Duration
	waiters    []simWaiter
}

// simBatch is an open sweep-coalescing window.
type simBatch struct {
	key     batchKey
	atoms   int
	poses   int
	waiters []simWaiter
}

// simSession is a closed-loop stream client: create, then frames
// back-to-back, each submitted when the previous completes.
type simSession struct {
	atoms, movers int
	framesLeft    int
	created       bool
}

// simulator is the discrete-event model of the serving tier: a bounded
// FIFO queue in front of Workers parallel servers, sweep batching, the
// shed-load estimator, and (optionally) the tuner control loop — the same
// admission semantics internal/serve implements, with ServeCosts standing
// in for the engine.
type simulator struct {
	spec  *TraceSpec
	costs simtime.ServeCosts

	workers int
	busy    int
	fifo    []*simJob

	// Tunable knobs, mirroring the server's atomics.
	queueLimit  int
	shedLat     time.Duration
	batchWindow time.Duration

	events eventHeap
	seq    int
	now    time.Duration

	batches map[batchKey]*simBatch
	cold    map[batchKey]bool

	// Cumulative counters and histograms — the same shape the live tuner
	// loop samples, diffed per window.
	completed, rejected, shed int64
	admitted, aborted         int64
	evalNS, evals             int64
	reqHist, queueHist        *obs.Histogram

	tuner    *serve.Tuner
	tunerCfg serve.TunerConfig
	prevWin  tunerSample

	// warm is the measurement-window baseline captured at SLO.WarmupS —
	// the report's quantiles and throughput are diffed against it so the
	// cold-start and tuner-convergence transient stays out of the
	// steady-state numbers.
	warm    tunerSample
	hasWarm bool
}

type tunerSample struct {
	at                        time.Duration
	completed, rejected, shed int64
	req, queue                obs.HistSnapshot
}

// Simulate replays a generated arrival sequence through the queueing model
// and returns the run's report. Deterministic: same spec + options →
// identical report, including the tuner decision log.
func Simulate(spec *TraceSpec, reqs []Request, opt SimOptions) (*Report, error) {
	if spec == nil {
		return nil, fmt.Errorf("loadgen: nil spec")
	}
	if opt.Costs == (simtime.ServeCosts{}) {
		opt.Costs = simtime.DefaultServeCosts()
	}
	s := &simulator{
		spec:      spec,
		costs:     opt.Costs,
		workers:   spec.Sim.Workers,
		batches:   make(map[batchKey]*simBatch),
		cold:      make(map[batchKey]bool),
		reqHist:   &obs.Histogram{},
		queueHist: &obs.Histogram{},
	}
	if s.workers <= 0 {
		s.workers = 2
	}
	queue := spec.Sim.Queue
	if queue <= 0 {
		queue = 64
	}
	s.queueLimit = queue
	s.batchWindow = time.Duration(spec.Sim.BatchWindowMS * float64(time.Millisecond))
	if s.batchWindow <= 0 {
		s.batchWindow = 5 * time.Millisecond
	}
	initial := serve.Knobs{BatchWindow: s.batchWindow, QueueLimit: s.queueLimit}

	if opt.Tuner != nil && opt.Tuner.SLO.P99 > 0 {
		s.tunerCfg = *opt.Tuner
		if s.tunerCfg.Interval <= 0 {
			s.tunerCfg.Interval = time.Second
		}
		if s.tunerCfg.Hysteresis <= 0 {
			s.tunerCfg.Hysteresis = 2
		}
		if s.tunerCfg.MinQueue <= 0 {
			s.tunerCfg.MinQueue = 2 * s.workers
		}
		if s.tunerCfg.MaxQueue <= 0 {
			s.tunerCfg.MaxQueue = queue
		}
		if s.tunerCfg.MinQueue > s.tunerCfg.MaxQueue {
			s.tunerCfg.MinQueue = s.tunerCfg.MaxQueue
		}
		if s.tunerCfg.MinBatchWindow <= 0 {
			s.tunerCfg.MinBatchWindow = time.Millisecond
		}
		if s.tunerCfg.MaxBatchWindow <= 0 {
			s.tunerCfg.MaxBatchWindow = 4 * s.batchWindow
			if q := s.tunerCfg.SLO.P99 / 4; q > s.tunerCfg.MaxBatchWindow {
				s.tunerCfg.MaxBatchWindow = q
			}
		}
		s.tuner = serve.NewTuner(s.tunerCfg, initial)
		s.push(&simEvent{at: s.tunerCfg.Interval, kind: evTick})
	}

	if w := spec.SLO.WarmupS; w > 0 {
		s.push(&simEvent{at: time.Duration(w * float64(time.Second)), kind: evWarm})
	}
	for _, r := range reqs {
		s.push(&simEvent{at: r.At, kind: evArrival, req: r})
	}
	s.run()

	rep := s.report()
	rep.Trace = spec.Name
	rep.Mode = "sim"
	rep.Tuned = s.tuner != nil
	return rep, nil
}

func (s *simulator) push(e *simEvent) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *simulator) run() {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*simEvent)
		s.now = e.at
		switch e.kind {
		case evArrival:
			s.arrive(e.req)
		case evFrame:
			s.frameArrive(e.sess)
		case evFlush:
			s.flush(e.key)
		case evComplete:
			s.complete(e.job)
		case evTick:
			s.tick()
		case evWarm:
			s.warm = s.sample()
			s.hasWarm = true
		}
	}
}

// admit mirrors serve.(*Server).admissionCheck: the effective queue-depth
// limit, then the shed-load estimate against the observed mean service
// time. Returns "" when admitted, else the rejection token.
func (s *simulator) admit() string {
	depth := len(s.fifo)
	if depth >= s.queueLimit {
		s.rejected++
		return "queue_full"
	}
	if s.shedLat > 0 && depth >= s.workers && s.evals > 0 {
		est := int64(depth/s.workers) * (s.evalNS / s.evals)
		if est > int64(s.shedLat) {
			s.shed++
			return "shed_load"
		}
	}
	return ""
}

// coldKey reports (and consumes) whether this class/variant's prepared
// state is not yet cached. The model's cache never evicts — trace-scale
// working sets fit the serve tier's default budget.
func (s *simulator) coldKey(k batchKey) bool {
	if s.cold[k] {
		return false
	}
	s.cold[k] = true
	return true
}

func (s *simulator) arrive(r Request) {
	k := batchKey{r.Class, r.Variant}
	switch r.Kind {
	case KindSweep:
		if s.admit() != "" {
			return
		}
		s.admitted++
		b, ok := s.batches[k]
		if !ok {
			b = &simBatch{key: k, atoms: r.Atoms}
			s.batches[k] = b
			s.push(&simEvent{at: s.now + s.batchWindow, kind: evFlush, key: k})
		}
		b.poses += r.Poses
		b.waiters = append(b.waiters, simWaiter{arrivedAt: s.now})
	case KindStream:
		if s.admit() != "" {
			return
		}
		s.admitted++
		sess := &simSession{atoms: r.Atoms, movers: r.Movers, framesLeft: r.Frames}
		s.enqueue(&simJob{
			service: s.costs.StreamCreate(r.Atoms),
			waiters: []simWaiter{{arrivedAt: s.now, sess: sess}},
		})
	default: // energy
		if s.admit() != "" {
			return
		}
		s.admitted++
		s.enqueue(&simJob{
			service: s.costs.Energy(r.Atoms, s.coldKey(k)),
			waiters: []simWaiter{{arrivedAt: s.now}},
		})
	}
}

// frameArrive is a session's next frame hitting admission. A rejected
// frame aborts the session: the closed-loop client's turn is over, which
// is exactly how overload self-limits closed-loop traffic.
func (s *simulator) frameArrive(sess *simSession) {
	if s.admit() != "" {
		s.aborted++
		return
	}
	s.admitted++
	s.enqueue(&simJob{
		service: s.costs.StreamFrame(sess.movers),
		waiters: []simWaiter{{arrivedAt: s.now, sess: sess}},
	})
}

// flush closes a sweep batch window: the coalesced batch becomes one job.
// Like serve.submitBatch, already-admitted batches bypass admission.
func (s *simulator) flush(k batchKey) {
	b := s.batches[k]
	if b == nil {
		return
	}
	delete(s.batches, k)
	s.enqueue(&simJob{
		service: s.costs.SweepBatch(b.atoms, b.poses, s.coldKey(k)),
		waiters: b.waiters,
	})
}

// enqueue hands a job to the worker pool: start immediately on a free
// worker, else park FIFO.
func (s *simulator) enqueue(j *simJob) {
	j.enqueuedAt = s.now
	if s.busy < s.workers {
		s.start(j)
		return
	}
	s.fifo = append(s.fifo, j)
}

func (s *simulator) start(j *simJob) {
	s.busy++
	wait := s.now - j.enqueuedAt
	for range j.waiters {
		s.queueHist.Observe(wait)
	}
	s.push(&simEvent{at: s.now + j.service, kind: evComplete, job: j})
}

func (s *simulator) complete(j *simJob) {
	s.busy--
	s.evalNS += int64(j.service)
	s.evals++
	for _, w := range j.waiters {
		s.reqHist.Observe(s.now - w.arrivedAt)
		s.completed++
		if w.sess != nil {
			sess := w.sess
			if !sess.created {
				sess.created = true
			} else {
				sess.framesLeft--
			}
			if sess.framesLeft > 0 {
				s.push(&simEvent{at: s.now, kind: evFrame, sess: sess})
			}
		}
	}
	if len(s.fifo) > 0 {
		next := s.fifo[0]
		s.fifo = s.fifo[1:]
		s.start(next)
	}
}

// tick is one tuner control interval in virtual time — the same
// sample/diff/Step/apply sequence the live tunerLoop runs.
func (s *simulator) sample() tunerSample {
	return tunerSample{
		at:        s.now,
		completed: s.completed,
		rejected:  s.rejected,
		shed:      s.shed,
		req:       s.reqHist.Snapshot(),
		queue:     s.queueHist.Snapshot(),
	}
}

func (s *simulator) tick() {
	cur := s.sample()
	d := s.tuner.Step(serve.TunerInputs{
		Elapsed:   cur.at - s.prevWin.at,
		Completed: uint64(cur.completed - s.prevWin.completed),
		Rejected:  uint64(cur.rejected - s.prevWin.rejected),
		Shed:      uint64(cur.shed - s.prevWin.shed),
		Request:   cur.req.Sub(s.prevWin.req),
		Queue:     cur.queue.Sub(s.prevWin.queue),
	})
	s.prevWin = cur
	s.batchWindow = d.Knobs.BatchWindow
	s.queueLimit = d.Knobs.QueueLimit
	s.shedLat = d.Knobs.ShedLatency
	// Keep ticking while the simulation still has work in flight.
	if s.events.Len() > 0 {
		s.push(&simEvent{at: s.now + s.tunerCfg.Interval, kind: evTick})
	}
}

func (s *simulator) report() *Report {
	rep := &Report{
		Offered:           int64(s.spec.Requests),
		Admitted:          s.admitted,
		Completed:         s.completed,
		RejectedQueueFull: s.rejected,
		Shed:              s.shed,
		AbortedSessions:   s.aborted,
		DurationS:         s.now.Seconds(),
	}
	req, queue := s.reqHist.Snapshot(), s.queueHist.Snapshot()
	completed, span := s.completed, s.now
	if s.hasWarm {
		req, queue = req.Sub(s.warm.req), queue.Sub(s.warm.queue)
		completed -= s.warm.completed
		span -= s.warm.at
		rep.WarmupS = s.warm.at.Seconds()
	}
	rep.fillLatencyWindow(req, queue, completed, span)
	if s.tuner != nil {
		for _, d := range s.tuner.Log() {
			rep.Decisions = append(rep.Decisions, d.String())
		}
		k := s.tuner.Knobs()
		rep.FinalKnobs = &k
	}
	return rep
}
