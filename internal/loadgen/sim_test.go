package loadgen

import (
	"testing"
	"time"

	"octgb/internal/serve"
)

// lightSpec is well under modeled capacity: 2 workers at ~1.6ms per
// 150-atom warm eval handle ~1200 qps; we offer 40.
func lightSpec() *TraceSpec {
	return &TraceSpec{
		Name:     "light",
		Seed:     11,
		Requests: 200,
		Arrivals: ArrivalSpec{Process: ProcPoisson, RateHz: 40},
		Classes:  []ClassSpec{{Kind: KindEnergy, Weight: 1, Atoms: 150, Variants: 2}},
		Sim:      SimSpec{Workers: 2, Queue: 64, BatchWindowMS: 5},
	}
}

// overloadSpec offers ~3× the modeled capacity of 2 workers on 2000-atom
// evaluations (~17ms warm → ~115 qps capacity; offered 300 qps), so the
// untuned 64-deep queue runs full and queue wait dominates latency.
func overloadSpec() *TraceSpec {
	return &TraceSpec{
		Name:     "overload",
		Seed:     42,
		Requests: 3000,
		Arrivals: ArrivalSpec{Process: ProcPareto, RateHz: 300, Shape: 1.5},
		Classes:  []ClassSpec{{Kind: KindEnergy, Weight: 1, Atoms: 2000, Variants: 2}},
		Sim:      SimSpec{Workers: 2, Queue: 64, BatchWindowMS: 5},
		SLO:      SLOSpec{P99MS: 150, MinQPS: 80, WarmupS: 3},
	}
}

func TestSimulateLightLoad(t *testing.T) {
	spec := lightSpec()
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(spec, reqs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Offered || rep.RejectedQueueFull != 0 || rep.Shed != 0 {
		t.Fatalf("light load should all complete: %+v", rep)
	}
	// Warm evals are ~1.6ms; even queued behind the two cold builds
	// (~45ms each) p99 stays far under a second.
	if rep.P99MS > 1000 {
		t.Fatalf("light-load p99 %.1fms", rep.P99MS)
	}
	if rep.DurationS <= 0 || rep.AdmittedQPS <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
}

// TestSimulateOverloadTunedVsUntuned is the tentpole's core claim in
// miniature: under sustained overload the untuned tier blows the latency
// SLO (the full queue is the latency), while the tuner — shrinking the
// effective queue and arming shed — brings admitted p99 inside the SLO
// without giving up admitted throughput (both configurations are capacity
// bound, so completions track worker saturation, not queue depth).
func TestSimulateOverloadTunedVsUntuned(t *testing.T) {
	spec := overloadSpec()
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	untuned, err := Simulate(spec, reqs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Simulate(spec, reqs, SimOptions{Tuner: &serve.TunerConfig{
		SLO:      serve.SLO{P99: time.Duration(spec.SLO.P99MS) * time.Millisecond, MinQPS: spec.SLO.MinQPS},
		Interval: 250 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}

	if untuned.P99MS <= spec.SLO.P99MS {
		t.Fatalf("overload too gentle: untuned p99 %.1fms under SLO %.0fms", untuned.P99MS, spec.SLO.P99MS)
	}
	if err := tuned.CheckSLO(spec.SLO); err != nil {
		t.Fatalf("tuned run misses SLO: %v\nlast decisions: %v", err, tail(tuned.Decisions, 5))
	}
	if tuned.AdmittedQPS < untuned.AdmittedQPS*0.95 {
		t.Fatalf("tuning cost throughput: %.1f qps tuned vs %.1f untuned", tuned.AdmittedQPS, untuned.AdmittedQPS)
	}
	if len(tuned.Decisions) == 0 || tuned.FinalKnobs == nil {
		t.Fatal("tuned run recorded no decisions")
	}
	if tuned.FinalKnobs.QueueLimit >= 64 && tuned.FinalKnobs.ShedLatency == 0 {
		t.Fatalf("tuner never tightened: %+v", tuned.FinalKnobs)
	}
}

func tail(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// TestSimulateSweepCoalescing: sweeps of one class arriving inside the
// batch window share a flush — with a window wider than the arrival gaps,
// the run finishes sooner than with a near-zero window because the shared
// prepare is paid once per batch instead of once per request.
func TestSimulateSweepCoalescing(t *testing.T) {
	spec := &TraceSpec{
		Name:     "sweeps",
		Seed:     5,
		Requests: 400,
		Arrivals: ArrivalSpec{Process: ProcPoisson, RateHz: 400},
		Classes:  []ClassSpec{{Kind: KindSweep, Weight: 1, Atoms: 400, Poses: 2}},
		Sim:      SimSpec{Workers: 2, Queue: 512, BatchWindowMS: 0.001},
	}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Simulate(spec, reqs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec.Sim.BatchWindowMS = 25
	wide, err := Simulate(spec, reqs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Completed != wide.Completed {
		t.Fatalf("completions differ: %d vs %d", narrow.Completed, wide.Completed)
	}
	if wide.DurationS >= narrow.DurationS {
		t.Fatalf("coalescing did not amortize: wide %.3fs vs narrow %.3fs", wide.DurationS, narrow.DurationS)
	}
}

// TestSimulateStreamSessions: under light load every session completes its
// create plus all frames, each counted as a completed operation.
func TestSimulateStreamSessions(t *testing.T) {
	spec := &TraceSpec{
		Name:     "streams",
		Seed:     3,
		Requests: 10,
		Arrivals: ArrivalSpec{Process: ProcPoisson, RateHz: 2},
		Classes:  []ClassSpec{{Kind: KindStream, Weight: 1, Atoms: 500, Frames: 6, Movers: 10}},
		Sim:      SimSpec{Workers: 2, Queue: 64},
	}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(spec, reqs, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10 * (1 + 6)) // create + 6 frames per session
	if rep.Completed != want || rep.AbortedSessions != 0 {
		t.Fatalf("completed %d (want %d), aborted %d", rep.Completed, want, rep.AbortedSessions)
	}
}
