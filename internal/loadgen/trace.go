// Package loadgen is the trace-driven load harness for the serving tier:
// a deterministic, seeded, open-loop request generator plus two replay
// backends — a wall-clock runner that drives a real serve.Server over
// HTTP, and a virtual-time simulator (internal/simtime.ServeCosts) that
// replays the same trace against a queueing model of the tier, so
// cluster-scale what-if experiments run in milliseconds on the single-core
// development box.
//
// A trace is a JSON TraceSpec: a seed, an arrival process (heavy-tailed
// Pareto or lognormal, or Poisson), and a weighted mix of request classes
// (single-molecule evaluations, pose sweeps, incremental stream sessions).
// The same spec replays to the byte: Generate is a pure function of the
// spec, and the simulator — including the serve.Tuner admission control
// loop it can host — is deterministic, which is what makes SLO regression
// checkable in CI (cmd/loadgen -check against BENCH_slo.json).
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Arrival processes.
const (
	ProcPareto    = "pareto"
	ProcLognormal = "lognormal"
	ProcPoisson   = "poisson"
)

// Request-class kinds.
const (
	KindEnergy = "energy"
	KindSweep  = "sweep"
	KindStream = "stream"
)

// maxTraceRequests bounds a spec so a corrupt or adversarial trace cannot
// allocate unbounded memory during Generate.
const maxTraceRequests = 1 << 20

// ArrivalSpec describes the open-loop inter-arrival process. Open-loop
// means arrivals do not wait for responses — the generator keeps offering
// load at the configured rate even when the server is drowning, which is
// exactly the regime admission control exists for.
type ArrivalSpec struct {
	// Process is "pareto" (heavy-tailed bursts), "lognormal" (skewed but
	// lighter tail) or "poisson" (memoryless baseline).
	Process string `json:"process"`
	// RateHz is the mean offered rate in requests per second of virtual
	// (or wall) time.
	RateHz float64 `json:"rate_hz"`
	// Shape is the Pareto tail index α (> 1 so the mean exists;
	// default 1.5 — bursty). Smaller α → heavier tail.
	Shape float64 `json:"shape,omitempty"`
	// Sigma is the lognormal log-scale σ (default 1.0).
	Sigma float64 `json:"sigma,omitempty"`
}

// ClassSpec is one request class in the mix.
type ClassSpec struct {
	// Kind is "energy", "sweep" or "stream".
	Kind string `json:"kind"`
	// Weight is the class's share of the mix (relative, > 0).
	Weight float64 `json:"weight"`
	// Atoms is the molecule size for this class.
	Atoms int `json:"atoms"`
	// Poses is the pose count per sweep request (sweep only).
	Poses int `json:"poses,omitempty"`
	// Frames is the closed-loop frame count per session (stream only).
	Frames int `json:"frames,omitempty"`
	// Movers is the atoms moved per frame (stream only).
	Movers int `json:"movers,omitempty"`
	// Variants is how many distinct molecules the class draws from
	// (default 1). More variants → more prepared-cache misses.
	Variants int `json:"variants,omitempty"`
}

// SimSpec configures the modeled serving tier for virtual-time replay.
// Zero fields default to the serve layer's own defaults.
type SimSpec struct {
	// Workers is the modeled worker-pool size.
	Workers int `json:"workers,omitempty"`
	// Queue is the modeled submission-queue capacity.
	Queue int `json:"queue,omitempty"`
	// BatchWindowMS is the modeled sweep coalescing window.
	BatchWindowMS float64 `json:"batch_window_ms,omitempty"`
}

// SLOSpec is the objective the trace is checked against (and the tuner,
// when enabled, steers toward).
type SLOSpec struct {
	// P99MS is the admitted-request p99 latency target in milliseconds.
	P99MS float64 `json:"p99_ms"`
	// MinQPS is the admitted-throughput floor in requests per second.
	MinQPS float64 `json:"min_qps"`
	// WarmupS excludes the run's first seconds from the reported
	// quantiles and throughput: cold cache builds and the tuner's
	// convergence transient are start-up costs, not steady-state
	// behavior, and an SLO is a steady-state contract. The replay still
	// executes (and the tuner still observes) the warm-up — only the
	// report's measurement window starts after it.
	WarmupS float64 `json:"warmup_s,omitempty"`
}

// TraceSpec is a replayable load trace: everything Generate needs to
// produce the identical request sequence on every machine, every run.
type TraceSpec struct {
	Name     string      `json:"name"`
	Seed     int64       `json:"seed"`
	Requests int         `json:"requests"`
	Arrivals ArrivalSpec `json:"arrivals"`
	Classes  []ClassSpec `json:"classes"`
	Sim      SimSpec     `json:"sim,omitempty"`
	SLO      SLOSpec     `json:"slo,omitempty"`
}

// ParseTraceSpec decodes and validates a trace spec. Unknown fields are
// rejected — a typoed knob silently ignored would make two hosts replay
// different traces while believing they ran the same one.
func ParseTraceSpec(data []byte) (*TraceSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var spec TraceSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("loadgen: parse trace: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("loadgen: parse trace: trailing data after spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// finitePos reports whether v is a finite number > 0.
func finitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}

// Validate checks the spec. Every malformed input yields an error, never a
// panic — pinned by FuzzTraceSpec.
func (s *TraceSpec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("loadgen: trace %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fail("name is required")
	}
	if s.Seed < 0 {
		return fail("seed %d is negative; seeds are non-negative so specs stay portable across rng implementations", s.Seed)
	}
	if s.Requests <= 0 || s.Requests > maxTraceRequests {
		return fail("requests %d outside (0, %d]", s.Requests, maxTraceRequests)
	}
	a := s.Arrivals
	switch a.Process {
	case ProcPareto:
		if a.Shape != 0 && (!finitePos(a.Shape) || a.Shape <= 1 || a.Shape > 1000) {
			return fail("pareto shape %v outside (1, 1000] (finite mean)", a.Shape)
		}
	case ProcLognormal:
		if a.Sigma != 0 && (!finitePos(a.Sigma) || a.Sigma > 20) {
			return fail("lognormal sigma %v outside (0, 20]", a.Sigma)
		}
	case ProcPoisson:
	default:
		return fail("unknown arrival process %q", a.Process)
	}
	// The rate bounds keep 1/rate, the 100×mean gap clamp, and the
	// cumulative trace span all far inside time.Duration's range.
	if !finitePos(a.RateHz) || a.RateHz < 1e-6 || a.RateHz > 1e9 {
		return fail("rate_hz %v outside [1e-6, 1e9]", a.RateHz)
	}
	if float64(s.Requests)/a.RateHz > 3e7 {
		return fail("trace span %g s exceeds 3e7 s (requests/rate_hz)", float64(s.Requests)/a.RateHz)
	}
	if len(s.Classes) == 0 {
		return fail("at least one request class is required")
	}
	for i, c := range s.Classes {
		cf := func(format string, args ...any) error {
			return fail("class %d (%s): %s", i, c.Kind, fmt.Sprintf(format, args...))
		}
		if !finitePos(c.Weight) {
			return cf("weight %v must be finite and > 0", c.Weight)
		}
		if c.Atoms <= 0 || c.Atoms > 200000 {
			return cf("atoms %d outside (0, 200000]", c.Atoms)
		}
		if c.Variants < 0 {
			return cf("variants %d is negative", c.Variants)
		}
		switch c.Kind {
		case KindEnergy:
		case KindSweep:
			if c.Poses <= 0 || c.Poses > 4096 {
				return cf("poses %d outside (0, 4096]", c.Poses)
			}
		case KindStream:
			if c.Frames <= 0 || c.Frames > 4096 {
				return cf("frames %d outside (0, 4096]", c.Frames)
			}
			if c.Movers <= 0 || c.Movers > c.Atoms {
				return cf("movers %d outside (0, atoms]", c.Movers)
			}
		default:
			return cf("unknown kind")
		}
	}
	if s.Sim.Workers < 0 || s.Sim.Queue < 0 || s.Sim.BatchWindowMS < 0 ||
		math.IsNaN(s.Sim.BatchWindowMS) || math.IsInf(s.Sim.BatchWindowMS, 1) {
		return fail("sim parameters must be non-negative and finite")
	}
	if s.SLO.P99MS < 0 || math.IsNaN(s.SLO.P99MS) || math.IsInf(s.SLO.P99MS, 1) ||
		s.SLO.MinQPS < 0 || math.IsNaN(s.SLO.MinQPS) || math.IsInf(s.SLO.MinQPS, 1) ||
		s.SLO.WarmupS < 0 || math.IsNaN(s.SLO.WarmupS) || math.IsInf(s.SLO.WarmupS, 1) {
		return fail("slo parameters must be non-negative and finite")
	}
	return nil
}

// shape returns the Pareto tail index with the default applied.
func (a ArrivalSpec) shape() float64 {
	if a.Shape == 0 {
		return 1.5
	}
	return a.Shape
}

// sigma returns the lognormal σ with the default applied.
func (a ArrivalSpec) sigma() float64 {
	if a.Sigma == 0 {
		return 1.0
	}
	return a.Sigma
}
