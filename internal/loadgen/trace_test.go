package loadgen

import (
	"strings"
	"testing"
)

func validSpecJSON() string {
	return `{
	  "name": "unit",
	  "seed": 7,
	  "requests": 100,
	  "arrivals": {"process": "pareto", "rate_hz": 50, "shape": 1.5},
	  "classes": [
	    {"kind": "energy", "weight": 2, "atoms": 150, "variants": 3},
	    {"kind": "sweep", "weight": 1, "atoms": 100, "poses": 4},
	    {"kind": "stream", "weight": 1, "atoms": 200, "frames": 5, "movers": 8}
	  ],
	  "sim": {"workers": 2, "queue": 32, "batch_window_ms": 5},
	  "slo": {"p99_ms": 100, "min_qps": 20}
	}`
}

func TestParseTraceSpecValid(t *testing.T) {
	spec, err := ParseTraceSpec([]byte(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "unit" || spec.Seed != 7 || len(spec.Classes) != 3 {
		t.Fatalf("parsed %+v", spec)
	}
	if spec.Arrivals.shape() != 1.5 || spec.Arrivals.sigma() != 1.0 {
		t.Fatalf("defaults: shape %v sigma %v", spec.Arrivals.shape(), spec.Arrivals.sigma())
	}
}

func TestParseTraceSpecRejects(t *testing.T) {
	cases := map[string]string{
		"negative seed":   `{"name":"x","seed":-1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"zero requests":   `{"name":"x","seed":1,"requests":0,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"too many":        `{"name":"x","seed":1,"requests":99999999,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"bad process":     `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"uniform","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"zero rate":       `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":0},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"negative rate":   `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":-5},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"pareto shape<=1": `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"pareto","rate_hz":10,"shape":1},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"no classes":      `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[]}`,
		"zero weight":     `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":0,"atoms":100}]}`,
		"negative weight": `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":-1,"atoms":100}]}`,
		"bad kind":        `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"warp","weight":1,"atoms":100}]}`,
		"zero atoms":      `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":0}]}`,
		"sweep no poses":  `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"sweep","weight":1,"atoms":100}]}`,
		"movers>atoms":    `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"stream","weight":1,"atoms":10,"frames":2,"movers":20}]}`,
		"unknown field":   `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}],"typo_knob":true}`,
		"no name":         `{"seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}]}`,
		"trailing data":   `{"name":"x","seed":1,"requests":10,"arrivals":{"process":"poisson","rate_hz":10},"classes":[{"kind":"energy","weight":1,"atoms":100}]} {"more":1}`,
		"not json":        `rate_hz: 10`,
	}
	for name, in := range cases {
		if _, err := ParseTraceSpec([]byte(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGenerateMixAndOrder(t *testing.T) {
	spec, err := ParseTraceSpec([]byte(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != spec.Requests {
		t.Fatalf("generated %d, want %d", len(reqs), spec.Requests)
	}
	counts := map[string]int{}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if i > 0 && r.At < reqs[i-1].At {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, r.At, reqs[i-1].At)
		}
		counts[r.Kind]++
		if r.Kind == KindEnergy && (r.Variant < 0 || r.Variant >= 3) {
			t.Fatalf("variant %d outside class range", r.Variant)
		}
	}
	// Weights 2:1:1 over 100 draws: energy should clearly dominate, and
	// every class should appear.
	if counts[KindEnergy] <= counts[KindSweep] || counts[KindSweep] == 0 || counts[KindStream] == 0 {
		t.Fatalf("mix off: %v", counts)
	}
}

func TestSerializeShape(t *testing.T) {
	spec, _ := ParseTraceSpec([]byte(validSpecJSON()))
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(Serialize(reqs)), "\n"), "\n")
	if len(lines) != len(reqs) {
		t.Fatalf("%d lines for %d requests", len(lines), len(reqs))
	}
	if !strings.Contains(lines[0], "kind=") || !strings.Contains(lines[0], "at=") {
		t.Fatalf("unexpected line shape: %q", lines[0])
	}
}
