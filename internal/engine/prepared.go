package engine

import (
	"time"

	"octgb/internal/core"
	"octgb/internal/molecule"
	"octgb/internal/sched"
	"octgb/internal/surface"
)

// Prepared is a fully preprocessed shared-memory problem: the sampled
// surface, both octrees with their per-node aggregates, and the effective
// Born radii — everything in Fig. 4 steps 1–4 that depends only on the
// molecule geometry, the surface sampling, and the Born-phase parameters.
// None of that changes across repeated energy evaluations, so a Prepared
// can be cached and re-evaluated with different E_pol parameters (ε_E,
// math mode, thread count) without re-sampling the surface or rebuilding
// the trees. This is the paper's §IV-C "octree construction as a
// preprocessing step", promoted to a first-class value; internal/serve
// keys an LRU of these by molecule content hash.
//
// A Prepared is immutable after Prepare and safe for concurrent EvalEpol
// calls: the octrees and solver aggregates are read-only after
// construction, and every evaluation builds its own EpolSolver and
// accumulators.
type Prepared struct {
	// Pr is the underlying problem (molecule + sampled surface + charges).
	Pr *Problem
	// BornRadii are the effective Born radii in original atom order.
	BornRadii []float64
	// BornStats are the Born-phase treecode work counters.
	BornStats core.Stats
	// BornSched is the scheduler activity of the Born phase.
	BornSched sched.Stats

	bs   *core.BornSolver
	opts Options // prepare-time options, defaults resolved
}

// Prepare runs the preprocessing phase (steps 1–4: octree construction,
// Born integrals, Born radii) with the shared-memory engine and returns
// the reusable result. The Born-relevant fields of o (BornEps, LeafSize,
// CriterionPower, Threads, UseFlatKernels) apply here; the E_pol fields
// are consumed later by EvalEpol.
func Prepare(pr *Problem, o Options) (*Prepared, error) {
	o = o.withDefaults(OctCilk)
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p := prepareCilk(pr, o)
	recordSchedStats(o.Observe, p.BornSched)
	return p, nil
}

// NewProblemFromSurface bundles a molecule with an externally produced
// quadrature point set — the entry point for callers that compose or
// transform surfaces instead of sampling them (pose sweeps reuse the
// receptor's and ligand's cached point sets, see surface.ComposePose).
func NewProblemFromSurface(mol *molecule.Molecule, qpts []surface.QPoint) *Problem {
	return newProblem(mol, qpts)
}

// prepareCilk is the Born half of the shared-memory engine: steps 1–4 of
// Fig. 4 on one rank with a work-stealing pool. runCilkReal composes it
// with (*Prepared).evalEpol, so the cold path and the cached path execute
// identical code.
func prepareCilk(pr *Problem, o Options) *Prepared {
	bc := core.BornConfig{Eps: o.BornEps, CriterionPower: o.CriterionPower, LeafSize: o.LeafSize, Precision: o.Precision}
	buildStart := time.Now()
	bs := core.NewBornSolver(pr.Mol, pr.QPts, bc)
	observeBuild(o.Observe, buildStart, time.Since(buildStart))
	pool := sched.NewPool(o.Threads)
	n := pr.Mol.N()
	bornStart := time.Now()

	p := &Prepared{Pr: pr, bs: bs, opts: o}
	sNode, sAtom := bs.NewAccumulators()
	if o.UseFlatKernels.enabled(true) {
		list := bs.BuildBornDualList()
		p.BornStats = list.Stats()
		p.BornSched = evalBornListParallel(bs, list, pool, sNode, sAtom)
	} else {
		frontier := bs.DualFrontier(8 * o.Threads * o.Threads)
		accN := make([][]float64, pool.Workers())
		accA := make([][]float64, pool.Workers())
		statsW := make([]core.Stats, pool.Workers())
		p.BornSched = pool.ParallelFor(len(frontier), 1, func(w, lo, hi int) {
			if accN[w] == nil {
				accN[w], accA[w] = bs.NewAccumulators()
			}
			for i := lo; i < hi; i++ {
				statsW[w].Add(bs.AccumulateDualPair(frontier[i][0], frontier[i][1], accN[w], accA[w]))
			}
		})
		for w := range accN {
			if accN[w] == nil {
				continue
			}
			for i := range sNode {
				sNode[i] += accN[w][i]
			}
			for i := range sAtom {
				sAtom[i] += accA[w][i]
			}
			p.BornStats.Add(statsW[w])
		}
	}
	observePhase(o.Observe, "born", "engine.born", 0, bornStart, time.Since(bornStart))
	pushStart := time.Now()
	rTree := make([]float64, n)
	bs.PushIntegrals(sNode, sAtom, 0, int32(n), rTree)
	p.BornRadii = bs.RadiiToOriginal(rTree)
	observePhase(o.Observe, "push", "engine.push", 0, pushStart, time.Since(pushStart))
	return p
}

// EvalEpol evaluates the polarization energy (step 6) over the prebuilt
// trees and Born radii. o supplies only the evaluation-time knobs —
// EpolEps, Math, Threads, UseFlatKernels; the Born-phase fields are fixed
// at Prepare time and ignored here. The returned report echoes the
// prepared BornRadii/BornStats so warm and cold reports have the same
// shape; Wall covers only this evaluation.
//
// A cold RunReal(OctCilk) and Prepare+EvalEpol with the same options
// execute the same code path and produce bitwise-identical energies (see
// TestPreparedMatchesCold).
func (p *Prepared) EvalEpol(o Options) (RealReport, error) {
	o = o.withDefaults(OctCilk)
	if err := o.Validate(); err != nil {
		return RealReport{}, err
	}
	start := time.Now()
	rep := p.evalEpol(o)
	rep.Wall = time.Since(start)
	// Record only this evaluation's scheduler activity: rep.Sched echoes
	// the prepare-phase stats (recorded by Prepare) for report-shape parity.
	recordSchedStats(o.Observe, sched.Stats{
		Executed:     rep.Sched.Executed - p.BornSched.Executed,
		Steals:       rep.Sched.Steals - p.BornSched.Steals,
		FailedSteals: rep.Sched.FailedSteals - p.BornSched.FailedSteals,
		Parks:        rep.Sched.Parks - p.BornSched.Parks,
	})
	return rep, nil
}

// evalEpol is the E_pol half of the shared-memory engine (defaults already
// resolved).
func (p *Prepared) evalEpol(o Options) RealReport {
	epolStart := time.Now()
	rep := RealReport{
		BornRadii: p.BornRadii,
		BornStats: p.BornStats,
	}
	es := core.NewEpolSolver(p.bs.TA, p.Pr.Charges, p.BornRadii, core.EpolConfig{Eps: o.EpolEps, Math: o.Math, Precision: o.Precision})
	pool := sched.NewPool(o.Threads)
	var raw float64
	var s2 sched.Stats
	if o.UseFlatKernels.enabled(true) {
		list := es.BuildEpolDualList()
		rep.EpolStats = list.Stats()
		raw, s2 = evalEpolListParallel(es, list, pool)
	} else {
		ef := es.EpolDualFrontier(8 * o.Threads * o.Threads)
		partial := make([]float64, pool.Workers())
		estatsW := make([]core.Stats, pool.Workers())
		s2 = pool.ParallelFor(len(ef), 1, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				e, st := es.EnergyDualPair(ef[i][0], ef[i][1])
				partial[w] += e
				estatsW[w].Add(st)
			}
		})
		for w := range partial {
			raw += partial[w]
			rep.EpolStats.Add(estatsW[w])
		}
	}
	rep.Energy = raw * core.EnergyScale()
	rep.Sched = p.BornSched
	rep.Sched.Add(s2)
	observePhase(o.Observe, "epol", "engine.epol", 0, epolStart, time.Since(epolStart))
	return rep
}

// Options returns the prepare-time options with defaults resolved —
// callers use it to decide whether a cached Prepared is compatible with a
// new request's Born-phase parameters.
func (p *Prepared) Options() Options { return p.opts }

// MemoryBytes estimates the resident size of the Prepared — the figure the
// serving cache charges against its byte budget. It covers the dominant
// allocations: both octrees, the per-point and per-node solver payloads,
// the surface points, and the radii/charge vectors.
func (p *Prepared) MemoryBytes() int64 {
	const (
		atomBytes  = 40 // 5 float64 per atom
		qptBytes   = 56 // Pos + Normal + Weight
		vec3Bytes  = 24
		floatBytes = 8
	)
	n := int64(p.Pr.Mol.N())
	q := int64(len(p.Pr.QPts))
	nodesQ := int64(len(p.bs.TQ.Nodes))
	size := p.bs.TA.MemoryBytes() + p.bs.TQ.MemoryBytes()
	size += n * atomBytes                       // molecule atoms
	size += q * qptBytes                        // surface points
	size += q * (vec3Bytes + 3*floatBytes)      // wn + SoA mirrors
	size += nodesQ * (vec3Bytes + 3*floatBytes) // nodeWN + SoA mirrors
	size += n * 3 * floatBytes                  // radii, charges, atomR
	size += p.bs.TierBytes()                    // f32 storage-tier mirrors
	return size
}
