package engine

import (
	"testing"

	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func TestDistributeDataReducesMemory(t *testing.T) {
	m := molecule.GenerateProtein("dd", 6000, 71)
	pr := NewProblem(m, surface.Default())
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	mach := simtime.Lonestar4()

	dd := sm.DistributeData(12, mach)
	if dd.P != 12 {
		t.Fatalf("P = %d", dd.P)
	}
	if dd.BytesPerRankDistributed >= dd.BytesPerRankReplicated {
		t.Errorf("distributed memory %d not below replicated %d",
			dd.BytesPerRankDistributed, dd.BytesPerRankReplicated)
	}
	if dd.MaxOwnedAtoms <= 0 || dd.MaxOwnedAtoms > 6000 {
		t.Errorf("owned atoms %d", dd.MaxOwnedAtoms)
	}
	if dd.MaxGhostAtoms <= 0 {
		t.Error("no ghosts found — near field always crosses leaf-segment boundaries")
	}
	if dd.ExchangeWords <= 0 || dd.ExchangeCostSec <= 0 {
		t.Errorf("exchange not modeled: %d words, %v s", dd.ExchangeWords, dd.ExchangeCostSec)
	}
}

func TestDistributeDataOwnedShrinksWithP(t *testing.T) {
	m := molecule.GenerateProtein("dd2", 4000, 72)
	pr := NewProblem(m, surface.Default())
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	mach := simtime.Lonestar4()

	d2 := sm.DistributeData(2, mach)
	d16 := sm.DistributeData(16, mach)
	if d16.MaxOwnedAtoms >= d2.MaxOwnedAtoms {
		t.Errorf("owned atoms did not shrink: P=2 %d, P=16 %d", d2.MaxOwnedAtoms, d16.MaxOwnedAtoms)
	}
	// Owned+ghost cover at least the rank's own atoms; with P ranks the
	// union of owned atoms is the whole molecule.
	if d2.MaxOwnedAtoms < 4000/2 {
		t.Errorf("P=2 max owned %d below even share", d2.MaxOwnedAtoms)
	}
}

func TestDistributeDataSingleRankHasNoGhosts(t *testing.T) {
	m := molecule.GenerateProtein("dd3", 1500, 73)
	pr := NewProblem(m, surface.Default())
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	dd := sm.DistributeData(1, simtime.Lonestar4())
	if dd.MaxGhostAtoms != 0 || dd.ExchangeWords != 0 {
		t.Errorf("single rank has ghosts: %+v", dd)
	}
	if dd.MaxOwnedAtoms != 1500 {
		t.Errorf("single rank owns %d of 1500", dd.MaxOwnedAtoms)
	}
}

func TestNeededLeavesCoverNearField(t *testing.T) {
	// Every leaf's needed set includes itself (self-interactions are
	// near-field by construction).
	m := molecule.GenerateProtein("dd4", 800, 74)
	pr := NewProblem(m, surface.Default())
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	es := sm.es
	for l := 0; l < es.NumLeaves(); l++ {
		self := es.T.Leaves()[l]
		found := false
		for _, n := range es.NeededLeaves(l) {
			if n == self {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("leaf %d needed-set misses itself", l)
		}
	}
}
