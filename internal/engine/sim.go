package engine

import (
	"math/rand"

	"octgb/internal/core"
	"octgb/internal/gb"
	"octgb/internal/partition"
	"octgb/internal/sched"
	"octgb/internal/simtime"
)

// SimModel holds one engine's executed computation together with its
// deterministic work profile, from which virtual-time runs for any (P, p,
// machine) combination can be assembled cheaply. The algorithm runs exactly
// once (in Build); Time only does clock arithmetic, so sweeping core counts
// or repeating "runs" for min/max bands is inexpensive.
type SimModel struct {
	Kind Kind
	Opts Options

	Energy    float64
	BornRadii []float64 // original order
	BornStats core.Stats
	EpolStats core.Stats
	// BytesPerRank is the replicated per-rank working set (trees, payload
	// arrays, accumulators, bins) for the memory-pressure model.
	BytesPerRank int64

	bs      *core.BornSolver
	es      *core.EpolSolver
	oc      simtime.OpCosts
	charges []float64 // original order

	bornLeafWork []float64 // per q-leaf seconds (node-based division)
	epolLeafWork []float64 // per atoms-leaf seconds
	pushVisits   int64     // full-tree push cost
	numAtoms     int
	numQPts      int
}

// SimTiming is the virtual-time result of one (engine, P, p) combination.
type SimTiming struct {
	TotalSec   float64
	ComputeSec float64
	CommSec    float64
	Cores      int
	MemPenalty float64
}

// BuildSimModel executes the engine's computation once and returns the work
// profile. For Division == AtomBased the per-P traversals are re-executed
// inside TimeAtomBased instead (boundaries change the computation).
func BuildSimModel(pr *Problem, k Kind, o Options, oc simtime.OpCosts) *SimModel {
	o = o.withDefaults(k)
	sm := &SimModel{Kind: k, Opts: o, oc: oc, numAtoms: pr.Mol.N(), numQPts: len(pr.QPts), charges: pr.Charges}

	if k == Naive {
		sm.BornRadii = gb.BornRadiiR6(pr.Mol, pr.QPts)
		sm.Energy = gb.EpolNaive(pr.Mol, sm.BornRadii, o.Math)
		n, m := int64(sm.numAtoms), int64(sm.numQPts)
		sm.BornStats = core.Stats{NearPairs: n * m}
		sm.EpolStats = core.Stats{NearPairs: n * n}
		sm.BytesPerRank = n*48 + m*56
		return sm
	}

	bc := core.BornConfig{Eps: o.BornEps, CriterionPower: o.CriterionPower, LeafSize: o.LeafSize}
	ec := core.EpolConfig{Eps: o.EpolEps, Math: o.Math, LeafSize: o.LeafSize}
	sm.bs = core.NewBornSolver(pr.Mol, pr.QPts, bc)
	bs := sm.bs
	sNode, sAtom := bs.NewAccumulators()

	if k == OctCilk {
		// Dual-tree algorithm of [6]: only totals are needed (the
		// intra-node makespan is modeled from work/span).
		sm.BornStats = bs.AccumulateDual(sNode, sAtom)
	} else {
		sm.bornLeafWork = make([]float64, bs.NumQLeaves())
		for l := 0; l < bs.NumQLeaves(); l++ {
			st := bs.AccumulateQLeaf(l, sNode, sAtom)
			sm.bornLeafWork[l] = oc.BornWork(st)
			sm.BornStats.Add(st)
		}
	}

	rTree := make([]float64, sm.numAtoms)
	sm.pushVisits = bs.PushIntegrals(sNode, sAtom, 0, int32(sm.numAtoms), rTree)
	sm.BornRadii = bs.RadiiToOriginal(rTree)

	sm.es = core.NewEpolSolver(bs.TA, pr.Charges, sm.BornRadii, ec)
	var raw float64
	if k == OctCilk {
		e, st := sm.es.EnergyDual()
		raw = e
		sm.EpolStats = st
	} else {
		sm.epolLeafWork = make([]float64, sm.es.NumLeaves())
		for l := 0; l < sm.es.NumLeaves(); l++ {
			e, st := sm.es.LeafEnergy(l)
			raw += e
			sm.epolLeafWork[l] = oc.EpolWork(st)
			sm.EpolStats.Add(st)
		}
	}
	sm.Energy = raw * core.EnergyScale()

	sm.BytesPerRank = bs.TA.MemoryBytes() + bs.TQ.MemoryBytes() +
		8*int64(len(sNode)+len(sAtom)+sm.numAtoms) +
		8*int64(len(bs.TA.Nodes))*int64(sm.es.NumBins())
	return sm
}

// EpolLeafWork returns a copy of the measured per-leaf energy-phase work
// profile in modeled seconds (empty for the dual-tree and naive kinds) —
// used by scheduling ablations.
func (sm *SimModel) EpolLeafWork() []float64 {
	return append([]float64(nil), sm.epolLeafWork...)
}

// WithEpolEps returns a new SimModel sharing this model's Born phase
// (solver, radii, per-leaf work) but with the energy treecode re-run at a
// different ε — the cheap path for the paper's Figure 10 sweep, where the
// Born ε stays fixed while the E_pol ε varies.
func (sm *SimModel) WithEpolEps(eps float64) *SimModel {
	if sm.Kind == Naive {
		return sm
	}
	out := *sm
	out.Opts.EpolEps = eps
	out.es = core.NewEpolSolver(sm.bs.TA, sm.charges, sm.BornRadii,
		core.EpolConfig{Eps: eps, Math: sm.Opts.Math})
	out.EpolStats = core.Stats{}
	var raw float64
	if sm.Kind == OctCilk {
		e, st := out.es.EnergyDual()
		raw = e
		out.EpolStats = st
	} else {
		out.epolLeafWork = make([]float64, out.es.NumLeaves())
		for l := 0; l < out.es.NumLeaves(); l++ {
			e, st := out.es.LeafEnergy(l)
			raw += e
			out.epolLeafWork[l] = sm.oc.EpolWork(st)
			out.EpolStats.Add(st)
		}
	}
	out.Energy = raw * core.EnergyScale()
	return &out
}

// ranksPerNode returns how many ranks share one modeled node.
func ranksPerNode(P, threads int, m simtime.Machine) int {
	rpn := m.CoresPerNode / threads
	if rpn < 1 {
		rpn = 1
	}
	if P < rpn {
		rpn = P
	}
	return rpn
}

// jitterer returns a deterministic noise function: amp=0 or seed<0 yields
// the identity. Each call consumes one random draw.
func jitterer(seed int64) func(base, amp float64) float64 {
	if seed < 0 {
		return func(base, _ float64) float64 { return base }
	}
	rng := rand.New(rand.NewSource(seed))
	return func(base, amp float64) float64 {
		return base * (1 + amp*rng.Float64())
	}
}

// Time assembles the virtual-time run for P ranks × threads on machine m.
// seed < 0 gives the noise-free deterministic run; seed ≥ 0 adds bounded
// deterministic jitter (compute ±few %, collectives up to +50 %) so
// repeated "runs" produce the min/max bands of the paper's Figure 6. The
// hybrid engine gets a larger compute-jitter amplitude than pure MPI,
// reflecting the work-stealing execution variance the paper observes.
func (sm *SimModel) Time(P, threads int, m simtime.Machine, seed int64) SimTiming {
	switch sm.Kind {
	case OctCilk, Naive:
		P = 1
	case OctMPI:
		threads = 1
	}
	if P < 1 {
		P = 1
	}
	if threads < 1 {
		threads = 1
	}
	jit := jitterer(seed)
	computeAmp := 0.03
	if threads > 1 {
		computeAmp = 0.08
	}

	rpn := ranksPerNode(P, threads, m)
	pen := m.MemoryPenalty(sm.BytesPerRank, rpn)
	overhead := 1.0
	if threads > 1 {
		overhead = m.HybridOverhead
	}
	topo := sm.Opts.TopoCollectives.enabled(true)

	clocks := simtime.NewClocks(P)
	var comm float64
	// sync charges one collective under the selected algorithm
	// (AlgoCollectiveCost matches what cluster/collectives.go executes).
	// overlapSec seconds of independent compute — already on the rank
	// clocks via the compute phases — hide the same amount of collective
	// time, modeling a non-blocking operation waited on afterwards.
	sync := func(kind string, words int, overlapSec float64) {
		c := jit(m.AlgoCollectiveCost(kind, topo, words, P, rpn), 0.5) - overlapSec
		if c < 0 {
			c = 0
		}
		var max float64
		for _, t := range clocks.T {
			if t > max {
				max = t
			}
		}
		for i := range clocks.T {
			clocks.T[i] = max + c
		}
		comm += c
	}

	// Phase 2: Born integrals (node-based q-leaf segments).
	switch sm.Kind {
	case Naive:
		total := sm.oc.BornWork(sm.BornStats) * pen
		clocks.Advance(0, jit(total/float64(threads), computeAmp))
	case OctCilk:
		total := sm.oc.BornWork(sm.BornStats) * pen * overheadFor(threads, m)
		clocks.Advance(0, jit(total/float64(threads), computeAmp))
	default:
		segs := sm.leafSegments(sm.bornLeafWork, P)
		for r := 0; r < P; r++ {
			w := sm.bornLeafWork[segs[r].Lo:segs[r].Hi]
			t := sched.ListScheduleMakespan(w, threads)*overhead*pen +
				m.StealOverheadSec*float64(len(w))/float64(threads)
			clocks.Advance(r, jit(t, computeAmp))
		}
		// Phase 3: Allreduce of partial integrals (s_A per node + s_a per
		// atom).
		sync("allreduce", len(sm.bs.TA.Nodes)+sm.numAtoms, 0)
	}

	// Phase 4: push integrals to atoms (atom segments).
	pushPer := float64(sm.pushVisits) * sm.oc.NodeVisitSec * pen / float64(P*threads)
	for r := 0; r < P; r++ {
		clocks.Advance(r, jit(pushPer, computeAmp))
	}
	// Phase 5: Allgather Born radii. Under the topology-aware layer the
	// engine overlaps this with the energy phase's geometry-only list
	// construction (real.go step 5), so the per-rank traversal cost — the
	// NodesVisited share of phase 6, charged there — credits against the
	// collective here.
	if sm.Kind != OctCilk && sm.Kind != Naive {
		var overlapSec float64
		if topo {
			overlapSec = float64(sm.EpolStats.NodesVisited) * sm.oc.NodeVisitSec * pen / float64(P)
		}
		sync("allgatherv", sm.numAtoms, overlapSec)
	}

	// Phase 6: energy (node-based leaf segments).
	switch sm.Kind {
	case Naive:
		total := sm.oc.EpolWork(sm.EpolStats) * pen
		clocks.Advance(0, jit(total/float64(threads), computeAmp))
	case OctCilk:
		total := sm.oc.EpolWork(sm.EpolStats) * pen * overheadFor(threads, m)
		clocks.Advance(0, jit(total/float64(threads), computeAmp))
	default:
		segs := sm.leafSegments(sm.epolLeafWork, P)
		for r := 0; r < P; r++ {
			w := sm.epolLeafWork[segs[r].Lo:segs[r].Hi]
			t := sched.ListScheduleMakespan(w, threads)*overhead*pen +
				m.StealOverheadSec*float64(len(w))/float64(threads)
			clocks.Advance(r, jit(t, computeAmp))
		}
		// Phase 7: reduce partial energies.
		sync("allreduce", 1, 0)
	}

	total := clocks.Elapsed()
	return SimTiming{
		TotalSec:   total,
		ComputeSec: total - comm,
		CommSec:    comm,
		Cores:      P * threads,
		MemPenalty: pen,
	}
}

// leafSegments cuts the leaf list into P contiguous rank segments — by
// count (the paper's scheme) or by measured work when WeightedStatic is
// set (the future-work extension).
func (sm *SimModel) leafSegments(work []float64, P int) []partition.Segment {
	if sm.Opts.WeightedStatic {
		return partition.WeightedEven(work, P)
	}
	return partition.Even(len(work), P)
}

func overheadFor(threads int, m simtime.Machine) float64 {
	if threads > 1 {
		return m.HybridOverhead
	}
	return 1
}

// TimeAtomBased re-executes the traversals with ATOM-BASED division for P
// ranks (the work depends on the boundaries) and returns both the timing
// and the energy, which — unlike node-based division — varies with P.
func (sm *SimModel) TimeAtomBased(P, threads int, m simtime.Machine) (SimTiming, float64) {
	if sm.Kind == Naive || sm.Kind == OctCilk {
		return sm.Time(P, threads, m, -1), sm.Energy
	}
	if P < 1 {
		P = 1
	}
	if threads < 1 {
		threads = 1
	}
	bs := sm.bs
	n := sm.numAtoms
	rpn := ranksPerNode(P, threads, m)
	pen := m.MemoryPenalty(sm.BytesPerRank, rpn)
	overhead := overheadFor(threads, m)

	topo := sm.Opts.TopoCollectives.enabled(true)
	clocks := simtime.NewClocks(P)
	var comm float64
	sync := func(kind string, words int) {
		c := m.AlgoCollectiveCost(kind, topo, words, P, rpn)
		var max float64
		for _, t := range clocks.T {
			if t > max {
				max = t
			}
		}
		for i := range clocks.T {
			clocks.T[i] = max + c
		}
		comm += c
	}

	atomSegs := partition.Even(n, P)
	sNode, sAtom := bs.NewAccumulators()
	for r := 0; r < P; r++ {
		lo, hi := int32(atomSegs[r].Lo), int32(atomSegs[r].Hi)
		var st core.Stats
		for l := 0; l < bs.NumQLeaves(); l++ {
			st.Add(bs.AccumulateQLeafAtomRange(l, lo, hi, sNode, sAtom))
		}
		clocks.Advance(r, sm.oc.BornWork(st)/float64(threads)*overhead*pen)
	}
	sync("allreduce", len(bs.TA.Nodes)+n)

	rTree := make([]float64, n)
	for r := 0; r < P; r++ {
		v := bs.PushIntegrals(sNode, sAtom, int32(atomSegs[r].Lo), int32(atomSegs[r].Hi), rTree)
		clocks.Advance(r, float64(v)*sm.oc.NodeVisitSec/float64(threads)*pen)
	}
	sync("allgatherv", n)

	R := bs.RadiiToOriginal(rTree)
	es := core.NewEpolSolver(bs.TA, sm.charges, R, core.EpolConfig{Eps: sm.Opts.EpolEps, Math: sm.Opts.Math})
	var raw float64
	for r := 0; r < P; r++ {
		lo, hi := int32(atomSegs[r].Lo), int32(atomSegs[r].Hi)
		var st core.Stats
		for l := 0; l < es.NumLeaves(); l++ {
			e, s := es.LeafEnergyRows(l, lo, hi)
			raw += e
			st.Add(s)
		}
		clocks.Advance(r, sm.oc.EpolWork(st)/float64(threads)*overhead*pen)
	}
	sync("allreduce", 1)

	total := clocks.Elapsed()
	return SimTiming{
		TotalSec:   total,
		ComputeSec: total - comm,
		CommSec:    comm,
		Cores:      P * threads,
		MemPenalty: pen,
	}, raw * core.EnergyScale()
}
