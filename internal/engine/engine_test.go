package engine

import (
	"math"
	"testing"

	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func testProblem(n int, seed int64) *Problem {
	m := molecule.GenerateProtein("eng", n, seed)
	return NewProblem(m, surface.Default())
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1e-30, math.Abs(b))
}

func TestKindString(t *testing.T) {
	if OctCilk.String() != "OCT_CILK" || OctMPI.String() != "OCT_MPI" ||
		OctMPICilk.String() != "OCT_MPI+CILK" || Naive.String() != "Naive" {
		t.Error("kind names wrong")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(OctMPICilk)
	if o.Ranks != 1 || o.Threads != 1 || o.BornEps != 0.9 || o.EpolEps != 0.9 {
		t.Errorf("defaults: %+v", o)
	}
	if o := (Options{Ranks: 4, Threads: 6}).withDefaults(OctMPI); o.Threads != 1 {
		t.Error("OctMPI must force 1 thread")
	}
	if o := (Options{Ranks: 4}).withDefaults(OctCilk); o.Ranks != 1 {
		t.Error("OctCilk must force 1 rank")
	}
}

func TestAllEnginesAgreeOnEnergy(t *testing.T) {
	pr := testProblem(700, 41)
	naive, err := RunReal(pr, Naive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		k Kind
		o Options
	}{
		{OctCilk, Options{Threads: 3}},
		{OctMPI, Options{Ranks: 4}},
		{OctMPICilk, Options{Ranks: 2, Threads: 3}},
	} {
		rep, err := RunReal(pr, tc.k, tc.o)
		if err != nil {
			t.Fatalf("%v: %v", tc.k, err)
		}
		if e := relErr(rep.Energy, naive.Energy); e > 0.05 {
			t.Errorf("%v energy %v vs naive %v (rel %v)", tc.k, rep.Energy, naive.Energy, e)
		}
		if rep.Energy >= 0 {
			t.Errorf("%v: non-negative E_pol %v", tc.k, rep.Energy)
		}
	}
}

func TestDistributedIndependentOfRankCount(t *testing.T) {
	// Node-based division: the result must be bitwise-independent of P up
	// to floating reassociation in the reduce; assert tight agreement.
	pr := testProblem(500, 42)
	e1, err := RunReal(pr, OctMPI, Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8} {
		ep, err := RunReal(pr, OctMPI, Options{Ranks: p})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(ep.Energy, e1.Energy); e > 1e-9 {
			t.Errorf("P=%d energy %v differs from P=1 %v (rel %v)", p, ep.Energy, e1.Energy, e)
		}
	}
}

func TestHybridMatchesDistributed(t *testing.T) {
	// Same algorithm, different intra-rank execution: results must agree
	// to reduction-order noise.
	pr := testProblem(500, 43)
	a, err := RunReal(pr, OctMPI, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReal(pr, OctMPICilk, Options{Ranks: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(a.Energy, b.Energy); e > 1e-9 {
		t.Errorf("hybrid %v vs distributed %v (rel %v)", b.Energy, a.Energy, e)
	}
}

func TestSimModelMatchesRealEnergy(t *testing.T) {
	pr := testProblem(500, 44)
	oc := simtime.DefaultOpCosts()
	for _, k := range []Kind{OctMPI, OctMPICilk, OctCilk, Naive} {
		sm := BuildSimModel(pr, k, Options{}, oc)
		rep, err := RunReal(pr, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(sm.Energy, rep.Energy); e > 1e-9 {
			t.Errorf("%v: sim energy %v vs real %v", k, sm.Energy, rep.Energy)
		}
	}
}

func TestSimTimeScalesWithCores(t *testing.T) {
	pr := testProblem(3000, 45)
	m := simtime.Lonestar4()
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	t1 := sm.Time(1, 1, m, -1)
	t12 := sm.Time(12, 1, m, -1)
	if t12.TotalSec >= t1.TotalSec {
		t.Errorf("12 ranks (%v s) not faster than 1 (%v s)", t12.TotalSec, t1.TotalSec)
	}
	sp := t1.TotalSec / t12.TotalSec
	if sp < 3 || sp > 12 {
		t.Errorf("12-rank speedup %v implausible", sp)
	}
	if t12.CommSec <= 0 {
		t.Error("no communication time charged for 12 ranks")
	}
	if t1.CommSec != 0 {
		t.Error("communication charged for single rank")
	}
}

func TestSimHybridVsMPIShapes(t *testing.T) {
	// The paper's qualitative claims: (a) pure MPI replicates data, so its
	// per-node footprint penalty is ≥ the hybrid's; (b) with many ranks
	// MPI pays more communication than the hybrid at equal core count.
	pr := testProblem(4000, 46)
	m := simtime.Lonestar4()
	oc := simtime.DefaultOpCosts()
	mpi := BuildSimModel(pr, OctMPI, Options{}, oc)
	hyb := BuildSimModel(pr, OctMPICilk, Options{}, oc)

	cores := 144
	tm := mpi.Time(cores, 1, m, -1)
	th := hyb.Time(cores/6, 6, m, -1)
	if tm.Cores != cores || th.Cores != cores {
		t.Fatalf("core accounting: %d vs %d", tm.Cores, th.Cores)
	}
	if th.CommSec >= tm.CommSec {
		t.Errorf("hybrid comm %v not below MPI comm %v at %d cores", th.CommSec, tm.CommSec, cores)
	}
	if th.MemPenalty > tm.MemPenalty {
		t.Errorf("hybrid memory penalty %v exceeds MPI %v", th.MemPenalty, tm.MemPenalty)
	}
}

func TestSimJitterBounded(t *testing.T) {
	pr := testProblem(1000, 47)
	m := simtime.Lonestar4()
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	base := sm.Time(8, 1, m, -1).TotalSec
	min, max := math.Inf(1), 0.0
	for seed := int64(0); seed < 20; seed++ {
		v := sm.Time(8, 1, m, seed).TotalSec
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < base*0.999 {
		t.Errorf("jittered run faster than noise-free base: %v < %v", min, base)
	}
	if max > base*1.6 {
		t.Errorf("jitter exploded: %v vs base %v", max, base)
	}
	if min == max {
		t.Error("jitter produced no variance")
	}
}

func TestAtomBasedDivisionEnergyVariesWithP(t *testing.T) {
	// The paper's §IV-A observation: atom-based division error changes
	// with the number of processes; node-based stays constant.
	pr := testProblem(800, 48)
	m := simtime.Lonestar4()
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())

	_, e2 := sm.TimeAtomBased(2, 1, m)
	_, e5 := sm.TimeAtomBased(5, 1, m)
	if e2 == e5 {
		t.Error("atom-based energies identical across P (expected boundary-dependent)")
	}
	// Both still close to the node-based energy.
	for _, e := range []float64{e2, e5} {
		if relErr(e, sm.Energy) > 0.05 {
			t.Errorf("atom-based energy %v too far from node-based %v", e, sm.Energy)
		}
	}
}

func TestNaiveParallelRowsMatchSerial(t *testing.T) {
	pr := testProblem(300, 49)
	a, err := RunReal(pr, Naive, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReal(pr, Naive, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(a.Energy, b.Energy); e > 1e-10 {
		t.Errorf("parallel naive %v vs serial %v", b.Energy, a.Energy)
	}
	// Cross-check against the gb reference.
	R := gb.BornRadiiR6(pr.Mol, pr.QPts)
	want := gb.EpolNaive(pr.Mol, R, gb.Exact)
	if e := relErr(a.Energy, want); e > 1e-12 {
		t.Errorf("naive engine %v vs gb reference %v", a.Energy, want)
	}
}

func TestSimTimeAtomBasedSlowerOrEqual(t *testing.T) {
	// Paper: "atom-node work division takes slightly more time than the
	// purely node based division".
	pr := testProblem(1500, 50)
	m := simtime.Lonestar4()
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	node := sm.Time(6, 1, m, -1)
	atom, _ := sm.TimeAtomBased(6, 1, m)
	if atom.TotalSec < node.TotalSec*0.95 {
		t.Errorf("atom-based (%v) much faster than node-based (%v)", atom.TotalSec, node.TotalSec)
	}
}

func TestPhaseTimingsRecorded(t *testing.T) {
	pr := testProblem(400, 53)
	rep, err := RunReal(pr, OctMPI, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Phases
	if p.Born <= 0 || p.Push <= 0 || p.Epol <= 0 {
		t.Errorf("phase timings missing: %+v", p)
	}
	total := p.Born + p.Push + p.Epol + p.Comm
	if total > rep.Wall*2 {
		t.Errorf("phase sum %v exceeds wall %v", total, rep.Wall)
	}
}

func TestWeightedStaticNeverSlower(t *testing.T) {
	// Work-weighted static division cannot lose to count-based division
	// by more than noise, and should win on skewed inputs.
	m := molecule.GenerateComplex("ws", 2500, 400, 52)
	pr := NewProblem(m, surface.Default())
	oc := simtime.DefaultOpCosts()
	count := BuildSimModel(pr, OctMPI, Options{}, oc)
	weighted := BuildSimModel(pr, OctMPI, Options{WeightedStatic: true}, oc)
	if count.Energy != weighted.Energy {
		t.Errorf("balancing changed the energy: %v vs %v", count.Energy, weighted.Energy)
	}
	mch := simtime.Lonestar4()
	for _, P := range []int{4, 16} {
		tc := count.Time(P, 1, mch, -1).TotalSec
		tw := weighted.Time(P, 1, mch, -1).TotalSec
		if tw > tc*1.05 {
			t.Errorf("P=%d: weighted split slower (%v vs %v)", P, tw, tc)
		}
	}
}

func TestProblemConstruction(t *testing.T) {
	pr := testProblem(200, 51)
	if len(pr.Charges) != 200 || len(pr.QPts) == 0 {
		t.Fatalf("problem: %d charges, %d qpts", len(pr.Charges), len(pr.QPts))
	}
	if pr.Charges[5] != pr.Mol.Atoms[5].Charge {
		t.Error("charges extraction wrong")
	}
}
