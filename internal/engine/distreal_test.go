package engine

import (
	"math"
	"testing"

	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func TestDistributedDataEnergyMatches(t *testing.T) {
	pr := testProblem(900, 201)
	ref, err := RunReal(pr, OctMPI, Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, P := range []int{1, 2, 3, 7} {
		e, err := RunDistributedDataEnergy(pr, P, Options{})
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if math.IsNaN(e) {
			t.Fatalf("P=%d: NaN energy (non-resident data touched)", P)
		}
		if rel := math.Abs(e-ref.Energy) / math.Abs(ref.Energy); rel > 1e-9 {
			t.Errorf("P=%d: distributed-data energy %v vs replicated %v (rel %v)", P, e, ref.Energy, rel)
		}
	}
}

func TestDistributedDataEnergyCapsid(t *testing.T) {
	// Shell geometry exercises long-range far-field paths across the
	// hollow interior where no ghosts are needed.
	mol := molecule.GenerateCapsid("ddshell", 1500, 6, 202)
	pr := NewProblem(mol, surface.Default())
	ref, err := RunReal(pr, OctMPI, Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := RunDistributedDataEnergy(pr, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(e-ref.Energy) / math.Abs(ref.Energy); rel > 1e-9 {
		t.Errorf("capsid: %v vs %v", e, ref.Energy)
	}
}

func TestDistributedDataGhostSufficiencyIsTight(t *testing.T) {
	// Restrict WITHOUT ghosts must poison the near field: the energy of a
	// rank that skips its ghost exchange is NaN. This proves the NaN
	// sentinel actually guards the design (i.e. the main test above is
	// not vacuously passing).
	pr := testProblem(700, 203)
	sm := BuildSimModel(pr, OctMPI, Options{}, simtime.DefaultOpCosts())
	es := sm.es
	segs := 4
	leaves := es.T.Leaves()
	per := len(leaves) / segs
	owned := leaves[:per]
	restricted := es.Restrict(owned)
	var raw float64
	for l := 0; l < per; l++ {
		e, _ := restricted.LeafEnergy(l)
		raw += e
	}
	if !math.IsNaN(raw) {
		t.Error("rank without ghosts produced a finite energy — poisoning ineffective or ghost analysis vacuous")
	}
}
